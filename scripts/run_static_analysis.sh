#!/usr/bin/env bash
# Run clang-tidy over the production sources using the .clang-tidy profile at
# the repo root, driven by a compile_commands.json.
#
# Usage:
#   scripts/run_static_analysis.sh [build-dir]
#
# The build dir defaults to the first of build-release/, build-asan/, build/
# that contains a compile_commands.json. Every CMake preset exports one
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally).
#
# clang-tidy is an optional tool: on machines without it (the baked CI image
# ships gcc only) the script prints a notice and exits 0 so the lint job can
# run unconditionally. bhss_lint.py carries the project-specific rules and has
# no toolchain dependency.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" > /dev/null 2>&1; then
      tidy_bin="${cand}"
      break
    fi
  done
fi

if [[ -z "${tidy_bin}" ]]; then
  echo "run_static_analysis: clang-tidy not found on PATH; skipping (not a failure)."
  echo "run_static_analysis: install clang-tidy or set CLANG_TIDY=/path/to/clang-tidy."
  exit 0
fi

build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  for cand in build-release build-asan build; do
    if [[ -f "${cand}/compile_commands.json" ]]; then
      build_dir="${cand}"
      break
    fi
  done
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_static_analysis: no compile_commands.json found." >&2
  echo "run_static_analysis: configure first, e.g.  cmake --preset release" >&2
  exit 1
fi

echo "run_static_analysis: using $("${tidy_bin}" --version | head -n 1)"
echo "run_static_analysis: compile database: ${build_dir}/compile_commands.json"

# Production sources only — third-party test/bench framework headers generate
# noise that is not ours to fix. Tests are still covered indirectly through
# HeaderFilterRegex on the library headers they include.
mapfile -t sources < <(find src bench examples -name '*.cpp' | sort)
echo "run_static_analysis: analysing ${#sources[@]} files"

jobs="$(nproc 2> /dev/null || echo 4)"
status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "${jobs}" -n 4 "${tidy_bin}" -p "${build_dir}" --quiet || status=$?

if [[ "${status}" -ne 0 ]]; then
  echo "run_static_analysis: clang-tidy reported findings (exit ${status})." >&2
  exit "${status}"
fi
echo "run_static_analysis: clean."
