#!/usr/bin/env python3
"""Project-specific lint rules for the BHSS codebase.

clang-tidy covers generic C++ defects and scripts/bhss_analyze.py covers
the call-graph-level determinism/hot-path contracts; this script enforces
the line-level conventions that keep the sample path fast and reproducible:

  R1  sample-path-double   Sample buffers are single-precision (float / cf,
                           see src/dsp/types.hpp). A double-typed buffer in a
                           DSP-layer public signature doubles memory traffic
                           and silently mixes precisions. Scalar double
                           parameters (gains, rates, dB values) are fine, and
                           so is double-precision scratch inside design-time
                           routines — only buffer types in headers (the
                           public signatures) are flagged.
  R2  unmanaged-random     All randomness flows through core/shared_random so
                           every run is reproducible from a single seed.
                           rand() and ad-hoc std::random_device elsewhere
                           break that.
  R3  raw-allocation       No raw heap new / malloc / free: buffers are
                           std::vector / std::array, ownership is RAII.
                           Token-aware: placement-new into existing storage
                           (`new (buf) T`, the no-destruct immortal-static
                           idiom) is NOT a heap allocation and is not
                           flagged; `new (std::nothrow) T` IS.
  R4  vector-ref-param     Public DSP APIs take cspan / fspan (see
                           src/dsp/types.hpp), not const std::vector&, so
                           callers can pass sub-ranges without copying.

Findings use the shared bhss-analyze schema (scripts/analyze/findings.py):
same rendering, same `// BHSS_ANALYZE_SUPPRESS(rule): reason` inline
suppressions (a reason is mandatory), same JSON document under --json.

Usage:  scripts/bhss_lint.py [--json] [paths...]   (default: src bench examples)
Exit:   0 clean, 1 violations found, 2 bad invocation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze import findings as findings_mod  # noqa: E402
from analyze import lexer  # noqa: E402

# Re-exported for compatibility: earlier revisions defined this helper here.
strip_comments_and_strings = lexer.strip_comments_and_strings

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "bench", "examples"]

# Libraries whose public signatures are "the sample path": per-sample buffers
# move through these layers at the receiver's full rate.
SAMPLE_PATH_DIRS = ("src/dsp", "src/phy", "src/sync", "src/channel")

# The one home allowed to touch raw randomness primitives.
RANDOM_HOME = "src/core/shared_random"

DOUBLE_BUFFER = re.compile(
    r"std::(?:vector|span)<\s*(?:const\s+)?double\s*>"
    r"|(?:const\s+)?double\s*\*"
)
RAND_CALL = re.compile(r"(?<![\w:])(?:std::)?rand\s*\(\s*\)")
RANDOM_DEVICE = re.compile(r"std::random_device")
VECTOR_REF_PARAM = re.compile(r"const\s+std::vector<[^>]+>\s*&\s*\w+\s*[,)]")

MALLOC_FAMILY = {"malloc", "calloc", "realloc", "free", "aligned_alloc"}


def relpath(path: Path) -> str:
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def in_sample_path(rel: str) -> bool:
    return any(rel.startswith(d + "/") for d in SAMPLE_PATH_DIRS)


def find_raw_allocations(toks: list[lexer.Tok]) -> list[tuple[int, str]]:
    """(line, message) pairs for R3, resolved on the token stream.

    `new` is a heap allocation unless it is a placement-new (parenthesised
    address argument) — but `new (std::nothrow) T` keeps its nothrow
    argument in the same position and DOES allocate, so the group is
    inspected rather than pattern-matched away.
    """
    out: list[tuple[int, str]] = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != lexer.KIND_ID:
            continue
        prev = toks[i - 1].text if i > 0 else ""
        nxt = toks[i + 1].text if i + 1 < n else ""
        if t.text == "new":
            if prev == "operator":
                continue  # an operator-new declaration, not an allocation
            if nxt == "(":
                close = lexer.match_group(toks, i + 1)
                group = {x.text for x in toks[i + 1 : close]}
                if "nothrow" in group:
                    out.append((t.line,
                                "raw heap new (std::nothrow) is banned; use "
                                "std::vector / std::make_unique"))
                # Plain placement-new constructs into existing storage —
                # no heap allocation, not R3's business.
                continue
            out.append((t.line,
                        "raw new is banned; use std::vector / std::make_unique"))
        elif t.text in MALLOC_FAMILY and nxt == "(":
            if prev in (".", "->"):
                continue  # a member named free()/realloc() is not libc's
            if prev == "::" and i >= 2 and toks[i - 2].text != "std":
                continue  # some_arena::free(...)
            if (i > 0 and toks[i - 1].kind == lexer.KIND_ID
                    and prev not in ("return", "co_return", "throw", "else", "do")):
                continue  # `void free(...)` — a declaration, not a call
            out.append((t.line, f"{t.text}() is banned; use std::vector"))
    return out


def lint_file(path: Path) -> list[findings_mod.Finding]:
    rel = relpath(path)
    raw = path.read_text(encoding="utf-8")
    text = strip_comments_and_strings(raw)
    found: list[findings_mod.Finding] = []

    def add(lineno: int, rule: str, msg: str) -> None:
        found.append(findings_mod.Finding(check=rule, file=rel, line=lineno,
                                          message=msg))

    for lineno, line in enumerate(text.splitlines(), start=1):
        if RAND_CALL.search(line):
            add(lineno, "unmanaged-random",
                "rand() is banned; use core/shared_random")
        if RANDOM_DEVICE.search(line) and RANDOM_HOME not in rel:
            add(lineno, "unmanaged-random",
                "std::random_device outside core/shared_random "
                "breaks seed reproducibility")
        if in_sample_path(rel) and path.suffix == ".hpp":
            if DOUBLE_BUFFER.search(line):
                add(lineno, "sample-path-double",
                    "double-typed buffer in sample-path signature; "
                    "use float/cf buffers per dsp/types.hpp")
            if VECTOR_REF_PARAM.search(line):
                add(lineno, "vector-ref-param",
                    "public DSP API should take cspan/fspan, "
                    "not const std::vector&")

    for lineno, msg in find_raw_allocations(lexer.tokenize(raw)):
        add(lineno, "raw-allocation", msg)

    return found


def main(argv: list[str]) -> int:
    as_json = False
    paths: list[str] = []
    for a in argv:
        if a == "--json":
            as_json = True
        elif a.startswith("-"):
            print(f"bhss_lint: error: unknown option {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)

    roots = [REPO_ROOT / p for p in (paths or DEFAULT_PATHS)]
    files: list[Path] = []
    for root in roots:
        if not root.exists():
            # A typo'd path must not read as "0 violations" in CI.
            print(f"bhss_lint: error: no such file or directory: {root}",
                  file=sys.stderr)
            return 2
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))

    all_findings: list[findings_mod.Finding] = []
    sup_index = findings_mod.SuppressionIndex()
    for f in files:
        all_findings.extend(lint_file(f))
        sup_index.add_file(relpath(f), f.read_text(encoding="utf-8"))

    active, suppressed = findings_mod.apply_suppressions(all_findings, sup_index)
    # Only police suppressions naming our rules; the analyzer's checks are
    # policed by bhss_analyze.py over its own (wider) file set.
    active.extend(sup_index.missing_reason_findings(
        ("sample-path-double", "unmanaged-random", "raw-allocation",
         "vector-ref-param")))

    render = findings_mod.render_json if as_json else findings_mod.render_report
    print(render(active, suppressed, [], len(files), "lines+tokens", "bhss_lint"))
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
