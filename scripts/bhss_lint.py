#!/usr/bin/env python3
"""Project-specific lint rules for the BHSS codebase.

clang-tidy covers generic C++ defects; this script enforces the conventions
that keep the sample path fast and reproducible and that no off-the-shelf
check knows about:

  R1  sample-path-double   Sample buffers are single-precision (float / cf,
                           see src/dsp/types.hpp). A double-typed buffer in a
                           DSP-layer public signature doubles memory traffic
                           and silently mixes precisions. Scalar double
                           parameters (gains, rates, dB values) are fine, and
                           so is double-precision scratch inside design-time
                           routines — only buffer types in headers (the
                           public signatures) are flagged.
  R2  unmanaged-random     All randomness flows through core/shared_random so
                           every run is reproducible from a single seed.
                           rand() and ad-hoc std::random_device elsewhere
                           break that.
  R3  raw-allocation       No raw new / malloc / free: buffers are
                           std::vector / std::array, ownership is RAII.
  R4  vector-ref-param     Public DSP APIs take cspan / fspan (see
                           src/dsp/types.hpp), not const std::vector&, so
                           callers can pass sub-ranges without copying.

Usage:  scripts/bhss_lint.py [paths...]     (default: src bench examples)
Exit:   0 clean, 1 violations found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "bench", "examples"]

# Libraries whose public signatures are "the sample path": per-sample buffers
# move through these layers at the receiver's full rate.
SAMPLE_PATH_DIRS = ("src/dsp", "src/phy", "src/sync", "src/channel")

# The one home allowed to touch raw randomness primitives.
RANDOM_HOME = "src/core/shared_random"

DOUBLE_BUFFER = re.compile(
    r"std::(?:vector|span)<\s*(?:const\s+)?double\s*>"
    r"|(?:const\s+)?double\s*\*"
)
RAND_CALL = re.compile(r"(?<![\w:])(?:std::)?rand\s*\(\s*\)")
RANDOM_DEVICE = re.compile(r"std::random_device")
RAW_NEW = re.compile(r"(?<![\w:])new\s+[A-Za-z_:][\w:<>,\s]*[\[(;]?")
MALLOC_FREE = re.compile(r"(?<![\w:.])(?:std::)?(?:malloc|calloc|realloc|free)\s*\(")
VECTOR_REF_PARAM = re.compile(r"const\s+std::vector<[^>]+>\s*&\s*\w+\s*[,)]")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line numbers."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            seg = text[i : n if end == -1 else end + 2]
            out.append("\n" * seg.count("\n"))
            i = n if end == -1 else end + 2
        elif ch in ('"', "'"):
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(" ")
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def relpath(path: Path) -> str:
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def in_sample_path(rel: str) -> bool:
    return any(rel.startswith(d + "/") for d in SAMPLE_PATH_DIRS)


def lint_file(path: Path) -> list[tuple[str, int, str, str]]:
    rel = relpath(path)
    text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
    findings = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        if RAND_CALL.search(line):
            findings.append((rel, lineno, "unmanaged-random",
                             "rand() is banned; use core/shared_random"))
        if RANDOM_DEVICE.search(line) and RANDOM_HOME not in rel:
            findings.append((rel, lineno, "unmanaged-random",
                             "std::random_device outside core/shared_random "
                             "breaks seed reproducibility"))
        if MALLOC_FREE.search(line):
            findings.append((rel, lineno, "raw-allocation",
                             "malloc/free are banned; use std::vector"))
        if RAW_NEW.search(line):
            findings.append((rel, lineno, "raw-allocation",
                             "raw new is banned; use std::vector / "
                             "std::make_unique"))
        if in_sample_path(rel) and path.suffix == ".hpp":
            if DOUBLE_BUFFER.search(line):
                findings.append((rel, lineno, "sample-path-double",
                                 "double-typed buffer in sample-path "
                                 "signature; use float/cf buffers per "
                                 "dsp/types.hpp"))
            if VECTOR_REF_PARAM.search(line):
                findings.append((rel, lineno, "vector-ref-param",
                                 "public DSP API should take cspan/fspan, "
                                 "not const std::vector&"))
    return findings


def main(argv: list[str]) -> int:
    roots = [REPO_ROOT / p for p in (argv or DEFAULT_PATHS)]
    files: list[Path] = []
    for root in roots:
        if not root.exists():
            # A typo'd path must not read as "0 violations" in CI.
            print(f"bhss_lint: error: no such file or directory: {root}",
                  file=sys.stderr)
            return 2
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))

    all_findings = []
    for f in files:
        all_findings.extend(lint_file(f))

    for rel, lineno, rule, msg in sorted(all_findings):
        print(f"{rel}:{lineno}: [{rule}] {msg}")

    n = len(all_findings)
    print(f"bhss_lint: {len(files)} files checked, "
          f"{n} violation{'s' if n != 1 else ''}.")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
