#!/usr/bin/env bash
# Deterministic chaos harness for the distributed campaign layer.
#
# Proves the fleet-level crash-recovery guarantee end to end on a real
# bench binary:
#   1. reference run, 1 thread, no checkpointing, no fleet -> ref.jsonl
#   2. supervised fleet (--supervise=N) with scripted worker SIGKILLs
#      (--chaos-kill=W:K,... — worker W SIGKILLs itself after journaling
#      its K-th shard, first incarnation only). The supervisor respawns
#      the killed workers with --resume, merges the per-worker journals
#      into the canonical journal, and publishes through the ordinary
#      single-process path                                 -> chaos.jsonl
#   3. assert chaos.jsonl (and --metrics/--trace telemetry) is
#      BYTE-identical to the reference (cmp)
#   4. drain phase: a fresh supervised fleet is SIGTERMed mid-flight; it
#      must exit with the resumable status (75), and re-running the same
#      supervised command must resume the merged journal and again
#      reproduce the reference bytes.
#
# The chaos schedule is deterministic (fixed worker:shard-count pairs, no
# timers), so every run kills the same work units — failures reproduce.
#
# Usage: chaos_campaign.sh [bench-binary] [packets]
# Env:   WORKERS (default 4), CHAOS (default "0:1,2:2"), DRAIN_AFTER_S
#        (default 1 — SIGTERM delay for the drain phase; the fleet is
#        killed mid-flight only if it is still running, otherwise the
#        drain degenerates to a full replay, which must still be
#        byte-identical).

set -euo pipefail

BENCH="${1:-build/bench/adapt_scenarios}"
PACKETS="${2:-240}"
WORKERS="${WORKERS:-4}"
CHAOS="${CHAOS:-0:1,2:2}"
DRAIN_AFTER_S="${DRAIN_AFTER_S:-1}"
EXIT_RESUMABLE=75

if [[ ! -x "$BENCH" ]]; then
  echo "chaos_campaign: bench binary not found: $BENCH" >&2
  exit 2
fi
BENCH="$(readlink -f "$BENCH")"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

echo "== reference run (1 thread, single process)"
"$BENCH" --packets="$PACKETS" --threads=1 --json=ref.jsonl \
  --metrics=ref_metrics.jsonl --trace=ref_trace.jsonl >/dev/null
[[ -s ref.jsonl ]] || { echo "FAIL: reference produced no JSONL" >&2; exit 1; }

echo "== supervised fleet ($WORKERS workers) with chaos kills ($CHAOS)"
"$BENCH" --packets="$PACKETS" --threads=2 --supervise="$WORKERS" \
  --chaos-kill="$CHAOS" --checkpoint=chaos.ckpt --json=chaos.jsonl \
  --metrics=chaos_metrics.jsonl --trace=chaos_trace.jsonl \
  >chaos.out 2>chaos.err || {
  echo "FAIL: supervised chaos run did not complete (see below)" >&2
  cat chaos.err >&2
  exit 1
}
grep -q '"worker_crashes"' chaos.err || {
  echo "FAIL: fleet taxonomy not reported on stderr" >&2
  cat chaos.err >&2
  exit 1
}
echo "   fleet: $(grep -o 'fleet {.*' chaos.err | head -1)"

cmp ref.jsonl chaos.jsonl || {
  echo "FAIL: supervised+chaos JSONL differs from the single-process reference" >&2
  exit 1
}
cmp ref_metrics.jsonl chaos_metrics.jsonl || {
  echo "FAIL: supervised+chaos metrics differ from the single-process reference" >&2
  exit 1
}
cmp ref_trace.jsonl chaos_trace.jsonl || {
  echo "FAIL: supervised+chaos trace differs from the single-process reference" >&2
  exit 1
}
echo "   supervised+chaos JSONL + metrics + trace byte-identical to the reference"

echo "== drain phase: SIGTERM the supervisor after ${DRAIN_AFTER_S}s"
rm -f drain.jsonl drain_metrics.jsonl drain_trace.jsonl
"$BENCH" --packets="$PACKETS" --threads=2 --supervise="$WORKERS" \
  --checkpoint=drain.ckpt --json=drain.jsonl \
  --metrics=drain_metrics.jsonl --trace=drain_trace.jsonl \
  >/dev/null 2>drain.err &
PID=$!
sleep "$DRAIN_AFTER_S"
if kill -TERM "$PID" 2>/dev/null; then
  wait "$PID" && rc=0 || rc=$?
  [[ "$rc" -eq "$EXIT_RESUMABLE" ]] || {
    echo "FAIL: expected resumable exit $EXIT_RESUMABLE after SIGTERM, got $rc" >&2
    cat drain.err >&2
    exit 1
  }
  [[ ! -f drain.jsonl ]] || { echo "FAIL: drained fleet published a JSONL" >&2; exit 1; }
  echo "   fleet drained with resumable exit status"
else
  wait "$PID" || true
  echo "   fleet finished before the drain — resume degenerates to a full replay"
fi

echo "== resume the drained fleet"
"$BENCH" --packets="$PACKETS" --threads=2 --supervise="$WORKERS" \
  --resume=drain.ckpt --json=drain.jsonl \
  --metrics=drain_metrics.jsonl --trace=drain_trace.jsonl >/dev/null 2>&1
cmp ref.jsonl drain.jsonl || {
  echo "FAIL: drained+resumed fleet JSONL differs from the reference" >&2
  exit 1
}
cmp ref_metrics.jsonl drain_metrics.jsonl || {
  echo "FAIL: drained+resumed fleet metrics differ from the reference" >&2
  exit 1
}
cmp ref_trace.jsonl drain_trace.jsonl || {
  echo "FAIL: drained+resumed fleet trace differs from the reference" >&2
  exit 1
}
echo "   drained+resumed fleet byte-identical to the reference"

echo "PASS: supervised fleet under chaos kills and drain/resume reproduces the reference bytes"
