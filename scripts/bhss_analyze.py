#!/usr/bin/env python3
"""bhss-analyze: AST-grounded determinism & hot-path analyzer.

Builds a call graph of the BHSS library tree and enforces:

  h1-hot-path-purity     nothing reachable from a BHSS_HOT root allocates,
                         locks a mutex, or performs I/O
  d1-deterministic-fold  merge/fold functions never iterate unordered
                         containers or depend on object addresses
  d2-rng-discipline      every RNG primitive lives in src/core/shared_random
  c1-contract-coverage   exported span/pointer-taking functions guard their
                         arguments (BHSS_REQUIRE / size()/empty()) before
                         the first dereference

Frontends: `--frontend=clang` uses libclang over compile_commands.json
entries (typed AST); `--frontend=lite` uses the bundled token-level
frontend (no dependencies); `auto` (default) prefers clang when the
bindings import, else lite. Both lower into the same IR and run the same
checks, so findings are comparable across environments.

Exit codes: 0 clean (or all findings baselined/suppressed), 1 findings,
2 usage/configuration error.

Examples:
  scripts/bhss_analyze.py --compile-db build/compile_commands.json
  scripts/bhss_analyze.py --paths tests/analyze_fixtures/h1_bad.cpp --json
  scripts/bhss_analyze.py --compile-db build/compile_commands.json \
      --write-baseline scripts/analyze_baseline.txt
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze import checks as checks_mod  # noqa: E402
from analyze import findings as findings_mod  # noqa: E402
from analyze import frontend_lite  # noqa: E402
from analyze.cpp_model import CodeModel  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "scripts" / "analyze_baseline.txt"
SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx")
HEADER_SUFFIXES = (".hpp", ".h", ".hh", ".hxx")


def _rel(p: Path) -> str:
    try:
        return p.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return p.as_posix()


def _files_from_compile_db(db_path: Path, scope: str) -> list[tuple[Path, list[str]]]:
    """(source file, compile args) pairs for repo sources under `scope`."""
    try:
        entries = json.loads(db_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"bhss-analyze: cannot read compile db {db_path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    out: list[tuple[Path, list[str]]] = []
    seen: set[str] = set()
    for ent in entries:
        f = Path(ent.get("file", ""))
        if not f.is_absolute():
            f = Path(ent.get("directory", ".")) / f
        rel = _rel(f)
        if rel in seen or not rel.startswith(scope) or f.suffix not in SOURCE_SUFFIXES:
            continue
        if not f.exists():
            continue
        seen.add(rel)
        if "arguments" in ent:
            args = [a for a in ent["arguments"][1:] if a != str(f)]
        else:
            args = ent.get("command", "").split()[1:]
            args = [a for a in args if a != str(f)]
        out.append((f, args))
    return sorted(out, key=lambda t: _rel(t[0]))


def _headers_under(scope: str) -> list[Path]:
    root = REPO_ROOT / scope
    if not root.is_dir():
        return []
    return sorted(p for p in root.rglob("*") if p.suffix in HEADER_SUFFIXES)


def _pick_frontend(requested: str, verbose: bool) -> str:
    if requested == "lite":
        return "lite"
    try:
        from analyze import frontend_clang

        if frontend_clang.available():
            return "clang"
        if requested == "clang":
            print("bhss-analyze: --frontend=clang requested but libclang is "
                  "not usable (install python3-clang + libclang)", file=sys.stderr)
            raise SystemExit(2)
    except ImportError:
        if requested == "clang":
            print("bhss-analyze: clang frontend not importable", file=sys.stderr)
            raise SystemExit(2)
    if verbose and requested == "auto":
        print("bhss-analyze: libclang unavailable, using lite frontend",
              file=sys.stderr)
    return "lite"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="bhss_analyze.py",
        description="AST-grounded determinism & hot-path analyzer for BHSS",
    )
    ap.add_argument("--compile-db", type=Path,
                    help="compile_commands.json driving the file list")
    ap.add_argument("--paths", nargs="+", type=Path,
                    help="analyze these files/directories instead of the db")
    ap.add_argument("--scope", default="src/",
                    help="repo-relative prefix filter for db entries (default: src/)")
    ap.add_argument("--checks", default=",".join(checks_mod.ALL_CHECKS),
                    help="comma-separated subset of checks to run")
    ap.add_argument("--frontend", choices=("auto", "lite", "clang"), default="auto")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help="baseline fingerprint file (default: scripts/analyze_baseline.txt)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file entirely")
    ap.add_argument("--write-baseline", type=Path, metavar="PATH",
                    help="write current findings as the new baseline and exit 0")
    ap.add_argument("--json", action="store_true", help="emit a JSON report")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    selected = tuple(c.strip() for c in args.checks.split(",") if c.strip())
    unknown = [c for c in selected if c not in checks_mod.ALL_CHECKS]
    if unknown:
        print(f"bhss-analyze: unknown checks: {', '.join(unknown)} "
              f"(known: {', '.join(checks_mod.ALL_CHECKS)})", file=sys.stderr)
        return 2

    # ---- collect files ----------------------------------------------------
    sources: list[tuple[Path, list[str]]] = []
    headers: list[Path] = []
    if args.paths:
        for p in args.paths:
            if p.is_dir():
                for q in sorted(p.rglob("*")):
                    if q.suffix in SOURCE_SUFFIXES:
                        sources.append((q, []))
                    elif q.suffix in HEADER_SUFFIXES:
                        headers.append(q)
            elif p.suffix in SOURCE_SUFFIXES:
                sources.append((p, []))
            elif p.suffix in HEADER_SUFFIXES:
                headers.append(p)
            else:
                print(f"bhss-analyze: skipping {p} (not C++)", file=sys.stderr)
        if not sources and not headers:
            print("bhss-analyze: no C++ files in --paths", file=sys.stderr)
            return 2
    elif args.compile_db:
        sources = _files_from_compile_db(args.compile_db, args.scope)
        headers = _headers_under(args.scope.rstrip("/"))
        if not sources:
            print(f"bhss-analyze: no entries under '{args.scope}' in "
                  f"{args.compile_db}", file=sys.stderr)
            return 2
    else:
        print("bhss-analyze: need --compile-db or --paths "
              "(hint: cmake -B build -S . writes build/compile_commands.json)",
              file=sys.stderr)
        return 2

    frontend = _pick_frontend(args.frontend, args.verbose)

    # ---- parse ------------------------------------------------------------
    model = CodeModel()
    sup_index = findings_mod.SuppressionIndex()
    scanned = 0

    def scan_suppressions(path: Path, rel: str) -> None:
        try:
            sup_index.add_file(rel, path.read_text(encoding="utf-8", errors="replace"))
        except OSError:
            pass

    if frontend == "clang":
        from analyze import frontend_clang

        for path, cargs in sources:
            rel = _rel(path)
            frontend_clang.parse_tu(model, path, rel, cargs, REPO_ROOT)
            scan_suppressions(path, rel)
            scanned += 1
    else:
        for path, _cargs in sources:
            rel = _rel(path)
            frontend_lite.parse_file(model, path, rel)
            scan_suppressions(path, rel)
            scanned += 1
    # Headers: inline definitions, BHSS_HOT-annotated declarations and
    # member types live here. The lite lowering also backs the clang run
    # (libclang lowers TU-reachable header code; lite adds decl-site
    # annotation merging either way).
    for path in headers:
        rel = _rel(path)
        frontend_lite.parse_file(model, path, rel)
        scan_suppressions(path, rel)
        scanned += 1

    # ---- check ------------------------------------------------------------
    all_findings = checks_mod.run_checks(model, selected)

    if args.verbose:
        nbody = sum(1 for f in model.functions if f.has_body)
        nhot = sum(1 for f in model.functions if f.hot)
        print(f"bhss-analyze: {scanned} files, {len(model.functions)} functions "
              f"({nbody} with bodies, {nhot} hot)", file=sys.stderr)

    active, suppressed = findings_mod.apply_suppressions(all_findings, sup_index)
    active.extend(sup_index.missing_reason_findings(
        checks_mod.ALL_CHECKS + ("suppression-missing-reason",)))

    if args.write_baseline:
        findings_mod.write_baseline(args.write_baseline, active)
        print(f"bhss-analyze: wrote {len(active)} fingerprints to "
              f"{args.write_baseline}")
        return 0

    baselined: list[findings_mod.Finding] = []
    if not args.no_baseline:
        known = findings_mod.load_baseline(args.baseline)
        still_active = []
        for f in active:
            (baselined if f.fingerprint() in known else still_active).append(f)
        active = still_active

    render = findings_mod.render_json if args.json else findings_mod.render_report
    print(render(active, suppressed, baselined, scanned, frontend, "bhss-analyze"))
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
