#!/usr/bin/env bash
# Kill-and-resume smoke test for the campaign checkpoint layer.
#
# Proves the crash-recovery guarantee end to end on a real bench binary:
#   1. reference run, 1 thread, no checkpointing        -> ref.jsonl
#   2. checkpointed run, 8 threads, SIGKILLed mid-flight (no chance to
#      clean up) -> journal survives, no published JSONL
#   3. --resume of the same command                      -> kill.jsonl
#   4. assert kill.jsonl is BYTE-identical to ref.jsonl (cmp)
#   5. same again with SIGINT: the graceful drain must exit with the
#      distinct resumable status (75) and resume to the identical bytes.
#
# Every run also carries --metrics/--trace, so the same byte-identity bar
# is applied to the observability streams: the telemetry JSONL of an
# 8-thread killed-and-resumed run must equal the 1-thread uninterrupted
# reference byte for byte (the journal's O records make this possible).
# The .timing sidecar carries wall-clock scope stats and is deliberately
# NOT compared.
#
# Usage: kill_resume_smoke.sh [bench-binary] [packets]
# Works under ASan (slower binaries just move the kill point earlier in
# the sweep, which is exactly the point).

set -euo pipefail

BENCH="${1:-build/bench/ablation_hop_dwell}"
PACKETS="${2:-6}"
KILL_AFTER_S="${KILL_AFTER_S:-2}"
EXIT_RESUMABLE=75

if [[ ! -x "$BENCH" ]]; then
  echo "kill_resume_smoke: bench binary not found: $BENCH" >&2
  exit 2
fi
BENCH="$(readlink -f "$BENCH")"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

echo "== reference run (1 thread, no checkpoint)"
"$BENCH" --packets="$PACKETS" --threads=1 --json=ref.jsonl \
  --metrics=ref_metrics.jsonl --trace=ref_trace.jsonl >/dev/null
[[ -s ref.jsonl ]] || { echo "FAIL: reference produced no JSONL" >&2; exit 1; }
[[ -s ref_metrics.jsonl ]] || { echo "FAIL: reference produced no metrics JSONL" >&2; exit 1; }
[[ -s ref_trace.jsonl ]] || { echo "FAIL: reference produced no trace JSONL" >&2; exit 1; }

echo "== checkpointed run (8 threads), SIGKILL after ${KILL_AFTER_S}s"
"$BENCH" --packets="$PACKETS" --threads=8 --json=kill.jsonl --checkpoint=kill.ckpt \
  --metrics=kill_metrics.jsonl --trace=kill_trace.jsonl \
  >/dev/null 2>&1 &
PID=$!
sleep "$KILL_AFTER_S"
if kill -9 "$PID" 2>/dev/null; then
  wait "$PID" && rc=0 || rc=$?
  [[ "$rc" -eq 137 ]] || { echo "FAIL: expected exit 137 after SIGKILL, got $rc" >&2; exit 1; }
  echo "   killed mid-flight (journal: $(wc -l < kill.ckpt) lines)"
else
  wait "$PID" || true
  echo "   run finished before the kill — resume degenerates to a full replay"
fi
[[ -s kill.ckpt ]] || { echo "FAIL: no journal written" >&2; exit 1; }
[[ ! -f kill.jsonl ]] || { echo "FAIL: half-finished JSONL was published" >&2; exit 1; }
[[ ! -f kill_metrics.jsonl ]] || { echo "FAIL: half-finished metrics JSONL was published" >&2; exit 1; }
[[ ! -f kill_trace.jsonl ]] || { echo "FAIL: half-finished trace JSONL was published" >&2; exit 1; }

echo "== resume"
"$BENCH" --packets="$PACKETS" --threads=8 --json=kill.jsonl --resume=kill.ckpt \
  --metrics=kill_metrics.jsonl --trace=kill_trace.jsonl >/dev/null
cmp ref.jsonl kill.jsonl || {
  echo "FAIL: resumed JSONL differs from the uninterrupted reference" >&2
  exit 1
}
cmp ref_metrics.jsonl kill_metrics.jsonl || {
  echo "FAIL: resumed metrics JSONL differs from the uninterrupted reference" >&2
  exit 1
}
cmp ref_trace.jsonl kill_trace.jsonl || {
  echo "FAIL: resumed trace JSONL differs from the uninterrupted reference" >&2
  exit 1
}
echo "   resumed JSONL + metrics + trace byte-identical to the reference"

echo "== graceful drain (SIGINT) must exit $EXIT_RESUMABLE"
rm -f int.jsonl int.jsonl.tmp int.ckpt int_metrics.jsonl int_trace.jsonl
"$BENCH" --packets="$PACKETS" --threads=8 --json=int.jsonl --checkpoint=int.ckpt \
  --metrics=int_metrics.jsonl --trace=int_trace.jsonl \
  >/dev/null 2>&1 &
PID=$!
sleep "$KILL_AFTER_S"
if kill -INT "$PID" 2>/dev/null; then
  wait "$PID" && rc=0 || rc=$?
  [[ "$rc" -eq "$EXIT_RESUMABLE" ]] || {
    echo "FAIL: expected resumable exit $EXIT_RESUMABLE after SIGINT, got $rc" >&2
    exit 1
  }
  [[ ! -f int.jsonl ]] || { echo "FAIL: drained run published a JSONL" >&2; exit 1; }
  echo "   drained with resumable exit status"
else
  wait "$PID" || true
  echo "   run finished before the interrupt — resume degenerates to a full replay"
fi

"$BENCH" --packets="$PACKETS" --threads=8 --json=int.jsonl --resume=int.ckpt \
  --metrics=int_metrics.jsonl --trace=int_trace.jsonl >/dev/null
cmp ref.jsonl int.jsonl || {
  echo "FAIL: drained+resumed JSONL differs from the reference" >&2
  exit 1
}
cmp ref_metrics.jsonl int_metrics.jsonl || {
  echo "FAIL: drained+resumed metrics JSONL differs from the reference" >&2
  exit 1
}
cmp ref_trace.jsonl int_trace.jsonl || {
  echo "FAIL: drained+resumed trace JSONL differs from the reference" >&2
  exit 1
}
echo "   drained+resumed JSONL + metrics + trace byte-identical to the reference"

echo "== supervised fleet (2 workers), worker 0 chaos-SIGKILLed after its first shard"
# Same byte-identity bar for the distributed path: the supervisor respawns
# the killed worker with --resume, merges the per-worker journals into the
# canonical journal and publishes through the ordinary single-process
# path. Runs the same ASan-instrumented binary as the phases above, so
# worker crash/respawn and the journal merge are exercised under the
# sanitizer too.
rm -f fleet.jsonl fleet.ckpt* fleet_metrics.jsonl fleet_trace.jsonl
"$BENCH" --packets="$PACKETS" --threads=2 --supervise=2 --chaos-kill=0:1 \
  --checkpoint=fleet.ckpt --json=fleet.jsonl \
  --metrics=fleet_metrics.jsonl --trace=fleet_trace.jsonl \
  >/dev/null 2>fleet.err || {
  echo "FAIL: supervised fleet run did not complete" >&2
  cat fleet.err >&2
  exit 1
}
cmp ref.jsonl fleet.jsonl || {
  echo "FAIL: supervised fleet JSONL differs from the reference" >&2
  exit 1
}
cmp ref_metrics.jsonl fleet_metrics.jsonl || {
  echo "FAIL: supervised fleet metrics differ from the reference" >&2
  exit 1
}
cmp ref_trace.jsonl fleet_trace.jsonl || {
  echo "FAIL: supervised fleet trace differs from the reference" >&2
  exit 1
}
echo "   supervised fleet JSONL + metrics + trace byte-identical to the reference"

echo "PASS: kill/resume, drain/resume and the supervised fleet all reproduce the reference bytes (incl. telemetry)"
