#!/usr/bin/env python3
"""Gate kernel benchmark results against the committed baseline.

Compares a fresh google-benchmark JSON export (perf_kernels --json=...)
against BENCH_kernels.json and fails when any benchmark shared by both
files regressed by more than the tolerance (default 15 %). Benchmarks
present on only one side are reported but never fail the gate, so adding
or retiring a benchmark does not require touching the baseline in the
same commit.

Modes:
  perf_compare.py RESULTS.json                 gate against BENCH_kernels.json
  perf_compare.py RESULTS.json --baseline P    gate against P
  perf_compare.py RESULTS.json --calibrate     rewrite the baseline from RESULTS

`--baseline` may be given several times to gate one results file against
multiple committed baselines in a single invocation; `--tolerance` is
then either given once (applied to every baseline) or once per baseline,
paired in order. CI uses this to gate the kernel baseline at 15 % and
the observability/adaptation baseline (BENCH_obs.json) at its tighter
2 % unobserved-hot-path budget in one pass. `--calibrate` refuses to run
with more than one baseline: recalibration is a deliberate, per-file act.

Both the gate and --calibrate refuse results whose embedded
`bhss_build_flavor` context (stamped by perf_kernels' custom main) is not
"release": debug or sanitizer numbers are meaningless as perf data.
Baselines recorded before the flavour stamp existed are accepted with a
warning.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_kernels.json"
DEFAULT_TOLERANCE = 0.15


def load_rows(path: Path) -> tuple[dict[str, float], dict]:
    with open(path) as f:
        doc = json.load(f)
    rows: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev from --benchmark_repetitions)
        # would double-count; keep only plain iteration rows.
        if row.get("run_type", "iteration") != "iteration":
            continue
        rows[row["name"]] = float(row["real_time"])
    return rows, doc.get("context", {})


def check_flavor(context: dict, what: str) -> list[str]:
    flavor = context.get("bhss_build_flavor")
    if flavor is None:
        return [f"note: {what} has no bhss_build_flavor stamp (pre-stamp recording?)"]
    if flavor != "release":
        raise SystemExit(
            f"error: {what} was produced by a '{flavor}' build of perf_kernels; "
            "only release numbers may be gated or recorded (see EXPERIMENTS.md)")
    return []


def gate(fresh: dict[str, float], baseline: Path, tolerance: float) -> int:
    base, base_ctx = load_rows(baseline)
    for note in check_flavor(base_ctx, str(baseline)):
        print(note)

    shared = sorted(set(fresh) & set(base))
    only_fresh = sorted(set(fresh) - set(base))
    only_base = sorted(set(base) - set(fresh))
    if not shared:
        print(f"error: {baseline} and results share no benchmark names",
              file=sys.stderr)
        return 2

    failures: list[str] = []
    width = max(len(n) for n in shared)
    for name in shared:
        ratio = fresh[name] / base[name] if base[name] > 0.0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
            failures.append(name)
        print(f"  {name:<{width}}  {base[name]:>12.1f} -> {fresh[name]:>12.1f} ns "
              f"({ratio:6.2f}x)  {verdict}")
    for name in only_fresh:
        print(f"  {name:<{width}}  (new benchmark, not gated)")
    for name in only_base:
        print(f"  {name:<{width}}  (missing from results, not gated)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{tolerance:.0%} of {baseline.name}: {', '.join(failures)}",
              file=sys.stderr)
        print("If the slowdown is intended, re-record with --calibrate on an "
              "idle machine and commit the new baseline.", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared benchmarks within {tolerance:.0%} "
          f"of {baseline.name}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="fresh perf_kernels JSON export")
    parser.add_argument("--baseline", type=Path, action="append", default=None,
                        help="baseline to gate against; repeatable "
                             f"(default {DEFAULT_BASELINE.name})")
    parser.add_argument("--tolerance", type=float, action="append", default=None,
                        help="allowed fractional slowdown before failing; one "
                             "value for all baselines or one per --baseline, "
                             f"paired in order (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--calibrate", action="store_true",
                        help="rewrite the baseline from the results instead of gating")
    args = parser.parse_args()

    baselines: list[Path] = args.baseline or [DEFAULT_BASELINE]
    tolerances: list[float] = args.tolerance or [DEFAULT_TOLERANCE]
    if len(tolerances) == 1:
        tolerances = tolerances * len(baselines)
    if len(tolerances) != len(baselines):
        print(f"error: {len(baselines)} baseline(s) but {len(tolerances)} "
              "tolerance(s); give one tolerance for all or one per baseline",
              file=sys.stderr)
        return 2

    fresh, fresh_ctx = load_rows(args.results)
    if not fresh:
        print(f"error: no benchmark rows in {args.results}", file=sys.stderr)
        return 2
    for note in check_flavor(fresh_ctx, str(args.results)):
        print(note)

    if args.calibrate:
        if len(baselines) != 1:
            print("error: --calibrate takes exactly one --baseline; "
                  "recalibrate each file in its own invocation", file=sys.stderr)
            return 2
        baselines[0].write_text(Path(args.results).read_text())
        print(f"calibrated: {baselines[0]} <- {args.results} ({len(fresh)} rows)")
        return 0

    worst = 0
    for baseline, tolerance in zip(baselines, tolerances):
        if len(baselines) > 1:
            print(f"\n== {baseline.name} (tolerance {tolerance:.0%}) ==")
        worst = max(worst, gate(fresh, baseline, tolerance))
    return worst


if __name__ == "__main__":
    sys.exit(main())
