#!/usr/bin/env bash
# Line-coverage report + baseline gate for the production sources (src/).
#
# Usage:
#   scripts/coverage_report.sh [build-dir]
#
# The build dir defaults to build-coverage/ and must have been configured
# with -DBHSS_COVERAGE=ON (the `coverage` CMake preset does this):
#
#   cmake --preset coverage
#   cmake --build --preset coverage -j
#   scripts/coverage_report.sh
#
# The script resets stale counters, runs the full ctest suite, aggregates
# gcov's JSON intermediate format with an embedded python3 helper (the CI
# image ships gcc + gcov only — no gcovr/lcov/genhtml), and writes
#
#   <build-dir>/coverage/index.html          per-file table, uncovered lines
#   <build-dir>/coverage/coverage_total.txt  total line coverage, e.g. "87.3"
#
# Gate: if scripts/coverage_baseline.txt exists, a total below that number
# fails the script (exit 1). The baseline is recorded slightly under the
# measured value so environment noise does not flap the gate; raise it when
# a PR meaningfully grows coverage, never lower it to make CI pass.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-build-coverage}"
if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
  echo "coverage_report: ${build_dir} is not configured." >&2
  echo "coverage_report: run  cmake --preset coverage && cmake --build --preset coverage -j" >&2
  exit 1
fi
if ! grep -q 'BHSS_COVERAGE:BOOL=ON' "${build_dir}/CMakeCache.txt"; then
  echo "coverage_report: ${build_dir} was not configured with BHSS_COVERAGE=ON." >&2
  exit 1
fi

gcov_bin="${GCOV:-gcov}"
if ! command -v "${gcov_bin}" > /dev/null 2>&1; then
  echo "coverage_report: ${gcov_bin} not found on PATH." >&2
  exit 1
fi

# Stale .gcda from a previous run would double-count; reset before ctest.
find "${build_dir}" -name '*.gcda' -delete

jobs="$(nproc 2> /dev/null || echo 2)"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

out_dir="${build_dir}/coverage"
mkdir -p "${out_dir}"

GCOV_BIN="${gcov_bin}" python3 - "${build_dir}" "${repo_root}/src" "${out_dir}" << 'PYEOF'
import html
import json
import os
import subprocess
import sys

build_dir, src_prefix, out_dir = sys.argv[1], sys.argv[2], sys.argv[3]
src_prefix = os.path.abspath(src_prefix) + os.sep
gcov = os.environ.get("GCOV_BIN", "gcov")

gcnos = []
for root, _dirs, names in os.walk(build_dir):
    gcnos.extend(os.path.abspath(os.path.join(root, n))
                 for n in names if n.endswith(".gcno"))
gcnos.sort()
if not gcnos:
    print("coverage_report: no .gcno files under", build_dir, file=sys.stderr)
    sys.exit(1)

# path -> {line_number -> max hit count across all objects including it}.
# max, not sum: the same header line compiled into N objects is one line.
coverage = {}
failed = 0
for gcno in gcnos:
    proc = subprocess.run([gcov, "--json-format", "--stdout", gcno],
                          cwd=build_dir, capture_output=True, text=True)
    if proc.returncode != 0:
        failed += 1
        continue
    for raw in proc.stdout.splitlines():
        raw = raw.strip()
        if not raw.startswith("{"):
            continue
        doc = json.loads(raw)
        for f in doc.get("files", []):
            path = f.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(build_dir, path)
            path = os.path.abspath(path)
            if not path.startswith(src_prefix):
                continue
            lines = coverage.setdefault(path, {})
            for ln in f.get("lines", []):
                n = ln.get("line_number")
                c = ln.get("count", 0)
                if n is not None:
                    lines[n] = max(lines.get(n, 0), c)

if failed:
    print(f"coverage_report: warning: gcov failed on {failed}/{len(gcnos)} objects",
          file=sys.stderr)
if not coverage:
    print("coverage_report: no instrumented lines under", src_prefix, file=sys.stderr)
    sys.exit(1)

rows = []
total_lines = total_hit = 0
for path in sorted(coverage):
    lines = coverage[path]
    hit = sum(1 for c in lines.values() if c > 0)
    total_lines += len(lines)
    total_hit += hit
    missed = sorted(n for n, c in lines.items() if c == 0)
    rel = os.path.relpath(path, os.path.dirname(src_prefix.rstrip(os.sep)))
    rows.append((rel, hit, len(lines), missed))

total_pct = 100.0 * total_hit / total_lines


def pct_cell(hit, total):
    pct = 100.0 * hit / total if total else 100.0
    klass = "good" if pct >= 90.0 else ("warn" if pct >= 70.0 else "bad")
    return pct, klass


def compress(missed):
    """Render sorted line numbers as compact ranges: 3-5, 9, 12-14."""
    spans, start, prev = [], None, None
    for n in missed:
        if start is None:
            start = prev = n
        elif n == prev + 1:
            prev = n
        else:
            spans.append((start, prev))
            start = prev = n
    if start is not None:
        spans.append((start, prev))
    return ", ".join(str(a) if a == b else f"{a}-{b}" for a, b in spans)


out = [
    "<!DOCTYPE html><html><head><meta charset='utf-8'>",
    "<title>bhss line coverage</title><style>",
    "body{font-family:monospace;margin:2em}table{border-collapse:collapse}",
    "td,th{border:1px solid #999;padding:3px 8px;text-align:left}",
    ".good{background:#cfc}.warn{background:#ffc}.bad{background:#fcc}",
    ".miss{color:#666;font-size:85%}",
    "</style></head><body><h1>bhss line coverage (src/)</h1>",
    f"<p>Total: <b>{total_pct:.1f}%</b> ({total_hit}/{total_lines} lines)</p>",
    "<table><tr><th>file</th><th>covered</th><th>%</th><th>uncovered lines</th></tr>",
]
for rel, hit, total, missed in rows:
    pct, klass = pct_cell(hit, total)
    out.append(
        f"<tr><td>{html.escape(rel)}</td><td>{hit}/{total}</td>"
        f"<td class='{klass}'>{pct:.1f}</td>"
        f"<td class='miss'>{html.escape(compress(missed))}</td></tr>")
out.append("</table></body></html>")

with open(os.path.join(out_dir, "index.html"), "w") as fh:
    fh.write("\n".join(out))
with open(os.path.join(out_dir, "coverage_total.txt"), "w") as fh:
    fh.write(f"{total_pct:.1f}\n")
print(f"coverage_report: total {total_pct:.1f}% ({total_hit}/{total_lines} lines, "
      f"{len(rows)} files)")
PYEOF

total="$(cat "${out_dir}/coverage_total.txt")"
echo "coverage_report: report at ${out_dir}/index.html"

baseline_file="${repo_root}/scripts/coverage_baseline.txt"
if [[ -f "${baseline_file}" ]]; then
  baseline="$(tr -d '[:space:]' < "${baseline_file}")"
  if python3 -c "import sys; sys.exit(0 if float('${total}') >= float('${baseline}') else 1)"; then
    echo "coverage_report: ${total}% >= baseline ${baseline}% — gate passed."
  else
    echo "coverage_report: ${total}% is BELOW the recorded baseline ${baseline}%." >&2
    echo "coverage_report: add tests for the uncovered lines (see the report)," >&2
    echo "coverage_report: do not lower scripts/coverage_baseline.txt to pass." >&2
    exit 1
  fi
else
  echo "coverage_report: no baseline recorded (scripts/coverage_baseline.txt missing); gate skipped."
fi
