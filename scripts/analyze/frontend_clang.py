"""libclang frontend: lowers real ASTs into the shared CodeModel IR.

Used when the `clang` python bindings and a matching libclang shared
library are installed (CI installs python3-clang + libclang; the minimal
dev container does not ship libclang.so, so `--frontend=auto` falls back
to the lite frontend there).

The typed AST gives this frontend two things the token frontend
approximates: exact callee referents (so the call graph needs no
heuristic receiver typing) and attribute-level hot annotations
([[clang::annotate("bhss_hot")]] rather than the macro token).
"""

from __future__ import annotations

from pathlib import Path

from .cpp_model import (
    EV_ALLOC,
    EV_CALL,
    EV_IO,
    EV_MUTEX,
    EV_RNG,
    EV_UNORDERED,
    CodeModel,
    Event,
    FunctionInfo,
    Param,
)

HOT_ANNOTATION_PAYLOAD = "bhss_hot"

_ALLOC_CALLEES = {"malloc", "calloc", "realloc", "aligned_alloc", "free",
                  "make_unique", "make_shared", "push_back", "emplace_back",
                  "resize", "reserve", "insert", "assign", "operator new",
                  "operator new[]"}
_MUTEX_CALLEES = {"lock", "unlock", "try_lock"}
_MUTEX_TYPES = ("mutex", "lock_guard", "unique_lock", "scoped_lock",
                "shared_lock")
_IO_CALLEES = {"printf", "fprintf", "fopen", "fwrite", "fread", "fflush",
               "puts", "operator<<"}
_RNG_TYPES = ("random_device", "mt19937", "minstd_rand",
              "default_random_engine", "ranlux")
_UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset")


class ClangUnavailable(RuntimeError):
    pass


def _import_cindex():
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError as e:  # pragma: no cover - environment dependent
        raise ClangUnavailable(f"python clang bindings not importable: {e}") from e
    try:
        cindex.Index.create()
    except Exception as e:  # pragma: no cover - environment dependent
        raise ClangUnavailable(f"libclang not loadable: {e}") from e
    return cindex


def available() -> bool:
    try:
        _import_cindex()
        return True
    except ClangUnavailable:
        return False


def _sketch(type_spelling: str) -> str:
    s = type_spelling.replace("const", "").replace("&", "").strip()
    pointer = s.endswith("*")
    s = s.rstrip("* ")
    if "<" in s:
        s = s.split("<", 1)[0]
    base = s.split("::")[-1].strip() or s.strip()
    return base + ("*" if pointer else "")


def parse_tu(model: CodeModel, path: Path, rel: str, args: list[str],
             repo_root: Path) -> None:
    """Parse one TU with the compile args from compile_commands.json and
    lower every function defined in files under the repo into the model."""
    cindex = _import_cindex()
    index = cindex.Index.create()
    tu = index.parse(str(path), args=args,
                     options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
    ck = cindex.CursorKind
    fn_kinds = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE, ck.CONVERSION_FUNCTION}

    def rel_of(cursor) -> str | None:
        loc = cursor.location
        if loc.file is None:
            return None
        try:
            return Path(loc.file.name).resolve().relative_to(repo_root).as_posix()
        except ValueError:
            return None

    def qname(cursor) -> str:
        parts: list[str] = []
        c = cursor
        while c is not None and c.kind != ck.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def is_hot(cursor) -> bool:
        return any(
            ch.kind == ck.ANNOTATE_ATTR and ch.spelling == HOT_ANNOTATION_PAYLOAD
            for ch in cursor.get_children()
        )

    def lower_body(cursor, fn: FunctionInfo) -> None:
        for node in cursor.walk_preorder():
            line = node.location.line or fn.line
            k = node.kind
            if k == ck.CXX_NEW_EXPR:
                fn.events.append(Event(EV_ALLOC, line, detail="heap new"))
            elif k == ck.CALL_EXPR:
                callee = node.referenced
                name = callee.spelling if callee is not None else node.spelling
                if not name:
                    continue
                recv_type = ""
                children = list(node.get_children())
                if children:
                    recv_type = children[0].type.spelling if children[0].type else ""
                if name in _ALLOC_CALLEES:
                    fn.events.append(Event(EV_ALLOC, line, detail=f"{name}()"))
                elif name in _MUTEX_CALLEES and any(m in recv_type for m in _MUTEX_TYPES):
                    fn.events.append(Event(EV_MUTEX, line, detail=f"{name}()"))
                elif name in _IO_CALLEES:
                    fn.events.append(Event(EV_IO, line, detail=f"{name}()"))
                elif name in ("rand", "srand"):
                    fn.events.append(Event(EV_RNG, line, detail=f"{name}()"))
                else:
                    cls = ""
                    if callee is not None and callee.semantic_parent is not None:
                        cls = callee.semantic_parent.spelling or ""
                    fn.events.append(
                        Event(EV_CALL, line, callee=name, qualifier=cls)
                    )
            elif k == ck.VAR_DECL:
                ts = node.type.spelling if node.type else ""
                base = _sketch(ts)
                fn.local_types[node.spelling] = base
                if any(m in ts for m in _MUTEX_TYPES):
                    fn.events.append(Event(EV_MUTEX, line, detail=f"'{node.spelling}' is a {base}"))
                elif any(r in ts for r in _RNG_TYPES):
                    fn.events.append(Event(EV_RNG, line, detail=f"std RNG '{base}'"))
            elif k == ck.CXX_FOR_RANGE_STMT:
                for chd in node.get_children():
                    ts = chd.type.spelling if chd.type else ""
                    if any(u in ts for u in _UNORDERED):
                        fn.events.append(
                            Event(EV_UNORDERED, line,
                                  detail=f"range-for over '{_sketch(ts)}'")
                        )
                        break

    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in fn_kinds:
            continue
        r = rel_of(cursor)
        if r is None:
            continue
        cls = ""
        sp = cursor.semantic_parent
        if sp is not None and sp.kind in (ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE):
            cls = sp.spelling
        params = []
        for a in cursor.get_arguments():
            ts = a.type.spelling if a.type else ""
            base = _sketch(ts)
            params.append(
                Param(
                    name=a.spelling or "",
                    sketch=base,
                    is_span="span" in base or base in ("cspan", "fspan", "cspan_mut", "fspan_mut"),
                    is_pointer=base.endswith("*"),
                    is_vector=base in ("vector", "cvec", "fvec", "string"),
                )
            )
        fn = FunctionInfo(
            qname=qname(cursor),
            file=r,
            line=cursor.location.line,
            params=params,
            cls=cls,
            hot=is_hot(cursor),
            has_body=cursor.is_definition(),
            declared_in_header=r.endswith((".hpp", ".h", ".hh")),
        )
        if fn.has_body:
            lower_body(cursor, fn)
        model.add_function(fn)
