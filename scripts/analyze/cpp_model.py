"""Frontend-independent IR for the BHSS analyzer.

Both frontends (lite tokenizer and libclang) lower translation units into
this model: a set of `FunctionInfo`s carrying *events* (calls, allocations,
locks, I/O, unordered-container iteration, RNG touches, span derefs and
guards), plus enough type context (class members, locals, params) to
resolve method calls through receivers. `CodeModel` then links call events
into a call graph the checks traverse.

Resolution is deliberately conservative: a call resolves only when the
callee is qualified, the receiver's class is known, or the name is an
unambiguous free function / same-class method. Unresolved calls are kept
(for -v debugging) but never propagate taint — the analyzer prefers a
missed edge over a spurious cross-class edge (e.g. every `process` method
in the tree aliasing together).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Event kinds.
EV_CALL = "call"
EV_ALLOC = "alloc"
EV_MUTEX = "mutex"
EV_IO = "io"
EV_UNORDERED = "unordered"
EV_ADDR_ORDER = "addr-order"
EV_RNG = "rng"
EV_DEREF = "deref"  # unguarded span/pointer deref candidate (param-tagged)
EV_GUARD = "guard"  # BHSS_REQUIRE/ENSURE/DEBUG_ASSERT site


@dataclass
class Event:
    kind: str
    line: int
    detail: str = ""
    callee: str = ""  # EV_CALL: unqualified callee name
    qualifier: str = ""  # EV_CALL: explicit qualifier (last component or full)
    receiver: str = ""  # EV_CALL: receiver variable name, if any
    param: str = ""  # EV_DEREF / EV_GUARD: parameter name


@dataclass
class Param:
    name: str
    sketch: str  # normalized base type, e.g. 'cspan', 'span', 'float*'
    is_span: bool = False
    is_pointer: bool = False
    is_vector: bool = False


@dataclass
class FunctionInfo:
    qname: str  # e.g. 'bhss::dsp::FirFilter::process'
    file: str  # repo-relative posix path
    line: int
    params: list[Param] = field(default_factory=list)
    cls: str = ""  # enclosing class (last component), '' for free functions
    hot: bool = False  # carries BHSS_HOT / [[clang::annotate("bhss_hot")]]
    has_body: bool = False
    declared_in_header: bool = False
    events: list[Event] = field(default_factory=list)
    local_types: dict[str, str] = field(default_factory=dict)  # var -> class sketch

    @property
    def name(self) -> str:
        return self.qname.rsplit("::", 1)[-1]

    def overload_key(self) -> tuple:
        return (self.qname, tuple(p.sketch for p in self.params))

    def arity_key(self) -> tuple:
        return (self.qname, len(self.params))


class CodeModel:
    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self._decls: list[FunctionInfo] = []
        self.members: dict[str, dict[str, str]] = {}  # class -> member var -> type sketch
        self.classes: set[str] = set()
        # Events not attributable to a function body (e.g. an RNG-engine
        # member declaration at class scope): (file, line, kind, detail).
        self.file_events: list[tuple[str, int, str, str]] = []
        # Indexes built by link().
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.by_method: dict[tuple[str, str], list[FunctionInfo]] = {}

    # ---------------------------------------------------------- population

    def add_function(self, fn: FunctionInfo) -> None:
        (self.functions if fn.has_body else self._decls).append(fn)

    def add_class(self, cls: str) -> None:
        self.classes.add(cls)

    def add_member(self, cls: str, name: str, sketch: str) -> None:
        self.members.setdefault(cls, {})[name] = sketch

    # ------------------------------------------------------------- linking

    def link(self) -> None:
        """Merge declarations into definitions (annotation + header-export
        transfer) and build call-resolution indexes."""
        by_overload: dict[tuple, list[FunctionInfo]] = {}
        by_arity: dict[tuple, list[FunctionInfo]] = {}
        by_qname: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions:
            by_overload.setdefault(fn.overload_key(), []).append(fn)
            by_arity.setdefault(fn.arity_key(), []).append(fn)
            by_qname.setdefault(fn.qname, []).append(fn)

        for decl in self._decls:
            targets = by_overload.get(decl.overload_key())
            if not targets:
                cands = by_arity.get(decl.arity_key(), [])
                targets = cands if len(cands) == 1 else None
            if not targets:
                cands = by_qname.get(decl.qname, [])
                targets = cands if len(cands) == 1 else None
            if not targets:
                # Declaration without a body anywhere we parsed (extern,
                # defaulted, or unmatched overload): keep it as a bodyless
                # function so annotation/coverage checks still see it.
                self.functions.append(decl)
                by_overload.setdefault(decl.overload_key(), []).append(decl)
                by_arity.setdefault(decl.arity_key(), []).append(decl)
                by_qname.setdefault(decl.qname, []).append(decl)
                continue
            for t in targets:
                t.hot = t.hot or decl.hot
                t.declared_in_header = t.declared_in_header or decl.declared_in_header

        self.by_name.clear()
        self.by_method.clear()
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
            if fn.cls:
                self.by_method.setdefault((fn.cls, fn.name), []).append(fn)

    # ---------------------------------------------------------- resolution

    def methods_of(self, cls: str, name: str) -> list[FunctionInfo]:
        return self.by_method.get((cls, name), [])

    def receiver_type(self, fn: FunctionInfo, var: str) -> str:
        t = fn.local_types.get(var, "")
        if t:
            return t
        for p in fn.params:
            if p.name == var:
                return p.sketch
        if fn.cls:
            t = self.members.get(fn.cls, {}).get(var, "")
            if t:
                return t
        return ""

    def resolve_call(self, fn: FunctionInfo, ev: Event) -> list[FunctionInfo]:
        """Candidate definitions for a call event (bodies only)."""
        name = ev.callee
        if ev.qualifier:
            qual = ev.qualifier.rsplit("::", 1)[-1]
            cands = self.methods_of(qual, name)
            if not cands:
                # Namespace qualifier (e.g. dsp::to_complex) — free functions
                # whose qname ends with qualifier::name.
                suffix = f"{qual}::{name}"
                cands = [f for f in self.by_name.get(name, []) if f.qname.endswith(suffix)]
            return [f for f in cands if f.has_body]
        if ev.receiver:
            rtype = self.receiver_type(fn, ev.receiver)
            if rtype and rtype in self.classes:
                return [f for f in self.methods_of(rtype, name) if f.has_body]
            return []  # unknown receiver: do not guess
        # Bare call: same-class methods first, then free functions.
        if fn.cls:
            cands = [f for f in self.methods_of(fn.cls, name) if f.has_body]
            if cands:
                return cands
        frees = [f for f in self.by_name.get(name, []) if not f.cls and f.has_body]
        # Prefer same-namespace free functions when the name is ambiguous.
        if len(frees) > 1:
            ns = fn.qname.rsplit("::", 2)[0]
            scoped = [f for f in frees if f.qname.startswith(ns + "::")]
            if scoped:
                return scoped
        return frees
