"""Dependency-free C++ frontend for the BHSS analyzer.

Lowers source files into the `cpp_model` IR using the token stream from
`lexer.py`: scope tracking (namespaces / classes), function definition and
declaration extraction with overload keys, member/local variable typing
for receiver resolution, and per-body event extraction (calls,
allocations, locks, I/O, unordered iteration, RNG touches, span derefs
and contract guards).

This frontend is the always-available engine: the baked CI image and the
dev container ship gcc only (no libclang.so), yet the determinism gates
must run everywhere ctest runs. `frontend_clang.py` produces the same IR
from a real AST when libclang is installed; `--frontend=auto` prefers it.

Parsing philosophy: structural, not grammatical. We only need to be exact
about *where functions start and end*, *what they call through which
receiver*, and *which typed events occur inside them*. Constructs the
repo's style guide already bans (K&R macros, multi-declarator members,
function-try-blocks) are out of contract.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import lexer
from .cpp_model import (
    EV_ADDR_ORDER,
    EV_ALLOC,
    EV_CALL,
    EV_DEREF,
    EV_GUARD,
    EV_IO,
    EV_MUTEX,
    EV_RNG,
    EV_UNORDERED,
    CodeModel,
    Event,
    FunctionInfo,
    Param,
)
from .lexer import KIND_ID, KIND_STR, Tok, match_group

# Words that can precede '(' without being a callable.
NOT_A_CALL = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "decltype",
    "noexcept", "catch", "static_assert", "typeid", "throw", "case", "new",
    "delete", "alignas", "assert", "defined", "co_return", "co_await",
    "requires", "explicit", "operator",
}

TYPE_QUALIFIER_WORDS = {
    "const", "volatile", "typename", "struct", "class", "enum", "constexpr",
    "constinit", "consteval", "static", "inline", "extern", "mutable",
    "thread_local", "register", "friend", "virtual", "explicit", "unsigned",
    "signed", "std",
}

SPAN_TYPES = {"span", "cspan", "fspan", "cspan_mut", "fspan_mut", "string_view"}
VECTOR_TYPES = {"vector", "cvec", "fvec", "string", "deque", "basic_string"}
VEC_ALLOC_METHODS = {
    "push_back", "emplace_back", "resize", "reserve", "insert", "assign",
    "append", "emplace", "shrink_to_fit",
}
MUTEX_GUARD_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
MUTEX_TYPES = {"mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
               "condition_variable", "condition_variable_any"}
IO_STREAM_TYPES = {"ofstream", "ifstream", "fstream", "stringstream",
                   "ostringstream", "istringstream"}
IO_CALLS = {
    "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs", "fputc",
    "putchar", "fopen", "fclose", "fwrite", "fread", "fflush", "fsync",
    "fseek", "getline", "system", "perror",
}
IO_IDS = {"cout", "cerr", "clog"}
RNG_ENGINE_TYPES = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
    "random_device",
}
UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
CONTRACT_MACROS = {"BHSS_REQUIRE", "BHSS_ENSURE", "BHSS_DEBUG_ASSERT"}
ALLOC_CALLS = {"malloc", "calloc", "realloc", "free", "aligned_alloc",
               "make_unique", "make_shared", "strdup"}
HOT_ANNOTATION = "BHSS_HOT"

_SEEDISH = re.compile(r"seed", re.IGNORECASE)


class _Scope:
    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind  # 'ns' | 'class'
        self.name = name


def parse_file(model: CodeModel, path: Path, rel: str) -> None:
    text = path.read_text(encoding="utf-8", errors="replace")
    toks = lexer.tokenize(text)
    _Parser(model, toks, rel, path.suffix in (".hpp", ".h", ".hh", ".hxx")).run()


class _Parser:
    def __init__(self, model: CodeModel, toks: list[Tok], rel: str, is_header: bool):
        self.model = model
        self.toks = toks
        self.rel = rel
        self.is_header = is_header
        self.scopes: list[_Scope] = []

    # -------------------------------------------------------------- helpers

    def _ns_path(self) -> list[str]:
        return [s.name for s in self.scopes if s.name]

    def _cur_class(self) -> str:
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.name
        return ""

    def _skip_to(self, i: int, stop: str) -> int:
        """Advance past the next top-level `stop` token, balancing groups."""
        toks = self.toks
        while i < len(toks):
            t = toks[i].text
            if t == stop:
                return i + 1
            if t in "({[":
                i = match_group(toks, i) + 1
                continue
            if t == "}":  # unbalanced: let the main loop handle scope pops
                return i
            i += 1
        return i

    # ----------------------------------------------------------- main loop

    def run(self) -> None:
        toks = self.toks
        i = 0
        decl_start = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            txt = t.text
            if txt == "template":
                # Skip the parameter list; the declaration itself continues.
                if i + 1 < n and toks[i + 1].text == "<":
                    i = self._skip_angles(i + 1)
                else:
                    i += 1
                continue
            if txt == "namespace":
                i, decl_start = self._handle_namespace(i)
                continue
            if txt in ("class", "struct", "union") and self._starts_decl(decl_start, i):
                i, decl_start = self._handle_class(i)
                continue
            if txt == "enum":
                i = self._skip_to(i, ";")
                decl_start = i
                continue
            if txt in ("using", "typedef", "static_assert", "friend", "asm"):
                i = self._skip_to(i, ";")
                decl_start = i
                continue
            if txt == "extern" and i + 2 < n and toks[i + 1].kind == KIND_STR:
                if toks[i + 2].text == "{":
                    self.scopes.append(_Scope("ns", ""))
                    i += 3
                else:
                    i += 2
                decl_start = i
                continue
            if txt == ";":
                self._maybe_member_decl(decl_start, i)
                i += 1
                decl_start = i
                continue
            if txt == "}":
                if self.scopes:
                    self.scopes.pop()
                i += 1
                # `};` after a class — consume silently via the ';' branch.
                decl_start = i
                continue
            if txt == "{":
                # Brace at declaration scope that is not a function body we
                # recognised (e.g. a braced initializer): skip it whole.
                i = match_group(toks, i) + 1
                decl_start = i
                continue
            if txt == "(":
                ni, nd = self._try_function(decl_start, i)
                if ni is not None:
                    i, decl_start = ni, nd
                    continue
                i = match_group(toks, i) + 1
                continue
            i += 1

    def _starts_decl(self, decl_start: int, i: int) -> bool:
        """class/struct begins a declaration only when it is (close to) the
        first word — not when used as an elaborated type inside one."""
        for j in range(decl_start, i):
            if self.toks[j].kind == KIND_ID and self.toks[j].text not in (
                "template", "inline", "constexpr", "static", "friend", "typedef",
            ):
                return False
            if self.toks[j].text in (";", "}", "{"):
                return False
        return True

    def _skip_angles(self, i: int) -> int:
        """Skip a <...> group starting at i ('<'), guarding against
        non-template '<'."""
        depth = 0
        toks = self.toks
        while i < len(toks):
            t = toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t in ("{", ";"):
                return i  # bail out: was a comparison after all
            elif t in "([":
                i = match_group(toks, i)
            i += 1
        return i

    def _handle_namespace(self, i: int) -> tuple[int, int]:
        toks = self.toks
        j = i + 1
        parts: list[str] = []
        while j < len(toks) and (toks[j].kind == KIND_ID or toks[j].text == "::"):
            if toks[j].kind == KIND_ID:
                parts.append(toks[j].text)
            j += 1
        if j < len(toks) and toks[j].text == "{":
            for p in parts or [""]:
                self.scopes.append(_Scope("ns", p))
            if not parts:
                pass
            elif len(parts) > 1:
                # One scope per component was pushed; matching '}' pops only
                # one — compensate by treating A::B as a single scope.
                for _ in range(len(parts) - 1):
                    self.scopes.pop()
                self.scopes[-1].name = "::".join(parts)
            return j + 1, j + 1
        if not parts:
            # anonymous namespace `namespace {`
            if j < len(toks) and toks[j].text == "{":
                self.scopes.append(_Scope("ns", ""))
                return j + 1, j + 1
        k = self._skip_to(j, ";")
        return k, k

    def _handle_class(self, i: int) -> tuple[int, int]:
        toks = self.toks
        j = i + 1
        name = ""
        # Skip attributes / alignas.
        while j < len(toks):
            t = toks[j]
            if t.text == "[":
                j = match_group(toks, j) + 1
                continue
            if t.text == "alignas" and j + 1 < len(toks) and toks[j + 1].text == "(":
                j = match_group(toks, j + 1) + 1
                continue
            if t.kind == KIND_ID and t.text != "final":
                name = t.text
                j += 1
                continue
            break
        # Find what terminates the class-head: '{' (definition), ';' (fwd).
        while j < len(toks) and toks[j].text not in ("{", ";"):
            if toks[j].text == "<":
                j = self._skip_angles(j)
                continue
            if toks[j].text == "(":
                j = match_group(toks, j) + 1
                continue
            j += 1
        if j < len(toks) and toks[j].text == "{":
            self.model.add_class(name or "<anon>")
            self.scopes.append(_Scope("class", name or "<anon>"))
            return j + 1, j + 1
        return j + 1, j + 1

    # -------------------------------------------------- member declarations

    def _maybe_member_decl(self, decl_start: int, semi: int) -> None:
        """Register `Type name_;` members met at class scope (no parens)."""
        if not self.scopes or self.scopes[-1].kind != "class":
            return
        toks = self.toks
        head = toks[decl_start:semi]
        if not head or any(t.text in ("(", ")") for t in head):
            return
        # Drop initializers: `int x = 3;` / `cvec v{};` / bitfields.
        for stop_idx, t in enumerate(head):
            if t.text in ("=", "{", ":") and not (t.text == ":" and head[stop_idx - 1].text == ":"):
                head = head[:stop_idx]
                break
        if len(head) < 2 or head[-1].kind != KIND_ID:
            return
        name = head[-1].text
        sketch = _type_sketch(head[:-1])
        if not sketch:
            return
        cls = self._cur_class()
        self.model.add_member(cls, name, sketch)
        base = sketch.rstrip("*")
        if base in RNG_ENGINE_TYPES:
            self.model_file_event(EV_RNG, head[-1].line,
                                  f"member '{name}' of RNG engine type '{base}'")
        if base in MUTEX_TYPES:
            # Member mutexes are fine per se; they matter when locked (H1).
            pass

    def model_file_event(self, kind: str, line: int, detail: str) -> None:
        events = getattr(self.model, "file_events", None)
        if events is None:
            events = []
            self.model.file_events = events  # type: ignore[attr-defined]
        events.append((self.rel, line, kind, detail))

    # ------------------------------------------------- function recognition

    def _try_function(self, decl_start: int, lp: int) -> tuple[int | None, int]:
        """Called with toks[lp] == '('. Returns (new_index, new_decl_start)
        when a function declaration/definition was consumed, else (None, _)."""
        toks = self.toks
        k = lp - 1
        if k < decl_start:
            return None, decl_start
        # --- name (identifier, operator cluster, destructor) ---
        name = ""
        if toks[k].kind == KIND_ID:
            name = toks[k].text
            k -= 1
            if k >= decl_start and toks[k].text == "operator":
                name = "operator " + name  # conversion operator
                k -= 1
            elif k >= decl_start and toks[k].text == "~":
                name = "~" + name
                k -= 1
        else:
            cluster = []
            while k >= decl_start and toks[k].kind == "p" and toks[k].text not in ("(", ")", "{", "}", ";", ","):
                cluster.insert(0, toks[k].text)
                k -= 1
            if k >= decl_start and toks[k].text == "operator" and cluster:
                name = "operator" + "".join(cluster)
                k -= 1
            else:
                return None, decl_start
        if name in NOT_A_CALL or name in TYPE_QUALIFIER_WORDS:
            return None, decl_start
        # --- explicit qualifier chain: A::B::name ---
        qual_parts: list[str] = []
        while k - 1 >= decl_start and toks[k].text == "::" and toks[k - 1].kind == KIND_ID:
            qual_parts.insert(0, toks[k - 1].text)
            k -= 2
        head = toks[decl_start:lp]
        # A '=' in the head means variable-with-initializer, not a function.
        if any(t.text == "=" for t in head):
            return None, decl_start
        rp = match_group(toks, lp)
        # --- trailers ---
        j = rp + 1
        n = len(toks)
        while j < n:
            t = toks[j].text
            if t in ("const", "noexcept", "override", "final", "&", "mutable", "throw"):
                j += 1
                if j < n and toks[j].text == "(" and t in ("noexcept", "throw"):
                    j = match_group(toks, j) + 1
                continue
            if t == "&" or t == "&&":
                j += 1
                continue
            if t == "[":
                j = match_group(toks, j) + 1
                continue
            if t == "->":  # trailing return type
                j += 1
                while j < n and toks[j].text not in ("{", ";", "="):
                    if toks[j].text == "<":
                        j = self._skip_angles(j)
                        continue
                    if toks[j].text in "([":
                        j = match_group(toks, j) + 1
                        continue
                    j += 1
                continue
            break
        if j >= n:
            return None, decl_start
        term = toks[j].text
        is_def = False
        body_open = -1
        if term == "{":
            is_def = True
            body_open = j
        elif term == ";":
            pass
        elif term == "=":
            # = default / = delete / = 0;
            j = self._skip_to(j, ";") - 1
            if j < 0:
                return None, decl_start
        elif term == ":":
            # Constructor initializer list: scan to the body '{'.
            jj = j + 1
            while jj < n:
                tt = toks[jj].text
                if tt == "(":
                    jj = match_group(toks, jj) + 1
                    continue
                if tt == "{":
                    if toks[jj - 1].kind == KIND_ID:
                        jj = match_group(toks, jj) + 1  # member brace-init
                        continue
                    is_def = True
                    body_open = jj
                    break
                if tt == ";":
                    return None, decl_start
                jj += 1
            if not is_def:
                return None, decl_start
            j = jj
        else:
            return None, decl_start

        # A bare call at namespace scope (macro invocation etc.) has no
        # return type: require at least one head token (type/attr/ctor name
        # match) unless it's a constructor/destructor of the current class.
        cur_cls = self._cur_class()
        is_ctor_like = (name == cur_cls or name == "~" + cur_cls
                        or (qual_parts and name in (qual_parts[-1], "~" + qual_parts[-1])))
        head_sig = [t for t in toks[decl_start:k + 1] if t.text not in ("inline", "static", "constexpr", "virtual", "explicit", "friend", "[", "]")]
        if not head_sig and not is_ctor_like:
            return None, decl_start

        hot = any(t.text == HOT_ANNOTATION for t in head) or _has_annotate(head)
        params = _parse_params(toks, lp, rp)
        cls = cur_cls
        if qual_parts:
            last = qual_parts[-1]
            if last[:1].isupper():
                cls = last
        # _ns_path() already includes the enclosing class scope for
        # declarations inside a class body; out-of-class definitions carry
        # the class in their explicit qualifier instead.
        qname_parts = [p for p in self._ns_path() if p]
        if qual_parts:
            qname_parts += qual_parts
        qname_parts.append(name)
        fn = FunctionInfo(
            qname="::".join(qname_parts),
            file=self.rel,
            line=toks[lp].line,
            params=params,
            cls=cls,
            hot=hot,
            has_body=is_def,
            declared_in_header=self.is_header,
        )
        if is_def:
            body_close = match_group(toks, body_open)
            _extract_events(fn, toks, body_open, body_close, self.model)
            self.model.add_function(fn)
            return body_close + 1, body_close + 1
        self.model.add_function(fn)
        end = self._skip_to(j, ";") if term not in (";",) else j + 1
        return end, end


def _has_annotate(head: list[Tok]) -> bool:
    """Recognise a literal [[clang::annotate("bhss_hot")]] (the clang
    frontend sees the attribute; the lite frontend sees these tokens)."""
    for idx, t in enumerate(head):
        if t.kind == KIND_ID and t.text == "annotate":
            return True  # string payload was blanked by the lexer; macro names the intent
    return False


# ------------------------------------------------------------- param parsing

def _parse_params(toks: list[Tok], lp: int, rp: int) -> list[Param]:
    inner = toks[lp + 1 : rp]
    if not inner or (len(inner) == 1 and inner[0].text == "void"):
        return []
    chunks: list[list[Tok]] = [[]]
    depth = 0
    angle = 0
    for idx, t in enumerate(inner):
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
        elif t.text == "<" and idx > 0 and inner[idx - 1].kind == KIND_ID:
            angle += 1
        elif t.text == ">" and angle > 0:
            angle -= 1
        elif t.text == "," and depth == 0 and angle == 0:
            chunks.append([])
            continue
        chunks[-1].append(t)
    params: list[Param] = []
    for chunk in chunks:
        if not chunk:
            continue
        for stop_idx, t in enumerate(chunk):
            if t.text == "=":
                chunk = chunk[:stop_idx]
                break
        if not chunk:
            continue
        name = ""
        type_toks = chunk
        if len(chunk) >= 2 and chunk[-1].kind == KIND_ID:
            name = chunk[-1].text
            type_toks = chunk[:-1]
        sketch = _type_sketch(type_toks)
        base = sketch.rstrip("*")
        params.append(
            Param(
                name=name,
                sketch=sketch,
                is_span=base in SPAN_TYPES,
                is_pointer=sketch.endswith("*"),
                is_vector=base in VECTOR_TYPES,
            )
        )
    return params


def _type_sketch(type_toks: list[Tok]) -> str:
    """Normalized base type: last top-level identifier outside template
    args, with a '*' suffix for pointers."""
    base = ""
    angle = 0
    pointer = False
    for idx, t in enumerate(type_toks):
        if t.text == "<" and idx > 0 and type_toks[idx - 1].kind == KIND_ID:
            angle += 1
            continue
        if t.text == ">":
            if angle > 0:
                angle -= 1
            continue
        if angle > 0:
            continue
        if t.text == "*":
            pointer = True
        if t.kind == KIND_ID and t.text not in TYPE_QUALIFIER_WORDS:
            base = t.text
            pointer = False
    return base + ("*" if pointer else "")


# ------------------------------------------------------------ body analysis

_LOCAL_DECL_STARTERS = {";", "{", "}", "(", ","}


def _extract_events(fn: FunctionInfo, toks: list[Tok], body_open: int,
                    body_close: int, model: CodeModel) -> None:
    ev = fn.events
    guard_until = -1  # inside a BHSS_* contract group: derefs count as guards
    span_params = [p for p in fn.params if (p.is_span or p.is_pointer) and p.name]
    span_names = {p.name for p in span_params}
    time_calls: list[int] = []
    seedish_seen = False

    j = body_open + 1
    while j < body_close:
        t = toks[j]
        txt = t.text
        kind = t.kind

        if kind == KIND_ID and _SEEDISH.search(txt):
            seedish_seen = True

        nxt = toks[j + 1].text if j + 1 < body_close else ""

        # ---- contract macros: guard + keep scanning their args as guards
        if txt in CONTRACT_MACROS and nxt == "(":
            close = match_group(toks, j + 1)
            group_names = {x.text for x in toks[j + 2 : close] if x.kind == KIND_ID}
            for p in span_params:
                if p.name in group_names:
                    ev.append(Event(EV_GUARD, t.line, detail=txt, param=p.name))
            guard_until = close
            j += 2
            continue

        # ---- range-for over unordered containers
        if txt == "for" and nxt == "(":
            close = match_group(toks, j + 1)
            colon = -1
            depth = 0
            for x in range(j + 2, close):
                xt = toks[x].text
                if xt in "([{":
                    depth += 1
                elif xt in ")]}":
                    depth -= 1
                elif xt == ":" and depth == 0:
                    colon = x
                    break
            if colon != -1:
                expr = toks[colon + 1 : close]
                expr_ids = [x.text for x in expr if x.kind == KIND_ID]
                iter_type = ""
                if expr_ids:
                    iter_type = model.receiver_type(fn, expr_ids[-1]).rstrip("*")
                if iter_type in UNORDERED_TYPES or any(e in UNORDERED_TYPES for e in expr_ids):
                    ev.append(Event(EV_UNORDERED, t.line,
                                    detail=f"range-for over unordered container "
                                           f"'{' '.join(expr_ids) or '?'}'"))
            j += 1
            continue

        # ---- new / delete expressions
        if txt == "new" and kind == KIND_ID:
            prev = toks[j - 1].text if j > body_open else ""
            if prev == "operator":
                j += 1
                continue
            if nxt == "(":
                close = match_group(toks, j + 1)
                group = {x.text for x in toks[j + 1 : close]}
                if "nothrow" in group:
                    ev.append(Event(EV_ALLOC, t.line, detail="heap new (std::nothrow)"))
                # else: placement-new — constructs in existing storage, no
                # heap allocation.
                j = close + 1
                continue
            ev.append(Event(EV_ALLOC, t.line, detail="heap new"))
            j += 1
            continue
        if txt == "delete" and kind == KIND_ID:
            prev = toks[j - 1].text if j > body_open else ""
            if prev not in ("operator", "="):
                ev.append(Event(EV_ALLOC, t.line, detail="delete expression"))
            j += 1
            continue

        # ---- plain identifiers of interest
        if kind == KIND_ID and txt in IO_IDS:
            ev.append(Event(EV_IO, t.line, detail=f"std::{txt}"))
            j += 1
            continue
        if kind == KIND_ID and txt == "random_device":
            ev.append(Event(EV_RNG, t.line, detail="std::random_device"))
            j += 1
            continue
        if kind == KIND_ID and txt in RNG_ENGINE_TYPES and nxt != "(":
            ev.append(Event(EV_RNG, t.line, detail=f"std RNG engine '{txt}'"))
            j += 1
            continue
        if txt == "reinterpret_cast" and nxt == "<":
            close = j + 1
            depth = 0
            while close < body_close:
                if toks[close].text == "<":
                    depth += 1
                elif toks[close].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                close += 1
            inner = {x.text for x in toks[j + 1 : close]}
            if "uintptr_t" in inner or "intptr_t" in inner:
                ev.append(Event(EV_ADDR_ORDER, t.line,
                                detail="pointer-to-integer cast (address-dependent value)"))
            j = close + 1
            continue

        # ---- local variable declarations (registers receiver types)
        if kind == KIND_ID and j > body_open and toks[j - 1].text in _LOCAL_DECL_STARTERS:
            consumed = _try_local_decl(fn, toks, j, body_close, ev)
            if consumed:
                j = consumed
                continue

        # ---- calls
        if kind == KIND_ID and nxt == "(" and txt not in NOT_A_CALL:
            receiver = ""
            qualifier = ""
            if j >= body_open + 2:
                p1 = toks[j - 1].text
                if p1 in (".", "->") and toks[j - 2].kind == KIND_ID:
                    receiver = toks[j - 2].text
                elif p1 == "::" and toks[j - 2].kind == KIND_ID:
                    parts = [toks[j - 2].text]
                    k = j - 3
                    while k - 1 > body_open and toks[k].text == "::" and toks[k - 1].kind == KIND_ID:
                        parts.insert(0, toks[k - 1].text)
                        k -= 2
                    qualifier = "::".join(parts)
            if txt.isupper() and "_" in txt:
                j += 1  # macro invocation (BHSS_TRACE_SCOPE etc.) — opaque
                continue
            if txt in ALLOC_CALLS and qualifier in ("", "std"):
                ev.append(Event(EV_ALLOC, t.line, detail=f"{txt}()"))
            elif txt in VEC_ALLOC_METHODS and receiver:
                rtype = model.receiver_type(fn, receiver).rstrip("*")
                growing = rtype in VECTOR_TYPES or rtype in UNORDERED_TYPES or rtype in ("map", "set", "auto", "")
                if growing:
                    ev.append(Event(EV_ALLOC, t.line,
                                    detail=f"{receiver}.{txt}() may (re)allocate"))
            elif txt in ("lock", "unlock", "try_lock") and receiver:
                ev.append(Event(EV_MUTEX, t.line, detail=f"{receiver}.{txt}()"))
            elif txt in IO_CALLS and qualifier in ("", "std"):
                ev.append(Event(EV_IO, t.line, detail=f"{txt}()"))
            elif txt in ("rand", "srand") and qualifier in ("", "std"):
                ev.append(Event(EV_RNG, t.line, detail=f"{txt}()"))
            elif txt == "time" and qualifier in ("", "std"):
                time_calls.append(t.line)
            elif txt in ("begin", "end", "cbegin", "cend") and receiver:
                rtype = model.receiver_type(fn, receiver).rstrip("*")
                if rtype in UNORDERED_TYPES:
                    ev.append(Event(EV_UNORDERED, t.line,
                                    detail=f"iteration over unordered container '{receiver}'"))
            elif txt in VECTOR_TYPES:
                close = match_group(toks, j + 1)
                if close > j + 2:
                    ev.append(Event(EV_ALLOC, t.line, detail=f"temporary {txt}(...)"))
            else:
                ev.append(Event(EV_CALL, t.line, callee=txt,
                                qualifier=qualifier, receiver=receiver))
            j += 1
            continue

        # ---- span parameter deref / guard bookkeeping (C1)
        if kind == KIND_ID and txt in span_names:
            in_guard = j <= guard_until
            if nxt == "." and j + 2 < body_close:
                mem = toks[j + 2].text
                if mem in ("size", "size_bytes", "empty", "length"):
                    ev.append(Event(EV_GUARD, t.line, detail=f"{txt}.{mem}()", param=txt))
                elif mem in ("front", "back") or (
                    mem == "data" and j + 4 < body_close and toks[j + 4].text == "["
                ):
                    ev.append(Event(EV_GUARD if in_guard else EV_DEREF, t.line,
                                    detail=f"{txt}.{mem}()", param=txt))
            elif nxt == "[":
                ev.append(Event(EV_GUARD if in_guard else EV_DEREF, t.line,
                                detail=f"{txt}[...]", param=txt))
            elif (nxt in ("!", "=") and j + 3 < body_close
                  and toks[j + 2].text == "=" and toks[j + 3].text == "nullptr"):
                ev.append(Event(EV_GUARD, t.line, detail=f"{txt} {nxt}= nullptr", param=txt))
            elif toks[j - 1].text == "!" and j - 1 > body_open:
                ev.append(Event(EV_GUARD, t.line, detail=f"!{txt} null check", param=txt))
            elif toks[j - 1].text == "*" and j - 1 > body_open:
                pp = toks[j - 2]
                # `* p` is a deref unless pp holds a value (then it's a
                # multiplication). Keywords like `return` are id-kind but
                # valueless, so `return *p` still counts.
                valueless_kw = pp.text in ("return", "throw", "case", "co_return")
                if valueless_kw or (pp.kind != KIND_ID and pp.kind != "num"
                                    and pp.text not in (")", "]")):
                    ev.append(Event(EV_GUARD if in_guard else EV_DEREF, t.line,
                                    detail=f"*{txt}", param=txt))
            j += 1
            continue

        j += 1

    if time_calls and seedish_seen:
        for line in time_calls:
            ev.append(Event(EV_RNG, line,
                            detail="time()-derived value in a seed context"))


def _try_local_decl(fn: FunctionInfo, toks: list[Tok], j: int, body_close: int,
                    ev: list[Event]) -> int | None:
    """Match `[const|static|...]* Qualified::Type[<...>] [cv/ref]* name` at j.
    Registers the local's type; emits alloc/mutex/io/rng/unordered events
    implied by the declaration. Returns the index of `name` + 1 (scanning
    resumes inside any initializer), or None if no declaration matched."""
    k = j
    base = ""
    saw_type = False
    while k < body_close:
        t = toks[k]
        if t.kind == KIND_ID and t.text in ("const", "static", "thread_local",
                                            "constexpr", "volatile", "typename"):
            k += 1
            continue
        break
    # Qualified type chain.
    while k < body_close:
        t = toks[k]
        if t.kind != KIND_ID:
            break
        base = t.text
        k += 1
        if k < body_close and toks[k].text == "<":
            depth = 0
            while k < body_close:
                if toks[k].text == "<":
                    depth += 1
                elif toks[k].text == ">":
                    depth -= 1
                    if depth == 0:
                        k += 1
                        break
                elif toks[k].text in (";", "{", ")"):
                    return None  # comparison, not template args
                k += 1
        if k < body_close and toks[k].text == "::":
            k += 1
            continue
        break
    if not base or base in NOT_A_CALL:
        return None
    # cv/ref/pointer between type and name.
    while k < body_close and toks[k].text in ("&", "*", "const"):
        k += 1
    if k >= body_close or toks[k].kind != KIND_ID:
        return None
    name_tok = toks[k]
    after = toks[k + 1].text if k + 1 < body_close else ""
    if after not in ("=", "(", "{", ";", ","):
        return None
    if base in TYPE_QUALIFIER_WORDS or base == "auto" and after not in ("=",):
        pass
    fn.local_types[name_tok.text] = base
    line = name_tok.line
    if base in MUTEX_GUARD_TYPES or base in MUTEX_TYPES:
        ev.append(Event(EV_MUTEX, line, detail=f"'{name_tok.text}' is a {base}"))
    elif base in RNG_ENGINE_TYPES:
        ev.append(Event(EV_RNG, line, detail=f"local std RNG engine '{base}'"))
    elif base in IO_STREAM_TYPES:
        ev.append(Event(EV_IO, line, detail=f"'{name_tok.text}' is a {base}"))
    elif base in VECTOR_TYPES and after in ("(", "{"):
        close = match_group(toks, k + 1)
        if close > k + 2:
            ev.append(Event(EV_ALLOC, line,
                            detail=f"'{name_tok.text}' ({base}) constructed with contents"))
    return k + 1
