"""bhss-analyze: AST-grounded determinism & hot-path analyzer.

Package layout:
  lexer.py           C++ tokenizer shared by the lite frontend and bhss_lint
  findings.py        unified finding schema, suppressions, baseline handling
  cpp_model.py       frontend-independent IR (functions, events, call graph)
  frontend_lite.py   dependency-free token-level frontend (always available)
  frontend_clang.py  libclang frontend (typed AST; used when python3-clang
                     and libclang.so are installed, e.g. in CI)
  checks.py          H1/D1/D2/C1 checks over the IR + call graph

Entry point: scripts/bhss_analyze.py.
"""

__version__ = "1.0"
