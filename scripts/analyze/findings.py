"""Unified finding schema for all BHSS static-analysis tooling.

Both `bhss_analyze.py` (the AST-grounded checks H1/D1/D2/C1) and
`bhss_lint.py` (the regex conventions R1-R4) emit findings in this one
format, share the same inline suppression syntax and can be gated against
the same committed baseline.

Human format (one line per finding, stable sort):
    <file>:<line>: [<check>] <message>   (in <function>)

Inline suppression, on the offending line or the line directly above it:
    // BHSS_ANALYZE_SUPPRESS(<check>): <reason>
A suppression without a reason is itself a finding — every accepted
violation must say why it is acceptable.

Baseline file (scripts/analyze_baseline.txt): one fingerprint per line,
`#` comments allowed. Fingerprints are line-number-free so unrelated edits
do not churn the baseline. The target state of the baseline is EMPTY:
prefer fixing, then inline-suppressing with a reason; baselining exists to
land the tool against a temporarily dirty tree without losing the gate on
*new* findings.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA_VERSION = 1

SUPPRESS_RE = re.compile(
    r"//\s*BHSS_ANALYZE_SUPPRESS\(\s*([A-Za-z0-9_,\s-]+?)\s*\)\s*(?::\s*(.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    check: str
    file: str  # repo-relative posix path
    line: int
    message: str
    function: str = ""  # qualified function, when attributable

    def fingerprint(self) -> str:
        # Line numbers excluded: moving code must not churn the baseline.
        return f"{self.check}|{self.file}|{self.function}|{self.message}"

    def render(self) -> str:
        where = f"   (in {self.function})" if self.function else ""
        return f"{self.file}:{self.line}: [{self.check}] {self.message}{where}"

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.check, self.message)

    def to_json(self) -> dict:
        return {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "message": self.message,
        }


@dataclass
class Suppression:
    checks: tuple[str, ...]
    reason: str
    line: int
    used: bool = False


def scan_suppressions(text: str) -> list[Suppression]:
    """Collect BHSS_ANALYZE_SUPPRESS comments from raw file text."""
    out: list[Suppression] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            checks = tuple(c.strip() for c in m.group(1).split(",") if c.strip())
            out.append(Suppression(checks, (m.group(2) or "").strip(), lineno))
    return out


@dataclass
class SuppressionIndex:
    """Per-file suppression lookup. A suppression covers its own line and
    the line immediately below it (comment-above style)."""

    by_file: dict[str, list[Suppression]] = field(default_factory=dict)

    def add_file(self, rel: str, text: str) -> None:
        sups = scan_suppressions(text)
        if sups:
            self.by_file[rel] = sups

    def match(self, f: Finding) -> Suppression | None:
        for sup in self.by_file.get(f.file, ()):
            if f.line in (sup.line, sup.line + 1) and f.check in sup.checks:
                sup.used = True
                return sup
        return None

    def missing_reason_findings(self, checks: tuple[str, ...] | None = None) -> list[Finding]:
        """Reason-less suppressions as findings. With `checks`, only police
        suppressions that name at least one of those checks (each tool
        polices its own rule namespace)."""
        out = []
        for rel, sups in self.by_file.items():
            for sup in sups:
                if checks is not None and not any(c in checks for c in sup.checks):
                    continue
                if not sup.reason:
                    out.append(
                        Finding(
                            check="suppression-missing-reason",
                            file=rel,
                            line=sup.line,
                            message=(
                                "BHSS_ANALYZE_SUPPRESS("
                                + ",".join(sup.checks)
                                + ") must carry a reason: "
                                "'// BHSS_ANALYZE_SUPPRESS(check): why'"
                            ),
                        )
                    )
        return out


def apply_suppressions(
    findings: list[Finding], index: SuppressionIndex
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (active, suppressed)."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        (suppressed if index.match(f) else active).append(f)
    return active, suppressed


def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    out: set[str] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            out.add(line)
    return out


def write_baseline(path: Path, findings: list[Finding]) -> None:
    lines = [
        "# bhss-analyze baseline. One fingerprint per accepted pre-existing",
        "# finding: check|file|function|message. Target state: EMPTY.",
        "# Prefer fixing, or an inline '// BHSS_ANALYZE_SUPPRESS(check): reason'.",
    ]
    lines += sorted({f.fingerprint() for f in findings})
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def render_report(
    findings: list[Finding],
    suppressed: list[Finding],
    baselined: list[Finding],
    files_scanned: int,
    frontend: str,
    tool: str,
) -> str:
    lines = [f.render() for f in sorted(findings, key=Finding.sort_key)]
    n = len(findings)
    lines.append(
        f"{tool}: {files_scanned} files, frontend={frontend}: "
        f"{n} finding{'s' if n != 1 else ''}"
        f" ({len(suppressed)} suppressed, {len(baselined)} baselined)."
    )
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    suppressed: list[Finding],
    baselined: list[Finding],
    files_scanned: int,
    frontend: str,
    tool: str,
) -> str:
    doc = {
        "schema_version": SCHEMA_VERSION,
        "tool": tool,
        "frontend": frontend,
        "files_scanned": files_scanned,
        "findings": [f.to_json() for f in sorted(findings, key=Finding.sort_key)],
        "suppressed": [f.to_json() for f in sorted(suppressed, key=Finding.sort_key)],
        "baselined": [f.to_json() for f in sorted(baselined, key=Finding.sort_key)],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
