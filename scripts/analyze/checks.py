"""The four AST-grounded checks over the CodeModel call graph.

H1 hot-path-purity    — nothing reachable from a BHSS_HOT root may
                        allocate, lock, or perform I/O.
D1 deterministic-fold — merge/fold functions (and their callees) must not
                        iterate unordered containers or derive values from
                        addresses; the Monte-Carlo merge contract requires
                        a reduction order independent of scheduling.
D2 rng-discipline     — every RNG primitive lives in src/core/shared_random;
                        std::random_device / raw engines / time()-seeds
                        anywhere else break replayability.
C1 contract-coverage  — exported (header-declared) functions taking spans
                        or pointers must guard them (BHSS_REQUIRE /
                        size()/empty() check) before the first deref.

All checks walk the *linked* model; call-graph traversal is conservative
(see cpp_model.resolve_call) so a finding always corresponds to a concrete
event on a named path, never to a speculative edge.
"""

from __future__ import annotations

import re
from collections import deque

from .cpp_model import (
    EV_ADDR_ORDER,
    EV_ALLOC,
    EV_CALL,
    EV_DEREF,
    EV_GUARD,
    EV_IO,
    EV_MUTEX,
    EV_RNG,
    EV_UNORDERED,
    CodeModel,
    FunctionInfo,
)
from .findings import Finding

CHECK_H1 = "h1-hot-path-purity"
CHECK_D1 = "d1-deterministic-fold"
CHECK_D2 = "d2-rng-discipline"
CHECK_C1 = "c1-contract-coverage"

ALL_CHECKS = (CHECK_H1, CHECK_D1, CHECK_D2, CHECK_C1)

# The contract machinery itself is the cold path: a failed BHSS_REQUIRE
# formats a message and throws. Never traverse into or report on it.
CONTRACTS_FILE_SUFFIX = "core/contracts.hpp"
# RNG primitives live here by design; D2 exempts it, H1/D1 still apply.
RANDOM_HOME = "core/shared_random"

FOLD_ROOT_RE = re.compile(r"(^|::)(merge_\w+|\w+_fold|merge_point_results)$")

_H1_KINDS = {
    EV_ALLOC: "allocates",
    EV_MUTEX: "locks",
    EV_IO: "performs I/O",
}
_D1_KINDS = {
    EV_UNORDERED: "iterates an unordered container",
    EV_ADDR_ORDER: "derives a value from an object address",
}


def _is_exempt(fn: FunctionInfo) -> bool:
    return fn.file.endswith(CONTRACTS_FILE_SUFFIX)


def _reach(model: CodeModel, roots: list[FunctionInfo]) -> dict[int, tuple[FunctionInfo, list[str]]]:
    """BFS over resolved call edges. Returns id(fn) -> (fn, path-of-qnames
    from the nearest root). BFS order makes the recorded path minimal."""
    seen: dict[int, tuple[FunctionInfo, list[str]]] = {}
    dq: deque[FunctionInfo] = deque()
    for r in roots:
        if id(r) not in seen:
            seen[id(r)] = (r, [r.qname])
            dq.append(r)
    while dq:
        fn = seen[id(dq.popleft())][0]
        path = seen[id(fn)][1]
        for ev in fn.events:
            if ev.kind != EV_CALL:
                continue
            for callee in model.resolve_call(fn, ev):
                if _is_exempt(callee) or id(callee) in seen:
                    continue
                seen[id(callee)] = (callee, path + [callee.qname])
                dq.append(callee)
    return seen


def _path_note(path: list[str]) -> str:
    if len(path) <= 1:
        return ""
    return " [via " + " -> ".join(path) + "]"


def check_h1(model: CodeModel) -> list[Finding]:
    roots = [f for f in model.functions if f.hot and f.has_body and not _is_exempt(f)]
    out: list[Finding] = []
    for fn, path in _reach(model, roots).values():
        for ev in fn.events:
            verb = _H1_KINDS.get(ev.kind)
            if verb is None:
                continue
            out.append(
                Finding(
                    check=CHECK_H1,
                    file=fn.file,
                    line=ev.line,
                    function=fn.qname,
                    message=f"hot path {verb}: {ev.detail}{_path_note(path)}",
                )
            )
    return out


def check_d1(model: CodeModel) -> list[Finding]:
    roots = [
        f for f in model.functions
        if f.has_body and not _is_exempt(f) and FOLD_ROOT_RE.search(f.qname)
    ]
    out: list[Finding] = []
    for fn, path in _reach(model, roots).values():
        for ev in fn.events:
            what = _D1_KINDS.get(ev.kind)
            if what is None:
                continue
            out.append(
                Finding(
                    check=CHECK_D1,
                    file=fn.file,
                    line=ev.line,
                    function=fn.qname,
                    message=(
                        f"merge/fold path {what}: {ev.detail}{_path_note(path)} "
                        "— reduction order must not depend on hashing or addresses"
                    ),
                )
            )
    return out


def check_d2(model: CodeModel) -> list[Finding]:
    out: list[Finding] = []
    for fn in model.functions:
        if RANDOM_HOME in fn.file or _is_exempt(fn):
            continue
        for ev in fn.events:
            if ev.kind != EV_RNG:
                continue
            out.append(
                Finding(
                    check=CHECK_D2,
                    file=fn.file,
                    line=ev.line,
                    function=fn.qname,
                    message=(
                        f"RNG outside core::SharedRandom: {ev.detail} "
                        "— all draws must flow through src/core/shared_random "
                        "so runs replay bit-identically"
                    ),
                )
            )
    for rel, line, kind, detail in model.file_events:
        if kind != EV_RNG or RANDOM_HOME in rel:
            continue
        out.append(
            Finding(
                check=CHECK_D2,
                file=rel,
                line=line,
                message=(
                    f"RNG outside core::SharedRandom: {detail} "
                    "— all draws must flow through src/core/shared_random"
                ),
            )
        )
    return out


def check_c1(model: CodeModel) -> list[Finding]:
    out: list[Finding] = []
    for fn in model.functions:
        if not fn.has_body or not fn.declared_in_header or _is_exempt(fn):
            continue
        # Only exported API of the library tree is in scope.
        if not (fn.file.startswith("src/") or "fixture" in fn.file or fn.file.startswith("tests/")):
            continue
        interesting = {p.name for p in fn.params if (p.is_span or p.is_pointer) and p.name}
        if not interesting:
            continue
        for pname in sorted(interesting):
            first_deref = None
            guarded_before = False
            for ev in fn.events:
                if ev.param != pname:
                    continue
                if ev.kind == EV_GUARD:
                    guarded_before = first_deref is None
                    if guarded_before:
                        break
                elif ev.kind == EV_DEREF and first_deref is None:
                    first_deref = ev
            if first_deref is not None and not guarded_before:
                out.append(
                    Finding(
                        check=CHECK_C1,
                        file=fn.file,
                        line=first_deref.line,
                        function=fn.qname,
                        message=(
                            f"span/pointer parameter '{pname}' dereferenced "
                            f"({first_deref.detail}) before any BHSS_REQUIRE or "
                            "size()/empty() guard"
                        ),
                    )
                )
    return out


_CHECK_FNS = {
    CHECK_H1: check_h1,
    CHECK_D1: check_d1,
    CHECK_D2: check_d2,
    CHECK_C1: check_c1,
}


def run_checks(model: CodeModel, checks: tuple[str, ...] = ALL_CHECKS) -> list[Finding]:
    model.link()
    out: list[Finding] = []
    for c in checks:
        out.extend(_CHECK_FNS[c](model))
    return out
