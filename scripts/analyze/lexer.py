"""Minimal C++ tokenizer for the lite analyzer frontend and bhss_lint.

Produces a flat token stream with line numbers. This is not a full lexer:
its contract is to be exactly good enough for the structural analysis the
lite frontend performs — comments and string/char literals never leak into
the token stream, preprocessor directives are dropped whole, and the
multi-character operators that matter for scope/call parsing (`::`, `->`)
come out as single tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds: 'id' identifier/keyword, 'num' numeric literal,
# 'str' string literal (text is the placeholder '""'), 'chr' char literal,
# 'p' punctuation/operator.
KIND_ID = "id"
KIND_NUM = "num"
KIND_STR = "str"
KIND_CHR = "chr"
KIND_PUNCT = "p"


@dataclass(frozen=True)
class Tok:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact debugging aid
        return f"{self.text}@{self.line}"


def _id_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _id_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line numbers.

    Kept API-compatible with the original bhss_lint helper so regex-based
    rules keep operating on physical lines.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            seg = text[i : n if end == -1 else end + 2]
            out.append("\n" * seg.count("\n"))
            i = n if end == -1 else end + 2
        elif ch in ('"', "'"):
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(" ")
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize(text: str) -> list[Tok]:
    """Tokenize C++ source. Comments, literals' contents and preprocessor
    directives are consumed; everything else becomes a token."""
    toks: list[Tok] = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Preprocessor directive: swallow to end of line, honouring
        # backslash continuations.
        if ch == "#" and at_line_start:
            while i < n:
                if text[i] == "\n":
                    if text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            continue
        at_line_start = False
        # Comments.
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            seg_end = n if end == -1 else end + 2
            line += text.count("\n", i, seg_end)
            i = seg_end
            continue
        # Raw string literal R"delim( ... )delim".
        if ch == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close != -1 and close - (i + 2) <= 16:
                delim = text[i + 2 : close]
                endmark = ")" + delim + '"'
                end = text.find(endmark, close + 1)
                seg_end = n if end == -1 else end + len(endmark)
                line += text.count("\n", i, seg_end)
                toks.append(Tok(KIND_STR, '""', line))
                i = seg_end
                continue
        # String / char literals (with optional encoding prefixes handled
        # by falling through from the identifier branch below).
        if ch == '"' or ch == "'":
            start_line = line
            j = i + 1
            while j < n and text[j] != ch:
                if text[j] == "\\":
                    j += 2
                else:
                    if text[j] == "\n":
                        line += 1
                    j += 1
            i = min(j + 1, n)
            toks.append(Tok(KIND_STR if ch == '"' else KIND_CHR,
                            '""' if ch == '"' else "''", start_line))
            continue
        # Identifiers / keywords.
        if _id_start(ch):
            j = i + 1
            while j < n and _id_char(text[j]):
                j += 1
            word = text[i:j]
            # Encoding-prefixed literal, e.g. u8"...", L'x'.
            if j < n and text[j] in "\"'" and word in ("u8", "u", "U", "L"):
                i = j
                continue
            toks.append(Tok(KIND_ID, word, line))
            i = j
            continue
        # Numbers (good enough: digits, hex, separators, exponents, suffixes).
        if ch.isdigit() or (ch == "." and nxt.isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'+-"):
                if text[j] in "+-" and text[j - 1] not in "eEpP":
                    break
                j += 1
            toks.append(Tok(KIND_NUM, text[i:j], line))
            i = j
            continue
        # Multi-char operators we care about structurally.
        if ch == ":" and nxt == ":":
            toks.append(Tok(KIND_PUNCT, "::", line))
            i += 2
            continue
        if ch == "-" and nxt == ">":
            toks.append(Tok(KIND_PUNCT, "->", line))
            i += 2
            continue
        toks.append(Tok(KIND_PUNCT, ch, line))
        i += 1
    return toks


def match_group(toks: list[Tok], open_index: int) -> int:
    """Index of the token closing the bracket at `open_index`.

    Balances (), {} and [] jointly; returns len(toks) - 1 when unbalanced
    so callers always get a valid index.
    """
    pairs = {"(": ")", "{": "}", "[": "]"}
    opener = toks[open_index].text
    closer = pairs[opener]
    depth = 0
    for j in range(open_index, len(toks)):
        t = toks[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1
