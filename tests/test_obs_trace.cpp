// Trace-layer tests: bounded-ring semantics (overwrite-oldest, explicit
// drop accounting), scope timing accumulation, deterministic JSON
// rendering, and the golden-trace regressions pinning the receiver's
// per-hop filter-decision sequence for fixed-seed links against a
// reactive and a tone jammer. A golden mismatch means the control-logic
// decision path changed behaviour — update the golden only after
// confirming the change is intended.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "core/link_simulator.hpp"
#include "obs/link_obs.hpp"
#include "obs/trace.hpp"

namespace {

using namespace bhss;

obs::TraceEvent make_event(std::uint32_t hop) {
  obs::TraceEvent ev;
  ev.type = obs::TraceEventType::hop_decision;
  ev.hop = hop;
  ev.packet = 7;
  ev.v0 = static_cast<double>(hop) * 0.5;
  return ev;
}

TEST(ObsTrace, RingRetainsEverythingBelowCapacity) {
  obs::TraceSink sink(8);
  EXPECT_EQ(sink.capacity(), 8u);
  for (std::uint32_t i = 0; i < 5; ++i) sink.push(make_event(i));
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.total_recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].hop, i);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  obs::TraceSink sink(4);
  for (std::uint32_t i = 0; i < 10; ++i) sink.push(make_event(i));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 6, 7, 8, 9 survive.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].hop, 6 + i);
}

TEST(ObsTrace, RingRejectsZeroCapacity) {
  EXPECT_THROW(obs::TraceSink sink(0), contract_violation);
}

TEST(ObsTrace, ScopeStatsAccumulate) {
  obs::TraceSink sink(4);
  sink.note_scope(obs::TraceScopeId::receive, 100);
  sink.note_scope(obs::TraceScopeId::receive, 250);
  sink.note_scope(obs::TraceScopeId::choose_filter, 40);
  const obs::TraceScopeStats& rx = sink.scope(obs::TraceScopeId::receive);
  EXPECT_EQ(rx.calls, 2u);
  EXPECT_EQ(rx.total_ns, 350u);
  EXPECT_EQ(rx.max_ns, 250u);
  EXPECT_EQ(sink.scope(obs::TraceScopeId::choose_filter).calls, 1u);
  EXPECT_EQ(sink.scope(obs::TraceScopeId::fault_inject).calls, 0u);

  obs::TraceSink other(4);
  other.note_scope(obs::TraceScopeId::receive, 400);
  sink.merge_scopes_from(other);
  EXPECT_EQ(sink.scope(obs::TraceScopeId::receive).calls, 3u);
  EXPECT_EQ(sink.scope(obs::TraceScopeId::receive).total_ns, 750u);
  EXPECT_EQ(sink.scope(obs::TraceScopeId::receive).max_ns, 400u);
}

TEST(ObsTrace, TraceScopeRecordsOnDestruction) {
  obs::TraceSink sink(4);
  {
    BHSS_TRACE_SCOPE(&sink, obs::TraceScopeId::demod_despread);
  }
  EXPECT_EQ(sink.scope(obs::TraceScopeId::demod_despread).calls,
            obs::obs_enabled() ? 1u : 0u);
  // A null sink must be safe and free of clock reads.
  {
    BHSS_TRACE_SCOPE(static_cast<obs::TraceSink*>(nullptr),
                     obs::TraceScopeId::demod_despread);
  }
  EXPECT_EQ(sink.scope(obs::TraceScopeId::demod_despread).calls,
            obs::obs_enabled() ? 1u : 0u);
}

TEST(ObsTrace, EventNamesAreStable) {
  using obs::TraceEventType;
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::hop_decision), "hop_decision");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::sync_attempt), "sync_attempt");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::sync_lock), "sync_lock");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::sync_loss), "sync_loss");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::fault_applied), "fault");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::packet_done), "packet_done");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::adapt_window), "adapt_window");
  EXPECT_STREQ(obs::trace_event_name(TraceEventType::adapt_transition), "adapt_transition");
}

// The JSONL emitters promise byte-stable rendering: equal event bits must
// always produce equal bytes (that is what makes the resume byte-identity
// guarantee testable at the file level).
TEST(ObsTrace, EventJsonRenderingIsDeterministic) {
  obs::TraceEvent ev;
  ev.type = obs::TraceEventType::hop_decision;
  ev.flag = 2;  // excision
  ev.bw_index = 3;
  ev.hop = 1;
  ev.packet = 42;
  ev.v0 = 0.125;
  ev.v1 = 0.25;
  ev.v2 = 6.5;
  ev.v3 = 5.5;
  ev.v4 = -12.0;
  ev.v5 = -12.218487496163564;
  const std::string body = obs::trace_event_json_body(ev);
  EXPECT_EQ(body, obs::trace_event_json_body(ev));
  EXPECT_NE(body.find("\"event\":\"hop_decision\""), std::string::npos);
  EXPECT_NE(body.find("\"pkt\":42"), std::string::npos);
  EXPECT_NE(body.find("\"filter\":\"excision\""), std::string::npos);
  EXPECT_NE(body.find("\"est_jam_bw\":0.125"), std::string::npos);

  obs::TraceEvent loss;
  loss.type = obs::TraceEventType::sync_loss;
  loss.packet = 3;
  loss.hop = 2;
  EXPECT_EQ(obs::trace_event_json_body(loss),
            "\"event\":\"sync_loss\",\"pkt\":3,\"attempts\":2");
}

// ------------------------------------------------------------ golden traces

/// Compress the filter-decision sequence of a fixed-seed shard run into
/// one char per hop_decision event: n(one) / l(owpass) / e(xcision) /
/// d(egenerate fallback), with '|' separating packets.
std::string decision_sequence(const core::SimConfig& cfg, std::size_t n_packets) {
  obs::ShardTelemetry tele;
  const core::ShardSeeds seeds{cfg.channel_seed, cfg.channel_seed ^ 0xC4A77EULL,
                               cfg.jammer.seed};
  (void)core::run_link_shard(cfg, 0, n_packets, seeds, tele.obs());
  EXPECT_EQ(tele.trace.dropped(), 0u) << "golden run must retain every event";

  std::string seq;
  std::uint64_t last_packet = 0;
  bool first = true;
  for (const obs::TraceEvent& ev : tele.trace.events()) {
    if (ev.type != obs::TraceEventType::hop_decision) continue;
    if (!first && ev.packet != last_packet) seq += '|';
    first = false;
    last_packet = ev.packet;
    switch (ev.flag) {
      case 0: seq += 'n'; break;
      case 1: seq += 'l'; break;
      case 2: seq += 'e'; break;
      case 3: seq += 'd'; break;
      default: seq += '?'; break;
    }
  }
  return seq;
}

core::SimConfig golden_config() {
  core::SimConfig cfg;
  cfg.system.sync = core::SyncMode::preamble;
  cfg.payload_len = 4;
  cfg.snr_db = 15.0;
  cfg.jnr_db = 28.0;
  cfg.channel_seed = 11;
  cfg.jammer.seed = 99;
  return cfg;
}

TEST(GoldenTrace, ReactiveJammerFilterDecisions) {
  core::SimConfig cfg = golden_config();
  cfg.jammer.kind = core::JammerSpec::Kind::reactive;
  cfg.jammer.reaction_delay = 1024;

  // Golden, pinned 2026-08: the per-hop filter decisions of 6 fixed-seed
  // packets against the reactive jammer (packets that never achieved sync
  // lock contribute no hops). Any control-logic, sync or DSP change that
  // alters a single decision shows up here first.
  const std::string golden = "eennee|eeneee|eeeene|enenen";
  EXPECT_EQ(decision_sequence(cfg, 6), golden);
}

TEST(GoldenTrace, ToneJammerFilterDecisions) {
  core::SimConfig cfg = golden_config();
  cfg.jammer.kind = core::JammerSpec::Kind::tone;
  cfg.jammer.tone_freqs = {0.01};

  // Golden, pinned 2026-08: the classic excision target — the decision
  // alternates between excising the tone and low-passing, never "none".
  const std::string golden = "leleee|eelele|lleele|eeeeel|elelee|leeell";
  EXPECT_EQ(decision_sequence(cfg, 6), golden);
}

// The golden runs above also pin the eq. (10) threshold terms carried by
// every hop_decision event: the thresholds are configuration constants,
// so they must be byte-stable across the whole trace.
TEST(GoldenTrace, HopDecisionCarriesStableThresholdTerms) {
  core::SimConfig cfg = golden_config();
  cfg.jammer.kind = core::JammerSpec::Kind::tone;

  obs::ShardTelemetry tele;
  const core::ShardSeeds seeds{cfg.channel_seed, cfg.channel_seed ^ 0xC4A77EULL,
                               cfg.jammer.seed};
  (void)core::run_link_shard(cfg, 0, 4, seeds, tele.obs());

  const core::ControlLogicConfig logic;  // defaults used by golden_config
  std::size_t n_hops = 0;
  for (const obs::TraceEvent& ev : tele.trace.events()) {
    if (ev.type != obs::TraceEventType::hop_decision) continue;
    ++n_hops;
    EXPECT_EQ(ev.v3, logic.peak_over_median_db);   // in-band peak threshold
    EXPECT_GT(ev.v1, 0.0);                         // eq. (10) guard term
    EXPECT_LE(ev.v0, 1.0);                         // occupancy is a fraction
    EXPECT_GE(ev.v0, 0.0);
  }
  EXPECT_GT(n_hops, 0u);
}

}  // namespace
