// Tests for the campaign orchestration layer: CheckpointJournal
// round-trips (bit-exact stats, CRC rejection, torn-tail truncation,
// header validation), CampaignRunner kill-and-resume determinism at 1 and
// 8 threads, the per-shard watchdog (retry then quarantine), the graceful
// drain protocol, and merge_link_stats degenerate inputs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/link_simulator.hpp"
#include "obs/link_obs.hpp"
#include "runtime/campaign.hpp"
#include "runtime/checkpoint_journal.hpp"
#include "runtime/parallel_link_runner.hpp"

namespace bhss::runtime {
namespace {

// ------------------------------------------------------------------ helpers

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "bhss_campaign_" + name + "_" +
         std::to_string(::getpid()) + ".journal";
}

core::SimConfig small_sim() {
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 12;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  return cfg;
}

void expect_identical(const core::LinkStats& a, const core::LinkStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.total_symbols, b.total_symbols);
  // bitwise, not approximate: the whole point of the journal's bit-pattern
  // encoding is that resume reproduces the uninterrupted run exactly.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.airtime_s),
            std::bit_cast<std::uint64_t>(b.airtime_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.throughput_bps),
            std::bit_cast<std::uint64_t>(b.throughput_bps));
  EXPECT_EQ(a.sync_lost, b.sync_lost);
  EXPECT_EQ(a.reacquired, b.reacquired);
  EXPECT_EQ(a.filter_fallback, b.filter_fallback);
  EXPECT_EQ(a.corrupt_input_rejected, b.corrupt_input_rejected);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.shard_timeout, b.shard_timeout);
  EXPECT_EQ(a.shard_retried, b.shard_retried);
  EXPECT_EQ(a.worker_restarts, b.worker_restarts);
  EXPECT_EQ(a.worker_crashes, b.worker_crashes);
  EXPECT_EQ(a.worker_drains, b.worker_drains);
  EXPECT_EQ(a.adapt_transitions, b.adapt_transitions);
  EXPECT_EQ(a.adapt_jam_episodes, b.adapt_jam_episodes);
  EXPECT_EQ(a.adapt_fallbacks, b.adapt_fallbacks);
  EXPECT_EQ(a.adapt_recoveries, b.adapt_recoveries);
  EXPECT_EQ(a.adapt_windows_jammed, b.adapt_windows_jammed);
  EXPECT_EQ(a.adapt_packets_adapted, b.adapt_packets_adapted);
}

core::LinkStats sample_stats(std::size_t salt) {
  core::LinkStats s;
  s.packets = 10 + salt;
  s.detected = 9 + salt;
  s.ok = 8;
  s.symbol_errors = 3 * salt;
  s.total_symbols = 4000 + salt;
  s.airtime_s = 0.1 * static_cast<double>(salt + 1) + 1e-17;  // not exactly representable
  s.throughput_bps = 12345.6789 / static_cast<double>(salt + 1);
  s.sync_lost = salt;
  s.reacquired = salt / 2;
  s.filter_fallback = 1;
  s.corrupt_input_rejected = 2;
  s.faults_injected = 5;
  s.shard_timeout = 0;
  s.shard_retried = salt % 2;
  s.worker_restarts = salt % 3;
  s.worker_crashes = salt / 2;
  s.worker_drains = (salt + 1) % 2;
  s.adapt_transitions = 4 * salt;
  s.adapt_jam_episodes = salt;
  s.adapt_fallbacks = salt / 3;
  s.adapt_recoveries = salt % 2;
  s.adapt_windows_jammed = 2 * salt;
  s.adapt_packets_adapted = 7 + salt;
  return s;
}

/// Keep the first `lines` lines of `path` (simulates a crash that landed
/// between appends).
void truncate_to_lines(const std::string& path, std::size_t lines) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string kept;
  std::string line;
  for (std::size_t i = 0; i < lines && std::getline(in, line); ++i) kept += line + "\n";
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << kept;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

// --------------------------------------------------------- CheckpointJournal

TEST(CheckpointJournal, ShardStatsRoundTripBitExact) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  const JournalKey key{"pt0", 0xDEADBEEFCAFE1234ULL};
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", /*resume=*/false);
    for (std::size_t shard = 0; shard < 4; ++shard) {
      journal.record_shard(key, shard, sample_stats(shard));
    }
    // Lookups work immediately, before any close/reopen.
    ASSERT_NE(journal.find_shard(key, 2), nullptr);
  }
  CheckpointJournal resumed;
  resumed.open(path, "unit", 2, "abc123", /*resume=*/true);
  EXPECT_EQ(resumed.replayed_records(), 4U);
  EXPECT_FALSE(resumed.tail_truncated());
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const core::LinkStats* got = resumed.find_shard(key, shard);
    ASSERT_NE(got, nullptr) << "shard " << shard;
    expect_identical(*got, sample_stats(shard));
  }
  EXPECT_EQ(resumed.find_shard(key, 4), nullptr);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, ParamsHashMismatchIsNotFound) {
  const std::string path = temp_path("hashmismatch");
  std::remove(path.c_str());
  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", false);
  journal.record_shard({"pt0", 1}, 0, sample_stats(0));
  EXPECT_NE(journal.find_shard({"pt0", 1}, 0), nullptr);
  EXPECT_EQ(journal.find_shard({"pt0", 2}, 0), nullptr);  // stale params
  EXPECT_EQ(journal.find_shard({"pt1", 1}, 0), nullptr);  // other point
  std::remove(path.c_str());
}

TEST(CheckpointJournal, PointAndQuarantineRoundTrip) {
  const std::string path = temp_path("pointq");
  std::remove(path.c_str());
  const JournalKey key{"pt0", 42};
  const std::string payload = R"({"figure":"unit","value":1.25,"schema_version":2})";
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    journal.record_point(key, payload);
    journal.record_quarantine(key, 3, 2);
  }
  CheckpointJournal resumed;
  resumed.open(path, "unit", 2, "abc123", true);
  EXPECT_EQ(resumed.replayed_records(), 2U);
  const std::string* got = resumed.find_point(key);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, payload);  // byte-for-byte, or resumed JSONL would differ
  EXPECT_TRUE(resumed.shard_quarantined(key, 3));
  EXPECT_FALSE(resumed.shard_quarantined(key, 2));
  std::remove(path.c_str());
}

TEST(CheckpointJournal, TornTailIsTruncatedAndAppendable) {
  const std::string path = temp_path("torntail");
  std::remove(path.c_str());
  const JournalKey key{"pt0", 7};
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    journal.record_shard(key, 0, sample_stats(0));
    journal.record_shard(key, 1, sample_stats(1));
  }
  {  // simulate a crash mid-append: half a record, no newline
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "S pt0 00000000000000";
  }
  {
    CheckpointJournal resumed;
    resumed.open(path, "unit", 2, "abc123", true);
    EXPECT_TRUE(resumed.tail_truncated());
    EXPECT_EQ(resumed.replayed_records(), 2U);
    resumed.record_shard(key, 2, sample_stats(2));  // append onto the clean boundary
  }
  CheckpointJournal again;
  again.open(path, "unit", 2, "abc123", true);
  EXPECT_FALSE(again.tail_truncated());
  EXPECT_EQ(again.replayed_records(), 3U);
  ASSERT_NE(again.find_shard(key, 2), nullptr);
  expect_identical(*again.find_shard(key, 2), sample_stats(2));
  std::remove(path.c_str());
}

TEST(CheckpointJournal, CorruptedRecordDropsTheSuffix) {
  const std::string path = temp_path("corrupt");
  std::remove(path.c_str());
  const JournalKey key{"pt0", 7};
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    for (std::size_t shard = 0; shard < 4; ++shard) {
      journal.record_shard(key, shard, sample_stats(shard));
    }
  }
  {  // flip one byte inside the third record (header + 2 full records kept)
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    std::string line;
    std::getline(f, line);  // header
    std::getline(f, line);  // shard 0
    std::getline(f, line);  // shard 1
    const auto pos = f.tellg();
    f.seekp(pos + std::streamoff{8});
    f.put('#');
  }
  CheckpointJournal resumed;
  resumed.open(path, "unit", 2, "abc123", true);
  EXPECT_TRUE(resumed.tail_truncated());
  EXPECT_EQ(resumed.replayed_records(), 2U);
  EXPECT_NE(resumed.find_shard(key, 1), nullptr);
  EXPECT_EQ(resumed.find_shard(key, 2), nullptr);  // corrupted away
  EXPECT_EQ(resumed.find_shard(key, 3), nullptr);  // after the corruption
  std::remove(path.c_str());
}

TEST(CheckpointJournal, HeaderMismatchesAreHardErrors) {
  const std::string path = temp_path("header");
  std::remove(path.c_str());
  {
    CheckpointJournal journal;
    journal.open(path, "figA", 2, "abc123", false);
  }
  {
    CheckpointJournal j;
    EXPECT_THROW(j.open(path, "figB", 2, "abc123", true), std::runtime_error);
  }
  {
    CheckpointJournal j;
    EXPECT_THROW(j.open(path, "figA", 3, "abc123", true), std::runtime_error);
  }
  {  // matching identity resumes fine
    CheckpointJournal j;
    j.open(path, "figA", 2, "different-sha-is-ok", true);
    EXPECT_TRUE(j.is_open());
  }
  std::remove(path.c_str());
}

TEST(CheckpointJournal, ResumeOfMissingFileStartsFresh) {
  const std::string path = temp_path("missing");
  std::remove(path.c_str());
  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", /*resume=*/true);
  EXPECT_TRUE(journal.is_open());
  EXPECT_EQ(journal.replayed_records(), 0U);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ params hash

TEST(CampaignRunner, ParamsHashCoversConfigAndShardCount) {
  const core::SimConfig cfg = small_sim();
  const std::uint64_t base = CampaignRunner::params_hash(cfg, 8);
  EXPECT_EQ(base, CampaignRunner::params_hash(cfg, 8));  // pure function

  EXPECT_NE(base, CampaignRunner::params_hash(cfg, 9));  // shards are identity
  core::SimConfig changed = cfg;
  changed.snr_db += 0.5;
  EXPECT_NE(base, CampaignRunner::params_hash(changed, 8));
  changed = cfg;
  changed.jammer.kind = core::JammerSpec::Kind::reactive;
  EXPECT_NE(base, CampaignRunner::params_hash(changed, 8));
  changed = cfg;
  changed.faults.p_drop += 0.01;
  EXPECT_NE(base, CampaignRunner::params_hash(changed, 8));
  changed = cfg;
  changed.system.symbols_per_hop += 1;
  EXPECT_NE(base, CampaignRunner::params_hash(changed, 8));
}

// --------------------------------------------------------- campaign running

TEST(CampaignRunner, MatchesParallelLinkRunnerWithoutJournal) {
  const core::SimConfig cfg = small_sim();
  ParallelLinkRunner plain({.n_threads = 2, .n_shards = 8});
  CampaignRunner campaign({.n_threads = 2, .n_shards = 8});
  expect_identical(plain.run(cfg), campaign.run_point("pt", cfg));
}

TEST(CampaignRunner, KillAndResumeIsBitIdenticalAtOneAndEightThreads) {
  const core::SimConfig cfg = small_sim();
  const std::string path = temp_path("killresume");
  std::remove(path.c_str());

  // Uninterrupted reference, no journal.
  CampaignRunner reference({.n_threads = 2, .n_shards = 8});
  const core::LinkStats expected = reference.run_point("pt", cfg);

  // Checkpointed run, then simulate a SIGKILL that lost the tail of the
  // journal: keep header + 3 shard records.
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner({.n_threads = 8, .n_shards = 8}, &journal);
    expect_identical(runner.run_point("pt", cfg), expected);
  }
  ASSERT_EQ(count_lines(path), 9U);  // header + 8 shards
  truncate_to_lines(path, 4);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const std::string copy = path + "." + std::to_string(threads);
    {
      std::ifstream src(path, std::ios::binary);
      std::ofstream dst(copy, std::ios::binary);
      dst << src.rdbuf();
    }
    CheckpointJournal journal;
    journal.open(copy, "unit", 2, "abc123", true);
    EXPECT_EQ(journal.replayed_records(), 3U);

    // Count how many shards actually re-run: resume must skip the 3
    // journaled units and execute exactly the missing 5.
    CampaignRunner resumed({.n_threads = threads, .n_shards = 8}, &journal);
    std::atomic<std::size_t> executed{0};
    resumed.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
    expect_identical(resumed.run_point("pt", cfg), expected);
    EXPECT_EQ(executed.load(), 5U) << threads << " threads";

    // A second resume replays everything and executes nothing.
    CheckpointJournal full;
    full.open(copy, "unit", 2, "abc123", true);
    EXPECT_EQ(full.replayed_records(), 8U);
    CampaignRunner replay({.n_threads = threads, .n_shards = 8}, &full);
    executed = 0;
    replay.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
    expect_identical(replay.run_point("pt", cfg), expected);
    EXPECT_EQ(executed.load(), 0U);
    std::remove(copy.c_str());
  }
  std::remove(path.c_str());
}

/// Flatten a telemetry_sink invocation into one comparable string:
/// per-shard serialized bundles in shard order, then the merged bundle.
/// Byte equality of this snapshot is exactly what the --metrics/--trace
/// JSONL byte-identity guarantee rests on.
std::string telemetry_snapshot(const std::vector<obs::ShardTelemetry>& shards) {
  std::string snap;
  for (const obs::ShardTelemetry& t : shards) snap += obs::serialize_telemetry(t) + "\n";
  snap += obs::serialize_telemetry(obs::merge_telemetry(shards, shards.size())) + "\n";
  return snap;
}

TEST(CampaignRunner, TelemetryResumeIsBitIdentical) {
  const core::SimConfig cfg = small_sim();
  const std::string path = temp_path("telemetry_resume");
  std::remove(path.c_str());

  // Uninterrupted 1-thread reference with telemetry, journal fresh.
  std::string expected_snapshot;
  core::LinkStats expected;
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner({.n_threads = 1, .n_shards = 4}, &journal);
    runner.telemetry_sink = [&](const std::string&, const core::SimConfig&,
                                const core::LinkStats&,
                                const std::vector<obs::ShardTelemetry>& shards) {
      expected_snapshot = telemetry_snapshot(shards);
    };
    expected = runner.run_point("pt", cfg);
  }
  ASSERT_FALSE(expected_snapshot.empty());
  // Each shard journals an O (telemetry) line followed by its S line.
  ASSERT_EQ(count_lines(path), 9U);  // header + 4 x (O, S)

  // Simulate a SIGKILL that landed between the O and S appends of shard 1:
  // keep header, shard 0's pair, and shard 1's orphan O record. Resume at 8
  // threads must replay shard 0, re-run shards 1-3, and reproduce both the
  // stats and every telemetry byte.
  truncate_to_lines(path, 4);
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", true);
    // 3 records replay: shard 0's O+S pair and shard 1's orphan O. The
    // orphan carries telemetry but no stats, so shard 1 still re-runs.
    EXPECT_EQ(journal.replayed_records(), 3U);
    CampaignRunner resumed({.n_threads = 8, .n_shards = 4}, &journal);
    std::string snapshot;
    resumed.telemetry_sink = [&](const std::string&, const core::SimConfig&,
                                 const core::LinkStats&,
                                 const std::vector<obs::ShardTelemetry>& shards) {
      snapshot = telemetry_snapshot(shards);
    };
    std::atomic<std::size_t> executed{0};
    resumed.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
    expect_identical(resumed.run_point("pt", cfg), expected);
    EXPECT_EQ(executed.load(), 3U);
    EXPECT_EQ(snapshot, expected_snapshot);
  }

  // Fully-journaled resume: zero shards execute, the sink still fires, and
  // every byte comes back out of the journal's O records unchanged.
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", true);
    // 3 surviving records plus the resumed run's 3 re-journaled O+S pairs.
    EXPECT_EQ(journal.replayed_records(), 9U);
    CampaignRunner replay({.n_threads = 2, .n_shards = 4}, &journal);
    std::string snapshot;
    replay.telemetry_sink = [&](const std::string&, const core::SimConfig&,
                                const core::LinkStats&,
                                const std::vector<obs::ShardTelemetry>& shards) {
      snapshot = telemetry_snapshot(shards);
    };
    std::atomic<std::size_t> executed{0};
    replay.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
    expect_identical(replay.run_point("pt", cfg), expected);
    EXPECT_EQ(executed.load(), 0U);
    EXPECT_EQ(snapshot, expected_snapshot);
  }
  std::remove(path.c_str());
}

TEST(CampaignRunner, BlobLessJournalRerunsShardsForTelemetry) {
  const core::SimConfig cfg = small_sim();
  const std::string path = temp_path("telemetry_bloblless");
  std::remove(path.c_str());

  // A pre-telemetry campaign: no sink, so the journal carries only S
  // records (this is exactly what a v2-era journal upgraded in place looks
  // like after the schema bump).
  core::LinkStats expected;
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner({.n_threads = 1, .n_shards = 4}, &journal);
    expected = runner.run_point("pt", cfg);
  }
  ASSERT_EQ(count_lines(path), 5U);  // header + 4 x S, no O records

  // Resuming with a telemetry sink must re-run every shard (stats alone
  // cannot reconstruct telemetry) yet still produce bit-identical stats.
  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", true);
  EXPECT_EQ(journal.replayed_records(), 4U);
  CampaignRunner resumed({.n_threads = 1, .n_shards = 4}, &journal);
  std::string snapshot;
  resumed.telemetry_sink = [&](const std::string&, const core::SimConfig&,
                               const core::LinkStats&,
                               const std::vector<obs::ShardTelemetry>& shards) {
    snapshot = telemetry_snapshot(shards);
  };
  std::atomic<std::size_t> executed{0};
  resumed.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
  expect_identical(resumed.run_point("pt", cfg), expected);
  EXPECT_EQ(executed.load(), 4U);
  EXPECT_FALSE(snapshot.empty());

  // And the re-run leaves the journal fully populated: a third pass with a
  // sink replays telemetry from the O records without executing anything.
  CheckpointJournal full;
  full.open(path, "unit", 2, "abc123", true);
  CampaignRunner replay({.n_threads = 1, .n_shards = 4}, &full);
  std::string replayed;
  replay.telemetry_sink = [&](const std::string&, const core::SimConfig&,
                              const core::LinkStats&,
                              const std::vector<obs::ShardTelemetry>& shards) {
    replayed = telemetry_snapshot(shards);
  };
  executed = 0;
  replay.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
  expect_identical(replay.run_point("pt", cfg), expected);
  EXPECT_EQ(executed.load(), 0U);
  EXPECT_EQ(replayed, snapshot);
  std::remove(path.c_str());
}

TEST(CampaignRunner, BisectionResumesThroughTheJournal) {
  core::SimConfig cfg = small_sim();
  cfg.jammer.kind = core::JammerSpec::Kind::none;
  cfg.n_packets = 6;
  const std::string path = temp_path("bisect");
  std::remove(path.c_str());

  CampaignRunner reference({.n_threads = 4, .n_shards = 6});
  const double expected = reference.min_snr_for_per("pt", cfg, 0.5, -10.0, 45.0, 2.0);

  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner({.n_threads = 4, .n_shards = 6}, &journal);
    EXPECT_EQ(runner.min_snr_for_per("pt", cfg, 0.5, -10.0, 45.0, 2.0), expected);
  }
  const std::size_t full_lines = count_lines(path);
  ASSERT_GT(full_lines, 4U);
  truncate_to_lines(path, full_lines / 2);

  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", true);
  CampaignRunner resumed({.n_threads = 1, .n_shards = 6}, &journal);
  std::atomic<std::size_t> executed{0};
  resumed.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
  EXPECT_EQ(resumed.min_snr_for_per("pt", cfg, 0.5, -10.0, 45.0, 2.0), expected);
  // The resumed bisection walks the same SNR path but reuses the journaled
  // prefix, so it executes strictly fewer shards than a full run.
  EXPECT_LT(executed.load(), (full_lines - 1));
  std::remove(path.c_str());
}

// ------------------------------------------------------------- watchdog

namespace {

/// Block until the test raises `release` — a hang whose duration adapts
/// to however slow the build is, unlike a fixed sleep. Safe to capture
/// test locals: the test joins abandoned threads before they go out of
/// scope.
void hang_until(const std::atomic<bool>& release) {
  while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(25));
}

/// Watchdog budget that adapts to however slow this build is. A fixed
/// budget tuned on an optimised build times out *genuine* shards under
/// -O0 + coverage instrumentation on a loaded single-core runner, turning
/// the test into a flake; scale it from a measured uninstrumented-watchdog
/// reference run of the same workload instead.
double scaled_budget(double reference_seconds) {
  return std::max(6.0, 4.0 * reference_seconds);
}

double timed_run(CampaignRunner& runner, const core::SimConfig& cfg,
                 core::LinkStats* out = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  const core::LinkStats stats = runner.run_point("pt", cfg);
  if (out != nullptr) *out = stats;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

TEST(CampaignRunner, WatchdogRetriesAHungShard) {
  core::SimConfig cfg = small_sim();
  cfg.n_packets = 4;  // one packet per shard: far inside the budget everywhere
  CampaignRunner reference({.n_threads = 2, .n_shards = 4});
  core::LinkStats expected;
  const double ref_s = timed_run(reference, cfg, &expected);

  CampaignOptions opts;
  opts.n_threads = 2;
  opts.n_shards = 4;
  opts.shard_timeout_s = scaled_budget(ref_s);
  opts.max_attempts = 3;
  opts.backoff_base_s = 0.01;
  CampaignRunner runner(opts);
  // Shard 2 hangs past the watchdog budget on its first attempt only; the
  // deterministic retry recomputes the identical statistics.
  std::atomic<bool> release{false};
  runner.shard_hook = [&release](std::size_t shard, std::size_t attempt) {
    if (shard == 2 && attempt == 0) hang_until(release);
  };
  const core::LinkStats merged = runner.run_point("pt", cfg);
  EXPECT_EQ(merged.shard_retried, 1U);
  EXPECT_EQ(merged.shard_timeout, 0U);
  EXPECT_EQ(merged.packets, expected.packets);
  EXPECT_EQ(merged.ok, expected.ok);
  EXPECT_EQ(merged.symbol_errors, expected.symbol_errors);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(merged.airtime_s),
            std::bit_cast<std::uint64_t>(expected.airtime_s));
  // The abandoned first-attempt thread keeps running in the registry;
  // release it and wait it out before its captures go out of scope.
  release = true;
  CampaignRunner::join_abandoned_threads();
}

TEST(CampaignRunner, WatchdogQuarantinesAPermanentlyHungShard) {
  core::SimConfig cfg = small_sim();
  cfg.n_packets = 4;  // one packet per shard: far inside the budget everywhere
  const std::string path = temp_path("quarantine");
  std::remove(path.c_str());

  CampaignRunner reference({.n_threads = 4, .n_shards = 4});
  const double ref_s = timed_run(reference, cfg);

  CampaignOptions opts;
  opts.n_threads = 4;
  opts.n_shards = 4;
  opts.shard_timeout_s = scaled_budget(ref_s);
  opts.max_attempts = 2;
  opts.backoff_base_s = 0.01;

  std::atomic<bool> release{false};
  core::LinkStats merged;
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner(opts, &journal);
    runner.shard_hook = [&release](std::size_t shard, std::size_t) {
      if (shard == 1) hang_until(release);
    };
    merged = runner.run_point("pt", cfg);
    EXPECT_EQ(merged.shard_timeout, 1U);
    EXPECT_EQ(merged.shard_retried, 0U);
    // The quarantined shard's packets are missing from the merge.
    const auto range = ParallelLinkRunner::shard_range(cfg.n_packets, 4, 1);
    EXPECT_EQ(merged.packets, cfg.n_packets - range.count);
  }
  // Both hung attempts are parked in the registry; release them before
  // their captures (and the journal's temp file) go away.
  release = true;
  CampaignRunner::join_abandoned_threads();

  // Resume: the quarantine is journaled, so the shard is accounted as
  // shard_timeout without being re-run (and without re-hanging).
  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", true);
  EXPECT_TRUE(journal.shard_quarantined(
      {"pt", CampaignRunner::params_hash(cfg, 4)}, 1));
  CampaignRunner resumed(opts, &journal);
  std::atomic<std::size_t> executed{0};
  resumed.shard_hook = [&](std::size_t, std::size_t) { ++executed; };
  expect_identical(resumed.run_point("pt", cfg), merged);
  EXPECT_EQ(executed.load(), 0U);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- drain

TEST(CampaignRunner, InterruptDrainsAndResumeCompletes) {
  const core::SimConfig cfg = small_sim();
  const std::string path = temp_path("drain");
  std::remove(path.c_str());

  CampaignRunner reference({.n_threads = 2, .n_shards = 8});
  const core::LinkStats expected = reference.run_point("pt", cfg);

  CampaignRunner::clear_interrupt();
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner({.n_threads = 1, .n_shards = 8}, &journal);
    std::atomic<std::size_t> started{0};
    runner.shard_hook = [&](std::size_t, std::size_t) {
      if (++started == 3) CampaignRunner::request_interrupt();
    };
    EXPECT_THROW((void)runner.run_point("pt", cfg), CampaignInterrupted);
    EXPECT_TRUE(CampaignRunner::interrupt_requested());
  }
  // In-flight shards drained into the journal; the rest were skipped.
  const std::size_t journaled = count_lines(path) - 1;
  EXPECT_GE(journaled, 3U);
  EXPECT_LT(journaled, 8U);

  // While the drain request stands, nothing new starts.
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", true);
    CampaignRunner runner({.n_threads = 1, .n_shards = 8}, &journal);
    EXPECT_THROW((void)runner.run_point("pt", cfg), CampaignInterrupted);
  }

  CampaignRunner::clear_interrupt();
  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", true);
  CampaignRunner resumed({.n_threads = 2, .n_shards = 8}, &journal);
  expect_identical(resumed.run_point("pt", cfg), expected);
  std::remove(path.c_str());
}

// ------------------------------------------------- merge_link_stats edges

TEST(MergeLinkStats, ZeroPacketShardsContributeNothing) {
  std::vector<core::LinkStats> parts = {sample_stats(0), core::LinkStats{}, sample_stats(1),
                                        core::LinkStats{}, core::LinkStats{}};
  const core::LinkStats with_empty = core::merge_link_stats(parts, 6);
  const std::vector<core::LinkStats> dense = {sample_stats(0), sample_stats(1)};
  expect_identical(with_empty, core::merge_link_stats(dense, 6));
}

TEST(MergeLinkStats, AllShardsEmptyIsAValidMerge) {
  const std::vector<core::LinkStats> parts(7);
  const core::LinkStats merged = core::merge_link_stats(parts, 6);
  EXPECT_EQ(merged.packets, 0U);
  EXPECT_EQ(merged.total_symbols, 0U);
  // Rates on an empty campaign must not divide by zero.
  EXPECT_GE(merged.per(), 0.0);
  EXPECT_GE(merged.ser(), 0.0);
}

TEST(MergeLinkStats, ShardOrderPreservesCountsAndTaxonomy) {
  // The journal hands shards back by index, but a resumed vector can hold
  // records produced in any order across runs. Counting fields are exact
  // sums, so every permutation must agree on them.
  std::vector<core::LinkStats> parts = {sample_stats(3), sample_stats(1), sample_stats(4),
                                        sample_stats(2)};
  const core::LinkStats a = core::merge_link_stats(parts, 6);
  std::reverse(parts.begin(), parts.end());
  const core::LinkStats b = core::merge_link_stats(parts, 6);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.total_symbols, b.total_symbols);
  EXPECT_EQ(a.sync_lost, b.sync_lost);
  EXPECT_EQ(a.reacquired, b.reacquired);
  EXPECT_EQ(a.filter_fallback, b.filter_fallback);
  EXPECT_EQ(a.corrupt_input_rejected, b.corrupt_input_rejected);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.shard_timeout, b.shard_timeout);
  EXPECT_EQ(a.shard_retried, b.shard_retried);
}

TEST(MergeLinkStats, TaxonomySurvivesAJournalRoundTrip) {
  const std::string path = temp_path("taxonomy");
  std::remove(path.c_str());
  const JournalKey key{"pt", 99};
  core::LinkStats weird = sample_stats(5);
  weird.shard_timeout = 2;
  weird.shard_retried = 3;
  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    journal.record_shard(key, 0, weird);
    journal.record_shard(key, 1, sample_stats(1));
  }
  CheckpointJournal resumed;
  resumed.open(path, "unit", 2, "abc123", true);
  std::vector<core::LinkStats> parts = {*resumed.find_shard(key, 0),
                                        *resumed.find_shard(key, 1)};
  const core::LinkStats merged = core::merge_link_stats(parts, 6);
  EXPECT_EQ(merged.shard_timeout, weird.shard_timeout + sample_stats(1).shard_timeout);
  EXPECT_EQ(merged.shard_retried, weird.shard_retried + sample_stats(1).shard_retried);
  EXPECT_EQ(merged.worker_restarts,
            weird.worker_restarts + sample_stats(1).worker_restarts);
  EXPECT_EQ(merged.worker_crashes, weird.worker_crashes + sample_stats(1).worker_crashes);
  EXPECT_EQ(merged.worker_drains, weird.worker_drains + sample_stats(1).worker_drains);
  EXPECT_EQ(merged.faults_injected,
            weird.faults_injected + sample_stats(1).faults_injected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bhss::runtime
