// Unit tests for the analytical model (§5, appendix): eqs. (6)-(12) and
// (16)-(18), including the paper's headline anchor values.

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"
#include "dsp/autocorr.hpp"
#include "dsp/fir.hpp"
#include "dsp/utils.hpp"

namespace bhss::core::theory {
namespace {

TEST(OutputSnr, UnfilteredEq7) {
  // SNR = L / (rho + sigma^2).
  EXPECT_DOUBLE_EQ(output_snr_unfiltered(100.0, 99.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(output_snr_unfiltered(100.0, 0.0, 0.01), 10000.0);
  EXPECT_THROW((void)output_snr_unfiltered(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(OutputSnr, IdentityFilterMatchesUnfiltered) {
  const dsp::cvec taps = {dsp::cf{1.0F, 0.0F}};
  const dsp::fvec rho = {50.0F};
  EXPECT_NEAR(output_snr_filtered(100.0, taps, rho, 0.5),
              output_snr_unfiltered(100.0, 50.0, 0.5), 1e-9);
}

TEST(SnrImprovement, GammaIndependentOfProcessingGain) {
  // Eq. (8) discussion: "gamma is independent of L".
  const dsp::fvec lp = dsp::design_lowpass(33, 0.1);
  const dsp::cvec taps = dsp::to_complex(lp);
  const dsp::fvec rho = dsp::bandlimited_noise_autocorr(100.0, 0.8, 64);
  const double g10 = output_snr_filtered(10.0, taps, rho, 0.01) /
                     output_snr_unfiltered(10.0, 100.0, 0.01);
  const double g1000 = output_snr_filtered(1000.0, taps, rho, 0.01) /
                       output_snr_unfiltered(1000.0, 100.0, 0.01);
  EXPECT_NEAR(g10, g1000, 1e-9);
  EXPECT_NEAR(g10, snr_improvement_numeric(taps, rho, 0.01), 1e-9);
}

TEST(SnrImprovementBound, ContinuousAtMatchedBandwidth) {
  // Both branches give gamma = 1 when Bp == Bj.
  EXPECT_DOUBLE_EQ(snr_improvement_bound(1.0, 100.0, 0.01), 1.0);
  EXPECT_NEAR(snr_improvement_bound(0.999, 100.0, 0.01), 1.0, 0.01);
  EXPECT_NEAR(snr_improvement_bound(1.001, 100.0, 0.01), 1.0, 0.01);
}

TEST(SnrImprovementBound, WidebandBranchEq12) {
  // gamma = (rho + s2) / (r rho + s2), r = Bp/Bj < 1.
  const double rho = 100.0;
  const double s2 = 0.01;
  EXPECT_NEAR(snr_improvement_bound(0.1, rho, s2), (rho + s2) / (0.1 * rho + s2), 1e-12);
  // Fig. 7: for 0.01 < Bp/Bj < 1 the improvement is nearly independent of
  // the jammer power and approximately Bj/Bp.
  EXPECT_NEAR(dsp::linear_to_db(snr_improvement_bound(0.1, 100.0, s2)),
              dsp::linear_to_db(snr_improvement_bound(0.1, 1000.0, s2)), 1.0);
  EXPECT_NEAR(dsp::linear_to_db(snr_improvement_bound(0.1, rho, s2)), 10.0, 0.5);
}

TEST(SnrImprovementBound, NarrowbandBranchEq11) {
  const double rho = 100.0;
  const double s2 = 0.01;
  // r = Bp/Bj = 10: gamma = (rho+s2)(r-1)/(r(1+s2)).
  const double expected = (rho + s2) * 9.0 / (10.0 * (1.0 + s2));
  EXPECT_NEAR(snr_improvement_bound(10.0, rho, s2), expected, 1e-9);
}

TEST(SnrImprovementBound, NarrowbandSaturatesAtJammerPower) {
  // Fig. 7: "the SNR improvement factor quickly converges to a value that
  // is close to the power of the jammer".
  for (double rho_db : {10.0, 20.0, 30.0}) {
    const double rho = dsp::db_to_linear(rho_db);
    const double gamma = snr_improvement_bound(100.0, rho, 0.01);
    EXPECT_NEAR(dsp::linear_to_db(gamma), rho_db, 0.6) << "rho " << rho_db;
  }
}

TEST(SnrImprovementBound, NeverBelowOne) {
  // Eq. (10)/(11): the excision filter is bypassed when it would hurt.
  for (double r = 1.0; r < 1.05; r += 0.005) {
    EXPECT_GE(snr_improvement_bound(r, 100.0, 0.01), 1.0) << "r=" << r;
  }
  EXPECT_THROW((void)snr_improvement_bound(0.0, 100.0, 0.01), std::invalid_argument);
}

TEST(NumericGamma, ExcisionApproachesNarrowbandBound) {
  // Eq. (6) is defined on the chip-rate-sampled model, where the PN
  // sequence fills the whole band; the case a suppression *filter* can be
  // tested numerically there is the narrow-band jammer + excision filter
  // (eq. (11)). (The wide-band case needs oversampling by construction —
  // a chip-rate low-pass would cut the signal itself.)
  const double rho = 100.0;
  const double s2 = 0.01;
  const double bj = 0.125;  // Bj/Bp = 1/8 of the chip band
  // Synthetic "measured" PSD: flat signal + narrow-band jammer block.
  const std::size_t k_taps = 256;
  dsp::fvec psd(k_taps, 1.0F);
  const auto edge = static_cast<std::size_t>(bj / 2.0 * k_taps);
  for (std::size_t k = 0; k <= edge; ++k) {
    psd[k] += static_cast<float>(rho / bj);
    psd[k_taps - 1 - k] += static_cast<float>(rho / bj);
  }
  const dsp::cvec taps = dsp::design_excision_whitening(psd);
  const dsp::fvec rho_j = dsp::bandlimited_noise_autocorr(rho, bj, k_taps);
  const double gamma = snr_improvement_numeric(taps, rho_j, s2);
  const double bound = snr_improvement_bound(1.0 / bj, rho, s2);
  // The whitening filter realises a gain of the same order as eq. (11).
  // Eq. (9)'s normalisation is approximate (it charges the ideal filter's
  // full pass-band loss against the signal), so a real whitening filter
  // can land a few dB above it; require agreement within [-50 %, +35 %]
  // in dB.
  EXPECT_GT(dsp::linear_to_db(gamma), 0.5 * dsp::linear_to_db(bound));
  EXPECT_LT(dsp::linear_to_db(gamma), 1.35 * dsp::linear_to_db(bound));
}

TEST(Ber, Eq16Values) {
  EXPECT_NEAR(ber_from_snr(0.0), 0.5, 1e-12);
  // SNR = 2 Eb/N0 convention: Pb = 0.5 erfc(sqrt(Eb/N0)).
  EXPECT_NEAR(ber_from_snr(2.0), 0.5 * std::erfc(1.0), 1e-12);
  EXPECT_LT(ber_from_snr(20.0), 1e-5);
  EXPECT_NEAR(ber_from_snr(-1.0), 0.5, 1e-12);  // clamped
}

TEST(Ber, MonotoneDecreasingInSnr) {
  double prev = 1.0;
  for (double snr = 0.0; snr < 30.0; snr += 0.5) {
    const double b = ber_from_snr(snr);
    EXPECT_LE(b, prev);
    prev = b;
  }
}

TEST(PacketError, Eq18) {
  EXPECT_DOUBLE_EQ(packet_error_rate(0.0, 4000), 0.0);
  EXPECT_DOUBLE_EQ(packet_error_rate(1.0, 10), 1.0);
  EXPECT_NEAR(packet_error_rate(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(packet_error_rate(1e-3, 1000), 1.0 - std::pow(1.0 - 1e-3, 1000), 1e-9);
  // Stable for tiny BER.
  EXPECT_NEAR(packet_error_rate(1e-12, 4000), 4000e-12, 1e-13);
  EXPECT_NEAR(normalized_throughput(1e-12, 4000), 1.0, 1e-8);
}

// ------------------------------------------------------------- BhssModel

BhssModel paper_model() {
  // Fig. 9 setup: hop range 100, L = 20 dB, SJR = -20 dB per chip.
  return BhssModel::log_uniform(100.0, 7, 100.0, 100.0);
}

TEST(BhssModel, LogUniformConstruction) {
  const BhssModel m = paper_model();
  ASSERT_EQ(m.hop_bandwidths().size(), 7U);
  EXPECT_DOUBLE_EQ(m.hop_bandwidths().front(), 1.0);
  EXPECT_NEAR(m.hop_bandwidths().back(), 0.01, 1e-9);
  for (double p : m.hop_probs()) EXPECT_NEAR(p, 1.0 / 7.0, 1e-12);
}

TEST(BhssModel, NoiseMapping) {
  // sigma^2 = L / (2 Eb/N0): without jamming Pb = 0.5 erfc(sqrt(Eb/N0)).
  const BhssModel m = paper_model();
  const double ebno = dsp::db_to_linear(6.0);
  const double s2 = m.noise_var_for_ebno(ebno);
  EXPECT_NEAR(ber_from_snr(100.0 / s2), 0.5 * std::erfc(std::sqrt(ebno)), 1e-12);
}

TEST(BhssModel, Figure9DsssStaysNearHalf) {
  // "the bit error rate for the DSSS and FHSS receivers remain close to
  // 0.5 even when Eb/No is as high as 15 dB" (within the plot's log scale:
  // >= 0.1).
  const BhssModel m = paper_model();
  EXPECT_GT(m.ber_dsss(dsp::db_to_linear(15.0)), 0.1);
}

TEST(BhssModel, Figure9BhssBeatsDsssForEveryJammerBandwidth) {
  const BhssModel m = paper_model();
  const double ebno = dsp::db_to_linear(15.0);
  for (double bj : {1.0, 0.3, 0.1, 0.03, 0.01}) {
    EXPECT_LT(m.ber_fixed_jammer(bj, ebno), m.ber_dsss(ebno)) << "bj " << bj;
  }
  EXPECT_LT(m.ber_random_jammer(ebno), m.ber_dsss(ebno));
}

TEST(BhssModel, Figure9RandomJammerBetweenExtremes) {
  // Fig. 9: random jamming is better (for the jammer) than very narrow
  // fixed bandwidths but worse than the matched-ish wide settings.
  const BhssModel m = paper_model();
  const double ebno = dsp::db_to_linear(15.0);
  const double random = m.ber_random_jammer(ebno);
  EXPECT_LT(random, m.ber_fixed_jammer(1.0, ebno));
  EXPECT_GT(random, m.ber_fixed_jammer(0.01, ebno));
}

TEST(BhssModel, Figure10PeaksAtIntermediateBandwidth) {
  // "the bit error curves for the different SJR values all exhibit a
  // maximum at different jammer bandwidths".
  const BhssModel m = paper_model();
  const double ebno = dsp::db_to_linear(15.0);
  const double edge_low = m.ber_fixed_jammer(0.01, ebno);
  const double edge_high = m.ber_fixed_jammer(1.0, ebno);
  double peak = 0.0;
  for (double bj = 0.01; bj <= 1.0; bj *= 1.3) {
    peak = std::max(peak, m.ber_fixed_jammer(bj, ebno));
  }
  peak = std::max(peak, m.ber_fixed_jammer(1.0, ebno));
  EXPECT_GT(peak, edge_low);
  EXPECT_GE(peak, edge_high);
}

TEST(BhssModel, RateEqualisedDsssGainNearPaperValue) {
  // §5.4: "processing gains for DSSS and FHSS of 25.4 dB" for L = 20 dB.
  // Our 7-level log-uniform set yields ~25.8 dB (the paper's exact grid is
  // not specified); accept the neighbourhood.
  const BhssModel m = paper_model();
  EXPECT_NEAR(dsp::linear_to_db(m.dsss_equivalent_processing_gain()), 25.4, 0.8);
}

TEST(BhssModel, ThroughputInUnitRange) {
  const BhssModel m = paper_model();
  for (double ebno_db = -5.0; ebno_db <= 30.0; ebno_db += 5.0) {
    const double ebno = dsp::db_to_linear(ebno_db);
    for (double t : {m.throughput_fixed_jammer(0.1, ebno, 4000),
                     m.throughput_random_jammer(ebno, 4000), m.throughput_dsss(ebno, 4000)}) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 1.0);
    }
  }
}

TEST(BhssModel, Figure11BhssBeatsDsssAgainstRandomJammer) {
  // "the throughput of BHSS against random hopping jammers is strictly
  // better for any Eb/No".
  const BhssModel m = paper_model();
  for (double ebno_db = 0.0; ebno_db <= 30.0; ebno_db += 2.0) {
    const double ebno = dsp::db_to_linear(ebno_db);
    EXPECT_GE(m.throughput_random_jammer(ebno, 4000) + 1e-12, m.throughput_dsss(ebno, 4000))
        << "Eb/N0 " << ebno_db;
  }
}

TEST(BhssModel, ValidatesInputs) {
  EXPECT_THROW(BhssModel({0.5, 0.25}, {1.0, 1.0}, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(BhssModel({1.0}, {1.0, 1.0}, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(BhssModel({1.0}, {0.0}, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(BhssModel::log_uniform(0.5, 7, 100.0, 100.0), std::invalid_argument);
  const BhssModel m = paper_model();
  EXPECT_THROW((void)m.noise_var_for_ebno(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace bhss::core::theory
