// Unit tests for dsp/utils: dB conversions, sinc, power measurement.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/utils.hpp"

namespace bhss::dsp {
namespace {

TEST(DbConversion, KnownValues) {
  EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9952623149688795, 1e-12);
  EXPECT_NEAR(db_to_linear(-20.0), 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(linear_to_db(1.0), 0.0);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
}

TEST(DbConversion, RoundTrip) {
  for (double db = -60.0; db <= 60.0; db += 7.3) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9) << "db=" << db;
  }
}

TEST(DbConversion, ZeroAndNegativeClampToFloor) {
  EXPECT_DOUBLE_EQ(linear_to_db(0.0), -300.0);
  EXPECT_DOUBLE_EQ(linear_to_db(-1.0), -300.0);
}

TEST(Sinc, CentreAndZeros) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(sinc(static_cast<double>(k)), 0.0, 1e-12) << "k=" << k;
    EXPECT_NEAR(sinc(static_cast<double>(-k)), 0.0, 1e-12) << "k=" << -k;
  }
}

TEST(Sinc, SymmetricAndBounded) {
  for (double x = 0.1; x < 5.0; x += 0.37) {
    EXPECT_NEAR(sinc(x), sinc(-x), 1e-12);
    EXPECT_LE(std::abs(sinc(x)), 1.0);
  }
}

TEST(MeanPower, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_power(cspan{}), 0.0);
}

TEST(MeanPower, UnitCircleSamples) {
  cvec x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float ang = 0.1F * static_cast<float>(i);
    x[i] = cf{std::cos(ang), std::sin(ang)};
  }
  EXPECT_NEAR(mean_power(x), 1.0, 1e-6);
  EXPECT_NEAR(energy(x), 64.0, 1e-4);
}

TEST(ScaleToPower, ReachesTarget) {
  cvec x = {cf{1.0F, 0.0F}, cf{0.0F, 2.0F}, cf{-3.0F, 1.0F}};
  scale_to_power(cspan_mut{x}, 5.0);
  EXPECT_NEAR(mean_power(x), 5.0, 1e-5);
}

TEST(ScaleToPower, SilentBufferUntouched) {
  cvec x(8, cf{0.0F, 0.0F});
  scale_to_power(cspan_mut{x}, 1.0);
  for (const cf& s : x) EXPECT_EQ(s, (cf{0.0F, 0.0F}));
}

class ScaleToPowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleToPowerSweep, AnyTargetReached) {
  cvec x(32);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = cf{static_cast<float>(i % 5) - 2.0F, static_cast<float>(i % 3) - 1.0F};
  }
  scale_to_power(cspan_mut{x}, GetParam());
  EXPECT_NEAR(mean_power(x), GetParam(), GetParam() * 1e-5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, ScaleToPowerSweep,
                         ::testing::Values(1e-4, 0.01, 0.5, 1.0, 3.7, 100.0, 1e4));

}  // namespace
}  // namespace bhss::dsp
