// Property tests for the observability metrics layer: registry schema
// validation, deterministic histogram bin routing (NaN, ±inf, exact
// edges), merge algebra (associativity, commutativity where promised,
// rightmost-set-wins gauges), thread-count bit-identity of merged
// telemetry, the serialize/deserialize round trip, and the shared
// merge-order contract enforced by runtime::merge_point_results.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "core/link_simulator.hpp"
#include "obs/link_obs.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_link_runner.hpp"

namespace {

using namespace bhss;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

obs::MetricsRegistry small_registry() {
  obs::MetricsRegistry reg;
  (void)reg.add_counter("events");
  (void)reg.add_gauge("level");
  (void)reg.add_histogram("width", {0.0, 1.0, 2.0});
  return reg;
}

TEST(ObsMetrics, RegistryAssignsIdsAndSlots) {
  obs::MetricsRegistry reg;
  const std::size_t c0 = reg.add_counter("a");
  const std::size_t g0 = reg.add_gauge("b");
  const std::size_t c1 = reg.add_counter("c");
  const std::size_t h0 = reg.add_histogram("d", {0.0, 1.0});
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(reg.n_counters(), 2u);
  EXPECT_EQ(reg.n_gauges(), 1u);
  EXPECT_EQ(reg.n_histograms(), 1u);
  EXPECT_EQ(reg.kind(c0), obs::InstrumentKind::counter);
  EXPECT_EQ(reg.kind(g0), obs::InstrumentKind::gauge);
  EXPECT_EQ(reg.slot(c0), 0u);
  EXPECT_EQ(reg.slot(c1), 1u);
  EXPECT_EQ(reg.slot(h0), 0u);
  // underflow + 1 interior + overflow + NaN
  EXPECT_EQ(reg.histogram_bins(h0), 4u);
  EXPECT_EQ(reg.find("c"), c1);
  EXPECT_FALSE(reg.find("missing").has_value());
}

TEST(ObsMetrics, RegistryRejectsInvalidDeclarations) {
  obs::MetricsRegistry reg;
  (void)reg.add_counter("ok");
  EXPECT_THROW((void)reg.add_counter("ok"), contract_violation);       // duplicate
  EXPECT_THROW((void)reg.add_counter(""), contract_violation);        // empty
  EXPECT_THROW((void)reg.add_counter("has space"), contract_violation);
  EXPECT_THROW((void)reg.add_counter("quo\"te"), contract_violation);
  EXPECT_THROW((void)reg.add_histogram("h1", {}), contract_violation);         // no edges
  EXPECT_THROW((void)reg.add_histogram("h2", {1.0}), contract_violation);      // one edge
  EXPECT_THROW((void)reg.add_histogram("h3", {1.0, 1.0}), contract_violation); // not increasing
  EXPECT_THROW((void)reg.add_histogram("h4", {2.0, 1.0}), contract_violation);
  EXPECT_THROW((void)reg.add_histogram("h5", {0.0, kInf}), contract_violation);  // non-finite
  EXPECT_THROW((void)reg.add_histogram("h6", {kNaN, 1.0}), contract_violation);
}

TEST(ObsMetrics, BinRoutingCoversEveryInput) {
  const std::vector<double> edges = {0.0, 1.0, 2.5};
  // Bins: 0 = underflow, 1 = [0,1), 2 = [1,2.5), 3 = overflow, 4 = NaN.
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, -0.001), 0u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, -kInf), 0u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, 0.0), 1u);  // edge opens its bin
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, 0.999), 1u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, 1.0), 2u);  // exact interior edge
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, 2.499), 2u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, 2.5), 3u);  // last edge -> overflow
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, 1e12), 3u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, kInf), 3u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, kNaN), 4u);
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, -kNaN), 4u);
  // Negative zero compares equal to zero: same bin as +0.0.
  EXPECT_EQ(obs::MetricsRegistry::bin_of(edges, -0.0), 1u);
}

TEST(ObsMetrics, ShardRecordsAndReads) {
  const obs::MetricsRegistry reg = small_registry();
  obs::MetricsShard s(&reg);
  const std::size_t events = *reg.find("events");
  const std::size_t level = *reg.find("level");
  const std::size_t width = *reg.find("width");

  EXPECT_EQ(s.counter(events), 0u);
  EXPECT_FALSE(s.gauge(level).has_value());
  s.add(events);
  s.add(events, 4);
  s.set(level, 2.5);
  s.set(level, -1.0);  // last write wins
  s.observe(width, 0.5);
  s.observe(width, kNaN);
  s.observe(width, 3.0);
  EXPECT_EQ(s.counter(events), 5u);
  EXPECT_EQ(s.gauge(level), -1.0);
  // Bins: underflow, [0,1), [1,2), overflow, NaN.
  const std::vector<std::uint64_t> expected = {0, 1, 0, 1, 1};
  EXPECT_EQ(s.histogram(width), expected);
}

TEST(ObsMetrics, MergeIsAssociative) {
  const obs::MetricsRegistry reg = small_registry();
  const std::size_t events = *reg.find("events");
  const std::size_t level = *reg.find("level");
  const std::size_t width = *reg.find("width");

  obs::MetricsShard a(&reg), b(&reg), c(&reg);
  a.add(events, 1);
  a.observe(width, -5.0);
  b.add(events, 10);
  b.set(level, 1.0);
  b.observe(width, 0.5);
  c.add(events, 100);
  c.set(level, 7.0);
  c.observe(width, kNaN);

  // (a ⊕ b) ⊕ c
  obs::MetricsShard left = a;
  left.merge_from(b);
  left.merge_from(c);
  // a ⊕ (b ⊕ c)
  obs::MetricsShard bc = b;
  bc.merge_from(c);
  obs::MetricsShard right = a;
  right.merge_from(bc);

  EXPECT_TRUE(left == right);
  EXPECT_EQ(left.counter(events), 111u);
  EXPECT_EQ(left.gauge(level), 7.0);  // rightmost set gauge wins
}

TEST(ObsMetrics, CountersAndHistogramsCommuteGaugesAreOrderSensitive) {
  const obs::MetricsRegistry reg = small_registry();
  const std::size_t events = *reg.find("events");
  const std::size_t level = *reg.find("level");
  const std::size_t width = *reg.find("width");

  obs::MetricsShard a(&reg), b(&reg);
  a.add(events, 3);
  a.set(level, 1.0);
  a.observe(width, 0.25);
  b.add(events, 9);
  b.set(level, 2.0);
  b.observe(width, 1.75);

  obs::MetricsShard ab = a;
  ab.merge_from(b);
  obs::MetricsShard ba = b;
  ba.merge_from(a);

  EXPECT_EQ(ab.counter(events), ba.counter(events));
  EXPECT_EQ(ab.histogram(width), ba.histogram(width));
  // Gauges keep the right operand's value — the reason the contract pins
  // a left fold in ascending shard order rather than "any order".
  EXPECT_EQ(ab.gauge(level), 2.0);
  EXPECT_EQ(ba.gauge(level), 1.0);
}

TEST(ObsMetrics, MergeRejectsForeignRegistry) {
  const obs::MetricsRegistry reg_a = small_registry();
  const obs::MetricsRegistry reg_b = small_registry();
  obs::MetricsShard a(&reg_a);
  obs::MetricsShard b(&reg_b);
  EXPECT_THROW(a.merge_from(b), contract_violation);
}

core::SimConfig telemetry_sim_config() {
  core::SimConfig cfg;
  cfg.system.sync = core::SyncMode::preamble;
  cfg.payload_len = 4;
  cfg.n_packets = 12;
  cfg.snr_db = 14.0;
  cfg.jnr_db = 25.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.15;
  return cfg;
}

TEST(ObsMetrics, MergedTelemetryIsThreadCountInvariant) {
  const core::SimConfig cfg = telemetry_sim_config();
  constexpr std::size_t kShards = 4;

  std::vector<std::string> per_thread_blobs;
  std::vector<std::string> merged_blobs;
  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    runtime::ParallelLinkRunner runner({.n_threads = n_threads, .n_shards = kShards});
    std::vector<obs::ShardTelemetry> tele;
    const core::LinkStats stats = runner.run(cfg, &tele);
    ASSERT_EQ(tele.size(), kShards);
    EXPECT_GT(stats.packets, 0u);

    std::string all;
    for (const obs::ShardTelemetry& t : tele) {
      all += obs::serialize_telemetry(t);
      all += '\n';
    }
    per_thread_blobs.push_back(std::move(all));

    const obs::ShardTelemetry merged = obs::merge_telemetry(tele, kShards);
    merged_blobs.push_back(obs::serialize_telemetry(merged));
    EXPECT_EQ(merged.metrics.counter(obs::link_ids().packets), stats.packets);
    EXPECT_EQ(merged.metrics.counter(obs::link_ids().delivered), stats.ok);
    EXPECT_EQ(merged.metrics.counter(obs::link_ids().detected), stats.detected);
  }
  // Bit-identity: the serialized bytes (doubles as IEEE-754 bit patterns)
  // must match across thread counts, shard by shard and merged.
  EXPECT_EQ(per_thread_blobs[0], per_thread_blobs[1]);
  EXPECT_EQ(per_thread_blobs[0], per_thread_blobs[2]);
  EXPECT_EQ(merged_blobs[0], merged_blobs[1]);
  EXPECT_EQ(merged_blobs[0], merged_blobs[2]);
}

TEST(ObsMetrics, TelemetryDoesNotPerturbTheSimulation) {
  const core::SimConfig cfg = telemetry_sim_config();
  runtime::ParallelLinkRunner runner({.n_threads = 1, .n_shards = 4});
  const core::LinkStats plain = runner.run(cfg);
  std::vector<obs::ShardTelemetry> tele;
  const core::LinkStats observed = runner.run(cfg, &tele);
  EXPECT_EQ(plain.ok, observed.ok);
  EXPECT_EQ(plain.detected, observed.detected);
  EXPECT_EQ(plain.symbol_errors, observed.symbol_errors);
  EXPECT_EQ(plain.airtime_s, observed.airtime_s);
}

TEST(ObsMetrics, SerializeRoundTripIsBitExact) {
  const core::SimConfig cfg = telemetry_sim_config();
  runtime::ParallelLinkRunner runner({.n_threads = 1, .n_shards = 2});
  std::vector<obs::ShardTelemetry> tele;
  (void)runner.run(cfg, &tele);

  for (const obs::ShardTelemetry& t : tele) {
    const std::string blob = obs::serialize_telemetry(t);
    obs::ShardTelemetry back;
    ASSERT_TRUE(obs::deserialize_telemetry(blob, back));
    EXPECT_TRUE(back.metrics == t.metrics);
    EXPECT_EQ(back.trace.total_recorded(), t.trace.total_recorded());
    EXPECT_EQ(back.trace.size(), t.trace.size());
    EXPECT_EQ(obs::serialize_telemetry(back), blob);  // fixed point
  }
}

TEST(ObsMetrics, DeserializeRejectsMalformedInput) {
  obs::ShardTelemetry out;
  EXPECT_FALSE(obs::deserialize_telemetry("", out));
  EXPECT_FALSE(obs::deserialize_telemetry("obs2 c 0 g 0 h 0 t 4 0 0", out));
  EXPECT_FALSE(obs::deserialize_telemetry("garbage", out));

  const std::string good = obs::serialize_telemetry(obs::ShardTelemetry{});
  ASSERT_TRUE(obs::deserialize_telemetry(good, out));
  EXPECT_FALSE(obs::deserialize_telemetry(good + " trailing", out));
}

TEST(ObsMetrics, MergeTelemetryEnforcesShardCount) {
  std::vector<obs::ShardTelemetry> three(3);
  EXPECT_THROW((void)obs::merge_telemetry(three, 4), contract_violation);
  EXPECT_NO_THROW((void)obs::merge_telemetry(three, 3));
}

// The shared merge-order contract's enforcement point: stats and
// telemetry vectors that disagree on the shard count must refuse to
// merge instead of silently producing mismatched aggregates.
TEST(ObsMetrics, MergePointResultsRejectsMismatchedShardCounts) {
  std::vector<core::LinkStats> stats(4);
  std::vector<obs::ShardTelemetry> telemetry(3);
  EXPECT_THROW((void)runtime::merge_point_results(stats, &telemetry, 8, nullptr),
               contract_violation);

  telemetry.resize(4);
  obs::ShardTelemetry merged;
  EXPECT_NO_THROW((void)runtime::merge_point_results(stats, &telemetry, 8, &merged));
  EXPECT_NO_THROW((void)runtime::merge_point_results(stats, nullptr, 8, nullptr));
}

}  // namespace
