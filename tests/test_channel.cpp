// Unit tests for the channel simulator: noise statistics, impairments and
// end-to-end power calibration of transmit().

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/awgn.hpp"
#include "channel/impairments.hpp"
#include "channel/link_channel.hpp"
#include "dsp/utils.hpp"

namespace bhss::channel {
namespace {

TEST(Awgn, PowerCalibration) {
  AwgnSource noise(1);
  for (double power : {0.01, 1.0, 25.0}) {
    const dsp::cvec x = noise.generate(1 << 16, power);
    EXPECT_NEAR(dsp::mean_power(x), power, power * 0.05) << "power " << power;
  }
}

TEST(Awgn, CircularSymmetry) {
  AwgnSource noise(2);
  const dsp::cvec x = noise.generate(1 << 16, 2.0);
  double i_power = 0.0;
  double q_power = 0.0;
  double cross = 0.0;
  for (const dsp::cf& s : x) {
    i_power += static_cast<double>(s.real()) * s.real();
    q_power += static_cast<double>(s.imag()) * s.imag();
    cross += static_cast<double>(s.real()) * s.imag();
  }
  const auto n = static_cast<double>(x.size());
  EXPECT_NEAR(i_power / n, 1.0, 0.05);
  EXPECT_NEAR(q_power / n, 1.0, 0.05);
  EXPECT_NEAR(cross / n, 0.0, 0.05);
}

TEST(Awgn, Deterministic) {
  AwgnSource a(42);
  AwgnSource b(42);
  const dsp::cvec xa = a.generate(64, 1.0);
  const dsp::cvec xb = b.generate(64, 1.0);
  EXPECT_EQ(xa, xb);
}

TEST(Awgn, AddToSuperimposes) {
  AwgnSource noise(3);
  dsp::cvec x(1 << 14, dsp::cf{1.0F, 0.0F});
  noise.add_to(dsp::cspan_mut{x}, 0.5);
  EXPECT_NEAR(dsp::mean_power(x), 1.5, 0.05);
}

TEST(Impairments, PhaseRotation) {
  dsp::cvec x = {dsp::cf{1.0F, 0.0F}};
  apply_phase(dsp::cspan_mut{x}, std::numbers::pi_v<float> / 2.0F);
  EXPECT_NEAR(x[0].real(), 0.0F, 1e-6F);
  EXPECT_NEAR(x[0].imag(), 1.0F, 1e-6F);
}

TEST(Impairments, CfoAccumulatesLinearly) {
  const float cfo = 1e-3F;
  dsp::cvec x(10000, dsp::cf{1.0F, 0.0F});
  apply_cfo(dsp::cspan_mut{x}, cfo);
  for (std::size_t n : {0UL, 100UL, 5000UL, 9999UL}) {
    EXPECT_NEAR(std::arg(x[n]),
                std::remainder(cfo * static_cast<float>(n), 2.0F * std::numbers::pi_v<float>),
                2e-3F)
        << "n=" << n;
    EXPECT_NEAR(std::abs(x[n]), 1.0F, 1e-3F) << "n=" << n;  // renormalisation works
  }
}

TEST(Impairments, IntegerDelay) {
  const dsp::cvec x = {dsp::cf{1.0F, 1.0F}, dsp::cf{2.0F, 0.0F}};
  const dsp::cvec y = apply_delay(x, 3, 8);
  ASSERT_EQ(y.size(), 8U);
  EXPECT_EQ(y[0], (dsp::cf{0.0F, 0.0F}));
  EXPECT_EQ(y[3], x[0]);
  EXPECT_EQ(y[4], x[1]);
  EXPECT_EQ(y[7], (dsp::cf{0.0F, 0.0F}));
}

TEST(Impairments, DelayClipsAtTotalLen) {
  const dsp::cvec x(10, dsp::cf{1.0F, 0.0F});
  const dsp::cvec y = apply_delay(x, 5, 8);
  ASSERT_EQ(y.size(), 8U);
  EXPECT_EQ(y[7], (dsp::cf{1.0F, 0.0F}));
}

TEST(Impairments, FractionalDelayInterpolates) {
  const dsp::cvec x = {dsp::cf{1.0F, 0.0F}, dsp::cf{0.0F, 0.0F}};
  const dsp::cvec y = apply_fractional_delay(x, 0.25);
  ASSERT_EQ(y.size(), 3U);
  EXPECT_NEAR(y[0].real(), 0.75F, 1e-6F);
  EXPECT_NEAR(y[1].real(), 0.25F, 1e-6F);
  EXPECT_THROW((void)apply_fractional_delay(x, 1.0), std::invalid_argument);
}

TEST(Impairments, FractionalDelayEdgeCases) {
  // frac == 0 is the identity up to the interpolator's one-sample tail:
  // the fault injector's clock jump calls this with an arbitrary draw in
  // [0, 1), so the degenerate endpoint must be exact, not approximate.
  const dsp::cvec x = {dsp::cf{1.0F, 2.0F}, dsp::cf{-3.0F, 0.5F}, dsp::cf{0.0F, -1.0F}};
  const dsp::cvec y = apply_fractional_delay(x, 0.0);
  ASSERT_EQ(y.size(), x.size() + 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y[i], x[i]) << "i=" << i;
  }
  EXPECT_EQ(y.back(), (dsp::cf{0.0F, 0.0F}));

  // An empty capture stays well-defined (one zero sample of tail), so
  // callers need no special case before the interpolator.
  const dsp::cvec none = apply_fractional_delay(dsp::cvec{}, 0.7);
  ASSERT_EQ(none.size(), 1U);
  EXPECT_EQ(none[0], (dsp::cf{0.0F, 0.0F}));

  // Negative fractions are rejected like frac >= 1.
  EXPECT_THROW((void)apply_fractional_delay(x, -0.1), std::invalid_argument);
}

TEST(LinkChannel, SnrCalibration) {
  // A constant-envelope "signal" through the channel: measured SNR at the
  // output must match the configuration.
  dsp::cvec tx(1 << 15);
  for (std::size_t i = 0; i < tx.size(); ++i) {
    const float ang = 0.3F * static_cast<float>(i);
    tx[i] = dsp::cf{std::cos(ang), std::sin(ang)};
  }
  AwgnSource noise(5);
  LinkConfig cfg;
  cfg.snr_db = 13.0;
  const dsp::cvec rx = channel::transmit(tx, {}, cfg, noise);
  ASSERT_EQ(rx.size(), tx.size());
  // Total power = signal + unit noise.
  EXPECT_NEAR(dsp::mean_power(rx), dsp::db_to_linear(13.0) + 1.0,
              0.05 * (dsp::db_to_linear(13.0) + 1.0));
}

TEST(LinkChannel, JammerPowerCalibration) {
  dsp::cvec tx(1 << 14, dsp::cf{1.0F, 0.0F});
  AwgnSource noise(6);
  AwgnSource jam_src(7);
  const dsp::cvec jam = jam_src.generate(1 << 14, 3.0);  // arbitrary input power
  LinkConfig cfg;
  cfg.snr_db = -300.0;  // signal off
  cfg.jnr_db = 17.0;
  const dsp::cvec rx = channel::transmit(tx, jam, cfg, noise);
  EXPECT_NEAR(dsp::mean_power(rx), dsp::db_to_linear(17.0) + 1.0,
              0.05 * dsp::db_to_linear(17.0));
}

TEST(LinkChannel, DelayAndTailPad) {
  dsp::cvec tx(100, dsp::cf{1.0F, 0.0F});
  AwgnSource noise(8);
  LinkConfig cfg;
  cfg.snr_db = 40.0;
  cfg.tx_delay = 20;
  cfg.tail_pad = 30;
  const dsp::cvec rx = channel::transmit(tx, {}, cfg, noise);
  ASSERT_EQ(rx.size(), 150U);
  // Signal region is much louder than the leading noise-only region.
  EXPECT_GT(dsp::mean_power(dsp::cspan{rx}.subspan(20, 100)),
            100.0 * dsp::mean_power(dsp::cspan{rx}.first(20)));
}

TEST(LinkChannel, NoJammerSpanIgnored) {
  dsp::cvec tx(64, dsp::cf{1.0F, 0.0F});
  AwgnSource noise(9);
  LinkConfig cfg;
  cfg.snr_db = 10.0;  // jnr_db unset
  AwgnSource jam_src(10);
  const dsp::cvec jam = jam_src.generate(64, 1.0);
  const dsp::cvec with_spec = channel::transmit(tx, jam, cfg, noise);
  // jam provided but jnr_db not set: jammer must not be mixed in.
  AwgnSource noise2(9);
  const dsp::cvec without = channel::transmit(tx, {}, cfg, noise2);
  EXPECT_EQ(with_spec, without);
}

}  // namespace
}  // namespace bhss::channel
