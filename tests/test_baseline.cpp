// Unit tests for the baselines: fixed-bandwidth DSSS configs, the
// sample-domain FHSS transceiver and the analytical DSSS/FHSS curves.

#include <gtest/gtest.h>

#include "baseline/analytical.hpp"
#include "baseline/dsss_baseline.hpp"
#include "baseline/fhss.hpp"
#include "channel/awgn.hpp"
#include "channel/impairments.hpp"
#include "dsp/psd.hpp"
#include "dsp/utils.hpp"

namespace bhss::baseline {
namespace {

TEST(DsssBaseline, ConfigDisablesHopping) {
  const core::SystemConfig cfg = dsss_config(core::BandwidthSet::paper(), 2);
  EXPECT_FALSE(cfg.hopping);
  EXPECT_EQ(cfg.fixed_bw_index, 2U);
  EXPECT_EQ(cfg.filter_policy, core::FilterPolicy::adaptive);
  const core::SystemConfig raw = dsss_config_unfiltered(core::BandwidthSet::paper(), 2);
  EXPECT_EQ(raw.filter_policy, core::FilterPolicy::off);
}

std::vector<std::uint8_t> test_payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i + 1);
  return p;
}

TEST(Fhss, CleanRoundTrip) {
  FhssConfig cfg;
  const FhssTransmitter tx(cfg);
  const FhssReceiver rx(cfg);
  channel::AwgnSource noise(1);
  const auto payload = test_payload(12);
  for (std::uint64_t frame = 0; frame < 5; ++frame) {
    const FhssTransmission t = tx.transmit(payload, frame);
    dsp::cvec sig = channel::apply_delay(t.samples, 37, 37 + t.samples.size() + 600);
    noise.add_to(dsp::cspan_mut{sig}, dsp::db_to_linear(-15.0));  // 15 dB SNR
    EXPECT_EQ(rx.receive(sig, frame, payload.size(), 37), payload) << "frame " << frame;
  }
}

TEST(Fhss, HopSequenceSharedAndFrameDependent) {
  FhssConfig cfg;
  const FhssTransmitter tx(cfg);
  const FhssTransmission a = tx.transmit(test_payload(8), 1);
  const FhssTransmission b = tx.transmit(test_payload(8), 1);
  EXPECT_EQ(a.hop_channels, b.hop_channels);
  const FhssTransmission c = tx.transmit(test_payload(8), 2);
  EXPECT_NE(a.hop_channels, c.hop_channels);
}

TEST(Fhss, SpectrumSpreadAcrossChannels) {
  // The hopped waveform must occupy much more bandwidth than one channel.
  FhssConfig cfg;
  cfg.symbols_per_hop = 1;  // hop fast so one frame visits many channels
  const FhssTransmitter tx(cfg);
  const FhssTransmission t = tx.transmit(test_payload(64), 3);
  const dsp::fvec psd = dsp::welch_psd(t.samples, 256);
  const double occupied = dsp::occupied_bandwidth(psd, 0.95);
  const double single_channel = 1.0 / static_cast<double>(cfg.sps);
  EXPECT_GT(occupied, 4.0 * single_channel);
}

TEST(Fhss, WrongSeedCannotFollowTheHops) {
  FhssConfig cfg;
  const FhssTransmitter tx(cfg);
  FhssConfig wrong = cfg;
  wrong.seed = cfg.seed + 1;
  const FhssReceiver eve(wrong);
  channel::AwgnSource noise(2);
  const auto payload = test_payload(8);
  const FhssTransmission t = tx.transmit(payload, 0);
  dsp::cvec sig = channel::apply_delay(t.samples, 0, t.samples.size() + 600);
  noise.add_to(dsp::cspan_mut{sig}, 0.01);
  EXPECT_TRUE(eve.receive(sig, 0, payload.size(), 0).empty());
}

TEST(Fhss, RejectsOverlappingChannels) {
  FhssConfig cfg;
  cfg.n_channels = 32;
  cfg.sps = 16;
  EXPECT_THROW(FhssTransmitter{cfg}, std::invalid_argument);
}

TEST(Analytical, FhssEqualsDsss) {
  // §5.3: same spectral occupancy -> same jamming resistance.
  for (double ebno_db : {0.0, 5.0, 10.0, 15.0}) {
    const double ebno = dsp::db_to_linear(ebno_db);
    EXPECT_DOUBLE_EQ(dsss_ber(100.0, 100.0, ebno), fhss_ber(100.0, 100.0, ebno));
  }
}

TEST(Analytical, NoJammerMatchesMatchedFilterBound) {
  const double ebno = dsp::db_to_linear(6.0);
  EXPECT_NEAR(dsss_ber(100.0, 0.0, ebno), 0.5 * std::erfc(std::sqrt(ebno)), 1e-12);
}

TEST(Analytical, JammingDegradesBerAndThroughput) {
  const double ebno = dsp::db_to_linear(10.0);
  EXPECT_GT(dsss_ber(100.0, 100.0, ebno), dsss_ber(100.0, 0.0, ebno));
  EXPECT_LT(dsss_throughput(100.0, 100.0, ebno, 4000),
            dsss_throughput(100.0, 0.0, ebno, 4000));
}

TEST(Analytical, MoreProcessingGainHelpsUnderJamming) {
  const double ebno = dsp::db_to_linear(10.0);
  EXPECT_LT(dsss_ber(1000.0, 100.0, ebno), dsss_ber(100.0, 100.0, ebno));
}

}  // namespace
}  // namespace bhss::baseline
