// Unit tests for the LFSR PN generator: maximal-length period, balance,
// and seed behaviour.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "phy/pn.hpp"

namespace bhss::phy {
namespace {

TEST(LfsrPn, MaximalPeriod) {
  // Default taps implement a maximal-length 16-bit LFSR: the state must
  // cycle through all 2^16 - 1 non-zero states.
  LfsrPn pn(0x1234);
  const std::uint32_t start = pn.state();
  std::size_t period = 0;
  do {
    (void)pn.next_bit();
    ++period;
    ASSERT_LE(period, 70000U) << "period overflow — taps not maximal?";
  } while (pn.state() != start);
  EXPECT_EQ(period, 65535U);
}

TEST(LfsrPn, VisitsEveryNonZeroState) {
  LfsrPn pn(1);
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < 65535; ++i) {
    seen.insert(pn.state());
    (void)pn.next_bit();
  }
  EXPECT_EQ(seen.size(), 65535U);
  EXPECT_EQ(seen.count(0), 0U);
}

TEST(LfsrPn, BalancedOutput) {
  // A maximal-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
  LfsrPn pn(0xACE1);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < 65535; ++i) {
    if (pn.next_bit()) ++ones;
  }
  EXPECT_EQ(ones, 32768U);
}

TEST(LfsrPn, ZeroSeedRemapped) {
  LfsrPn pn(0);
  EXPECT_NE(pn.state(), 0U);
}

TEST(LfsrPn, ChipsAreAntipodal) {
  LfsrPn pn(7);
  std::vector<float> chips(1000);
  pn.fill_chips(chips);
  for (float c : chips) {
    EXPECT_TRUE(c == 1.0F || c == -1.0F);
  }
}

TEST(LfsrPn, ChipsNearZeroMean) {
  LfsrPn pn(99);
  double acc = 0.0;
  for (std::size_t i = 0; i < 65535; ++i) acc += pn.next_chip();
  EXPECT_NEAR(acc / 65535.0, 0.0, 1e-4);
}

TEST(LfsrPn, LowAutocorrelation) {
  // Shifted maximal-length sequences correlate at -1/N.
  LfsrPn a(0x5555);
  LfsrPn b(0x5555);
  std::vector<float> seq(65535);
  a.fill_chips(seq);
  for (std::size_t lag : {1UL, 7UL, 100UL, 30000UL}) {
    double corr = 0.0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      corr += seq[i] * seq[(i + lag) % seq.size()];
    }
    EXPECT_NEAR(corr / static_cast<double>(seq.size()), 0.0, 1e-4) << "lag " << lag;
  }
}

TEST(LfsrPn, DifferentSeedsDiverge) {
  LfsrPn a(0x1111);
  LfsrPn b(0x2222);
  std::size_t same = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (a.next_bit() == b.next_bit()) ++same;
  }
  // Roughly half should match, never all.
  EXPECT_GT(same, 300U);
  EXPECT_LT(same, 700U);
}

TEST(LfsrPn, SameSeedsIdentical) {
  LfsrPn a(0xBEEF);
  LfsrPn b(0xBEEF);
  for (std::size_t i = 0; i < 500; ++i) EXPECT_EQ(a.next_bit(), b.next_bit());
}

}  // namespace
}  // namespace bhss::phy
