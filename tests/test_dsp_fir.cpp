// Unit tests for FIR filtering and design: streaming filter semantics, the
// overlap-save convolver's equivalence to the direct form, windowed-sinc
// low-pass specs, and the eq. (3) excision filter's notch behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dsp/fir.hpp"
#include "dsp/utils.hpp"

namespace bhss::dsp {
namespace {

cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  cvec x(n);
  for (cf& v : x) v = cf{dist(rng), dist(rng)};
  return x;
}

TEST(FirFilter, IdentityTap) {
  FirFilter f{cvec{cf{1.0F, 0.0F}}};
  const cvec x = random_signal(32, 1);
  const cvec y = f.process(x);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(FirFilter, PureDelay) {
  cvec taps(4, cf{0.0F, 0.0F});
  taps[3] = cf{1.0F, 0.0F};
  FirFilter f{std::move(taps)};
  const cvec x = random_signal(16, 2);
  const cvec y = f.process(x);
  for (std::size_t i = 3; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i - 3]), 0.0F, 1e-6F);
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(std::abs(y[i]), 0.0F, 1e-6F);
}

TEST(FirFilter, MovingAverage) {
  FirFilter f{cvec{cf{0.5F, 0.0F}, cf{0.5F, 0.0F}}};
  const cvec x = {cf{2.0F, 0.0F}, cf{4.0F, 0.0F}, cf{6.0F, 0.0F}};
  const cvec y = f.process(x);
  EXPECT_NEAR(y[0].real(), 1.0F, 1e-6F);  // history starts at zero
  EXPECT_NEAR(y[1].real(), 3.0F, 1e-6F);
  EXPECT_NEAR(y[2].real(), 5.0F, 1e-6F);
}

TEST(FirFilter, ResetClearsHistory) {
  FirFilter f{cvec{cf{0.0F, 0.0F}, cf{1.0F, 0.0F}}};
  (void)f.process(cf{5.0F, 0.0F});
  f.reset();
  EXPECT_NEAR(std::abs(f.process(cf{1.0F, 0.0F})), 0.0F, 1e-7F);
}

TEST(FirFilter, RejectsEmptyTaps) {
  EXPECT_THROW(FirFilter{cvec{}}, std::invalid_argument);
}

struct ConvolverCase {
  std::size_t taps;
  std::size_t signal;
};

class ConvolverVsDirect : public ::testing::TestWithParam<ConvolverCase> {};

TEST_P(ConvolverVsDirect, IdenticalOutput) {
  const auto [n_taps, n_sig] = GetParam();
  cvec taps = random_signal(n_taps, 11);
  const cvec x = random_signal(n_sig, 12);

  FirFilter direct{taps};
  const cvec expected = direct.process(x);

  FftConvolver fast{cspan{taps}};
  const cvec got = fast.filter(x);

  ASSERT_EQ(got.size(), expected.size());
  double scale = 0.0;
  for (const cf& t : taps) scale += std::abs(t);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), expected[i].real(), 1e-3F * scale) << "i=" << i;
    EXPECT_NEAR(got[i].imag(), expected[i].imag(), 1e-3F * scale) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvolverVsDirect,
                         ::testing::Values(ConvolverCase{1, 100}, ConvolverCase{7, 64},
                                           ConvolverCase{64, 1000}, ConvolverCase{257, 300},
                                           ConvolverCase{513, 5000},
                                           ConvolverCase{1025, 1024}));

TEST(DesignLowpass, UnityDcGain) {
  for (double cutoff : {0.05, 0.1, 0.25, 0.4}) {
    const fvec taps = design_lowpass(101, cutoff);
    double dc = 0.0;
    for (float t : taps) dc += t;
    EXPECT_NEAR(dc, 1.0, 1e-6) << "cutoff=" << cutoff;
  }
}

TEST(DesignLowpass, PassbandFlatStopbandDeep) {
  const double cutoff = 0.125;
  const fvec taps = design_lowpass(201, cutoff, Window::blackman);
  const fvec resp = power_response(cspan{to_complex(taps)}, 2048);
  // Passband (well below cutoff): within 1 dB of unity.
  for (std::size_t k = 0; k < static_cast<std::size_t>(0.8 * cutoff * 2048); ++k) {
    EXPECT_GT(linear_to_db(resp[k]), -1.0) << "bin " << k;
  }
  // Stopband (well above cutoff): below -55 dB.
  for (std::size_t k = static_cast<std::size_t>(1.4 * cutoff * 2048); k < 1024; ++k) {
    EXPECT_LT(linear_to_db(resp[k]), -55.0) << "bin " << k;
  }
}

TEST(DesignLowpass, RejectsBadArgs) {
  EXPECT_THROW(design_lowpass(0, 0.1), std::invalid_argument);
  EXPECT_THROW(design_lowpass(11, 0.0), std::invalid_argument);
  EXPECT_THROW(design_lowpass(11, 0.5), std::invalid_argument);
}

TEST(LowpassNumTaps, MonotonicInSpecs) {
  // Narrower transitions and higher attenuation need more taps.
  EXPECT_GT(lowpass_num_taps(0.01, 60.0), lowpass_num_taps(0.05, 60.0));
  EXPECT_GT(lowpass_num_taps(0.01, 80.0), lowpass_num_taps(0.01, 40.0));
  // Always odd, always clamped.
  EXPECT_EQ(lowpass_num_taps(0.001, 120.0, 301) % 2, 1U);
  EXPECT_LE(lowpass_num_taps(0.0001, 120.0, 301), 301U);
  EXPECT_GE(lowpass_num_taps(0.4, 10.0), 3U);
}

TEST(DesignExcision, NotchesTheJammerBand) {
  // Synthetic PSD: flat floor with a strong block around bin 10..20 of 256
  // (a narrow-band jammer 25 dB above the floor).
  fvec psd(256, 1.0F);
  for (std::size_t k = 10; k <= 20; ++k) psd[k] = 316.0F;
  for (std::size_t k = 236; k <= 246; ++k) psd[k] = 316.0F;  // mirrored side

  const cvec taps = design_excision_whitening(psd);
  ASSERT_EQ(taps.size(), 256U);
  const fvec resp = power_response(taps, 256);

  // Attenuation in the jammer band ~ 1/316 relative to the quiet band.
  double quiet = 0.0;
  std::size_t n_quiet = 0;
  for (std::size_t k = 40; k < 100; ++k) {
    quiet += resp[k];
    ++n_quiet;
  }
  quiet /= static_cast<double>(n_quiet);
  for (std::size_t k = 12; k <= 18; ++k) {
    EXPECT_LT(resp[k] / quiet, 0.02) << "bin " << k;  // > 17 dB notch
  }
}

TEST(DesignExcision, PassbandRestriction) {
  fvec psd(128, 1.0F);
  const cvec taps = design_excision_whitening(psd, 1e-6, 0.5);
  const fvec resp = power_response(taps, 128);
  // Outside +-0.25 cycles/sample the response must be heavily suppressed.
  for (std::size_t k = 40; k <= 88; ++k) {
    if (k == 64) continue;  // wrap midpoint
    EXPECT_LT(resp[k], 0.05F) << "bin " << k;
  }
  // Inside the passband it should be near unity.
  EXPECT_NEAR(resp[5], 1.0F, 0.3F);
}

TEST(DesignExcision, GroupDelayIsHalfLength) {
  // Feed an impulse through the filter designed from a flat PSD: the
  // response must peak at delay K/2.
  fvec psd(64, 1.0F);
  const cvec taps = design_excision_whitening(psd);
  std::size_t peak = 0;
  float best = 0.0F;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (std::abs(taps[i]) > best) {
      best = std::abs(taps[i]);
      peak = i;
    }
  }
  EXPECT_EQ(peak, 32U);
}

TEST(DesignExcision, RejectsBadArgs) {
  EXPECT_THROW(design_excision_whitening(fvec(100, 1.0F)), std::invalid_argument);
  EXPECT_THROW(design_excision_whitening(fvec(64, 0.0F)), std::invalid_argument);
  EXPECT_THROW(design_excision_whitening(fvec(64, 1.0F), 1e-6, 0.0), std::invalid_argument);
}

TEST(FrequencyResponse, MatchesAnalyticForTwoTaps) {
  // h = [1, 1]: |H(f)|^2 = 4 cos^2(pi f).
  const cvec taps = {cf{1.0F, 0.0F}, cf{1.0F, 0.0F}};
  const fvec resp = power_response(taps, 64);
  for (std::size_t k = 0; k < 64; ++k) {
    const double f = static_cast<double>(k) / 64.0;
    const double expected = 4.0 * std::pow(std::cos(std::numbers::pi * f), 2);
    EXPECT_NEAR(resp[k], expected, 1e-3) << "bin " << k;
  }
}

}  // namespace
}  // namespace bhss::dsp
