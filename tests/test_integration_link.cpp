// Integration tests across the whole stack: transmitter -> jammer + AWGN
// channel -> receiver, exercising the paper's headline behaviours on the
// (fast) reduced bandwidth set.

#include <gtest/gtest.h>

#include "baseline/dsss_baseline.hpp"
#include "core/link_simulator.hpp"
#include "phy/frame.hpp"

namespace bhss::core {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.system.pattern = HopPattern::make(HopPatternType::linear, BandwidthSet::small());
  cfg.system.hopping = true;
  cfg.payload_len = 8;
  cfg.n_packets = 15;
  return cfg;
}

TEST(LinkIntegration, CleanChannelDeliversEverything) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::none;
  cfg.snr_db = 20.0;
  const LinkStats s = run_link(cfg);
  EXPECT_EQ(s.ok, s.packets);
  EXPECT_EQ(s.detected, s.packets);
  EXPECT_EQ(s.symbol_errors, 0U);
  EXPECT_DOUBLE_EQ(s.per(), 0.0);
  EXPECT_GT(s.throughput_bps, 0.0);
}

TEST(LinkIntegration, LowSnrLosesPackets) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::none;
  cfg.snr_db = -25.0;
  const LinkStats s = run_link(cfg);
  EXPECT_EQ(s.ok, 0U);
  EXPECT_DOUBLE_EQ(s.per(), 1.0);
}

TEST(LinkIntegration, AdaptiveFilteringBeatsOffUnderNarrowbandJam) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 1.0 / 32.0;
  cfg.jnr_db = 28.0;
  cfg.snr_db = 12.0;
  const LinkStats adaptive = run_link(cfg);
  cfg.system.filter_policy = FilterPolicy::off;
  const LinkStats off = run_link(cfg);
  EXPECT_LT(adaptive.ser(), off.ser());
  EXPECT_GE(adaptive.ok, off.ok);
}

TEST(LinkIntegration, MinSnrSearchIsMonotoneConsistent) {
  SimConfig cfg = base_config();
  cfg.system.hopping = false;
  cfg.system.pattern = HopPattern::fixed(BandwidthSet::small(), 0);
  cfg.jammer.kind = JammerSpec::Kind::none;
  const double min_snr = min_snr_for_per(cfg, 0.5, -10.0, 30.0);
  EXPECT_GT(min_snr, -10.0);
  EXPECT_LT(min_snr, 30.0);
  // Above the threshold the PER must satisfy the target; below, not.
  cfg.snr_db = min_snr + 1.0;
  EXPECT_LE(run_link(cfg).per(), 0.5);
  cfg.snr_db = min_snr - 3.0;
  EXPECT_GT(run_link(cfg).per(), 0.4);
}

TEST(LinkIntegration, ExcisionPowerAdvantageOnNarrowbandJam) {
  // The core §6.3 result on the NB side: > 10 dB advantage for a strong
  // narrow-band jammer at Bp/Bj = 8.
  SimConfig cfg;
  cfg.system = baseline::dsss_config(BandwidthSet::small(), 0);
  cfg.payload_len = 8;
  cfg.n_packets = 15;
  cfg.jammer.kind = JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 1.0 / 16.0;
  cfg.jnr_db = 25.0;
  SimConfig off = cfg;
  off.system.filter_policy = FilterPolicy::off;
  const double advantage = power_advantage_db(cfg, off);
  EXPECT_GT(advantage, 10.0);
}

TEST(LinkIntegration, MatchedJammerGivesNoAdvantage) {
  SimConfig cfg;
  cfg.system = baseline::dsss_config(BandwidthSet::small(), 0);
  cfg.payload_len = 8;
  cfg.n_packets = 15;
  cfg.jammer.kind = JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.5;  // matched to the signal
  cfg.jnr_db = 25.0;
  SimConfig off = cfg;
  off.system.filter_policy = FilterPolicy::off;
  const double advantage = power_advantage_db(cfg, off);
  EXPECT_NEAR(advantage, 0.0, 2.0);
}

TEST(LinkIntegration, ModerateRatioExcisionDecodes) {
  // Regression guard for the hard-notch excision: a strong narrow-band
  // jammer only four times narrower than the signal (the eq. (11) regime
  // closest to the eq. (10) bypass) must still be dug out. Plain
  // whitening-depth notches leave a chip-correlated residual here and
  // lose the frame.
  SimConfig cfg;
  cfg.system = baseline::dsss_config(BandwidthSet::paper(), 4);  // 0.625 MHz
  cfg.payload_len = 6;
  cfg.n_packets = 12;
  cfg.snr_db = 18.0;
  cfg.jnr_db = 30.0;
  cfg.jammer.kind = JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = BandwidthSet::paper().bandwidth_frac(6);  // 0.156 MHz
  const LinkStats s = run_link(cfg);
  EXPECT_GE(s.ok, s.packets - 1);
  EXPECT_LT(s.ser(), 0.02);
}

TEST(LinkIntegration, HoppingJammerRunsEndToEnd) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::hopping;
  cfg.jammer.dwell_samples = 2048;
  cfg.jnr_db = 20.0;
  cfg.snr_db = 25.0;
  const LinkStats s = run_link(cfg);
  EXPECT_EQ(s.packets, cfg.n_packets);
  EXPECT_GT(s.ok, 0U);
}

TEST(LinkIntegration, HoppingDefeatsReactiveJammer) {
  // §3: a reactive jammer keeps its bandwidth matched to a non-hopping
  // transmitter (after one reaction delay) and kills the link; against a
  // transmitter that hops faster than the reaction time, many hops escape
  // with a large bandwidth offset and survive.
  SimConfig fixed = base_config();
  fixed.system.hopping = false;
  fixed.system.fixed_bw_index = 1;
  fixed.jammer.kind = JammerSpec::Kind::reactive;
  fixed.jammer.reaction_delay = 4096;  // ~200 us at 20 MS/s
  fixed.jnr_db = 30.0;
  fixed.snr_db = 15.0;
  fixed.n_packets = 20;

  SimConfig hopping = fixed;
  hopping.system.hopping = true;
  hopping.system.symbols_per_hop = 2;

  const LinkStats s_fixed = run_link(fixed);
  const LinkStats s_hopping = run_link(hopping);
  EXPECT_LT(s_hopping.ser(), s_fixed.ser());
}

TEST(LinkIntegration, GenieAndPreambleAgreeOnCleanChannel) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::none;
  cfg.snr_db = 20.0;
  cfg.system.sync = SyncMode::preamble;
  const LinkStats preamble = run_link(cfg);
  cfg.system.sync = SyncMode::genie;
  const LinkStats genie = run_link(cfg);
  EXPECT_EQ(preamble.ok, genie.ok);
}

TEST(LinkIntegration, ThroughputAccountsAirtime) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::none;
  cfg.snr_db = 20.0;
  const LinkStats s = run_link(cfg);
  // bits delivered / airtime, within the bounds set by the fastest and
  // slowest bandwidths of the set at spreading factor 8.
  EXPECT_GT(s.throughput_bps, 1e4);
  EXPECT_LT(s.throughput_bps, 2e6);
}

TEST(LinkIntegration, StatsAccounting) {
  SimConfig cfg = base_config();
  cfg.jammer.kind = JammerSpec::Kind::none;
  cfg.snr_db = 3.0;
  const LinkStats s = run_link(cfg);
  EXPECT_EQ(s.packets, cfg.n_packets);
  EXPECT_LE(s.ok, s.detected);
  EXPECT_LE(s.detected, s.packets);
  EXPECT_EQ(s.total_symbols,
            cfg.n_packets * phy::FrameSpec::total_symbols(cfg.payload_len));
  EXPECT_LE(s.symbol_errors, s.total_symbols);
}

}  // namespace
}  // namespace bhss::core
