// The per-receiver excision filter-design cache: unit behaviour of the
// cache container, bit-identity of cached vs freshly designed taps at
// the ControlLogic level, and — the property the cache exists to keep —
// behaviour-neutrality at the link level: enabling or disabling the
// cache changes only how much design work runs, never a bit of LinkStats
// or of the telemetry outside the two cache counters themselves.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "channel/awgn.hpp"
#include "core/control_logic.hpp"
#include "core/filter_design_cache.hpp"
#include "core/link_simulator.hpp"
#include "core/transmitter.hpp"
#include "dsp/utils.hpp"
#include "obs/link_obs.hpp"
#include "runtime/parallel_link_runner.hpp"

namespace bhss::core {
namespace {

// ------------------------------------------------------------- container

FilterDesignKey key_of(std::size_t bw, std::uint64_t word) {
  FilterDesignKey k;
  k.bw_index = bw;
  k.n_bins = 64;
  k.mask = {word};
  return k;
}

FilterDesignEntry entry_of(float tap) {
  FilterDesignEntry e;
  e.taps = {dsp::cf{tap, 0.0F}};
  e.group_delay = 0;
  return e;
}

TEST(FilterDesignCache, CountsHitsAndMisses) {
  FilterDesignCache cache(4);
  EXPECT_EQ(cache.find(key_of(0, 1)), nullptr);
  EXPECT_EQ(cache.misses(), 1U);
  cache.insert(key_of(0, 1), entry_of(2.0F));
  const FilterDesignEntry* e = cache.find(key_of(0, 1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->taps[0].real(), 2.0F);
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
  // Same mask at a different bandwidth level is a different design.
  EXPECT_EQ(cache.find(key_of(1, 1)), nullptr);
  EXPECT_EQ(cache.misses(), 2U);
}

TEST(FilterDesignCache, CapacityZeroDisablesEverything) {
  FilterDesignCache cache(0);
  EXPECT_EQ(cache.find(key_of(0, 1)), nullptr);
  cache.insert(key_of(0, 1), entry_of(1.0F));
  EXPECT_EQ(cache.find(key_of(0, 1)), nullptr);
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.hits(), 0U);    // a disabled cache never counts:
  EXPECT_EQ(cache.misses(), 0U);  // the obs counters must stay silent
}

TEST(FilterDesignCache, FlushWhenFullIsDeterministic) {
  FilterDesignCache cache(2);
  cache.insert(key_of(0, 1), entry_of(1.0F));
  cache.insert(key_of(0, 2), entry_of(2.0F));
  EXPECT_EQ(cache.size(), 2U);
  cache.insert(key_of(0, 3), entry_of(3.0F));  // full -> flush, then insert
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_EQ(cache.find(key_of(0, 1)), nullptr);
  EXPECT_NE(cache.find(key_of(0, 3)), nullptr);
}

// ----------------------------------------------------------- control logic

dsp::cvec jammed_slice(const BandwidthSet& bands, std::size_t level, std::uint64_t seed) {
  SystemConfig sys;
  sys.pattern = HopPattern::fixed(bands, level);
  sys.hopping = false;
  sys.fixed_bw_index = level;
  const BhssTransmitter tx(sys);
  const std::vector<std::uint8_t> payload(16, 0x5A);
  dsp::cvec wave = tx.transmit(payload, seed).samples;
  dsp::scale_to_power(dsp::cspan_mut{wave}, dsp::db_to_linear(15.0));
  // Strong CW tone well inside the band: the canonical excision target.
  const auto g = static_cast<float>(std::sqrt(dsp::db_to_linear(25.0)));
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const float ph = 2.0F * 3.14159265F * 0.01F * static_cast<float>(i);
    wave[i] += dsp::cf{g * std::cos(ph), g * std::sin(ph)};
  }
  channel::AwgnSource noise(seed + 2);
  noise.add_to(dsp::cspan_mut{wave}, 1.0);
  return wave;
}

void expect_same_taps(const dsp::cvec& a, const dsp::cvec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(dsp::cf)), 0) << "tap " << i;
  }
}

TEST(FilterDesignCache, RepeatDesignIsAHitAndBitIdentical) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const dsp::cvec slice = jammed_slice(bands, 0, 77);

  const FilterDecision first = logic.force_excision(slice, 0);
  ASSERT_EQ(first.kind, FilterDecision::Kind::excision);
  EXPECT_EQ(first.cache, FilterDecision::CacheOutcome::miss);
  ASSERT_NE(first.plan, nullptr);

  const FilterDecision second = logic.force_excision(slice, 0);
  EXPECT_EQ(second.cache, FilterDecision::CacheOutcome::hit);
  expect_same_taps(first.taps, second.taps);
  EXPECT_EQ(second.group_delay, first.group_delay);
  EXPECT_EQ(second.plan, first.plan);  // the plan itself is shared, not rebuilt
  EXPECT_EQ(logic.design_cache().hits(), 1U);
  EXPECT_EQ(logic.design_cache().misses(), 1U);
}

TEST(FilterDesignCache, DisabledCacheYieldsBitIdenticalTaps) {
  const BandwidthSet bands = BandwidthSet::paper();
  ControlLogicConfig off;
  off.design_cache_capacity = 0;
  const ControlLogic cached({}, bands);
  const ControlLogic fresh(off, bands);
  const dsp::cvec slice = jammed_slice(bands, 0, 78);

  const FilterDecision a1 = cached.force_excision(slice, 0);
  const FilterDecision a2 = cached.force_excision(slice, 0);  // from the cache
  const FilterDecision b = fresh.force_excision(slice, 0);
  EXPECT_EQ(b.cache, FilterDecision::CacheOutcome::not_cacheable);
  ASSERT_NE(b.plan, nullptr);  // a plan still ships with an uncached design
  expect_same_taps(a1.taps, b.taps);
  expect_same_taps(a2.taps, b.taps);
  EXPECT_EQ(fresh.design_cache().hits(), 0U);
  EXPECT_EQ(fresh.design_cache().misses(), 0U);
}

TEST(FilterDesignCache, WhiteningStyleIsNotCacheable) {
  const BandwidthSet bands = BandwidthSet::paper();
  ControlLogicConfig cfg;
  cfg.excision_style = ExcisionStyle::whitening;
  const ControlLogic logic(cfg, bands);
  const dsp::cvec slice = jammed_slice(bands, 0, 79);
  const FilterDecision d1 = logic.force_excision(slice, 0);
  const FilterDecision d2 = logic.force_excision(slice, 0);
  EXPECT_EQ(d1.cache, FilterDecision::CacheOutcome::not_cacheable);
  EXPECT_EQ(d2.cache, FilterDecision::CacheOutcome::not_cacheable);
  EXPECT_EQ(logic.design_cache().hits(), 0U);
  EXPECT_EQ(logic.design_cache().misses(), 0U);
}

TEST(FilterDesignCache, LowpassDecisionsCarryThePrecomputedPlan) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const FilterDecision d1 = logic.force_lowpass(2);
  const FilterDecision d2 = logic.force_lowpass(2);
  ASSERT_NE(d1.plan, nullptr);
  EXPECT_EQ(d1.plan, d2.plan);  // from the bank, never the cache
  EXPECT_EQ(d1.cache, FilterDecision::CacheOutcome::not_cacheable);
  EXPECT_EQ(logic.design_cache().misses(), 0U);
}

// ------------------------------------------------------------- link level

SimConfig tone_jammed_sim() {
  SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 8;
  cfg.snr_db = 14.0;
  cfg.jnr_db = 25.0;
  cfg.jammer.kind = JammerSpec::Kind::tone;
  return cfg;
}

void expect_identical_stats(const LinkStats& a, const LinkStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.total_symbols, b.total_symbols);
  EXPECT_EQ(a.airtime_s, b.airtime_s);
  EXPECT_EQ(a.throughput_bps, b.throughput_bps);
  EXPECT_EQ(a.sync_lost, b.sync_lost);
  EXPECT_EQ(a.reacquired, b.reacquired);
  EXPECT_EQ(a.filter_fallback, b.filter_fallback);
  EXPECT_EQ(a.corrupt_input_rejected, b.corrupt_input_rejected);
}

/// Remove one `"key":value` pair from a metrics JSON body fragment.
std::string strip_key(std::string body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return body;
  const std::size_t comma = body.find(',', pos);
  if (comma != std::string::npos) {
    body.erase(pos, comma + 1 - pos);
  } else {
    const std::size_t prev = body.rfind(',', pos);
    body.erase(prev == std::string::npos ? pos : prev);
  }
  return body;
}

std::uint64_t counter_value(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(FilterDesignCache, LinkStatsAndTelemetryAreCacheNeutral) {
  SimConfig cached_cfg = tone_jammed_sim();
  SimConfig fresh_cfg = tone_jammed_sim();
  fresh_cfg.system.logic.design_cache_capacity = 0;

  runtime::ParallelLinkRunner runner({.n_threads = 2, .n_shards = 4});
  std::vector<obs::ShardTelemetry> cached_t;
  std::vector<obs::ShardTelemetry> fresh_t;
  const LinkStats cached_s = runner.run(cached_cfg, &cached_t);
  const LinkStats fresh_s = runner.run(fresh_cfg, &fresh_t);

  // The statistics must not know whether the cache exists.
  expect_identical_stats(cached_s, fresh_s);

  // Telemetry likewise, outside the two counters that ARE the cache.
  const obs::ShardTelemetry cached_m = obs::merge_telemetry(cached_t, 4);
  const obs::ShardTelemetry fresh_m = obs::merge_telemetry(fresh_t, 4);
  const std::string cached_body = obs::metrics_json_body(cached_m.metrics);
  const std::string fresh_body = obs::metrics_json_body(fresh_m.metrics);
  EXPECT_EQ(strip_key(strip_key(cached_body, "filter_cache_hits"), "filter_cache_misses"),
            strip_key(strip_key(fresh_body, "filter_cache_hits"), "filter_cache_misses"));

  // Observability: the tone jammer repeats the same jammed bins, so an
  // enabled cache must record activity (and hits); a disabled one, nothing.
  const std::uint64_t hits = counter_value(cached_body, "filter_cache_hits");
  const std::uint64_t misses = counter_value(cached_body, "filter_cache_misses");
  EXPECT_GT(hits + misses, 0U);
  EXPECT_GT(hits, 0U);
  EXPECT_EQ(counter_value(fresh_body, "filter_cache_hits"), 0U);
  EXPECT_EQ(counter_value(fresh_body, "filter_cache_misses"), 0U);
}

TEST(FilterDesignCache, ThreadCountDoesNotChangeCacheTelemetry) {
  // The cache is per shard, so the merged telemetry — cache counters
  // included — is a pure function of (SimConfig, n_shards): running the
  // same shards on 1 thread and on 8 must serialize byte-identically.
  const SimConfig cfg = tone_jammed_sim();
  runtime::ParallelLinkRunner one({.n_threads = 1, .n_shards = 4});
  runtime::ParallelLinkRunner eight({.n_threads = 8, .n_shards = 4});
  std::vector<obs::ShardTelemetry> t1;
  std::vector<obs::ShardTelemetry> t8;
  const LinkStats s1 = one.run(cfg, &t1);
  const LinkStats s8 = eight.run(cfg, &t8);
  expect_identical_stats(s1, s8);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(obs::serialize_telemetry(t1[i]), obs::serialize_telemetry(t8[i])) << "shard " << i;
  }
  EXPECT_EQ(obs::serialize_telemetry(obs::merge_telemetry(t1, 4)),
            obs::serialize_telemetry(obs::merge_telemetry(t8, 4)));
}

}  // namespace
}  // namespace bhss::core
