// Unit + integration tests for the CW tone and swept-carrier jammers —
// the interferers the excision-filter literature ([3]-[7] in the paper)
// was built against.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dsss_baseline.hpp"
#include "core/link_simulator.hpp"
#include "dsp/psd.hpp"
#include "dsp/utils.hpp"
#include "jammer/tone_jammer.hpp"

namespace bhss::jammer {
namespace {

TEST(ToneJammer, UnitPowerAndSpectralLine) {
  ToneJammer jam(0.11, 3);
  const dsp::cvec x = jam.generate(1 << 14);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 1e-3);

  const dsp::fvec psd = dsp::welch_psd(x, 256);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.size(); ++k) {
    if (psd[k] > psd[peak]) peak = k;
  }
  EXPECT_NEAR(static_cast<double>(peak) / 256.0, 0.11, 1.5 / 256.0);
  // Essentially all power in the line's neighbourhood.
  double near = 0.0;
  for (std::size_t k = peak - 2; k <= peak + 2; ++k) near += psd[k];
  EXPECT_GT(near / dsp::psd_total_power(psd), 0.98);
}

TEST(ToneJammer, PhaseContinuousAcrossCalls) {
  ToneJammer a(0.07, 9);
  ToneJammer b(0.07, 9);
  const dsp::cvec whole = a.generate(256);
  dsp::cvec split = b.generate(100);
  const dsp::cvec tail = b.generate(156);
  split.insert(split.end(), tail.begin(), tail.end());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_NEAR(std::abs(whole[i] - split[i]), 0.0F, 1e-4F) << "i=" << i;
  }
}

TEST(ToneJammer, MultiToneSplitsPower) {
  ToneJammer jam(std::vector<double>{-0.2, 0.05, 0.3}, 4);
  const dsp::cvec x = jam.generate(1 << 14);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.05);
  const dsp::fvec psd = dsp::welch_psd(x, 512);
  // Three distinct lines, each carrying roughly a third of the power.
  for (double f : {-0.2, 0.05, 0.3}) {
    const auto bin = static_cast<std::size_t>(std::lround((f < 0 ? f + 1.0 : f) * 512.0));
    double near = 0.0;
    for (std::size_t k = bin - 2; k <= bin + 2; ++k) near += psd[k];
    EXPECT_NEAR(near, 1.0 / 3.0, 0.1) << "f=" << f;
  }
}

TEST(ToneJammer, RejectsBadFrequencies) {
  EXPECT_THROW(ToneJammer(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(ToneJammer(0.5), std::invalid_argument);
  EXPECT_THROW(ToneJammer(-0.6), std::invalid_argument);
}

TEST(SweptJammer, CoversTheSweptBandOverAFullSweep) {
  SweptJammer jam(-0.2, 0.2, 1 << 14, 5);
  const dsp::cvec x = jam.generate(1 << 14);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 1e-3);
  const dsp::fvec psd = dsp::welch_psd(x, 128);
  EXPECT_NEAR(dsp::occupied_bandwidth(psd, 0.95), 0.4, 0.1);
}

TEST(SweptJammer, InstantaneouslyNarrow) {
  // Over a window much shorter than the sweep, the jammer is a tone:
  // nearly all power concentrates around one spectral line (which sits at
  // an arbitrary offset, so the DC-centred occupied_bandwidth measure
  // does not apply).
  SweptJammer jam(-0.2, 0.2, 1 << 20, 6);
  const dsp::cvec x = jam.generate(4096);
  const dsp::fvec psd = dsp::welch_psd(x, 128);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.size(); ++k) {
    if (psd[k] > psd[peak]) peak = k;
  }
  double near = 0.0;
  for (std::size_t d = 0; d < 5; ++d) near += psd[(peak + 126 + d) % 128];
  EXPECT_GT(near / dsp::psd_total_power(psd), 0.9);
}

TEST(SweptJammer, RejectsBadBand) {
  EXPECT_THROW(SweptJammer(0.2, -0.2, 100), std::invalid_argument);
  EXPECT_THROW(SweptJammer(-0.6, 0.2, 100), std::invalid_argument);
  EXPECT_THROW(SweptJammer(-0.1, 0.1, 0), std::invalid_argument);
}

TEST(ToneJammerIntegration, ExcisionDigsOutAStrongTone) {
  // A CW tone 30 dB above the noise inside the signal band: the classic
  // excision scenario. With the adaptive filter the link survives; with
  // filtering off it collapses.
  core::SimConfig cfg;
  cfg.system = baseline::dsss_config(core::BandwidthSet::paper(), 0);  // 10 MHz
  cfg.payload_len = 6;
  cfg.n_packets = 12;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 30.0;
  cfg.jammer.kind = core::JammerSpec::Kind::tone;
  cfg.jammer.tone_freqs = {0.03};  // inside the 10 MHz band

  const core::LinkStats with = core::run_link(cfg);
  cfg.system.filter_policy = core::FilterPolicy::off;
  const core::LinkStats without = core::run_link(cfg);

  EXPECT_GE(with.ok, cfg.n_packets - 1);
  EXPECT_EQ(without.ok, 0U);
}

TEST(SweptJammerIntegration, LinkRunsEndToEnd) {
  core::SimConfig cfg;
  cfg.system.pattern =
      core::HopPattern::make(core::HopPatternType::linear, core::BandwidthSet::small());
  cfg.payload_len = 6;
  cfg.n_packets = 8;
  cfg.snr_db = 18.0;
  cfg.jnr_db = 25.0;
  cfg.jammer.kind = core::JammerSpec::Kind::swept;
  cfg.jammer.sweep_lo = -0.2;
  cfg.jammer.sweep_hi = 0.2;
  cfg.jammer.sweep_samples = 32768;
  const core::LinkStats s = core::run_link(cfg);  // must not throw
  EXPECT_EQ(s.packets, cfg.n_packets);
}

}  // namespace
}  // namespace bhss::jammer
