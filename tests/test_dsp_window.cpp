// Unit tests for window functions: symmetry, range, endpoint behaviour and
// the PSD normalisation helper.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/window.hpp"

namespace bhss::dsp {
namespace {

class AllWindows : public ::testing::TestWithParam<Window> {};

TEST_P(AllWindows, SymmetricInRangeAndPeaksInMiddle) {
  const fvec w = make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65U);
  float peak = 0.0F;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-6F) << "i=" << i;
    EXPECT_LE(w[i], 1.0F + 1e-6F) << "i=" << i;
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-5F) << "i=" << i;
    peak = std::max(peak, w[i]);
  }
  EXPECT_NEAR(peak, w[32], 1e-6F);  // maximum at the centre
  EXPECT_NEAR(w[32], 1.0F, 5e-2F);
}

TEST_P(AllWindows, TrivialLengths) {
  EXPECT_TRUE(make_window(GetParam(), 0).empty());
  const fvec w1 = make_window(GetParam(), 1);
  ASSERT_EQ(w1.size(), 1U);
  EXPECT_FLOAT_EQ(w1[0], 1.0F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AllWindows,
                         ::testing::Values(Window::rectangular, Window::hamming,
                                           Window::hann, Window::blackman,
                                           Window::blackman_harris, Window::kaiser));

TEST(Window, RectangularIsAllOnes) {
  const fvec w = make_window(Window::rectangular, 17);
  for (float v : w) EXPECT_FLOAT_EQ(v, 1.0F);
}

TEST(Window, HannEndpointsAreZero) {
  const fvec w = make_window(Window::hann, 33);
  EXPECT_NEAR(w.front(), 0.0F, 1e-6F);
  EXPECT_NEAR(w.back(), 0.0F, 1e-6F);
}

TEST(Window, HammingEndpointsAreNonZero) {
  const fvec w = make_window(Window::hamming, 33);
  EXPECT_NEAR(w.front(), 0.08F, 1e-3F);
}

TEST(Window, KaiserBetaControlsTaper) {
  // Higher beta -> narrower effective width -> smaller endpoint value.
  const fvec gentle = make_window(Window::kaiser, 65, 2.0);
  const fvec sharp = make_window(Window::kaiser, 65, 12.0);
  EXPECT_GT(gentle.front(), sharp.front());
  EXPECT_NEAR(gentle[32], 1.0F, 1e-5F);
  EXPECT_NEAR(sharp[32], 1.0F, 1e-5F);
}

TEST(WindowPower, MatchesDirectSum) {
  const fvec w = make_window(Window::hann, 64);
  double expected = 0.0;
  for (float v : w) expected += static_cast<double>(v) * v;
  EXPECT_NEAR(window_power(w), expected, 1e-9);
  EXPECT_NEAR(window_power(make_window(Window::rectangular, 50)), 50.0, 1e-9);
}

}  // namespace
}  // namespace bhss::dsp
