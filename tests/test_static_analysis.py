#!/usr/bin/env python3
"""Tests for the BHSS static-analysis tooling itself.

Two modes, both registered as ctest entries (tests/CMakeLists.txt):

  --fixtures        Run bhss_analyze.py / bhss_lint.py against the
                    good/bad fixture pairs in tests/analyze_fixtures/ and
                    assert each check fires exactly where expected —
                    including the suppression and baseline mechanics.
  --head BUILD_DIR  Run both tools against the real tree (using the
                    compile_commands.json that BUILD_DIR's configure step
                    exported) and assert the acceptance criterion: HEAD
                    is clean.

A regression in either tool — a check that stops firing, a suppression
that stops matching, a lint rule that starts flagging placement-new —
fails these tests, not just silently weakens CI.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analyze_fixtures"
ANALYZE = REPO_ROOT / "scripts" / "bhss_analyze.py"
LINT = REPO_ROOT / "scripts" / "bhss_lint.py"

_failures: list[str] = []


def check(cond: bool, label: str, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {label}")
    if not cond:
        if detail:
            print(detail)
        _failures.append(label)


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable] + cmd, capture_output=True,
                          text=True, cwd=REPO_ROOT)


def analyze_fixture(name: str, *extra: str) -> subprocess.CompletedProcess:
    return run([str(ANALYZE), "--paths", str(FIXTURES / name),
                "--no-baseline", *extra])


def expect_fires(name: str, check_id: str, min_count: int = 1) -> None:
    r = analyze_fixture(name)
    hits = r.stdout.count(f"[{check_id}]")
    check(r.returncode == 1 and hits >= min_count,
          f"{name}: {check_id} fires (>= {min_count})",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")


def expect_clean(name: str) -> None:
    r = analyze_fixture(name)
    check(r.returncode == 0, f"{name}: no findings",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")


def fixture_tests() -> None:
    # --- H1: hot-path purity through the call graph ---
    r = analyze_fixture("h1_bad.cpp")
    check(r.returncode == 1 and r.stdout.count("[h1-hot-path-purity]") >= 2,
          "h1_bad.cpp: mutex + transitive allocation both fire",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    check("via" in r.stdout and "accumulate" in r.stdout,
          "h1_bad.cpp: finding names the root->callee chain",
          r.stdout)
    expect_clean("h1_good.cpp")

    # --- H1 on the vector-layer shape: per-call scratch allocation in a
    # hot SIMD-style kernel and a mutex in a hot cache lookup must fire;
    # the caller-buffer kernel + lock-free unordered_map lookup must not
    # (map_.find on a hot path is a D1 concern, never an H1 one).
    r = analyze_fixture("h1_simd_bad.cpp")
    check(r.returncode == 1 and r.stdout.count("[h1-hot-path-purity]") >= 2,
          "h1_simd_bad.cpp: scratch allocation + cache mutex both fire",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    expect_clean("h1_simd_good.cpp")

    # --- H1 on the adapt-layer shape: a per-packet window-buffer copy in
    # the hot note_packet feed and a mutex on the per-hop suspicion update
    # must fire; counter-only feeds with the probability rebuild kept on
    # the cold window-close path must not.
    r = analyze_fixture("h1_adapt_bad.cpp")
    check(r.returncode == 1 and r.stdout.count("[h1-hot-path-purity]") >= 2,
          "h1_adapt_bad.cpp: window-copy allocation + suspicion mutex both fire",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    expect_clean("h1_adapt_good.cpp")

    # --- D1: deterministic fold ---
    expect_fires("d1_bad.cpp", "d1-deterministic-fold")
    expect_clean("d1_good.cpp")

    # --- D1 on the distributed journal-merge shape: a merge_* root that
    # folds worker records out of an unordered container AND tie-breaks by
    # object address must fire twice; the canonical std::map-keyed fold
    # (the journal_merge.cpp shape) with unordered iteration confined to a
    # non-fold diagnostic must not.
    r = analyze_fixture("h1_dist_bad.cpp")
    check(r.returncode == 1 and r.stdout.count("[d1-deterministic-fold]") >= 2,
          "h1_dist_bad.cpp: unordered fold + address tie-break both fire",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    expect_clean("h1_dist_good.cpp")

    # --- D2: RNG discipline ---
    expect_fires("d2_bad.cpp", "d2-rng-discipline", min_count=3)
    expect_clean("d2_good.cpp")

    # --- C1: contract coverage ---
    expect_fires("c1_bad.hpp", "c1-contract-coverage", min_count=3)
    expect_clean("c1_good.hpp")

    # --- suppressions ---
    r = analyze_fixture("suppress_ok.cpp")
    check(r.returncode == 0 and "1 suppressed" in r.stdout,
          "suppress_ok.cpp: reasoned suppression silences the finding",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    r = analyze_fixture("suppress_noreason.cpp")
    check(r.returncode == 1 and "[suppression-missing-reason]" in r.stdout,
          "suppress_noreason.cpp: reason-less suppression is itself a finding",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")

    # --- baseline round-trip: write, then gate against it ---
    with tempfile.TemporaryDirectory() as td:
        base = Path(td) / "baseline.txt"
        r = run([str(ANALYZE), "--paths", str(FIXTURES / "d2_bad.cpp"),
                 "--write-baseline", str(base)])
        check(r.returncode == 0 and base.exists(),
              "baseline: --write-baseline records current findings",
              f"exit={r.returncode}\n{r.stdout}{r.stderr}")
        r = run([str(ANALYZE), "--paths", str(FIXTURES / "d2_bad.cpp"),
                 "--baseline", str(base)])
        check(r.returncode == 0 and "baselined" in r.stdout,
              "baseline: baselined findings do not fail the run",
              f"exit={r.returncode}\n{r.stdout}{r.stderr}")

    # --- JSON report shape ---
    r = analyze_fixture("d1_bad.cpp", "--json")
    import json as _json
    try:
        doc = _json.loads(r.stdout)
        ok = (doc["schema_version"] == 1 and doc["tool"] == "bhss-analyze"
              and len(doc["findings"]) >= 1
              and doc["findings"][0]["check"] == "d1-deterministic-fold")
    except (ValueError, KeyError, IndexError):
        ok = False
    check(ok, "d1_bad.cpp --json: valid schema-v1 document", r.stdout)

    # --- lint: token-aware allocation matcher ---
    r = run([str(LINT), "tests/analyze_fixtures/lint_bad.cpp"])
    check(r.returncode == 1
          and r.stdout.count("[raw-allocation]") >= 3
          and r.stdout.count("[unmanaged-random]") >= 2,
          "lint_bad.cpp: raw new / nothrow-new / malloc / rand / "
          "random_device all fire",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    r = run([str(LINT), "tests/analyze_fixtures/lint_good.cpp"])
    check(r.returncode == 0,
          "lint_good.cpp: placement-new, no-destruct union idiom, "
          "operator-new decl and member free() stay clean",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")

    # --- lint: sample-path rules (R1/R4), driven in-process so the
    # fixture dir can stand in for src/dsp ---
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    import bhss_lint

    saved = bhss_lint.SAMPLE_PATH_DIRS
    try:
        bhss_lint.SAMPLE_PATH_DIRS = ("tests/analyze_fixtures/lint_sample_path",)
        found = bhss_lint.lint_file(FIXTURES / "lint_sample_path" / "dsp_api.hpp")
    finally:
        bhss_lint.SAMPLE_PATH_DIRS = saved
    rules = {f.check for f in found}
    flagged_lines = {f.line for f in found}
    scalar_line = next(
        i for i, l in enumerate(
            (FIXTURES / "lint_sample_path" / "dsp_api.hpp")
            .read_text().splitlines(), start=1)
        if "design_cutoff" in l)
    check("sample-path-double" in rules and "vector-ref-param" in rules,
          "dsp_api.hpp: R1 and R4 both fire in a sample-path header",
          repr(found))
    check(scalar_line not in flagged_lines,
          "dsp_api.hpp: scalar double parameters are not flagged",
          repr(found))


def head_tests(build_dir: Path) -> None:
    db = build_dir / "compile_commands.json"
    check(db.exists(), f"compile db exists at {db}")
    if db.exists():
        r = run([str(ANALYZE), "--compile-db", str(db)])
        check(r.returncode == 0,
              "bhss_analyze.py: HEAD is clean against the committed baseline",
              f"exit={r.returncode}\n{r.stdout}{r.stderr}")
    r = run([str(LINT)])
    check(r.returncode == 0, "bhss_lint.py: HEAD is lint-clean",
          f"exit={r.returncode}\n{r.stdout}{r.stderr}")


def main() -> int:
    ap = argparse.ArgumentParser()
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--fixtures", action="store_true")
    mode.add_argument("--head", metavar="BUILD_DIR", type=Path)
    args = ap.parse_args()

    if args.fixtures:
        fixture_tests()
    else:
        head_tests(args.head.resolve())

    if _failures:
        print(f"\n{len(_failures)} static-analysis tooling test(s) FAILED:")
        for f in _failures:
            print(f"  - {f}")
        return 1
    print("\nall static-analysis tooling tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
