// Unit tests for pulse shapes and autocorrelation helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/autocorr.hpp"
#include "dsp/pulse.hpp"
#include "dsp/utils.hpp"

namespace bhss::dsp {
namespace {

class PulseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PulseSweep, UnitEnergyAndSymmetry) {
  const std::size_t sps = GetParam();
  const fvec g = half_sine_pulse(sps);
  ASSERT_EQ(g.size(), sps);
  double e = 0.0;
  for (float v : g) {
    EXPECT_GT(v, 0.0F);  // strictly positive everywhere (midpoint sampling)
    e += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(e, 1.0, 1e-6);
  for (std::size_t i = 0; i < sps; ++i) {
    EXPECT_NEAR(g[i], g[sps - 1 - i], 1e-6F) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PulseSweep, ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(Pulse, MatchedFilterPeakIsUnity) {
  const fvec g = half_sine_pulse(32);
  const fvec mf = half_sine_matched(32);
  double peak = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) peak += static_cast<double>(g[i]) * mf[i];
  EXPECT_NEAR(peak, 1.0, 1e-6);
}

TEST(Pulse, StretchingHalvesBandwidth) {
  // Eq. (1): doubling the pulse duration halves the spectral width. Check
  // via the second moment of the pulse's energy spectrum computed directly
  // in time domain through the pulse's autocorrelation curvature ~ 1/T^2.
  // Simpler equivalent: compare 90%-energy durations.
  const fvec g1 = half_sine_pulse(16);
  const fvec g2 = half_sine_pulse(32);
  EXPECT_EQ(g2.size(), 2 * g1.size());
  // Same energy, double support -> per-sample values scaled by 1/sqrt(2).
  EXPECT_NEAR(g2[16] / g1[8], 1.0F / std::sqrt(2.0F), 2e-2F);
}

TEST(Pulse, RejectsZeroLength) {
  EXPECT_THROW(half_sine_pulse(0), std::invalid_argument);
}

TEST(Autocorrelation, WhiteNoiseIsDeltaLike) {
  std::mt19937 rng(9);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  cvec x(1 << 16);
  for (cf& v : x) v = cf{dist(rng), dist(rng)};
  const fvec rho = autocorrelation(x, 8);
  ASSERT_EQ(rho.size(), 9U);
  EXPECT_NEAR(rho[0], 2.0F, 0.1F);  // total power
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_NEAR(rho[k] / rho[0], 0.0F, 0.05F) << "lag " << k;
  }
}

TEST(Autocorrelation, RejectsEmpty) {
  EXPECT_THROW(autocorrelation(cvec{}, 4), std::invalid_argument);
}

class BandlimitedAutocorr : public ::testing::TestWithParam<double> {};

TEST_P(BandlimitedAutocorr, ClosedFormProperties) {
  const double bw = GetParam();
  const fvec rho = bandlimited_noise_autocorr(3.0, bw, 32);
  EXPECT_NEAR(rho[0], 3.0F, 1e-6F);  // lag 0 is the total power
  // First zero of sinc(bw*k) at k = 1/bw.
  const auto zero_lag = static_cast<std::size_t>(std::round(1.0 / bw));
  if (zero_lag <= 32) {
    EXPECT_NEAR(rho[zero_lag] / rho[0], 0.0F, 0.05F);
  }
  // |rho(k)| <= rho(0) everywhere.
  for (float v : rho) EXPECT_LE(std::abs(v), 3.0F + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BandlimitedAutocorr,
                         ::testing::Values(0.05, 0.125, 0.25, 0.5, 1.0));

TEST(BandlimitedAutocorr, FullBandIsDelta) {
  const fvec rho = bandlimited_noise_autocorr(1.0, 1.0, 8);
  EXPECT_NEAR(rho[0], 1.0F, 1e-6F);
  for (std::size_t k = 1; k <= 8; ++k) EXPECT_NEAR(rho[k], 0.0F, 1e-6F);
}

TEST(BandlimitedAutocorr, MatchesEmpiricalShapedNoise) {
  // Band-limit white noise with the jammer's own shaping approach and
  // compare the measured autocorrelation to the closed form.
  // (Uses a long moving-average as a crude low-pass of bandwidth ~ 1/M.)
  std::mt19937 rng(13);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  const std::size_t n = 1 << 16;
  cvec white(n);
  for (cf& v : white) v = cf{dist(rng), dist(rng)};
  EXPECT_NEAR(bandlimited_noise_autocorr(1.0, 0.5, 2)[2] /
                  bandlimited_noise_autocorr(1.0, 0.5, 2)[0],
              static_cast<float>(sinc(1.0)), 1e-6F);
}

TEST(BandlimitedAutocorr, RejectsBadBandwidth) {
  EXPECT_THROW(bandlimited_noise_autocorr(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(bandlimited_noise_autocorr(1.0, 1.5, 4), std::invalid_argument);
}

}  // namespace
}  // namespace bhss::dsp
