// Bit-exactness suite for the explicitly vectorized DSP kernels
// (src/dsp/simd). Every dispatched kernel must produce the SAME IEEE-754
// bits as its scalar reference — not merely close — because the vector
// layer sits underneath golden decision traces, the shard-merge
// byte-identity contract and the seed-equivalence 1-ulp pins. Each kernel
// is swept across lengths 1..3*lane_width+1 (exercising every tail
// remainder on both AVX2 and NEON) and across unaligned buffer offsets
// (no kernel may assume 32-byte alignment: callers pass arbitrary
// subspans of hop slices).

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "dsp/fir.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/types.hpp"
#include "phy/chip_table.hpp"

namespace bhss::dsp {
namespace {

constexpr std::size_t kMaxLen = 25;      // 3 * 8 (AVX2 lanes) + 1
constexpr std::size_t kMaxOffset = 3;    // element offsets off natural alignment

std::mt19937& rng() {
  static std::mt19937 gen(0xB1755EEDU);
  return gen;
}

float rand_float() {
  static std::normal_distribution<float> dist(0.0F, 1.0F);
  return dist(rng());
}

/// A buffer of n values placed at an element offset from a fresh
/// allocation, so the kernel under test sees deliberately misaligned data.
template <typename T>
struct Offset {
  std::vector<T> store;
  T* p;
  Offset(std::size_t n, std::size_t off) : store(n + off), p(store.data() + off) {}
};

void fill(cf* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = cf{rand_float(), rand_float()};
}
void fill(float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = rand_float();
}

/// Bitwise comparison: equal bits, not equal values (catches -0 vs +0 and
/// would catch any FMA/reassociation drift a tolerance check forgives).
void expect_same_bits(const cf* a, const cf* b, std::size_t n, const std::string& what) {
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(cf)), 0)
        << what << ": bit mismatch at " << i << " (" << a[i].real() << "," << a[i].imag()
        << ") vs (" << b[i].real() << "," << b[i].imag() << ")";
  }
}

TEST(DspSimd, ActiveIsaIsConsistent) {
  const std::string isa = simd::active_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "scalar") << isa;
  EXPECT_EQ(simd::vectorized(), isa != "scalar");
}

TEST(DspSimd, FirFilterBlockMatchesScalarBitExact) {
  for (std::size_t n_taps : {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{17}}) {
    for (std::size_t n_out = 1; n_out <= kMaxLen; ++n_out) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        Offset<cf> taps(n_taps, off);
        Offset<cf> x(n_out + n_taps - 1, off);
        fill(taps.p, n_taps);
        fill(x.p, n_out + n_taps - 1);
        std::vector<cf> got(n_out);
        std::vector<cf> want(n_out);
        simd::fir_filter_block(taps.p, n_taps, x.p, got.data(), n_out);
        simd::scalar::fir_filter_block(taps.p, n_taps, x.p, want.data(), n_out);
        expect_same_bits(got.data(), want.data(), n_out,
                         "fir_filter_block taps=" + std::to_string(n_taps) +
                             " n=" + std::to_string(n_out) + " off=" + std::to_string(off));
      }
    }
  }
}

TEST(DspSimd, FirDecimateRealMatchesScalarBitExact) {
  for (std::size_t stride : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{5}}) {
    for (std::size_t n_taps : {std::size_t{1}, std::size_t{4}, std::size_t{8}, std::size_t{9}}) {
      for (std::size_t n_out = 1; n_out <= kMaxLen; ++n_out) {
        for (std::size_t off = 0; off <= kMaxOffset; ++off) {
          Offset<float> taps(n_taps, off);
          Offset<cf> x((n_out - 1) * stride + n_taps, off);
          fill(taps.p, n_taps);
          fill(x.p, (n_out - 1) * stride + n_taps);
          std::vector<cf> got(n_out);
          std::vector<cf> want(n_out);
          simd::fir_decimate_real(taps.p, n_taps, x.p, got.data(), n_out, stride);
          simd::scalar::fir_decimate_real(taps.p, n_taps, x.p, want.data(), n_out, stride);
          expect_same_bits(got.data(), want.data(), n_out,
                           "fir_decimate_real stride=" + std::to_string(stride) +
                               " taps=" + std::to_string(n_taps) + " n=" + std::to_string(n_out) +
                               " off=" + std::to_string(off));
        }
      }
    }
  }
}

TEST(DspSimd, CorrelateLagsMatchesScalarBitExact) {
  for (std::size_t n_ref : {std::size_t{1}, std::size_t{5}, std::size_t{16}}) {
    for (std::size_t n_lags = 1; n_lags <= kMaxLen; ++n_lags) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        Offset<cf> x(n_lags - 1 + n_ref, off);
        Offset<cf> ref(n_ref, off);
        fill(x.p, n_lags - 1 + n_ref);
        fill(ref.p, n_ref);
        std::vector<cf> got(n_lags);
        std::vector<cf> want(n_lags);
        simd::correlate_lags(x.p, ref.p, n_ref, got.data(), n_lags);
        simd::scalar::correlate_lags(x.p, ref.p, n_ref, want.data(), n_lags);
        expect_same_bits(got.data(), want.data(), n_lags,
                         "correlate_lags ref=" + std::to_string(n_ref) +
                             " lags=" + std::to_string(n_lags) + " off=" + std::to_string(off));
      }
    }
  }
}

TEST(DspSimd, DespreadCorrelate16MatchesScalarBitExact) {
  const float* cols = phy::ChipTable::instance().columns();
  for (std::size_t n_pairs : {std::size_t{1}, std::size_t{7}, std::size_t{16}}) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      Offset<cf> pairs(n_pairs, off);
      Offset<float> se(n_pairs, off);
      Offset<float> so(n_pairs, off);
      fill(pairs.p, n_pairs);
      fill(se.p, n_pairs);
      fill(so.p, n_pairs);
      std::array<cf, phy::kNumSymbols> got{};
      std::array<cf, phy::kNumSymbols> want{};
      simd::despread_correlate16(pairs.p, n_pairs, se.p, so.p, cols, got.data());
      simd::scalar::despread_correlate16(pairs.p, n_pairs, se.p, so.p, cols, want.data());
      expect_same_bits(got.data(), want.data(), phy::kNumSymbols,
                       "despread_correlate16 pairs=" + std::to_string(n_pairs) +
                           " off=" + std::to_string(off));
    }
  }
}

TEST(DspSimd, FftButterfliesMatchesScalarBitExact) {
  for (bool inverse : {false, true}) {
    for (std::size_t half = 1; half <= kMaxLen; ++half) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        Offset<cf> a(half, off);
        Offset<cf> b(half, off);
        Offset<cf> tw(half, off);
        fill(a.p, half);
        fill(b.p, half);
        fill(tw.p, half);
        std::vector<cf> a2(a.p, a.p + half);
        std::vector<cf> b2(b.p, b.p + half);
        simd::fft_butterflies(a.p, b.p, tw.p, half, inverse);
        simd::scalar::fft_butterflies(a2.data(), b2.data(), tw.p, half, inverse);
        const std::string what = "fft_butterflies half=" + std::to_string(half) +
                                 " inv=" + std::to_string(inverse) +
                                 " off=" + std::to_string(off);
        expect_same_bits(a.p, a2.data(), half, what + " (a)");
        expect_same_bits(b.p, b2.data(), half, what + " (b)");
      }
    }
  }
}

TEST(DspSimd, ElementwiseKernelsMatchScalarBitExact) {
  for (std::size_t n = 1; n <= kMaxLen; ++n) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      Offset<cf> a(n, off);
      Offset<cf> b(n, off);
      Offset<float> w(n, off);
      fill(a.p, n);
      fill(b.p, n);
      fill(w.p, n);
      const float s = rand_float();
      const float pa = rand_float();
      const float pb = rand_float();
      const std::string suffix = " n=" + std::to_string(n) + " off=" + std::to_string(off);

      std::vector<cf> a2(a.p, a.p + n);
      simd::cmul_inplace(a.p, b.p, n);
      simd::scalar::cmul_inplace(a2.data(), b.p, n);
      expect_same_bits(a.p, a2.data(), n, "cmul_inplace" + suffix);

      std::vector<cf> a3(a.p, a.p + n);
      simd::scale_inplace(a.p, s, n);
      simd::scalar::scale_inplace(a3.data(), s, n);
      expect_same_bits(a.p, a3.data(), n, "scale_inplace" + suffix);

      std::vector<cf> got(n);
      std::vector<cf> want(n);
      simd::window_apply(b.p, w.p, got.data(), n);
      simd::scalar::window_apply(b.p, w.p, want.data(), n);
      expect_same_bits(got.data(), want.data(), n, "window_apply" + suffix);

      // window_apply documents that out may alias x.
      std::vector<cf> alias(b.p, b.p + n);
      simd::window_apply(alias.data(), w.p, alias.data(), n);
      expect_same_bits(alias.data(), want.data(), n, "window_apply aliased" + suffix);

      simd::scale_pulse(pa, pb, w.p, got.data(), n);
      simd::scalar::scale_pulse(pa, pb, w.p, want.data(), n);
      expect_same_bits(got.data(), want.data(), n, "scale_pulse" + suffix);
    }
  }
}

/// The block path of FirFilter (which feeds fir_filter_block and rebuilds
/// the doubled delay line afterwards) must be indistinguishable from the
/// per-sample streaming path — including across a *sequence* of blocks of
/// awkward lengths, which exercises the history handoff between calls.
TEST(DspSimd, FirFilterBlockPathMatchesStreamingBitExact) {
  for (std::size_t n_taps : {std::size_t{1}, std::size_t{7}, std::size_t{16}, std::size_t{33}}) {
    cvec taps(n_taps);
    fill(taps.data(), n_taps);
    FirFilter block_path{taps};
    FirFilter stream_path{taps};
    for (std::size_t block_len : {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{0},
                                  std::size_t{31}, std::size_t{64}, std::size_t{3}}) {
      cvec in(block_len);
      fill(in.data(), block_len);
      const cvec got = block_path.process(cspan{in});
      cvec want(block_len);
      for (std::size_t i = 0; i < block_len; ++i) want[i] = stream_path.process(in[i]);
      expect_same_bits(got.data(), want.data(), block_len,
                       "FirFilter block taps=" + std::to_string(n_taps) +
                           " len=" + std::to_string(block_len));
    }
  }
}

}  // namespace
}  // namespace bhss::dsp
