// bhss-analyze fixture: h1-hot-path-purity must NOT fire.
// The hot function and everything it reaches is pure arithmetic; an
// allocating cold function exists in the same file but is unreachable
// from any BHSS_HOT root.
#define BHSS_HOT
#include <array>
#include <vector>

namespace fx {

float scale(float x) { return x * 0.5F; }

class Producer {
 public:
  BHSS_HOT float step(float x) noexcept;

  // Cold setup path: allocation here is fine.
  void configure(std::size_t n) { history_.assign(n, 0.0F); }

 private:
  std::array<float, 8> taps_{};
  std::vector<float> history_;
  float state_ = 0.0F;
};

float Producer::step(float x) noexcept {
  float acc = 0.0F;
  for (float t : taps_) acc += t * scale(x);
  state_ += acc;
  return state_;
}

}  // namespace fx
