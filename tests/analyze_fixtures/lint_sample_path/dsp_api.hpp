// bhss_lint fixture for R1/R4 (sample-path rules; the test driver points
// SAMPLE_PATH_DIRS at this directory): a double-typed buffer and a const
// vector& parameter in a public header signature MUST both fire.
#pragma once
#include <vector>

namespace fx {

// R1 sample-path-double: double buffer in a sample-path signature.
void filter_block(const std::vector<double>& taps, double* samples);

// R4 vector-ref-param: should take a span, not const vector&.
float correlate(const std::vector<float>& a, const std::vector<float>& b);

// Scalar doubles are fine.
double design_cutoff(double rate, double attenuation_db);

}  // namespace fx
