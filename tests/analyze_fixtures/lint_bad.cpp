// bhss_lint fixture: raw-allocation and unmanaged-random MUST fire.
#include <cstdlib>
#include <new>
#include <random>

namespace fx {

struct Widget {
  int v = 0;
};

int* leak_buffer(std::size_t n) {
  int* p = new int[n];  // raw heap new
  return p;
}

Widget* nothrow_alloc() {
  return new (std::nothrow) Widget;  // nothrow-new still heap-allocates
}

void* c_alloc(std::size_t n) {
  return std::malloc(n);  // malloc is banned
}

int bad_random() {
  return std::rand();  // rand() is banned
}

unsigned entropy() {
  std::random_device rd;  // ad-hoc entropy source
  return rd();
}

}  // namespace fx
