// bhss-analyze fixture: h1-hot-path-purity must NOT fire on the adapt
// layer done right. The per-packet/per-hop feeds touch only preallocated
// fixed-size state (integer counters, a suspicion table sized once in the
// constructor); the reweighted probability vector is rebuilt exclusively
// on the cold window-close path, outside any BHSS_HOT root — exactly how
// src/adapt keeps the controller free of the shard workers' critical
// path.
#define BHSS_HOT
#include <cstddef>
#include <vector>

namespace fx {

struct WindowVerdict {
  bool closed = false;
  bool jammed = false;
};

class JamDetector {
 public:
  JamDetector(std::size_t window, std::size_t n_bands)
      : window_(window), suspicion_(n_bands, 0) {}

  BHSS_HOT WindowVerdict note_packet(bool delivered, bool sync_lost) noexcept;
  BHSS_HOT void note_hop(std::size_t bw_index, bool filtered) noexcept;

  // Cold path: runs once per closed window, never under a hot root.
  std::vector<double> reweighted(const std::vector<double>& base) const;

 private:
  std::size_t window_;
  std::size_t seen_ = 0;
  std::size_t bad_ = 0;
  std::vector<std::size_t> suspicion_;
};

WindowVerdict JamDetector::note_packet(bool delivered, bool sync_lost) noexcept {
  ++seen_;
  if (!delivered || sync_lost) ++bad_;
  WindowVerdict v;
  if (seen_ >= window_) {
    v.closed = true;
    v.jammed = 2 * bad_ >= window_;
    seen_ = 0;
    bad_ = 0;
  }
  return v;
}

void JamDetector::note_hop(std::size_t bw_index, bool filtered) noexcept {
  if (filtered && bw_index < suspicion_.size()) ++suspicion_[bw_index];
}

std::vector<double> JamDetector::reweighted(const std::vector<double>& base) const {
  std::vector<double> probs(base);
  double sum = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    for (std::size_t k = 0; k < suspicion_[i]; ++k) probs[i] *= 0.5;
    sum += probs[i];
  }
  if (sum > 0.0) {
    for (double& p : probs) p /= sum;
  }
  return probs;
}

}  // namespace fx
