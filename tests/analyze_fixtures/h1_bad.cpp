// bhss-analyze fixture: h1-hot-path-purity MUST fire.
// A BHSS_HOT root reaches, through one call-graph hop, a helper that
// allocates; the hot function itself also locks a mutex.
#define BHSS_HOT
#include <mutex>
#include <vector>

namespace fx {

float accumulate(float x);  // defined below; allocates

class Producer {
 public:
  BHSS_HOT float step(float x) noexcept;

 private:
  std::mutex m_;
  float state_ = 0.0F;
};

float Producer::step(float x) noexcept {
  std::lock_guard<std::mutex> lock(m_);  // mutex on the hot path
  state_ += accumulate(x);               // transitive allocation
  return state_;
}

float accumulate(float x) {
  std::vector<float> tmp(16);  // heap allocation reached from a hot root
  tmp[0] = x;
  return tmp[0] * 2.0F;
}

}  // namespace fx
