// bhss-analyze fixture: d2-rng-discipline MUST fire.
// Ad-hoc std RNG engines, std::random_device and a time()-derived seed,
// all outside src/core/shared_random.
#include <ctime>
#include <random>

namespace fx {

double jitter() {
  std::random_device rd;                 // non-reproducible entropy
  std::mt19937_64 gen(rd());             // ad-hoc engine
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

unsigned long clock_seed() {
  const unsigned long seed = static_cast<unsigned long>(time(nullptr));
  return seed;                           // wall-clock-derived seed
}

}  // namespace fx
