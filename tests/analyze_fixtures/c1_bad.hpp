// bhss-analyze fixture: c1-contract-coverage MUST fire.
// Header-exported functions dereference span/pointer parameters with no
// BHSS_REQUIRE or size()/empty()/nullptr guard before the first access.
#pragma once
#include <span>

namespace fx {

inline float first_sample(std::span<const float> chips) {
  return chips[0];  // unguarded subscript
}

inline float peek_front(std::span<const float> chips) {
  return chips.front();  // unguarded front()
}

inline float read_scale(const float* gain) {
  return *gain;  // unguarded pointer deref
}

}  // namespace fx
