// bhss-analyze fixture: d1-deterministic-fold MUST fire.
// A merge_* function iterates an unordered container: the fold order then
// depends on hashing/insertion history, not on shard order.
#include <cstdint>
#include <unordered_map>

namespace fx {

struct Stats {
  double sum = 0.0;
  std::uint64_t n = 0;
};

Stats merge_shard_stats(const std::unordered_map<int, double>& parts) {
  Stats s;
  for (const auto& kv : parts) {  // unordered iteration in a fold
    s.sum += kv.second;
    ++s.n;
  }
  return s;
}

}  // namespace fx
