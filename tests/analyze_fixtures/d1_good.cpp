// bhss-analyze fixture: d1-deterministic-fold must NOT fire.
// The fold walks a vector in ascending index order — a pure left fold —
// and an unrelated (non-fold) function may iterate an unordered map.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fx {

struct Stats {
  double sum = 0.0;
  std::uint64_t n = 0;
};

Stats merge_shard_stats(const std::vector<double>& parts) {
  Stats s;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    s.sum += parts[i];
    ++s.n;
  }
  return s;
}

// Not a merge/fold function: unordered iteration is allowed here.
double debug_total(const std::unordered_map<int, double>& parts) {
  double t = 0.0;
  for (const auto& kv : parts) t += kv.second;
  return t;
}

}  // namespace fx
