// bhss-analyze fixture: d1-deterministic-fold MUST fire (twice) on the
// distributed journal-merge shape. A merge_* root that accumulates worker
// records out of an unordered container reorders the fold by hashing
// history, and tie-breaking records by their object address makes the
// canonical output depend on allocator layout — both break the
// byte-identical merge contract that journal_merge.cpp relies on.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fx {

struct ShardRecord {
  std::size_t shard = 0;
  std::string body;
};

std::uint64_t tie_break(const ShardRecord* a) {
  // Address-dependent ordering: two runs of the same merge lay records
  // out differently and fold them in a different order.
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(a));
}

std::string merge_worker_journals(
    const std::unordered_map<std::size_t, ShardRecord>& records) {
  std::string out;
  for (const auto& kv : records) {  // hash-order fold of worker records
    out += kv.second.body;
    out += ' ';
    out += std::to_string(tie_break(&kv.second));
  }
  return out;
}

}  // namespace fx
