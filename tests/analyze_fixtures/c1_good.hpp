// bhss-analyze fixture: c1-contract-coverage must NOT fire.
// Every span/pointer parameter is guarded before its first dereference:
// by BHSS_REQUIRE, by a size()/empty() check, or by a nullptr test.
#pragma once
#include <cstddef>
#include <span>

#define BHSS_REQUIRE(cond, msg) \
  do {                          \
    if (!(cond)) {              \
    }                           \
  } while (false)

namespace fx {

inline float first_sample(std::span<const float> chips) {
  BHSS_REQUIRE(!chips.empty(), "need at least one chip");
  return chips[0];
}

inline float sum_samples(std::span<const float> chips) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < chips.size(); ++i) acc += chips[i];
  return acc;
}

inline float read_scale(const float* gain) {
  if (gain == nullptr) return 1.0F;
  return *gain;
}

}  // namespace fx
