// bhss-analyze fixture: h1-hot-path-purity MUST fire on the vector-layer
// shape. A BHSS_HOT dispatched kernel allocates a scratch buffer per call
// instead of using caller-provided storage, and a hot design-cache lookup
// serialises shards behind a mutex — both are exactly the regressions the
// real src/dsp/simd kernels and core::FilterDesignCache must never grow.
#define BHSS_HOT
#include <complex>
#include <cstddef>
#include <mutex>
#include <vector>

namespace fx {

using cf = std::complex<float>;

BHSS_HOT void fir_kernel(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                         std::size_t n_out);

void fir_kernel(const cf* taps, std::size_t n_taps, const cf* x, cf* out, std::size_t n_out) {
  std::vector<cf> scratch(n_out);  // per-call allocation on the hot path
  for (std::size_t i = 0; i < n_out; ++i) {
    cf acc{0.0F, 0.0F};
    for (std::size_t k = 0; k < n_taps; ++k) acc += taps[k] * x[i + n_taps - 1 - k];
    scratch[i] = acc;
  }
  for (std::size_t i = 0; i < n_out; ++i) out[i] = scratch[i];
}

class DesignCache {
 public:
  BHSS_HOT const std::vector<cf>* find(std::size_t key) noexcept;

 private:
  std::mutex m_;
  std::vector<cf> entry_;
  std::size_t key_ = 0;
};

const std::vector<cf>* DesignCache::find(std::size_t key) noexcept {
  std::lock_guard<std::mutex> lock(m_);  // lock on the per-hop lookup path
  return key == key_ ? &entry_ : nullptr;
}

}  // namespace fx
