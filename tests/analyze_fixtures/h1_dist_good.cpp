// bhss-analyze fixture: d1-deterministic-fold must NOT fire on the
// canonical distributed merge shape. Worker records are folded out of a
// std::map keyed by (point, shard) — ordered iteration, so the merged
// output is a pure function of the record set — and an unrelated
// diagnostic routine (not a merge/fold root, not reachable from one) may
// still walk an unordered index.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

namespace fx {

struct ShardRecord {
  std::size_t shard = 0;
  std::string body;
};

using RecordKey = std::pair<std::string, std::size_t>;  // (point, shard)

std::string merge_worker_journals(const std::map<RecordKey, ShardRecord>& records) {
  std::string out;
  for (const auto& kv : records) {  // ascending (point, shard): a left fold
    out += kv.second.body;
    out += '\n';
  }
  return out;
}

// Not a merge/fold root: unordered iteration is fine in cold diagnostics.
std::size_t debug_count_bodies(const std::unordered_map<std::size_t, ShardRecord>& idx) {
  std::size_t n = 0;
  for (const auto& kv : idx) n += kv.second.body.size();
  return n;
}

}  // namespace fx
