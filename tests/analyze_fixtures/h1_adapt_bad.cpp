// bhss-analyze fixture: h1-hot-path-purity MUST fire on the adapt-layer
// shape. The closed-loop controller's per-packet/per-hop feeds
// (JamDetector::note_packet / note_hop in src/adapt) are BHSS_HOT: they
// run once per packet inside every shard worker. This fixture grows the
// two regressions that contract forbids — a per-packet window buffer
// allocation, and a suspicion table guarded by a mutex (the real
// controller is per-shard, so locking the note path would serialise the
// Monte-Carlo workers for nothing).
#define BHSS_HOT
#include <cstddef>
#include <mutex>
#include <vector>

namespace fx {

struct WindowVerdict {
  bool closed = false;
  bool jammed = false;
};

class JamDetector {
 public:
  explicit JamDetector(std::size_t window) : window_(window) {}

  BHSS_HOT WindowVerdict note_packet(bool delivered, bool sync_lost);
  BHSS_HOT void note_hop(std::size_t bw_index, bool filtered);

 private:
  std::size_t window_;
  std::vector<bool> outcomes_;
  std::mutex m_;
  std::vector<std::size_t> suspicion_;
};

WindowVerdict JamDetector::note_packet(bool delivered, bool sync_lost) {
  std::vector<bool> merged(outcomes_);  // per-packet copy of the window
  merged.push_back(!delivered || sync_lost);
  outcomes_ = merged;
  WindowVerdict v;
  if (outcomes_.size() >= window_) {
    std::size_t bad = 0;
    for (const bool b : outcomes_) bad += b ? 1U : 0U;
    v.closed = true;
    v.jammed = 2 * bad >= window_;
    outcomes_.clear();
  }
  return v;
}

void JamDetector::note_hop(std::size_t bw_index, bool filtered) {
  std::lock_guard<std::mutex> lock(m_);  // lock on the per-hop feed
  if (bw_index >= suspicion_.size()) suspicion_.resize(bw_index + 1);
  if (filtered) ++suspicion_[bw_index];
}

}  // namespace fx
