// bhss-analyze fixture: d2-rng-discipline must NOT fire.
// All randomness is drawn through an injected SharedRandom-style source;
// time() is used for a timestamp, not a seed.
#include <cstdint>
#include <ctime>

namespace fx {

class RandomSource {  // stand-in for core::SharedRandom
 public:
  explicit RandomSource(std::uint64_t s) noexcept : state_(s) {}
  std::uint64_t next_u64() noexcept {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_;
  }

 private:
  std::uint64_t state_;
};

double draw(RandomSource& rng) {
  return static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
}

long stamp_log_entry() {
  return static_cast<long>(time(nullptr));  // timestamp, not randomness
}

}  // namespace fx
