// bhss_lint fixture: must report ZERO findings.
// Exercises the raw-allocation matcher's known hard cases: placement-new
// into existing storage (including the no-destruct immortal-static union
// idiom), operator-new declarations, and member functions that happen to
// be called free().
#include <new>
#include <string>
#include <vector>

namespace fx {

// The PR-5 no-destruct idiom: storage whose destructor never runs.
union Holder {
  std::string value;
  Holder() : value() {}
  ~Holder() {}
};

struct Arena {
  void free(void* p) noexcept { last = p; }  // member free(), not libc's
  void* last = nullptr;
};

struct Tracked {
  // Class-scope operator-new declaration is not an allocation site.
  static void* operator new(std::size_t n);
  int v = 0;
};

inline std::string* immortal_string() {
  static Holder h;
  return ::new (&h.value) std::string("immortal");  // placement-new, no heap
}

inline void construct_at(void* storage) {
  new (storage) Tracked{};  // placement-new into caller storage
}

inline void release(Arena& a, void* p) { a.free(p); }

inline std::vector<int> managed(std::size_t n) { return std::vector<int>(n); }

}  // namespace fx
