// bhss-analyze fixture: h1-hot-path-purity must NOT fire on the vector
// layer done right. The BHSS_HOT kernel writes straight into the caller's
// buffer (no scratch, no locks), and the per-shard design cache answers a
// hot lookup from an unordered_map without allocating or locking — the
// map only grows on the cold insert path.
#define BHSS_HOT
#include <complex>
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace fx {

using cf = std::complex<float>;

BHSS_HOT void fir_kernel(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                         std::size_t n_out);

void fir_kernel(const cf* taps, std::size_t n_taps, const cf* x, cf* out, std::size_t n_out) {
  for (std::size_t i = 0; i < n_out; ++i) {
    cf acc{0.0F, 0.0F};
    for (std::size_t k = 0; k < n_taps; ++k) acc += taps[k] * x[i + n_taps - 1 - k];
    out[i] = acc;
  }
}

class DesignCache {
 public:
  BHSS_HOT const std::vector<cf>* find(std::size_t key) const noexcept;

  // Cold path: designs are stored outside any hot root.
  void insert(std::size_t key, std::vector<cf> taps) { map_[key] = std::move(taps); }

 private:
  std::unordered_map<std::size_t, std::vector<cf>> map_;
};

const std::vector<cf>* DesignCache::find(std::size_t key) const noexcept {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

}  // namespace fx
