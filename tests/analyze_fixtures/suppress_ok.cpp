// bhss-analyze fixture: a reasoned inline suppression silences the
// finding — the analyzer must exit 0 and count one suppressed finding.
#include <random>

namespace fx {

double adversary_draw(unsigned long seed) {
  // BHSS_ANALYZE_SUPPRESS(d2-rng-discipline): fixture stand-in for adversary-domain RNG, explicitly seeded
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

}  // namespace fx
