// bhss-analyze fixture: a suppression WITHOUT a reason must itself be
// reported (check: suppression-missing-reason) and fail the run.
#include <random>

namespace fx {

double adversary_draw(unsigned long seed) {
  // BHSS_ANALYZE_SUPPRESS(d2-rng-discipline)
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

}  // namespace fx
