// Unit tests for the radix-2 FFT: impulse/DC responses, linearity against
// a naive DFT, Parseval's theorem, and round-trip inversion.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dsp/fft.hpp"

namespace bhss::dsp {
namespace {

cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  cvec x(n);
  for (cf& v : x) v = cf{dist(rng), dist(rng)};
  return x;
}

cvec naive_dft(cspan x) {
  const std::size_t n = x.size();
  cvec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += std::complex<double>(x[j]) * std::polar(1.0, ang);
    }
    out[k] = cf{static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
  }
  return out;
}

TEST(Fft, ValidSize) {
  EXPECT_TRUE(Fft::valid_size(2));
  EXPECT_TRUE(Fft::valid_size(1024));
  EXPECT_FALSE(Fft::valid_size(0));
  EXPECT_FALSE(Fft::valid_size(1));
  EXPECT_FALSE(Fft::valid_size(3));
  EXPECT_FALSE(Fft::valid_size(96));
}

TEST(Fft, RejectsInvalidSize) {
  EXPECT_THROW(Fft(0), std::invalid_argument);
  EXPECT_THROW(Fft(7), std::invalid_argument);
}

TEST(Fft, ImpulseIsFlat) {
  Fft fft(64);
  cvec x(64, cf{0.0F, 0.0F});
  x[0] = cf{1.0F, 0.0F};
  fft.forward(cspan_mut{x});
  for (const cf& v : x) {
    EXPECT_NEAR(v.real(), 1.0F, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0F, 1e-5);
  }
}

TEST(Fft, DcGoesToBinZero) {
  Fft fft(32);
  cvec x(32, cf{1.0F, 0.0F});
  fft.forward(cspan_mut{x});
  EXPECT_NEAR(x[0].real(), 32.0F, 1e-4);
  for (std::size_t k = 1; k < 32; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0F, 1e-4);
}

TEST(Fft, ToneLandsInRightBin) {
  const std::size_t n = 128;
  const std::size_t bin = 5;
  Fft fft(n);
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(bin) *
                       static_cast<double>(i) / static_cast<double>(n);
    x[i] = cf{static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
  }
  fft.forward(cspan_mut{x});
  EXPECT_NEAR(std::abs(x[bin]), static_cast<float>(n), 1e-3);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != bin) {
      EXPECT_NEAR(std::abs(x[k]), 0.0F, 1e-3) << "bin " << k;
    }
  }
}

class FftVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaive, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const cvec x = random_signal(n, 42);
  const cvec expected = naive_dft(x);
  Fft fft(n);
  const cvec got = fft.forward_copy(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(got[k].real(), expected[k].real(), 2e-3 * static_cast<float>(n));
    EXPECT_NEAR(got[k].imag(), expected[k].imag(), 2e-3 * static_cast<float>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsNaive, ::testing::Values(2, 4, 8, 16, 32, 64, 256));

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const cvec original = random_signal(n, 7);
  cvec x = original;
  Fft fft(n);
  fft.forward(cspan_mut{x});
  fft.inverse(cspan_mut{x});
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-4);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 8, 64, 512, 4096));

TEST(Fft, Parseval) {
  const std::size_t n = 256;
  const cvec x = random_signal(n, 3);
  double time_energy = 0.0;
  for (const cf& v : x) time_energy += std::norm(v);
  Fft fft(n);
  const cvec spec = fft.forward_copy(x);
  double freq_energy = 0.0;
  for (const cf& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, time_energy * 1e-4);
}

TEST(Fft, ForwardCopyZeroPads) {
  Fft fft(16);
  cvec x(4, cf{1.0F, 0.0F});
  const cvec spec = fft.forward_copy(x);
  ASSERT_EQ(spec.size(), 16U);
  EXPECT_NEAR(spec[0].real(), 4.0F, 1e-5);
}

TEST(FftShift, SwapsHalves) {
  const fvec x = {0.0F, 1.0F, 2.0F, 3.0F};
  const fvec shifted = fft_shift(x);
  const fvec expected = {2.0F, 3.0F, 0.0F, 1.0F};
  EXPECT_EQ(shifted, expected);
}

}  // namespace
}  // namespace bhss::dsp
