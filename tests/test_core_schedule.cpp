// Unit tests for the hop schedule: symbol/sample bookkeeping, determinism
// from the shared random source, and the jammer-observable view.

#include <gtest/gtest.h>

#include "core/hop_schedule.hpp"

namespace bhss::core {
namespace {

HopPattern test_pattern() {
  return HopPattern::make(HopPatternType::linear, BandwidthSet::paper());
}

TEST(HopSchedule, CoversEverySymbolExactlyOnce) {
  SharedRandom rng(1);
  const HopSchedule s = HopSchedule::make(35, 4, test_pattern(), rng);
  EXPECT_EQ(s.total_symbols, 35U);
  std::size_t symbol = 0;
  for (const HopSegment& seg : s.segments) {
    EXPECT_EQ(seg.first_symbol, symbol);
    symbol += seg.n_symbols;
  }
  EXPECT_EQ(symbol, 35U);
  // 35 = 8 full hops of 4 + one of 3.
  ASSERT_EQ(s.segments.size(), 9U);
  EXPECT_EQ(s.segments.back().n_symbols, 3U);
}

TEST(HopSchedule, SamplesAreContiguous) {
  SharedRandom rng(2);
  const HopSchedule s = HopSchedule::make(64, 4, test_pattern(), rng);
  std::size_t sample = 0;
  for (const HopSegment& seg : s.segments) {
    EXPECT_EQ(seg.start_sample, sample);
    EXPECT_EQ(seg.n_samples, seg.n_symbols * 32 * seg.sps);
    EXPECT_EQ(seg.n_chips(), seg.n_symbols * 32);
    EXPECT_EQ(seg.end_sample(), seg.start_sample + seg.n_samples);
    sample += seg.n_samples;
  }
  EXPECT_EQ(s.total_samples, sample);
  EXPECT_EQ(s.waveform_samples(), sample);
}

TEST(HopSchedule, DeterministicGivenSameRandomState) {
  SharedRandom rng_a(33);
  SharedRandom rng_b(33);
  const HopSchedule a = HopSchedule::make(64, 4, test_pattern(), rng_a);
  const HopSchedule b = HopSchedule::make(64, 4, test_pattern(), rng_b);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].bw_index, b.segments[i].bw_index);
    EXPECT_EQ(a.segments[i].sps, b.segments[i].sps);
  }
}

TEST(HopSchedule, DifferentSeedsProduceDifferentPlans) {
  SharedRandom rng_a(1);
  SharedRandom rng_b(2);
  const HopSchedule a = HopSchedule::make(64, 4, test_pattern(), rng_a);
  const HopSchedule b = HopSchedule::make(64, 4, test_pattern(), rng_b);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    if (a.segments[i].bw_index != b.segments[i].bw_index) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(HopSchedule, SpsMatchesBandwidthIndex) {
  SharedRandom rng(3);
  const HopPattern pattern = test_pattern();
  const HopSchedule s = HopSchedule::make(64, 4, pattern, rng);
  for (const HopSegment& seg : s.segments) {
    EXPECT_EQ(seg.sps, pattern.bands().sps(seg.bw_index));
  }
}

TEST(HopSchedule, FixedScheduleIsOneSegment) {
  const HopSchedule s = HopSchedule::fixed(40, BandwidthSet::paper(), 2);
  ASSERT_EQ(s.segments.size(), 1U);
  EXPECT_EQ(s.segments[0].bw_index, 2U);
  EXPECT_EQ(s.segments[0].sps, 8U);
  EXPECT_EQ(s.segments[0].n_symbols, 40U);
  EXPECT_EQ(s.total_samples, 40U * 32U * 8U);
}

TEST(HopSchedule, ObservedHopsReflectScheduleAndDelay) {
  SharedRandom rng(4);
  const HopPattern pattern = test_pattern();
  const HopSchedule s = HopSchedule::make(16, 4, pattern, rng);
  const auto hops = s.observed_hops(pattern.bands(), 500);
  ASSERT_EQ(hops.size(), s.segments.size());
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i].start, s.segments[i].start_sample + 500);
    EXPECT_DOUBLE_EQ(hops[i].bandwidth_frac,
                     pattern.bands().bandwidth_frac(s.segments[i].bw_index));
  }
}

TEST(HopSchedule, RejectsDegenerateInputs) {
  SharedRandom rng(5);
  EXPECT_THROW((void)HopSchedule::make(0, 4, test_pattern(), rng), std::invalid_argument);
  EXPECT_THROW((void)HopSchedule::make(10, 0, test_pattern(), rng), std::invalid_argument);
  EXPECT_THROW((void)HopSchedule::fixed(0, BandwidthSet::paper(), 0), std::invalid_argument);
}

TEST(HopSchedule, HopDwellBoundsJammerReactionWindow)  {
  // With symbols_per_hop = 4 at the widest bandwidth (sps = 2), a hop
  // lasts 256 samples = 12.8 us at 20 MS/s — shorter than a realistic
  // reactive jammer's turnaround (paper §2/§6.1 argue a few symbols).
  SharedRandom rng(6);
  const HopSchedule s = HopSchedule::make(64, 4, test_pattern(), rng);
  for (const HopSegment& seg : s.segments) {
    const double dwell_us = static_cast<double>(seg.n_samples) / 20.0;  // 20 MS/s
    EXPECT_GE(dwell_us, 12.0);
  }
}

}  // namespace
}  // namespace bhss::core
