// Unit tests for the CRC-16/CCITT-FALSE frame check sequence.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "phy/crc16.hpp"

namespace bhss::phy {
namespace {

std::vector<std::uint8_t> bytes(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

TEST(Crc16, StandardCheckValue) {
  // CRC-16/CCITT-FALSE("123456789") == 0x29B1 (canonical check value).
  EXPECT_EQ(crc16_ccitt(bytes("123456789")), 0x29B1);
}

TEST(Crc16, EmptyInputIsInit) {
  EXPECT_EQ(crc16_ccitt({}), 0xFFFF);
}

TEST(Crc16, KnownSingleBytes) {
  EXPECT_EQ(crc16_ccitt(bytes("A")), 0xB915);
  const std::vector<std::uint8_t> zero = {0x00};
  EXPECT_EQ(crc16_ccitt(zero), 0xE1F0);
}

TEST(Crc16, IncrementalMatchesOneShot) {
  const auto data = bytes("the quick brown fox jumps over the lazy dog");
  const std::uint16_t one_shot = crc16_ccitt(data);
  for (std::size_t split = 0; split <= data.size(); split += 5) {
    std::uint16_t crc = 0xFFFF;
    crc = crc16_ccitt_update(crc, std::span<const std::uint8_t>{data}.first(split));
    crc = crc16_ccitt_update(crc, std::span<const std::uint8_t>{data}.subspan(split));
    EXPECT_EQ(crc, one_shot) << "split=" << split;
  }
}

class CrcBitFlipSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrcBitFlipSweep, DetectsEverySingleBitError) {
  auto data = bytes("BHSS frame payload for error detection");
  const std::uint16_t good = crc16_ccitt(data);
  const std::size_t byte_idx = GetParam();
  for (int bit = 0; bit < 8; ++bit) {
    data[byte_idx] ^= static_cast<std::uint8_t>(1U << bit);
    EXPECT_NE(crc16_ccitt(data), good) << "byte " << byte_idx << " bit " << bit;
    data[byte_idx] ^= static_cast<std::uint8_t>(1U << bit);
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, CrcBitFlipSweep,
                         ::testing::Values(0, 1, 5, 17, 30, 37));

TEST(Crc16, DetectsTranspositions) {
  auto a = bytes("AB");
  auto b = bytes("BA");
  EXPECT_NE(crc16_ccitt(a), crc16_ccitt(b));
}

TEST(Crc16, DetectsAllDoubleBitErrorsInShortFrame) {
  const std::vector<std::uint8_t> data = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::uint16_t good = crc16_ccitt(data);
  const std::size_t n_bits = data.size() * 8;
  for (std::size_t i = 0; i < n_bits; ++i) {
    for (std::size_t j = i + 1; j < n_bits; ++j) {
      auto corrupted = data;
      corrupted[i / 8] ^= static_cast<std::uint8_t>(1U << (i % 8));
      corrupted[j / 8] ^= static_cast<std::uint8_t>(1U << (j % 8));
      EXPECT_NE(crc16_ccitt(corrupted), good) << "bits " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace bhss::phy
