// Unit tests for the closed-loop adaptation layer (src/adapt): the
// sliding-window jam detector's window math and two-edge debounce, the
// hop adapter's occupancy-floor reweighting and exact snap-back, and the
// resilience controller's NOMINAL -> DEGRADED -> FALLBACK -> RECOVERING
// state machine driven by scripted packet streams. Everything here is a
// pure fold over its inputs, so the tests assert exact (often bitwise)
// outcomes, not statistical ones.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapt/resilience_controller.hpp"
#include "core/contracts.hpp"

namespace bhss::adapt {
namespace {

// ---------------------------------------------------------- JamDetector

JamDetectorConfig fast_detector() {
  JamDetectorConfig d;
  d.window_packets = 4;
  d.bad_fraction = 0.5;
  d.min_bad = 2;
  d.trip_windows = 2;
  d.clear_windows = 2;
  return d;
}

/// Feed one whole window with `bad` losses followed by deliveries.
WindowVerdict feed_window(JamDetector& det, std::size_t bad) {
  WindowVerdict v;
  for (std::size_t i = 0; i < det.config().window_packets; ++i) {
    v = det.note_packet(/*delivered=*/i >= bad, /*sync_lost=*/false);
  }
  return v;
}

TEST(AdaptDetector, WindowClosesAtConfiguredLength) {
  JamDetector det(fast_detector(), 4);
  EXPECT_FALSE(det.note_packet(true, false).closed);
  EXPECT_FALSE(det.note_packet(true, false).closed);
  EXPECT_FALSE(det.note_packet(true, false).closed);
  const WindowVerdict v = det.note_packet(true, false);
  EXPECT_TRUE(v.closed);
  EXPECT_EQ(v.ordinal, 1U);
  EXPECT_EQ(v.bad, 0U);
  EXPECT_FALSE(v.jammed);
  EXPECT_EQ(det.windows_closed(), 1U);
}

TEST(AdaptDetector, SyncLossCountsAsBad) {
  JamDetector det(fast_detector(), 4);
  det.note_packet(true, true);  // delivered but sync was lost en route
  det.note_packet(false, false);
  det.note_packet(true, true);
  const WindowVerdict v = det.note_packet(true, false);
  EXPECT_EQ(v.bad, 3U);
  EXPECT_TRUE(v.jammed);
}

TEST(AdaptDetector, TripNeedsFractionStrictlyAbove) {
  JamDetector det(fast_detector(), 4);
  // 2/4 = 0.5 is NOT > 0.5: the gate is strict, so an exactly-threshold
  // window stays clean.
  EXPECT_FALSE(feed_window(det, 2).jammed);
  EXPECT_TRUE(feed_window(det, 3).jammed);
}

TEST(AdaptDetector, MinBadFloorStopsShortWindowTrips) {
  JamDetectorConfig d = fast_detector();
  d.window_packets = 2;
  d.bad_fraction = 0.4;
  d.min_bad = 2;
  JamDetector det(d, 4);
  // 1/2 = 0.5 > 0.4 but one bad packet is below the absolute floor.
  EXPECT_FALSE(feed_window(det, 1).jammed);
  EXPECT_TRUE(feed_window(det, 2).jammed);
}

TEST(AdaptDetector, TripDebounceGoesThroughSuspect) {
  JamDetector det(fast_detector(), 4);  // trip_windows = 2
  EXPECT_EQ(det.state(), JamState::clear);
  WindowVerdict v = feed_window(det, 4);
  EXPECT_EQ(det.state(), JamState::suspect);
  EXPECT_EQ(v.streak, 1U);
  v = feed_window(det, 4);
  EXPECT_EQ(det.state(), JamState::jammed);
  EXPECT_EQ(v.streak, 2U);
  EXPECT_EQ(det.windows_jammed(), 2U);
}

TEST(AdaptDetector, OneCleanWindowRetiresSuspect) {
  JamDetector det(fast_detector(), 4);
  feed_window(det, 4);
  ASSERT_EQ(det.state(), JamState::suspect);
  feed_window(det, 0);
  EXPECT_EQ(det.state(), JamState::clear);
}

TEST(AdaptDetector, ClearDebounceHoldsThroughOneCleanWindow) {
  JamDetector det(fast_detector(), 4);  // clear_windows = 2
  feed_window(det, 4);
  feed_window(det, 4);
  ASSERT_EQ(det.state(), JamState::jammed);
  feed_window(det, 0);
  EXPECT_EQ(det.state(), JamState::jammed);  // one clean window is not enough
  feed_window(det, 4);                       // relapse resets the clean streak
  feed_window(det, 0);
  EXPECT_EQ(det.state(), JamState::jammed);
  feed_window(det, 0);
  EXPECT_EQ(det.state(), JamState::clear);
}

TEST(AdaptDetector, SuspicionCountsOnlyFilteredHopsAndDecays) {
  JamDetector det(fast_detector(), 3);
  det.note_hop(0, true);
  det.note_hop(0, true);
  det.note_hop(0, true);
  det.note_hop(1, false);   // unfiltered hop: no evidence
  det.note_hop(99, true);   // out-of-range index: ignored, not UB
  EXPECT_EQ(det.suspicion(), (std::vector<std::uint32_t>{3, 0, 0}));
  det.decay_suspicion();
  EXPECT_EQ(det.suspicion(), (std::vector<std::uint32_t>{1, 0, 0}));
  det.decay_suspicion();
  EXPECT_EQ(det.suspicion(), (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(AdaptDetector, RejectsDegenerateConfig) {
  JamDetectorConfig d = fast_detector();
  d.window_packets = 0;
  EXPECT_THROW(JamDetector(d, 4), contract_violation);
  d = fast_detector();
  d.trip_windows = 0;
  EXPECT_THROW(JamDetector(d, 4), contract_violation);
  EXPECT_THROW(JamDetector(fast_detector(), 0), contract_violation);
}

// ----------------------------------------------------------- HopAdapter

TEST(HopAdapter, NormalisesBaseDistribution) {
  HopAdapter a(HopAdapterConfig{}, {2.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(a.base()[0], 0.5);
  EXPECT_DOUBLE_EQ(a.base()[1], 0.25);
  EXPECT_DOUBLE_EQ(a.base()[2], 0.25);
  EXPECT_TRUE(a.at_base());
}

TEST(HopAdapter, ReweightMovesMassAwayButHonoursFloor) {
  HopAdapterConfig cfg;
  cfg.min_occupancy = 0.05;
  HopAdapter a(cfg, {0.25, 0.25, 0.25, 0.25});
  const std::vector<std::uint32_t> suspicion = {4, 0, 0, 0};
  a.reweight(suspicion);
  double sum = 0.0;
  for (const double p : a.probs()) {
    EXPECT_GE(p, cfg.min_occupancy);  // nothing starves
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(a.probs()[0], 0.25);  // the suspected band lost mass
  EXPECT_GT(a.probs()[1], 0.25);  // ... which went to the clean bands
  EXPECT_FALSE(a.at_base());
}

TEST(HopAdapter, DeweightCapBoundsThePunishment) {
  HopAdapterConfig cfg;
  cfg.deweight_cap = 2;
  HopAdapter capped(cfg, {0.5, 0.5});
  HopAdapter flooded(cfg, {0.5, 0.5});
  capped.reweight(std::vector<std::uint32_t>{2, 0});
  flooded.reweight(std::vector<std::uint32_t>{1000000, 0});
  EXPECT_EQ(capped.probs(), flooded.probs());  // bitwise: same fold
}

TEST(HopAdapter, AllBandsSuspectFallsBackToUniform) {
  HopAdapterConfig cfg;
  cfg.deweight = 1e-200;  // underflows to 0 at cap on every band
  cfg.deweight_cap = 2;
  HopAdapter a(cfg, {0.5, 0.3, 0.2});
  a.reweight(std::vector<std::uint32_t>{5, 5, 5});
  for (const double p : a.probs()) EXPECT_DOUBLE_EQ(p, 1.0 / 3.0);
}

TEST(HopAdapter, FallbackIsUniform) {
  HopAdapter a(HopAdapterConfig{}, {0.7, 0.2, 0.1, 0.0});
  a.fall_back_uniform();
  for (const double p : a.probs()) EXPECT_DOUBLE_EQ(p, 0.25);
  EXPECT_FALSE(a.at_base());
}

TEST(HopAdapter, RecoverySnapsExactlyOntoBase) {
  HopAdapter a(HopAdapterConfig{}, {0.6, 0.3, 0.1});
  const std::vector<double> base = a.base();
  a.fall_back_uniform();
  std::size_t steps = 0;
  while (!a.recover_toward_base()) {
    ASSERT_LT(++steps, 200U) << "recovery must converge";
  }
  // Not just close: bitwise equal, so a recovered plan is the base plan.
  EXPECT_EQ(a.probs(), base);
  EXPECT_TRUE(a.at_base());
  EXPECT_TRUE(a.recover_toward_base());  // idempotent at the fixed point
}

TEST(HopAdapter, RejectsDegenerateConfig) {
  EXPECT_THROW(HopAdapter(HopAdapterConfig{}, {}), contract_violation);
  EXPECT_THROW(HopAdapter(HopAdapterConfig{}, {0.0, 0.0}), contract_violation);
  HopAdapterConfig cfg;
  cfg.min_occupancy = 0.5;  // 3 bands * 0.5 >= 1: nothing left to distribute
  EXPECT_THROW(HopAdapter(cfg, {0.4, 0.3, 0.3}), contract_violation);
  cfg = HopAdapterConfig{};
  cfg.deweight = 1.0;
  EXPECT_THROW(HopAdapter(cfg, {0.5, 0.5}), contract_violation);
}

// ------------------------------------------------ ResilienceController

AdaptConfig fast_loop() {
  AdaptConfig a;
  a.enabled = true;
  a.detector.window_packets = 2;
  a.detector.bad_fraction = 0.5;
  a.detector.min_bad = 2;
  a.detector.trip_windows = 1;
  a.detector.clear_windows = 1;
  a.fallback_windows = 2;
  a.recovery_windows = 1;
  a.min_symbols_per_hop = 1;
  a.degraded_dwell_shift = 1;
  return a;
}

/// Feed one whole detection window of identical packet outcomes.
void feed_window(ResilienceController& c, bool delivered) {
  for (std::size_t i = 0; i < c.detector().config().window_packets; ++i) {
    c.on_packet({delivered, false, i});
  }
}

TEST(ResilienceController, StartsNominalOnTheBasePlan) {
  ResilienceController c(fast_loop(), {0.5, 0.3, 0.2}, 4);
  EXPECT_EQ(c.state(), LinkAdaptState::nominal);
  EXPECT_EQ(c.plan().epoch, 0U);
  EXPECT_EQ(c.plan().symbols_per_hop, 4U);
  EXPECT_DOUBLE_EQ(c.plan().probs[0], 0.5);
  EXPECT_EQ(c.counters().transitions, 0U);
}

TEST(ResilienceController, TripsToDegradedAndShortensDwell) {
  ResilienceController c(fast_loop(), {0.25, 0.25, 0.25, 0.25}, 4);
  feed_window(c, /*delivered=*/false);
  EXPECT_EQ(c.state(), LinkAdaptState::degraded);
  EXPECT_NE(c.plan().epoch, 0U);
  EXPECT_EQ(c.plan().symbols_per_hop, 2U);  // 4 >> degraded_dwell_shift
  EXPECT_EQ(c.counters().jam_episodes, 1U);
  EXPECT_EQ(c.counters().windows_jammed, 1U);
  EXPECT_EQ(c.counters().transitions, 1U);
}

TEST(ResilienceController, DegradedDwellRespectsFloor) {
  AdaptConfig a = fast_loop();
  a.min_symbols_per_hop = 3;
  ResilienceController c(a, {0.5, 0.5}, 4);
  feed_window(c, false);
  EXPECT_EQ(c.plan().symbols_per_hop, 3U);  // max(4 >> 1, floor)
}

TEST(ResilienceController, PersistentJammingEscalatesToUniformFallback) {
  ResilienceController c(fast_loop(), {0.7, 0.2, 0.1}, 4);
  feed_window(c, false);  // -> DEGRADED
  feed_window(c, false);  // 1st jammed window inside DEGRADED
  feed_window(c, false);  // 2nd: fallback_windows = 2 reached
  EXPECT_EQ(c.state(), LinkAdaptState::fallback);
  EXPECT_EQ(c.counters().fallbacks, 1U);
  EXPECT_EQ(c.plan().symbols_per_hop, 1U);  // minimum dwell
  for (const double p : c.plan().probs) EXPECT_DOUBLE_EQ(p, 1.0 / 3.0);
}

TEST(ResilienceController, FallbackPlanIsAFixedPointUnderJamming) {
  ResilienceController c(fast_loop(), {0.7, 0.2, 0.1}, 4);
  for (int w = 0; w < 3; ++w) feed_window(c, false);
  ASSERT_EQ(c.state(), LinkAdaptState::fallback);
  const std::uint32_t epoch = c.plan().epoch;
  for (int w = 0; w < 5; ++w) feed_window(c, false);
  EXPECT_EQ(c.state(), LinkAdaptState::fallback);
  EXPECT_EQ(c.plan().epoch, epoch);  // no plan churn while pinned down
}

TEST(ResilienceController, RecoverySnapsBackToNominalEpochZero) {
  ResilienceController c(fast_loop(), {0.5, 0.3, 0.2}, 4);
  feed_window(c, false);  // -> DEGRADED
  ASSERT_EQ(c.state(), LinkAdaptState::degraded);
  feed_window(c, true);   // detector clears -> RECOVERING at base dwell
  ASSERT_EQ(c.state(), LinkAdaptState::recovering);
  EXPECT_EQ(c.plan().symbols_per_hop, 4U);
  std::size_t windows = 0;
  while (c.state() != LinkAdaptState::nominal) {
    feed_window(c, true);
    ASSERT_LT(++windows, 200U) << "recovery must converge";
  }
  EXPECT_EQ(c.counters().recoveries, 1U);
  EXPECT_EQ(c.plan().epoch, 0U);  // exactly the base plan again
  EXPECT_DOUBLE_EQ(c.plan().probs[0], 0.5);
  EXPECT_DOUBLE_EQ(c.plan().probs[1], 0.3);
  EXPECT_DOUBLE_EQ(c.plan().probs[2], 0.2);
}

TEST(ResilienceController, RelapseDuringRecoveryStartsANewEpisode) {
  ResilienceController c(fast_loop(), {0.5, 0.5}, 4);
  feed_window(c, false);
  feed_window(c, true);  // -> RECOVERING
  ASSERT_EQ(c.state(), LinkAdaptState::recovering);
  feed_window(c, false);
  EXPECT_EQ(c.state(), LinkAdaptState::degraded);
  EXPECT_EQ(c.counters().jam_episodes, 2U);
}

TEST(ResilienceController, SuspicionSteersTheReweighting) {
  ResilienceController c(fast_loop(), {0.25, 0.25, 0.25, 0.25}, 4);
  // Filter decisions repeatedly implicate bandwidth index 1.
  for (int h = 0; h < 8; ++h) c.note_hop(1, /*filtered=*/true);
  feed_window(c, false);
  ASSERT_EQ(c.state(), LinkAdaptState::degraded);
  EXPECT_LT(c.plan().probs[1], c.plan().probs[0]);
  EXPECT_LT(c.plan().probs[1], c.plan().probs[2]);
}

TEST(ResilienceController, PacketsAdaptedCountsNonBasePlanPacketsOnly) {
  ResilienceController c(fast_loop(), {0.5, 0.5}, 4);
  feed_window(c, true);   // nominal window: epoch 0 throughout
  EXPECT_EQ(c.counters().packets_adapted, 0U);
  feed_window(c, false);  // trips at the window close
  EXPECT_EQ(c.counters().packets_adapted, 0U);  // those packets flew on the base plan
  feed_window(c, true);
  EXPECT_EQ(c.counters().packets_adapted, 2U);  // adapted-window packets counted
}

TEST(ResilienceController, IdenticalInputsGiveBitIdenticalOutcomes) {
  // The controller is a pure fold: two instances fed the same scripted
  // stream agree bitwise on the plan and exactly on every counter.
  const std::vector<double> base = {0.4, 0.3, 0.2, 0.1};
  ResilienceController a(fast_loop(), base, 4);
  ResilienceController b(fast_loop(), base, 4);
  const auto script = [](ResilienceController& c) {
    for (std::size_t p = 0; p < 40; ++p) {
      c.note_hop(p % 4, (p % 3) == 0);
      const bool delivered = (p / 6) % 2 == 0;
      c.on_packet({delivered, (p % 11) == 0, p});
    }
  };
  script(a);
  script(b);
  EXPECT_EQ(a.plan().probs, b.plan().probs);
  EXPECT_EQ(a.plan().symbols_per_hop, b.plan().symbols_per_hop);
  EXPECT_EQ(a.plan().epoch, b.plan().epoch);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.counters().transitions, b.counters().transitions);
  EXPECT_EQ(a.counters().packets_adapted, b.counters().packets_adapted);
}

TEST(ResilienceController, RejectsDegenerateConfig) {
  AdaptConfig a = fast_loop();
  EXPECT_THROW(ResilienceController(a, {0.5, 0.5}, 0), contract_violation);
  a.min_symbols_per_hop = 5;  // floor above the base dwell
  EXPECT_THROW(ResilienceController(a, {0.5, 0.5}, 4), contract_violation);
  a = fast_loop();
  a.fallback_windows = 0;
  EXPECT_THROW(ResilienceController(a, {0.5, 0.5}, 4), contract_violation);
}

TEST(ResilienceController, StateNamesAreStable) {
  EXPECT_STREQ(to_string(LinkAdaptState::nominal), "nominal");
  EXPECT_STREQ(to_string(LinkAdaptState::degraded), "degraded");
  EXPECT_STREQ(to_string(LinkAdaptState::fallback), "fallback");
  EXPECT_STREQ(to_string(LinkAdaptState::recovering), "recovering");
  EXPECT_STREQ(to_string(JamState::clear), "clear");
  EXPECT_STREQ(to_string(JamState::suspect), "suspect");
  EXPECT_STREQ(to_string(JamState::jammed), "jammed");
}

}  // namespace
}  // namespace bhss::adapt
