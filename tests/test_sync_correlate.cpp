// Unit tests for the sliding correlation primitives behind frame sync.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "sync/correlate.hpp"

namespace bhss::sync {
namespace {

dsp::cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::cvec x(n);
  for (dsp::cf& v : x) v = dsp::cf{dist(rng), dist(rng)};
  return x;
}

TEST(CorrelateAt, MatchesManualComputation) {
  const dsp::cvec x = {dsp::cf{1, 0}, dsp::cf{0, 1}, dsp::cf{-1, 0}, dsp::cf{2, 2}};
  const dsp::cvec ref = {dsp::cf{1, 0}, dsp::cf{0, 1}};
  // lag 0: x0*conj(r0) + x1*conj(r1) = 1 + (0+1i)(-i) = 1 + 1 = 2.
  const dsp::cf c0 = correlate_at(x, ref, 0);
  EXPECT_NEAR(c0.real(), 2.0F, 1e-6F);
  EXPECT_NEAR(c0.imag(), 0.0F, 1e-6F);
  // lag 2: x2*conj(r0) + x3*conj(r1) = -1 + (2+2i)(-i) = -1 + (2 - 2i)·...
  const dsp::cf c2 = correlate_at(x, ref, 2);
  EXPECT_NEAR(c2.real(), 1.0F, 1e-6F);
  EXPECT_NEAR(c2.imag(), -2.0F, 1e-6F);
}

TEST(CorrelateAt, RejectsOutOfRangeLag) {
  const dsp::cvec x = random_signal(8, 1);
  const dsp::cvec ref = random_signal(4, 2);
  EXPECT_THROW((void)correlate_at(x, ref, 5), std::invalid_argument);
}

TEST(CorrelateSearch, FindsEmbeddedReference) {
  const dsp::cvec ref = random_signal(64, 3);
  dsp::cvec x = random_signal(256, 4);
  for (auto& v : x) v *= 0.05F;  // weak background
  const std::size_t true_lag = 100;
  for (std::size_t i = 0; i < ref.size(); ++i) x[true_lag + i] += ref[i];

  const CorrelationPeak peak = correlate_search(x, ref, 192);
  EXPECT_EQ(peak.offset, true_lag);
  EXPECT_GT(peak.normalized, 0.9F);
}

TEST(CorrelateSearch, NormalizedIsOneOnExactMatch) {
  const dsp::cvec ref = random_signal(32, 5);
  dsp::cvec x(100, dsp::cf{0.0F, 0.0F});
  for (std::size_t i = 0; i < ref.size(); ++i) x[20 + i] = 2.5F * ref[i];  // scaled copy
  const CorrelationPeak peak = correlate_search(x, ref, 68);
  EXPECT_EQ(peak.offset, 20U);
  EXPECT_NEAR(peak.normalized, 1.0F, 1e-4F);
}

TEST(CorrelateSearch, PhaseRotationPreservedInPeakValue) {
  const dsp::cvec ref = random_signal(48, 6);
  const float phase = 1.1F;
  dsp::cvec x(128, dsp::cf{0.0F, 0.0F});
  const dsp::cf rot{std::cos(phase), std::sin(phase)};
  for (std::size_t i = 0; i < ref.size(); ++i) x[10 + i] = ref[i] * rot;
  const CorrelationPeak peak = correlate_search(x, ref, 80);
  EXPECT_EQ(peak.offset, 10U);
  EXPECT_NEAR(std::arg(peak.value), phase, 1e-3F);
}

TEST(CorrelateSearch, MaxLagClamped) {
  const dsp::cvec ref = random_signal(16, 7);
  dsp::cvec x(40, dsp::cf{0.0F, 0.0F});
  for (std::size_t i = 0; i < ref.size(); ++i) x[24 + i] = ref[i];
  // max_lag beyond what fits is clamped, and the true peak is still found.
  const CorrelationPeak peak = correlate_search(x, ref, 10000);
  EXPECT_EQ(peak.offset, 24U);
}

TEST(CorrelateSearch, RejectsRefLongerThanSignal) {
  EXPECT_THROW((void)correlate_search(random_signal(4, 8), random_signal(8, 9), 4),
               std::invalid_argument);
}

TEST(CorrelateSearch, NoiseOnlyGivesLowNormalizedPeak) {
  const dsp::cvec ref = random_signal(128, 10);
  const dsp::cvec x = random_signal(1024, 11);
  const CorrelationPeak peak = correlate_search(x, ref, 800);
  EXPECT_LT(peak.normalized, 0.5F);
}

}  // namespace
}  // namespace bhss::sync
