// Unit tests for the half-sine QPSK chip modulator/demodulator — the block
// whose pulse duration realises bandwidth hopping (eq. (1)).

#include <gtest/gtest.h>

#include <random>

#include "dsp/psd.hpp"
#include "dsp/utils.hpp"
#include "phy/modulator.hpp"

namespace bhss::phy {
namespace {

std::vector<float> random_chips(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<float> chips(n);
  for (float& c : chips) c = (rng() & 1U) ? 1.0F : -1.0F;
  return chips;
}

class ModulatorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModulatorSweep, OutputLengthIsExact) {
  const std::size_t sps = GetParam();
  const QpskModulator mod(sps);
  const auto chips = random_chips(64, 1);
  const dsp::cvec wave = mod.modulate(chips);
  EXPECT_EQ(wave.size(), 64 * sps);
  EXPECT_EQ(mod.segment_samples(64), 64 * sps);
}

TEST_P(ModulatorSweep, NominalPowerIsOneOverSps) {
  const std::size_t sps = GetParam();
  const QpskModulator mod(sps);
  const auto chips = random_chips(256, 2);
  const dsp::cvec wave = mod.modulate(chips);
  EXPECT_NEAR(dsp::mean_power(wave), mod.nominal_power(), mod.nominal_power() * 1e-4);
}

TEST_P(ModulatorSweep, CleanRoundTrip) {
  const std::size_t sps = GetParam();
  const QpskModulator mod(sps);
  const QpskDemodulator demod(sps);
  const auto chips = random_chips(128, 3);
  const dsp::cvec wave = mod.modulate(chips);
  const std::vector<float> soft = demod.demodulate(wave, chips.size());
  ASSERT_EQ(soft.size(), chips.size());
  for (std::size_t c = 0; c < chips.size(); ++c) {
    EXPECT_GT(soft[c] * chips[c], 0.0F) << "chip " << c;  // correct sign
  }
}

TEST_P(ModulatorSweep, SoftChipsAreUniformMagnitude) {
  // Matched filtering unit-energy pulses at the peak: every soft chip has
  // the same magnitude (no inter-pair interference).
  const std::size_t sps = GetParam();
  const QpskModulator mod(sps);
  const QpskDemodulator demod(sps);
  const auto chips = random_chips(64, 4);
  const std::vector<float> soft = demod.demodulate(mod.modulate(chips), chips.size());
  const float ref = std::abs(soft[0]);
  for (float s : soft) EXPECT_NEAR(std::abs(s), ref, ref * 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(SpsLevels, ModulatorSweep, ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Modulator, PhaseIsConstantWithinAPair) {
  // Non-offset QPSK with a common envelope: the instantaneous phase within
  // one chip pair never changes — the property the Costas loop relies on.
  const QpskModulator mod(8);
  const std::vector<float> chips = {1.0F, -1.0F};
  const dsp::cvec wave = mod.modulate(chips);
  const float ref = std::arg(wave[8]);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (std::abs(wave[i]) > 1e-3F) {
      EXPECT_NEAR(std::arg(wave[i]), ref, 1e-4F) << "sample " << i;
    }
  }
}

TEST(Modulator, BandwidthScalesInverselyWithSps) {
  // Eq. (1): stretching the pulse by alpha shrinks the spectrum by alpha.
  // Measured as the 99 % occupied bandwidth of long random-chip waveforms.
  auto measured_bw = [](std::size_t sps) {
    const QpskModulator mod(sps);
    const auto chips = random_chips(8192, 7);
    const dsp::cvec wave = mod.modulate(chips);
    return dsp::occupied_bandwidth(dsp::welch_psd(wave, 512), 0.99);
  };
  const double bw2 = measured_bw(2);
  const double bw4 = measured_bw(4);
  const double bw16 = measured_bw(16);
  EXPECT_NEAR(bw2 / bw4, 2.0, 0.4);
  EXPECT_NEAR(bw4 / bw16, 4.0, 0.8);
  // Absolute scale: occupied bandwidth is on the order of the chip rate.
  EXPECT_NEAR(bw4 * 4.0, 1.0, 0.5);
}

TEST(Modulator, RejectsInvalidSps) {
  EXPECT_THROW(QpskModulator(0), std::invalid_argument);
  EXPECT_THROW(QpskModulator(1), std::invalid_argument);
  EXPECT_THROW(QpskModulator(3), std::invalid_argument);
  EXPECT_THROW(QpskDemodulator(5), std::invalid_argument);
}

TEST(Modulator, RejectsOddChipCount) {
  const QpskModulator mod(4);
  const std::vector<float> chips(3, 1.0F);
  EXPECT_THROW((void)mod.modulate(chips), std::invalid_argument);
}

TEST(Demodulator, RejectsShortInput) {
  const QpskDemodulator demod(4);
  const dsp::cvec wave(10);
  EXPECT_THROW((void)demod.demodulate(wave, 4), std::invalid_argument);
}

}  // namespace
}  // namespace bhss::phy
