// Unit tests for Gardner timing recovery on oversampled QPSK symbols.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "channel/impairments.hpp"
#include "dsp/types.hpp"
#include "sync/gardner.hpp"

namespace bhss::sync {
namespace {

/// Rectangular-pulse QPSK at `sps` samples/symbol — the classic waveform
/// Gardner's TED is specified for.
dsp::cvec rect_qpsk(std::size_t n_symbols, std::size_t sps, unsigned seed,
                    std::vector<dsp::cf>* symbols_out = nullptr) {
  std::mt19937 rng(seed);
  dsp::cvec wave;
  wave.reserve(n_symbols * sps);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    const float i = (rng() & 1U) ? 1.0F : -1.0F;
    const float q = (rng() & 1U) ? 1.0F : -1.0F;
    const dsp::cf sym{i, q};
    if (symbols_out) symbols_out->push_back(sym);
    for (std::size_t k = 0; k < sps; ++k) wave.push_back(sym);
  }
  return wave;
}

/// Fraction of recovered samples (after the acquisition transient) that
/// match hard decisions of the sent symbol stream, allowing a small
/// unknown integer symbol offset.
double decision_agreement(const dsp::cvec& recovered, const std::vector<dsp::cf>& sent,
                          std::size_t skip = 300) {
  double best = 0.0;
  for (int offset = -2; offset <= 2; ++offset) {
    std::size_t match = 0;
    std::size_t total = 0;
    for (std::size_t i = skip; i < recovered.size(); ++i) {
      const auto j = static_cast<std::ptrdiff_t>(i) + offset;
      if (j < 0 || j >= static_cast<std::ptrdiff_t>(sent.size())) continue;
      const dsp::cf r = recovered[i];
      const dsp::cf s = sent[static_cast<std::size_t>(j)];
      if ((r.real() > 0) == (s.real() > 0) && (r.imag() > 0) == (s.imag() > 0)) ++match;
      ++total;
    }
    if (total > 0) best = std::max(best, static_cast<double>(match) / total);
  }
  return best;
}

class FractionalDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(FractionalDelaySweep, RecoversSymbolsThroughTimingOffset) {
  std::vector<dsp::cf> sent;
  const dsp::cvec wave = rect_qpsk(800, 4, 1, &sent);
  const dsp::cvec delayed = channel::apply_fractional_delay(wave, GetParam());

  GardnerTimingRecovery timing(4.0, 0.02F);
  dsp::cvec recovered;
  timing.process(delayed, recovered);
  ASSERT_GT(recovered.size(), 700U);
  EXPECT_GT(decision_agreement(recovered, sent), 0.99) << "frac=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionalDelaySweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.6, 0.9));

TEST(Gardner, PeriodStaysNearNominal) {
  const dsp::cvec wave = rect_qpsk(2000, 8, 2);
  GardnerTimingRecovery timing(8.0, 0.01F);
  dsp::cvec out;
  timing.process(wave, out);
  EXPECT_NEAR(timing.period(), 8.0, 0.2);
  EXPECT_NEAR(static_cast<double>(out.size()), 2000.0, 40.0);
}

TEST(Gardner, StreamingMatchesOneShot) {
  const dsp::cvec wave = rect_qpsk(400, 4, 3);
  GardnerTimingRecovery one_shot(4.0);
  dsp::cvec out_a;
  one_shot.process(wave, out_a);

  GardnerTimingRecovery streaming(4.0);
  dsp::cvec out_b;
  for (std::size_t pos = 0; pos < wave.size(); pos += 128) {
    const std::size_t len = std::min<std::size_t>(128, wave.size() - pos);
    streaming.process(dsp::cspan{wave}.subspan(pos, len), out_b);
  }
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_NEAR(std::abs(out_a[i] - out_b[i]), 0.0F, 1e-4F) << "i=" << i;
  }
}

TEST(Gardner, ResetRestoresInitialState) {
  const dsp::cvec wave = rect_qpsk(100, 4, 4);
  GardnerTimingRecovery timing(4.0);
  dsp::cvec out;
  timing.process(wave, out);
  timing.reset();
  EXPECT_DOUBLE_EQ(timing.period(), 4.0);
  dsp::cvec out2;
  timing.process(wave, out2);
  ASSERT_EQ(out.size(), out2.size());
}

TEST(Gardner, RejectsTooFewSamplesPerSymbol) {
  EXPECT_THROW(GardnerTimingRecovery(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace bhss::sync
