// Tests for the contracts layer (src/core/contracts.hpp): failure modes,
// exception hierarchy, the diagnostic payload, the DEBUG_ASSERT
// evaluation guarantee, and a sample of real library contracts firing
// through the macros.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "phy/spreader.hpp"
#include "sync/costas.hpp"
#include "sync/gardner.hpp"

namespace bhss {
namespace {

// The default build compiles with BHSS_CONTRACT_MODE_THROW; the tests in
// this file are about that mode's guarantees.
static_assert(BHSS_CONTRACT_MODE == BHSS_CONTRACT_MODE_THROW,
              "test_contracts assumes the default THROW contract mode");

TEST(Contracts, PassingCheckIsSilent) {
  EXPECT_NO_THROW(BHSS_REQUIRE(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(BHSS_ENSURE(true, "trivially true"));
}

TEST(Contracts, RequireThrowsContractViolation) {
  EXPECT_THROW(BHSS_REQUIRE(false, "boom"), contract_violation);
}

TEST(Contracts, ViolationIsCatchableAsInvalidArgument) {
  // The pre-contracts library threw std::invalid_argument on bad input;
  // contract_violation must stay catchable through that type so existing
  // callers (and ~60 existing tests) keep working.
  EXPECT_THROW(BHSS_REQUIRE(false, "compat"), std::invalid_argument);
  EXPECT_THROW(BHSS_REQUIRE(false, "compat"), std::exception);
}

TEST(Contracts, DiagnosticPayload) {
  try {
    const int x = 3;
    BHSS_REQUIRE(x > 5, "x must exceed five");
    FAIL() << "contract did not fire";
  } catch (const contract_violation& e) {
    EXPECT_STREQ(e.kind(), "REQUIRE");
    EXPECT_STREQ(e.condition(), "x > 5");
    const std::string what = e.what();
    EXPECT_NE(what.find("BHSS_REQUIRE failed"), std::string::npos) << what;
    EXPECT_NE(what.find("x must exceed five"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, EnsureReportsItsKind) {
  try {
    BHSS_ENSURE(false, "post");
    FAIL() << "contract did not fire";
  } catch (const contract_violation& e) {
    EXPECT_STREQ(e.kind(), "ENSURE");
  }
}

TEST(Contracts, DebugAssertEvaluationMatchesBuildMode) {
  // BHSS_DEBUG_ASSERT must not evaluate its condition when compiled out —
  // callers are allowed to put moderately expensive scans in it.
  int evaluations = 0;
  auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
#if BHSS_CONTRACT_DEBUG
  BHSS_DEBUG_ASSERT(probe(), "enabled: condition runs");
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(BHSS_DEBUG_ASSERT(evaluations < 0, "enabled: fires"), contract_violation);
#else
  BHSS_DEBUG_ASSERT(probe(), "disabled: condition must not run");
  EXPECT_EQ(evaluations, 0);
  EXPECT_NO_THROW(BHSS_DEBUG_ASSERT(false, "disabled: never fires"));
  static_cast<void>(probe);  // referenced only by the compiled-out macro
#endif
}

// ---------------------------------------------------------------------------
// Real library preconditions, exercised through the public APIs. These used
// to be hand-written `throw std::invalid_argument` sites; they now fire
// through the macros with kind/condition metadata attached.

TEST(LibraryContracts, FftRejectsNonPowerOfTwo) {
  EXPECT_THROW(dsp::Fft fft(100), contract_violation);
}

TEST(LibraryContracts, FirFilterRejectsEmptyTaps) {
  EXPECT_THROW(dsp::FirFilter f(dsp::cvec{}), contract_violation);
}

TEST(LibraryContracts, FirFilterRejectsNonFiniteTaps) {
  dsp::cvec taps{{1.0F, 0.0F}, {std::numeric_limits<float>::quiet_NaN(), 0.0F}};
  EXPECT_THROW(dsp::FirFilter f(std::move(taps)), contract_violation);
}

TEST(LibraryContracts, DesignLowpassRejectsBadCutoff) {
  EXPECT_THROW(auto t = dsp::design_lowpass(31, 0.0), contract_violation);
  EXPECT_THROW(auto t = dsp::design_lowpass(31, 0.5), contract_violation);
}

TEST(LibraryContracts, DespreaderRejectsWrongChipCount) {
  phy::Despreader d(0);
  std::vector<float> chips(phy::kChipsPerSymbol - 1, 1.0F);
  EXPECT_THROW(static_cast<void>(d.despread_symbol(chips)), contract_violation);
}

TEST(LibraryContracts, CostasRejectsBadLoopBandwidth) {
  EXPECT_THROW(sync::CostasLoop loop(0.0F), contract_violation);
  EXPECT_THROW(sync::CostasLoop loop(1.5F), contract_violation);
}

TEST(LibraryContracts, GardnerRejectsBadSps) {
  EXPECT_THROW(sync::GardnerTimingRecovery g(1.0F, 0.01F), contract_violation);
}

TEST(LibraryContracts, ViolationKindSurvivesLibraryBoundary) {
  try {
    dsp::Fft fft(100);
    FAIL() << "contract did not fire";
  } catch (const contract_violation& e) {
    EXPECT_STREQ(e.kind(), "REQUIRE");
    EXPECT_NE(std::strstr(e.condition(), "valid_size"), nullptr) << e.condition();
  }
}

}  // namespace
}  // namespace bhss
