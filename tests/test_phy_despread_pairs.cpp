// Unit tests for complex-pair despreading — the phase-measuring detector
// that feeds the receiver's decision-directed carrier tracker.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "phy/modulator.hpp"
#include "phy/spreader.hpp"

namespace bhss::phy {
namespace {

/// Chip pairs of one spread symbol, optionally rotated and noisy.
dsp::cvec make_pairs(std::uint8_t symbol, std::uint32_t seed, float phase,
                     float noise_sigma, unsigned noise_seed) {
  Spreader spread(seed);
  std::vector<float> chips;
  spread.spread_symbol(symbol, chips);
  dsp::cvec pairs(kChipsPerSymbol / 2);
  std::mt19937 rng(noise_seed);
  std::normal_distribution<float> dist(0.0F, noise_sigma);
  const dsp::cf rot{std::cos(phase), std::sin(phase)};
  for (std::size_t m = 0; m < pairs.size(); ++m) {
    pairs[m] = dsp::cf{chips[2 * m], chips[2 * m + 1]} * rot + dsp::cf{dist(rng), dist(rng)};
  }
  return pairs;
}

class PairSymbolSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PairSymbolSweep, CleanRoundTrip) {
  Despreader d(0x123);
  const dsp::cvec pairs = make_pairs(GetParam(), 0x123, 0.0F, 0.0F, 1);
  const DespreadPairsResult r = d.despread_pairs(pairs);
  EXPECT_EQ(r.symbol, GetParam());
  EXPECT_NEAR(r.correlation.real(), 32.0F, 1e-4F);
  EXPECT_NEAR(r.correlation.imag(), 0.0F, 1e-4F);
  EXPECT_NEAR(r.coherence, 1.0F, 1e-5F);
}

INSTANTIATE_TEST_SUITE_P(AllSymbols, PairSymbolSweep, ::testing::Range<std::uint8_t>(0, 16));

class PairPhaseSweep : public ::testing::TestWithParam<float> {};

TEST_P(PairPhaseSweep, MeasuresResidualPhaseUnambiguously) {
  // Unlike a blind QPSK detector, the despread correlation has no pi/2
  // ambiguity: the chip sequence itself is the phase reference. The
  // coherent (real-part) decision tolerates the small residual rotations
  // the receiver's tracker leaves behind; within that range the measured
  // argument equals the true rotation.
  const float phase = GetParam();
  Despreader d(0x77);
  const dsp::cvec pairs = make_pairs(9, 0x77, phase, 0.05F, 2);
  const DespreadPairsResult r = d.despread_pairs(pairs);
  EXPECT_EQ(r.symbol, 9);
  EXPECT_NEAR(std::arg(r.correlation), phase, 0.05F) << "phase " << phase;
}

INSTANTIATE_TEST_SUITE_P(Phases, PairPhaseSweep,
                         ::testing::Values(-0.35F, -0.2F, -0.1F, 0.0F, 0.1F, 0.2F, 0.35F));

TEST(DespreadPairs, CoherenceDropsUnderNoise) {
  Despreader clean_d(0x55);
  Despreader noisy_d(0x55);
  const dsp::cvec clean = make_pairs(3, 0x55, 0.0F, 0.0F, 3);
  const dsp::cvec noisy = make_pairs(3, 0x55, 0.0F, 2.0F, 4);
  const float c_clean = clean_d.despread_pairs(clean).coherence;
  const float c_noisy = noisy_d.despread_pairs(noisy).coherence;
  EXPECT_GT(c_clean, 0.95F);
  EXPECT_LT(c_noisy, c_clean);
}

TEST(DespreadPairs, AgreesWithRealDespreadingWhenAligned) {
  // At zero phase offset both detectors must pick the same symbol.
  std::mt19937 rng(5);
  for (int trial = 0; trial < 32; ++trial) {
    const auto sym = static_cast<std::uint8_t>(rng() % 16);
    Despreader d_pairs(0xABC);
    Despreader d_real(0xABC);
    const dsp::cvec pairs = make_pairs(sym, 0xABC, 0.0F, 0.5F, 100 + trial);
    std::vector<float> soft(kChipsPerSymbol);
    for (std::size_t m = 0; m < pairs.size(); ++m) {
      soft[2 * m] = pairs[m].real();
      soft[2 * m + 1] = pairs[m].imag();
    }
    EXPECT_EQ(d_pairs.despread_pairs(pairs).symbol, d_real.despread_symbol(soft).symbol)
        << "trial " << trial;
  }
}

TEST(DespreadPairs, RejectsWrongPairCount) {
  Despreader d(0);
  dsp::cvec pairs(15);
  EXPECT_THROW((void)d.despread_pairs(pairs), std::invalid_argument);
}

TEST(DespreadPairs, ScramblerStreamsStayAligned) {
  // Interleaving despread_pairs calls must consume the scrambler exactly
  // like spread_symbol does on the transmit side.
  Spreader spread(0xF00D);
  Despreader despread(0xF00D);
  const std::vector<std::uint8_t> symbols = {1, 14, 7, 0, 9, 9, 2, 15};
  for (std::uint8_t sym : symbols) {
    std::vector<float> chips;
    spread.spread_symbol(sym, chips);
    dsp::cvec pairs(kChipsPerSymbol / 2);
    for (std::size_t m = 0; m < pairs.size(); ++m) {
      pairs[m] = dsp::cf{chips[2 * m], chips[2 * m + 1]};
    }
    EXPECT_EQ(despread.despread_pairs(pairs).symbol, sym);
  }
}

}  // namespace
}  // namespace bhss::phy
