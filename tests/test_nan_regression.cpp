// NaN-propagation regression tests. The raw DSP kernels propagate NaN
// arithmetically (that is IEEE-754, not a bug), which is exactly why the
// boundaries above them must deal with poisoned buffers explicitly: a
// single bad sample would otherwise flow through filter selection,
// despreading and the CRC and come out the far side as a silently wrong
// BER measurement. The DSP/channel boundaries reject loudly (contracts);
// the receiver front end degrades gracefully instead — it scrubs
// non-finite samples to zero-sample erasures, flags the capture, and
// keeps decoding. These tests pin all three layers of that story.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/link_channel.hpp"
#include "core/contracts.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "dsp/fir.hpp"
#include "dsp/psd.hpp"
#include "dsp/utils.hpp"

namespace bhss {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

bool any_nan(dsp::cspan x) {
  for (const dsp::cf& s : x) {
    if (std::isnan(s.real()) || std::isnan(s.imag())) return true;
  }
  return false;
}

dsp::cvec impulse_train(std::size_t n) {
  dsp::cvec x(n, {0.0F, 0.0F});
  for (std::size_t i = 0; i < n; i += 16) x[i] = {1.0F, 0.0F};
  return x;
}

// ---------------------------------------------------------------------------
// Kernel level: NaN flows through the filters. If a future "optimisation"
// started flushing NaN to zero these tests would catch the semantic change.

TEST(NanPropagation, FirFilterPropagatesNan) {
  dsp::FirFilter f(dsp::fvec{0.25F, 0.5F, 0.25F});
  dsp::cvec x = impulse_train(64);
  x[20] = {kNaN, 0.0F};
  const dsp::cvec y = f.process(x);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_TRUE(any_nan(y));
  EXPECT_FALSE(dsp::all_finite(dsp::cspan{y}));
}

TEST(NanPropagation, FftConvolverPropagatesNan) {
  const dsp::fvec taps = dsp::design_lowpass(63, 0.2);
  dsp::FftConvolver conv(dsp::to_complex(taps));
  dsp::cvec x = impulse_train(512);
  x[100] = {0.0F, kNaN};
  const dsp::cvec y = conv.filter(x);
  ASSERT_EQ(y.size(), x.size());
  // The FFT smears a single NaN across the whole block — all the more
  // reason the receiver must reject it up front.
  EXPECT_TRUE(any_nan(y));
}

TEST(NanPropagation, AllFiniteSeesEitherRail) {
  dsp::cvec x(8, {1.0F, -1.0F});
  EXPECT_TRUE(dsp::all_finite(dsp::cspan{x}));
  x[3] = {std::numeric_limits<float>::infinity(), 0.0F};
  EXPECT_FALSE(dsp::all_finite(dsp::cspan{x}));
  x[3] = {1.0F, kNaN};
  EXPECT_FALSE(dsp::all_finite(dsp::cspan{x}));
}

// ---------------------------------------------------------------------------
// Boundary level: the contracts reject poisoned buffers loudly.

TEST(NanRejection, WelchPsdRejectsNanInput) {
  dsp::cvec x = impulse_train(1024);
  x[17] = {kNaN, 0.0F};
  EXPECT_THROW(auto p = dsp::welch_psd(x, 256), contract_violation);
}

TEST(NanRejection, ChannelRejectsNanWaveform) {
  channel::AwgnSource noise(123);
  channel::LinkConfig link;
  link.snr_db = 10.0;
  dsp::cvec tx = impulse_train(256);
  tx[0] = {kNaN, kNaN};
  EXPECT_THROW(auto y = channel::transmit(tx, {}, link, noise), contract_violation);
}

TEST(NanRejection, ReceiverScrubsPoisonedCaptureInsteadOfGarbageBer) {
  // End to end: a valid frame whose capture is then poisoned with a burst
  // of NaN must not poison the decode. The receiver scrubs the bad
  // samples to zero erasures before they can reach the PSD estimator or
  // the correlators, reports the capture via `input_scrubbed`, and
  // decodes the rest of the frame normally.
  core::SystemConfig cfg;
  cfg.pattern = core::HopPattern::make(core::HopPatternType::linear,
                                       core::BandwidthSet::paper());
  cfg.sync = core::SyncMode::genie;
  const core::BhssTransmitter tx(cfg);
  const core::BhssReceiver rx(cfg);
  channel::AwgnSource noise(7);

  std::vector<std::uint8_t> payload(8);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 29 + 3);
  }
  const core::Transmission t = tx.transmit(payload, 1);
  channel::LinkConfig link;
  link.snr_db = 20.0;
  link.tx_delay = 41;
  link.tail_pad = 64;
  dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);

  // Sanity: the clean capture decodes and is not reported as scrubbed.
  const core::RxResult clean = rx.receive(sig, 1, payload.size(), 0, 41);
  ASSERT_TRUE(clean.crc_ok);
  ASSERT_EQ(clean.payload, payload);
  EXPECT_FALSE(clean.input_scrubbed);

  // Poison a stretch in the middle of the frame. The decode must survive
  // (a 32-sample erasure is far below the processing gain) and the
  // result must be flagged — silent acceptance would hide a faulty ADC.
  for (std::size_t i = sig.size() / 2; i < sig.size() / 2 + 32; ++i) sig[i] = {kNaN, kNaN};
  core::RxResult scrubbed;
  EXPECT_NO_THROW(scrubbed = rx.receive(sig, 1, payload.size(), 0, 41));
  EXPECT_TRUE(scrubbed.input_scrubbed);
  EXPECT_TRUE(scrubbed.crc_ok);
  EXPECT_EQ(scrubbed.payload, payload);
}

}  // namespace
}  // namespace bhss
