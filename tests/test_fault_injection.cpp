// Fault-injection subsystem tests: golden per-seed fault plans (the
// random-stream layout is a compatibility surface — recorded campaigns
// must replay), plan purity across shards and threads, the
// injector/receiver contract (corrupt captures are scrubbed, clock jumps
// are re-acquired), and the end-to-end determinism of faulted
// Monte-Carlo runs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/link_simulator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/parallel_link_runner.hpp"

namespace bhss::fault {
namespace {

FaultConfig full_matrix() {
  FaultConfig cfg;
  cfg.set_uniform_rate(1.0);
  return cfg;
}

bool stats_finite(const core::LinkStats& s) {
  return std::isfinite(s.per()) && std::isfinite(s.ser()) &&
         std::isfinite(s.throughput_bps) && std::isfinite(s.airtime_s);
}

// ------------------------------------------------------------------ planning

TEST(FaultPlan, GoldenPlanForDefaultSeed) {
  // The exact event sequence for (seed 0xFA017, packet 0, 4096 samples).
  // These values pin the planner's random-stream layout: any change to the
  // draw order, the stream id, or SharedRandom itself re-rolls every
  // recorded fault campaign and must show up here.
  const FaultPlan plan = plan_faults(full_matrix(), 0, 4096);
  ASSERT_EQ(plan.events.size(), 7U);

  const FaultEvent expected[] = {
      {FaultKind::jammer_burst, 1493U, 327U, 30.0},
      {FaultKind::gain_step, 2841U, 819U, 0.056234132519034911},
      {FaultKind::sample_drop, 43U, 6U, 0.0},
      {FaultKind::sample_dup, 2323U, 43U, 0.0},
      {FaultKind::clock_jump, 93U, 54U, 0.44571089444956313},
      {FaultKind::cfo_step, 2486U, 0U, -3.7222811034625638e-05},
      {FaultKind::corrupt, 2329U, 12U, 0.0},
  };
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(plan.events[i].kind, expected[i].kind) << "event " << i;
    EXPECT_EQ(plan.events[i].offset, expected[i].offset) << "event " << i;
    EXPECT_EQ(plan.events[i].length, expected[i].length) << "event " << i;
    EXPECT_DOUBLE_EQ(plan.events[i].magnitude, expected[i].magnitude) << "event " << i;
  }
}

TEST(FaultPlan, PureFunctionOfSeedPacketAndLength) {
  const FaultConfig cfg = full_matrix();
  const FaultPlan a = plan_faults(cfg, 5, 8192);
  const FaultPlan b = plan_faults(cfg, 5, 8192);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].offset, b.events[i].offset);
    EXPECT_EQ(a.events[i].length, b.events[i].length);
    EXPECT_DOUBLE_EQ(a.events[i].magnitude, b.events[i].magnitude);
  }

  // Different packets draw different plans (same kinds, different draws).
  const FaultPlan c = plan_faults(cfg, 6, 8192);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    any_difference = any_difference || a.events[i].offset != c.events[i].offset ||
                     a.events[i].length != c.events[i].length;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, DefaultConfigIsFaultFree) {
  const FaultConfig cfg;
  EXPECT_FALSE(cfg.any());
  EXPECT_TRUE(plan_faults(cfg, 0, 4096).events.empty());
  const FaultInjector injector(cfg);
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultPlan, ClockJumpStaysInsideTheAcquisitionRegion) {
  FaultConfig cfg;
  cfg.p_clock_jump = 1.0;
  for (std::uint64_t pkt = 0; pkt < 64; ++pkt) {
    const FaultPlan plan = plan_faults(cfg, pkt, 20000);
    ASSERT_EQ(plan.events.size(), 1U);
    EXPECT_EQ(plan.events[0].kind, FaultKind::clock_jump);
    EXPECT_LT(plan.events[0].offset, cfg.jump_offset_max);
    EXPECT_GE(plan.events[0].magnitude, 0.0);
    EXPECT_LT(plan.events[0].magnitude, 1.0);
  }
}

// ----------------------------------------------------------------- injection

TEST(FaultInjector, AppliesEveryKindOnceAndLogsIt) {
  const FaultInjector injector(full_matrix());
  dsp::cvec capture(4096, dsp::cf{1.0F, -1.0F});
  const FaultPlan plan = injector.plan_for_packet(0, capture.size());
  const FaultLog log = injector.apply(plan, capture);

  EXPECT_EQ(log.bursts, 1U);
  EXPECT_EQ(log.fades, 1U);
  EXPECT_EQ(log.drops, 1U);
  EXPECT_EQ(log.dups, 1U);
  EXPECT_EQ(log.clock_jumps, 1U);
  EXPECT_EQ(log.cfo_steps, 1U);
  EXPECT_EQ(log.corruptions, 1U);
  EXPECT_EQ(log.total(), 7U);

  // The golden plan drops 6, duplicates 43, inserts a 54-sample jump and
  // the fractional-delay tail's extra sample.
  EXPECT_EQ(capture.size(), 4096U - 6U + 43U + 54U + 1U);

  // The corrupt event really poisons the capture — the *receiver* owns
  // scrubbing, not the injector.
  bool any_bad = false;
  for (const dsp::cf& s : capture) {
    any_bad = any_bad || !std::isfinite(s.real()) || !std::isfinite(s.imag());
  }
  EXPECT_TRUE(any_bad);
}

TEST(FaultInjector, ApplyIsDeterministic) {
  const FaultInjector injector(full_matrix());
  dsp::cvec a(4096, dsp::cf{0.5F, 0.25F});
  dsp::cvec b = a;
  const FaultPlan plan = injector.plan_for_packet(3, a.size());
  (void)injector.apply(plan, a);
  (void)injector.apply(plan, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, including any NaN payloads (compare representations
    // through ==: NaN != NaN, so compare finiteness class first).
    const bool fa = std::isfinite(a[i].real()) && std::isfinite(a[i].imag());
    const bool fb = std::isfinite(b[i].real()) && std::isfinite(b[i].imag());
    ASSERT_EQ(fa, fb) << "i=" << i;
    if (fa) {
      ASSERT_EQ(a[i], b[i]) << "i=" << i;
    }
  }
}

// ---------------------------------------------------------------- end-to-end

core::SimConfig faulted_link(double intensity) {
  core::SimConfig cfg;
  cfg.system.sync = core::SyncMode::preamble;
  cfg.snr_db = 18.0;
  cfg.n_packets = 32;
  cfg.channel_seed = 11;
  cfg.faults.set_uniform_rate(intensity);
  return cfg;
}

TEST(FaultedLink, FullMatrixKeepsEveryStatisticFinite) {
  const core::LinkStats stats = core::run_link(faulted_link(1.0));
  EXPECT_TRUE(stats_finite(stats));
  EXPECT_EQ(stats.packets, 32U);
  EXPECT_GT(stats.faults_injected, 0U);
  // Every capture carries a corrupt event at intensity 1, and every one of
  // them must be scrubbed rather than decoded into garbage.
  EXPECT_EQ(stats.corrupt_input_rejected, stats.packets);
}

TEST(FaultedLink, ThreadCountDoesNotChangeFaultedStatistics) {
  // The PR 2 determinism contract extends to faulted runs: for a fixed
  // (SimConfig, n_shards), the fault sequence and thus every statistic is
  // bit-identical at 1 and 8 threads.
  const core::SimConfig cfg = faulted_link(0.35);
  runtime::RunnerOptions one;
  one.n_threads = 1;
  one.n_shards = 8;
  runtime::RunnerOptions eight;
  eight.n_threads = 8;
  eight.n_shards = 8;
  const core::LinkStats a = runtime::ParallelLinkRunner(one).run(cfg);
  const core::LinkStats b = runtime::ParallelLinkRunner(eight).run(cfg);

  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.total_symbols, b.total_symbols);
  EXPECT_EQ(a.sync_lost, b.sync_lost);
  EXPECT_EQ(a.reacquired, b.reacquired);
  EXPECT_EQ(a.filter_fallback, b.filter_fallback);
  EXPECT_EQ(a.corrupt_input_rejected, b.corrupt_input_rejected);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_DOUBLE_EQ(a.airtime_s, b.airtime_s);
  EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
  EXPECT_TRUE(stats_finite(a));
  EXPECT_GT(a.faults_injected, 0U);
}

TEST(FaultedLink, ShardingDoesNotChangeTheFaultSequence) {
  // Per-packet plans key on the *global* packet index, so even different
  // shard counts inject identical fault sequences (stronger than the
  // fixed-shard contract, which only promises identity per n_shards).
  const core::SimConfig cfg = faulted_link(1.0);
  runtime::RunnerOptions a;
  a.n_threads = 2;
  a.n_shards = 4;
  runtime::RunnerOptions b;
  b.n_threads = 2;
  b.n_shards = 16;
  EXPECT_EQ(runtime::ParallelLinkRunner(a).run(cfg).faults_injected,
            runtime::ParallelLinkRunner(b).run(cfg).faults_injected);
}

TEST(FaultedLink, ClockJumpsAreReacquiredAndRecoveryBeatsSingleShot) {
  // Mid-run desync: every packet takes a clock glitch in the acquisition
  // region. With the bounded re-acquisition chain some of those frames
  // must come back on a retry, and the packet loss must sit strictly
  // below the single-shot receiver on the *same* fault sequence.
  core::SimConfig cfg;
  cfg.system.sync = core::SyncMode::preamble;
  cfg.snr_db = 18.0;
  cfg.n_packets = 48;
  cfg.channel_seed = 7;
  cfg.faults.p_clock_jump = 1.0;

  const core::LinkStats with_recovery = core::run_link(cfg);

  core::SimConfig single = cfg;
  single.system.reacquisition.max_attempts = 1;
  const core::LinkStats single_shot = core::run_link(single);

  // Identical fault exposure on both sides.
  ASSERT_EQ(with_recovery.faults_injected, single_shot.faults_injected);
  EXPECT_GT(with_recovery.reacquired, 0U);
  EXPECT_LT(with_recovery.per(), single_shot.per());
  EXPECT_LE(with_recovery.sync_lost, single_shot.sync_lost);
  EXPECT_TRUE(stats_finite(with_recovery));
  EXPECT_TRUE(stats_finite(single_shot));
}

// ------------------------------------------------- adversary x fault overlap

// The reactive jammer re-tunes at every hop boundary (hop.start +
// estimation_samples + reaction_delay); with per-packet fault rates at 1.0
// every capture also takes a transient fault, so fault windows and jammer
// transitions overlap constantly. These pins freeze the merged failure
// taxonomy for that combined stress: any change to fault ordering, jammer
// timeline arithmetic, or the receiver's scrub/reacquire paths shows up as
// an exact count diff, not a vague PER drift.

core::SimConfig reactive_faulted_link() {
  core::SimConfig cfg;
  cfg.system.sync = core::SyncMode::preamble;
  cfg.snr_db = 18.0;
  cfg.jnr_db = 12.0;
  cfg.n_packets = 32;
  cfg.channel_seed = 11;
  cfg.jammer.kind = core::JammerSpec::Kind::reactive;
  cfg.jammer.estimation_samples = 1024;  // sensing latency: re-tunes mid-hop
  cfg.jammer.reaction_delay = 1024;
  return cfg;
}

TEST(FaultedLink, ClockJumpsAcrossReactiveJammerHopBoundaries) {
  core::SimConfig cfg = reactive_faulted_link();
  cfg.faults.p_clock_jump = 1.0;

  const core::LinkStats s = core::run_link(cfg);
  EXPECT_TRUE(stats_finite(s));

  // Pinned taxonomy (recorded from this exact config; update only with an
  // understood semantic change, never to silence a diff).
  EXPECT_EQ(s.packets, 32U);
  EXPECT_EQ(s.faults_injected, 32U);
  EXPECT_EQ(s.detected, 31U);
  EXPECT_EQ(s.ok, 2U);
  EXPECT_EQ(s.sync_lost, 1U);
  EXPECT_EQ(s.reacquired, 7U);
  EXPECT_EQ(s.corrupt_input_rejected, 0U);

  // The combined stress stays inside the determinism contract: 8 threads
  // reproduce the sequential taxonomy bit for bit.
  runtime::RunnerOptions eight;
  eight.n_threads = 8;
  eight.n_shards = 8;
  runtime::RunnerOptions one;
  one.n_threads = 1;
  one.n_shards = 8;
  const core::LinkStats a = runtime::ParallelLinkRunner(one).run(cfg);
  const core::LinkStats b = runtime::ParallelLinkRunner(eight).run(cfg);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.sync_lost, b.sync_lost);
  EXPECT_EQ(a.reacquired, b.reacquired);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
}

TEST(FaultedLink, NaNBurstsAcrossReactiveJammerHopBoundaries) {
  // NaN corruption overlapping the jammer's re-tune points must never
  // reach the demodulator: every poisoned capture is scrubbed (the bad
  // samples excised, not the whole capture dropped), and the scrub
  // decision cannot depend on where the jammer happened to sit.
  core::SimConfig cfg = reactive_faulted_link();
  cfg.faults.p_corrupt = 1.0;
  cfg.faults.p_burst = 1.0;

  const core::LinkStats s = core::run_link(cfg);
  EXPECT_TRUE(stats_finite(s));

  EXPECT_EQ(s.packets, 32U);
  EXPECT_EQ(s.corrupt_input_rejected, 32U);
  EXPECT_EQ(s.faults_injected, 64U);
  EXPECT_EQ(s.detected, 32U);
  EXPECT_EQ(s.ok, 5U);
  EXPECT_EQ(s.sync_lost, 0U);
  EXPECT_EQ(s.symbol_errors, 151U);
  EXPECT_EQ(s.total_symbols, 1024U);
}

}  // namespace
}  // namespace bhss::fault
