// RealFft (real-input FFT specialization) against the full complex FFT
// it replaces, plus welch_psd_real against welch_psd on the same real
// signal. The split-and-recombine path reorders the arithmetic relative
// to the complex transform, so the comparison here is a tight relative
// tolerance (not the bit-exactness the simd suite demands) — RealFft is
// deliberately NOT wired into any golden-traced path.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/psd.hpp"
#include "dsp/real_fft.hpp"
#include "dsp/types.hpp"

namespace bhss::dsp {
namespace {

fvec random_real(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  fvec x(n);
  for (float& v : x) v = dist(gen);
  return x;
}

/// Reference half-spectrum via the complex transform.
cvec reference_spectrum(const fvec& x) {
  Fft fft(x.size());
  cvec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = cf{x[i], 0.0F};
  fft.forward(cspan_mut{z});
  return cvec(z.begin(), z.begin() + static_cast<std::ptrdiff_t>(x.size() / 2 + 1));
}

void expect_close(const cvec& got, const cvec& want, float scale) {
  ASSERT_EQ(got.size(), want.size());
  const float tol = 1e-5F * scale;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), tol) << "bin " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), tol) << "bin " << k;
  }
}

TEST(RealFft, MatchesComplexFftAcrossSizes) {
  for (std::size_t n : {std::size_t{4}, std::size_t{8}, std::size_t{64}, std::size_t{256},
                        std::size_t{1024}}) {
    const fvec x = random_real(n, 11U + static_cast<unsigned>(n));
    RealFft rfft(n);
    cvec got(n / 2 + 1);
    rfft.forward(fspan{x}, cspan_mut{got});
    expect_close(got, reference_spectrum(x), std::sqrt(static_cast<float>(n)));
  }
}

TEST(RealFft, ImpulseAndDcAreExact) {
  constexpr std::size_t n = 64;
  RealFft rfft(n);
  cvec out(n / 2 + 1);

  fvec impulse(n, 0.0F);
  impulse[0] = 1.0F;
  rfft.forward(fspan{impulse}, cspan_mut{out});
  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(out[k].real(), 1.0F, 1e-6F) << "bin " << k;
    EXPECT_NEAR(out[k].imag(), 0.0F, 1e-6F) << "bin " << k;
  }

  fvec dc(n, 1.0F);
  rfft.forward(fspan{dc}, cspan_mut{out});
  EXPECT_NEAR(out[0].real(), static_cast<float>(n), 1e-4F);
  for (std::size_t k = 1; k <= n / 2; ++k) {
    EXPECT_NEAR(std::abs(out[k]), 0.0F, 1e-4F) << "bin " << k;
  }
}

TEST(RealFft, EdgeBinsAreReal) {
  // X[0] and X[N/2] of a real signal are real by Hermitian symmetry; the
  // recombination computes them on a dedicated path — pin it.
  constexpr std::size_t n = 128;
  const fvec x = random_real(n, 99U);
  RealFft rfft(n);
  cvec out(n / 2 + 1);
  rfft.forward(fspan{x}, cspan_mut{out});
  EXPECT_EQ(out[0].imag(), 0.0F);
  EXPECT_EQ(out[n / 2].imag(), 0.0F);
}

TEST(RealFft, SingleToneLandsInItsBin) {
  constexpr std::size_t n = 256;
  constexpr std::size_t bin = 19;
  fvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0F * std::numbers::pi_v<float> * static_cast<float>(bin) *
                    static_cast<float>(i) / static_cast<float>(n));
  }
  RealFft rfft(n);
  cvec out(n / 2 + 1);
  rfft.forward(fspan{x}, cspan_mut{out});
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const float expected = (k == bin) ? static_cast<float>(n) / 2.0F : 0.0F;
    EXPECT_NEAR(std::abs(out[k]), expected, 1e-3F) << "bin " << k;
  }
}

TEST(WelchPsdReal, MatchesComplexWelchOnRealInput) {
  for (std::size_t fft_size : {std::size_t{64}, std::size_t{256}}) {
    const fvec x = random_real(4096, 7U + static_cast<unsigned>(fft_size));
    cvec xc(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) xc[i] = cf{x[i], 0.0F};

    const fvec real_psd = welch_psd_real(fspan{x}, fft_size);
    const fvec cplx_psd = welch_psd(cspan{xc}, fft_size);
    ASSERT_EQ(real_psd.size(), cplx_psd.size());
    for (std::size_t k = 0; k < fft_size; ++k) {
      EXPECT_NEAR(real_psd[k], cplx_psd[k], 1e-4F * (1.0F + cplx_psd[k])) << "bin " << k;
    }
  }
}

TEST(WelchPsdReal, MirrorsNegativeFrequencies) {
  // A real signal's PSD is even: the mirrored upper half must equal the
  // computed lower half exactly (the mirror is a copy, not a recompute).
  constexpr std::size_t fft_size = 128;
  const fvec x = random_real(2048, 3U);
  const fvec psd = welch_psd_real(fspan{x}, fft_size);
  for (std::size_t k = 1; k < fft_size / 2; ++k) {
    EXPECT_EQ(psd[fft_size - k], psd[k]) << "bin " << k;
  }
}

}  // namespace
}  // namespace bhss::dsp
