// Unit tests for PSD estimation: power normalisation, tone localisation,
// estimator variance ordering and occupied-bandwidth measurement.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dsp/psd.hpp"
#include "dsp/utils.hpp"

namespace bhss::dsp {
namespace {

cvec white_noise(std::size_t n, double power, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, static_cast<float>(std::sqrt(power / 2.0)));
  cvec x(n);
  for (cf& v : x) v = cf{dist(rng), dist(rng)};
  return x;
}

TEST(WelchPsd, TotalPowerMatchesSignalPower) {
  const cvec x = white_noise(65536, 2.0, 1);
  const fvec psd = welch_psd(x, 256);
  EXPECT_NEAR(psd_total_power(psd), 2.0, 0.1);
}

TEST(WelchPsd, WhiteNoiseIsFlat) {
  const cvec x = white_noise(1 << 18, 1.0, 2);
  const fvec psd = welch_psd(x, 128);
  const double mean_bin = psd_total_power(psd) / 128.0;
  for (std::size_t k = 0; k < psd.size(); ++k) {
    EXPECT_NEAR(psd[k] / mean_bin, 1.0, 0.35) << "bin " << k;
  }
}

TEST(WelchPsd, ToneConcentratesAtItsBin) {
  const std::size_t n = 8192;
  const std::size_t fft = 256;
  const double freq = 32.0 / static_cast<double>(fft);  // exactly bin 32
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * freq * static_cast<double>(i);
    x[i] = cf{static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
  }
  const fvec psd = welch_psd(x, fft, 0.5, Window::hann);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < fft; ++k) {
    if (psd[k] > psd[peak]) peak = k;
  }
  EXPECT_EQ(peak, 32U);
  // The peak neighbourhood must hold nearly all the power.
  double near = 0.0;
  for (std::size_t k = 30; k <= 34; ++k) near += psd[k];
  EXPECT_GT(near / psd_total_power(psd), 0.95);
}

TEST(WelchPsd, ShortInputZeroPads) {
  const cvec x = white_noise(50, 1.0, 3);
  const fvec psd = welch_psd(x, 128);
  ASSERT_EQ(psd.size(), 128U);
  // Zero padding spreads the 50 samples' power over the 128-bin frame.
  EXPECT_NEAR(psd_total_power(psd), 1.0 * 50.0 / 128.0, 0.25);
}

TEST(WelchPsd, RejectsBadArgs) {
  const cvec x = white_noise(64, 1.0, 4);
  EXPECT_THROW(welch_psd(x, 100), std::invalid_argument);
  EXPECT_THROW(welch_psd(x, 64, 0.99), std::invalid_argument);
  EXPECT_THROW(welch_psd(cvec{}, 64), std::invalid_argument);
}

TEST(PsdEstimators, WelchHasLowerVarianceThanPeriodogram) {
  // Estimator variance measured as spread of per-bin values for white noise.
  const cvec x = white_noise(1 << 15, 1.0, 5);
  auto bin_variance = [](const fvec& psd) {
    double mean = psd_total_power(psd) / static_cast<double>(psd.size());
    double acc = 0.0;
    for (float p : psd) acc += (p - mean) * (p - mean);
    return acc / (static_cast<double>(psd.size()) * mean * mean);
  };
  const double var_welch = bin_variance(welch_psd(x, 128, 0.5, Window::hann));
  const double var_bartlett = bin_variance(bartlett_psd(x, 128));
  const double var_single = bin_variance(periodogram(x, 128));
  EXPECT_LT(var_welch, var_single * 0.2);
  EXPECT_LT(var_bartlett, var_single * 0.2);
}

class OccupiedBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(OccupiedBandwidthSweep, MatchesShapedNoiseBandwidth) {
  // Build band-limited noise by brute force in the frequency domain:
  // keep only bins within +-bw/2.
  const double bw = GetParam();
  const std::size_t fft = 512;
  const cvec x = white_noise(1 << 16, 1.0, 17);
  fvec psd = welch_psd(x, fft);
  for (std::size_t k = 0; k < fft; ++k) {
    double f = static_cast<double>(k) / fft;
    if (f >= 0.5) f -= 1.0;
    if (std::abs(f) > bw / 2.0) psd[k] = 0.0F;
  }
  const double measured = occupied_bandwidth(psd, 0.99);
  EXPECT_NEAR(measured, bw, bw * 0.2 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, OccupiedBandwidthSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.9));

TEST(OccupiedBandwidth, FullBandNoise) {
  fvec psd(64, 1.0F);
  EXPECT_NEAR(occupied_bandwidth(psd, 0.99), 1.0, 0.05);
}

TEST(OccupiedBandwidth, SingleBin) {
  fvec psd(64, 0.0F);
  psd[0] = 1.0F;
  EXPECT_NEAR(occupied_bandwidth(psd, 0.99), 1.0 / 64.0, 1e-6);
}

}  // namespace
}  // namespace bhss::dsp
