// Property-style parameterized sweeps over the system's invariants:
// round trips across payload sizes / patterns / hop dwells, theory-model
// monotonicity, and control-logic robustness over a jammer grid.

#include <gtest/gtest.h>

#include <tuple>

#include "channel/link_channel.hpp"
#include "core/link_simulator.hpp"
#include "core/theory.hpp"
#include "phy/frame.hpp"
#include "dsp/utils.hpp"

namespace bhss::core {
namespace {

// ---------------------------------------------------------- round trips

using RoundTripParam = std::tuple<HopPatternType, std::size_t /*payload*/,
                                  std::size_t /*symbols_per_hop*/>;

class RoundTripSweep : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(RoundTripSweep, CleanChannelRoundTrip) {
  const auto [pattern, payload_len, sph] = GetParam();
  SimConfig cfg;
  cfg.system.pattern = HopPattern::make(pattern, BandwidthSet::small());
  cfg.system.symbols_per_hop = sph;
  cfg.payload_len = payload_len;
  cfg.n_packets = 4;
  cfg.snr_db = 20.0;
  cfg.jammer.kind = JammerSpec::Kind::none;
  const LinkStats s = run_link(cfg);
  EXPECT_EQ(s.ok, s.packets);
  EXPECT_EQ(s.symbol_errors, 0U);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundTripSweep,
    ::testing::Combine(::testing::Values(HopPatternType::linear, HopPatternType::exponential,
                                         HopPatternType::parabolic),
                       ::testing::Values(1, 8, 32),
                       ::testing::Values(1, 4, 10)),
    [](const ::testing::TestParamInfo<RoundTripParam>& info) {
      return to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------ theory invariants

class GammaGridSweep
    : public ::testing::TestWithParam<std::tuple<double /*rho dB*/, double /*ratio*/>> {};

TEST_P(GammaGridSweep, BoundIsAtLeastOneAndBoundedByJammerPlusNoise) {
  const auto [rho_db, ratio] = GetParam();
  const double rho = dsp::db_to_linear(rho_db);
  const double gamma = theory::snr_improvement_bound(ratio, rho, 0.01);
  EXPECT_GE(gamma, 1.0);
  // Removing the jammer entirely is the best any filter can do.
  EXPECT_LE(gamma, (rho + 0.01) / 0.01 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, GammaGridSweep,
                         ::testing::Combine(::testing::Values(0.0, 10.0, 20.0, 30.0),
                                            ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0, 10.0,
                                                              100.0)));

TEST(TheoryInvariants, BerMonotoneInEbno) {
  const auto model = theory::BhssModel::log_uniform(100.0, 7, 100.0, 100.0);
  for (double bj : {1.0, 0.1, 0.01}) {
    double prev = 1.0;
    for (double ebno_db = -5.0; ebno_db <= 25.0; ebno_db += 1.0) {
      const double ber = model.ber_fixed_jammer(bj, dsp::db_to_linear(ebno_db));
      EXPECT_LE(ber, prev + 1e-12) << "bj " << bj << " Eb/N0 " << ebno_db;
      prev = ber;
    }
  }
}

TEST(TheoryInvariants, ThroughputMonotoneInEbno) {
  const auto model = theory::BhssModel::log_uniform(100.0, 7, 100.0, 100.0);
  double prev = 0.0;
  for (double ebno_db = -5.0; ebno_db <= 30.0; ebno_db += 1.0) {
    const double t = model.throughput_random_jammer(dsp::db_to_linear(ebno_db), 4000);
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
}

TEST(TheoryInvariants, StrongerJammerNeverHelps) {
  const auto model = theory::BhssModel::log_uniform(100.0, 7, 100.0, 100.0);
  const double ebno = dsp::db_to_linear(12.0);
  const auto weaker = theory::BhssModel::log_uniform(100.0, 7, 100.0, 10.0);
  for (double bj : {1.0, 0.1, 0.01}) {
    EXPECT_LE(weaker.ber_fixed_jammer(bj, ebno), model.ber_fixed_jammer(bj, ebno) + 1e-12);
  }
}

// -------------------------------------------------- receiver never crashes

using RobustnessParam = std::tuple<std::size_t /*level*/, double /*jam bw*/, double /*jnr*/>;

class ReceiverRobustness : public ::testing::TestWithParam<RobustnessParam> {};

TEST_P(ReceiverRobustness, DecodesOrFailsCleanlyAcrossJammerGrid) {
  const auto [level, jam_bw, jnr] = GetParam();
  SimConfig cfg;
  cfg.system.pattern = HopPattern::fixed(BandwidthSet::small(), level);
  cfg.system.hopping = false;
  cfg.system.fixed_bw_index = level;
  cfg.payload_len = 4;
  cfg.n_packets = 3;
  cfg.snr_db = 12.0;
  cfg.jnr_db = jnr;
  cfg.jammer.kind = JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = jam_bw;
  const LinkStats s = run_link(cfg);  // must not throw
  EXPECT_EQ(s.packets, cfg.n_packets);
  EXPECT_LE(s.ok, s.packets);
}

INSTANTIATE_TEST_SUITE_P(Grid, ReceiverRobustness,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1.0 / 64, 1.0 / 8, 0.5, 1.0),
                                            ::testing::Values(0.0, 20.0, 40.0)));

// --------------------------------------------------------- schedule fuzz

class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFuzz, AnySeedYieldsConsistentTransmissions) {
  SystemConfig sys;
  sys.seed = GetParam();
  sys.pattern = HopPattern::make(HopPatternType::parabolic, BandwidthSet::paper());
  const BhssTransmitter tx(sys);
  const std::vector<std::uint8_t> payload(5, 0x42);
  const Transmission t = tx.transmit(payload, GetParam() * 13);
  EXPECT_EQ(t.samples.size(), t.schedule.waveform_samples());
  EXPECT_EQ(t.schedule.total_symbols, phy::FrameSpec::total_symbols(5));
  // Mean power within a few percent of 1 regardless of schedule.
  EXPECT_NEAR(dsp::mean_power(t.samples), 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Values(0, 1, 2, 3, 17, 255, 65535, 0xDEADBEEF,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace bhss::core
