// Unit tests for the jammer models: band occupancy, power calibration,
// hopping behaviour and the reactive jammer's delayed bandwidth matching.

#include <gtest/gtest.h>

#include <map>

#include "dsp/psd.hpp"
#include "dsp/utils.hpp"
#include "jammer/hopping_jammer.hpp"
#include "jammer/noise_jammer.hpp"
#include "jammer/reactive_jammer.hpp"

namespace bhss::jammer {
namespace {

class NoiseJammerSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseJammerSweep, UnitPowerAndCorrectBandwidth) {
  const double bw = GetParam();
  NoiseJammer jam(bw, 1);
  const dsp::cvec x = jam.generate(1 << 16);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.02);

  const dsp::fvec psd = dsp::welch_psd(x, 512);
  const double occupied = dsp::occupied_bandwidth(psd, 0.99);
  EXPECT_NEAR(occupied, bw, bw * 0.25 + 0.02) << "bw " << bw;
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, NoiseJammerSweep,
                         ::testing::Values(1.0 / 128, 1.0 / 32, 1.0 / 8, 0.25, 0.5, 1.0));

TEST(NoiseJammer, OutOfBandSuppressed) {
  NoiseJammer jam(0.125, 2);
  const dsp::cvec x = jam.generate(1 << 16);
  const dsp::fvec psd = dsp::welch_psd(x, 256);
  // Compare in-band level (around DC) to far out-of-band level.
  double in = 0.0;
  double out = 0.0;
  for (std::size_t k = 0; k < 8; ++k) in += psd[k] + psd[255 - k];
  for (std::size_t k = 64; k < 96; ++k) out += psd[k] + psd[255 - k];
  EXPECT_GT(in / out, 1000.0);  // > 30 dB shoulder
}

TEST(NoiseJammer, FullBandIsWhite) {
  NoiseJammer jam(1.0, 3);
  const dsp::cvec x = jam.generate(1 << 15);
  const dsp::fvec psd = dsp::welch_psd(x, 64);
  const double mean_bin = dsp::psd_total_power(psd) / 64.0;
  for (float p : psd) EXPECT_NEAR(p / mean_bin, 1.0, 0.4);
}

TEST(NoiseJammer, RejectsBadBandwidth) {
  EXPECT_THROW(NoiseJammer(0.0, 1), std::invalid_argument);
  EXPECT_THROW(NoiseJammer(1.5, 1), std::invalid_argument);
}

TEST(HoppingJammer, DistributionFollowsProbabilities) {
  const std::vector<double> bws = {0.5, 0.25, 0.125};
  const std::vector<double> probs = {0.6, 0.3, 0.1};
  HoppingJammer jam(bws, probs, 256, 4);
  (void)jam.generate(256 * 4000);
  std::map<double, std::size_t> counts;
  for (double b : jam.last_hop_bandwidths()) ++counts[b];
  const auto total = static_cast<double>(jam.last_hop_bandwidths().size());
  EXPECT_NEAR(counts[0.5] / total, 0.6, 0.05);
  EXPECT_NEAR(counts[0.25] / total, 0.3, 0.05);
  EXPECT_NEAR(counts[0.125] / total, 0.1, 0.03);
}

TEST(HoppingJammer, UnitPower) {
  HoppingJammer jam({0.5, 0.03125}, {0.5, 0.5}, 1024, 5);
  const dsp::cvec x = jam.generate(1 << 16);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.05);
}

TEST(HoppingJammer, HopCountMatchesDwell) {
  HoppingJammer jam({0.5, 0.25}, {0.5, 0.5}, 1000, 6);
  (void)jam.generate(10000);
  EXPECT_EQ(jam.last_hop_bandwidths().size(), 10U);
}

TEST(HoppingJammer, RejectsBadConfig) {
  EXPECT_THROW(HoppingJammer({}, {}, 100, 1), std::invalid_argument);
  EXPECT_THROW(HoppingJammer({0.5}, {0.5, 0.5}, 100, 1), std::invalid_argument);
  EXPECT_THROW(HoppingJammer({0.5}, {1.0}, 0, 1), std::invalid_argument);
}

TEST(ReactiveJammer, MatchesObservedBandwidthAfterDelay) {
  // TX hops to a narrow bandwidth at sample 4096; a reactive jammer with
  // tau = 1024 must stay wide until 4096+1024 and be narrow afterwards.
  ReactiveJammer jam({0.5, 1.0 / 64}, 1024, 7);
  const std::vector<ObservedHop> hops = {{0, 0.5}, {4096, 1.0 / 64}};
  const dsp::cvec x = jam.generate(hops, 16384);
  ASSERT_EQ(x.size(), 16384U);

  auto occupied = [&](std::size_t begin, std::size_t len) {
    const dsp::fvec psd = dsp::welch_psd(dsp::cspan{x}.subspan(begin, len), 256);
    return dsp::occupied_bandwidth(psd, 0.99);
  };
  EXPECT_GT(occupied(0, 4096), 0.3);              // wide before the hop
  EXPECT_GT(occupied(4200, 800), 0.3);            // still wide during tau
  EXPECT_LT(occupied(6144, 8192), 0.1);           // narrow after reacting
}

TEST(ReactiveJammer, SnapsToClosestAvailableBandwidth) {
  ReactiveJammer jam({0.5, 0.125, 1.0 / 64}, 0, 8);
  const std::vector<ObservedHop> hops = {{0, 0.1}};  // closest is 0.125
  const dsp::cvec x = jam.generate(hops, 8192);
  const dsp::fvec psd = dsp::welch_psd(x, 256);
  EXPECT_NEAR(dsp::occupied_bandwidth(psd, 0.99), 0.125, 0.06);
}

TEST(ReactiveJammer, UnitPowerAcrossSwitches) {
  ReactiveJammer jam({0.5, 1.0 / 32}, 512, 9);
  std::vector<ObservedHop> hops;
  for (std::size_t h = 0; h < 8; ++h) hops.push_back({h * 2048, (h % 2) ? 0.5 : 1.0 / 32});
  const dsp::cvec x = jam.generate(hops, 8 * 2048);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.05);
}

TEST(ReactiveJammer, RejectsEmptyBandwidths) {
  EXPECT_THROW(ReactiveJammer({}, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bhss::jammer
