// Equivalence tests pinning the optimised DSP hot paths to the seed
// implementations they replaced: the doubled-history FirFilter against
// the original modulo-branch ring buffer, and the workspace-reusing
// FftConvolver against the original allocate-per-call overlap-save.
// Both rewrites perform the same arithmetic in the same order, so the
// tolerance is 1 ulp (and in practice the outputs are bit-identical).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"

namespace bhss::dsp {
namespace {

cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  cvec x(n);
  for (cf& v : x) v = cf{dist(rng), dist(rng)};
  return x;
}

/// |a - b| in units in the last place, via the monotone integer mapping of
/// IEEE-754 bit patterns.
std::int64_t ulp_diff(float a, float b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) return std::numeric_limits<std::int64_t>::max();
  const auto ordered = [](float f) {
    static_assert(sizeof(float) == sizeof(std::int32_t));
    std::int32_t i = 0;
    std::memcpy(&i, &f, sizeof(f));
    return (i >= 0) ? static_cast<std::int64_t>(i)
                    : static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::min()) - i;
  };
  const std::int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

void expect_within_one_ulp(const cvec& a, const cvec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(ulp_diff(a[i].real(), b[i].real()), 1) << "sample " << i << " (re)";
    EXPECT_LE(ulp_diff(a[i].imag(), b[i].imag()), 1) << "sample " << i << " (im)";
  }
}

// ---------------------------------------------------- seed implementations
// Verbatim copies of the pre-optimisation kernels (PR 2 seed state), kept
// here as the reference the production code is pinned to.

class SeedFirFilter {
 public:
  explicit SeedFirFilter(cvec taps) : taps_(std::move(taps)), head_(0) {
    history_.assign(taps_.size(), cf{0.0F, 0.0F});
  }

  cf process(cf in) noexcept {
    history_[head_] = in;
    cf acc{0.0F, 0.0F};
    std::size_t idx = head_;
    const std::size_t n = taps_.size();
    for (std::size_t k = 0; k < n; ++k) {
      acc += taps_[k] * history_[idx];
      idx = (idx == 0) ? n - 1 : idx - 1;
    }
    head_ = (head_ + 1 == n) ? 0 : head_ + 1;
    return acc;
  }

  cvec process(cspan in) {
    cvec out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
    return out;
  }

 private:
  cvec taps_;
  cvec history_;
  std::size_t head_;
};

class SeedFftConvolver {
 public:
  explicit SeedFftConvolver(cspan taps)
      : num_taps_(taps.size()),
        fft_size_(next_pow2(std::max<std::size_t>(4 * taps.size(), 1024))),
        block_size_(fft_size_ - num_taps_ + 1),
        fft_(fft_size_) {
    taps_spectrum_ = fft_.forward_copy(taps);
  }

  cvec filter(cspan x) const {
    cvec out(x.size());
    cvec block(fft_size_);
    const std::size_t overlap = num_taps_ - 1;
    for (std::size_t pos = 0; pos < x.size(); pos += block_size_) {
      for (std::size_t i = 0; i < fft_size_; ++i) {
        const auto global =
            static_cast<std::ptrdiff_t>(pos + i) - static_cast<std::ptrdiff_t>(overlap);
        block[i] = (global >= 0 && global < static_cast<std::ptrdiff_t>(x.size()))
                       ? x[static_cast<std::size_t>(global)]
                       : cf{0.0F, 0.0F};
      }
      fft_.forward(cspan_mut{block});
      for (std::size_t i = 0; i < fft_size_; ++i) block[i] *= taps_spectrum_[i];
      fft_.inverse(cspan_mut{block});
      const std::size_t n_valid = std::min(block_size_, x.size() - pos);
      for (std::size_t i = 0; i < n_valid; ++i) out[pos + i] = block[overlap + i];
    }
    return out;
  }

 private:
  static std::size_t next_pow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t num_taps_;
  std::size_t fft_size_;
  std::size_t block_size_;
  Fft fft_;
  cvec taps_spectrum_;
};

// ----------------------------------------------------------------- FirFilter

class FirEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirEquivalence, MatchesSeedRingBufferOnRandomInput) {
  const std::size_t n_taps = GetParam();
  const cvec taps = random_signal(n_taps, 11U + static_cast<unsigned>(n_taps));
  FirFilter fast{taps};
  SeedFirFilter seed{taps};
  const cvec x = random_signal(777, 29U + static_cast<unsigned>(n_taps));
  expect_within_one_ulp(fast.process(x), seed.process(x));
}

TEST_P(FirEquivalence, MatchesSeedAcrossResetAndStreaming) {
  const std::size_t n_taps = GetParam();
  const cvec taps = random_signal(n_taps, 5);
  FirFilter fast{taps};
  SeedFirFilter seed{taps};
  const cvec x = random_signal(2 * n_taps + 3, 6);
  // Sample-by-sample streaming...
  for (const cf v : x) {
    const cf a = fast.process(v);
    const cf b = seed.process(v);
    EXPECT_LE(ulp_diff(a.real(), b.real()), 1);
    EXPECT_LE(ulp_diff(a.imag(), b.imag()), 1);
  }
  // ...and the state is fully cleared by reset().
  fast.reset();
  const cvec y1 = fast.process(x);
  FirFilter fresh{taps};
  const cvec y2 = fresh.process(x);
  expect_within_one_ulp(y1, y2);
}

INSTANTIATE_TEST_SUITE_P(TapCounts, FirEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                           std::size_t{7}, std::size_t{33}, std::size_t{64},
                                           std::size_t{255}),
                         ::testing::PrintToStringParamName());

// --------------------------------------------------------------- FftConvolver

class ConvolverEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvolverEquivalence, WorkspaceReuseMatchesSeedPerCallAllocation) {
  const std::size_t n_taps = GetParam();
  const cvec taps = random_signal(n_taps, 100U + static_cast<unsigned>(n_taps));
  FftConvolver fast{cspan{taps}};
  const SeedFftConvolver seed{cspan{taps}};
  // Several lengths through the SAME convolver: a stale workspace would
  // leak one call's tail into the next.
  for (const std::size_t len : {std::size_t{1}, std::size_t{63}, std::size_t{1024},
                                std::size_t{4097}, std::size_t{300}}) {
    const cvec x = random_signal(len, 200U + static_cast<unsigned>(len));
    expect_within_one_ulp(fast.filter(x), seed.filter(x));
  }
}

TEST_P(ConvolverEquivalence, CallerBufferOverloadMatches) {
  const std::size_t n_taps = GetParam();
  const cvec taps = random_signal(n_taps, 42);
  FftConvolver fast{cspan{taps}};
  const SeedFftConvolver seed{cspan{taps}};
  const cvec x = random_signal(2000, 43);
  cvec out;
  fast.filter(x, out);
  expect_within_one_ulp(out, seed.filter(x));
}

INSTANTIATE_TEST_SUITE_P(TapCounts, ConvolverEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{7},
                                           std::size_t{33}, std::size_t{256},
                                           std::size_t{1025}),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace bhss::dsp
