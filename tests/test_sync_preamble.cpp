// Unit tests for preamble-based acquisition: timing, phase, CFO, the
// refinement pass and derotation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "channel/awgn.hpp"
#include "channel/impairments.hpp"
#include "sync/preamble_sync.hpp"

namespace bhss::sync {
namespace {

dsp::cvec random_reference(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::cvec x(n);
  for (dsp::cf& v : x) v = dsp::cf{dist(rng), dist(rng)};
  return x;
}

struct ImpairmentCase {
  std::size_t delay;
  float phase;
  float cfo;
};

class AcquisitionSweep : public ::testing::TestWithParam<ImpairmentCase> {};

TEST_P(AcquisitionSweep, RecoversTimingPhaseCfo) {
  const auto [delay, phase, cfo] = GetParam();
  const dsp::cvec ref = random_reference(2048, 1);

  dsp::cvec channel_in = ref;
  channel::apply_phase(dsp::cspan_mut{channel_in}, phase);
  channel::apply_cfo(dsp::cspan_mut{channel_in}, cfo);
  dsp::cvec rx = channel::apply_delay(channel_in, delay, delay + ref.size() + 128);
  channel::AwgnSource noise(7);
  noise.add_to(dsp::cspan_mut{rx}, 0.01);  // 20 dB SNR

  const PreambleSync sync(ref);
  const auto est = sync.acquire(rx, 512);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->frame_start, delay);
  EXPECT_GT(est->quality, 0.8F);
  EXPECT_NEAR(est->cfo, cfo, 5e-5F);
  // Phase comparison modulo 2 pi. The CFO applied by the channel starts at
  // the first transmitted sample, so the phase at frame start is `phase`.
  const float dphi = std::remainder(est->phase - phase, 2.0F * std::numbers::pi_v<float>);
  EXPECT_NEAR(dphi, 0.0F, 0.15F);
}

INSTANTIATE_TEST_SUITE_P(
    Impairments, AcquisitionSweep,
    ::testing::Values(ImpairmentCase{0, 0.0F, 0.0F}, ImpairmentCase{100, 0.0F, 0.0F},
                      ImpairmentCase{37, 1.5F, 0.0F}, ImpairmentCase{37, -2.8F, 0.0F},
                      ImpairmentCase{200, 0.7F, 1e-4F}, ImpairmentCase{411, -0.3F, -2e-4F}));

TEST(PreambleSync, NoSignalReturnsNullopt) {
  const dsp::cvec ref = random_reference(1024, 2);
  channel::AwgnSource noise(3);
  dsp::cvec rx = noise.generate(4096, 1.0);
  const PreambleSync sync(ref, 0.3F);
  EXPECT_FALSE(sync.acquire(rx, 2048).has_value());
}

TEST(PreambleSync, BelowThresholdReturnsNulloptAndOverrideRules) {
  // The same capture, the same synchroniser: acceptance is decided purely
  // by the effective threshold. The per-call override is what the
  // receiver's bounded re-acquisition leans on, so both directions are
  // pinned — a raise rejects a genuine peak, a lower keeps accepting it.
  const dsp::cvec ref = random_reference(1024, 5);
  dsp::cvec rx = channel::apply_delay(ref, 64, 64 + ref.size() + 256);
  channel::AwgnSource noise(11);
  noise.add_to(dsp::cspan_mut{rx}, 0.25);

  const PreambleSync sync(ref, 0.3F);
  const auto est = sync.acquire(rx, 512);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->frame_start, 64U);
  ASSERT_LT(est->quality, 0.999F);
  // Raising the bar above the measured quality must reject the peak.
  EXPECT_FALSE(sync.acquire(rx, 512, est->quality + 0.001F).has_value());
  // Lowering it must keep accepting the same peak.
  const auto relaxed = sync.acquire(rx, 512, 0.05F);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_EQ(relaxed->frame_start, 64U);
}

TEST(PreambleSync, MarginSeparatesRealPeaksFromLuckyNoise) {
  // CFAR statistic behind re-acquisition: a genuine preamble stands far
  // above the correlation noise floor, while the best of a few hundred
  // pure-noise lags only reaches ~sqrt(2 ln K) times the floor. The 4.5x
  // default retry margin must sit between the two populations.
  const dsp::cvec ref = random_reference(1024, 8);
  dsp::cvec rx = channel::apply_delay(ref, 100, 100 + ref.size() + 512);
  channel::AwgnSource noise(13);
  noise.add_to(dsp::cspan_mut{rx}, 0.1);

  const PreambleSync sync(ref, 0.3F);
  const auto real_peak = sync.acquire(rx, 512);
  ASSERT_TRUE(real_peak.has_value());
  EXPECT_GT(real_peak->margin, 4.5F);

  channel::AwgnSource other(17);
  const dsp::cvec pure_noise = other.generate(rx.size(), 1.0);
  // Force acceptance with a tiny threshold so the noise peak's margin is
  // observable at all.
  const auto noise_peak = sync.acquire(pure_noise, 512, 0.001F);
  ASSERT_TRUE(noise_peak.has_value());
  EXPECT_LT(noise_peak->margin, 4.5F);
}

TEST(PreambleSync, RefinementReducesResidualAtFrameEnd) {
  // Long reference + CFO: the coarse two-half estimate leaves a residual
  // that matters at open-loop range; refine() must shrink the phase error
  // predicted far beyond the preamble.
  const dsp::cvec ref = random_reference(16384, 4);
  const float cfo = 8.45e-5F;
  const float phase = -1.1F;

  dsp::cvec channel_in = ref;
  channel::apply_phase(dsp::cspan_mut{channel_in}, phase);
  channel::apply_cfo(dsp::cspan_mut{channel_in}, cfo);
  dsp::cvec rx = channel::apply_delay(channel_in, 50, 50 + ref.size() + 64);
  channel::AwgnSource noise(9);
  noise.add_to(dsp::cspan_mut{rx}, 0.05);

  const PreambleSync sync(ref);
  auto coarse = sync.acquire(rx, 256);
  ASSERT_TRUE(coarse.has_value());
  const SyncEstimate fine = sync.refine(rx, *coarse);

  // Predicted phase error at 100k samples after frame start.
  const double horizon = 1e5;
  auto horizon_error = [&](const SyncEstimate& e) {
    const double predicted = e.phase + static_cast<double>(e.cfo) * horizon;
    const double truth = phase + static_cast<double>(cfo) * horizon;
    return std::abs(std::remainder(predicted - truth, 2.0 * std::numbers::pi));
  };
  EXPECT_LE(horizon_error(fine), horizon_error(*coarse) + 1e-3);
  EXPECT_LT(horizon_error(fine), 0.5);
  EXPECT_NEAR(fine.cfo, cfo, 6e-6F);
}

TEST(PreambleSync, DerotateInvertsImpairments) {
  dsp::cvec x = random_reference(512, 5);
  const dsp::cvec original = x;
  SyncEstimate est;
  est.frame_start = 0;
  est.phase = 0.9F;
  est.cfo = 3e-4F;
  channel::apply_phase(dsp::cspan_mut{x}, est.phase);
  channel::apply_cfo(dsp::cspan_mut{x}, est.cfo);
  PreambleSync::derotate(dsp::cspan_mut{x}, est);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0F, 2e-3F) << "i=" << i;
  }
}

TEST(PreambleSync, RejectsTinyReference) {
  EXPECT_THROW(PreambleSync(dsp::cvec(4)), std::invalid_argument);
}

TEST(PreambleSync, QualityDegradesWithJamming) {
  const dsp::cvec ref = random_reference(2048, 6);
  dsp::cvec rx = channel::apply_delay(ref, 10, 10 + ref.size() + 64);
  channel::AwgnSource jammer(11);
  dsp::cvec clean = rx;
  const PreambleSync sync(ref, 0.05F);
  const auto clean_est = sync.acquire(clean, 128);
  ASSERT_TRUE(clean_est.has_value());

  jammer.add_to(dsp::cspan_mut{rx}, 10.0);  // -10 dB SJR
  const auto jammed_est = sync.acquire(rx, 128);
  ASSERT_TRUE(jammed_est.has_value());
  EXPECT_LT(jammed_est->quality, clean_est->quality);
}

}  // namespace
}  // namespace bhss::sync
