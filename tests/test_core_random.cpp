// Unit tests for the shared random source: the transmitter/receiver
// lock-step property everything else depends on.

#include <gtest/gtest.h>

#include <vector>

#include "core/shared_random.hpp"

namespace bhss::core {
namespace {

TEST(SharedRandom, SameSeedSameStream) {
  SharedRandom a(123);
  SharedRandom b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SharedRandom, DifferentSeedsDiverge) {
  SharedRandom a(1);
  SharedRandom b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SharedRandom, NearbySeedsUncorrelated) {
  // splitmix64 seeding: seed and seed+1 give unrelated bit streams.
  SharedRandom a(1000);
  SharedRandom b(1001);
  int matching_bits = 0;
  for (int i = 0; i < 64; ++i) {
    matching_bits += __builtin_popcountll(~(a.next_u64() ^ b.next_u64()));
  }
  EXPECT_NEAR(matching_bits, 64 * 32, 400);
}

TEST(SharedRandom, UniformInRange) {
  SharedRandom rng(7);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / 10000.0, 0.5, 0.02);
}

TEST(SharedRandom, UniformIndexCoversRange) {
  SharedRandom rng(8);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
  EXPECT_EQ(rng.uniform_index(0), 0U);
}

TEST(SharedRandom, PickFollowsWeights) {
  SharedRandom rng(9);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.pick(weights)];
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.6, 0.02);
}

TEST(SharedRandom, PickDegenerateInputs) {
  SharedRandom rng(10);
  EXPECT_EQ(rng.pick({}), 0U);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(rng.pick(zeros), 0U);
  const std::vector<double> one = {0.0, 5.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.pick(one), 1U);
}

TEST(SharedRandom, ScramblerSeedNonZero) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SharedRandom rng(seed);
    EXPECT_NE(rng.derive_scrambler_seed(), 0U) << "seed " << seed;
  }
}

TEST(SharedRandom, ForFrameIsDeterministicAndFrameDependent) {
  SharedRandom a = SharedRandom::for_frame(555, 3);
  SharedRandom b = SharedRandom::for_frame(555, 3);
  SharedRandom c = SharedRandom::for_frame(555, 4);
  const std::uint64_t va = a.next_u64();
  EXPECT_EQ(va, b.next_u64());
  EXPECT_NE(va, c.next_u64());
}

}  // namespace
}  // namespace bhss::core
