// Tests for the parallel Monte-Carlo runtime: the fixed-shard thread
// pool's fork-join semantics, the cross-platform stability of the
// per-shard seed split (golden values), and the determinism contract —
// LinkStats from a ParallelLinkRunner are bit-identical for a fixed
// (seed, n_shards) no matter how many threads execute the shards.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/shared_random.hpp"
#include "runtime/parallel_link_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace bhss::runtime {
namespace {

// ----------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4U);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_shards(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1U);
  std::vector<int> hits(17, 0);  // plain vector: no other thread exists
  pool.parallel_for_shards(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 17);
}

TEST(ThreadPool, MoreShardsThanThreadsAndViceVersa) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for_shards(3, [&](std::size_t) { ++count; });  // fewer shards than threads
  EXPECT_EQ(count.load(), 3);
  count = 0;
  pool.parallel_for_shards(1000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ZeroShardsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for_shards(0, [](std::size_t) { FAIL() << "shard ran"; });
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for_shards(10, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 10);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  const auto job = [&](std::size_t i) {
    if (i == 5) throw std::runtime_error("shard 5 failed");
    ++completed;
  };
  EXPECT_THROW(pool.parallel_for_shards(16, job), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
  // The pool survives an exception and keeps serving jobs.
  std::atomic<int> count{0};
  pool.parallel_for_shards(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, ExceptionOnInlinePool) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for_shards(2, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(ThreadPool, ConcurrentThrowsSurfaceTheLowestShard) {
  // Two shards throw on every round. Which one *reaches* its throw first
  // depends on scheduling, but the rethrown exception must always come
  // from the lowest shard index — a failed run reports the same error on
  // every repeat.
  ThreadPool pool(4);
  for (int round = 0; round < 40; ++round) {
    try {
      pool.parallel_for_shards(16, [](std::size_t i) {
        if (i == 2) throw std::runtime_error("shard 2 failed");
        if (i == 9) throw std::runtime_error("shard 9 failed");
      });
      FAIL() << "expected parallel_for_shards to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 2 failed") << "round " << round;
    }
  }
}

// ----------------------------------------------------------------- seed split

TEST(SeedSplit, GoldenValuesAreStableAcrossPlatforms) {
  using core::SharedRandom;
  EXPECT_EQ(SharedRandom::split_seed(0, 0x0, 0), 0x238275BC38FCBE91ULL);
  EXPECT_EQ(SharedRandom::split_seed(7, 0x11, 0), 0x17A8F5D81CCFFA51ULL);
  EXPECT_EQ(SharedRandom::split_seed(7, 0x11, 1), 0x1B9281D19A71BCD1ULL);
  EXPECT_EQ(SharedRandom::split_seed(7, 0x22, 0), 0x83A324733EAC6E91ULL);
  EXPECT_EQ(SharedRandom::split_seed(99, 0x33, 5), 0x54A7AE062BF67CC7ULL);
  EXPECT_EQ(SharedRandom::split_seed(0xFFFFFFFFFFFFFFFFULL, 0x11, 15),
            0x9E560B8B017F322DULL);
}

TEST(SeedSplit, StreamsAndIndicesAreDecorrelated) {
  using core::SharedRandom;
  // No collisions across a block of (stream, index) pairs on one base.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.push_back(SharedRandom::split_seed(12345, stream, index));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(SeedSplit, ShardSeedTupleMatchesSplitSeed) {
  core::SimConfig cfg;
  cfg.channel_seed = 7;
  cfg.jammer.seed = 99;
  const core::ShardSeeds s0 = ParallelLinkRunner::shard_seeds(cfg, 0);
  EXPECT_EQ(s0.channel, core::SharedRandom::split_seed(7, 0x11, 0));
  EXPECT_EQ(s0.impairments, core::SharedRandom::split_seed(7, 0x22, 0));
  EXPECT_EQ(s0.jammer, core::SharedRandom::split_seed(99, 0x33, 0));
  const core::ShardSeeds s3 = ParallelLinkRunner::shard_seeds(cfg, 3);
  EXPECT_NE(s3.channel, s0.channel);
  EXPECT_NE(s3.impairments, s0.impairments);
  EXPECT_NE(s3.jammer, s0.jammer);
}

// ------------------------------------------------------- ParallelLinkRunner

core::SimConfig small_sim(core::JammerSpec::Kind jammer = core::JammerSpec::Kind::fixed_bandwidth) {
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 12;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = jammer;
  cfg.jammer.bandwidth_frac = 0.1;
  return cfg;
}

void expect_identical(const core::LinkStats& a, const core::LinkStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.total_symbols, b.total_symbols);
  EXPECT_EQ(a.airtime_s, b.airtime_s);          // bitwise: merge order is fixed
  EXPECT_EQ(a.throughput_bps, b.throughput_bps);
}

TEST(ParallelLinkRunner, ThreadCountDoesNotChangeTheStatistics) {
  const core::SimConfig cfg = small_sim();
  ParallelLinkRunner one({.n_threads = 1, .n_shards = 8});
  ParallelLinkRunner two({.n_threads = 2, .n_shards = 8});
  ParallelLinkRunner eight({.n_threads = 8, .n_shards = 8});

  const core::LinkStats s1 = one.run(cfg);
  const core::LinkStats s2 = two.run(cfg);
  const core::LinkStats s8 = eight.run(cfg);
  EXPECT_EQ(s1.packets, cfg.n_packets);
  expect_identical(s1, s2);
  expect_identical(s1, s8);
}

TEST(ParallelLinkRunner, RepeatedRunsAreIdentical) {
  const core::SimConfig cfg = small_sim(core::JammerSpec::Kind::hopping);
  ParallelLinkRunner runner({.n_threads = 4, .n_shards = 6});
  expect_identical(runner.run(cfg), runner.run(cfg));
}

TEST(ParallelLinkRunner, MorePacketsThanShardsAndFewer) {
  ParallelLinkRunner runner({.n_threads = 2, .n_shards = 16});
  core::SimConfig cfg = small_sim();
  cfg.n_packets = 5;  // most shards empty
  core::LinkStats s = runner.run(cfg);
  EXPECT_EQ(s.packets, 5U);
  EXPECT_GT(s.total_symbols, 0U);
  cfg.n_packets = 37;  // uneven split
  s = runner.run(cfg);
  EXPECT_EQ(s.packets, 37U);
}

TEST(ParallelLinkRunner, CleanChannelDeliversPackets) {
  core::SimConfig cfg = small_sim(core::JammerSpec::Kind::none);
  cfg.snr_db = 25.0;
  ParallelLinkRunner runner({.n_threads = 2, .n_shards = 4});
  const core::LinkStats s = runner.run(cfg);
  EXPECT_EQ(s.packets, cfg.n_packets);
  EXPECT_GT(s.ok, 0U);
  EXPECT_GT(s.throughput_bps, 0.0);
}

TEST(ParallelLinkRunner, ShardCountIsPartOfTheContract) {
  // Different n_shards = different random draws: statistically compatible
  // but not bit-identical. Guards against accidentally deriving seeds
  // from thread ids (which would make 8-vs-8 differ too).
  const core::SimConfig cfg = small_sim();
  ParallelLinkRunner a({.n_threads = 2, .n_shards = 4});
  ParallelLinkRunner b({.n_threads = 2, .n_shards = 5});
  const core::LinkStats sa = a.run(cfg);
  const core::LinkStats sb = b.run(cfg);
  EXPECT_EQ(sa.packets, sb.packets);
  // airtime is RNG-independent (same frames transmitted), so it must agree
  // even across shard counts.
  EXPECT_DOUBLE_EQ(sa.airtime_s, sb.airtime_s);
}

TEST(ParallelLinkRunner, BisectionRoutesThroughThePool) {
  core::SimConfig cfg = small_sim(core::JammerSpec::Kind::none);
  cfg.n_packets = 6;
  ParallelLinkRunner runner({.n_threads = 4, .n_shards = 6});
  const double snr = runner.min_snr_for_per(cfg, 0.5, -10.0, 45.0, 2.0);
  EXPECT_GE(snr, -10.0);
  EXPECT_LE(snr, 45.0);
  // Deterministic: the same bisection lands on the same answer.
  EXPECT_EQ(snr, runner.min_snr_for_per(cfg, 0.5, -10.0, 45.0, 2.0));
}

}  // namespace
}  // namespace bhss::runtime
