// Integration tests for the closed loop inside run_link_shard: the
// determinism contract with adaptation enabled (LinkStats and telemetry
// bit-identical at any thread count, kill-and-resume included), the
// epoch-0 invariant (an enabled-but-never-tripped loop is bit-identical
// to a disabled one), and the headline acceptance criterion — against
// each non-stationary adversary the adaptive link delivers at least as
// many packets as the static hop pattern.

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/link_simulator.hpp"
#include "obs/link_obs.hpp"
#include "runtime/campaign.hpp"
#include "runtime/checkpoint_journal.hpp"
#include "runtime/parallel_link_runner.hpp"

namespace bhss::runtime {
namespace {

/// Fast-acting loop sized for test-scale runs: 4-packet windows, one
/// jammed window trips, one clean window starts recovery.
adapt::AdaptConfig fast_loop() {
  adapt::AdaptConfig a;
  a.enabled = true;
  a.detector.window_packets = 4;
  a.detector.bad_fraction = 0.45;
  a.detector.min_bad = 2;
  a.detector.trip_windows = 1;
  a.detector.clear_windows = 2;
  a.fallback_windows = 2;
  a.recovery_windows = 1;
  return a;
}

core::SimConfig adaptive_sim(core::JammerSpec::Kind jammer) {
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 32;
  cfg.snr_db = 14.0;
  cfg.jnr_db = 30.0;
  cfg.jammer.kind = jammer;
  cfg.jammer.bandwidth_frac = 0.35;
  cfg.jammer.duty_period = 8192;
  cfg.jammer.duty_fraction = 0.5;
  cfg.adapt = fast_loop();
  return cfg;
}

void expect_identical(const core::LinkStats& a, const core::LinkStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
  EXPECT_EQ(a.total_symbols, b.total_symbols);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.airtime_s),
            std::bit_cast<std::uint64_t>(b.airtime_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.throughput_bps),
            std::bit_cast<std::uint64_t>(b.throughput_bps));
  EXPECT_EQ(a.sync_lost, b.sync_lost);
  EXPECT_EQ(a.reacquired, b.reacquired);
  EXPECT_EQ(a.filter_fallback, b.filter_fallback);
  EXPECT_EQ(a.adapt_transitions, b.adapt_transitions);
  EXPECT_EQ(a.adapt_jam_episodes, b.adapt_jam_episodes);
  EXPECT_EQ(a.adapt_fallbacks, b.adapt_fallbacks);
  EXPECT_EQ(a.adapt_recoveries, b.adapt_recoveries);
  EXPECT_EQ(a.adapt_windows_jammed, b.adapt_windows_jammed);
  EXPECT_EQ(a.adapt_packets_adapted, b.adapt_packets_adapted);
}

TEST(AdaptLink, ThreadCountDoesNotChangeTheStatistics) {
  const core::SimConfig cfg = adaptive_sim(core::JammerSpec::Kind::duty_cycle);
  ParallelLinkRunner one({.n_threads = 1, .n_shards = 4});
  ParallelLinkRunner eight({.n_threads = 8, .n_shards = 4});
  const core::LinkStats s1 = one.run(cfg);
  const core::LinkStats s8 = eight.run(cfg);
  // Not vacuous: the loop must actually have engaged in this run.
  EXPECT_GT(s1.adapt_transitions, 0U);
  EXPECT_GT(s1.adapt_packets_adapted, 0U);
  expect_identical(s1, s8);
}

TEST(AdaptLink, GoldenTracesAreBitIdenticalAcrossThreadCounts) {
  const core::SimConfig cfg = adaptive_sim(core::JammerSpec::Kind::duty_cycle);
  ParallelLinkRunner one({.n_threads = 1, .n_shards = 4});
  ParallelLinkRunner eight({.n_threads = 8, .n_shards = 4});
  std::vector<obs::ShardTelemetry> t1;
  std::vector<obs::ShardTelemetry> t8;
  (void)one.run(cfg, &t1);
  (void)eight.run(cfg, &t8);
  ASSERT_EQ(t1.size(), t8.size());

  std::size_t adapt_events = 0;
  for (std::size_t shard = 0; shard < t1.size(); ++shard) {
    EXPECT_EQ(obs::serialize_telemetry(t1[shard]), obs::serialize_telemetry(t8[shard]))
        << "shard " << shard;
    for (const obs::TraceEvent& ev : t1[shard].trace.events()) {
      if (ev.type == obs::TraceEventType::adapt_window ||
          ev.type == obs::TraceEventType::adapt_transition) {
        ++adapt_events;
      }
    }
  }
  EXPECT_GT(adapt_events, 0U) << "adaptation events must appear in the golden traces";
  EXPECT_EQ(obs::serialize_telemetry(obs::merge_telemetry(t1, t1.size())),
            obs::serialize_telemetry(obs::merge_telemetry(t8, t8.size())));
}

TEST(AdaptLink, AdaptationSurvivesKillAndResumeBitIdentically) {
  const core::SimConfig cfg = adaptive_sim(core::JammerSpec::Kind::duty_cycle);
  const std::string path = ::testing::TempDir() + "bhss_adapt_killresume_" +
                           std::to_string(::getpid()) + ".journal";
  std::remove(path.c_str());

  CampaignRunner reference({.n_threads = 2, .n_shards = 4});
  const core::LinkStats expected = reference.run_point("pt", cfg);
  EXPECT_GT(expected.adapt_transitions, 0U);

  {
    CheckpointJournal journal;
    journal.open(path, "unit", 2, "abc123", false);
    CampaignRunner runner({.n_threads = 8, .n_shards = 4}, &journal);
    expect_identical(runner.run_point("pt", cfg), expected);
  }
  // Simulate a SIGKILL that lost the journal tail: keep header + 2 of the
  // 4 shard records, then resume — the re-run shards must reproduce their
  // adaptation trajectories (counters included) exactly.
  {
    std::ifstream in(path, std::ios::binary);
    std::string kept;
    std::string line;
    for (std::size_t i = 0; i < 3 && std::getline(in, line); ++i) kept += line + "\n";
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << kept;
  }
  CheckpointJournal journal;
  journal.open(path, "unit", 2, "abc123", true);
  EXPECT_EQ(journal.replayed_records(), 2U);
  CampaignRunner resumed({.n_threads = 1, .n_shards = 4}, &journal);
  expect_identical(resumed.run_point("pt", cfg), expected);
  std::remove(path.c_str());
}

TEST(AdaptLink, UntrippedLoopIsBitIdenticalToDisabled) {
  // Clean channel: the detector never trips, every packet flies on plan
  // epoch 0, and the enabled run must be bit-identical to the disabled
  // one — the no-override code path is exactly the legacy path.
  core::SimConfig cfg = adaptive_sim(core::JammerSpec::Kind::none);
  cfg.snr_db = 25.0;
  ParallelLinkRunner runner({.n_threads = 2, .n_shards = 4});
  const core::LinkStats adaptive = runner.run(cfg);
  EXPECT_EQ(adaptive.adapt_transitions, 0U);
  EXPECT_EQ(adaptive.adapt_packets_adapted, 0U);
  cfg.adapt = {};
  ASSERT_FALSE(cfg.adapt.enabled);
  expect_identical(adaptive, runner.run(cfg));
}

// ------------------------------------------------ adaptive beats static

struct Adversary {
  const char* name;
  double jnr_db;  ///< contested operating point: degraded but not dead
  core::JammerSpec jammer;
};

class AdaptiveVsStatic : public ::testing::TestWithParam<Adversary> {};

TEST_P(AdaptiveVsStatic, AdaptiveDeliversAtLeastAsManyPackets) {
  // The acceptance criterion of the adapt layer: against each
  // non-stationary adversary, closing the loop must not lose packets
  // relative to the static configured hop pattern. 480 packets over 8
  // shards = 60 per shard = 15 detector windows, so the steady state
  // dominates the per-shard learning transient; the per-adversary JNR
  // keeps the static link degraded-but-alive (at the rail the comparison
  // is vacuous both ways).
  core::SimConfig cfg;
  cfg.n_packets = 480;
  cfg.snr_db = 16.0;
  cfg.jnr_db = GetParam().jnr_db;
  cfg.channel_seed = 7;
  cfg.jammer = GetParam().jammer;

  ParallelLinkRunner runner({.n_threads = 8, .n_shards = 8});
  const core::LinkStats fixed = runner.run(cfg);
  cfg.adapt = fast_loop();
  const core::LinkStats adaptive = runner.run(cfg);

  EXPECT_GT(fixed.per(), 0.0) << "operating point too easy: jammer is harmless";
  EXPECT_GT(adaptive.adapt_jam_episodes, 0U) << "loop never engaged";
  EXPECT_LE(adaptive.per(), fixed.per())
      << GetParam().name << ": static per " << fixed.per() << ", adaptive per "
      << adaptive.per();
}

std::vector<Adversary> adversaries() {
  std::vector<Adversary> out;
  {
    core::JammerSpec duty;
    duty.kind = core::JammerSpec::Kind::duty_cycle;
    duty.bandwidth_frac = 0.35;
    duty.duty_period = 8192;
    duty.duty_fraction = 0.5;
    out.push_back({"duty_cycle", 22.0, duty});
  }
  {
    core::JammerSpec sweep;
    sweep.kind = core::JammerSpec::Kind::band_sweep;
    sweep.sweep_lo = -0.2;
    sweep.sweep_hi = 0.2;
    sweep.sweep_steps = 8;
    sweep.dwell_samples = 4096;
    sweep.sweep_bw_frac = 0.08;
    out.push_back({"band_sweep", 22.0, sweep});
  }
  {
    core::JammerSpec est;
    est.kind = core::JammerSpec::Kind::estimating;
    est.estimation_hops = 32;
    out.push_back({"estimating", 20.0, est});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(NonStationaryJammers, AdaptiveVsStatic,
                         ::testing::ValuesIn(adversaries()),
                         [](const ::testing::TestParamInfo<Adversary>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace bhss::runtime
