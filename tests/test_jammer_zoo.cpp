// Unit tests for the non-stationary adversary zoo: the duty-cycled
// burst jammer (power concentration under a fixed average budget), the
// stepped band-sweep jammer (moving partial-band occupancy), the
// distribution-estimating jammer (histogram learning + forgetting), and
// the reactive jammer's parameterized estimation latency — including the
// dwell-shorter-than-latency degenerate case, which must resolve
// deterministically to "hop never seen".

#include <gtest/gtest.h>

#include <vector>

#include "core/contracts.hpp"
#include "dsp/psd.hpp"
#include "dsp/utils.hpp"
#include "jammer/band_sweep_jammer.hpp"
#include "jammer/duty_cycle_jammer.hpp"
#include "jammer/estimating_jammer.hpp"
#include "jammer/reactive_jammer.hpp"

namespace bhss::jammer {
namespace {

/// Centre frequency (cycles/sample) of the strongest PSD bin.
double peak_frequency(dsp::cspan x, std::size_t nfft = 256) {
  const dsp::fvec psd = dsp::welch_psd(x, nfft);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.size(); ++k) {
    if (psd[k] > psd[peak]) peak = k;
  }
  const double f = static_cast<double>(peak) / static_cast<double>(nfft);
  return f < 0.5 ? f : f - 1.0;
}

// ------------------------------------------------------- DutyCycleJammer

TEST(JammerZoo, DutyCycleKeepsUnitAveragePower) {
  DutyCycleJammer jam(0.25, 1024, 0.5, 11);
  const dsp::cvec x = jam.generate(64 * 1024);  // whole periods only
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.05);
}

TEST(JammerZoo, DutyCycleBurstsCarryTheConcentratedPower) {
  const double duty = 0.25;
  DutyCycleJammer jam(0.5, 4096, duty, 12);
  const dsp::cvec x = jam.generate(4096);
  const std::size_t on = 1024;  // round(4096 * 0.25)
  double burst_power = 0.0;
  for (std::size_t i = 0; i < on; ++i) burst_power += std::norm(x[i]);
  burst_power /= static_cast<double>(on);
  EXPECT_NEAR(burst_power, 1.0 / duty, 0.5);  // 1/duty during the burst
  for (std::size_t i = on; i < 4096; ++i) {
    ASSERT_EQ(x[i], dsp::cf{}) << "gap sample " << i << " must be exactly silent";
  }
}

TEST(JammerZoo, DutyCycleBurstPhaseContinuesAcrossCalls) {
  // Period 1024 at duty 0.5: on for [0, 512), silent for [512, 1024).
  // After a 300-sample first call the phase must carry over, putting the
  // silent gap at samples [212, 724) of the second call — exactly.
  DutyCycleJammer jam(0.25, 1024, 0.5, 13);
  (void)jam.generate(300);
  const dsp::cvec x = jam.generate(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    const std::size_t pos = (300 + i) % 1024;
    if (pos < 512) {
      ASSERT_NE(x[i], dsp::cf{}) << "burst sample " << i;
    } else {
      ASSERT_EQ(x[i], dsp::cf{}) << "gap sample " << i;
    }
  }
}

TEST(JammerZoo, DutyCycleRejectsDegenerateConfig) {
  EXPECT_THROW(DutyCycleJammer(0.25, 0, 0.5, 1), contract_violation);
  EXPECT_THROW(DutyCycleJammer(0.25, 1024, 0.0, 1), contract_violation);
  EXPECT_THROW(DutyCycleJammer(0.25, 1024, 1.5, 1), contract_violation);
}

// ------------------------------------------------------- BandSweepJammer

TEST(JammerZoo, BandSweepKeepsUnitPower) {
  BandSweepJammer jam(-0.2, 0.2, 8, 2048, 0.05, 21);
  const dsp::cvec x = jam.generate(8 * 2048);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.05);
}

TEST(JammerZoo, BandSweepMarchesBetweenTheEndpoints) {
  BandSweepJammer jam(-0.2, 0.2, 2, 8192, 0.05, 22);
  const dsp::cvec x = jam.generate(2 * 8192);
  const double f_first = peak_frequency(dsp::cspan{x}.subspan(0, 8192));
  const double f_second = peak_frequency(dsp::cspan{x}.subspan(8192, 8192));
  EXPECT_NEAR(f_first, -0.2, 0.05);
  EXPECT_NEAR(f_second, 0.2, 0.05);
}

TEST(JammerZoo, BandSweepWrapsAroundToTheFirstDwell) {
  BandSweepJammer jam(-0.15, 0.15, 4, 4096, 0.05, 23);
  (void)jam.generate(4 * 4096);  // one full sweep
  const dsp::cvec x = jam.generate(4096);  // first dwell of the next sweep
  EXPECT_NEAR(peak_frequency(x), -0.15, 0.05);
}

TEST(JammerZoo, BandSweepStepPhaseContinuesAcrossCalls) {
  // Half of dwell 0 in the first call: the second call must spend its
  // first half finishing dwell 0 at f_lo before stepping to f_hi.
  BandSweepJammer jam(-0.2, 0.2, 2, 8192, 0.05, 24);
  (void)jam.generate(4096);
  const dsp::cvec x = jam.generate(8192);
  EXPECT_NEAR(peak_frequency(dsp::cspan{x}.subspan(0, 4096)), -0.2, 0.05);
  EXPECT_NEAR(peak_frequency(dsp::cspan{x}.subspan(4096, 4096)), 0.2, 0.05);
}

TEST(JammerZoo, BandSweepRejectsDegenerateConfig) {
  EXPECT_THROW(BandSweepJammer(-0.5, 0.2, 4, 1024, 0.05, 1), contract_violation);
  EXPECT_THROW(BandSweepJammer(-0.2, 0.5, 4, 1024, 0.05, 1), contract_violation);
  EXPECT_THROW(BandSweepJammer(-0.2, 0.2, 0, 1024, 0.05, 1), contract_violation);
  EXPECT_THROW(BandSweepJammer(-0.2, 0.2, 4, 0, 0.05, 1), contract_violation);
}

// ----------------------------------------------------- EstimatingJammer

TEST(JammerZoo, EstimatingStartsWideAndOutputPrecedesTheUpdate) {
  EstimatingJammer jam({0.5, 1.0 / 64}, 8, 31);
  EXPECT_EQ(jam.target_index(), 0U);  // widest prior
  // Every observed hop is narrow, but this transmission's output must
  // still use the stale (wide) estimate — the update is strictly after.
  std::vector<ObservedHop> hops;
  for (std::size_t h = 0; h < 8; ++h) hops.push_back({h * 1024, 1.0 / 64});
  const dsp::cvec x = jam.generate(hops, 8192);
  const dsp::fvec psd = dsp::welch_psd(x, 256);
  EXPECT_GT(dsp::occupied_bandwidth(psd, 0.99), 0.3);  // still wide
  EXPECT_EQ(jam.target_index(), 1U);  // ... but the estimate matured
}

TEST(JammerZoo, EstimatingConvergesToTheModalBandwidth) {
  EstimatingJammer jam({0.5, 0.125, 1.0 / 64}, 8, 32);
  std::vector<ObservedHop> hops;
  for (std::size_t h = 0; h < 12; ++h) {
    hops.push_back({h * 512, (h % 4 == 0) ? 0.5 : 0.125});
  }
  (void)jam.generate(hops, 1024);
  EXPECT_EQ(jam.target_index(), 1U);
  EXPECT_EQ(jam.histogram()[0], 3U);
  EXPECT_EQ(jam.histogram()[1], 9U);
  // The next transmission is jammed at the learned modal bandwidth.
  const dsp::cvec x = jam.generate({}, 8192);
  const dsp::fvec psd = dsp::welch_psd(x, 256);
  EXPECT_NEAR(dsp::occupied_bandwidth(psd, 0.99), 0.125, 0.06);
}

TEST(JammerZoo, EstimatingObservationSnapsToClosestBandwidth) {
  EstimatingJammer jam({0.5, 0.125, 1.0 / 64}, 4, 33);
  const std::vector<ObservedHop> hops = {{0, 0.1}, {64, 0.1}};  // closest: 0.125
  (void)jam.generate(hops, 128);
  EXPECT_EQ(jam.histogram()[1], 2U);
}

TEST(JammerZoo, EstimatingForgetsByHalvingPastTheHorizon) {
  EstimatingJammer jam({0.5, 0.125}, 4, 34);
  std::vector<ObservedHop> hops;
  for (std::size_t h = 0; h < 9; ++h) hops.push_back({h * 64, 0.125});
  (void)jam.generate(hops, 64);  // 9 observations > 2 * 4: halve
  EXPECT_EQ(jam.histogram()[0], 0U);
  EXPECT_EQ(jam.histogram()[1], 4U);
  EXPECT_EQ(jam.target_index(), 1U);  // the estimate survives forgetting
}

TEST(JammerZoo, EstimatingKeepsUnitPower) {
  EstimatingJammer jam({0.5, 0.125}, 4, 35);
  const dsp::cvec x = jam.generate({}, 1 << 15);
  EXPECT_NEAR(dsp::mean_power(x), 1.0, 0.05);
}

// -------------------------------------- ReactiveJammer estimation latency

TEST(JammerZoo, ReactiveZeroEstimationLatencyReproducesLegacy) {
  // estimation_samples defaults to 0, and 0 must reproduce the historical
  // ideal-sensing jammer bit for bit (the golden traces depend on it).
  ReactiveJammer legacy({0.5, 1.0 / 64}, 1024, 41);
  ReactiveJammer explicit_zero({0.5, 1.0 / 64}, 1024, 41, 0);
  const std::vector<ObservedHop> hops = {{0, 0.5}, {4096, 1.0 / 64}};
  const dsp::cvec a = legacy.generate(hops, 16384);
  const dsp::cvec b = explicit_zero.generate(hops, 16384);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "sample " << i;
  }
}

TEST(JammerZoo, ReactiveEstimationLatencyDelaysTheReaction) {
  // Sensing (1024) + decision (1024): the switch lands at 2048, not 1024.
  ReactiveJammer jam({0.5, 1.0 / 64}, 1024, 42, 1024);
  const std::vector<ObservedHop> hops = {{0, 1.0 / 64}};
  const dsp::cvec x = jam.generate(hops, 16384);
  auto occupied = [&](std::size_t begin, std::size_t len) {
    const dsp::fvec psd = dsp::welch_psd(dsp::cspan{x}.subspan(begin, len), 256);
    return dsp::occupied_bandwidth(psd, 0.99);
  };
  EXPECT_GT(occupied(0, 2048), 0.3);    // wide until sensing + reaction elapse
  EXPECT_LT(occupied(4096, 8192), 0.1); // narrow afterwards
}

TEST(JammerZoo, ReactiveShortDwellIsNeverEstimated) {
  // The only hop dwells for 2048 < estimation_samples = 4096: the jammer
  // must deterministically ignore it — stay wide for the whole call AND
  // carry no estimate into the next transmission.
  ReactiveJammer jam({0.5, 1.0 / 64}, 0, 43, 4096);
  const std::vector<ObservedHop> hops = {{0, 1.0 / 64}};
  const dsp::cvec x = jam.generate(hops, 2048);
  {
    const dsp::fvec psd = dsp::welch_psd(x, 256);
    EXPECT_GT(dsp::occupied_bandwidth(psd, 0.99), 0.3);
  }
  const dsp::cvec next = jam.generate({}, 8192);
  const dsp::fvec psd = dsp::welch_psd(next, 256);
  EXPECT_GT(dsp::occupied_bandwidth(psd, 0.99), 0.3);  // no stale narrow estimate
}

TEST(JammerZoo, ReactiveEstimatesLongHopsAmongShortOnes) {
  // Hop 0 is too short to estimate, hop 1 is long enough: the jammer ends
  // the call carrying hop 1's bandwidth, not hop 0's.
  ReactiveJammer jam({0.5, 0.125, 1.0 / 64}, 0, 44, 1024);
  const std::vector<ObservedHop> hops = {{0, 1.0 / 64}, {512, 0.125}};
  (void)jam.generate(hops, 8192);  // hop 0 dwells 512 < 1024; hop 1 dwells 7680
  const dsp::cvec next = jam.generate({}, 8192);
  const dsp::fvec psd = dsp::welch_psd(next, 256);
  EXPECT_NEAR(dsp::occupied_bandwidth(psd, 0.99), 0.125, 0.06);
}

TEST(JammerZoo, ReactiveRequiresSortedHops) {
  ReactiveJammer jam({0.5}, 0, 45);
  const std::vector<ObservedHop> unsorted = {{4096, 0.5}, {0, 0.5}};
  EXPECT_THROW((void)jam.generate(unsorted, 8192), contract_violation);
}

}  // namespace
}  // namespace bhss::jammer
