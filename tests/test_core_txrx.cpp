// Unit tests for the BHSS transmitter and receiver pair: waveform
// bookkeeping, per-hop constant power, and frame round trips across sync
// modes, patterns and impairments.

#include <gtest/gtest.h>

#include <numbers>

#include "channel/link_channel.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "phy/frame.hpp"
#include "dsp/utils.hpp"

namespace bhss::core {
namespace {

std::vector<std::uint8_t> test_payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i * 29 + 3);
  return p;
}

SystemConfig hopping_config(HopPatternType type = HopPatternType::linear) {
  SystemConfig cfg;
  cfg.pattern = HopPattern::make(type, BandwidthSet::paper());
  return cfg;
}

TEST(Transmitter, WaveformLengthMatchesSchedule) {
  const BhssTransmitter tx(hopping_config());
  const Transmission t = tx.transmit(test_payload(8), 1);
  EXPECT_EQ(t.samples.size(), t.schedule.waveform_samples());
  EXPECT_EQ(t.symbols.size(), phy::FrameSpec::total_symbols(8));
  EXPECT_EQ(t.schedule.total_symbols, t.symbols.size());
}

TEST(Transmitter, ConstantPowerPerHop) {
  // §2: fixed power budget — every hop transmits at the same mean power
  // regardless of its bandwidth.
  const BhssTransmitter tx(hopping_config(HopPatternType::parabolic));
  const Transmission t = tx.transmit(test_payload(16), 2);
  for (const HopSegment& seg : t.schedule.segments) {
    const double p = dsp::mean_power(
        dsp::cspan{t.samples}.subspan(seg.start_sample, seg.n_samples));
    EXPECT_NEAR(p, 1.0, 1e-3) << "segment at " << seg.start_sample;
  }
}

TEST(Transmitter, DeterministicPerFrameCounter) {
  const BhssTransmitter tx(hopping_config());
  const Transmission a = tx.transmit(test_payload(8), 5);
  const Transmission b = tx.transmit(test_payload(8), 5);
  EXPECT_EQ(a.samples, b.samples);
  const Transmission c = tx.transmit(test_payload(8), 6);
  EXPECT_NE(a.samples, c.samples);
}

TEST(Transmitter, ChipStreamUnpredictableAcrossFrames) {
  // Same payload, different frame counters: the waveforms must differ even
  // where the schedules coincide (PN scrambling, §3).
  SystemConfig cfg = hopping_config();
  cfg.hopping = false;  // fix the schedule so only the scrambler differs
  const BhssTransmitter tx(cfg);
  const Transmission a = tx.transmit(test_payload(8), 1);
  const Transmission b = tx.transmit(test_payload(8), 2);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (std::abs(a.samples[i] - b.samples[i]) < 1e-6F) ++same;
  }
  EXPECT_LT(same, a.samples.size() / 2);
}

TEST(Receiver, GenieRoundTripOnCleanChannel) {
  for (auto type : {HopPatternType::linear, HopPatternType::exponential,
                    HopPatternType::parabolic}) {
    SystemConfig cfg = hopping_config(type);
    cfg.sync = SyncMode::genie;
    const BhssTransmitter tx(cfg);
    const BhssReceiver rx(cfg);
    channel::AwgnSource noise(33);
    const auto payload = test_payload(12);
    const Transmission t = tx.transmit(payload, 7);
    channel::LinkConfig link;
    link.snr_db = 20.0;
    link.tx_delay = 41;
    link.tail_pad = 64;
    const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
    const RxResult res = rx.receive(sig, 7, payload.size(), 0, 41);
    EXPECT_TRUE(res.crc_ok) << to_string(type);
    EXPECT_EQ(res.payload, payload) << to_string(type);
    EXPECT_EQ(res.symbols, t.symbols) << to_string(type);
  }
}

class FixedLevelRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FixedLevelRoundTrip, EveryBandwidthDecodes) {
  SystemConfig cfg = hopping_config();
  cfg.hopping = false;
  cfg.fixed_bw_index = GetParam();
  const BhssTransmitter tx(cfg);
  const BhssReceiver rx(cfg);
  channel::AwgnSource noise(44);
  const auto payload = test_payload(8);
  const Transmission t = tx.transmit(payload, 3);
  channel::LinkConfig link;
  link.snr_db = 15.0;
  link.tx_delay = 23;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  const RxResult res = rx.receive(sig, 3, payload.size(), 64, 23);
  EXPECT_TRUE(res.frame_detected);
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(res.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Levels, FixedLevelRoundTrip, ::testing::Range<std::size_t>(0, 7));

TEST(Receiver, PreambleRoundTripWithFullImpairments) {
  SystemConfig cfg = hopping_config(HopPatternType::parabolic);
  const BhssTransmitter tx(cfg);
  const BhssReceiver rx(cfg);
  channel::AwgnSource noise(55);
  const auto payload = test_payload(8);
  std::size_t ok = 0;
  for (std::uint64_t frame = 0; frame < 10; ++frame) {
    const Transmission t = tx.transmit(payload, frame);
    channel::LinkConfig link;
    link.snr_db = 18.0;
    link.tx_delay = 17 + 13 * frame;
    link.tail_pad = 64;
    link.phase = static_cast<float>(frame) * 0.61F - 2.9F;
    link.cfo = (static_cast<float>(frame % 5) - 2.0F) * 8e-5F;
    const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
    const RxResult res = rx.receive(sig, frame, payload.size(), link.tx_delay + 64);
    if (res.crc_ok && res.payload == payload) ++ok;
    EXPECT_TRUE(res.frame_detected) << "frame " << frame;
    if (res.frame_detected) {
      // Acquisition through the (filtered) correlation window is accurate
      // to a couple of samples; the matched filter absorbs the residue.
      EXPECT_NEAR(static_cast<double>(res.sync.frame_start),
                  static_cast<double>(link.tx_delay), 2.0)
          << "frame " << frame;
    }
  }
  EXPECT_GE(ok, 9U);
}

TEST(Receiver, MissingFrameReportsNotDetected) {
  SystemConfig cfg = hopping_config();
  const BhssReceiver rx(cfg);
  channel::AwgnSource noise(66);
  const dsp::cvec sig = noise.generate(20000, 1.0);
  const RxResult res = rx.receive(sig, 0, 8, 256);
  EXPECT_FALSE(res.frame_detected);
  EXPECT_FALSE(res.crc_ok);
  EXPECT_TRUE(res.payload.empty());
}

TEST(Receiver, WrongFrameCounterFailsToDecode) {
  // Without the right shared state (schedule + scrambler) the frame is
  // unreadable — the security property of the shared random source.
  SystemConfig cfg = hopping_config();
  const BhssTransmitter tx(cfg);
  const BhssReceiver rx(cfg);
  channel::AwgnSource noise(77);
  const auto payload = test_payload(8);
  const Transmission t = tx.transmit(payload, 10);
  channel::LinkConfig link;
  link.snr_db = 20.0;
  link.tx_delay = 30;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  const RxResult res = rx.receive(sig, 11, payload.size(), 96, 30);
  EXPECT_FALSE(res.crc_ok);
}

TEST(Receiver, WrongSeedFailsToDecode) {
  SystemConfig cfg = hopping_config();
  const BhssTransmitter tx(cfg);
  SystemConfig eve_cfg = cfg;
  eve_cfg.seed = cfg.seed + 1;  // the jammer/eavesdropper's guess
  const BhssReceiver eve(eve_cfg);
  channel::AwgnSource noise(88);
  const auto payload = test_payload(8);
  const Transmission t = tx.transmit(payload, 0);
  channel::LinkConfig link;
  link.snr_db = 25.0;
  link.tx_delay = 30;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  const RxResult res = eve.receive(sig, 0, payload.size(), 96, 30);
  EXPECT_FALSE(res.crc_ok);
}

TEST(Receiver, HopDiagnosticsMatchSchedule) {
  SystemConfig cfg = hopping_config();
  cfg.sync = SyncMode::genie;
  const BhssTransmitter tx(cfg);
  const BhssReceiver rx(cfg);
  channel::AwgnSource noise(99);
  const auto payload = test_payload(8);
  const Transmission t = tx.transmit(payload, 4);
  channel::LinkConfig link;
  link.snr_db = 20.0;
  link.tx_delay = 10;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  const RxResult res = rx.receive(sig, 4, payload.size(), 0, 10);
  ASSERT_EQ(res.hops.size(), t.schedule.segments.size());
  for (std::size_t i = 0; i < res.hops.size(); ++i) {
    EXPECT_EQ(res.hops[i].bw_index, t.schedule.segments[i].bw_index);
  }
}

}  // namespace
}  // namespace bhss::core
