// Unit tests for the BandwidthSet: the paper's seven-bandwidth plan.

#include <gtest/gtest.h>

#include "core/bandwidth_set.hpp"

namespace bhss::core {
namespace {

TEST(BandwidthSet, PaperConfiguration) {
  const BandwidthSet b = BandwidthSet::paper();
  ASSERT_EQ(b.size(), 7U);
  EXPECT_DOUBLE_EQ(b.sample_rate_hz(), 20e6);
  // §6.2: "we hop between a set of seven pre-defined bandwidths: 10, 5,
  // 2.5, 1.25, 0.625, 0.312, and 0.156 MHz".
  const double expected[] = {10e6, 5e6, 2.5e6, 1.25e6, 0.625e6, 0.3125e6, 0.15625e6};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(b.bandwidth_hz(i), expected[i]) << "level " << i;
  }
  // "The bandwidth hopping range is therefore 64."
  EXPECT_DOUBLE_EQ(b.hopping_range(), 64.0);
}

TEST(BandwidthSet, FracIsInverseSps) {
  const BandwidthSet b = BandwidthSet::paper();
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.bandwidth_frac(i), 1.0 / static_cast<double>(b.sps(i)));
    EXPECT_DOUBLE_EQ(b.bandwidth_frac(i) * b.sample_rate_hz(), b.bandwidth_hz(i));
  }
}

TEST(BandwidthSet, OrderingConventions) {
  const BandwidthSet b = BandwidthSet::paper();
  EXPECT_EQ(b.widest_index(), 0U);
  EXPECT_EQ(b.narrowest_index(), 6U);
  EXPECT_GT(b.bandwidth_hz(b.widest_index()), b.bandwidth_hz(b.narrowest_index()));
}

TEST(BandwidthSet, BandwidthFracsVector) {
  const BandwidthSet b = BandwidthSet::small();
  const std::vector<double> fracs = b.bandwidth_fracs();
  ASSERT_EQ(fracs.size(), 4U);
  EXPECT_DOUBLE_EQ(fracs[0], 0.5);
  EXPECT_DOUBLE_EQ(fracs[3], 1.0 / 16.0);
}

TEST(BandwidthSet, Validation) {
  EXPECT_THROW(BandwidthSet(0.0, {2, 4}), std::invalid_argument);
  EXPECT_THROW(BandwidthSet(1e6, {}), std::invalid_argument);
  EXPECT_THROW(BandwidthSet(1e6, {3}), std::invalid_argument);        // odd sps
  EXPECT_THROW(BandwidthSet(1e6, {0}), std::invalid_argument);
  EXPECT_THROW(BandwidthSet(1e6, {4, 2}), std::invalid_argument);     // not ascending
  EXPECT_THROW(BandwidthSet(1e6, {2, 2}), std::invalid_argument);     // duplicate
  EXPECT_THROW((void)BandwidthSet::paper().sps(7), std::out_of_range);
}

}  // namespace
}  // namespace bhss::core
