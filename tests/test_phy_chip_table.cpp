// Unit tests for the 16-ary chip table: structure (rotation / conjugation
// rules) and quasi-orthogonality, which the despreader's argmax relies on.

#include <gtest/gtest.h>

#include "phy/chip_table.hpp"

namespace bhss::phy {
namespace {

TEST(ChipTable, ChipsAreAntipodal) {
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t s = 0; s < kNumSymbols; ++s) {
    for (float c : t.sequence(s)) {
      EXPECT_TRUE(c == 1.0F || c == -1.0F);
    }
  }
}

TEST(ChipTable, AutoCorrelationIsFull) {
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t s = 0; s < kNumSymbols; ++s) {
    EXPECT_EQ(t.cross_correlation(s, s), 32) << "symbol " << int(s);
  }
}

TEST(ChipTable, RowsAreDistinct) {
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t a = 0; a < kNumSymbols; ++a) {
    for (std::uint8_t b = 0; b < kNumSymbols; ++b) {
      if (a == b) continue;
      EXPECT_LT(t.cross_correlation(a, b), 32) << int(a) << " vs " << int(b);
    }
  }
}

TEST(ChipTable, QuasiOrthogonalCrossCorrelation) {
  // 802.15.4-style sequences: cross-correlation magnitude far below the
  // autocorrelation so a noisy argmax stays reliable. The standard's set
  // keeps |cc| <= 8 between distinct rows (tolerate 12 for safety).
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t a = 0; a < kNumSymbols; ++a) {
    for (std::uint8_t b = 0; b < kNumSymbols; ++b) {
      if (a == b) continue;
      EXPECT_LE(std::abs(t.cross_correlation(a, b)), 12) << int(a) << " vs " << int(b);
    }
  }
}

TEST(ChipTable, EvenSymbolsAreCyclicRotations) {
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t s = 1; s < 8; ++s) {
    const ChipSequence& base = t.sequence(0);
    const ChipSequence& row = t.sequence(s);
    for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
      EXPECT_EQ(row[c], base[(c + 4 * s) % kChipsPerSymbol])
          << "symbol " << int(s) << " chip " << c;
    }
  }
}

TEST(ChipTable, UpperSymbolsInvertOddChips) {
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t s = 0; s < 8; ++s) {
    const ChipSequence& lower = t.sequence(s);
    const ChipSequence& upper = t.sequence(static_cast<std::uint8_t>(s + 8));
    for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
      if (c % 2 == 0) {
        EXPECT_EQ(upper[c], lower[c]);
      } else {
        EXPECT_EQ(upper[c], -lower[c]);
      }
    }
  }
}

TEST(ChipTable, BalancedSequences) {
  // Each row of an m-sequence rotation has 17 ones / 15 zeros (sum = +-2).
  const ChipTable& t = ChipTable::instance();
  for (std::uint8_t s = 0; s < 8; ++s) {
    float sum = 0.0F;
    for (float c : t.sequence(s)) sum += c;
    EXPECT_LE(std::abs(sum), 2.0F) << "symbol " << int(s);
  }
}

}  // namespace
}  // namespace bhss::phy
