// Unit tests for the hopping patterns, reproducing Table 1 and the
// §6.4.1 bandwidth/throughput figures, plus the Monte-Carlo optimiser.

#include <gtest/gtest.h>

#include <numeric>

#include "core/hop_pattern.hpp"
#include "core/pattern_optimizer.hpp"
#include "core/shared_random.hpp"

namespace bhss::core {
namespace {

TEST(HopPattern, Table1Linear) {
  const HopPattern p = HopPattern::make(HopPatternType::linear, BandwidthSet::paper());
  for (double prob : p.probabilities()) {
    EXPECT_NEAR(prob, 1.0 / 7.0, 1e-12);  // Table 1: 14.3 % each
  }
}

TEST(HopPattern, Table1Exponential) {
  const HopPattern p = HopPattern::make(HopPatternType::exponential, BandwidthSet::paper());
  // Table 1: 50.4, 25.2, 12.6, 6.3, 3.1, 1.6, 0.8 %.
  const double expected[] = {0.504, 0.252, 0.126, 0.063, 0.031, 0.016, 0.008};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(p.probabilities()[i], expected[i], 0.002) << "level " << i;
  }
}

TEST(HopPattern, Table1Parabolic) {
  const HopPattern p = HopPattern::make(HopPatternType::parabolic, BandwidthSet::paper());
  // Table 1: 27.1, 15.8, 6.3, 0.1, 1.3, 22.0, 27.4 %.
  const double expected[] = {0.271, 0.158, 0.063, 0.001, 0.013, 0.220, 0.274};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(p.probabilities()[i], expected[i], 1e-6) << "level " << i;
  }
}

TEST(HopPattern, AverageBandwidthMatchesPaper) {
  // §6.4.1: 2.83 MHz (linear), 6.72 MHz (exponential), 3.77 MHz (parabolic).
  const BandwidthSet bands = BandwidthSet::paper();
  EXPECT_NEAR(HopPattern::make(HopPatternType::linear, bands).average_bandwidth_hz(), 2.83e6,
              0.02e6);
  EXPECT_NEAR(HopPattern::make(HopPatternType::exponential, bands).average_bandwidth_hz(),
              6.72e6, 0.02e6);
  EXPECT_NEAR(HopPattern::make(HopPatternType::parabolic, bands).average_bandwidth_hz(), 3.77e6,
              0.02e6);
}

TEST(HopPattern, AverageThroughputMatchesPaper) {
  // §6.4.1: 354 kb/s (linear), 840 kb/s (exponential), 471 kb/s (parabolic).
  const BandwidthSet bands = BandwidthSet::paper();
  EXPECT_NEAR(HopPattern::make(HopPatternType::linear, bands).average_throughput_bps(), 354e3,
              3e3);
  EXPECT_NEAR(HopPattern::make(HopPatternType::exponential, bands).average_throughput_bps(),
              840e3, 3e3);
  EXPECT_NEAR(HopPattern::make(HopPatternType::parabolic, bands).average_throughput_bps(),
              471e3, 3e3);
}

TEST(HopPattern, ExponentialEqualisesTimeShare) {
  // With equal-symbol hops, time per hop ~ 1/B; p ~ B makes p_i / B_i
  // constant = equal time at every bandwidth.
  const HopPattern p = HopPattern::make(HopPatternType::exponential, BandwidthSet::paper());
  const double ref = p.probabilities()[0] / p.bands().bandwidth_hz(0);
  for (std::size_t i = 1; i < 7; ++i) {
    EXPECT_NEAR(p.probabilities()[i] / p.bands().bandwidth_hz(i), ref, ref * 1e-9);
  }
}

TEST(HopPattern, TimeWeightedThroughputBelowDrawWeighted) {
  // Narrow hops last longer, so the time-weighted rate is lower than the
  // paper's per-draw average for every non-degenerate pattern.
  for (auto type : {HopPatternType::linear, HopPatternType::exponential,
                    HopPatternType::parabolic}) {
    const HopPattern p = HopPattern::make(type, BandwidthSet::paper());
    EXPECT_LT(p.time_weighted_throughput_bps(), p.average_throughput_bps())
        << to_string(type);
  }
}

TEST(HopPattern, ProbabilitiesSumToOne) {
  for (auto type : {HopPatternType::linear, HopPatternType::exponential,
                    HopPatternType::parabolic}) {
    const HopPattern p = HopPattern::make(type, BandwidthSet::paper());
    const double sum =
        std::accumulate(p.probabilities().begin(), p.probabilities().end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << to_string(type);
  }
}

TEST(HopPattern, DrawMatchesDistribution) {
  const HopPattern p = HopPattern::make(HopPatternType::exponential, BandwidthSet::paper());
  SharedRandom rng(77);
  std::vector<int> counts(7, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[p.draw(rng)];
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), p.probabilities()[i], 0.01)
        << "level " << i;
  }
}

TEST(HopPattern, FixedAlwaysDrawsSameLevel) {
  const HopPattern p = HopPattern::fixed(BandwidthSet::paper(), 3);
  SharedRandom rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.draw(rng), 3U);
  EXPECT_THROW(HopPattern::fixed(BandwidthSet::paper(), 7), std::invalid_argument);
}

TEST(HopPattern, CustomNormalises) {
  const HopPattern p = HopPattern::custom(BandwidthSet::small(), {2.0, 2.0, 2.0, 2.0});
  for (double prob : p.probabilities()) EXPECT_NEAR(prob, 0.25, 1e-12);
  EXPECT_THROW(HopPattern::custom(BandwidthSet::small(), {1.0}), std::invalid_argument);
  EXPECT_THROW(HopPattern::custom(BandwidthSet::small(), {0, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(HopPattern::custom(BandwidthSet::small(), {-1, 1, 1, 1}), std::invalid_argument);
}

TEST(HopPattern, ParabolicGeneralisesToOtherSetSizes) {
  const HopPattern p = HopPattern::make(HopPatternType::parabolic, BandwidthSet::small());
  // Edge-weighted: the extreme levels get more mass than the middle.
  EXPECT_GT(p.probabilities().front(), p.probabilities()[1]);
  EXPECT_GT(p.probabilities().back(), p.probabilities()[2]);
}

TEST(PatternOptimizer, ObjectiveRanksParabolicAboveOthers) {
  // §6.4.1: the parabolic pattern maximises the minimum expected power
  // advantage over all jammer bandwidths. Under the analytical objective
  // it must beat linear and exponential.
  const BandwidthSet bands = BandwidthSet::paper();
  const double rho = 100.0;
  const double s2 = 0.01;
  const double lin = min_advantage_db(HopPattern::make(HopPatternType::linear, bands), rho, s2);
  const double exp_ =
      min_advantage_db(HopPattern::make(HopPatternType::exponential, bands), rho, s2);
  const double par =
      min_advantage_db(HopPattern::make(HopPatternType::parabolic, bands), rho, s2);
  EXPECT_GT(par, lin);
  EXPECT_GT(par, exp_);
}

TEST(PatternOptimizer, OptimizedBeatsNamedPatterns) {
  const BandwidthSet bands = BandwidthSet::paper();
  OptimizerConfig cfg;
  cfg.random_draws = 4000;
  cfg.refine_steps = 4000;
  const HopPattern best = optimize_max_min_advantage(bands, cfg);
  const double best_score = min_advantage_db(best, cfg.jammer_power, cfg.noise_var);
  for (auto type : {HopPatternType::linear, HopPatternType::exponential,
                    HopPatternType::parabolic}) {
    const double score = min_advantage_db(HopPattern::make(type, bands), cfg.jammer_power,
                                          cfg.noise_var);
    EXPECT_GE(best_score + 1e-9, score) << to_string(type);
  }
}

TEST(PatternOptimizer, OptimumFavoursBandEdges) {
  // The qualitative property behind the "parabolic" name.
  OptimizerConfig cfg;
  cfg.random_draws = 4000;
  cfg.refine_steps = 4000;
  const HopPattern best = optimize_max_min_advantage(BandwidthSet::paper(), cfg);
  const auto& p = best.probabilities();
  const double edges = p.front() + p.back();
  const double middle = p[2] + p[3] + p[4];
  EXPECT_GT(edges, middle);
}

TEST(ExpectedImprovement, MatchedJammerGivesNoGainAtThatHop) {
  const BandwidthSet bands = BandwidthSet::paper();
  const HopPattern fixed = HopPattern::fixed(bands, 0);
  // Jammer matched to the only hop bandwidth: expected improvement == 1.
  EXPECT_NEAR(expected_improvement(fixed, bands.bandwidth_frac(0), 100.0, 0.01), 1.0, 1e-9);
}

}  // namespace
}  // namespace bhss::core
