// Unit tests for the §4.2 control logic: jammer estimation and filter
// selection across the jammer/signal bandwidth grid.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.hpp"
#include "core/control_logic.hpp"
#include "core/transmitter.hpp"
#include "dsp/utils.hpp"
#include "jammer/noise_jammer.hpp"

namespace bhss::core {
namespace {

/// A received-slice builder: clean BHSS waveform at one bandwidth level,
/// plus optional jammer and noise at configurable powers.
dsp::cvec make_slice(const BandwidthSet& bands, std::size_t level, double snr_db,
                     double jnr_db, double jam_bw, std::uint64_t seed) {
  SystemConfig sys;
  sys.pattern = HopPattern::fixed(bands, level);
  sys.hopping = false;
  sys.fixed_bw_index = level;
  const BhssTransmitter tx(sys);
  const std::vector<std::uint8_t> payload(16, 0x5A);
  dsp::cvec wave = tx.transmit(payload, seed).samples;
  dsp::scale_to_power(dsp::cspan_mut{wave}, dsp::db_to_linear(snr_db));
  if (jnr_db > -100.0) {
    jammer::NoiseJammer jam(jam_bw, seed + 1);
    const dsp::cvec j = jam.generate(wave.size());
    const auto g = static_cast<float>(std::sqrt(dsp::db_to_linear(jnr_db)));
    for (std::size_t i = 0; i < wave.size(); ++i) wave[i] += g * j[i];
  }
  channel::AwgnSource noise(seed + 2);
  noise.add_to(dsp::cspan_mut{wave}, 1.0);
  return wave;
}

class CleanSignalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CleanSignalSweep, NoJammerMeansNoFilter) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const dsp::cvec slice = make_slice(bands, GetParam(), 15.0, -300.0, 1.0, 10);
  const FilterDecision d = logic.decide(slice, GetParam());
  EXPECT_EQ(d.kind, FilterDecision::Kind::none) << "level " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Levels, CleanSignalSweep, ::testing::Range<std::size_t>(0, 7));

TEST(ControlLogic, NarrowbandJammerTriggersExcision) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  // Signal at 10 MHz (level 0, frac 0.5); jammer at 1/32 of Rs — well
  // inside the signal band.
  const dsp::cvec slice = make_slice(bands, 0, 15.0, 25.0, 1.0 / 32.0, 20);
  const FilterDecision d = logic.decide(slice, 0);
  EXPECT_EQ(d.kind, FilterDecision::Kind::excision);
  EXPECT_FALSE(d.taps.empty());
  EXPECT_EQ(d.group_delay, d.taps.size() / 2);
  EXPECT_GT(d.inband_peak_over_median_db, 7.0);
}

TEST(ControlLogic, WidebandJammerTriggersLowpass) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  // Signal at 2.5 MHz (level 2, frac 1/8); jammer at half the sampling
  // rate — four times wider.
  const dsp::cvec slice = make_slice(bands, 2, 15.0, 25.0, 0.5, 30);
  const FilterDecision d = logic.decide(slice, 2);
  EXPECT_EQ(d.kind, FilterDecision::Kind::lowpass);
  EXPECT_FALSE(d.taps.empty());
}

TEST(ControlLogic, MatchedJammerMeansNoFilter) {
  // Eq. (10): when Bj ~ Bp no filter can help; the logic must not excise.
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const dsp::cvec slice = make_slice(bands, 2, 15.0, 25.0, bands.bandwidth_frac(2), 40);
  const FilterDecision d = logic.decide(slice, 2);
  EXPECT_NE(d.kind, FilterDecision::Kind::excision);
}

TEST(ControlLogic, WeakJammerLeftToDespreadingGain) {
  // §4.2: "the power of the jammer is in the same order of magnitude as
  // the signal: pre-filtering is not needed".
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const dsp::cvec slice = make_slice(bands, 0, 20.0, 2.0, 1.0 / 32.0, 50);
  const FilterDecision d = logic.decide(slice, 0);
  EXPECT_EQ(d.kind, FilterDecision::Kind::none);
}

TEST(ControlLogic, ForcedPathsAlwaysProduceTaps) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const dsp::cvec slice = make_slice(bands, 1, 10.0, -300.0, 1.0, 60);
  const FilterDecision lp = logic.force_lowpass(1);
  EXPECT_EQ(lp.kind, FilterDecision::Kind::lowpass);
  EXPECT_FALSE(lp.taps.empty());
  const FilterDecision ex = logic.force_excision(slice, 1);
  EXPECT_EQ(ex.kind, FilterDecision::Kind::excision);
  EXPECT_EQ(ex.taps.size(), logic.config().psd_fft);
}

TEST(ControlLogic, LowpassBankCutoffTracksBandwidth) {
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  for (std::size_t i = 0; i < bands.size(); ++i) {
    EXPECT_NEAR(logic.lpf_cutoff_frac(i),
                logic.config().lpf_cutoff_factor * bands.bandwidth_frac(i), 1e-12);
  }
}

TEST(ControlLogic, EstimatorAblationStillDetects) {
  // Bartlett and single-periodogram estimators must reach the same
  // decision on a strong narrow-band jammer (they are noisier, not blind).
  const BandwidthSet bands = BandwidthSet::paper();
  for (PsdMethod method : {PsdMethod::welch, PsdMethod::bartlett, PsdMethod::periodogram}) {
    ControlLogicConfig cfg;
    cfg.psd_method = method;
    const ControlLogic logic(cfg, bands);
    const dsp::cvec slice = make_slice(bands, 0, 15.0, 30.0, 1.0 / 64.0, 70);
    const FilterDecision d = logic.decide(slice, 0);
    EXPECT_EQ(d.kind, FilterDecision::Kind::excision)
        << "method " << static_cast<int>(method);
  }
}

TEST(ControlLogic, RejectsBadPsdSize) {
  ControlLogicConfig cfg;
  cfg.psd_fft = 100;
  EXPECT_THROW(ControlLogic(cfg, BandwidthSet::paper()), std::invalid_argument);
}

TEST(ControlLogic, DegeneratePsdFallsBackToNoFilterInsteadOfThrowing) {
  // An all-zero hop slice (deep fade, scrubbed burst, muted front end) has
  // a degenerate PSD: eq. (3)'s 1/sqrt(P) whitening taps would be Inf.
  // The validated decision path must fall back to Kind::none and flag the
  // fallback rather than synthesise non-finite taps or throw out of the
  // receiver's per-hop loop.
  const BandwidthSet bands = BandwidthSet::paper();
  const ControlLogic logic({}, bands);
  const dsp::cvec silence(8192, dsp::cf{0.0F, 0.0F});

  const FilterDecision adaptive = logic.decide(silence, 0);
  EXPECT_EQ(adaptive.kind, FilterDecision::Kind::none);
  EXPECT_TRUE(adaptive.degenerate_psd);
  EXPECT_TRUE(adaptive.taps.empty());

  const FilterDecision forced = logic.force_excision(silence, 0);
  EXPECT_EQ(forced.kind, FilterDecision::Kind::none);
  EXPECT_TRUE(forced.degenerate_psd);

  // A healthy slice keeps the flag clear.
  const dsp::cvec slice = make_slice(bands, 0, 15.0, -300.0, 1.0, 21);
  EXPECT_FALSE(logic.decide(slice, 0).degenerate_psd);
}

TEST(MskPsdShape, UnitAtDcAndDecaying) {
  EXPECT_NEAR(msk_psd_shape(0.0, 8.0), 1.0, 1e-12);
  // Monotone decreasing over the main lobe.
  double prev = 1.0;
  for (double f = 0.0; f < 0.7 / 8.0; f += 0.01 / 8.0) {
    const double v = msk_psd_shape(f, 8.0);
    EXPECT_LE(v, prev + 1e-9);
    prev = v;
  }
  // Null at f = 0.75 / (2 sps)... the half-sine null: u = f*sps = 0.75.
  EXPECT_NEAR(msk_psd_shape(0.75 / 8.0, 8.0), 0.0, 1e-6);
  // Continuous through the |u| = 1/4 removable singularity.
  const double eps = 1e-6;
  EXPECT_NEAR(msk_psd_shape(0.25 / 8.0 - eps, 8.0), msk_psd_shape(0.25 / 8.0 + eps, 8.0),
              1e-3);
}

}  // namespace
}  // namespace bhss::core
