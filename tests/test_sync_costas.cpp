// Unit tests for the QPSK Costas loop: convergence from static phase
// offsets, CFO tracking, lock robustness vs SNR, and reset semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "channel/awgn.hpp"
#include "channel/impairments.hpp"
#include "dsp/pulse.hpp"
#include "phy/modulator.hpp"
#include "sync/costas.hpp"

namespace bhss::sync {
namespace {

/// A long half-sine QPSK waveform (what the loop sees in the receiver).
dsp::cvec qpsk_waveform(std::size_t n_chips, std::size_t sps, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<float> chips(n_chips);
  for (float& c : chips) c = (rng() & 1U) ? 1.0F : -1.0F;
  const phy::QpskModulator mod(sps);
  return mod.modulate(chips);
}

class PhaseOffsetSweep : public ::testing::TestWithParam<float> {};

TEST_P(PhaseOffsetSweep, ConvergesWithinPullInRange) {
  dsp::cvec x = qpsk_waveform(4096, 4, 1);
  channel::apply_phase(dsp::cspan_mut{x}, GetParam());
  channel::AwgnSource noise(2);
  noise.add_to(dsp::cspan_mut{x}, 0.25 / 4.0);  // ~10 dB per-sample SNR

  CostasLoop loop(0.005F);
  loop.process(dsp::cspan_mut{x});
  const float residual =
      std::remainder(loop.phase() - GetParam(), std::numbers::pi_v<float> / 2.0F);
  // Locks to the offset (modulo the QPSK pi/2 ambiguity).
  EXPECT_NEAR(std::remainder(loop.phase() - GetParam(), 2.0F * std::numbers::pi_v<float>),
              0.0F, 0.1F)
      << "offset " << GetParam();
  (void)residual;
}

INSTANTIATE_TEST_SUITE_P(Offsets, PhaseOffsetSweep,
                         ::testing::Values(-0.6F, -0.3F, -0.1F, 0.0F, 0.1F, 0.3F, 0.6F));

TEST(CostasLoop, TracksSmallCfo) {
  const float cfo = 5e-4F;
  dsp::cvec x = qpsk_waveform(16384, 4, 3);
  channel::apply_cfo(dsp::cspan_mut{x}, cfo);
  channel::AwgnSource noise(4);
  noise.add_to(dsp::cspan_mut{x}, 0.025);

  CostasLoop loop(0.01F);
  loop.process(dsp::cspan_mut{x});
  EXPECT_NEAR(loop.frequency(), cfo, 1e-4F);
}

TEST(CostasLoop, OutputConstellationIsDerotated) {
  const float phase = 0.5F;
  dsp::cvec x = qpsk_waveform(8192, 4, 5);
  const dsp::cvec clean = x;
  channel::apply_phase(dsp::cspan_mut{x}, phase);
  CostasLoop loop(0.01F);
  loop.process(dsp::cspan_mut{x});
  // After convergence (skip the first quarter), output matches the clean
  // waveform.
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = x.size() / 4; i < x.size(); ++i) {
    err += std::norm(x[i] - clean[i]);
    ref += std::norm(clean[i]);
  }
  EXPECT_LT(err / ref, 0.01);
}

TEST(CostasLoop, HoldsLockAtZeroDbPerSampleSinr) {
  // The receiver's operating point under heavy (filtered) jamming.
  int slips = 0;
  for (unsigned trial = 0; trial < 10; ++trial) {
    dsp::cvec x = qpsk_waveform(16384, 4, 100 + trial);
    channel::AwgnSource noise(200 + trial);
    noise.add_to(dsp::cspan_mut{x}, 1.0 / 4.0);  // per-sample SINR 0 dB
    CostasLoop loop(0.002F);
    loop.process(dsp::cspan_mut{x});
    if (std::abs(loop.phase()) > std::numbers::pi_v<float> / 4.0F) ++slips;
  }
  EXPECT_LE(slips, 1);
}

TEST(CostasLoop, SlipsAtStronglyNegativeSinr) {
  // Documented failure mode (§6.1: loops must run after the filter): at
  // -10 dB per-sample the decision-directed loop walks off.
  int slips = 0;
  for (unsigned trial = 0; trial < 10; ++trial) {
    dsp::cvec x = qpsk_waveform(32768, 4, 300 + trial);
    channel::AwgnSource noise(400 + trial);
    noise.add_to(dsp::cspan_mut{x}, 10.0 / 4.0);
    CostasLoop loop(0.002F);
    loop.process(dsp::cspan_mut{x});
    if (std::abs(std::remainder(loop.phase(), 2.0F * std::numbers::pi_v<float>)) > 0.3F)
      ++slips;
  }
  EXPECT_GE(slips, 3);
}

TEST(CostasLoop, ResetClearsState) {
  dsp::cvec x = qpsk_waveform(1024, 4, 6);
  channel::apply_phase(dsp::cspan_mut{x}, 1.0F);
  CostasLoop loop(0.01F);
  loop.process(dsp::cspan_mut{x});
  EXPECT_NE(loop.phase(), 0.0F);
  loop.reset();
  EXPECT_EQ(loop.phase(), 0.0F);
  EXPECT_EQ(loop.frequency(), 0.0F);
}

TEST(CostasLoop, FrequencyClamped) {
  CostasLoop loop(0.2F, 0.7071F, 0.01F);
  std::mt19937 rng(8);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  for (int i = 0; i < 10000; ++i) {
    (void)loop.process(dsp::cf{dist(rng), dist(rng)});
    ASSERT_LE(std::abs(loop.frequency()), 0.01F);
  }
}

}  // namespace
}  // namespace bhss::sync
