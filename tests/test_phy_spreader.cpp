// Unit tests for DSSS spreading/despreading with and without the PN
// scrambler, including noise tolerance (the 9 dB processing gain of the
// paper's spreading factor 8).

#include <gtest/gtest.h>

#include <random>

#include "phy/spreader.hpp"

namespace bhss::phy {
namespace {

class SymbolRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(SymbolRoundTrip, CleanRoundTripWithoutScrambler) {
  Spreader spread(0);
  Despreader despread(0);
  std::vector<float> chips;
  spread.spread_symbol(GetParam(), chips);
  ASSERT_EQ(chips.size(), kChipsPerSymbol);
  const DespreadResult r = despread.despread_symbol(chips);
  EXPECT_EQ(r.symbol, GetParam());
  EXPECT_FLOAT_EQ(r.correlation, 32.0F);
  EXPECT_LT(r.runner_up, r.correlation);
}

TEST_P(SymbolRoundTrip, CleanRoundTripWithScrambler) {
  Spreader spread(0xC0DE);
  Despreader despread(0xC0DE);
  std::vector<float> chips;
  spread.spread_symbol(GetParam(), chips);
  const DespreadResult r = despread.despread_symbol(chips);
  EXPECT_EQ(r.symbol, GetParam());
  EXPECT_FLOAT_EQ(r.correlation, 32.0F);
}

INSTANTIATE_TEST_SUITE_P(AllSymbols, SymbolRoundTrip,
                         ::testing::Range<std::uint8_t>(0, 16));

TEST(Spreader, StreamRoundTrip) {
  const std::vector<std::uint8_t> symbols = {0, 15, 7, 8, 3, 3, 12, 1};
  Spreader spread(0xBEEF);
  Despreader despread(0xBEEF);
  const std::vector<float> chips = spread.spread(symbols);
  ASSERT_EQ(chips.size(), symbols.size() * kChipsPerSymbol);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const auto chunk =
        std::span<const float>{chips}.subspan(s * kChipsPerSymbol, kChipsPerSymbol);
    EXPECT_EQ(despread.despread_symbol(chunk).symbol, symbols[s]) << "symbol " << s;
  }
}

TEST(Spreader, ScramblerWhitensChips) {
  // The same symbol repeated must produce different over-the-air chips
  // when scrambled (otherwise the jammer could learn the waveform).
  Spreader spread(0x1337);
  std::vector<float> first;
  std::vector<float> second;
  spread.spread_symbol(5, first);
  spread.spread_symbol(5, second);
  EXPECT_NE(first, second);

  // And without scrambling they are identical.
  Spreader plain(0);
  first.clear();
  second.clear();
  plain.spread_symbol(5, first);
  plain.spread_symbol(5, second);
  EXPECT_EQ(first, second);
}

TEST(Spreader, MismatchedScramblerBreaksDespreading) {
  const std::vector<std::uint8_t> symbols = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  Spreader spread(0xAAAA);
  Despreader wrong(0xBBBB);
  const std::vector<float> chips = spread.spread(symbols);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const auto chunk =
        std::span<const float>{chips}.subspan(s * kChipsPerSymbol, kChipsPerSymbol);
    if (wrong.despread_symbol(chunk).symbol == symbols[s]) ++correct;
  }
  EXPECT_LT(correct, symbols.size() / 2);
}

TEST(Despreader, ToleratesChipNoise) {
  // Soft chips with Gaussian noise at 0 dB per chip: the 32-chip
  // correlation still decides correctly essentially always.
  std::mt19937 rng(5);
  std::normal_distribution<float> noise(0.0F, 1.0F);
  Spreader spread(0x77);
  Despreader despread(0x77);
  std::size_t errors = 0;
  for (std::uint8_t sym = 0; sym < 16; ++sym) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<float> chips;
      spread.spread_symbol(sym, chips);
      for (float& c : chips) c += noise(rng);
      if (despread.despread_symbol(chips).symbol != sym) ++errors;
    }
  }
  // Re-sync the scrambler by constructing fresh objects per trial is not
  // needed: both sides consumed the same number of chips.
  EXPECT_LE(errors, 4U);  // ~0.5 % at this SNR
}

TEST(Despreader, ToleratesChipErasures) {
  Spreader spread(0x55);
  Despreader despread(0x55);
  std::vector<float> chips;
  spread.spread_symbol(9, chips);
  for (std::size_t i = 0; i < 8; ++i) chips[i * 4] = 0.0F;  // erase 8 of 32
  EXPECT_EQ(despread.despread_symbol(chips).symbol, 9);
}

TEST(Despreader, RejectsWrongChipCount) {
  Despreader d(0);
  std::vector<float> chips(31, 1.0F);
  EXPECT_THROW((void)d.despread_symbol(chips), std::invalid_argument);
}

TEST(Spreader, RejectsInvalidSymbol) {
  Spreader s(0);
  std::vector<float> chips;
  EXPECT_THROW(s.spread_symbol(16, chips), std::invalid_argument);
}

TEST(ByteSymbolConversion, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0xA7, 0x3C, 0x5A};
  const std::vector<std::uint8_t> symbols = bytes_to_symbols(bytes);
  ASSERT_EQ(symbols.size(), bytes.size() * 2);
  EXPECT_EQ(symbols_to_bytes(symbols), bytes);
}

TEST(ByteSymbolConversion, LowNibbleFirst) {
  const std::vector<std::uint8_t> bytes = {0xA7};
  const std::vector<std::uint8_t> symbols = bytes_to_symbols(bytes);
  EXPECT_EQ(symbols[0], 0x7);
  EXPECT_EQ(symbols[1], 0xA);
}

TEST(ByteSymbolConversion, RejectsOddSymbolCount) {
  const std::vector<std::uint8_t> symbols = {1, 2, 3};
  EXPECT_THROW((void)symbols_to_bytes(symbols), std::invalid_argument);
}

}  // namespace
}  // namespace bhss::phy
