// Unit tests for the 802.15.4-style frame codec: layout, round trips and
// corruption detection (packet loss == CRC mismatch, §6.2).

#include <gtest/gtest.h>

#include "phy/frame.hpp"
#include "phy/spreader.hpp"

namespace bhss::phy {
namespace {

std::vector<std::uint8_t> test_payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i * 37 + 5);
  return p;
}

TEST(FrameSpec, SymbolAccounting) {
  EXPECT_EQ(FrameSpec::total_symbols(0), 8U + 2U + 2U + 0U + 4U);
  EXPECT_EQ(FrameSpec::total_symbols(10), 16U + 20U);
  EXPECT_EQ(FrameSpec::post_preamble_symbols(10),
            FrameSpec::total_symbols(10) - FrameSpec::preamble_symbols);
}

TEST(Frame, LayoutStartsWithPreambleAndSfd) {
  const auto symbols = build_frame_symbols(test_payload(4));
  ASSERT_EQ(symbols.size(), FrameSpec::total_symbols(4));
  for (std::size_t i = 0; i < FrameSpec::preamble_symbols; ++i) {
    EXPECT_EQ(symbols[i], 0) << "preamble symbol " << i;
  }
  // SFD 0xA7, low nibble first.
  EXPECT_EQ(symbols[8], 0x7);
  EXPECT_EQ(symbols[9], 0xA);
  // Length byte.
  EXPECT_EQ(symbols[10], 4);
  EXPECT_EQ(symbols[11], 0);
}

class FrameRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameRoundTrip, BuildThenParse) {
  const auto payload = test_payload(GetParam());
  const auto symbols = build_frame_symbols(payload);
  const auto parsed = parse_frame_symbols(symbols);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, payload);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FrameRoundTrip,
                         ::testing::Values(0, 1, 2, 8, 16, 100, 255));

TEST(Frame, RejectsOversizedPayload) {
  EXPECT_THROW((void)build_frame_symbols(test_payload(256)), std::invalid_argument);
}

TEST(Frame, ParseRejectsCorruptedSfd) {
  auto symbols = build_frame_symbols(test_payload(8));
  symbols[9] = 0xB;  // break the SFD
  EXPECT_FALSE(parse_frame_symbols(symbols).has_value());
}

TEST(Frame, ParseRejectsCorruptedPayload) {
  auto symbols = build_frame_symbols(test_payload(8));
  symbols[14] = static_cast<std::uint8_t>((symbols[14] + 1) % 16);
  EXPECT_FALSE(parse_frame_symbols(symbols).has_value());
}

TEST(Frame, ParseRejectsCorruptedCrc) {
  auto symbols = build_frame_symbols(test_payload(8));
  symbols.back() = static_cast<std::uint8_t>((symbols.back() + 1) % 16);
  EXPECT_FALSE(parse_frame_symbols(symbols).has_value());
}

TEST(Frame, ParseRejectsCorruptedLength) {
  auto symbols = build_frame_symbols(test_payload(8));
  symbols[10] = 9;  // wrong length -> CRC over wrong span fails
  EXPECT_FALSE(parse_frame_symbols(symbols).has_value());
}

TEST(Frame, ParseRejectsTruncatedStream) {
  const auto symbols = build_frame_symbols(test_payload(8));
  for (std::size_t keep : {0UL, 5UL, 12UL, symbols.size() - 1}) {
    EXPECT_FALSE(
        parse_frame_symbols(std::span<const std::uint8_t>{symbols}.first(keep)).has_value())
        << "keep=" << keep;
  }
}

TEST(Frame, ParseAcceptsTrailingGarbage) {
  // Extra symbols after the frame must not break parsing (the receiver
  // may decode a few noise symbols past the end).
  auto symbols = build_frame_symbols(test_payload(8));
  symbols.push_back(3);
  symbols.push_back(12);
  const auto parsed = parse_frame_symbols(symbols);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, test_payload(8));
}

TEST(Frame, EverySingleSymbolCorruptionIsDetected) {
  // Flipping any one payload/header/CRC symbol must never yield a valid
  // frame with the wrong payload (preamble symbols are don't-care).
  const auto payload = test_payload(6);
  const auto symbols = build_frame_symbols(payload);
  for (std::size_t i = FrameSpec::preamble_symbols; i < symbols.size(); ++i) {
    auto corrupted = symbols;
    corrupted[i] = static_cast<std::uint8_t>((corrupted[i] + 7) % 16);
    const auto parsed = parse_frame_symbols(corrupted);
    if (parsed.has_value()) {
      EXPECT_EQ(*parsed, payload) << "symbol " << i;  // only harmless flips allowed
    }
  }
}

}  // namespace
}  // namespace bhss::phy
