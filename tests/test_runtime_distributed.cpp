// Tests for the distributed campaign layer (src/runtime/distributed):
// the mod shard partition, worker-sliced CampaignRunner journaling,
// journal-merge fold semantics — canonical ordering, byte-determinism
// against input order, benign-duplicate folding — and every adversarial
// rejection case (overlapping worker shards, conflicting duplicate
// payloads, params-hash and schema/figure/build mismatches, torn middle
// journals, unknown record kinds), the hardened journal write path
// (disk-full simulation producing a genuine torn tail, typed
// JournalWriteError, refuse-after-failure), heartbeat records surviving
// replay, and CampaignSupervisor process supervision with /bin/sh fake
// workers (crash respawn, exit-code taxonomy, restart-budget quarantine,
// hang detection via journal-growth stall).

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/link_simulator.hpp"
#include "runtime/campaign.hpp"
#include "runtime/checkpoint_journal.hpp"
#include "runtime/distributed/journal_merge.hpp"
#include "runtime/distributed/shard_partition.hpp"
#include "runtime/distributed/supervisor.hpp"
#include "runtime/journal_format.hpp"

namespace bhss::runtime::distributed {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "bhss_dist_" + name + "_" + std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

core::SimConfig small_sim() {
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 24;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  return cfg;
}

core::LinkStats sample_stats(std::size_t salt) {
  core::LinkStats s;
  s.packets = 10 + salt;
  s.ok = 8;
  s.total_symbols = 4000 + salt;
  s.airtime_s = 0.1 * static_cast<double>(salt + 1) + 1e-17;
  s.worker_drains = salt % 2;
  return s;
}

/// Write a journal with the given figure/schema/sha and one S record per
/// (point, shard) pair, through the real CheckpointJournal append path.
void write_worker_journal(const std::string& path, const char* figure, int schema,
                          const char* sha,
                          const std::vector<std::pair<std::string, std::size_t>>& units,
                          std::uint64_t hash = 0xABCD, std::size_t stats_salt = 0) {
  std::remove(path.c_str());
  CheckpointJournal journal;
  journal.open(path, figure, schema, sha, false);
  for (const auto& [point, shard] : units) {
    journal.record_shard({point, hash}, shard, sample_stats(stats_salt + shard));
  }
}

// ------------------------------------------------------------ ShardPartition

TEST(ShardPartition, ModPartitionCoversEveryShardExactlyOnce) {
  const std::size_t n_shards = 37;
  for (const std::size_t n_workers : {1UL, 2UL, 3UL, 5UL, 16UL, 64UL}) {
    std::vector<std::size_t> owners(n_shards, 0);
    std::size_t total_owned = 0;
    for (std::size_t w = 0; w < n_workers; ++w) {
      const ShardPartition part{w, n_workers};
      part.validate();
      std::size_t owned = 0;
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (part.owns(s)) {
          ++owners[s];
          ++owned;
        }
      }
      EXPECT_EQ(owned, part.owned_count(n_shards)) << "worker " << w << "/" << n_workers;
      total_owned += owned;
    }
    EXPECT_EQ(total_owned, n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) EXPECT_EQ(owners[s], 1U) << "shard " << s;
  }
}

TEST(ShardPartition, DefaultOwnsEverythingAndInvalidIdentityIsRejected) {
  const ShardPartition solo;
  EXPECT_FALSE(solo.distributed());
  for (std::size_t s = 0; s < 100; ++s) EXPECT_TRUE(solo.owns(s));
  EXPECT_THROW((ShardPartition{3, 3}.validate()), std::exception);
  EXPECT_THROW((ShardPartition{0, 0}.validate()), std::exception);
}

// ------------------------------------------------- worker-sliced campaigns

TEST(DistributedCampaign, WorkerSlicesJournalDisjointShardsThatMergeToTheFullRun) {
  // Reference: a single-process campaign over the same config.
  const core::SimConfig cfg = small_sim();
  const std::string ref_path = temp_path("ref.journal");
  std::remove(ref_path.c_str());
  {
    CheckpointJournal journal;
    journal.open(ref_path, "dist", 1, "sha", false);
    CampaignRunner runner(CampaignOptions{.n_threads = 2, .n_shards = 8}, &journal);
    (void)runner.run_point("pt", cfg);
  }

  // Fleet of 3: each worker journals only its slice.
  std::vector<std::string> worker_paths;
  for (std::size_t w = 0; w < 3; ++w) {
    const std::string path = temp_path(("w" + std::to_string(w)).c_str());
    std::remove(path.c_str());
    worker_paths.push_back(path);
    CheckpointJournal journal;
    journal.open(path, "dist", 1, "sha", false);
    CampaignOptions options{.n_threads = 2, .n_shards = 8};
    options.partition = ShardPartition{w, 3};
    CampaignRunner runner(options, &journal);
    (void)runner.run_point("pt", cfg);
  }

  const std::string merged_path = temp_path("merged.journal");
  std::remove(merged_path.c_str());
  const MergeReport report = merge_journals(worker_paths, merged_path);
  EXPECT_EQ(report.inputs, 3U);
  EXPECT_EQ(report.shard_records, 8U);
  EXPECT_EQ(report.duplicates_folded, 0U);

  // The merged journal satisfies a resumed single-process run completely,
  // and the merged stats equal the reference bit for bit.
  CheckpointJournal ref;
  ref.open(ref_path, "dist", 1, "sha", true);
  CheckpointJournal merged;
  merged.open(merged_path, "dist", 1, "sha", true);
  const JournalKey key{"pt", CampaignRunner::params_hash(cfg, 8)};
  for (std::size_t shard = 0; shard < 8; ++shard) {
    const core::LinkStats* a = ref.find_shard(key, shard);
    const core::LinkStats* b = merged.find_shard(key, shard);
    ASSERT_NE(a, nullptr) << "shard " << shard;
    ASSERT_NE(b, nullptr) << "shard " << shard;
    EXPECT_EQ(a->packets, b->packets);
    EXPECT_EQ(a->ok, b->ok);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a->airtime_s),
              std::bit_cast<std::uint64_t>(b->airtime_s));
  }

  std::remove(ref_path.c_str());
  for (const std::string& p : worker_paths) std::remove(p.c_str());
  std::remove(merged_path.c_str());
}

TEST(DistributedCampaign, BisectionRefusesToRunOnAWorkerSlice) {
  CampaignOptions options{.n_threads = 1, .n_shards = 4};
  options.partition = ShardPartition{0, 2};
  CampaignRunner runner(options, nullptr);
  EXPECT_THROW((void)runner.min_snr_for_per("pt", small_sim()), std::exception);
}

// ------------------------------------------------------------ journal-merge

TEST(JournalMerge, CanonicalOutputIsIndependentOfInputOrder) {
  const std::string a = temp_path("order_a");
  const std::string b = temp_path("order_b");
  write_worker_journal(a, "dist", 1, "sha", {{"p1", 0}, {"p0", 2}});
  write_worker_journal(b, "dist", 1, "sha", {{"p0", 1}, {"p1", 3}});

  const std::string out_ab = temp_path("order_ab");
  const std::string out_ba = temp_path("order_ba");
  (void)merge_journals({a, b}, out_ab);
  (void)merge_journals({b, a}, out_ba);
  const std::string bytes = slurp(out_ab);
  EXPECT_EQ(bytes, slurp(out_ba));
  EXPECT_FALSE(bytes.empty());
  // Ascending (point, shard) order: p0/1, p0/2, p1/0, p1/3.
  EXPECT_LT(bytes.find("S p0 "), bytes.find("S p1 "));

  for (const std::string& p : {a, b, out_ab, out_ba}) std::remove(p.c_str());
}

TEST(JournalMerge, RejectsOverlappingShardOwnershipAcrossWorkers) {
  // Both workers journal (pt, shard 2) with IDENTICAL payloads: the merge
  // must still reject — disjointness is the partition contract, and two
  // owners mean the fleet was misconfigured even when results agree.
  const std::string a = temp_path("ovl_a");
  const std::string b = temp_path("ovl_b");
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 0}, {"pt", 2}});
  write_worker_journal(b, "dist", 1, "sha", {{"pt", 1}, {"pt", 2}});
  const std::string out = temp_path("ovl_out");
  EXPECT_THROW((void)merge_journals({a, b}, out), JournalMergeError);
  EXPECT_EQ(slurp(out), "");  // nothing published on rejection
  for (const std::string& p : {a, b}) std::remove(p.c_str());
}

TEST(JournalMerge, RejectsDuplicateShardRecordsWithDifferingPayloads) {
  const std::string a = temp_path("dup_a");
  const std::string b = temp_path("dup_b");
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 2}}, 0xABCD, /*stats_salt=*/0);
  write_worker_journal(b, "dist", 1, "sha", {{"pt", 2}}, 0xABCD, /*stats_salt=*/7);
  const std::string out = temp_path("dup_out");
  EXPECT_THROW((void)merge_journals({a, b}, out), JournalMergeError);
  for (const std::string& p : {a, b}) std::remove(p.c_str());
}

TEST(JournalMerge, RejectsParamsHashConflictForOnePointId) {
  const std::string a = temp_path("hash_a");
  const std::string b = temp_path("hash_b");
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 0}}, /*hash=*/0x1111);
  write_worker_journal(b, "dist", 1, "sha", {{"pt", 1}}, /*hash=*/0x2222);
  const std::string out = temp_path("hash_out");
  EXPECT_THROW((void)merge_journals({a, b}, out), JournalMergeError);
  for (const std::string& p : {a, b}) std::remove(p.c_str());
}

TEST(JournalMerge, RejectsMismatchedSchemaFigureAndBuild) {
  const std::string ref = temp_path("hdr_ref");
  write_worker_journal(ref, "dist", 3, "sha1", {{"pt", 0}});
  const std::string out = temp_path("hdr_out");

  const std::string schema = temp_path("hdr_schema");
  write_worker_journal(schema, "dist", 4, "sha1", {{"pt", 1}});
  EXPECT_THROW((void)merge_journals({ref, schema}, out), JournalMergeError);

  const std::string figure = temp_path("hdr_figure");
  write_worker_journal(figure, "other", 3, "sha1", {{"pt", 1}});
  EXPECT_THROW((void)merge_journals({ref, figure}, out), JournalMergeError);

  const std::string build = temp_path("hdr_build");
  write_worker_journal(build, "dist", 3, "sha2", {{"pt", 1}});
  EXPECT_THROW((void)merge_journals({ref, build}, out), JournalMergeError);

  for (const std::string& p : {ref, schema, figure, build}) std::remove(p.c_str());
}

TEST(JournalMerge, RecoversTornTailInTheMiddleJournalOfThree) {
  const std::string a = temp_path("torn_a");
  const std::string b = temp_path("torn_b");
  const std::string c = temp_path("torn_c");
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 0}});
  write_worker_journal(b, "dist", 1, "sha", {{"pt", 1}, {"pt", 4}});
  write_worker_journal(c, "dist", 1, "sha", {{"pt", 2}});

  // Tear b's tail mid-line: shard 1 stays durable, shard 4 is lost.
  std::string bytes = slurp(b);
  spit(b, bytes.substr(0, bytes.size() - 9));

  const std::string out = temp_path("torn_out");
  const MergeReport report = merge_journals({a, b, c}, out);
  EXPECT_EQ(report.torn_tails, 1U);
  EXPECT_EQ(report.shard_records, 3U);  // shards 0, 1, 2 — not 4
  const std::string merged = slurp(out);
  EXPECT_NE(merged.find(" 1 "), std::string::npos);
  EXPECT_EQ(merged.find("S pt 000000000000abcd 4 "), std::string::npos);

  for (const std::string& p : {a, b, c, out}) std::remove(p.c_str());
}

TEST(JournalMerge, EmptyWorkerJournalsContributeNothingButMergeCleanly) {
  const std::string a = temp_path("empty_a");
  const std::string b = temp_path("empty_b");  // header only: worker owned no work
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 0}});
  write_worker_journal(b, "dist", 1, "sha", {});
  const std::string out = temp_path("empty_out");
  const MergeReport report = merge_journals({a, b}, out);
  EXPECT_EQ(report.inputs, 2U);
  EXPECT_EQ(report.shard_records, 1U);
  for (const std::string& p : {a, b, out}) std::remove(p.c_str());
}

TEST(JournalMerge, BaseJournalMayCoincideWithWorkerRecords) {
  // A worker deterministically recomputed a shard the supervisor already
  // holds: identical bytes fold; differing bytes still reject.
  const std::string base = temp_path("base");
  const std::string w = temp_path("base_w");
  write_worker_journal(base, "dist", 1, "sha", {{"pt", 0}, {"pt", 1}});
  write_worker_journal(w, "dist", 1, "sha", {{"pt", 1}, {"pt", 2}});
  const std::string out = temp_path("base_out");
  const MergeReport report = merge_journals({w}, out, base);
  EXPECT_EQ(report.inputs, 2U);
  EXPECT_EQ(report.shard_records, 3U);
  EXPECT_EQ(report.duplicates_folded, 1U);

  const std::string conflicting = temp_path("base_conflict");
  write_worker_journal(conflicting, "dist", 1, "sha", {{"pt", 1}}, 0xABCD,
                       /*stats_salt=*/9);
  EXPECT_THROW((void)merge_journals({conflicting}, out, base), JournalMergeError);

  for (const std::string& p : {base, w, out, conflicting}) std::remove(p.c_str());
}

TEST(JournalMerge, HeartbeatsAreDroppedAndForeignRecordKindsReject) {
  const std::string a = temp_path("hb");
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 0}});
  {
    CheckpointJournal journal;
    journal.open(a, "dist", 1, "sha", true);
    journal.record_heartbeat(0, 1);
    journal.record_heartbeat(0, 2);
  }
  const std::string out = temp_path("hb_out");
  const MergeReport report = merge_journals({a}, out);
  EXPECT_EQ(report.heartbeats_dropped, 2U);
  EXPECT_EQ(slurp(out).find(" H "), std::string::npos);

  // A CRC-valid line of an unknown kind is a foreign/future journal, not
  // bit rot — reject loudly instead of silently dropping it.
  spit(a, slurp(a) + journal::seal_line("Z mystery record") + "\n");
  EXPECT_THROW((void)merge_journals({a}, out), JournalMergeError);

  for (const std::string& p : {a, out}) std::remove(p.c_str());
}

TEST(JournalMerge, MergedJournalResumesLikeASingleProcessJournal) {
  const std::string a = temp_path("resume_a");
  const std::string b = temp_path("resume_b");
  write_worker_journal(a, "dist", 1, "sha", {{"pt", 0}});
  write_worker_journal(b, "dist", 1, "sha", {{"pt", 1}});
  const std::string out = temp_path("resume_out");
  (void)merge_journals({a, b}, out);

  CheckpointJournal merged;
  merged.open(out, "dist", 1, "sha", true);
  EXPECT_EQ(merged.replayed_records(), 2U);
  EXPECT_FALSE(merged.tail_truncated());
  ASSERT_NE(merged.find_shard({"pt", 0xABCD}, 0), nullptr);
  ASSERT_NE(merged.find_shard({"pt", 0xABCD}, 1), nullptr);
  EXPECT_EQ(merged.find_shard({"pt", 0xABCD}, 2), nullptr);

  for (const std::string& p : {a, b, out}) std::remove(p.c_str());
}

// ------------------------------------------------- hardened journal appends

TEST(JournalWritePath, DiskFullFailsTypedAndLeavesAResumableTornTail) {
  const std::string path = temp_path("enospc");
  std::remove(path.c_str());
  CheckpointJournal journal;
  journal.open(path, "dist", 1, "sha", false);
  journal.record_shard({"pt", 1}, 0, sample_stats(0));

  // Budget covers half the next record: the append must throw and the
  // half-line must look exactly like a crash-torn tail on resume.
  journal.simulate_disk_full_after(20);
  EXPECT_THROW(journal.record_shard({"pt", 1}, 1, sample_stats(1)), JournalWriteError);
  // The journal refuses further appends after a write failure: records
  // after a hole would misrepresent campaign progress.
  EXPECT_THROW(journal.record_shard({"pt", 1}, 2, sample_stats(2)), JournalWriteError);
  journal.close();

  CheckpointJournal resumed;
  resumed.open(path, "dist", 1, "sha", true);
  EXPECT_TRUE(resumed.tail_truncated());
  EXPECT_EQ(resumed.replayed_records(), 1U);
  ASSERT_NE(resumed.find_shard({"pt", 1}, 0), nullptr);
  EXPECT_EQ(resumed.find_shard({"pt", 1}, 1), nullptr);
  std::remove(path.c_str());
}

TEST(JournalWritePath, HeartbeatsSurviveReplayWithoutTruncatingRecordsAfterThem) {
  const std::string path = temp_path("hb_replay");
  std::remove(path.c_str());
  {
    CheckpointJournal journal;
    journal.open(path, "dist", 1, "sha", false);
    journal.record_shard({"pt", 1}, 0, sample_stats(0));
    journal.record_heartbeat(3, 0);
    journal.record_shard({"pt", 1}, 1, sample_stats(1));  // after the heartbeat
  }
  CheckpointJournal resumed;
  resumed.open(path, "dist", 1, "sha", true);
  EXPECT_FALSE(resumed.tail_truncated());
  ASSERT_NE(resumed.find_shard({"pt", 1}, 1), nullptr);
  std::remove(path.c_str());
}

// --------------------------------------------------------- CampaignSupervisor

/// Fake-worker command builder: each incarnation runs a /bin/sh script.
/// The script appends to the worker journal path (so hang detection sees
/// growth) and exits as scripted.
WorkerCommand sh_worker(const std::string& base, const std::string& script) {
  return [base, script](std::size_t worker, bool resume) {
    const std::string journal = CampaignSupervisor::worker_journal_path(base, worker);
    return std::vector<std::string>{
        "/bin/sh", "-c",
        "W=" + std::to_string(worker) + "; R=" + (resume ? std::string("1") : "0") +
            "; J=" + journal + "; " + script};
  };
}

TEST(CampaignSupervisor, CleanFleetCompletesWithZeroTaxonomy) {
  const std::string base = temp_path("sup_clean");
  SupervisorOptions options;
  options.n_workers = 3;
  options.journal_base = base;
  options.poll_interval_s = 0.01;
  CampaignRunner::clear_interrupt();
  CampaignSupervisor supervisor(options, sh_worker(base, "echo done >> $J; exit 0"));
  const FleetResult result = supervisor.run();
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.drained);
  EXPECT_EQ(result.fleet.worker_restarts, 0U);
  EXPECT_EQ(result.fleet.worker_crashes, 0U);
  EXPECT_EQ(result.fleet.worker_drains, 0U);
  EXPECT_TRUE(result.failed_workers.empty());
  ASSERT_EQ(result.worker_journals.size(), 3U);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(result.worker_journals[w], base + ".w" + std::to_string(w));
    std::remove(result.worker_journals[w].c_str());
    std::remove((result.worker_journals[w] + ".log").c_str());
  }
}

TEST(CampaignSupervisor, CrashedWorkerIsRespawnedWithResumeAndCounted) {
  const std::string base = temp_path("sup_crash");
  // First incarnation (R=0) crashes after journaling; the respawn (R=1)
  // succeeds. Exactly one crash, one restart, then completion.
  const std::string script = "echo step >> $J; if [ $R = 0 ]; then exit 9; fi; exit 0";
  SupervisorOptions options;
  options.n_workers = 2;
  options.journal_base = base;
  options.poll_interval_s = 0.01;
  options.backoff_base_s = 0.01;
  CampaignRunner::clear_interrupt();
  CampaignSupervisor supervisor(options, sh_worker(base, script));
  const FleetResult result = supervisor.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.fleet.worker_crashes, 2U);
  EXPECT_EQ(result.fleet.worker_restarts, 2U);
  EXPECT_TRUE(result.failed_workers.empty());
  for (const std::string& j : result.worker_journals) {
    std::remove(j.c_str());
    std::remove((j + ".log").c_str());
  }
}

TEST(CampaignSupervisor, RestartBudgetExhaustionQuarantinesTheWorker) {
  const std::string base = temp_path("sup_budget");
  SupervisorOptions options;
  options.n_workers = 2;
  options.journal_base = base;
  options.poll_interval_s = 0.01;
  options.backoff_base_s = 0.005;
  options.max_restarts = 2;
  CampaignRunner::clear_interrupt();
  // Worker 1 always crashes; worker 0 completes.
  const std::string script =
      "echo step >> $J; if [ $W = 1 ]; then exit 7; fi; exit 0";
  CampaignSupervisor supervisor(options, sh_worker(base, script));
  const FleetResult result = supervisor.run();
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.drained);
  ASSERT_EQ(result.failed_workers.size(), 1U);
  EXPECT_EQ(result.failed_workers[0], 1U);
  EXPECT_EQ(result.fleet.worker_restarts, 2U);   // budget, fully spent
  EXPECT_EQ(result.fleet.worker_crashes, 3U);    // initial + 2 respawns
  for (const std::string& j : result.worker_journals) {
    std::remove(j.c_str());
    std::remove((j + ".log").c_str());
  }
}

TEST(CampaignSupervisor, HungWorkerIsDetectedByJournalStallAndEscalated) {
  const std::string base = temp_path("sup_hang");
  SupervisorOptions options;
  options.n_workers = 1;
  options.journal_base = base;
  options.poll_interval_s = 0.01;
  options.backoff_base_s = 0.005;
  options.hang_timeout_s = 0.15;  // journal stops growing -> hung
  options.term_grace_s = 0.05;
  options.max_restarts = 1;
  CampaignRunner::clear_interrupt();
  // First incarnation writes once then sleeps forever ignoring SIGTERM
  // (so the TERM->KILL escalation is exercised); the respawn completes.
  const std::string script =
      "echo step >> $J; if [ $R = 0 ]; then trap '' TERM; sleep 60; fi; exit 0";
  CampaignSupervisor supervisor(options, sh_worker(base, script));
  const FleetResult result = supervisor.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.fleet.worker_restarts, 1U);
  EXPECT_EQ(result.fleet.worker_crashes, 1U);  // SIGKILLed incarnation
  for (const std::string& j : result.worker_journals) {
    std::remove(j.c_str());
    std::remove((j + ".log").c_str());
  }
}

TEST(CampaignSupervisor, DrainRequestTermsTheFleetAndReportsDrains) {
  const std::string base = temp_path("sup_drain");
  SupervisorOptions options;
  options.n_workers = 2;
  options.journal_base = base;
  options.poll_interval_s = 0.01;
  options.term_grace_s = 30.0;  // never escalate to SIGKILL in this test
  CampaignRunner::clear_interrupt();
  // Workers drain on SIGTERM with the bench exit code (75), like a real
  // checkpointed campaign; without a drain they would run for a minute.
  // `sleep & wait` (not a foreground sleep) so the trap fires immediately
  // in shells that defer traps until the foreground command returns.
  const std::string script =
      "trap 'exit 75' TERM; echo step >> $J; sleep 60 & wait $!; exit 0";
  CampaignSupervisor supervisor(options, sh_worker(base, script));
  // Request the drain only once every worker has appended to its journal:
  // the append happens after the trap is installed, so the broadcast
  // SIGTERM can't land in the window before the shell set it up.
  std::thread trigger([&] {
    for (;;) {
      bool ready = true;
      for (std::size_t w = 0; w < options.n_workers; ++w) {
        ready = ready &&
                std::ifstream(CampaignSupervisor::worker_journal_path(base, w)).good();
      }
      if (ready) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    CampaignRunner::request_interrupt();
  });
  const FleetResult result = supervisor.run();
  trigger.join();
  CampaignRunner::clear_interrupt();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.fleet.worker_drains, 2U);
  EXPECT_EQ(result.fleet.worker_crashes, 0U);
  for (const std::string& j : result.worker_journals) {
    std::remove(j.c_str());
    std::remove((j + ".log").c_str());
  }
}

}  // namespace
}  // namespace bhss::runtime::distributed
