#pragma once

/// @file trace.hpp
/// Bounded, deterministic per-hop event tracing + per-stage timing scopes.
///
/// A `TraceSink` is a fixed-capacity ring buffer of POD `TraceEvent`s,
/// single-writer like `MetricsShard` (one sink per simulation shard).
/// When the ring is full the oldest event is overwritten and a drop
/// counter advances — emitters surface the drop count so truncation is
/// never silent. Event *content* is deterministic (pure function of the
/// shard's seed tuple); wall-clock timing never enters the event stream —
/// `BHSS_TRACE_SCOPE` timings accumulate in separate per-scope slots that
/// emitters write to a non-deterministic `.timing` sidecar, mirroring the
/// bench JSONL convention from the checkpoint layer.
///
/// Zero-overhead-off contract: compiling with -DBHSS_OBS_DISABLED turns
/// `obs_enabled()` into a constexpr false, so every instrumentation site
/// guarded by `tracing(...)` / `counting(...)` is dead-code-eliminated
/// and `BHSS_TRACE_SCOPE` expands to nothing. In normal builds a null
/// sink costs one predicted branch per site (measured in perf_kernels,
/// see DESIGN.md).

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#ifndef BHSS_OBS_DISABLED
#define BHSS_OBS_ENABLED 1
#else
#define BHSS_OBS_ENABLED 0
#endif

namespace bhss::obs {

enum class TraceEventType : std::uint8_t {
  hop_decision = 0,  ///< per-hop filter choice + eq. (10) threshold terms
  sync_attempt,      ///< one preamble acquisition attempt
  sync_lock,         ///< frame accepted (possibly after re-acquisition)
  sync_loss,         ///< all acquisition attempts exhausted
  fault_applied,     ///< fault injector mutated the capture
  packet_done,       ///< end-of-packet summary
  adapt_window,      ///< jam-detector window closed
  adapt_transition,  ///< resilience state machine changed state
};
inline constexpr std::size_t kNumTraceEventTypes = 8;

/// Stable lowercase name used as the JSONL "event" value.
[[nodiscard]] const char* trace_event_name(TraceEventType type) noexcept;

/// One structured event. Fixed-size POD so the ring never allocates.
/// `flag`/`v0..v5` are type-specific (see trace_event_json_body in
/// link_obs.hpp for the authoritative field mapping):
///  - hop_decision: flag = filter kind (0 none / 1 lowpass / 2 excision /
///    3 degenerate-PSD fallback), bw_index = hop bandwidth level,
///    v0 = est_jammer_bw_frac, v1 = eq. (10) guard threshold
///    (excision_match_guard * signal bandwidth fraction), v2/v3 = in-band
///    peak-over-median dB and its threshold, v4/v5 = out-of-band level dB
///    and its threshold.
///  - sync_attempt: flag = outcome (0 miss / 1 lock / 2 CFAR reject),
///    hop = attempt ordinal, v0 = threshold, v1 = max lag, v2 = quality,
///    v3 = margin.
///  - sync_lock: flag = reacquired, hop = attempts used, v0 = frame
///    start, v1 = phase, v2 = cfo, v3 = quality, v4 = margin.
///  - sync_loss: hop = attempts used.
///  - fault_applied: flag = FaultKind ordinal, hop = event ordinal in the
///    packet's plan, v0 = offset, v1 = length, v2 = magnitude.
///  - packet_done: flag = delivered (CRC ok), hop = hops demodulated,
///    v0 = sync attempts, v1 = filter fallbacks, v2 = frame detected.
///  - adapt_window: flag = window jammed, hop = window ordinal, packet =
///    closing packet, v0 = bad fraction, v1 = trip threshold, v2 = bad
///    packets, v3 = jammed-window streak.
///  - adapt_transition: flag = new LinkAdaptState ordinal (0 nominal /
///    1 degraded / 2 fallback / 3 recovering), hop = window ordinal,
///    v0 = previous state ordinal, v1 = new symbols_per_hop, v2 = new
///    plan epoch.
struct TraceEvent {
  TraceEventType type = TraceEventType::hop_decision;
  std::uint8_t flag = 0;
  std::uint16_t bw_index = 0;
  std::uint32_t hop = 0;
  std::uint64_t packet = 0;
  double v0 = 0.0, v1 = 0.0, v2 = 0.0, v3 = 0.0, v4 = 0.0, v5 = 0.0;
};

/// Receiver pipeline stages timed by BHSS_TRACE_SCOPE.
enum class TraceScopeId : std::uint8_t {
  receive = 0,       ///< whole BhssReceiver::receive call
  choose_filter,     ///< ControlLogic decision (PSD estimate + thresholds)
  filter_apply,      ///< FFT-convolver filtering of the hop slice
  preamble_acquire,  ///< PreambleSync acquire/refine
  carrier_track,     ///< Costas loop
  demod_despread,    ///< QPSK demod + despreader
  fault_inject,      ///< FaultInjector::apply
};
inline constexpr std::size_t kNumTraceScopes = 7;

[[nodiscard]] const char* trace_scope_name(TraceScopeId id) noexcept;

struct TraceScopeStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

inline constexpr std::size_t kDefaultTraceCapacity = 4096;

/// Single-writer bounded event ring + per-stage timing accumulators.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = kDefaultTraceCapacity);

  void push(const TraceEvent& ev) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Events ever pushed (retained + dropped).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - static_cast<std::uint64_t>(size_);
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void note_scope(TraceScopeId id, std::uint64_t ns) noexcept;
  [[nodiscard]] const TraceScopeStats& scope(TraceScopeId id) const noexcept {
    return scopes_[static_cast<std::size_t>(id)];
  }

  /// Fold `other`'s scope timings into this sink (event rings are never
  /// merged — a merged ring would re-drop; emitters walk shards in order).
  void merge_scopes_from(const TraceSink& other) noexcept;

  /// Deserialization back door: restore the lifetime push count so the
  /// drop accounting survives a journal round trip. `total` must be >=
  /// the current count; never call on a sink still being written.
  void restore_total(std::uint64_t total) noexcept;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  ///< ring slot the next push writes
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::array<TraceScopeStats, kNumTraceScopes> scopes_{};
};

/// True when this build records telemetry at all. constexpr-false under
/// -DBHSS_OBS_DISABLED so guarded instrumentation folds away entirely.
[[nodiscard]] inline constexpr bool obs_enabled() noexcept { return BHSS_OBS_ENABLED != 0; }

/// Guard for trace instrumentation sites: `if (tracing(sink)) { ... }`.
[[nodiscard]] inline bool tracing(const TraceSink* sink) noexcept {
  return obs_enabled() && sink != nullptr;
}

/// RAII stage timer; records into the sink on destruction. Null sink =
/// no clock reads at all.
class TraceScope {
 public:
  TraceScope(TraceSink* sink, TraceScopeId id) noexcept : sink_(sink), id_(id) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TraceScope() {
    if (sink_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      sink_->note_scope(id_, ns < 0 ? 0u : static_cast<std::uint64_t>(ns));
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSink* sink_;
  TraceScopeId id_;
  std::chrono::steady_clock::time_point start_{};
};

#if BHSS_OBS_ENABLED
#define BHSS_OBS_CONCAT_IMPL(a, b) a##b
#define BHSS_OBS_CONCAT(a, b) BHSS_OBS_CONCAT_IMPL(a, b)
/// Time the enclosing scope into `sink` (a TraceSink*, may be null).
#define BHSS_TRACE_SCOPE(sink, id) \
  ::bhss::obs::TraceScope BHSS_OBS_CONCAT(bhss_trace_scope_, __LINE__)((sink), (id))
#else
#define BHSS_TRACE_SCOPE(sink, id) static_cast<void>(0)
#endif

}  // namespace bhss::obs
