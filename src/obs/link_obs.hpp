#pragma once

/// @file link_obs.hpp
/// Canonical telemetry schema for the link pipeline + the per-shard
/// bundle that rides alongside LinkStats through `run_link_shard`.
///
/// Merge-order contract (shared with `core::merge_link_stats`, see
/// link_simulator.hpp): per-shard telemetry is merged as a left fold in
/// ascending shard order over a vector whose length equals the shard
/// count of the run. `runtime::merge_point_results` BHSS_REQUIREs that
/// the stats and telemetry vectors agree on that length, so the two
/// merges can never silently diverge.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bhss::obs {

/// Stable instrument ids of the canonical link registry. Counters sum
/// across shards; gauges keep the value of the highest shard that set
/// them; histograms sum bin-wise.
struct LinkIds {
  // counters
  std::size_t packets = 0;          ///< packets simulated
  std::size_t delivered = 0;        ///< CRC-clean deliveries
  std::size_t detected = 0;         ///< frames detected (genie or sync lock)
  std::size_t sync_attempts = 0;    ///< preamble acquisition attempts
  std::size_t sync_locks = 0;       ///< accepted acquisitions
  std::size_t sync_losses = 0;      ///< frames lost after all attempts
  std::size_t reacquired = 0;       ///< locks that needed a retry
  std::size_t hops = 0;             ///< hop slices demodulated
  std::size_t filter_none = 0;      ///< per-hop decision: no filtering
  std::size_t filter_lowpass = 0;   ///< per-hop decision: low-pass (eq. (3))
  std::size_t filter_excision = 0;  ///< per-hop decision: excision (eq. (4))
  std::size_t degenerate_psd = 0;   ///< hops decided via the degenerate-PSD fallback
  std::size_t input_scrubbed = 0;   ///< frames with NaN/Inf samples scrubbed
  std::size_t fault_events = 0;     ///< fault-injector events applied
  std::size_t filter_cache_hits = 0;    ///< excision designs replayed from the cache
  std::size_t filter_cache_misses = 0;  ///< excision designs computed and stored
  std::size_t adapt_windows = 0;          ///< jam-detector windows closed
  std::size_t adapt_windows_jammed = 0;   ///< windows that crossed the trip thresholds
  std::size_t adapt_transitions = 0;      ///< resilience state-machine edges taken
  std::size_t adapt_packets_adapted = 0;  ///< packets sent under a non-base hop plan
  // gauges
  std::size_t last_sync_quality = 0;
  std::size_t last_sync_margin = 0;
  std::size_t adapt_state = 0;  ///< current LinkAdaptState ordinal
  // histograms
  std::size_t est_jammer_bw = 0;  ///< estimated jammer occupancy (fraction of band)
  std::size_t inband_peak_db = 0; ///< in-band peak-over-median (dB)
  std::size_t sync_margin = 0;    ///< CFAR margin of accepted locks
};

/// Process-wide canonical schema (built once, immortal) and its ids.
[[nodiscard]] const MetricsRegistry& link_registry();
[[nodiscard]] const LinkIds& link_ids();

/// Stable instrument ids of the fleet-supervision registry: process-level
/// counters for `runtime::distributed::CampaignSupervisor`. Deliberately a
/// *separate* registry from the link schema — fleet behavior (restarts,
/// crashes, drains) is orchestration accounting, and folding it into the
/// per-point telemetry would break the guarantee that a supervised
/// campaign publishes byte-identical streams to a single-process run.
struct FleetIds {
  std::size_t worker_restarts = 0;     ///< workers respawned after crash/hang
  std::size_t worker_crashes = 0;      ///< worker exits by signal or nonzero status
  std::size_t worker_drains = 0;       ///< graceful worker drains (exit 75)
  std::size_t workers_failed = 0;      ///< workers whose restart budget ran out
  std::size_t shards_quarantined = 0;  ///< shard slots handed to the final pass
};

/// Process-wide fleet schema (built once, immortal) and its ids.
[[nodiscard]] const MetricsRegistry& fleet_registry();
[[nodiscard]] const FleetIds& fleet_ids();

/// Borrowed telemetry hooks threaded through the receiver chain. Both
/// pointers may be null ("off"); all instrumentation sites are null-safe
/// and compile out entirely under -DBHSS_OBS_DISABLED.
struct LinkObs {
  MetricsShard* metrics = nullptr;
  TraceSink* trace = nullptr;
};

/// Guard for metric instrumentation sites: `if (counting(o.metrics))`.
[[nodiscard]] inline bool counting(const MetricsShard* metrics) noexcept {
  return obs_enabled() && metrics != nullptr;
}

/// One shard's owned telemetry: canonical-schema metrics + event ring.
struct ShardTelemetry {
  explicit ShardTelemetry(std::size_t trace_capacity = kDefaultTraceCapacity)
      : metrics(&link_registry()), trace(trace_capacity) {}

  MetricsShard metrics;
  TraceSink trace;

  [[nodiscard]] LinkObs obs() noexcept { return LinkObs{&metrics, &trace}; }
};

/// Left fold in ascending shard order (the shared merge-order contract).
/// BHSS_REQUIREs shards.size() == expected_shards. The merged bundle
/// carries merged metrics and summed scope timings; its event ring is
/// empty — events are emitted per shard, in shard order, never re-rung.
[[nodiscard]] ShardTelemetry merge_telemetry(const std::vector<ShardTelemetry>& shards,
                                             std::size_t expected_shards);

// -- deterministic wire formats ---------------------------------------

/// Serialize one shard's telemetry to a single whitespace-free-token
/// line (doubles as IEEE-754 hex bit patterns, like the checkpoint
/// journal's stats lines). Bit-exact round trip; scope timings are
/// excluded (non-deterministic by nature).
[[nodiscard]] std::string serialize_telemetry(const ShardTelemetry& t);

/// Inverse of serialize_telemetry against the canonical link registry.
/// Returns false (leaving `out` unspecified) on any malformed input.
[[nodiscard]] bool deserialize_telemetry(std::string_view text, ShardTelemetry& out);

/// JSON body fragments (`"key":value,...` without braces) for the JSONL
/// emitters. Deterministic: fixed key order, integers verbatim, doubles
/// printed with %.17g (shortest exact round trip is not needed — equal
/// bits always print equal bytes).
[[nodiscard]] std::string metrics_json_body(const MetricsShard& m);
[[nodiscard]] std::string trace_event_json_body(const TraceEvent& ev);
[[nodiscard]] std::string scope_stats_json_body(const TraceSink& t);

}  // namespace bhss::obs
