#pragma once

/// @file metrics.hpp
/// Deterministic, lock-free metrics for the Monte-Carlo runtime.
///
/// Mirrors the `LinkStats` sharding contract (see
/// `core::merge_link_stats` and `runtime::ParallelLinkRunner`): one
/// `MetricsShard` per simulation shard, written by exactly one thread
/// (lock-free by construction — no atomics, no sharing), merged after the
/// fork-join as a left fold in ascending shard order. Counter and
/// histogram merges are integer additions (associative AND commutative);
/// gauge merge is rightmost-set-wins (associative, order-sensitive), so
/// the shard-order left fold is part of the determinism contract: merged
/// telemetry is a pure function of (inputs, n_shards), never of thread
/// count or scheduling.
///
/// Instruments are declared once in a `MetricsRegistry` (names, kinds,
/// histogram bin edges); shards from the same registry share its schema,
/// which is what makes their merge well-defined. Recording is O(1) array
/// indexing — no string lookups on the hot path.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/contracts.hpp"

namespace bhss::obs {

enum class InstrumentKind : std::uint8_t { counter, gauge, histogram };

/// Declaration of one named instrument.
struct InstrumentSpec {
  std::string name;
  InstrumentKind kind = InstrumentKind::counter;
  std::vector<double> bin_edges;  ///< histograms only; strictly increasing
};

/// Immutable-after-setup schema shared by every shard of a run. Must
/// outlive the shards created against it.
class MetricsRegistry {
 public:
  /// Register an instrument; returns its id (index into instruments()).
  /// Names must be unique, non-empty identifiers (they become JSONL keys).
  std::size_t add_counter(std::string name);
  std::size_t add_gauge(std::string name);
  /// `edges` must hold >= 2 strictly increasing finite values. Values are
  /// routed to edges.size() + 2 bins: underflow (v < edges.front()),
  /// edges.size() - 1 half-open interior bins [e_i, e_{i+1}), overflow
  /// (v >= edges.back(), including +inf), and a NaN bin — every input,
  /// including non-finite ones, lands in exactly one deterministic bin.
  std::size_t add_histogram(std::string name, std::vector<double> edges);

  [[nodiscard]] const std::vector<InstrumentSpec>& instruments() const noexcept {
    return instruments_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return instruments_.size(); }
  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const noexcept;

  [[nodiscard]] InstrumentKind kind(std::size_t id) const;
  /// Slot of instrument `id` within its kind's storage array.
  [[nodiscard]] std::size_t slot(std::size_t id) const;
  [[nodiscard]] std::size_t n_counters() const noexcept { return n_counters_; }
  [[nodiscard]] std::size_t n_gauges() const noexcept { return n_gauges_; }
  [[nodiscard]] std::size_t n_histograms() const noexcept { return n_histograms_; }
  /// Total bin count of histogram `id` (interior + underflow/overflow/NaN).
  [[nodiscard]] std::size_t histogram_bins(std::size_t id) const;

  /// Deterministic bin routing (exposed for the property tests):
  /// NaN -> last bin, v < e0 -> 0 (so -inf routes to underflow),
  /// v >= e_last -> edges.size() (so +inf routes to overflow), else the
  /// interior bin whose inclusive lower edge is the largest edge <= v —
  /// a value exactly on an edge always belongs to the bin it opens.
  [[nodiscard]] static std::size_t bin_of(const std::vector<double>& edges, double v) noexcept;

 private:
  std::size_t add(std::string name, InstrumentKind kind, std::vector<double> edges);

  std::vector<InstrumentSpec> instruments_;
  std::vector<std::size_t> slots_;
  std::size_t n_counters_ = 0;
  std::size_t n_gauges_ = 0;
  std::size_t n_histograms_ = 0;
};

/// Per-shard metric storage: plain (non-atomic) slots, single writer.
class MetricsShard {
 public:
  MetricsShard() = default;  ///< unbound; bind() before use
  explicit MetricsShard(const MetricsRegistry* registry) { bind(registry); }

  /// (Re)initialise against `registry` (must outlive the shard); all
  /// values reset to zero / unset.
  void bind(const MetricsRegistry* registry);
  [[nodiscard]] const MetricsRegistry* registry() const noexcept { return registry_; }

  BHSS_HOT void add(std::size_t id, std::uint64_t n = 1) noexcept;
  BHSS_HOT void set(std::size_t id, double value) noexcept;
  BHSS_HOT void observe(std::size_t id, double value) noexcept;

  [[nodiscard]] std::uint64_t counter(std::size_t id) const;
  [[nodiscard]] std::optional<double> gauge(std::size_t id) const;
  [[nodiscard]] const std::vector<std::uint64_t>& histogram(std::size_t id) const;

  /// Fold `other` into this shard (this = this ⊕ other, `other` is the
  /// right operand). Both shards must be bound to the same registry.
  void merge_from(const MetricsShard& other);

  [[nodiscard]] bool operator==(const MetricsShard& other) const;

 private:
  const MetricsRegistry* registry_ = nullptr;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauge_values_;
  std::vector<std::uint8_t> gauge_set_;
  std::vector<std::vector<std::uint64_t>> histograms_;
};

}  // namespace bhss::obs
