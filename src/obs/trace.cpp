#include "obs/trace.hpp"

#include "core/contracts.hpp"

namespace bhss::obs {

const char* trace_event_name(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::hop_decision: return "hop_decision";
    case TraceEventType::sync_attempt: return "sync_attempt";
    case TraceEventType::sync_lock: return "sync_lock";
    case TraceEventType::sync_loss: return "sync_loss";
    case TraceEventType::fault_applied: return "fault";
    case TraceEventType::packet_done: return "packet_done";
    case TraceEventType::adapt_window: return "adapt_window";
    case TraceEventType::adapt_transition: return "adapt_transition";
  }
  return "unknown";
}

const char* trace_scope_name(TraceScopeId id) noexcept {
  switch (id) {
    case TraceScopeId::receive: return "receive";
    case TraceScopeId::choose_filter: return "choose_filter";
    case TraceScopeId::filter_apply: return "filter_apply";
    case TraceScopeId::preamble_acquire: return "preamble_acquire";
    case TraceScopeId::carrier_track: return "carrier_track";
    case TraceScopeId::demod_despread: return "demod_despread";
    case TraceScopeId::fault_inject: return "fault_inject";
  }
  return "unknown";
}

TraceSink::TraceSink(std::size_t capacity) {
  BHSS_REQUIRE(capacity >= 1, "TraceSink: capacity must be >= 1");
  ring_.resize(capacity);
}

void TraceSink::push(const TraceEvent& ev) noexcept {
  ring_[next_] = ev;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits at `next_` once the ring has wrapped, else at 0.
  const std::size_t start = (size_ == ring_.size()) ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceSink::note_scope(TraceScopeId id, std::uint64_t ns) noexcept {
  TraceScopeStats& s = scopes_[static_cast<std::size_t>(id)];
  s.calls += 1;
  s.total_ns += ns;
  if (ns > s.max_ns) s.max_ns = ns;
}

void TraceSink::restore_total(std::uint64_t total) noexcept {
  if (total > total_) total_ = total;
}

void TraceSink::merge_scopes_from(const TraceSink& other) noexcept {
  for (std::size_t i = 0; i < kNumTraceScopes; ++i) {
    scopes_[i].calls += other.scopes_[i].calls;
    scopes_[i].total_ns += other.scopes_[i].total_ns;
    if (other.scopes_[i].max_ns > scopes_[i].max_ns) scopes_[i].max_ns = other.scopes_[i].max_ns;
  }
}

}  // namespace bhss::obs
