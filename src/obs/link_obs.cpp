#include "obs/link_obs.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "core/contracts.hpp"

namespace bhss::obs {

namespace {

struct LinkSchema {
  MetricsRegistry registry;
  LinkIds ids;
};

LinkSchema build_link_schema() {
  LinkSchema s;
  MetricsRegistry& r = s.registry;
  LinkIds& id = s.ids;
  id.packets = r.add_counter("packets");
  id.delivered = r.add_counter("delivered");
  id.detected = r.add_counter("detected");
  id.sync_attempts = r.add_counter("sync_attempts");
  id.sync_locks = r.add_counter("sync_locks");
  id.sync_losses = r.add_counter("sync_losses");
  id.reacquired = r.add_counter("reacquired");
  id.hops = r.add_counter("hops");
  id.filter_none = r.add_counter("filter_none");
  id.filter_lowpass = r.add_counter("filter_lowpass");
  id.filter_excision = r.add_counter("filter_excision");
  id.degenerate_psd = r.add_counter("degenerate_psd");
  id.input_scrubbed = r.add_counter("input_scrubbed");
  id.fault_events = r.add_counter("fault_events");
  id.filter_cache_hits = r.add_counter("filter_cache_hits");
  id.filter_cache_misses = r.add_counter("filter_cache_misses");
  id.adapt_windows = r.add_counter("adapt_windows");
  id.adapt_windows_jammed = r.add_counter("adapt_windows_jammed");
  id.adapt_transitions = r.add_counter("adapt_transitions");
  id.adapt_packets_adapted = r.add_counter("adapt_packets_adapted");
  id.last_sync_quality = r.add_gauge("last_sync_quality");
  id.last_sync_margin = r.add_gauge("last_sync_margin");
  id.adapt_state = r.add_gauge("adapt_state");
  // Occupancy fraction of the slice bandwidth, eq. (10)'s left-hand side.
  id.est_jammer_bw = r.add_histogram(
      "est_jammer_bw", {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0});
  id.inband_peak_db = r.add_histogram("inband_peak_db", {0.0, 2.0, 4.0, 5.5, 8.0, 12.0, 20.0, 40.0});
  id.sync_margin = r.add_histogram("sync_margin", {0.0, 2.0, 4.5, 7.0, 10.0, 15.0, 25.0, 50.0});
  return s;
}

const LinkSchema& link_schema() {
  // Immortal (never destroyed) so shards bound to it stay valid through
  // static teardown in any translation unit; the union suppresses the
  // destructor without a raw-new leak (no-destruct idiom).
  union Holder {
    LinkSchema schema;
    Holder() : schema(build_link_schema()) {}
    ~Holder() {}  // never destroy schema
  };
  static const Holder holder;
  return holder.schema;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void append_double(std::string& out, const char* key, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, v);
  } else {
    // NaN/Inf are not JSON numbers; quote them so the line stays parseable.
    std::snprintf(buf, sizeof(buf), "\"%s\":\"%s\"", key,
                  std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
  }
  out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  out += buf;
}

const char* filter_flag_name(std::uint8_t flag) noexcept {
  switch (flag) {
    case 0: return "none";
    case 1: return "lowpass";
    case 2: return "excision";
    case 3: return "degenerate";
    default: return "unknown";
  }
}

const char* sync_outcome_name(std::uint8_t flag) noexcept {
  switch (flag) {
    case 0: return "miss";
    case 1: return "lock";
    case 2: return "cfar_reject";
    default: return "unknown";
  }
}

const char* adapt_state_name(std::uint8_t flag) noexcept {
  switch (flag) {
    case 0: return "nominal";
    case 1: return "degraded";
    case 2: return "fallback";
    case 3: return "recovering";
    default: return "unknown";
  }
}

}  // namespace

namespace {

struct FleetSchema {
  MetricsRegistry registry;
  FleetIds ids;
};

FleetSchema build_fleet_schema() {
  FleetSchema s;
  MetricsRegistry& r = s.registry;
  FleetIds& id = s.ids;
  id.worker_restarts = r.add_counter("worker_restarts");
  id.worker_crashes = r.add_counter("worker_crashes");
  id.worker_drains = r.add_counter("worker_drains");
  id.workers_failed = r.add_counter("workers_failed");
  id.shards_quarantined = r.add_counter("shards_quarantined");
  return s;
}

const FleetSchema& fleet_schema() {
  // Same immortality rationale as link_schema() above.
  union Holder {
    FleetSchema schema;
    Holder() : schema(build_fleet_schema()) {}
    ~Holder() {}  // never destroy schema
  };
  static const Holder holder;
  return holder.schema;
}

}  // namespace

const MetricsRegistry& link_registry() { return link_schema().registry; }
const LinkIds& link_ids() { return link_schema().ids; }
const MetricsRegistry& fleet_registry() { return fleet_schema().registry; }
const FleetIds& fleet_ids() { return fleet_schema().ids; }

ShardTelemetry merge_telemetry(const std::vector<ShardTelemetry>& shards,
                               std::size_t expected_shards) {
  BHSS_REQUIRE(shards.size() == expected_shards,
               "merge_telemetry: telemetry vector length must equal the shard count "
               "(shared merge-order contract, see link_obs.hpp)");
  ShardTelemetry merged;
  for (const ShardTelemetry& shard : shards) {  // left fold, ascending shard order
    merged.metrics.merge_from(shard.metrics);
    merged.trace.merge_scopes_from(shard.trace);
  }
  return merged;
}

std::string serialize_telemetry(const ShardTelemetry& t) {
  const MetricsRegistry& reg = link_registry();
  BHSS_REQUIRE(t.metrics.registry() == &reg,
               "serialize_telemetry: shard must use the canonical link registry");
  std::string out = "obs1";
  char buf[64];
  const auto put_u64 = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), " %" PRIu64, v);
    out += buf;
  };
  const auto put_bits = [&](double v) {
    std::snprintf(buf, sizeof(buf), " %016" PRIx64, double_bits(v));
    out += buf;
  };

  out += " c";
  put_u64(reg.n_counters());
  out += " g";
  put_u64(reg.n_gauges());
  out += " h";
  put_u64(reg.n_histograms());
  for (std::size_t id = 0; id < reg.size(); ++id) {
    switch (reg.kind(id)) {
      case InstrumentKind::counter: put_u64(t.metrics.counter(id)); break;
      case InstrumentKind::gauge: {
        const std::optional<double> v = t.metrics.gauge(id);
        if (v.has_value()) {
          put_bits(*v);
        } else {
          out += " u";
        }
        break;
      }
      case InstrumentKind::histogram: {
        const std::vector<std::uint64_t>& bins = t.metrics.histogram(id);
        put_u64(bins.size());
        for (std::uint64_t b : bins) put_u64(b);
        break;
      }
    }
  }
  out += " t";
  put_u64(t.trace.capacity());
  put_u64(t.trace.total_recorded());
  const std::vector<TraceEvent> events = t.trace.events();
  put_u64(events.size());
  for (const TraceEvent& ev : events) {
    put_u64(static_cast<std::uint64_t>(ev.type));
    put_u64(ev.flag);
    put_u64(ev.bw_index);
    put_u64(ev.hop);
    put_u64(ev.packet);
    put_bits(ev.v0);
    put_bits(ev.v1);
    put_bits(ev.v2);
    put_bits(ev.v3);
    put_bits(ev.v4);
    put_bits(ev.v5);
  }
  return out;
}

bool deserialize_telemetry(std::string_view text, ShardTelemetry& out) {
  std::istringstream in{std::string(text)};
  std::string tok;
  const auto next = [&](std::string& t) -> bool { return static_cast<bool>(in >> t); };
  const auto next_u64 = [&](std::uint64_t& v) -> bool {
    std::string t;
    if (!next(t)) return false;
    char* end = nullptr;
    v = std::strtoull(t.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && end != t.c_str();
  };
  const auto next_hex_bits = [&](double& v) -> bool {
    std::string t;
    if (!next(t)) return false;
    if (t.size() != 16) return false;
    char* end = nullptr;
    const std::uint64_t bits = std::strtoull(t.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return false;
    v = bits_double(bits);
    return true;
  };

  if (!next(tok) || tok != "obs1") return false;
  const MetricsRegistry& reg = link_registry();
  std::uint64_t n_counters = 0;
  std::uint64_t n_gauges = 0;
  std::uint64_t n_hists = 0;
  if (!next(tok) || tok != "c" || !next_u64(n_counters)) return false;
  if (!next(tok) || tok != "g" || !next_u64(n_gauges)) return false;
  if (!next(tok) || tok != "h" || !next_u64(n_hists)) return false;
  if (n_counters != reg.n_counters() || n_gauges != reg.n_gauges() ||
      n_hists != reg.n_histograms()) {
    return false;  // schema drift: refuse rather than misattribute slots
  }

  // Parse metric values first, then rebuild `out` only on full success.
  std::vector<std::uint64_t> counters;
  std::vector<std::pair<bool, double>> gauges;
  std::vector<std::vector<std::uint64_t>> hists;
  for (std::size_t id = 0; id < reg.size(); ++id) {
    switch (reg.kind(id)) {
      case InstrumentKind::counter: {
        std::uint64_t v = 0;
        if (!next_u64(v)) return false;
        counters.push_back(v);
        break;
      }
      case InstrumentKind::gauge: {
        if (!next(tok)) return false;
        if (tok == "u") {
          gauges.emplace_back(false, 0.0);
        } else {
          if (tok.size() != 16) return false;
          char* end = nullptr;
          const std::uint64_t bits = std::strtoull(tok.c_str(), &end, 16);
          if (end == nullptr || *end != '\0') return false;
          gauges.emplace_back(true, bits_double(bits));
        }
        break;
      }
      case InstrumentKind::histogram: {
        std::uint64_t n_bins = 0;
        if (!next_u64(n_bins)) return false;
        if (n_bins != reg.histogram_bins(id)) return false;
        std::vector<std::uint64_t> bins(n_bins, 0);
        for (std::uint64_t& b : bins) {
          if (!next_u64(b)) return false;
        }
        hists.push_back(std::move(bins));
        break;
      }
    }
  }

  std::uint64_t capacity = 0;
  std::uint64_t total = 0;
  std::uint64_t retained = 0;
  if (!next(tok) || tok != "t") return false;
  if (!next_u64(capacity) || !next_u64(total) || !next_u64(retained)) return false;
  if (capacity < 1 || retained > capacity || retained > total) return false;
  std::vector<TraceEvent> events(retained);
  for (TraceEvent& ev : events) {
    std::uint64_t type = 0;
    std::uint64_t flag = 0;
    std::uint64_t bw = 0;
    std::uint64_t hop = 0;
    if (!next_u64(type) || !next_u64(flag) || !next_u64(bw) || !next_u64(hop) ||
        !next_u64(ev.packet)) {
      return false;
    }
    if (type >= kNumTraceEventTypes || flag > 0xFF || bw > 0xFFFF || hop > 0xFFFFFFFFull) {
      return false;
    }
    ev.type = static_cast<TraceEventType>(type);
    ev.flag = static_cast<std::uint8_t>(flag);
    ev.bw_index = static_cast<std::uint16_t>(bw);
    ev.hop = static_cast<std::uint32_t>(hop);
    if (!next_hex_bits(ev.v0) || !next_hex_bits(ev.v1) || !next_hex_bits(ev.v2) ||
        !next_hex_bits(ev.v3) || !next_hex_bits(ev.v4) || !next_hex_bits(ev.v5)) {
      return false;
    }
  }
  if (next(tok)) return false;  // trailing garbage

  out = ShardTelemetry(static_cast<std::size_t>(capacity));
  std::size_t ci = 0;
  std::size_t gi = 0;
  std::size_t hi = 0;
  for (std::size_t id = 0; id < reg.size(); ++id) {
    switch (reg.kind(id)) {
      case InstrumentKind::counter:
        out.metrics.add(id, counters[ci++]);
        break;
      case InstrumentKind::gauge:
        if (gauges[gi].first) out.metrics.set(id, gauges[gi].second);
        ++gi;
        break;
      case InstrumentKind::histogram: {
        // Replay bin counts through observe() is impossible (bin -> value
        // is not invertible); rebuild the raw storage via merge of a
        // synthetic shard would need the same trick. Keep it simple:
        // observe a representative value per bin the right number of
        // times. Representative values: below first edge, each edge, and
        // NaN for the NaN bin.
        const std::vector<double>& edges = reg.instruments()[id].bin_edges;
        const std::vector<std::uint64_t>& bins = hists[hi++];
        for (std::size_t b = 0; b < bins.size(); ++b) {
          if (bins[b] == 0) continue;
          double rep = 0.0;
          if (b == 0) {
            rep = edges.front() - 1.0;
          } else if (b == bins.size() - 1) {
            rep = std::nan("");
          } else if (b == edges.size()) {
            rep = edges.back();
          } else {
            rep = edges[b - 1];
          }
          for (std::uint64_t k = 0; k < bins[b]; ++k) out.metrics.observe(id, rep);
        }
        break;
      }
    }
  }
  for (const TraceEvent& ev : events) out.trace.push(ev);
  // Dropped events are gone but their count must survive the round trip
  // (the emitters' drop accounting depends on it).
  if (total > retained) out.trace.restore_total(total);
  return true;
}

std::string metrics_json_body(const MetricsShard& m) {
  const MetricsRegistry& reg = *m.registry();
  std::string out;
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (std::size_t id = 0; id < reg.size(); ++id) {
    const InstrumentSpec& spec = reg.instruments()[id];
    switch (spec.kind) {
      case InstrumentKind::counter:
        sep();
        append_u64(out, spec.name.c_str(), m.counter(id));
        break;
      case InstrumentKind::gauge: {
        sep();
        const std::optional<double> v = m.gauge(id);
        if (v.has_value()) {
          append_double(out, spec.name.c_str(), *v);
        } else {
          out += '"';
          out += spec.name;
          out += "\":null";
        }
        break;
      }
      case InstrumentKind::histogram: {
        sep();
        out += '"';
        out += spec.name;
        out += "\":[";
        const std::vector<std::uint64_t>& bins = m.histogram(id);
        for (std::size_t b = 0; b < bins.size(); ++b) {
          if (b > 0) out += ',';
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%" PRIu64, bins[b]);
          out += buf;
        }
        out += ']';
        break;
      }
    }
  }
  return out;
}

std::string trace_event_json_body(const TraceEvent& ev) {
  std::string out;
  out += "\"event\":\"";
  out += trace_event_name(ev.type);
  out += '"';
  const auto field_u64 = [&](const char* key, std::uint64_t v) {
    out += ',';
    append_u64(out, key, v);
  };
  const auto field_d = [&](const char* key, double v) {
    out += ',';
    append_double(out, key, v);
  };
  field_u64("pkt", ev.packet);
  switch (ev.type) {
    case TraceEventType::hop_decision:
      field_u64("hop", ev.hop);
      field_u64("bw", ev.bw_index);
      out += ",\"filter\":\"";
      out += filter_flag_name(ev.flag);
      out += '"';
      field_d("est_jam_bw", ev.v0);
      field_d("jam_bw_guard", ev.v1);
      field_d("peak_db", ev.v2);
      field_d("peak_thresh_db", ev.v3);
      field_d("oob_db", ev.v4);
      field_d("oob_thresh_db", ev.v5);
      break;
    case TraceEventType::sync_attempt:
      field_u64("attempt", ev.hop);
      out += ",\"outcome\":\"";
      out += sync_outcome_name(ev.flag);
      out += '"';
      field_d("threshold", ev.v0);
      field_d("max_lag", ev.v1);
      field_d("quality", ev.v2);
      field_d("margin", ev.v3);
      break;
    case TraceEventType::sync_lock:
      field_u64("attempts", ev.hop);
      field_u64("reacquired", ev.flag);
      field_d("frame_start", ev.v0);
      field_d("phase", ev.v1);
      field_d("cfo", ev.v2);
      field_d("quality", ev.v3);
      field_d("margin", ev.v4);
      break;
    case TraceEventType::sync_loss:
      field_u64("attempts", ev.hop);
      break;
    case TraceEventType::fault_applied:
      field_u64("ordinal", ev.hop);
      field_u64("kind", ev.flag);
      field_d("offset", ev.v0);
      field_d("len", ev.v1);
      field_d("magnitude", ev.v2);
      break;
    case TraceEventType::packet_done:
      field_u64("hops", ev.hop);
      field_u64("delivered", ev.flag);
      field_d("sync_attempts", ev.v0);
      field_d("filter_fallbacks", ev.v1);
      field_d("detected", ev.v2);
      break;
    case TraceEventType::adapt_window:
      field_u64("window", ev.hop);
      field_u64("jammed", ev.flag);
      field_d("bad_frac", ev.v0);
      field_d("threshold", ev.v1);
      field_d("bad", ev.v2);
      field_d("streak", ev.v3);
      break;
    case TraceEventType::adapt_transition:
      field_u64("window", ev.hop);
      out += ",\"to\":\"";
      out += adapt_state_name(ev.flag);
      out += '"';
      field_d("from", ev.v0);
      field_d("symbols_per_hop", ev.v1);
      field_d("epoch", ev.v2);
      break;
  }
  return out;
}

std::string scope_stats_json_body(const TraceSink& t) {
  std::string out;
  bool first = true;
  for (std::size_t i = 0; i < kNumTraceScopes; ++i) {
    const TraceScopeId id = static_cast<TraceScopeId>(i);
    const TraceScopeStats& s = t.scope(id);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s_calls\":%" PRIu64 ",\"%s_total_ns\":%" PRIu64 ",\"%s_max_ns\":%" PRIu64,
                  first ? "" : ",", trace_scope_name(id), s.calls, trace_scope_name(id), s.total_ns,
                  trace_scope_name(id), s.max_ns);
    out += buf;
    first = false;
  }
  return out;
}

}  // namespace bhss::obs
