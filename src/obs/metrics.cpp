#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/contracts.hpp"

namespace bhss::obs {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::size_t MetricsRegistry::add(std::string name, InstrumentKind kind,
                                 std::vector<double> edges) {
  BHSS_REQUIRE(valid_name(name), "MetricsRegistry: instrument name must be a [A-Za-z0-9_.]+ identifier");
  BHSS_REQUIRE(!find(name).has_value(), "MetricsRegistry: duplicate instrument name");
  if (kind == InstrumentKind::histogram) {
    BHSS_REQUIRE(edges.size() >= 2, "MetricsRegistry: histogram needs >= 2 bin edges");
    for (std::size_t i = 0; i < edges.size(); ++i) {
      BHSS_REQUIRE(std::isfinite(edges[i]), "MetricsRegistry: histogram bin edges must be finite");
      if (i > 0) {
        BHSS_REQUIRE(edges[i - 1] < edges[i],
                     "MetricsRegistry: histogram bin edges must be strictly increasing");
      }
    }
  }
  const std::size_t id = instruments_.size();
  switch (kind) {
    case InstrumentKind::counter: slots_.push_back(n_counters_++); break;
    case InstrumentKind::gauge: slots_.push_back(n_gauges_++); break;
    case InstrumentKind::histogram: slots_.push_back(n_histograms_++); break;
  }
  instruments_.push_back(InstrumentSpec{std::move(name), kind, std::move(edges)});
  return id;
}

std::size_t MetricsRegistry::add_counter(std::string name) {
  return add(std::move(name), InstrumentKind::counter, {});
}

std::size_t MetricsRegistry::add_gauge(std::string name) {
  return add(std::move(name), InstrumentKind::gauge, {});
}

std::size_t MetricsRegistry::add_histogram(std::string name, std::vector<double> edges) {
  return add(std::move(name), InstrumentKind::histogram, std::move(edges));
}

std::optional<std::size_t> MetricsRegistry::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < instruments_.size(); ++i) {
    if (instruments_[i].name == name) return i;
  }
  return std::nullopt;
}

InstrumentKind MetricsRegistry::kind(std::size_t id) const {
  BHSS_REQUIRE(id < instruments_.size(), "MetricsRegistry: instrument id out of range");
  return instruments_[id].kind;
}

std::size_t MetricsRegistry::slot(std::size_t id) const {
  BHSS_REQUIRE(id < slots_.size(), "MetricsRegistry: instrument id out of range");
  return slots_[id];
}

std::size_t MetricsRegistry::histogram_bins(std::size_t id) const {
  BHSS_REQUIRE(kind(id) == InstrumentKind::histogram, "MetricsRegistry: not a histogram");
  return instruments_[id].bin_edges.size() + 2;
}

std::size_t MetricsRegistry::bin_of(const std::vector<double>& edges, double v) noexcept {
  const std::size_t m = edges.size();
  if (std::isnan(v)) return m + 1;
  if (v < edges.front()) return 0;
  if (v >= edges.back()) return m;
  // First edge strictly greater than v; v >= edges[j-1] so the interior
  // bin opened by edges[j-1] is bin j (bin 0 is underflow).
  const auto it = std::upper_bound(edges.begin(), edges.end(), v);
  return static_cast<std::size_t>(it - edges.begin());
}

void MetricsShard::bind(const MetricsRegistry* registry) {
  BHSS_REQUIRE(registry != nullptr, "MetricsShard: null registry");
  registry_ = registry;
  counters_.assign(registry->n_counters(), 0);
  gauge_values_.assign(registry->n_gauges(), 0.0);
  gauge_set_.assign(registry->n_gauges(), 0);
  histograms_.clear();
  histograms_.reserve(registry->n_histograms());
  for (const InstrumentSpec& spec : registry->instruments()) {
    if (spec.kind == InstrumentKind::histogram) {
      histograms_.emplace_back(spec.bin_edges.size() + 2, 0);
    }
  }
}

void MetricsShard::add(std::size_t id, std::uint64_t n) noexcept {
  BHSS_DEBUG_ASSERT(registry_ != nullptr && registry_->kind(id) == InstrumentKind::counter,
                    "MetricsShard::add: not a counter");
  counters_[registry_->slot(id)] += n;
}

void MetricsShard::set(std::size_t id, double value) noexcept {
  BHSS_DEBUG_ASSERT(registry_ != nullptr && registry_->kind(id) == InstrumentKind::gauge,
                    "MetricsShard::set: not a gauge");
  const std::size_t s = registry_->slot(id);
  gauge_values_[s] = value;
  gauge_set_[s] = 1;
}

void MetricsShard::observe(std::size_t id, double value) noexcept {
  BHSS_DEBUG_ASSERT(registry_ != nullptr && registry_->kind(id) == InstrumentKind::histogram,
                    "MetricsShard::observe: not a histogram");
  const std::size_t s = registry_->slot(id);
  histograms_[s][MetricsRegistry::bin_of(registry_->instruments()[id].bin_edges, value)] += 1;
}

std::uint64_t MetricsShard::counter(std::size_t id) const {
  BHSS_REQUIRE(registry_ != nullptr && registry_->kind(id) == InstrumentKind::counter,
               "MetricsShard::counter: not a counter");
  return counters_[registry_->slot(id)];
}

std::optional<double> MetricsShard::gauge(std::size_t id) const {
  BHSS_REQUIRE(registry_ != nullptr && registry_->kind(id) == InstrumentKind::gauge,
               "MetricsShard::gauge: not a gauge");
  const std::size_t s = registry_->slot(id);
  if (gauge_set_[s] == 0) return std::nullopt;
  return gauge_values_[s];
}

const std::vector<std::uint64_t>& MetricsShard::histogram(std::size_t id) const {
  BHSS_REQUIRE(registry_ != nullptr && registry_->kind(id) == InstrumentKind::histogram,
               "MetricsShard::histogram: not a histogram");
  return histograms_[registry_->slot(id)];
}

void MetricsShard::merge_from(const MetricsShard& other) {
  BHSS_REQUIRE(registry_ != nullptr && registry_ == other.registry_,
               "MetricsShard::merge_from: shards must share one registry");
  for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  for (std::size_t i = 0; i < gauge_values_.size(); ++i) {
    if (other.gauge_set_[i] != 0) {  // rightmost-set-wins
      gauge_values_[i] = other.gauge_values_[i];
      gauge_set_[i] = 1;
    }
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    for (std::size_t b = 0; b < histograms_[i].size(); ++b) {
      histograms_[i][b] += other.histograms_[i][b];
    }
  }
}

bool MetricsShard::operator==(const MetricsShard& other) const {
  if (registry_ != other.registry_) return false;
  if (counters_ != other.counters_ || gauge_set_ != other.gauge_set_ ||
      histograms_ != other.histograms_) {
    return false;
  }
  // Compare gauge values bitwise (a NaN-valued gauge still round-trips).
  for (std::size_t i = 0; i < gauge_values_.size(); ++i) {
    if (gauge_set_[i] == 0) continue;
    const double a = gauge_values_[i];
    const double b = other.gauge_values_[i];
    if (std::memcmp(&a, &b, sizeof(double)) != 0) return false;
  }
  return true;
}

}  // namespace bhss::obs
