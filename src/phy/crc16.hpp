#pragma once

/// @file crc16.hpp
/// CRC-16/CCITT-FALSE frame check sequence. The paper's frame format
/// (§6.1, modelled on IEEE 802.15.4) carries a CRC used to decide whether
/// a packet was received correctly; packet loss in all experiments is
/// defined as "CRC does not match the content".

#include <cstdint>
#include <span>

namespace bhss::phy {

/// Compute CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection,
/// no final xor) over `data`. check("123456789") == 0x29B1.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept;

/// Incremental variant: continue a CRC with more data.
[[nodiscard]] std::uint16_t crc16_ccitt_update(std::uint16_t crc,
                                               std::span<const std::uint8_t> data) noexcept;

}  // namespace bhss::phy
