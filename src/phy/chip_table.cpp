#include "phy/chip_table.hpp"

namespace bhss::phy {
namespace {

/// Base chip sequence of symbol 0 (IEEE 802.15.4-2011, table 73), chip c0
/// first: 1101 1001 1100 0011 0101 0010 0010 1110.
constexpr std::array<int, kChipsPerSymbol> kBase = {
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
    0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
};

}  // namespace

ChipTable::ChipTable() {
  for (std::size_t s = 0; s < kNumSymbols; ++s) {
    const std::size_t rotation = 4 * (s % 8);
    const bool invert_odd = s >= 8;
    for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
      int bit = kBase[(c + rotation) % kChipsPerSymbol];
      if (invert_odd && (c % 2 == 1)) bit ^= 1;
      rows_[s][c] = bit ? -1.0F : 1.0F;
    }
  }
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
    for (std::size_t s = 0; s < kNumSymbols; ++s) cols_[c * kNumSymbols + s] = rows_[s][c];
  }
}

int ChipTable::cross_correlation(std::uint8_t a, std::uint8_t b) const noexcept {
  float acc = 0.0F;
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) acc += rows_[a][c] * rows_[b][c];
  return static_cast<int>(acc);
}

const ChipTable& ChipTable::instance() {
  static const ChipTable table;
  return table;
}

}  // namespace bhss::phy
