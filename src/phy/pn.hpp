#pragma once

/// @file pn.hpp
/// Pseudo-noise chip generation. BHSS (like DSSS) derives its spreading
/// randomness from a seed shared between transmitter and receiver; the
/// jammer cannot predict the chip stream. We use a Fibonacci LFSR with
/// maximal-length taps, plus a scrambler helper that whitens the fixed
/// 802.15.4 chip table so the over-the-air chip stream is unpredictable.

#include <cstdint>

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::phy {

/// Maximal-length Galois LFSR over GF(2). Default taps implement
/// x^16 + x^14 + x^13 + x^11 + 1 (period 65535).
class LfsrPn {
 public:
  /// @param seed  non-zero initial register state (zero is re-mapped to 1).
  /// @param taps  Galois tap mask xor-ed into the state when the output
  ///              bit is 1.
  explicit LfsrPn(std::uint32_t seed, std::uint32_t taps = 0xB400U,
                  unsigned length = 16) noexcept;

  /// Next chip as 0/1.
  [[nodiscard]] BHSS_HOT bool next_bit() noexcept;

  /// Next chip as +1.0f / -1.0f (bit 0 -> +1, bit 1 -> -1).
  [[nodiscard]] BHSS_HOT float next_chip() noexcept;

  /// Fill a buffer with +-1 chips.
  BHSS_HOT void fill_chips(std::span<float> out) noexcept;

  /// Current register state (for tests).
  [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

 private:
  std::uint32_t state_;
  std::uint32_t taps_;
  std::uint32_t mask_;
};

}  // namespace bhss::phy
