#pragma once

/// @file chip_table.hpp
/// 16-ary quasi-orthogonal chip table, modelled on the IEEE 802.15.4
/// 2450 MHz O-QPSK PHY: each 4-bit symbol is spread to 32 chips
/// (spreading factor 8 per the paper's §6.1, processing gain 9 dB).
/// Even symbols 0..7 are 4-chip cyclic rotations of a base m-sequence;
/// symbols 8..15 are the same rotations with the odd-indexed chips
/// inverted (which corresponds to conjugating the O-QPSK waveform).

#include <array>
#include <cstdint>

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::phy {

inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr std::size_t kNumSymbols = 16;
inline constexpr std::size_t kBitsPerSymbol = 4;

/// One spreading sequence: 32 antipodal chips (+1/-1).
using ChipSequence = std::array<float, kChipsPerSymbol>;

/// The full 16-row chip table.
class ChipTable {
 public:
  ChipTable();

  /// Chip sequence for symbol `s` (0..15).
  [[nodiscard]] BHSS_HOT const ChipSequence& sequence(std::uint8_t s) const noexcept {
    return rows_[s];
  }

  /// Column-major (structure-of-arrays) view of the table:
  /// columns()[c * kNumSymbols + s] == sequence(s)[c]. This is the layout
  /// the vectorized 16-ary despreader wants — chip c of all 16 candidate
  /// symbols is one contiguous run of 16 floats.
  [[nodiscard]] BHSS_HOT const float* columns() const noexcept { return cols_.data(); }

  /// Normalised cross-correlation (in chips, -32..32) between two rows.
  [[nodiscard]] int cross_correlation(std::uint8_t a, std::uint8_t b) const noexcept;

  /// Singleton accessor; the table is immutable.
  [[nodiscard]] static const ChipTable& instance();

 private:
  std::array<ChipSequence, kNumSymbols> rows_;
  std::array<float, kChipsPerSymbol * kNumSymbols> cols_;  ///< transposed rows_
};

}  // namespace bhss::phy
