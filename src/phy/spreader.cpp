#include "phy/spreader.hpp"

#include <limits>
#include <numbers>

#include "core/contracts.hpp"
#include "dsp/simd/simd.hpp"

namespace bhss::phy {

// The despreader's processing gain and the pair-wise QPSK mapping both
// rely on the chip geometry being a power of two; guard it once here.
static_assert((kChipsPerSymbol & (kChipsPerSymbol - 1)) == 0,
              "kChipsPerSymbol must be a power of two");
static_assert((kNumSymbols & (kNumSymbols - 1)) == 0, "kNumSymbols must be a power of two");

Spreader::Spreader(std::uint32_t scrambler_seed)
    : scrambling_(scrambler_seed != 0), pn_(scrambler_seed) {}

void Spreader::spread_symbol(std::uint8_t symbol, std::vector<float>& out) {
  BHSS_REQUIRE(symbol < kNumSymbols, "spread_symbol: symbol must be 0..15");
  const ChipSequence& row = ChipTable::instance().sequence(symbol);
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
    const float s = scrambling_ ? pn_.next_chip() : 1.0F;
    out.push_back(row[c] * s);
  }
}

std::vector<float> Spreader::spread(std::span<const std::uint8_t> symbols) {
  std::vector<float> out;
  out.reserve(symbols.size() * kChipsPerSymbol);
  for (std::uint8_t s : symbols) spread_symbol(s, out);
  return out;
}

Despreader::Despreader(std::uint32_t scrambler_seed)
    : scrambling_(scrambler_seed != 0), pn_(scrambler_seed) {}

DespreadResult Despreader::despread_symbol(std::span<const float> soft_chips) {
  BHSS_REQUIRE(soft_chips.size() == kChipsPerSymbol, "despread_symbol: need exactly 32 soft chips");

  // Undo the scrambler once, then correlate with every candidate row.
  std::array<float, kChipsPerSymbol> descrambled{};
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
    const float s = scrambling_ ? pn_.next_chip() : 1.0F;
    descrambled[c] = soft_chips[c] * s;
  }

  DespreadResult result;
  result.correlation = -std::numeric_limits<float>::infinity();
  result.runner_up = -std::numeric_limits<float>::infinity();
  const ChipTable& table = ChipTable::instance();
  for (std::uint8_t s = 0; s < kNumSymbols; ++s) {
    const ChipSequence& row = table.sequence(s);
    float corr = 0.0F;
    for (std::size_t c = 0; c < kChipsPerSymbol; ++c) corr += descrambled[c] * row[c];
    if (corr > result.correlation) {
      result.runner_up = result.correlation;
      result.correlation = corr;
      result.symbol = s;
    } else if (corr > result.runner_up) {
      result.runner_up = corr;
    }
  }
  return result;
}

DespreadPairsResult Despreader::despread_pairs(dsp::cspan pairs) {
  BHSS_REQUIRE(pairs.size() == kChipsPerSymbol / 2, "despread_pairs: need exactly 16 chip pairs");

  // Fold the scrambler into the reference rather than "descrambling" the
  // received rails: a carrier rotation mixes the I and Q rails, so
  // rail-wise multiplication of the *received* pair by the scrambler
  // chips would randomise the cross-rail terms and bias the measured
  // phase. Correlating against the scrambled reference keeps the
  // correlation exactly 32 * e^{j phi} for the true symbol.
  std::array<float, kChipsPerSymbol / 2> se;
  std::array<float, kChipsPerSymbol / 2> so;
  double max_corr = 0.0;
  for (std::size_t m = 0; m < pairs.size(); ++m) {
    se[m] = scrambling_ ? pn_.next_chip() : 1.0F;
    so[m] = scrambling_ ? pn_.next_chip() : 1.0F;
    max_corr += static_cast<double>(std::abs(pairs[m])) * std::numbers::sqrt2;
  }

  // All 16 candidate correlations at once over the column-major chip
  // table; the reference applied to each pair is conj(se*A + j so*B).
  // The vectorized kernel accumulates pair index m in the same order as
  // the per-symbol scalar loop did, so the correlations are bit-identical.
  std::array<dsp::cf, kNumSymbols> corr;
  dsp::simd::despread_correlate16(pairs.data(), pairs.size(), se.data(), so.data(),
                                  ChipTable::instance().columns(), corr.data());

  DespreadPairsResult result;
  float best = -std::numeric_limits<float>::infinity();
  for (std::uint8_t s = 0; s < kNumSymbols; ++s) {
    if (corr[s].real() > best) {
      best = corr[s].real();
      result.symbol = s;
      result.correlation = corr[s];
    }
  }
  if (max_corr > 0.0) {
    result.coherence =
        static_cast<float>(static_cast<double>(std::abs(result.correlation)) / max_corr);
  }
  return result;
}

std::vector<std::uint8_t> bytes_to_symbols(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> symbols;
  symbols.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    symbols.push_back(static_cast<std::uint8_t>(b & 0x0FU));
    symbols.push_back(static_cast<std::uint8_t>((b >> 4) & 0x0FU));
  }
  return symbols;
}

std::vector<std::uint8_t> symbols_to_bytes(std::span<const std::uint8_t> symbols) {
  BHSS_REQUIRE(symbols.size() % 2 == 0, "symbols_to_bytes: need an even number of symbols");
  std::vector<std::uint8_t> bytes;
  bytes.reserve(symbols.size() / 2);
  for (std::size_t i = 0; i + 1 < symbols.size(); i += 2) {
    bytes.push_back(static_cast<std::uint8_t>((symbols[i] & 0x0FU) |
                                              ((symbols[i + 1] & 0x0FU) << 4)));
  }
  return bytes;
}

}  // namespace bhss::phy
