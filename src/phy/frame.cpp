#include "phy/frame.hpp"

#include <stdexcept>

#include "core/contracts.hpp"
#include "phy/crc16.hpp"
#include "phy/spreader.hpp"

namespace bhss::phy {

std::vector<std::uint8_t> build_frame_symbols(std::span<const std::uint8_t> payload) {
  BHSS_REQUIRE(payload.size() <= FrameSpec::max_payload, "build_frame_symbols: payload too long");

  std::vector<std::uint8_t> bytes;
  bytes.reserve(4 + 1 + 1 + payload.size() + 2);
  bytes.insert(bytes.end(), 4, std::uint8_t{0x00});  // preamble
  bytes.push_back(FrameSpec::sfd_byte);
  bytes.push_back(static_cast<std::uint8_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  // CRC over length + payload.
  const std::uint16_t crc =
      crc16_ccitt(std::span<const std::uint8_t>{bytes}.subspan(5, 1 + payload.size()));
  bytes.push_back(static_cast<std::uint8_t>(crc & 0xFFU));
  bytes.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFFU));

  return bytes_to_symbols(bytes);
}

std::optional<std::vector<std::uint8_t>> parse_frame_symbols(
    std::span<const std::uint8_t> symbols) {
  constexpr std::size_t header = FrameSpec::preamble_symbols + FrameSpec::sfd_symbols +
                                 FrameSpec::length_symbols;
  if (symbols.size() < header + FrameSpec::crc_symbols) return std::nullopt;

  const std::vector<std::uint8_t> head_bytes = symbols_to_bytes(symbols.first(header));
  if (head_bytes[4] != FrameSpec::sfd_byte) return std::nullopt;
  const std::size_t payload_len = head_bytes[5];
  if (symbols.size() < FrameSpec::total_symbols(payload_len)) return std::nullopt;

  const std::size_t body_symbols = 2 * payload_len + FrameSpec::crc_symbols;
  const std::vector<std::uint8_t> body =
      symbols_to_bytes(symbols.subspan(header, body_symbols));

  std::vector<std::uint8_t> check;
  check.reserve(1 + payload_len);
  check.push_back(head_bytes[5]);
  check.insert(check.end(), body.begin(), body.begin() + static_cast<std::ptrdiff_t>(payload_len));
  const std::uint16_t crc = crc16_ccitt(check);
  const std::uint16_t rx_crc = static_cast<std::uint16_t>(
      body[payload_len] | (static_cast<std::uint16_t>(body[payload_len + 1]) << 8));
  if (crc != rx_crc) return std::nullopt;

  return std::vector<std::uint8_t>(body.begin(),
                                   body.begin() + static_cast<std::ptrdiff_t>(payload_len));
}

}  // namespace bhss::phy
