#include "phy/crc16.hpp"

namespace bhss::phy {

std::uint16_t crc16_ccitt_update(std::uint16_t crc, std::span<const std::uint8_t> data) noexcept {
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(static_cast<unsigned>(byte) << 8);
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000U) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021U);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept {
  return crc16_ccitt_update(0xFFFFU, data);
}

}  // namespace bhss::phy
