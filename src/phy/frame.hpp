#pragma once

/// @file frame.hpp
/// Frame format, modelled on IEEE 802.15.4 as in the paper's §6.1:
/// preamble (8 zero symbols), start-of-frame delimiter (0xA7), a length
/// byte, payload and CRC-16. A packet loss is "CRC does not match".

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/types.hpp"

namespace bhss::phy {

/// Frame layout constants (in 4-bit symbols).
struct FrameSpec {
  static constexpr std::size_t preamble_symbols = 8;  ///< 4 bytes of 0x00
  static constexpr std::size_t sfd_symbols = 2;       ///< one byte 0xA7
  static constexpr std::size_t length_symbols = 2;    ///< one length byte
  static constexpr std::size_t crc_symbols = 4;       ///< two CRC bytes
  static constexpr std::uint8_t sfd_byte = 0xA7;
  static constexpr std::size_t max_payload = 255;

  /// Total symbols of a frame with `payload_len` payload bytes.
  [[nodiscard]] static constexpr std::size_t total_symbols(std::size_t payload_len) noexcept {
    return preamble_symbols + sfd_symbols + length_symbols + 2 * payload_len + crc_symbols;
  }

  /// Symbols that follow the preamble (what remains to decode after sync).
  [[nodiscard]] static constexpr std::size_t post_preamble_symbols(std::size_t payload_len) noexcept {
    return total_symbols(payload_len) - preamble_symbols;
  }
};

/// Build the full symbol stream for a payload: preamble, SFD, length,
/// payload, CRC-16 over (length byte + payload).
/// @throws std::invalid_argument if payload exceeds FrameSpec::max_payload.
[[nodiscard]] std::vector<std::uint8_t> build_frame_symbols(
    std::span<const std::uint8_t> payload);

/// Parse a symbol stream that starts at the preamble.
/// @returns the payload iff the SFD matches, the length is consistent with
/// the available symbols, and the CRC checks out; std::nullopt otherwise.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> parse_frame_symbols(
    std::span<const std::uint8_t> symbols);

}  // namespace bhss::phy
