#include "phy/pn.hpp"

namespace bhss::phy {

LfsrPn::LfsrPn(std::uint32_t seed, std::uint32_t taps, unsigned length) noexcept
    : taps_(taps), mask_((length >= 32) ? 0xFFFFFFFFU : ((1U << length) - 1U)) {
  state_ = seed & mask_;
  if (state_ == 0) state_ = 1;  // all-zero is the LFSR's absorbing state
}

bool LfsrPn::next_bit() noexcept {
  // Galois form: shift right, apply the tap mask when a 1 falls out.
  // With the default mask 0xB400 (x^16 + x^14 + x^13 + x^11 + 1) the
  // sequence is maximal length (period 2^16 - 1).
  const bool out = (state_ & 1U) != 0;
  state_ >>= 1;
  if (out) state_ ^= taps_;
  state_ &= mask_;
  return out;
}

float LfsrPn::next_chip() noexcept { return next_bit() ? -1.0F : 1.0F; }

void LfsrPn::fill_chips(std::span<float> out) noexcept {
  for (float& c : out) c = next_chip();
}

}  // namespace bhss::phy
