#pragma once

/// @file spreader.hpp
/// DSSS spreading / despreading on top of the 16-ary chip table, with an
/// optional PN scrambler so the over-the-air chip stream is unpredictable
/// to the jammer (the "PN sequence" box of Fig. 4/6 in the paper).
///
/// Spreading: 4-bit symbol -> 32 chips from the table, each multiplied by
/// a +-1 scrambler chip drawn from a seeded LFSR. Despreading: multiply
/// the received soft chips by the same scrambler, correlate against all
/// 16 table rows and pick the argmax (paper §6.1).

#include <cstdint>
#include <vector>

#include "core/contracts.hpp"
#include "dsp/types.hpp"
#include "phy/chip_table.hpp"
#include "phy/pn.hpp"

namespace bhss::phy {

/// Streaming spreader: converts a symbol stream into antipodal chips.
/// The scrambler LFSR advances 32 chips per symbol; transmitter and
/// receiver must construct their Spreader/Despreader from the same seed.
class Spreader {
 public:
  /// @param scrambler_seed  shared PN seed; 0 disables scrambling.
  explicit Spreader(std::uint32_t scrambler_seed = 0);

  /// Spread one 4-bit symbol into 32 chips appended to `out`.
  void spread_symbol(std::uint8_t symbol, std::vector<float>& out);

  /// Spread a symbol sequence; returns 32 * symbols.size() chips.
  [[nodiscard]] std::vector<float> spread(std::span<const std::uint8_t> symbols);

 private:
  bool scrambling_;
  LfsrPn pn_;
};

/// Result of despreading one symbol.
struct DespreadResult {
  std::uint8_t symbol = 0;    ///< best-matching symbol (0..15)
  float correlation = 0.0F;   ///< winning correlation value
  float runner_up = 0.0F;     ///< second-best correlation (decision margin)
};

/// Result of despreading one symbol from complex chip pairs.
struct DespreadPairsResult {
  std::uint8_t symbol = 0;          ///< best-matching symbol (0..15)
  dsp::cf correlation{0.0F, 0.0F};  ///< complex winning correlation; its
                                    ///< argument is the residual carrier
                                    ///< phase over this symbol
  float coherence = 0.0F;           ///< |correlation| / max achievable, in
                                    ///< [0, 1]; low values flag jammed or
                                    ///< misdecoded symbols
};

/// Streaming despreader (must consume symbols in transmission order so its
/// scrambler stays aligned with the transmitter's).
class Despreader {
 public:
  explicit Despreader(std::uint32_t scrambler_seed = 0);

  /// Correlate 32 received soft chips against all table rows.
  [[nodiscard]] BHSS_HOT DespreadResult despread_symbol(std::span<const float> soft_chips);

  /// Correlate 16 complex chip pairs (from
  /// QpskDemodulator::demodulate_pairs) against all table rows. The
  /// decision maximises the coherent (real) correlation; the returned
  /// complex value additionally measures the residual carrier phase.
  [[nodiscard]] BHSS_HOT DespreadPairsResult despread_pairs(dsp::cspan pairs);

 private:
  bool scrambling_;
  LfsrPn pn_;
};

/// Pack 4-bit symbols (low nibble first, 802.15.4 convention) from bytes.
[[nodiscard]] std::vector<std::uint8_t> bytes_to_symbols(std::span<const std::uint8_t> bytes);

/// Re-assemble bytes from 4-bit symbols; symbols.size() must be even.
[[nodiscard]] std::vector<std::uint8_t> symbols_to_bytes(std::span<const std::uint8_t> symbols);

}  // namespace bhss::phy
