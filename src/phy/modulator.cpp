#include "phy/modulator.hpp"

#include "core/contracts.hpp"
#include "dsp/pulse.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/utils.hpp"

namespace bhss::phy {

QpskModulator::QpskModulator(std::size_t samples_per_chip)
    : sps_(samples_per_chip), pulse_(dsp::half_sine_pulse(2 * samples_per_chip)) {
  BHSS_REQUIRE(sps_ >= 2 && sps_ % 2 == 0,
               "QpskModulator: samples_per_chip must be even and >= 2");
  // The half-sine pulse spans exactly one chip pair; its sample count must
  // match or the rail mapping below misaligns chips and pulses.
  BHSS_ENSURE(pulse_.size() == 2 * sps_, "QpskModulator: pulse length must be 2 * sps");
}

dsp::cvec QpskModulator::modulate(std::span<const float> chips) const {
  BHSS_REQUIRE(chips.size() % 2 == 0, "QpskModulator: chip count must be even");
  const std::size_t n_pairs = chips.size() / 2;
  dsp::cvec out(chips.size() * sps_, dsp::cf{0.0F, 0.0F});
  const std::size_t pulse_len = pulse_.size();  // == 2 * sps_
  for (std::size_t m = 0; m < n_pairs; ++m) {
    const float a = chips[2 * m];      // in-phase chip
    const float b = chips[2 * m + 1];  // quadrature chip
    dsp::simd::scale_pulse(a, b, pulse_.data(), out.data() + pulse_len * m, pulse_len);
  }
  return out;
}

QpskDemodulator::QpskDemodulator(std::size_t samples_per_chip)
    : sps_(samples_per_chip), matched_(dsp::half_sine_matched(2 * samples_per_chip)) {
  BHSS_REQUIRE(sps_ >= 2 && sps_ % 2 == 0,
               "QpskDemodulator: samples_per_chip must be even and >= 2");
  // The matched filter is normalised so a clean unit pulse correlates to
  // ~1 at the sampling instant; a non-finite or empty tap set here would
  // silently zero every soft chip downstream.
  BHSS_ENSURE(!matched_.empty() && dsp::all_finite(dsp::fspan{matched_}),
              "QpskDemodulator: matched filter taps must be finite");
  // The decimating demod kernel samples the filter at instant
  // pulse_len*(m+1)-1 assuming the tap count equals the pulse length.
  BHSS_ENSURE(matched_.size() == 2 * sps_, "QpskDemodulator: matched filter length must be 2 * sps");
}

dsp::cvec QpskDemodulator::demodulate_pairs(dsp::cspan samples, std::size_t n_chips) const {
  BHSS_REQUIRE(n_chips % 2 == 0, "QpskDemodulator: chip count must be even");
  BHSS_REQUIRE(samples.size() >= samples_needed(n_chips),
               "QpskDemodulator: not enough samples for requested chips");

  // Matched-filter output at the end of each chip pair only (the
  // matched-filter peak of non-overlapping pulses). Everything between
  // the sampling instants is never read, so the decimating kernel skips
  // computing it: sampling instant m sits at sample pulse_len*(m+1)-1,
  // which is always >= pulse_len-1, so the zero-state filter start-up
  // region never reaches a sampled output.
  const std::size_t n_pairs = n_chips / 2;
  const std::size_t pulse_len = 2 * sps_;
  dsp::cvec pairs(n_pairs);
  dsp::simd::fir_decimate_real(matched_.data(), pulse_len, samples.data(), pairs.data(), n_pairs,
                               pulse_len);
  return pairs;
}

std::vector<float> QpskDemodulator::demodulate(dsp::cspan samples, std::size_t n_chips) const {
  const dsp::cvec pairs = demodulate_pairs(samples, n_chips);
  std::vector<float> soft(n_chips);
  for (std::size_t m = 0; m < pairs.size(); ++m) {
    soft[2 * m] = pairs[m].real();
    soft[2 * m + 1] = pairs[m].imag();
  }
  return soft;
}

}  // namespace bhss::phy
