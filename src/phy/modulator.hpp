#pragma once

/// @file modulator.hpp
/// QPSK half-sine chip modulation with a configurable number of samples
/// per chip. This is where bandwidth hopping physically happens: the
/// transmitter keeps the sampling rate fixed (the paper uses Rs = 20 MS/s
/// for every bandwidth, §6.1) and stretches the pulse duration by an
/// integer factor, which shrinks the occupied bandwidth by the same
/// factor (eq. (1): g(t) -> g(alpha t)).
///
/// Chip mapping (paper §6.1: "a BHSS transmitter and receiver for the
/// QPSK modulation ... the chips are modulated with a half-sine pulse"):
/// consecutive chip pairs (a, b) form one QPSK symbol a + jb, shaped by a
/// half-sine pulse spanning the two chip periods. Pulses of consecutive
/// pairs do not overlap, so a hop segment is exactly
/// n_chips * samples_per_chip samples long and hops are cleanly
/// separable in time.

#include "dsp/types.hpp"

namespace bhss::phy {

/// Chip-stream modulator for one fixed samples-per-chip setting.
/// Bandwidth hopping is realised by using a different modulator per hop
/// and concatenating the segment waveforms.
class QpskModulator {
 public:
  /// @param samples_per_chip  even and >= 2 (one half-sine pulse spans
  ///                          2 * sps samples = one chip pair).
  explicit QpskModulator(std::size_t samples_per_chip);

  /// Modulate an even number of antipodal chips.
  /// @returns exactly chips.size() * sps samples.
  [[nodiscard]] dsp::cvec modulate(std::span<const float> chips) const;

  /// Samples a segment of `n_chips` occupies: n_chips * sps.
  [[nodiscard]] std::size_t segment_samples(std::size_t n_chips) const noexcept {
    return n_chips * sps_;
  }

  [[nodiscard]] std::size_t samples_per_chip() const noexcept { return sps_; }

  /// Mean transmit power of a long modulated chip stream (two unit-energy
  /// rails per 2*sps samples): 1 / sps.
  [[nodiscard]] double nominal_power() const noexcept {
    return 1.0 / static_cast<double>(sps_);
  }

 private:
  std::size_t sps_;
  dsp::fvec pulse_;  ///< unit-energy half-sine spanning 2*sps samples
};

/// Matched-filter chip demodulator for one samples-per-chip setting.
class QpskDemodulator {
 public:
  explicit QpskDemodulator(std::size_t samples_per_chip);

  /// Recover `n_chips` soft chips from a segment waveform.
  /// @param samples  at least n_chips * sps samples, starting at the first
  ///                 sample of the first pulse.
  /// @returns n_chips soft chip values (sign = hard decision).
  [[nodiscard]] std::vector<float> demodulate(dsp::cspan samples, std::size_t n_chips) const;

  /// Complex matched-filter peaks, one per chip pair (n_chips / 2 values).
  /// The real part carries the even chip, the imaginary part the odd chip;
  /// a residual carrier phase rotates the whole value, which the
  /// despreader's complex correlation can measure and the receiver's
  /// decision-directed tracker exploits.
  [[nodiscard]] dsp::cvec demodulate_pairs(dsp::cspan samples, std::size_t n_chips) const;

  [[nodiscard]] std::size_t samples_per_chip() const noexcept { return sps_; }

  /// Samples required to demodulate n_chips chips.
  [[nodiscard]] std::size_t samples_needed(std::size_t n_chips) const noexcept {
    return n_chips * sps_;
  }

 private:
  std::size_t sps_;
  dsp::fvec matched_;  ///< matched filter taps (== the unit-energy pulse)
};

}  // namespace bhss::phy
