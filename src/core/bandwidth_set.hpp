#pragma once

/// @file bandwidth_set.hpp
/// The discrete set of signal bandwidths BHSS hops over. The paper (§6.2)
/// uses seven bandwidths 10, 5, 2.5, 1.25, 0.625, 0.3125, 0.15625 MHz at a
/// fixed 20 MS/s sampling rate (hopping range 64). Bandwidth is realised
/// by the samples-per-chip factor: B = Rs / sps, sps in {2, 4, ..., 128}.

#include <cstddef>
#include <vector>

namespace bhss::core {

/// An ordered set of hoppable bandwidths (widest first, as in Table 1).
class BandwidthSet {
 public:
  /// @param sample_rate_hz  front-end sampling rate (constant across hops,
  ///                        §6.1: switching Rs would cost processing delay)
  /// @param sps_levels      even samples-per-chip factors, ascending
  ///                        (ascending sps = descending bandwidth)
  BandwidthSet(double sample_rate_hz, std::vector<std::size_t> sps_levels);

  /// The paper's configuration: 20 MS/s, sps in {2,4,8,16,32,64,128}.
  [[nodiscard]] static BandwidthSet paper();

  /// A reduced configuration for fast tests: {2, 4, 8, 16}.
  [[nodiscard]] static BandwidthSet small(double sample_rate_hz = 20e6);

  [[nodiscard]] std::size_t size() const noexcept { return sps_levels_.size(); }
  [[nodiscard]] double sample_rate_hz() const noexcept { return sample_rate_hz_; }
  [[nodiscard]] std::size_t sps(std::size_t i) const { return sps_levels_.at(i); }

  /// Occupied bandwidth of level i in Hz (= chip rate = Rs / sps).
  [[nodiscard]] double bandwidth_hz(std::size_t i) const {
    return sample_rate_hz_ / static_cast<double>(sps_levels_.at(i));
  }

  /// Bandwidth as a fraction of the sampling rate (= 1 / sps).
  [[nodiscard]] double bandwidth_frac(std::size_t i) const {
    return 1.0 / static_cast<double>(sps_levels_.at(i));
  }

  /// max(Bp) / min(Bp), e.g. 64 for the paper set.
  [[nodiscard]] double hopping_range() const noexcept;

  /// Index of the widest bandwidth (smallest sps). Levels are ascending in
  /// sps, so this is 0.
  [[nodiscard]] std::size_t widest_index() const noexcept { return 0; }
  [[nodiscard]] std::size_t narrowest_index() const noexcept { return size() - 1; }

  /// All bandwidth fractions, widest first.
  [[nodiscard]] std::vector<double> bandwidth_fracs() const;

 private:
  double sample_rate_hz_;
  std::vector<std::size_t> sps_levels_;
};

}  // namespace bhss::core
