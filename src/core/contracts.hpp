#pragma once

/// @file contracts.hpp
/// Runtime contracts for the BHSS libraries.
///
/// The receiver chain (excision / low-pass selection per eqs. (3), (4),
/// (10) of the paper) is numerically fragile: a single NaN, out-of-range
/// span or silent narrowing between `dsp/` -> `sync/` -> `core/` corrupts
/// BER curves without failing any test. These macros make such
/// violations loud at the boundary where they happen.
///
///   BHSS_REQUIRE(cond, msg)       precondition  — always checked
///   BHSS_ENSURE(cond, msg)        postcondition — always checked
///   BHSS_DEBUG_ASSERT(cond, msg)  internal invariant — checked only in
///                                 debug builds (compiles out, including
///                                 the condition expression, when
///                                 disabled)
///
/// Failure mode is selected at compile time via BHSS_CONTRACT_MODE:
///
///   BHSS_CONTRACT_MODE_ABORT (0)  print diagnostics to stderr, abort()
///   BHSS_CONTRACT_MODE_THROW (1)  throw bhss::contract_violation
///                                 [default]
///   BHSS_CONTRACT_MODE_LOG   (2)  print diagnostics to stderr, continue
///
/// The default is THROW: `bhss::contract_violation` derives from
/// `std::invalid_argument`, so precondition failures stay catchable by
/// callers (and by tests) exactly as the hand-written `throw
/// std::invalid_argument` checks the contracts replaced.
///
/// BHSS_DEBUG_ASSERT is enabled when NDEBUG is not defined; define
/// BHSS_CONTRACT_DEBUG=0/1 to force it off/on independently of NDEBUG.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#define BHSS_CONTRACT_MODE_ABORT 0
#define BHSS_CONTRACT_MODE_THROW 1
#define BHSS_CONTRACT_MODE_LOG 2

#ifndef BHSS_CONTRACT_MODE
#define BHSS_CONTRACT_MODE BHSS_CONTRACT_MODE_THROW
#endif

#ifndef BHSS_CONTRACT_DEBUG
#ifdef NDEBUG
#define BHSS_CONTRACT_DEBUG 0
#else
#define BHSS_CONTRACT_DEBUG 1
#endif
#endif

namespace bhss {

/// Thrown by violated contracts in BHSS_CONTRACT_MODE_THROW. Derives
/// from std::invalid_argument so callers that caught the pre-contracts
/// exceptions keep working unchanged.
class contract_violation : public std::invalid_argument {
 public:
  contract_violation(const char* kind, const char* condition, const char* message,
                     const char* file, int line)
      : std::invalid_argument(format(kind, condition, message, file, line)),
        kind_(kind),
        condition_(condition) {}

  /// "REQUIRE", "ENSURE" or "DEBUG_ASSERT".
  [[nodiscard]] const char* kind() const noexcept { return kind_; }

  /// The stringified condition that evaluated to false.
  [[nodiscard]] const char* condition() const noexcept { return condition_; }

 private:
  static std::string format(const char* kind, const char* condition, const char* message,
                            const char* file, int line) {
    std::string s;
    s.reserve(128);
    s += file;
    s += ':';
    s += std::to_string(line);
    s += ": BHSS_";
    s += kind;
    s += " failed: ";
    s += message;
    s += " [";
    s += condition;
    s += ']';
    return s;
  }

  const char* kind_;
  const char* condition_;
};

namespace detail {

/// Central contract-failure handler. Kept out of line of the macro so a
/// violated check costs one predictable branch at the call site.
#if BHSS_CONTRACT_MODE == BHSS_CONTRACT_MODE_ABORT
[[noreturn]]
#endif
inline void contract_fail(const char* kind, const char* condition, const char* message,
                          const char* file, int line) {
#if BHSS_CONTRACT_MODE == BHSS_CONTRACT_MODE_THROW
  throw contract_violation(kind, condition, message, file, line);
#else
  std::fprintf(stderr, "%s:%d: BHSS_%s failed: %s [%s]\n", file, line, kind, message, condition);
#if BHSS_CONTRACT_MODE == BHSS_CONTRACT_MODE_ABORT
  std::abort();
#endif
#endif
}

}  // namespace detail
}  // namespace bhss

#define BHSS_CONTRACT_CHECK_(kind, cond, msg)                                       \
  do {                                                                              \
    if (!(cond)) [[unlikely]] {                                                     \
      ::bhss::detail::contract_fail(kind, #cond, msg, __FILE__, __LINE__);          \
    }                                                                               \
  } while (false)

/// Precondition: validate caller-supplied arguments / state at API entry.
#define BHSS_REQUIRE(cond, msg) BHSS_CONTRACT_CHECK_("REQUIRE", cond, msg)

/// Postcondition: validate results before handing them back.
#define BHSS_ENSURE(cond, msg) BHSS_CONTRACT_CHECK_("ENSURE", cond, msg)

/// Internal invariant, checked in debug builds only. The condition is
/// NOT evaluated when disabled — it must be free of needed side effects.
#if BHSS_CONTRACT_DEBUG
#define BHSS_DEBUG_ASSERT(cond, msg) BHSS_CONTRACT_CHECK_("DEBUG_ASSERT", cond, msg)
#else
#define BHSS_DEBUG_ASSERT(cond, msg) static_cast<void>(0)
#endif

/// Marks a function as being on the per-sample hot path of the receiver
/// chain (sample generation -> filtering -> sync -> despreading and the
/// Monte-Carlo inner loop driving them). `scripts/bhss_analyze.py`
/// (check h1-hot-path-purity) walks the call graph from every BHSS_HOT
/// root and rejects allocation, mutex locking and I/O anywhere reachable:
/// those operations turn O(1)-per-sample code into latency cliffs and
/// make shard timing (and with it thread-scheduling) load-dependent.
///
/// Under clang the marker is also a real AST attribute so the libclang
/// frontend (and any attribute-aware tooling) can see it; under other
/// compilers it compiles away entirely. Place it on the declaration,
/// before the return type:
///
///   BHSS_HOT cf process(cf in) noexcept;
#if defined(__clang__)
#define BHSS_HOT [[clang::annotate("bhss_hot")]]
#else
#define BHSS_HOT
#endif
