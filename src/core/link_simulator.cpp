#include "core/link_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>

#include "channel/link_channel.hpp"
#include "fault/fault_injector.hpp"
#include "jammer/band_sweep_jammer.hpp"
#include "jammer/duty_cycle_jammer.hpp"
#include "jammer/estimating_jammer.hpp"
#include "jammer/hopping_jammer.hpp"
#include "jammer/noise_jammer.hpp"
#include "jammer/reactive_jammer.hpp"
#include "jammer/tone_jammer.hpp"

namespace bhss::core {
namespace {

/// Owns whichever jammer the spec asks for and produces per-packet
/// waveforms. Kept alive across packets so the jammer's own randomness
/// does not repeat.
class JammerBox {
 public:
  JammerBox(const JammerSpec& spec, const BandwidthSet& bands) : spec_(spec) {
    switch (spec.kind) {
      case JammerSpec::Kind::none:
        break;
      case JammerSpec::Kind::fixed_bandwidth:
        fixed_.emplace(spec.bandwidth_frac, spec.seed);
        break;
      case JammerSpec::Kind::hopping: {
        std::vector<double> probs = spec.hop_probs;
        if (probs.empty()) probs.assign(bands.size(), 1.0);
        hopping_.emplace(bands.bandwidth_fracs(), probs, spec.dwell_samples, spec.seed);
        break;
      }
      case JammerSpec::Kind::reactive:
        reactive_.emplace(bands.bandwidth_fracs(), spec.reaction_delay, spec.seed,
                          spec.estimation_samples);
        break;
      case JammerSpec::Kind::tone:
        tone_.emplace(spec.tone_freqs, spec.seed);
        break;
      case JammerSpec::Kind::swept:
        swept_.emplace(spec.sweep_lo, spec.sweep_hi, spec.sweep_samples, spec.seed);
        break;
      case JammerSpec::Kind::duty_cycle:
        duty_.emplace(spec.bandwidth_frac, spec.duty_period, spec.duty_fraction, spec.seed);
        break;
      case JammerSpec::Kind::band_sweep:
        band_sweep_.emplace(spec.sweep_lo, spec.sweep_hi, spec.sweep_steps, spec.dwell_samples,
                            spec.sweep_bw_frac, spec.seed);
        break;
      case JammerSpec::Kind::estimating:
        estimating_.emplace(bands.bandwidth_fracs(), spec.estimation_hops, spec.seed);
        break;
    }
  }

  [[nodiscard]] dsp::cvec waveform(const Transmission& tx, const BandwidthSet& bands,
                                   std::size_t delay, std::size_t total_len) {
    switch (spec_.kind) {
      case JammerSpec::Kind::none:
        return {};
      case JammerSpec::Kind::fixed_bandwidth:
        return fixed_->generate(total_len);
      case JammerSpec::Kind::hopping:
        return hopping_->generate(total_len);
      case JammerSpec::Kind::reactive: {
        const auto hops = tx.schedule.observed_hops(bands, delay);
        return reactive_->generate(hops, total_len);
      }
      case JammerSpec::Kind::tone:
        return tone_->generate(total_len);
      case JammerSpec::Kind::swept:
        return swept_->generate(total_len);
      case JammerSpec::Kind::duty_cycle:
        return duty_->generate(total_len);
      case JammerSpec::Kind::band_sweep:
        return band_sweep_->generate(total_len);
      case JammerSpec::Kind::estimating: {
        const auto hops = tx.schedule.observed_hops(bands, delay);
        return estimating_->generate(hops, total_len);
      }
    }
    return {};
  }

 private:
  JammerSpec spec_;
  std::optional<jammer::NoiseJammer> fixed_;
  std::optional<jammer::HoppingJammer> hopping_;
  std::optional<jammer::ReactiveJammer> reactive_;
  std::optional<jammer::ToneJammer> tone_;
  std::optional<jammer::SweptJammer> swept_;
  std::optional<jammer::DutyCycleJammer> duty_;
  std::optional<jammer::BandSweepJammer> band_sweep_;
  std::optional<jammer::EstimatingJammer> estimating_;
};

}  // namespace

LinkStats run_link_shard(const SimConfig& cfg, std::size_t first_packet,
                         std::size_t n_packets, const ShardSeeds& seeds,
                         const obs::LinkObs& o) {
  const BhssTransmitter tx(cfg.system);
  const BhssReceiver rx(cfg.system);
  channel::AwgnSource noise(seeds.channel);
  SharedRandom channel_rng(seeds.impairments);
  JammerSpec spec = cfg.jammer;
  spec.seed = seeds.jammer;
  JammerBox jammer(spec, cfg.system.pattern.bands());
  const fault::FaultInjector injector(cfg.faults);

  const double sample_rate = cfg.system.pattern.bands().sample_rate_hz();
  const bool genie = cfg.system.sync == SyncMode::genie;

  // Closed-loop resilience: one controller per shard, fed strictly in
  // packet order. The adapted HopPattern is rebuilt only when the plan
  // epoch moves; epoch 0 means "exactly the base plan", so a nominal or
  // fully recovered link takes the no-override path and is bit-identical
  // to a run with adaptation disabled.
  std::optional<adapt::ResilienceController> ctrl;
  std::optional<HopPattern> adapted_pattern;
  std::uint32_t adapted_epoch = 0;
  if (cfg.adapt.enabled && cfg.system.hopping) {
    ctrl.emplace(cfg.adapt, cfg.system.pattern.probabilities(), cfg.system.symbols_per_hop);
  }

  LinkStats stats;
  for (std::size_t pkt = first_packet; pkt < first_packet + n_packets; ++pkt) {
    // Deterministic, packet-dependent payload.
    std::vector<std::uint8_t> payload(cfg.payload_len);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>((pkt * 31 + j * 7 + 13) & 0xFF);
    }

    HopOverride ov;
    if (ctrl.has_value() && ctrl->plan().epoch != 0) {
      if (!adapted_pattern.has_value() || adapted_epoch != ctrl->plan().epoch) {
        adapted_pattern = HopPattern::custom(cfg.system.pattern.bands(), ctrl->plan().probs);
        adapted_epoch = ctrl->plan().epoch;
      }
      ov.pattern = &*adapted_pattern;
      ov.symbols_per_hop = ctrl->plan().symbols_per_hop;
    }

    const Transmission t = tx.transmit(payload, pkt, ov);

    // Channel realisation.
    channel::LinkConfig link;
    link.snr_db = cfg.snr_db;
    if (cfg.jammer.kind != JammerSpec::Kind::none) link.jnr_db = cfg.jnr_db;
    link.tx_delay = cfg.impairments
                        ? 16 + channel_rng.uniform_index(std::max<std::size_t>(cfg.max_delay, 1))
                        : cfg.max_delay / 2;
    link.tail_pad = 64;
    if (cfg.impairments && !genie) {
      link.phase = static_cast<float>((channel_rng.uniform() * 2.0 - 1.0) * std::numbers::pi);
      link.cfo = static_cast<float>((channel_rng.uniform() * 2.0 - 1.0) *
                                    static_cast<double>(cfg.max_cfo));
    }

    const std::size_t total_len = link.tx_delay + t.samples.size() + link.tail_pad;
    const dsp::cvec jam =
        jammer.waveform(t, cfg.system.pattern.bands(), link.tx_delay, total_len);

    dsp::cvec rx_signal = channel::transmit(t.samples, jam, link, noise);

    // Transient faults between channel and receiver. The plan for packet
    // `pkt` depends only on (faults.seed, pkt), never on the shard, so a
    // sharded run degrades exactly like a sequential one.
    if (injector.enabled()) {
      const fault::FaultPlan plan = injector.plan_for_packet(pkt, rx_signal.size());
      const fault::FaultLog applied = injector.apply(plan, rx_signal, o);
      stats.faults_injected += applied.total();
    }

    const std::size_t search_window = link.tx_delay + cfg.max_delay / 4 + 64;
    const RxResult res =
        rx.receive(rx_signal, pkt, cfg.payload_len, search_window, link.tx_delay, o, ov);

    ++stats.packets;
    stats.airtime_s += static_cast<double>(t.samples.size()) / sample_rate;
    if (res.frame_detected) ++stats.detected;
    if (res.sync_lost) ++stats.sync_lost;
    if (res.reacquired) ++stats.reacquired;
    if (res.input_scrubbed) ++stats.corrupt_input_rejected;
    stats.filter_fallback += res.filter_fallbacks;
    const bool delivered = res.crc_ok && res.payload == payload;
    if (delivered) ++stats.ok;

    if (obs::counting(o.metrics)) {
      const obs::LinkIds& ids = obs::link_ids();
      o.metrics->add(ids.packets);
      if (res.frame_detected) o.metrics->add(ids.detected);
      if (delivered) o.metrics->add(ids.delivered);
    }
    if (obs::tracing(o.trace)) {
      obs::TraceEvent ev;
      ev.type = obs::TraceEventType::packet_done;
      ev.flag = delivered ? 1 : 0;
      ev.hop = static_cast<std::uint32_t>(res.hops.size());
      ev.packet = pkt;
      ev.v0 = static_cast<double>(res.sync_attempts);
      ev.v1 = static_cast<double>(res.filter_fallbacks);
      ev.v2 = res.frame_detected ? 1.0 : 0.0;
      o.trace->push(ev);
    }

    const std::size_t n = std::min(res.symbols.size(), t.symbols.size());
    stats.total_symbols += t.symbols.size();
    for (std::size_t s = 0; s < n; ++s) {
      if (res.symbols[s] != t.symbols[s]) ++stats.symbol_errors;
    }
    stats.symbol_errors += t.symbols.size() - n;  // undecoded symbols count as errors

    if (ctrl.has_value()) {
      // Per-hop eq. (10) outcomes are the detector's spectral evidence,
      // but only for packets the link actually lost: a filter decision on
      // a *delivered* packet means the excision won, and punishing that
      // bandwidth would steer the distribution away from exactly the hops
      // the receiver can save. A hop implicates its bandwidth index when
      // the control logic saw jamming (filtered or degenerate PSD) AND
      // the packet still failed.
      const bool lost = !delivered || res.sync_lost;
      for (const HopDiagnostics& h : res.hops) {
        ctrl->note_hop(h.bw_index,
                       lost && (h.filter != FilterDecision::Kind::none || h.degenerate_psd));
      }
      ctrl->on_packet({delivered, res.sync_lost, pkt}, o);
    }
  }

  if (ctrl.has_value()) {
    const adapt::AdaptCounters& c = ctrl->counters();
    stats.adapt_transitions = c.transitions;
    stats.adapt_jam_episodes = c.jam_episodes;
    stats.adapt_fallbacks = c.fallbacks;
    stats.adapt_recoveries = c.recoveries;
    stats.adapt_windows_jammed = c.windows_jammed;
    stats.adapt_packets_adapted = c.packets_adapted;
  }

  if (stats.airtime_s > 0.0) {
    stats.throughput_bps =
        static_cast<double>(stats.ok * cfg.payload_len * 8) / stats.airtime_s;
  }
  return stats;
}

LinkStats run_link(const SimConfig& cfg) {
  // The default seed tuple reproduces the historical sequential stream:
  // noise straight from channel_seed, impairments from its fixed xor.
  const ShardSeeds seeds{cfg.channel_seed, cfg.channel_seed ^ 0xC4A77EULL, cfg.jammer.seed};
  return run_link_shard(cfg, 0, cfg.n_packets, seeds);
}

LinkStats merge_link_stats(const std::vector<LinkStats>& shards, std::size_t payload_len) {
  LinkStats total;
  for (const LinkStats& s : shards) {
    total.packets += s.packets;
    total.detected += s.detected;
    total.ok += s.ok;
    total.symbol_errors += s.symbol_errors;
    total.total_symbols += s.total_symbols;
    total.airtime_s += s.airtime_s;
    total.sync_lost += s.sync_lost;
    total.reacquired += s.reacquired;
    total.filter_fallback += s.filter_fallback;
    total.corrupt_input_rejected += s.corrupt_input_rejected;
    total.faults_injected += s.faults_injected;
    total.shard_timeout += s.shard_timeout;
    total.shard_retried += s.shard_retried;
    total.worker_restarts += s.worker_restarts;
    total.worker_crashes += s.worker_crashes;
    total.worker_drains += s.worker_drains;
    total.adapt_transitions += s.adapt_transitions;
    total.adapt_jam_episodes += s.adapt_jam_episodes;
    total.adapt_fallbacks += s.adapt_fallbacks;
    total.adapt_recoveries += s.adapt_recoveries;
    total.adapt_windows_jammed += s.adapt_windows_jammed;
    total.adapt_packets_adapted += s.adapt_packets_adapted;
  }
  if (total.airtime_s > 0.0) {
    total.throughput_bps =
        static_cast<double>(total.ok * payload_len * 8) / total.airtime_s;
  }
  return total;
}

double min_snr_for_per(const SimConfig& cfg, const PerEvaluator& per_of, double target_per,
                       double lo_db, double hi_db, double tol_db) {
  auto per_at = [&cfg, &per_of](double snr_db) {
    SimConfig c = cfg;
    c.snr_db = snr_db;
    return per_of(c);
  };

  if (per_at(hi_db) > target_per) return hi_db;  // unreachable even at max power
  if (per_at(lo_db) <= target_per) return lo_db;

  double lo = lo_db;
  double hi = hi_db;
  while (hi - lo > tol_db) {
    const double mid = 0.5 * (lo + hi);
    if (per_at(mid) <= target_per) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double min_snr_for_per(const SimConfig& cfg, double target_per, double lo_db, double hi_db,
                       double tol_db) {
  return min_snr_for_per(
      cfg, [](const SimConfig& c) { return run_link(c).per(); }, target_per, lo_db, hi_db,
      tol_db);
}

double power_advantage_db(const SimConfig& a, const SimConfig& b, double target_per) {
  return min_snr_for_per(b, target_per) - min_snr_for_per(a, target_per);
}

}  // namespace bhss::core
