#pragma once

/// @file shared_random.hpp
/// The shared random source of the paper (Fig. 4/6): transmitter and
/// receiver are initialised with the same seed (pre-shared key [16] or
/// uncoordinated discovery [17] — the paper assumes such a mechanism
/// exists, §4.1) and derive from it, in lock-step, the PN scrambler seed
/// and the bandwidth hopping sequence. The jammer does not know the seed,
/// so both are unpredictable to it.
///
/// Implemented as xoshiro256** — small, fast, reproducible across
/// platforms (unlike std::mt19937_64's distribution wrappers).

#include <array>
#include <cstdint>
#include <span>

#include "core/contracts.hpp"

namespace bhss::core {

/// Deterministic PRNG shared between transmitter and receiver.
class SharedRandom {
 public:
  /// Seed via splitmix64 expansion so nearby seeds give unrelated streams.
  explicit SharedRandom(std::uint64_t seed) noexcept;

  /// Next 64 random bits.
  [[nodiscard]] BHSS_HOT std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] BHSS_HOT double uniform() noexcept;

  /// Uniform integer in [0, n).
  [[nodiscard]] BHSS_HOT std::size_t uniform_index(std::size_t n) noexcept;

  /// Draw an index according to a discrete distribution (weights need not
  /// be normalised).
  [[nodiscard]] BHSS_HOT std::size_t pick(std::span<const double> weights) noexcept;

  /// Derive a non-zero 32-bit seed for the PN chip scrambler.
  [[nodiscard]] std::uint32_t derive_scrambler_seed() noexcept;

  /// Derive a per-frame SharedRandom: both sides mix the frame counter
  /// into the session seed so every frame gets a fresh, aligned stream.
  [[nodiscard]] static SharedRandom for_frame(std::uint64_t session_seed,
                                              std::uint64_t frame_counter) noexcept;

  /// Seed-split: derive an independent child seed from (base, stream,
  /// index). Used by the parallel Monte-Carlo runner to give every shard
  /// its own (channel, impairments, jammer) seed tuple. The mapping is a
  /// pure integer mix (splitmix64 chain), so it is identical on every
  /// platform — tests pin golden values.
  [[nodiscard]] static std::uint64_t split_seed(std::uint64_t base, std::uint64_t stream,
                                                std::uint64_t index) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace bhss::core
