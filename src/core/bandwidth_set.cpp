#include "core/bandwidth_set.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::core {

BandwidthSet::BandwidthSet(double sample_rate_hz, std::vector<std::size_t> sps_levels)
    : sample_rate_hz_(sample_rate_hz), sps_levels_(std::move(sps_levels)) {
  BHSS_REQUIRE(sample_rate_hz_ > 0.0, "BandwidthSet: Rs must be > 0");
  BHSS_REQUIRE(!sps_levels_.empty(), "BandwidthSet: need >= 1 level");
  std::size_t prev = 0;
  for (std::size_t sps : sps_levels_) {
    BHSS_REQUIRE(sps >= 2 && sps % 2 == 0, "BandwidthSet: sps levels must be even and >= 2");
    BHSS_REQUIRE(sps > prev, "BandwidthSet: sps levels must be ascending");
    prev = sps;
  }
}

BandwidthSet BandwidthSet::paper() {
  return BandwidthSet(20e6, {2, 4, 8, 16, 32, 64, 128});
}

BandwidthSet BandwidthSet::small(double sample_rate_hz) {
  return BandwidthSet(sample_rate_hz, {2, 4, 8, 16});
}

double BandwidthSet::hopping_range() const noexcept {
  return static_cast<double>(sps_levels_.back()) / static_cast<double>(sps_levels_.front());
}

std::vector<double> BandwidthSet::bandwidth_fracs() const {
  std::vector<double> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(bandwidth_frac(i));
  return out;
}

}  // namespace bhss::core
