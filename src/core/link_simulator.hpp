#pragma once

/// @file link_simulator.hpp
/// End-to-end link experiments: transmitter -> (jammer + AWGN channel) ->
/// receiver, with packet-loss statistics and the paper's "power
/// advantage" measurement procedure (§6.3: the ratio of minimum SNRs
/// needed to stay below 50 % packet loss).

#include <cstdint>
#include <functional>
#include <vector>

#include "adapt/resilience_controller.hpp"
#include "core/receiver.hpp"
#include "core/system_config.hpp"
#include "core/transmitter.hpp"
#include "fault/fault_plan.hpp"
#include "obs/link_obs.hpp"

namespace bhss::core {

/// Which adversary the link faces.
struct JammerSpec {
  enum class Kind {
    none,             ///< thermal noise only
    fixed_bandwidth,  ///< constant-bandwidth Gaussian noise (§6.4.2)
    hopping,          ///< bandwidth-hopping jammer (§6.4.3)
    reactive,         ///< matches the observed bandwidth after a delay (§2)
    tone,             ///< CW tone(s) — the classic excision target [3]-[7]
    swept,            ///< carrier sweeping across the band
    duty_cycle,       ///< pulsed bursts, unit average power
    band_sweep,       ///< shaped-noise band stepping across the channel
    estimating,       ///< learns the hop distribution, jams the mode
  };

  Kind kind = Kind::none;
  double bandwidth_frac = 0.5;       ///< fixed_bandwidth/duty_cycle: fraction of Rs
  std::vector<double> hop_probs;     ///< hopping: distribution over the
                                     ///< system's bandwidth set
  std::size_t dwell_samples = 8192;  ///< hopping: samples per jammer hop
  std::size_t reaction_delay = 4096; ///< reactive: tau in samples
  std::vector<double> tone_freqs = {0.01};  ///< tone: cycles/sample
  double sweep_lo = -0.25;           ///< swept/band_sweep: band edges [cycles/sample]
  double sweep_hi = 0.25;
  std::size_t sweep_samples = 65536; ///< swept: samples per full sweep
  std::size_t duty_period = 16384;   ///< duty_cycle: samples per on/off period
  double duty_fraction = 0.5;        ///< duty_cycle: on-fraction, in (0, 1]
  std::size_t sweep_steps = 8;       ///< band_sweep: dwell positions per sweep
  double sweep_bw_frac = 0.05;       ///< band_sweep: occupied bandwidth per dwell
  std::size_t estimation_hops = 64;  ///< estimating: observations before targeting
  std::size_t estimation_samples = 0;  ///< reactive: sensing latency per hop
                                       ///< (0 = ideal instantaneous sensing)
  std::uint64_t seed = 99;           ///< jammer-private randomness
};

/// One experiment configuration.
struct SimConfig {
  SystemConfig system;
  JammerSpec jammer;
  double snr_db = 20.0;           ///< received signal power / noise power
  double jnr_db = 25.0;           ///< received jammer power / noise power
  std::size_t payload_len = 8;    ///< payload bytes per packet
  std::size_t n_packets = 50;     ///< packets per data point (paper: 10000)
  std::uint64_t channel_seed = 7;
  bool impairments = true;        ///< random delay/phase/CFO per packet
  std::size_t max_delay = 192;    ///< arrival delay range [samples]
  float max_cfo = 2e-4F;          ///< |CFO| bound [rad/sample]

  /// Transient fault matrix applied to every packet capture between the
  /// channel and the receiver. Defaults to all-off. The per-packet fault
  /// sequence is a pure function of (faults.seed, global packet index),
  /// so sharding and thread count cannot change it.
  fault::FaultConfig faults{};

  /// Closed-loop resilience (src/adapt). Off by default. When enabled,
  /// each shard runs its own ResilienceController fed strictly in packet
  /// order, so the adapted stream stays a pure function of
  /// (SimConfig, shard boundaries) — bit-identical at any thread count.
  /// Note the per-shard scope: the detector only sees its own shard's
  /// packets, so detection windows must be small relative to packets per
  /// shard for adaptation to engage in sharded runs.
  adapt::AdaptConfig adapt{};
};

/// Aggregated link statistics.
struct LinkStats {
  std::size_t packets = 0;
  std::size_t detected = 0;       ///< frames whose preamble was acquired
  std::size_t ok = 0;             ///< frames that passed the CRC
  std::size_t symbol_errors = 0;
  std::size_t total_symbols = 0;
  double airtime_s = 0.0;         ///< total waveform time on air
  double throughput_bps = 0.0;    ///< delivered payload bits / airtime

  // Failure taxonomy (graceful degradation accounting): *how* frames were
  // lost or saved, not just how many. Merged across shards like the
  // counters above.
  std::size_t sync_lost = 0;      ///< bounded re-acquisition exhausted
  std::size_t reacquired = 0;     ///< frames acquired on a retry attempt
  std::size_t filter_fallback = 0;   ///< degenerate-PSD control-logic fallbacks
  std::size_t corrupt_input_rejected = 0;  ///< captures with NaN/Inf scrubbed
  std::size_t faults_injected = 0;  ///< fault events applied by the injector

  // Campaign-orchestration taxonomy (runtime::CampaignRunner): shards that
  // exhausted their watchdog budget and were quarantined (their packets are
  // missing from the merge — accounted, not silently lost), and shards that
  // timed out at least once but succeeded on a deterministic retry.
  std::size_t shard_timeout = 0;  ///< shards quarantined after watchdog timeouts
  std::size_t shard_retried = 0;  ///< shards recovered by a retry attempt

  // Distributed-fleet taxonomy (runtime::CampaignSupervisor): how worker
  // *processes* behaved while the campaign fanned out. Exit codes map to
  // distinct counters — a graceful drain (exit 75) is recoverable and
  // expected under SIGTERM; a crash (signal or nonzero exit) consumed a
  // restart budget; a restart is the supervisor respawning a worker after
  // a crash or hang. Summed across merges like everything above.
  std::size_t worker_restarts = 0;  ///< worker processes respawned (crash/hang retry)
  std::size_t worker_crashes = 0;   ///< worker exits by signal or nonzero status
  std::size_t worker_drains = 0;    ///< workers that drained gracefully (exit 75)

  // Closed-loop adaptation taxonomy (src/adapt): what the resilience
  // controller did, summed across shards like everything above.
  std::size_t adapt_transitions = 0;     ///< state-machine edges taken
  std::size_t adapt_jam_episodes = 0;    ///< entries into DEGRADED
  std::size_t adapt_fallbacks = 0;       ///< entries into FALLBACK
  std::size_t adapt_recoveries = 0;      ///< completed returns to NOMINAL
  std::size_t adapt_windows_jammed = 0;  ///< detector windows that tripped
  std::size_t adapt_packets_adapted = 0; ///< packets sent under a non-base plan

  [[nodiscard]] double per() const noexcept {
    return packets == 0 ? 1.0
                        : 1.0 - static_cast<double>(ok) / static_cast<double>(packets);
  }
  [[nodiscard]] double ser() const noexcept {
    return total_symbols == 0
               ? 1.0
               : static_cast<double>(symbol_errors) / static_cast<double>(total_symbols);
  }
};

/// Merge shard statistics under the shared merge-order contract:
///
///   The merge is a LEFT FOLD IN ASCENDING SHARD ORDER over a vector
///   whose length equals the run's shard count — shard i's contribution
///   sits at index i, and quarantined shards contribute a
///   default-constructed element at their index (never a shorter
///   vector). `obs::merge_telemetry` merges per-shard telemetry under
///   the *same* contract, and `runtime::merge_point_results`
///   BHSS_REQUIREs that both vectors agree on the length, so the two
///   merges cannot silently diverge.
///
/// `throughput_bps` is recomputed from the merged totals. Deterministic
/// for a fixed shard sequence.
[[nodiscard]] LinkStats merge_link_stats(const std::vector<LinkStats>& shards,
                                         std::size_t payload_len);

/// Seed tuple for one simulation shard. `run_link` derives the default
/// tuple from `SimConfig`; the parallel runner derives one per shard via
/// `SharedRandom::split_seed` so shard streams never overlap.
struct ShardSeeds {
  std::uint64_t channel = 0;      ///< AWGN source
  std::uint64_t impairments = 0;  ///< per-packet delay/phase/CFO draws
  std::uint64_t jammer = 0;       ///< jammer-private randomness
};

/// Run packets [first_packet, first_packet + n_packets) through the link
/// with an explicit seed tuple. Packet indices are global: the payload and
/// the shared-randomness frame counter depend only on the index, so a
/// sharded run transmits exactly the same frames as a sequential one.
/// `o` (optional) is this shard's telemetry — per-packet counters, hop
/// decision traces and stage timings; the simulation itself is
/// bit-identical with or without it.
[[nodiscard]] LinkStats run_link_shard(const SimConfig& cfg, std::size_t first_packet,
                                       std::size_t n_packets, const ShardSeeds& seeds,
                                       const obs::LinkObs& o = {});

/// Run `cfg.n_packets` packets through the link.
[[nodiscard]] LinkStats run_link(const SimConfig& cfg);

/// Packet-error-rate oracle for the bisection below: maps a SimConfig to
/// its measured PER. The default evaluates `run_link(cfg).per()`
/// sequentially; `runtime::ParallelLinkRunner` plugs itself in here so the
/// bisection inherits the parallel speedup.
using PerEvaluator = std::function<double(const SimConfig&)>;

/// Paper §6.3 measurement: the minimum SNR (dB) at which the packet loss
/// stays below `target_per`, found by bisection over [lo_db, hi_db].
/// Returns hi_db when even the highest SNR cannot reach the target.
[[nodiscard]] double min_snr_for_per(const SimConfig& cfg, double target_per = 0.5,
                                     double lo_db = -10.0, double hi_db = 45.0,
                                     double tol_db = 0.5);

/// Same bisection with a custom PER oracle (parallel runner, cached or
/// analytic models, ...).
[[nodiscard]] double min_snr_for_per(const SimConfig& cfg, const PerEvaluator& per_of,
                                     double target_per = 0.5, double lo_db = -10.0,
                                     double hi_db = 45.0, double tol_db = 0.5);

/// Power advantage of configuration `a` over configuration `b` in dB:
/// min-SNR(b) - min-SNR(a). Positive = `a` tolerates that much more
/// jamming for the same error performance.
[[nodiscard]] double power_advantage_db(const SimConfig& a, const SimConfig& b,
                                        double target_per = 0.5);

}  // namespace bhss::core
