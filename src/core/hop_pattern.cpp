#include "core/hop_pattern.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "phy/chip_table.hpp"

namespace bhss::core {
namespace {

/// Table 1, "Parabolic" row: probabilities for the 7 paper bandwidths
/// 10, 5, 2.5, 1.25, 0.625, 0.3125, 0.15625 MHz, obtained by the authors
/// via Monte-Carlo maximisation of the minimum power advantage.
constexpr double kPaperParabolic[7] = {0.271, 0.158, 0.063, 0.001, 0.013, 0.220, 0.274};

std::vector<double> normalised(std::vector<double> p) {
  double total = 0.0;
  for (double v : p) {
    BHSS_REQUIRE(v >= 0.0, "HopPattern: negative probability");
    total += v;
  }
  BHSS_REQUIRE(total > 0.0, "HopPattern: zero distribution");
  for (double& v : p) v /= total;
  return p;
}

}  // namespace

std::string to_string(HopPatternType t) {
  switch (t) {
    case HopPatternType::linear: return "linear";
    case HopPatternType::exponential: return "exponential";
    case HopPatternType::parabolic: return "parabolic";
  }
  return "unknown";
}

HopPattern::HopPattern(BandwidthSet bands, std::vector<double> probs)
    : bands_(std::move(bands)), probs_(std::move(probs)) {
  BHSS_REQUIRE(probs_.size() == bands_.size(),
               "HopPattern: probability count must match bandwidth count");
}

HopPattern HopPattern::make(HopPatternType type, const BandwidthSet& bands) {
  const std::size_t n = bands.size();
  std::vector<double> p(n, 0.0);
  switch (type) {
    case HopPatternType::linear:
      for (double& v : p) v = 1.0;
      break;
    case HopPatternType::exponential:
      // p_i proportional to B_i equalises time spent per bandwidth when a
      // hop is a fixed number of symbols (narrow hops last 1/B_i longer).
      for (std::size_t i = 0; i < n; ++i) p[i] = bands.bandwidth_frac(i);
      break;
    case HopPatternType::parabolic:
      if (n == 7) {
        p.assign(std::begin(kPaperParabolic), std::end(kPaperParabolic));
      } else {
        // Symmetric parabola over level index, emphasising both band edges.
        const double mid = (static_cast<double>(n) - 1.0) / 2.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = (static_cast<double>(i) - mid) / (mid > 0.0 ? mid : 1.0);
          p[i] = 0.05 + d * d;
        }
      }
      break;
  }
  return HopPattern(bands, normalised(std::move(p)));
}

HopPattern HopPattern::custom(const BandwidthSet& bands, std::vector<double> probabilities) {
  return HopPattern(bands, normalised(std::move(probabilities)));
}

HopPattern HopPattern::fixed(const BandwidthSet& bands, std::size_t level) {
  BHSS_REQUIRE(level < bands.size(), "HopPattern::fixed: bad level");
  std::vector<double> p(bands.size(), 0.0);
  p[level] = 1.0;
  return HopPattern(bands, std::move(p));
}

std::size_t HopPattern::draw(SharedRandom& rng) const noexcept { return rng.pick(probs_); }

double HopPattern::average_bandwidth_hz() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < bands_.size(); ++i) acc += probs_[i] * bands_.bandwidth_hz(i);
  return acc;
}

double HopPattern::average_throughput_bps() const {
  // Bit rate at bandwidth B: B chips/s / 32 chips/symbol * 4 bits/symbol.
  const double bits_per_chip =
      static_cast<double>(phy::kBitsPerSymbol) / static_cast<double>(phy::kChipsPerSymbol);
  return average_bandwidth_hz() * bits_per_chip;
}

double HopPattern::time_weighted_throughput_bps() const {
  // E[T per symbol] = sum_i p_i * chips_per_symbol / B_i; rate = bits / E[T].
  double expected_symbol_time = 0.0;
  for (std::size_t i = 0; i < bands_.size(); ++i) {
    expected_symbol_time +=
        probs_[i] * static_cast<double>(phy::kChipsPerSymbol) / bands_.bandwidth_hz(i);
  }
  return static_cast<double>(phy::kBitsPerSymbol) / expected_symbol_time;
}

}  // namespace bhss::core
