#include "core/shared_random.hpp"

namespace bhss::core {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

SharedRandom::SharedRandom(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (std::uint64_t& word : s_) word = splitmix64(sm);
}

std::uint64_t SharedRandom::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double SharedRandom::uniform() noexcept {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::size_t SharedRandom::uniform_index(std::size_t n) noexcept {
  if (n == 0) return 0;
  return static_cast<std::size_t>(uniform() * static_cast<double>(n)) % n;
}

std::size_t SharedRandom::pick(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint32_t SharedRandom::derive_scrambler_seed() noexcept {
  const auto seed = static_cast<std::uint32_t>(next_u64() & 0xFFFFU);
  return seed == 0 ? 1U : seed;
}

std::uint64_t SharedRandom::split_seed(std::uint64_t base, std::uint64_t stream,
                                       std::uint64_t index) noexcept {
  // Chain two splitmix64 steps through the stream and index words. The
  // odd multipliers decorrelate (stream, index) pairs that differ in only
  // one coordinate; the final splitmix64 avalanches the combination.
  std::uint64_t sm = base;
  std::uint64_t z = splitmix64(sm);
  sm = z ^ (stream * 0xA0761D6478BD642FULL);
  z = splitmix64(sm);
  sm = z ^ (index * 0xE7037ED1A0B428DBULL);
  return splitmix64(sm);
}

SharedRandom SharedRandom::for_frame(std::uint64_t session_seed,
                                     std::uint64_t frame_counter) noexcept {
  std::uint64_t sm = session_seed;
  const std::uint64_t mixed = splitmix64(sm) ^ (frame_counter * 0xD1B54A32D192ED03ULL);
  return SharedRandom(mixed);
}

}  // namespace bhss::core
