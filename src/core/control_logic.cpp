#include "core/control_logic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "core/contracts.hpp"
#include "dsp/utils.hpp"

namespace bhss::core {
namespace {

/// Frequency of bin k (of n) in cycles/sample, wrapped into [-0.5, 0.5).
double bin_freq(std::size_t k, std::size_t n) {
  const double f = static_cast<double>(k) / static_cast<double>(n);
  return (f < 0.5) ? f : f - 1.0;
}

/// Fraction of the nominal signal band used as the flat "core" for
/// narrow-band jammer detection; beyond it the MSK spectrum rolls off and
/// would masquerade as structure.
constexpr double kDetectionCore = 0.7;

/// Circular moving-average smoothing of a PSD (frequency-domain averaging
/// complements the time-domain Welch averaging when the slice is short).
dsp::fvec smooth_psd(const dsp::fvec& psd, std::size_t half_width) {
  if (half_width == 0) return psd;
  const std::size_t n = psd.size();
  dsp::fvec out(n, 0.0F);
  const auto width = static_cast<float>(2 * half_width + 1);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t d = 0; d <= 2 * half_width; ++d) {
      acc += static_cast<double>(psd[(k + n - half_width + d) % n]);
    }
    out[k] = static_cast<float>(acc) / width;
  }
  return out;
}

/// Fallback decision for a degenerate PSD estimate: no filter, flagged.
FilterDecision degenerate_fallback() {
  FilterDecision d;
  d.degenerate_psd = true;
  return d;
}

}  // namespace

double msk_psd_shape(double f_norm, double sps) noexcept {
  // G(f) ~ [cos(2 pi f Tc) / (1 - 16 f^2 Tc^2)]^2 with Tc = sps samples.
  const double u = f_norm * sps;
  const double denom = 1.0 - 16.0 * u * u;
  if (std::abs(denom) < 1e-4) {
    constexpr double limit = std::numbers::pi / 4.0;  // L'Hopital at |u| = 1/4
    return limit * limit;
  }
  const double g = std::cos(2.0 * std::numbers::pi * u) / denom;
  return g * g;
}

ControlLogic::ControlLogic(ControlLogicConfig config, const BandwidthSet& bands)
    : config_(config), bands_(bands), design_cache_(config.design_cache_capacity) {
  BHSS_REQUIRE(dsp::Fft::valid_size(config_.psd_fft),
               "ControlLogic: psd_fft must be a power of two");

  // Pre-compute the low-pass bank, one filter per bandwidth level, exactly
  // as the paper's implementation does ("we pre-compute the taps of all
  // possible low-pass filters in advance", §6.1) — and, with the taps,
  // the frequency-domain convolution plan each one will be applied with.
  lpf_bank_.reserve(bands_.size());
  lpf_delay_.reserve(bands_.size());
  lpf_plan_.reserve(bands_.size());
  for (std::size_t i = 0; i < bands_.size(); ++i) {
    const double cutoff = lpf_cutoff_frac(i);
    const double transition = std::max(0.25 * cutoff, 1e-4);
    const std::size_t n_taps =
        dsp::lowpass_num_taps(transition, config_.lpf_atten_db, config_.max_lpf_taps);
    const dsp::fvec taps = dsp::design_lowpass(n_taps, cutoff, dsp::Window::blackman);
    lpf_bank_.push_back(dsp::to_complex(taps));
    lpf_delay_.push_back((n_taps - 1) / 2);
    lpf_plan_.push_back(dsp::ConvolverPlan::make(dsp::cspan{lpf_bank_.back()}));
  }

}

double ControlLogic::lpf_cutoff_frac(std::size_t bw_index) const {
  // One-sided cutoff slightly beyond the nominal half-bandwidth so the
  // half-sine main lobe is not clipped too aggressively.
  return std::min(0.49, config_.lpf_cutoff_factor * bands_.bandwidth_frac(bw_index));
}

dsp::fvec ControlLogic::estimate_psd(dsp::cspan slice, std::size_t fft_size) const {
  switch (config_.psd_method) {
    case PsdMethod::welch:
      return dsp::welch_psd(slice, fft_size, config_.welch_overlap, dsp::Window::hann);
    case PsdMethod::bartlett:
      return dsp::bartlett_psd(slice, fft_size);
    case PsdMethod::periodogram:
      return dsp::periodogram(slice, fft_size);
  }
  return dsp::welch_psd(slice, fft_size, config_.welch_overlap, dsp::Window::hann);
}

std::size_t ControlLogic::detection_fft(std::size_t slice_len, std::size_t bw_index) const {
  // Want >= ~24 bins across the signal band (otherwise a jammer occupying
  // a quarter of a narrow band hides inside the median), but keep >= ~8
  // averaged Welch segments so estimator noise cannot mimic a narrow-band
  // jammer peak.
  const std::size_t want = 24 * bands_.sps(bw_index);
  std::size_t fft = 32;
  while (fft * 2 <= 4096 && (fft < want || fft * 2 <= config_.psd_fft) && fft * 8 <= slice_len) {
    fft *= 2;
  }
  return fft;
}

std::size_t ControlLogic::design_fft(std::size_t bw_index) const {
  // Notch resolution of ~1/32 of the signal bandwidth, capped at 4096 taps
  // (the paper's receiver was capped at order 3181).
  std::size_t fft = config_.psd_fft;
  while (fft < 32 * bands_.sps(bw_index) && fft < 4096) fft *= 2;
  return fft;
}

FilterDecision ControlLogic::force_lowpass(std::size_t bw_index) const {
  FilterDecision d;
  d.kind = FilterDecision::Kind::lowpass;
  d.taps = lpf_bank_.at(bw_index);
  d.group_delay = lpf_delay_.at(bw_index);
  d.plan = lpf_plan_.at(bw_index);
  return d;
}

FilterDecision ControlLogic::force_excision(dsp::cspan slice, std::size_t bw_index,
                                            obs::TraceSink* trace) const {
  BHSS_TRACE_SCOPE(trace, obs::TraceScopeId::choose_filter);
  const std::size_t n = design_fft(bw_index);
  dsp::fvec psd = smooth_psd(estimate_psd(slice, n), std::max<std::size_t>(1, n / 512));
  const double passband = std::min(1.0, 2.0 * lpf_cutoff_frac(bw_index));

  // Eq. (3) divides by sqrt(P): a degenerate estimate — every bin zero
  // (an all-zero hop slice, e.g. a front-end dropout), a non-finite bin,
  // or a ~zero in-band median — would synthesise Inf/NaN taps and corrupt
  // the whole frame. Fall back to "no filter" and flag it instead.
  if (!dsp::all_finite(dsp::fspan{psd})) return degenerate_fallback();
  if (*std::max_element(psd.begin(), psd.end()) <= 0.0F) return degenerate_fallback();

  FilterDecision d;
  d.kind = FilterDecision::Kind::excision;

  if (config_.excision_style == ExcisionStyle::template_notch) {
    // Normalise by the own-signal spectral template, then clamp the ratio
    // at its in-band median: bins where only the signal sits become 1
    // (unity filter gain), jammer bins keep their excess and get the full
    // whitening attenuation.
    const auto sps = static_cast<double>(bands_.sps(bw_index));
    std::vector<float> inband;
    for (std::size_t k = 0; k < n; ++k) {
      const double f = bin_freq(k, n);
      const auto tmpl = static_cast<float>(std::max(msk_psd_shape(f, sps), 1e-3));
      psd[k] /= tmpl;
      if (std::abs(f) <= passband / 2.0) inband.push_back(psd[k]);
    }
    std::nth_element(inband.begin(),
                     inband.begin() + static_cast<std::ptrdiff_t>(inband.size() / 2),
                     inband.end());
    const float median = std::max(inband[inband.size() / 2], 1e-30F);
    // Hard notch: zero out every bin whose template-normalised level is
    // well above the clean floor, unity elsewhere. This is eq. (11)'s
    // ideal excision filter ("filters out entirely all frequencies
    // occupied by the narrow-band jammer"): whitening-depth notches only
    // push the jammer down to the local *signal* level, and that residual
    // is narrow-band — correlated across chips — which despreading barely
    // attenuates. The signal content in the jammed bins is unrecoverable
    // anyway, so removing it entirely costs only the self-noise the
    // theory already accounts for. Jammer bins are dilated by one to
    // cover estimator leakage skirts.
    std::vector<bool> hot(n, false);
    for (std::size_t k = 0; k < n; ++k) hot[k] = psd[k] > 3.0F * median;
    std::vector<bool> dilated = hot;
    for (std::size_t k = 0; k < n; ++k) {
      if (hot[k]) {
        dilated[(k + 1) % n] = true;
        dilated[(k + n - 1) % n] = true;
      }
    }
    // The binary verdict above makes the design a pure function of
    // (bandwidth level, dilated mask): look the key up before quantising
    // the PSD — a hit replays bit-identical taps and skips the design FFT
    // and the taps-spectrum transform entirely.
    FilterDesignKey key;
    key.bw_index = bw_index;
    key.n_bins = n;
    key.mask.assign((n + 63) / 64, 0);
    for (std::size_t k = 0; k < n; ++k) {
      if (dilated[k]) key.mask[k / 64] |= std::uint64_t{1} << (k % 64);
    }
    if (const FilterDesignEntry* cached = design_cache_.find(key)) {
      d.taps = cached->taps;
      d.group_delay = cached->group_delay;
      d.plan = cached->plan;
      d.cache = FilterDecision::CacheOutcome::hit;
      return d;
    }

    for (std::size_t k = 0; k < n; ++k) psd[k] = dilated[k] ? 1e12F : 1.0F;
    d.taps = dsp::design_excision_whitening(psd, config_.excision_floor_rel, passband);
    d.group_delay = d.taps.size() / 2;
    d.plan = dsp::ConvolverPlan::make(dsp::cspan{d.taps});
    if (design_cache_.capacity() > 0) {
      d.cache = FilterDecision::CacheOutcome::miss;
      design_cache_.insert(std::move(key), FilterDesignEntry{d.taps, d.group_delay, d.plan});
    }
    return d;
  }

  // Whitening style: the taps depend on the raw (un-quantised) PSD, so no
  // finite key captures them — design fresh every hop, plan included.
  d.taps = dsp::design_excision_whitening(psd, config_.excision_floor_rel, passband);
  d.group_delay = d.taps.size() / 2;
  d.plan = dsp::ConvolverPlan::make(dsp::cspan{d.taps});
  return d;
}

FilterDecision ControlLogic::decide(dsp::cspan slice, std::size_t bw_index,
                                    obs::TraceSink* trace) const {
  BHSS_TRACE_SCOPE(trace, obs::TraceScopeId::choose_filter);
  const std::size_t n = detection_fft(slice.size(), bw_index);
  const dsp::fvec psd = estimate_psd(slice, n);
  const double signal_frac = bands_.bandwidth_frac(bw_index);
  const auto sps = static_cast<double>(bands_.sps(bw_index));

  // Validated-decision path: a degenerate estimate (non-finite bins from a
  // corrupted capture, or an all-zero slice) cannot drive eq. (3)/(4) —
  // every statistic below would be 0/0 or Inf. Decline to filter, loudly.
  if (!dsp::all_finite(dsp::fspan{psd})) return degenerate_fallback();

  // Partition bins: nominal signal band vs outside (for the wide-band
  // test), and a flat spectral "core" where the template-normalised PSD of
  // a clean signal is level (for the narrow-band test).
  std::vector<float> core;
  double in_sum = 0.0;
  double out_sum = 0.0;
  std::size_t n_in = 0;
  std::size_t n_out = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double f = std::abs(bin_freq(k, n));
    if (f <= signal_frac / 2.0) {
      in_sum += static_cast<double>(psd[k]);
      ++n_in;
      if (f <= kDetectionCore * signal_frac / 2.0) {
        const auto tmpl = static_cast<float>(std::max(msk_psd_shape(f, sps), 1e-3));
        core.push_back(psd[k] / tmpl);
      }
    } else {
      out_sum += static_cast<double>(psd[k]);
      ++n_out;
    }
  }
  if (n_in == 0 || core.size() < 4) return FilterDecision{};

  const double in_level = in_sum / static_cast<double>(n_in);
  const double out_level = n_out > 0 ? out_sum / static_cast<double>(n_out) : 0.0;

  // All-zero in-band spectrum (dead front-end / deep dropout): none of the
  // level ratios below are meaningful and an excision design would divide
  // by a ~zero median. Reachable from a live all-zero hop slice.
  if (in_level <= 0.0) return degenerate_fallback();

  // Quartile statistic on the template-normalised core: a narrow-band
  // jammer lifts the top bins far above the bottom (clean) bins even when
  // it covers up to ~3/4 of the band — where a median-based peak test
  // would already drown. A matched jammer lifts every bin equally and
  // stays invisible, which is exactly eq. (10)'s "don't filter" case.
  std::vector<float> sorted = core;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t quarter = std::max<std::size_t>(1, sorted.size() / 4);
  double bottom = 0.0;
  double top = 0.0;
  for (std::size_t i = 0; i < quarter; ++i) {
    bottom += static_cast<double>(sorted[i]);
    top += static_cast<double>(sorted[sorted.size() - 1 - i]);
  }
  const double in_floor = std::max(bottom / static_cast<double>(quarter), 1e-30);
  const double in_peak = top / static_cast<double>(quarter);

  // Estimated jammer occupancy: core bins well above the clean floor,
  // rescaled from the core to the full sampling rate.
  std::size_t hot_bins = 0;
  for (float p : core) {
    if (static_cast<double>(p) > std::sqrt(in_floor * in_peak)) ++hot_bins;
  }
  const double est_jam_bw = (static_cast<double>(hot_bins) / static_cast<double>(core.size())) *
                            (kDetectionCore * signal_frac);

  FilterDecision d;
  d.est_jammer_bw_frac = est_jam_bw;
  d.inband_peak_over_median_db = dsp::linear_to_db(in_peak / in_floor);
  d.oob_to_inband_level_db = dsp::linear_to_db(std::max(out_level, 1e-30) / in_level);

  // Wide-band jammer: significant energy outside the signal band (the PN
  // spectrum is confined in-band, so out-of-band level is jam + noise).
  if (n_out > 0 && out_level > config_.oob_level_ratio * in_level) {
    d.kind = FilterDecision::Kind::lowpass;
    d.taps = lpf_bank_[bw_index];
    d.group_delay = lpf_delay_[bw_index];
    d.plan = lpf_plan_[bw_index];
    return d;
  }

  // Narrow-band jammer: a strong peak inside the signal band.
  if (d.inband_peak_over_median_db > config_.peak_over_median_db) {
    // Eq. (10) guard: when the jammer occupies almost the whole signal
    // band, excising it removes the signal too — better not to filter.
    if (est_jam_bw > config_.excision_match_guard * signal_frac) return d;
    FilterDecision ex = force_excision(slice, bw_index);
    ex.est_jammer_bw_frac = d.est_jammer_bw_frac;
    ex.inband_peak_over_median_db = d.inband_peak_over_median_db;
    ex.oob_to_inband_level_db = d.oob_to_inband_level_db;
    return ex;
  }

  return d;  // bandwidths matched or jammer weak: despreading gain suffices
}

}  // namespace bhss::core
