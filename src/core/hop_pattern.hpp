#pragma once

/// @file hop_pattern.hpp
/// Bandwidth hopping patterns (§6.4.1, Table 1). A pattern is a draw
/// distribution over the bandwidth set:
///  * linear      — uniform over the levels,
///  * exponential — probability proportional to bandwidth, which equalises
///                  the *time* spent at each bandwidth (a hop lasts a fixed
///                  number of symbols, so narrow hops last longer),
///  * parabolic   — the Monte-Carlo optimised distribution that maximises
///                  the minimum power advantage over all jammer bandwidths
///                  (favours the band edges, where filtering works best).

#include <string>
#include <vector>

#include "core/bandwidth_set.hpp"
#include "core/shared_random.hpp"

namespace bhss::core {

enum class HopPatternType { linear, exponential, parabolic };

/// Name of a pattern type ("linear" / "exponential" / "parabolic").
[[nodiscard]] std::string to_string(HopPatternType t);

/// A draw distribution over a BandwidthSet.
class HopPattern {
 public:
  /// Build one of the three named patterns. `parabolic` uses the paper's
  /// published Table 1 distribution when the set has exactly 7 levels,
  /// otherwise a symmetric edge-weighted parabola over the levels.
  [[nodiscard]] static HopPattern make(HopPatternType type, const BandwidthSet& bands);

  /// A custom distribution (probabilities are normalised internally).
  [[nodiscard]] static HopPattern custom(const BandwidthSet& bands,
                                         std::vector<double> probabilities);

  /// A degenerate "pattern" that always picks one level (hopping off).
  [[nodiscard]] static HopPattern fixed(const BandwidthSet& bands, std::size_t level);

  [[nodiscard]] const BandwidthSet& bands() const noexcept { return bands_; }
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept { return probs_; }

  /// Draw a bandwidth level from the shared random source.
  [[nodiscard]] std::size_t draw(SharedRandom& rng) const noexcept;

  /// Expected bandwidth E_p[B] in Hz (Table 1 discussion: 2.83 / 6.72 /
  /// 3.77 MHz for linear / exponential / parabolic).
  [[nodiscard]] double average_bandwidth_hz() const;

  /// The paper's average throughput figure: E_p[B] * bits_per_symbol /
  /// chips_per_symbol / ... = E_p[B] / 8 for the 4-bit/32-chip DSSS
  /// (354 / 840 / 471 kb/s for the three patterns).
  [[nodiscard]] double average_throughput_bps() const;

  /// Time-weighted throughput under equal-symbols-per-hop dwell (each hop
  /// carries the same symbol count, narrow hops last longer): total bits /
  /// total time = bits_per_symbol / E_p[T_symbol].
  [[nodiscard]] double time_weighted_throughput_bps() const;

 private:
  HopPattern(BandwidthSet bands, std::vector<double> probs);

  BandwidthSet bands_;
  std::vector<double> probs_;
};

}  // namespace bhss::core
