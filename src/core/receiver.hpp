#pragma once

/// @file receiver.hpp
/// The BHSS receiver (Fig. 6, bottom). Per hop segment (whose bandwidth it
/// derives from the shared random source, §4.1 — never from the observed
/// spectrum, which a strong jammer could poison):
///   1. estimate the jammer spectrum and pick a suppression filter
///      (control logic, §4.2),
///   2. filter the raw samples *before* any despreading,
///   3. matched-filter chip demodulation at the hop's pulse duration,
///   4. PN-descrambled 16-ary despreading,
/// then frame parsing + CRC. Frame, phase and frequency acquisition is
/// data-aided from the preamble (§6.1), performed on filtered samples so
/// the jammer cannot blind it.

#include "core/hop_override.hpp"
#include "core/hop_schedule.hpp"
#include "core/system_config.hpp"
#include "dsp/types.hpp"
#include "obs/link_obs.hpp"
#include "sync/preamble_sync.hpp"

namespace bhss::core {

/// Per-hop diagnostics for tests, benches and the spectrum monitor example.
struct HopDiagnostics {
  std::size_t bw_index = 0;
  FilterDecision::Kind filter = FilterDecision::Kind::none;
  double est_jammer_bw_frac = 0.0;
  double inband_peak_over_median_db = 0.0;
  double oob_to_inband_level_db = -300.0;
  bool degenerate_psd = false;  ///< control logic fell back (validated path)
};

/// Outcome of one frame reception attempt, including the graceful-
/// degradation taxonomy: how the receiver failed (or recovered) matters
/// as much as whether it did — `run_link_shard` folds these into the
/// merged `LinkStats` failure counters.
struct RxResult {
  bool frame_detected = false;  ///< preamble found (always true for genie)
  bool crc_ok = false;          ///< frame passed SFD + CRC
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> symbols;  ///< decoded symbols (incl. preamble)
  sync::SyncEstimate sync{};
  std::vector<HopDiagnostics> hops;

  std::size_t sync_attempts = 0;  ///< preamble search passes performed
  bool reacquired = false;        ///< acquisition succeeded on a retry
  bool sync_lost = false;         ///< every bounded search attempt failed
  bool input_scrubbed = false;    ///< non-finite samples zeroed at the input
  std::size_t filter_fallbacks = 0;  ///< degenerate-PSD fallbacks (sync + hops)
};

/// Frame receiver mirroring a BhssTransmitter with the same SystemConfig.
class BhssReceiver {
 public:
  explicit BhssReceiver(SystemConfig config);

  /// Attempt to decode one frame from `rx`.
  /// @param rx               received baseband stream
  /// @param frame_counter    shared frame index (drives seed derivation)
  /// @param payload_len      expected payload length in bytes (link-layer
  ///                         knowledge; the header length byte is still
  ///                         checked against it)
  /// @param search_window    max lag to search for the preamble
  /// @param genie_frame_start exact frame start, used in SyncMode::genie
  /// @param o                 optional telemetry hooks (metrics + trace);
  ///                          decoding is bit-identical with or without
  ///                          them — instrumentation only observes
  /// @param ov                optional hop-plan override; must match the
  ///                          override the transmitter used for this frame
  [[nodiscard]] RxResult receive(dsp::cspan rx, std::uint64_t frame_counter,
                                 std::size_t payload_len, std::size_t search_window,
                                 std::size_t genie_frame_start = 0,
                                 const obs::LinkObs& o = {},
                                 const HopOverride& ov = {}) const;

  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ControlLogic& control_logic() const noexcept { return logic_; }

 private:
  /// Apply the configured filter policy to one hop slice.
  [[nodiscard]] FilterDecision choose_filter(dsp::cspan slice, std::size_t bw_index,
                                             obs::TraceSink* trace) const;

  /// Filter `buffer` around [a0, a0+needed) with `decision`, returning the
  /// group-delay-compensated samples aligned to a0 (zero-padded at edges).
  [[nodiscard]] dsp::cvec filtered_slice(dsp::cspan buffer, std::size_t a0,
                                         std::size_t needed, const FilterDecision& decision,
                                         obs::TraceSink* trace) const;

  SystemConfig config_;
  ControlLogic logic_;
};

}  // namespace bhss::core
