#include "core/pattern_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/theory.hpp"
#include "dsp/utils.hpp"

namespace bhss::core {
namespace {

double evaluate(const std::vector<double>& probs, const std::vector<double>& fracs,
                double jammer_power, double noise_var) {
  // min over jammer bandwidths of E_p[gamma], in dB.
  double worst = std::numeric_limits<double>::infinity();
  for (double bj : fracs) {
    double expectation = 0.0;
    for (std::size_t i = 0; i < fracs.size(); ++i) {
      expectation += probs[i] *
                     theory::snr_improvement_bound(fracs[i] / bj, jammer_power, noise_var);
    }
    worst = std::min(worst, expectation);
  }
  return dsp::linear_to_db(worst);
}

std::vector<double> normalise(std::vector<double> p) {
  double total = 0.0;
  for (double v : p) total += v;
  for (double& v : p) v /= total;
  return p;
}

}  // namespace

double expected_improvement(const HopPattern& pattern, double bj_frac, double jammer_power,
                            double noise_var) {
  const std::vector<double> fracs = pattern.bands().bandwidth_fracs();
  double expectation = 0.0;
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    expectation += pattern.probabilities()[i] *
                   theory::snr_improvement_bound(fracs[i] / bj_frac, jammer_power, noise_var);
  }
  return expectation;
}

double min_advantage_db(const HopPattern& pattern, double jammer_power, double noise_var) {
  return evaluate(pattern.probabilities(), pattern.bands().bandwidth_fracs(), jammer_power,
                  noise_var);
}

HopPattern optimize_max_min_advantage(const BandwidthSet& bands, const OptimizerConfig& cfg) {
  const std::vector<double> fracs = bands.bandwidth_fracs();
  const std::size_t n = fracs.size();
  SharedRandom rng(cfg.seed);

  std::vector<double> best(n, 1.0 / static_cast<double>(n));
  double best_score = evaluate(best, fracs, cfg.jammer_power, cfg.noise_var);

  // Global phase: exponential(1) draws normalised to the simplex
  // (equivalent to a flat Dirichlet) explore the whole distribution space.
  for (std::size_t it = 0; it < cfg.random_draws; ++it) {
    std::vector<double> candidate(n);
    for (double& v : candidate) v = -std::log(std::max(rng.uniform(), 1e-16));
    candidate = normalise(std::move(candidate));
    const double score = evaluate(candidate, fracs, cfg.jammer_power, cfg.noise_var);
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }

  // Local phase: move probability mass between two random levels.
  for (std::size_t it = 0; it < cfg.refine_steps; ++it) {
    std::vector<double> candidate = best;
    const std::size_t from = rng.uniform_index(n);
    const std::size_t to = rng.uniform_index(n);
    if (from == to) continue;
    const double step = candidate[from] * (0.05 + 0.45 * rng.uniform());
    candidate[from] -= step;
    candidate[to] += step;
    const double score = evaluate(candidate, fracs, cfg.jammer_power, cfg.noise_var);
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }

  return HopPattern::custom(bands, std::move(best));
}

}  // namespace bhss::core
