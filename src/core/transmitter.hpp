#pragma once

/// @file transmitter.hpp
/// The BHSS transmitter (Fig. 4, bottom): frame bytes -> 4-bit symbols ->
/// PN-scrambled 32-chip spreading -> half-sine O-QPSK modulation whose
/// pulse duration (and hence bandwidth) hops per the shared random
/// schedule *during* the frame — the property that defeats reactive
/// jammers (§3).

#include <span>
#include <vector>

#include "core/hop_override.hpp"
#include "core/hop_schedule.hpp"
#include "core/system_config.hpp"
#include "dsp/types.hpp"

namespace bhss::core {

/// One transmitted frame: the waveform plus everything the tests and the
/// jammer models need to know about it.
struct Transmission {
  dsp::cvec samples;                   ///< baseband waveform, unit power/hop
  HopSchedule schedule;                ///< bandwidth dwell plan
  std::vector<std::uint8_t> symbols;   ///< frame symbols (incl. preamble)
  std::uint64_t frame_counter = 0;
};

/// Stateless frame transmitter; all randomness is derived per frame from
/// (config.seed, frame_counter) so the receiver can mirror it.
class BhssTransmitter {
 public:
  explicit BhssTransmitter(SystemConfig config);

  /// Build the waveform for one payload. `ov` optionally replaces the
  /// configured hop pattern/dwell for this frame (adaptation layer); the
  /// receiver must be handed the same override for the same frame.
  [[nodiscard]] Transmission transmit(std::span<const std::uint8_t> payload,
                                      std::uint64_t frame_counter,
                                      const HopOverride& ov = {}) const;

  /// Modulate an explicit symbol stream with an explicit schedule — the
  /// receiver reuses this to regenerate the reference preamble waveform.
  /// @param n_symbols  modulate only the first n_symbols of `symbols`
  ///                   (the covering schedule segments, preamble-only
  ///                   reference generation).
  [[nodiscard]] static dsp::cvec modulate_symbols(std::span<const std::uint8_t> symbols,
                                                  std::size_t n_symbols,
                                                  const HopSchedule& schedule,
                                                  std::uint32_t scrambler_seed);

  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

 private:
  SystemConfig config_;
};

}  // namespace bhss::core
