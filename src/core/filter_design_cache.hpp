#pragma once

/// @file filter_design_cache.hpp
/// Per-receiver cache of excision filter designs, keyed by the *decision*
/// that produced them rather than by the raw PSD estimate.
///
/// The template-notch excision path quantises the estimated PSD to a
/// binary per-bin verdict (jammed / clean) before handing it to the
/// eq. (3) design, so the resulting taps — and the convolution plan built
/// from them — are a pure function of (bandwidth level, jammed-bin mask).
/// Two hops that classify the same bins as jammed get bit-identical taps
/// whether the design is recomputed or replayed from the cache, which is
/// what makes the cache *behaviour-neutral by construction*: LinkStats
/// and telemetry are unchanged, only the design work is skipped.
///
/// The cache is deliberately per-receiver (per shard), not process-wide:
/// no locks on the hot path, and shard results stay byte-identical
/// regardless of thread count or kill-and-resume splits (the shard-merge
/// contract of `merge_point_results`).
///
/// Mirrors the FFT plan cache in spirit; unlike it, hit/miss counts are
/// exported through `src/obs` (LinkIds::filter_cache_{hits,misses}).

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/contracts.hpp"
#include "dsp/fir.hpp"
#include "dsp/types.hpp"

namespace bhss::core {

/// What the excision design depends on: the bandwidth level (which fixes
/// the design FFT size and passband) and the dilated jammed-bin mask.
struct FilterDesignKey {
  std::size_t bw_index = 0;
  std::size_t n_bins = 0;                ///< design FFT size (mask bit count)
  std::vector<std::uint64_t> mask;       ///< jammed-bin bitmask, bin k = bit k
  bool operator==(const FilterDesignKey&) const = default;
};

struct FilterDesignKeyHash {
  std::size_t operator()(const FilterDesignKey& k) const noexcept {
    // FNV-1a over the key words; cheap and deterministic across runs.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(k.bw_index);
    mix(k.n_bins);
    for (std::uint64_t w : k.mask) mix(w);
    return static_cast<std::size_t>(h);
  }
};

/// A completed design: the taps, their group delay, and the shared
/// frequency-domain convolution plan (so a cache hit also skips the
/// per-hop taps-spectrum FFT, the expensive part).
struct FilterDesignEntry {
  dsp::cvec taps;
  std::size_t group_delay = 0;
  std::shared_ptr<const dsp::ConvolverPlan> plan;
};

/// Exact-key design cache with deterministic flush-when-full eviction.
/// Capacity 0 disables caching (find always misses, nothing is stored).
class FilterDesignCache {
 public:
  explicit FilterDesignCache(std::size_t capacity) : capacity_(capacity) {}

  /// Lookup; bumps the hit/miss counter. Returns nullptr on miss. The
  /// returned pointer stays valid until the next insert().
  [[nodiscard]] BHSS_HOT const FilterDesignEntry* find(const FilterDesignKey& key) const {
    if (capacity_ == 0) return nullptr;
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }

  /// Store a design. When the cache is full it is flushed entirely first —
  /// a deterministic policy (no recency state), so a resumed campaign
  /// replays the same hit/miss sequence as an uninterrupted one.
  void insert(FilterDesignKey key, FilterDesignEntry entry) {
    if (capacity_ == 0) return;
    if (map_.size() >= capacity_) map_.clear();
    map_.emplace(std::move(key), std::move(entry));
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<FilterDesignKey, FilterDesignEntry, FilterDesignKeyHash> map_;
};

}  // namespace bhss::core
