#pragma once

/// @file pattern_optimizer.hpp
/// Monte-Carlo optimisation of the hop distribution (§6.4.1): the
/// parabolic pattern of Table 1 was computed by the authors to "provide
/// the maximum minimal power advantage for all possible jammer
/// bandwidths" — the best response to a jammer that parks on the weakest
/// bandwidth. This module reproduces that computation against the
/// analytical SNR-improvement bound.

#include <cstdint>

#include "core/hop_pattern.hpp"

namespace bhss::core {

/// Optimiser knobs.
struct OptimizerConfig {
  double jammer_power = 100.0;    ///< rho_j(0), paper-scale strong jammer
  double noise_var = 0.01;        ///< sigma_n^2 (paper uses 0.01)
  std::size_t random_draws = 20000;   ///< Dirichlet-style global search
  std::size_t refine_steps = 20000;   ///< local perturbation refinement
  std::uint64_t seed = 42;
};

/// Expected SNR improvement (linear) of a pattern against a fixed jammer
/// bandwidth `bj_frac`, averaged over the pattern's hop distribution with
/// the ideal-filter bound (eqs. (11)/(12)).
[[nodiscard]] double expected_improvement(const HopPattern& pattern, double bj_frac,
                                          double jammer_power, double noise_var);

/// Worst-case (over the jammer bandwidths in the set) expected improvement
/// of a pattern, in dB. This is the objective the parabolic pattern
/// maximises.
[[nodiscard]] double min_advantage_db(const HopPattern& pattern, double jammer_power,
                                      double noise_var);

/// Monte-Carlo max-min optimisation over hop distributions.
[[nodiscard]] HopPattern optimize_max_min_advantage(const BandwidthSet& bands,
                                                    const OptimizerConfig& cfg = {});

}  // namespace bhss::core
