#include "core/hop_schedule.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::core {

std::vector<jammer::ObservedHop> HopSchedule::observed_hops(const BandwidthSet& bands,
                                                            std::size_t delay) const {
  std::vector<jammer::ObservedHop> hops;
  hops.reserve(segments.size());
  for (const HopSegment& seg : segments) {
    hops.push_back({seg.start_sample + delay, bands.bandwidth_frac(seg.bw_index)});
  }
  return hops;
}

HopSchedule HopSchedule::make(std::size_t total_symbols, std::size_t symbols_per_hop,
                              const HopPattern& pattern, SharedRandom& rng) {
  BHSS_REQUIRE(total_symbols != 0, "HopSchedule: no symbols");
  BHSS_REQUIRE(symbols_per_hop != 0, "HopSchedule: symbols_per_hop == 0");

  HopSchedule schedule;
  schedule.total_symbols = total_symbols;
  std::size_t symbol = 0;
  std::size_t sample = 0;
  while (symbol < total_symbols) {
    HopSegment seg;
    seg.bw_index = pattern.draw(rng);
    seg.sps = pattern.bands().sps(seg.bw_index);
    seg.first_symbol = symbol;
    seg.n_symbols = std::min(symbols_per_hop, total_symbols - symbol);
    seg.start_sample = sample;
    seg.n_samples = seg.n_symbols * phy::kChipsPerSymbol * seg.sps;
    sample += seg.n_samples;
    symbol += seg.n_symbols;
    schedule.segments.push_back(seg);
  }
  schedule.total_samples = sample;
  return schedule;
}

HopSchedule HopSchedule::fixed(std::size_t total_symbols, const BandwidthSet& bands,
                               std::size_t bw_index) {
  BHSS_REQUIRE(total_symbols != 0, "HopSchedule: no symbols");
  HopSchedule schedule;
  schedule.total_symbols = total_symbols;
  HopSegment seg;
  seg.bw_index = bw_index;
  seg.sps = bands.sps(bw_index);
  seg.first_symbol = 0;
  seg.n_symbols = total_symbols;
  seg.start_sample = 0;
  seg.n_samples = total_symbols * phy::kChipsPerSymbol * seg.sps;
  schedule.segments.push_back(seg);
  schedule.total_samples = seg.n_samples;
  return schedule;
}

}  // namespace bhss::core
