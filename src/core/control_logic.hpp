#pragma once

/// @file control_logic.hpp
/// The receiver control logic of §4.2 (Fig. 6): estimate the jammer's
/// spectral occupancy from a PSD of the incoming samples, then configure
/// the pre-despreading suppression filter:
///  * jammer wider than the signal  -> low-pass filter (eq. (4)),
///  * jammer narrower than the signal -> whitening excision filter
///    (eq. (3)),
///  * jammer bandwidth close to the signal's, or jammer too weak to
///    matter -> no filter (eq. (10): excising a near-matched band costs
///    more signal than jammer).

#include <memory>
#include <optional>
#include <vector>

#include "core/bandwidth_set.hpp"
#include "core/filter_design_cache.hpp"
#include "dsp/fir.hpp"
#include "dsp/psd.hpp"
#include "dsp/types.hpp"
#include "obs/trace.hpp"

namespace bhss::core {

/// Which PSD estimator the control logic uses (ablation: Welch vs
/// Bartlett vs single periodogram).
enum class PsdMethod { welch, bartlett, periodogram };

/// How the excision filter's magnitude response is derived.
enum class ExcisionStyle {
  /// Literal eq. (3): H(k) = 1/sqrt(P(k)). Optimal for the paper's
  /// chip-rate model where the desired signal's spectrum is flat; on an
  /// oversampled half-sine waveform it also inverts the signal's own
  /// spectral shape, which costs self-noise.
  whitening,
  /// Divide the measured PSD by the known own-signal spectral template
  /// first, then whiten what remains: H = 1/sqrt(max(P/T / median, 1)).
  /// Same notch depth over the jammer, unity response where only the
  /// signal sits — eq. (3)'s intent without the self-noise.
  template_notch,
};

/// The filter the control logic selected for one hop.
struct FilterDecision {
  enum class Kind { none, lowpass, excision };

  /// Where this decision's design came from, for the obs counters:
  /// not_cacheable (no filter, low-pass bank, or the non-quantised
  /// whitening style), a filter-design-cache hit, or a miss (freshly
  /// designed and stored).
  enum class CacheOutcome { not_cacheable, hit, miss };

  Kind kind = Kind::none;
  dsp::cvec taps;                 ///< empty when kind == none
  std::size_t group_delay = 0;    ///< samples to compensate after filtering

  /// Shared frequency-domain convolution plan for `taps` (null when kind
  /// == none). Lets the receiver apply the filter without re-transforming
  /// the taps each hop.
  std::shared_ptr<const dsp::ConvolverPlan> plan;
  CacheOutcome cache = CacheOutcome::not_cacheable;

  // Diagnostics (what the estimator saw):
  double est_jammer_bw_frac = 0.0;  ///< estimated jammer occupancy (frac of Rs)
  double inband_peak_over_median_db = 0.0;
  double oob_to_inband_level_db = -300.0;

  /// The PSD estimate was degenerate (all-zero, non-finite, or a ~zero
  /// in-band median) and the logic fell back to Kind::none rather than
  /// synthesising Inf/NaN taps from eq. (3)'s 1/sqrt(P).
  bool degenerate_psd = false;
};

/// Configuration of the estimator and the decision thresholds.
struct ControlLogicConfig {
  std::size_t psd_fft = 256;          ///< PSD resolution (and excision tap count)
  double welch_overlap = 0.5;
  PsdMethod psd_method = PsdMethod::welch;

  std::size_t max_lpf_taps = 1025;    ///< low-pass length cap (paper: 3181)
  double lpf_atten_db = 70.0;         ///< paper: 70 dB stop-band

  /// One-sided low-pass cutoff as a multiple of the signal bandwidth
  /// fraction. 0.5 clips the half-sine main lobe at the nominal band edge;
  /// slightly above trades a little less jammer rejection for much less
  /// signal distortion.
  double lpf_cutoff_factor = 0.6;

  /// Wide-band detection: declare a wide-band jammer when the average
  /// out-of-band PSD level exceeds this fraction of the in-band level.
  /// Must be small: a strong desired signal inflates the in-band level and
  /// masks a wide-band jammer of comparable power. A false positive only
  /// applies a low-pass matched to the known signal band, which is
  /// harmless.
  double oob_level_ratio = 0.06;

  /// Narrow-band detection: declare a narrow-band jammer when the top
  /// quartile of template-normalised in-band bins exceeds the bottom
  /// quartile by this many dB (clean signals measure ~1-3 dB).
  double peak_over_median_db = 5.5;

  /// Eq. (10) guard: skip the excision filter when the estimated jammer
  /// bandwidth exceeds this fraction of the signal bandwidth.
  double excision_match_guard = 0.7;

  double excision_floor_rel = 1e-6;   ///< PSD floor clamp for eq. (3)
  ExcisionStyle excision_style = ExcisionStyle::template_notch;

  /// Capacity of the per-receiver excision design cache (0 disables it).
  /// Only the template_notch style is cacheable: its quantised PSD makes
  /// the taps a pure function of (bw level, jammed-bin mask), so cached
  /// and fresh designs are bit-identical. See filter_design_cache.hpp.
  std::size_t design_cache_capacity = 64;
};

/// Stateless-per-call filter selector with precomputed low-pass banks.
class ControlLogic {
 public:
  ControlLogic(ControlLogicConfig config, const BandwidthSet& bands);

  /// Inspect `slice` (raw received samples of one hop) and choose the
  /// suppression filter for a signal at bandwidth level `bw_index`.
  /// `trace` (optional) accumulates the choose_filter timing scope; the
  /// decision itself is unaffected.
  [[nodiscard]] FilterDecision decide(dsp::cspan slice, std::size_t bw_index,
                                      obs::TraceSink* trace = nullptr) const;

  /// Force a specific filter kind (used by ablation benches):
  /// lowpass from the bank, or excision from the measured PSD.
  [[nodiscard]] FilterDecision force_lowpass(std::size_t bw_index) const;
  [[nodiscard]] FilterDecision force_excision(dsp::cspan slice, std::size_t bw_index,
                                              obs::TraceSink* trace = nullptr) const;

  [[nodiscard]] const ControlLogicConfig& config() const noexcept { return config_; }

  /// The excision design cache (hit/miss counters feed the obs layer).
  [[nodiscard]] const FilterDesignCache& design_cache() const noexcept { return design_cache_; }

  /// One-sided low-pass cutoff (cycles/sample) used for a bandwidth level.
  [[nodiscard]] double lpf_cutoff_frac(std::size_t bw_index) const;

 private:
  [[nodiscard]] dsp::fvec estimate_psd(dsp::cspan slice, std::size_t fft_size) const;

  /// FFT size for jammer *detection*: large enough that the signal band
  /// of the given level spans a useful number of bins (narrow hops need
  /// fine resolution), yet small enough that the slice still yields >= 8
  /// averaged Welch segments (otherwise estimator noise mimics a
  /// narrow-band jammer).
  [[nodiscard]] std::size_t detection_fft(std::size_t slice_len, std::size_t bw_index) const;

  /// FFT size (= tap count) for the excision design at a level: at least
  /// psd_fft, more for narrow bands so the notch resolution stays a small
  /// fraction of the signal bandwidth.
  [[nodiscard]] std::size_t design_fft(std::size_t bw_index) const;

  ControlLogicConfig config_;
  BandwidthSet bands_;
  std::vector<dsp::cvec> lpf_bank_;         ///< one low-pass per bandwidth level
  std::vector<std::size_t> lpf_delay_;
  /// Convolution plans for the low-pass bank, precomputed with the taps
  /// (the bank is fixed, so these never churn the design cache).
  std::vector<std::shared_ptr<const dsp::ConvolverPlan>> lpf_plan_;
  /// Excision design cache; mutable because `decide` is logically const
  /// (the cache changes which work runs, never which decision comes out).
  mutable FilterDesignCache design_cache_;
};

/// Analytic power spectral density of half-sine O-QPSK (MSK-shaped),
/// normalised to 1 at DC. @param f_norm frequency in cycles/sample,
/// @param sps chip duration in samples.
[[nodiscard]] double msk_psd_shape(double f_norm, double sps) noexcept;

}  // namespace bhss::core
