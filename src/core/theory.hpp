#pragma once

/// @file theory.hpp
/// Closed-form performance model of BHSS (paper §5 and appendix):
///  * correlator-output SNR with and without suppression filters
///    (eqs. (6), (7)), numerically from taps + jammer autocorrelation,
///  * the SNR improvement factor gamma (eq. (8)) and its ideal-filter
///    upper bounds for narrow-band / wide-band jammers (eqs. (11), (12)),
///  * bit error rate (eq. (16)), packet error rate and throughput
///    (eqs. (17), (18)),
///  * a hop-averaged BHSS model reproducing Figures 9, 10 and 11.

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"

namespace bhss::core::theory {

/// Eq. (7): correlator output SNR with no suppression filter.
/// @param processing_gain  L, linear (chips per symbol/bit)
/// @param jammer_power     rho_j(0), total interference power per chip
/// @param noise_var        sigma_n^2, white noise variance per chip
[[nodiscard]] double output_snr_unfiltered(double processing_gain, double jammer_power,
                                           double noise_var);

/// Eq. (6): correlator output SNR behind a suppression filter with taps
/// h(k) and jammer autocorrelation rho_j(k) (rho_j[0] = total power;
/// lags beyond rho_j.size()-1 are treated as zero).
[[nodiscard]] double output_snr_filtered(double processing_gain, dsp::cspan taps,
                                         dsp::fspan rho_j, double noise_var);

/// Eq. (8): gamma = SNR_filtered / SNR_unfiltered, from arbitrary taps.
/// Independent of the processing gain.
[[nodiscard]] double snr_improvement_numeric(dsp::cspan taps, dsp::fspan rho_j,
                                             double noise_var);

/// Eqs. (11)/(12): ideal-filter upper bound on gamma as a function of the
/// bandwidth ratio Bp/Bj.
///  * Bp/Bj >= 1 (narrow-band jammer, excision filter), eq. (11) — clamped
///    to 1 when the jammer is too close in bandwidth (eq. (10));
///  * Bp/Bj < 1 (wide-band jammer, low-pass filter), eq. (12).
[[nodiscard]] double snr_improvement_bound(double bp_over_bj, double jammer_power,
                                           double noise_var);

/// Eq. (16): QPSK/BPSK bit error probability from the correlator SNR,
/// Pb = 0.5 * erfc(sqrt(SNR / 2)).
[[nodiscard]] double ber_from_snr(double snr);

/// Eq. (18): packet error probability for N i.i.d. bits.
[[nodiscard]] double packet_error_rate(double ber, std::size_t n_bits);

/// Eq. (17): throughput T = R * (1 - Pp); returned normalised (R = 1).
[[nodiscard]] double normalized_throughput(double ber, std::size_t n_bits);

/// Hop-averaged analytical BHSS link model (Figures 9-11).
/// Bandwidths are normalised to max(Bp) = 1; the per-chip SJR and the
/// per-chip noise variance are constant across hops (paper §5.3).
class BhssModel {
 public:
  /// @param hop_bandwidths  normalised hop bandwidths (max must be 1.0)
  /// @param hop_probs       draw probabilities (normalised internally)
  /// @param processing_gain L, linear (paper: 100 = 20 dB)
  /// @param jammer_power    rho_j(0) per chip (paper: SJR = -20 dB -> 100)
  BhssModel(std::vector<double> hop_bandwidths, std::vector<double> hop_probs,
            double processing_gain, double jammer_power);

  /// Log-spaced hop set spanning `range` (e.g. 100 for Fig. 9) with
  /// `levels` levels and uniform draw probabilities.
  [[nodiscard]] static BhssModel log_uniform(double range, std::size_t levels,
                                             double processing_gain, double jammer_power);

  /// Map Eb/N0 (linear) to the per-chip noise variance:
  /// sigma_n^2 = L / (2 Eb/N0), so that without jamming
  /// Pb = 0.5 erfc(sqrt(Eb/N0)) — the matched-filter QPSK bound.
  [[nodiscard]] double noise_var_for_ebno(double ebno_linear) const;

  /// Ideal-filter output SNR for one hop of normalised bandwidth `alpha`
  /// against a jammer of normalised bandwidth `bj`.
  [[nodiscard]] double snr_at_hop(double alpha, double bj, double noise_var) const;

  /// Expected SNR improvement factor over the hop distribution against a
  /// fixed jammer bandwidth: E_p[gamma(alpha/bj)].
  [[nodiscard]] double expected_gamma(double bj, double noise_var) const;

  /// BER against a fixed-bandwidth jammer (Fig. 9 curves). Following the
  /// paper's method, the BER is evaluated at the hop-expected output SNR
  /// (gamma averaged over the hop distribution, then one Q-function) —
  /// this is what lets Fig. 9 reach 1e-10 even though individual matched
  /// hops would be error-prone. See ber_fixed_jammer_hop_averaged() for
  /// the uncoded per-hop alternative.
  [[nodiscard]] double ber_fixed_jammer(double bj, double ebno_linear) const;

  /// Per-hop-averaged BER: E_p[Pb(SNR(alpha))] — what an uncoded system
  /// without interleaving across hops actually experiences (our
  /// sample-domain link shows this behaviour). More pessimistic: the
  /// worst hop's errors floor the average.
  [[nodiscard]] double ber_fixed_jammer_hop_averaged(double bj, double ebno_linear) const;

  /// BER when the jammer hops uniformly over the same bandwidth set
  /// ("Bj = random" curve of Fig. 9), evaluated at the expected gamma over
  /// both hop draws.
  [[nodiscard]] double ber_random_jammer(double ebno_linear) const;

  /// DSSS/FHSS baseline: jammer matched to the (fixed) signal bandwidth,
  /// no pre-despreading filter, eq. (7). `processing_gain_override` lets
  /// the caller model the rate-equalised DSSS of Fig. 11 (L = 25.4 dB).
  [[nodiscard]] double ber_dsss(double ebno_linear,
                                double processing_gain_override = 0.0) const;

  /// Fig. 11: normalised throughput against a fixed jammer. Hops carry
  /// equal symbol counts, so the delivered rate per hop scales with its
  /// bandwidth: T = sum p_k a_k (1 - Pp_k) / sum p_k a_k.
  [[nodiscard]] double throughput_fixed_jammer(double bj, double ebno_linear,
                                               std::size_t n_bits) const;

  /// Fig. 11: throughput against the uniformly hopping jammer.
  [[nodiscard]] double throughput_random_jammer(double ebno_linear, std::size_t n_bits) const;

  /// Fig. 11 baseline: DSSS/FHSS throughput at the rate-equalised
  /// processing gain.
  [[nodiscard]] double throughput_dsss(double ebno_linear, std::size_t n_bits) const;

  /// Processing gain a fixed-bandwidth DSSS needs to match this model's
  /// data rate in the same spectrum: L_DSSS = L * max(B) / E_p[B]
  /// (paper: 25.4 dB for L = 20 dB and hop range 100).
  [[nodiscard]] double dsss_equivalent_processing_gain() const;

  [[nodiscard]] const std::vector<double>& hop_bandwidths() const noexcept { return bw_; }
  [[nodiscard]] const std::vector<double>& hop_probs() const noexcept { return probs_; }
  [[nodiscard]] double processing_gain() const noexcept { return l_; }
  [[nodiscard]] double jammer_power() const noexcept { return rho_; }

 private:
  std::vector<double> bw_;
  std::vector<double> probs_;
  double l_;
  double rho_;
};

}  // namespace bhss::core::theory
