#pragma once

/// @file hop_schedule.hpp
/// The per-frame bandwidth hopping schedule. The pulse-shape scale factor
/// is re-drawn "after a fixed number of symbols" (paper §3/§6.1) from the
/// shared random source, so transmitter and receiver derive the identical
/// schedule and the jammer cannot predict it.

#include <vector>

#include "core/hop_pattern.hpp"
#include "core/shared_random.hpp"
#include "jammer/reactive_jammer.hpp"
#include "phy/chip_table.hpp"

namespace bhss::core {

/// One bandwidth dwell within a frame.
struct HopSegment {
  std::size_t bw_index = 0;      ///< level in the BandwidthSet
  std::size_t sps = 2;           ///< samples per chip during this hop
  std::size_t first_symbol = 0;  ///< first frame symbol carried by the hop
  std::size_t n_symbols = 0;     ///< symbols in this hop
  std::size_t start_sample = 0;  ///< nominal start in the frame waveform
  std::size_t n_samples = 0;     ///< nominal duration: n_symbols * 32 * sps

  [[nodiscard]] std::size_t n_chips() const noexcept {
    return n_symbols * phy::kChipsPerSymbol;
  }
  [[nodiscard]] std::size_t end_sample() const noexcept { return start_sample + n_samples; }
};

/// Complete schedule covering every symbol of a frame.
struct HopSchedule {
  std::vector<HopSegment> segments;
  std::size_t total_symbols = 0;
  std::size_t total_samples = 0;

  /// Frame waveform length (half-sine pulses end exactly at segment
  /// boundaries, so this equals total_samples).
  [[nodiscard]] std::size_t waveform_samples() const noexcept { return total_samples; }

  /// Hops as a jammer would observe them over the air (bandwidths and
  /// start samples), optionally shifted by the propagation delay.
  [[nodiscard]] std::vector<jammer::ObservedHop> observed_hops(
      const BandwidthSet& bands, std::size_t delay = 0) const;

  /// Build a randomised schedule: draw a bandwidth level per
  /// `symbols_per_hop` block from `pattern` using the shared random
  /// source. The final hop may be shorter.
  [[nodiscard]] static HopSchedule make(std::size_t total_symbols, std::size_t symbols_per_hop,
                                        const HopPattern& pattern, SharedRandom& rng);

  /// Fixed-bandwidth schedule (hopping disabled — the paper's baseline
  /// receiver uses "the same code base as BHSS but disable[s] bandwidth
  /// hopping", §6.4).
  [[nodiscard]] static HopSchedule fixed(std::size_t total_symbols, const BandwidthSet& bands,
                                         std::size_t bw_index);
};

}  // namespace bhss::core
