#include "core/theory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::core::theory {
namespace {

/// Sum over filter self-noise and filtered-noise terms of eqs. (6)/(8).
/// The paper's derivation takes h(0) as the reference (signal-bearing)
/// tap, which holds for the causal prediction-error whitening filters of
/// [7]; for linear-phase designs the signal-bearing tap is the largest
/// one, so we use the max-magnitude tap as the reference and count every
/// other tap as self-noise (time dispersion).
struct TapSums {
  double reference = 0.0;    ///< |h(k0)|^2 of the signal-bearing tap
  double self_noise = 0.0;   ///< sum_{l != k0} |h(l)|^2
  double all_taps = 0.0;     ///< sum_l |h(l)|^2
  double residual_jam = 0.0; ///< sum_l sum_m h(l) h*(m) rho_j(l-m)
};

TapSums tap_sums(dsp::cspan taps, dsp::fspan rho_j) {
  TapSums s;
  const std::size_t k = taps.size();
  std::size_t k0 = 0;
  for (std::size_t l = 0; l < k; ++l) {
    const double h2 = std::norm(taps[l]);
    s.all_taps += h2;
    if (h2 > s.reference) {
      s.reference = h2;
      k0 = l;
    }
  }
  s.self_noise = s.all_taps - static_cast<double>(std::norm(taps[k0]));
  for (std::size_t l = 0; l < k; ++l) {
    for (std::size_t m = 0; m < k; ++m) {
      const std::size_t lag = (l >= m) ? l - m : m - l;
      if (lag >= rho_j.size()) continue;
      // h complex in general; the quadratic form uses Re{h(l) conj(h(m))}.
      s.residual_jam += static_cast<double>((taps[l] * std::conj(taps[m])).real() * rho_j[lag]);
    }
  }
  return s;
}

}  // namespace

double output_snr_unfiltered(double processing_gain, double jammer_power, double noise_var) {
  BHSS_REQUIRE(processing_gain > 0.0, "output_snr: L must be > 0");
  return processing_gain / (jammer_power + noise_var);
}

double output_snr_filtered(double processing_gain, dsp::cspan taps, dsp::fspan rho_j,
                           double noise_var) {
  BHSS_REQUIRE(!taps.empty(), "output_snr_filtered: empty taps");
  BHSS_REQUIRE(!rho_j.empty(), "output_snr_filtered: empty autocorrelation");
  const TapSums s = tap_sums(taps, rho_j);
  BHSS_REQUIRE(s.reference > 0.0, "output_snr_filtered: all-zero taps");
  // Eq. (6), normalised by the reference tap gain so the desired-signal
  // term stays L.
  const double denom =
      (s.self_noise + std::max(s.residual_jam, 0.0) + noise_var * s.all_taps) / s.reference;
  return processing_gain / std::max(denom, 1e-30);
}

double snr_improvement_numeric(dsp::cspan taps, dsp::fspan rho_j, double noise_var) {
  const double with = output_snr_filtered(1.0, taps, rho_j, noise_var);
  const double without =
      output_snr_unfiltered(1.0, rho_j.empty() ? 0.0 : static_cast<double>(rho_j[0]), noise_var);
  return with / without;
}

double snr_improvement_bound(double bp_over_bj, double jammer_power, double noise_var) {
  BHSS_REQUIRE(bp_over_bj > 0.0, "snr_improvement_bound: ratio must be > 0");
  const double rho = jammer_power;
  const double s2 = noise_var;
  if (bp_over_bj >= 1.0) {
    // Narrow-band jammer (Bj <= Bp): ideal excision filter, eq. (9)/(11).
    // Apply the filter only while it helps (eq. (10)); otherwise gamma = 1.
    const double r = bp_over_bj;
    if (r <= 1.0) return 1.0;  // Bj == Bp: no offset, nothing to excise
    const double gamma = (rho + s2) * (r - 1.0) / (r * (1.0 + s2));
    return std::max(gamma, 1.0);
  }
  // Wide-band jammer (Bj > Bp): ideal low-pass filter, eq. (12).
  return (rho + s2) / (bp_over_bj * rho + s2);
}

double ber_from_snr(double snr) {
  if (snr < 0.0) snr = 0.0;
  return 0.5 * std::erfc(std::sqrt(snr / 2.0));
}

double packet_error_rate(double ber, std::size_t n_bits) {
  ber = std::clamp(ber, 0.0, 1.0);
  if (ber >= 1.0) return 1.0;
  // 1 - (1 - Pb)^N, computed stably for tiny Pb.
  return -std::expm1(static_cast<double>(n_bits) * std::log1p(-ber));
}

double normalized_throughput(double ber, std::size_t n_bits) {
  return 1.0 - packet_error_rate(ber, n_bits);
}

// -------------------------------------------------------------- BhssModel

BhssModel::BhssModel(std::vector<double> hop_bandwidths, std::vector<double> hop_probs,
                     double processing_gain, double jammer_power)
    : bw_(std::move(hop_bandwidths)),
      probs_(std::move(hop_probs)),
      l_(processing_gain),
      rho_(jammer_power) {
  BHSS_REQUIRE(!bw_.empty() && bw_.size() == probs_.size(),
               "BhssModel: bandwidths/probabilities size mismatch");
  const double max_bw = *std::max_element(bw_.begin(), bw_.end());
  BHSS_REQUIRE(std::abs(max_bw - 1.0) <= 1e-9, "BhssModel: bandwidths must be normalised to max 1");
  double total = 0.0;
  for (double p : probs_) total += p;
  BHSS_REQUIRE(total > 0.0, "BhssModel: zero distribution");
  for (double& p : probs_) p /= total;
}

BhssModel BhssModel::log_uniform(double range, std::size_t levels, double processing_gain,
                                 double jammer_power) {
  BHSS_REQUIRE(range >= 1.0 && levels >= 2, "log_uniform: bad range/levels");
  std::vector<double> bw(levels);
  std::vector<double> probs(levels, 1.0);
  for (std::size_t k = 0; k < levels; ++k) {
    bw[k] = std::pow(range, -static_cast<double>(k) / static_cast<double>(levels - 1));
  }
  return BhssModel(std::move(bw), std::move(probs), processing_gain, jammer_power);
}

double BhssModel::noise_var_for_ebno(double ebno_linear) const {
  BHSS_REQUIRE(ebno_linear > 0.0, "noise_var_for_ebno: Eb/N0 must be > 0");
  return l_ / (2.0 * ebno_linear);
}

double BhssModel::snr_at_hop(double alpha, double bj, double noise_var) const {
  const double gamma = snr_improvement_bound(alpha / bj, rho_, noise_var);
  return gamma * output_snr_unfiltered(l_, rho_, noise_var);
}

double BhssModel::expected_gamma(double bj, double noise_var) const {
  double gamma = 0.0;
  for (std::size_t k = 0; k < bw_.size(); ++k) {
    gamma += probs_[k] * snr_improvement_bound(bw_[k] / bj, rho_, noise_var);
  }
  return gamma;
}

double BhssModel::ber_fixed_jammer(double bj, double ebno_linear) const {
  const double s2 = noise_var_for_ebno(ebno_linear);
  const double snr = expected_gamma(bj, s2) * output_snr_unfiltered(l_, rho_, s2);
  return ber_from_snr(snr);
}

double BhssModel::ber_fixed_jammer_hop_averaged(double bj, double ebno_linear) const {
  const double s2 = noise_var_for_ebno(ebno_linear);
  double ber = 0.0;
  for (std::size_t k = 0; k < bw_.size(); ++k) {
    ber += probs_[k] * ber_from_snr(snr_at_hop(bw_[k], bj, s2));
  }
  return ber;
}

double BhssModel::ber_random_jammer(double ebno_linear) const {
  const double s2 = noise_var_for_ebno(ebno_linear);
  double gamma = 0.0;
  const double jam_p = 1.0 / static_cast<double>(bw_.size());
  for (std::size_t k = 0; k < bw_.size(); ++k) {
    for (std::size_t j = 0; j < bw_.size(); ++j) {
      gamma += probs_[k] * jam_p * snr_improvement_bound(bw_[k] / bw_[j], rho_, s2);
    }
  }
  return ber_from_snr(gamma * output_snr_unfiltered(l_, rho_, s2));
}

double BhssModel::ber_dsss(double ebno_linear, double processing_gain_override) const {
  const double l = processing_gain_override > 0.0 ? processing_gain_override : l_;
  const double s2 = l / (2.0 * ebno_linear);
  return ber_from_snr(output_snr_unfiltered(l, rho_, s2));
}

double BhssModel::throughput_fixed_jammer(double bj, double ebno_linear,
                                          std::size_t n_bits) const {
  const double s2 = noise_var_for_ebno(ebno_linear);
  double delivered = 0.0;
  double offered = 0.0;
  for (std::size_t k = 0; k < bw_.size(); ++k) {
    const double pp = packet_error_rate(ber_from_snr(snr_at_hop(bw_[k], bj, s2)), n_bits);
    delivered += probs_[k] * bw_[k] * (1.0 - pp);
    offered += probs_[k] * bw_[k];
  }
  return delivered / offered;
}

double BhssModel::throughput_random_jammer(double ebno_linear, std::size_t n_bits) const {
  const double s2 = noise_var_for_ebno(ebno_linear);
  const double jam_p = 1.0 / static_cast<double>(bw_.size());
  double delivered = 0.0;
  double offered = 0.0;
  for (std::size_t k = 0; k < bw_.size(); ++k) {
    double pp_avg = 0.0;
    for (std::size_t j = 0; j < bw_.size(); ++j) {
      pp_avg += jam_p * packet_error_rate(ber_from_snr(snr_at_hop(bw_[k], bw_[j], s2)), n_bits);
    }
    delivered += probs_[k] * bw_[k] * (1.0 - pp_avg);
    offered += probs_[k] * bw_[k];
  }
  return delivered / offered;
}

double BhssModel::throughput_dsss(double ebno_linear, std::size_t n_bits) const {
  const double ber = ber_dsss(ebno_linear, dsss_equivalent_processing_gain());
  return normalized_throughput(ber, n_bits);
}

double BhssModel::dsss_equivalent_processing_gain() const {
  double mean_bw = 0.0;
  for (std::size_t k = 0; k < bw_.size(); ++k) mean_bw += probs_[k] * bw_[k];
  return l_ / mean_bw;  // max(B) is 1 by construction
}

}  // namespace bhss::core::theory
