#pragma once

/// @file hop_override.hpp
/// Link-layer override of the hop plan for one frame. The adaptation
/// loop (src/adapt) steers the hop distribution and dwell away from a
/// jammer; the PHY stays oblivious — transmitter and receiver simply
/// accept an optional replacement pattern/dwell and both derive the
/// schedule from it with the *same* shared-random draw, so the two ends
/// stay in lockstep exactly as they do on the configured plan. (In a
/// deployment the adaptation decision rides the shared secret the same
/// way the hop sequence does, §4.1 — both ends compute it from acked
/// telemetry, so no extra coordination traffic is modelled here.)

#include <cstddef>

#include "core/hop_pattern.hpp"

namespace bhss::core {

/// Borrowed, all-default = "use the SystemConfig plan". A non-null
/// pattern must be built over the same BandwidthSet as the config's
/// (same levels in the same order); symbols_per_hop == 0 keeps the
/// configured dwell.
struct HopOverride {
  const HopPattern* pattern = nullptr;
  std::size_t symbols_per_hop = 0;
};

}  // namespace bhss::core
