#include "core/receiver.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "core/transmitter.hpp"
#include "dsp/utils.hpp"
#include "phy/frame.hpp"
#include "phy/modulator.hpp"
#include "phy/spreader.hpp"
#include "sync/costas.hpp"

namespace bhss::core {

BhssReceiver::BhssReceiver(SystemConfig config)
    : config_(std::move(config)), logic_(config_.logic, config_.pattern.bands()) {}

FilterDecision BhssReceiver::choose_filter(dsp::cspan slice, std::size_t bw_index,
                                           obs::TraceSink* trace) const {
  // A NaN/Inf sample reaching the PSD estimator poisons the whole filter
  // decision (every Welch bin becomes NaN, eq. (3) taps become NaN, and
  // the frame decodes to uniformly random symbols) without any error
  // surfacing — reject it at the boundary instead.
  BHSS_REQUIRE(dsp::all_finite(slice),
               "BhssReceiver: non-finite samples at the filter-selection boundary");
  BHSS_REQUIRE(bw_index < config_.pattern.bands().size(),
               "BhssReceiver: bandwidth index outside the hop pattern's band set");
  switch (config_.filter_policy) {
    case FilterPolicy::adaptive:
      return logic_.decide(slice, bw_index, trace);
    case FilterPolicy::off:
      return FilterDecision{};
    case FilterPolicy::always_lowpass:
      return logic_.force_lowpass(bw_index);
    case FilterPolicy::always_excision:
      return logic_.force_excision(slice, bw_index, trace);
  }
  return FilterDecision{};
}

dsp::cvec BhssReceiver::filtered_slice(dsp::cspan buffer, std::size_t a0, std::size_t needed,
                                       const FilterDecision& decision,
                                       obs::TraceSink* trace) const {
  BHSS_TRACE_SCOPE(trace, obs::TraceScopeId::filter_apply);
  if (decision.kind == FilterDecision::Kind::none || decision.taps.empty()) {
    dsp::cvec out(needed, dsp::cf{0.0F, 0.0F});
    for (std::size_t i = 0; i < needed && a0 + i < buffer.size(); ++i) out[i] = buffer[a0 + i];
    return out;
  }

  // Filter a window with lead-in (so the filter is warmed up by real
  // samples where they exist) and a zero-padded lead-out (so every
  // group-delay-shifted read is defined even at the end of the capture),
  // then pick the delay-compensated samples aligned with a0.
  const std::size_t k_taps = decision.taps.size();
  const std::size_t lead = std::min(a0, k_taps);
  const std::size_t begin = a0 - lead;
  const std::size_t in_len = lead + needed + k_taps;

  dsp::cvec padded(in_len, dsp::cf{0.0F, 0.0F});
  for (std::size_t i = 0; i < in_len && begin + i < buffer.size(); ++i) {
    padded[i] = buffer[begin + i];
  }

  // A cached decision (or a low-pass from the bank) carries the shared
  // convolution plan; only a plan-less decision pays the taps FFT here.
  dsp::FftConvolver convolver = decision.plan ? dsp::FftConvolver{decision.plan}
                                              : dsp::FftConvolver{dsp::cspan{decision.taps}};
  const dsp::cvec filtered = convolver.filter(padded);

  dsp::cvec out(needed);
  for (std::size_t i = 0; i < needed; ++i) {
    out[i] = filtered[lead + decision.group_delay + i];
  }
  BHSS_ENSURE(dsp::all_finite(dsp::cspan{out}),
              "BhssReceiver: suppression filter produced non-finite samples");
  return out;
}

RxResult BhssReceiver::receive(dsp::cspan rx, std::uint64_t frame_counter,
                               std::size_t payload_len, std::size_t search_window,
                               std::size_t genie_frame_start, const obs::LinkObs& o,
                               const HopOverride& ov) const {
  BHSS_TRACE_SCOPE(o.trace, obs::TraceScopeId::receive);
  RxResult result;

  // Mirror the transmitter's per-frame derivations (including any
  // adaptation-layer override — both ends hold the same plan).
  SharedRandom rng = SharedRandom::for_frame(config_.seed, frame_counter);
  const std::uint32_t scrambler_seed = rng.derive_scrambler_seed();
  const std::size_t total_symbols = phy::FrameSpec::total_symbols(payload_len);
  const HopPattern& pattern = ov.pattern != nullptr ? *ov.pattern : config_.pattern;
  const std::size_t symbols_per_hop =
      ov.symbols_per_hop != 0 ? ov.symbols_per_hop : config_.symbols_per_hop;
  BHSS_REQUIRE(pattern.bands().size() == config_.pattern.bands().size(),
               "BhssReceiver: hop override must cover the configured bandwidth set");
  const HopSchedule schedule =
      config_.hopping
          ? HopSchedule::make(total_symbols, symbols_per_hop, pattern, rng)
          : HopSchedule::fixed(total_symbols, config_.pattern.bands(), config_.fixed_bw_index);

  // Front-end boundary: a corrupted capture (NaN/Inf words from a faulted
  // or saturated ADC) must not reach the PSD estimator or the correlators
  // — one bad sample poisons every downstream statistic. Scrub such
  // samples to zero (an erasure the despreader absorbs) and record the
  // rejection instead of refusing the whole frame.
  dsp::cvec buffer(rx.begin(), rx.end());
  for (dsp::cf& s : buffer) {
    if (!std::isfinite(s.real()) || !std::isfinite(s.imag())) {
      s = dsp::cf{0.0F, 0.0F};
      result.input_scrubbed = true;
    }
  }
  if (result.input_scrubbed && obs::counting(o.metrics)) {
    o.metrics->add(obs::link_ids().input_scrubbed);
  }
  std::size_t frame_start = genie_frame_start;

  if (config_.sync == SyncMode::preamble) {
    // Regenerate the clean preamble waveform from shared knowledge (the
    // preamble symbols are fixed, the scrambler and the schedule come
    // from the shared random source).
    const std::vector<std::uint8_t> preamble_syms(phy::FrameSpec::preamble_symbols, 0);
    const dsp::cvec reference = BhssTransmitter::modulate_symbols(
        preamble_syms, preamble_syms.size(), schedule, scrambler_seed);

    // Bounded re-acquisition state machine. Attempt 1 is the paper's
    // chain (Fig. 6): decide a filter from the acquisition window, apply
    // it to both the window and the reference so the correlation stays
    // matched and the group delays cancel, then search [0, search_window].
    // A transient that desynchronises the link — a clock glitch pushing
    // the frame beyond the search window, a sync-targeting burst drowning
    // the correlation peak — fails that attempt; instead of declaring the
    // frame lost, retry with a geometrically widened lag window and a
    // decayed threshold, and back off for good after max_attempts,
    // classifying the frame as sync_lost (never decoding garbage).
    const ReacquisitionConfig& reacq = config_.reacquisition;
    const std::size_t max_attempts = std::max<std::size_t>(reacq.max_attempts, 1);
    std::optional<sync::SyncEstimate> est;
    double lag_scale = 1.0;
    float threshold = config_.sync_threshold;
    for (std::size_t attempt = 0; attempt < max_attempts && !est.has_value(); ++attempt) {
      const std::size_t max_lag = std::min(
          buffer.size(),
          static_cast<std::size_t>(static_cast<double>(search_window) * lag_scale));
      const std::size_t window_len =
          std::min(buffer.size(), max_lag + reference.size() + 2 * config_.logic.psd_fft);
      const dsp::cspan window = dsp::cspan{buffer}.first(window_len);
      const FilterDecision decision =
          choose_filter(window, schedule.segments.front().bw_index, o.trace);
      if (decision.degenerate_psd) ++result.filter_fallbacks;

      dsp::cvec sync_window(window.begin(), window.end());
      dsp::cvec sync_ref = reference;
      if (decision.kind != FilterDecision::Kind::none) {
        dsp::FftConvolver convolver = decision.plan
                                          ? dsp::FftConvolver{decision.plan}
                                          : dsp::FftConvolver{dsp::cspan{decision.taps}};
        sync_window = convolver.filter(sync_window);
        sync_ref = convolver.filter(sync_ref);
      }
      if (obs::counting(o.metrics)) {
        const obs::LinkIds& ids = obs::link_ids();
        if (decision.cache == FilterDecision::CacheOutcome::hit) {
          o.metrics->add(ids.filter_cache_hits);
        } else if (decision.cache == FilterDecision::CacheOutcome::miss) {
          o.metrics->add(ids.filter_cache_misses);
        }
      }

      const sync::PreambleSync acquirer(std::move(sync_ref), config_.sync_threshold);
      est = acquirer.acquire(sync_window, max_lag, threshold, o.trace);
      ++result.sync_attempts;
      // A retry runs with a lowered threshold over a widened window, where
      // the largest of K pure-noise lags can clear the bar. Retry peaks
      // must therefore also beat the CFAR margin over the correlation
      // noise floor; the first attempt keeps the paper's single-threshold
      // behaviour untouched.
      const float peak_quality = est.has_value() ? est->quality : 0.0F;
      const float peak_margin = est.has_value() ? est->margin : 0.0F;
      std::uint8_t outcome = est.has_value() ? 1 : 0;  // miss/lock/cfar_reject
      if (attempt > 0 && est.has_value() && est->margin < reacq.min_margin) {
        est.reset();
        outcome = 2;
      }
      if (obs::tracing(o.trace)) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::sync_attempt;
        ev.flag = outcome;
        ev.hop = static_cast<std::uint32_t>(attempt);
        ev.packet = frame_counter;
        ev.v0 = static_cast<double>(threshold);
        ev.v1 = static_cast<double>(max_lag);
        ev.v2 = static_cast<double>(peak_quality);
        ev.v3 = static_cast<double>(peak_margin);
        o.trace->push(ev);
      }
      if (obs::counting(o.metrics)) o.metrics->add(obs::link_ids().sync_attempts);
      if (est.has_value()) {
        // Second pass: regression over the preamble tightens phase and
        // CFO so the per-hop carrier tracking starts inside its pull-in
        // range even for long (narrow-bandwidth) frames.
        *est = acquirer.refine(sync_window, *est, 8, o.trace);
      } else {
        lag_scale *= reacq.lag_widen;
        threshold = std::max(reacq.min_threshold, threshold * reacq.threshold_decay);
      }
    }
    if (!est.has_value()) {
      result.sync_lost = true;  // bounded back-off exhausted
      if (obs::tracing(o.trace)) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::sync_loss;
        ev.hop = static_cast<std::uint32_t>(result.sync_attempts);
        ev.packet = frame_counter;
        o.trace->push(ev);
      }
      if (obs::counting(o.metrics)) o.metrics->add(obs::link_ids().sync_losses);
      return result;
    }
    result.reacquired = result.sync_attempts > 1;
    result.sync = *est;
    result.frame_detected = true;
    frame_start = est->frame_start;
    sync::PreambleSync::derotate(dsp::cspan_mut{buffer}, *est);
    if (obs::tracing(o.trace)) {
      obs::TraceEvent ev;
      ev.type = obs::TraceEventType::sync_lock;
      ev.flag = result.reacquired ? 1 : 0;
      ev.hop = static_cast<std::uint32_t>(result.sync_attempts);
      ev.packet = frame_counter;
      ev.v0 = static_cast<double>(est->frame_start);
      ev.v1 = static_cast<double>(est->phase);
      ev.v2 = static_cast<double>(est->cfo);
      ev.v3 = static_cast<double>(est->quality);
      ev.v4 = static_cast<double>(est->margin);
      o.trace->push(ev);
    }
    if (obs::counting(o.metrics)) {
      const obs::LinkIds& ids = obs::link_ids();
      o.metrics->add(ids.sync_locks);
      if (result.reacquired) o.metrics->add(ids.reacquired);
      o.metrics->set(ids.last_sync_quality, static_cast<double>(est->quality));
      o.metrics->set(ids.last_sync_margin, static_cast<double>(est->margin));
      o.metrics->observe(ids.sync_margin, static_cast<double>(est->margin));
    }
  } else {
    result.frame_detected = true;
  }

  // Per-hop: decide filter, filter, track carrier, demodulate, despread.
  phy::Despreader despreader(scrambler_seed);
  result.symbols.reserve(total_symbols);
  result.hops.reserve(schedule.segments.size());

  // Decision-directed residual phase/CFO model, updated from the complex
  // despreading correlations of each healthy hop. The preamble estimate
  // alone cannot anchor the carrier over arbitrarily long frames (its CFO
  // error, extrapolated over 100k+ samples, exceeds the pull-in range of
  // the tracking loop); the despread correlations provide unambiguous
  // per-hop phase measurements with the full processing gain behind them.
  double model_phase = 0.0;   // residual phase at t_anchor [rad]
  double model_cfo = 0.0;     // residual CFO [rad/sample]
  double t_anchor = 0.0;      // frame time of the anchor [samples]
  bool have_measurement = false;

  for (const HopSegment& seg : schedule.segments) {
    const std::size_t a0 = frame_start + seg.start_sample;
    const std::size_t needed = seg.n_samples;

    // Jammer estimation on the raw (unfiltered) slice of this hop.
    const std::size_t avail = (a0 < buffer.size()) ? buffer.size() - a0 : 0;
    const dsp::cspan raw_slice{buffer.data() + std::min(a0, buffer.size()),
                               std::min(needed, avail)};
    FilterDecision decision;
    if (!raw_slice.empty()) {
      decision = choose_filter(raw_slice, seg.bw_index, o.trace);
    }
    result.hops.push_back({seg.bw_index, decision.kind, decision.est_jammer_bw_frac,
                           decision.inband_peak_over_median_db,
                           decision.oob_to_inband_level_db, decision.degenerate_psd});
    if (decision.degenerate_psd) ++result.filter_fallbacks;
    if (obs::tracing(o.trace)) {
      // One hop_decision event per hop carrying the decision plus every
      // eq. (10)/(3)/(4) threshold term the control logic compared
      // against — enough to replay *why* this filter was picked.
      const ControlLogicConfig& lc = logic_.config();
      const double signal_frac = config_.pattern.bands().bandwidth_frac(seg.bw_index);
      obs::TraceEvent ev;
      ev.type = obs::TraceEventType::hop_decision;
      ev.flag = decision.degenerate_psd
                    ? 3
                    : static_cast<std::uint8_t>(static_cast<int>(decision.kind));
      ev.bw_index = static_cast<std::uint16_t>(seg.bw_index);
      ev.hop = static_cast<std::uint32_t>(result.hops.size() - 1);
      ev.packet = frame_counter;
      ev.v0 = decision.est_jammer_bw_frac;
      ev.v1 = lc.excision_match_guard * signal_frac;  // eq. (10) guard threshold
      ev.v2 = decision.inband_peak_over_median_db;
      ev.v3 = lc.peak_over_median_db;
      ev.v4 = decision.oob_to_inband_level_db;
      ev.v5 = dsp::linear_to_db(lc.oob_level_ratio);
      o.trace->push(ev);
    }
    if (obs::counting(o.metrics)) {
      const obs::LinkIds& ids = obs::link_ids();
      o.metrics->add(ids.hops);
      switch (decision.kind) {
        case FilterDecision::Kind::none: o.metrics->add(ids.filter_none); break;
        case FilterDecision::Kind::lowpass: o.metrics->add(ids.filter_lowpass); break;
        case FilterDecision::Kind::excision: o.metrics->add(ids.filter_excision); break;
      }
      if (decision.degenerate_psd) o.metrics->add(ids.degenerate_psd);
      if (decision.cache == FilterDecision::CacheOutcome::hit) {
        o.metrics->add(ids.filter_cache_hits);
      } else if (decision.cache == FilterDecision::CacheOutcome::miss) {
        o.metrics->add(ids.filter_cache_misses);
      }
      o.metrics->observe(ids.est_jammer_bw, decision.est_jammer_bw_frac);
      o.metrics->observe(ids.inband_peak_db, decision.inband_peak_over_median_db);
    }

    // Remove the predicted residual rotation for this hop.
    dsp::cvec clean = filtered_slice(buffer, a0, needed, decision, o.trace);
    for (std::size_t i = 0; i < clean.size(); ++i) {
      const double t = static_cast<double>(seg.start_sample + i);
      const auto ang =
          static_cast<float>(-(model_phase + model_cfo * (t - t_anchor)));
      clean[i] *= dsp::cf{std::cos(ang), std::sin(ang)};
    }

    // Carrier tracking runs after the suppression filter and before the
    // matched filter, exactly as in the paper's chain (§6.1): without the
    // filter, a strong jammer drives the loop out of lock — a large part
    // of why unfiltered spread spectrum collapses under jamming. The loop
    // is re-anchored per hop on the phase model, so a slip inside one
    // badly jammed hop cannot poison the rest of the frame. When the
    // excision filter has notched out the spectral core, the waveform no
    // longer matches the decision-directed QPSK model and the loop would
    // wander; carrier tracking is bypassed there and the despread-level
    // phase feedback carries the hop instead.
    sync::CostasLoop costas(config_.costas_bandwidth);
    const bool track_carrier =
        config_.carrier_tracking && decision.kind != FilterDecision::Kind::excision;
    if (track_carrier) {
      BHSS_TRACE_SCOPE(o.trace, obs::TraceScopeId::carrier_track);
      costas.process(dsp::cspan_mut{clean});
    }

    BHSS_TRACE_SCOPE(o.trace, obs::TraceScopeId::demod_despread);
    const phy::QpskDemodulator demod(seg.sps);
    const dsp::cvec pairs = demod.demodulate_pairs(clean, seg.n_chips());

    dsp::cf corr_sum{0.0F, 0.0F};
    std::size_t healthy = 0;
    for (std::size_t s = 0; s < seg.n_symbols; ++s) {
      const auto chunk = dsp::cspan{pairs}.subspan(s * phy::kChipsPerSymbol / 2,
                                                   phy::kChipsPerSymbol / 2);
      const phy::DespreadPairsResult r = despreader.despread_pairs(chunk);
      result.symbols.push_back(r.symbol);
      if (r.coherence > 0.7F) {
        corr_sum += r.correlation;
        ++healthy;
      }
    }

    // Update the residual model from this hop only when nearly all of its
    // symbols decoded with high coherence and the implied correction is
    // small — a jammed hop (whose decisions, and hence phases, cannot be
    // trusted) is skipped and the model coasts on its CFO estimate.
    if (4 * healthy >= 3 * seg.n_symbols && std::abs(corr_sum) > 0.0F) {
      const double theta =
          static_cast<double>(std::arg(corr_sum)) +
          (track_carrier ? static_cast<double>(costas.phase()) : 0.0);
      if (std::abs(theta) < 0.7) {
        const double t_mid = static_cast<double>(seg.start_sample) +
                             static_cast<double>(seg.n_samples) / 2.0;
        const double predicted = model_phase + model_cfo * (t_mid - t_anchor);
        if (have_measurement && t_mid > t_anchor + 1.0) {
          const double slope =
              std::clamp(0.7 * theta / (t_mid - t_anchor), -2e-5, 2e-5);
          model_cfo = std::clamp(model_cfo + slope, -5e-4, 5e-4);
        }
        model_phase = predicted + theta;
        t_anchor = t_mid;
        have_measurement = true;
      }
    }
  }

  // Frame parsing: SFD + length + CRC decide packet success.
  if (auto payload = phy::parse_frame_symbols(result.symbols); payload.has_value()) {
    if (payload->size() == payload_len) {
      result.crc_ok = true;
      result.payload = std::move(*payload);
    }
  }
  return result;
}

}  // namespace bhss::core
