#pragma once

/// @file system_config.hpp
/// Shared configuration of a BHSS link. Transmitter and receiver are
/// constructed from the same SystemConfig — that is the paper's shared
/// random source assumption (§4.1): everything here except the live
/// channel is known to both ends and unknown to the jammer.

#include <cstdint>

#include "core/control_logic.hpp"
#include "core/hop_pattern.hpp"

namespace bhss::core {

/// How the receiver finds frame timing / phase / CFO.
enum class SyncMode {
  genie,     ///< oracle timing, no phase/CFO (isolates filtering effects)
  preamble,  ///< data-aided acquisition from the preamble (§6.1)
};

/// Which pre-despreading filter strategy the receiver runs (ablations).
enum class FilterPolicy {
  adaptive,         ///< control logic of §4.2 (the paper's receiver)
  off,              ///< plain SS receiver, eq. (7) behaviour
  always_lowpass,   ///< ablation: low-pass regardless of the jammer
  always_excision,  ///< ablation: excision regardless of the jammer
};

/// Complete link configuration shared by both ends.
struct SystemConfig {
  std::uint64_t seed = 0xB1155ULL;  ///< shared random seed (pre-shared key)

  /// Hop distribution; also carries the bandwidth set and sampling rate.
  HopPattern pattern = HopPattern::make(HopPatternType::linear, BandwidthSet::paper());

  /// Hop dwell in symbols ("the pulse shape is changed after a
  /// configurable number of symbols", §6.1). Must outrun the jammer's
  /// reaction time.
  std::size_t symbols_per_hop = 4;

  bool hopping = true;              ///< false = fixed-bandwidth baseline
  std::size_t fixed_bw_index = 0;   ///< level used when hopping is off

  SyncMode sync = SyncMode::preamble;
  FilterPolicy filter_policy = FilterPolicy::adaptive;
  ControlLogicConfig logic{};

  float sync_threshold = 0.18F;     ///< preamble acceptance threshold

  /// Decision-directed Costas loop after the suppression filter (§6.1).
  /// Tracks residual carrier phase/frequency; under unfiltered strong
  /// jamming it loses lock, which is part of the paper's measured effect.
  bool carrier_tracking = true;
  float costas_bandwidth = 0.002F;  ///< normalised loop bandwidth
};

}  // namespace bhss::core
