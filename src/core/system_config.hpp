#pragma once

/// @file system_config.hpp
/// Shared configuration of a BHSS link. Transmitter and receiver are
/// constructed from the same SystemConfig — that is the paper's shared
/// random source assumption (§4.1): everything here except the live
/// channel is known to both ends and unknown to the jammer.

#include <cstdint>

#include "core/control_logic.hpp"
#include "core/hop_pattern.hpp"

namespace bhss::core {

/// How the receiver finds frame timing / phase / CFO.
enum class SyncMode {
  genie,     ///< oracle timing, no phase/CFO (isolates filtering effects)
  preamble,  ///< data-aided acquisition from the preamble (§6.1)
};

/// Which pre-despreading filter strategy the receiver runs (ablations).
enum class FilterPolicy {
  adaptive,         ///< control logic of §4.2 (the paper's receiver)
  off,              ///< plain SS receiver, eq. (7) behaviour
  always_lowpass,   ///< ablation: low-pass regardless of the jammer
  always_excision,  ///< ablation: excision regardless of the jammer
};

/// Bounded re-acquisition policy. A transient that hits the acquisition
/// window — a sync-targeting burst, a clock glitch that shifts the frame
/// beyond the nominal search window — would otherwise turn into a silent
/// frame loss (or worse, a decode of garbage). The receiver instead
/// retries the preamble search with a geometrically widened lag window
/// and a decayed threshold, backs off after `max_attempts`, and
/// classifies an exhausted search as `sync_lost`.
struct ReacquisitionConfig {
  std::size_t max_attempts = 3;   ///< total search passes; 1 = single shot
  double lag_widen = 2.0;         ///< search-window growth factor per retry
  float threshold_decay = 0.75F;  ///< acceptance-threshold decay per retry
  float min_threshold = 0.08F;    ///< floor the decayed threshold clamps to

  /// CFAR-style validation for retry acquisitions only: a peak accepted
  /// below the nominal threshold must also stand this far above the
  /// correlation noise floor (mean normalised magnitude over the searched
  /// lags). Pure noise over K lags peaks near sqrt(2 ln K) ~ 3-3.5x its
  /// own floor, so 4.5 rejects lucky noise while a real (even badly
  /// degraded) preamble clears it comfortably.
  float min_margin = 4.5F;
};

/// Complete link configuration shared by both ends.
struct SystemConfig {
  std::uint64_t seed = 0xB1155ULL;  ///< shared random seed (pre-shared key)

  /// Hop distribution; also carries the bandwidth set and sampling rate.
  HopPattern pattern = HopPattern::make(HopPatternType::linear, BandwidthSet::paper());

  /// Hop dwell in symbols ("the pulse shape is changed after a
  /// configurable number of symbols", §6.1). Must outrun the jammer's
  /// reaction time.
  std::size_t symbols_per_hop = 4;

  bool hopping = true;              ///< false = fixed-bandwidth baseline
  std::size_t fixed_bw_index = 0;   ///< level used when hopping is off

  SyncMode sync = SyncMode::preamble;
  FilterPolicy filter_policy = FilterPolicy::adaptive;
  ControlLogicConfig logic{};

  float sync_threshold = 0.18F;     ///< preamble acceptance threshold
  ReacquisitionConfig reacquisition{};  ///< bounded retry of a failed search

  /// Decision-directed Costas loop after the suppression filter (§6.1).
  /// Tracks residual carrier phase/frequency; under unfiltered strong
  /// jamming it loses lock, which is part of the paper's measured effect.
  bool carrier_tracking = true;
  float costas_bandwidth = 0.002F;  ///< normalised loop bandwidth
};

}  // namespace bhss::core
