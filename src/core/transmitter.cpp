#include "core/transmitter.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "phy/frame.hpp"
#include "phy/modulator.hpp"
#include "phy/spreader.hpp"

namespace bhss::core {

BhssTransmitter::BhssTransmitter(SystemConfig config) : config_(std::move(config)) {}

dsp::cvec BhssTransmitter::modulate_symbols(std::span<const std::uint8_t> symbols,
                                            std::size_t n_symbols, const HopSchedule& schedule,
                                            std::uint32_t scrambler_seed) {
  phy::Spreader spreader(scrambler_seed);
  n_symbols = std::min(n_symbols, symbols.size());

  // Waveform spans the samples of the covered symbols.
  std::size_t wave_len = 0;
  for (const HopSegment& seg : schedule.segments) {
    if (seg.first_symbol >= n_symbols) break;
    const std::size_t syms_here = std::min(seg.n_symbols, n_symbols - seg.first_symbol);
    wave_len = seg.start_sample + syms_here * phy::kChipsPerSymbol * seg.sps;
  }
  dsp::cvec wave(wave_len, dsp::cf{0.0F, 0.0F});

  for (const HopSegment& seg : schedule.segments) {
    if (seg.first_symbol >= n_symbols) break;
    const std::size_t syms_here = std::min(seg.n_symbols, n_symbols - seg.first_symbol);

    std::vector<float> chips;
    chips.reserve(syms_here * phy::kChipsPerSymbol);
    for (std::size_t s = 0; s < syms_here; ++s) {
      spreader.spread_symbol(symbols[seg.first_symbol + s], chips);
    }

    const phy::QpskModulator mod(seg.sps);
    const dsp::cvec seg_wave = mod.modulate(chips);

    // Unit-energy pulses give a mean power of 1/sps; rescale so every hop
    // transmits at the same power (the power budget of §2 is constant —
    // hopping trades bandwidth, not power).
    const auto gain = static_cast<float>(std::sqrt(static_cast<double>(seg.sps)));
    for (std::size_t i = 0; i < seg_wave.size(); ++i) {
      wave[seg.start_sample + i] = gain * seg_wave[i];
    }
  }
  return wave;
}

Transmission BhssTransmitter::transmit(std::span<const std::uint8_t> payload,
                                       std::uint64_t frame_counter,
                                       const HopOverride& ov) const {
  SharedRandom rng = SharedRandom::for_frame(config_.seed, frame_counter);
  const std::uint32_t scrambler_seed = rng.derive_scrambler_seed();

  const HopPattern& pattern = ov.pattern != nullptr ? *ov.pattern : config_.pattern;
  const std::size_t symbols_per_hop =
      ov.symbols_per_hop != 0 ? ov.symbols_per_hop : config_.symbols_per_hop;
  BHSS_REQUIRE(pattern.bands().size() == config_.pattern.bands().size(),
               "BhssTransmitter: hop override must cover the configured bandwidth set");

  Transmission tx;
  tx.frame_counter = frame_counter;
  tx.symbols = phy::build_frame_symbols(payload);
  tx.schedule = config_.hopping
                    ? HopSchedule::make(tx.symbols.size(), symbols_per_hop, pattern, rng)
                    : HopSchedule::fixed(tx.symbols.size(), config_.pattern.bands(),
                                         config_.fixed_bw_index);
  tx.samples = modulate_symbols(tx.symbols, tx.symbols.size(), tx.schedule, scrambler_seed);
  return tx;
}

}  // namespace bhss::core
