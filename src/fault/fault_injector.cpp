#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "channel/impairments.hpp"
#include "core/shared_random.hpp"

namespace bhss::fault {
namespace {

/// Stream id for the burst-noise sample RNG (distinct from the planning
/// stream so adding draws to one can never shift the other).
constexpr std::uint64_t kBurstNoiseStream = 0xFB;

/// One circularly-symmetric complex Gaussian sample of total power
/// `power`, drawn via Box-Muller from the shared random source (keeps all
/// randomness reproducible from a single seed, and identical across
/// platforms unlike std::normal_distribution).
dsp::cf gaussian_sample(core::SharedRandom& rng, double power) {
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  const double r = std::sqrt(-2.0 * std::log(u1)) * std::sqrt(power / 2.0);
  const double theta = 2.0 * std::numbers::pi * u2;
  return {static_cast<float>(r * std::cos(theta)), static_cast<float>(r * std::sin(theta))};
}

}  // namespace

FaultLog FaultInjector::apply(const FaultPlan& plan, dsp::cvec& capture,
                              const obs::LinkObs& o) const {
  BHSS_TRACE_SCOPE(o.trace, obs::TraceScopeId::fault_inject);
  FaultLog log;
  if (plan.events.empty()) return log;

  core::SharedRandom noise_rng(
      core::SharedRandom::split_seed(config_.seed, kBurstNoiseStream, plan.packet_index));

  std::uint32_t ordinal = 0;
  for (const FaultEvent& ev : plan.events) {
    if (capture.empty()) break;
    const std::size_t offset = std::min(ev.offset, capture.size() - 1);
    if (obs::tracing(o.trace)) {
      obs::TraceEvent te;
      te.type = obs::TraceEventType::fault_applied;
      te.flag = static_cast<std::uint8_t>(ev.kind);
      te.hop = ordinal;
      te.packet = plan.packet_index;
      te.v0 = static_cast<double>(offset);
      te.v1 = static_cast<double>(ev.length);
      te.v2 = ev.magnitude;
      o.trace->push(te);
    }
    if (obs::counting(o.metrics)) {
      o.metrics->add(obs::link_ids().fault_events);
    }
    ++ordinal;
    switch (ev.kind) {
      case FaultKind::jammer_burst: {
        const std::size_t end = std::min(offset + ev.length, capture.size());
        const double power = std::pow(10.0, ev.magnitude / 10.0);
        for (std::size_t i = offset; i < end; ++i) {
          capture[i] += gaussian_sample(noise_rng, power);
        }
        ++log.bursts;
        break;
      }
      case FaultKind::gain_step: {
        const std::size_t end = std::min(offset + ev.length, capture.size());
        const auto gain = static_cast<float>(ev.magnitude);
        for (std::size_t i = offset; i < end; ++i) capture[i] *= gain;
        ++log.fades;
        break;
      }
      case FaultKind::sample_drop: {
        const std::size_t end = std::min(offset + ev.length, capture.size());
        capture.erase(capture.begin() + static_cast<std::ptrdiff_t>(offset),
                      capture.begin() + static_cast<std::ptrdiff_t>(end));
        ++log.drops;
        break;
      }
      case FaultKind::sample_dup: {
        const std::size_t end = std::min(offset + ev.length, capture.size());
        const dsp::cvec repeat(capture.begin() + static_cast<std::ptrdiff_t>(offset),
                               capture.begin() + static_cast<std::ptrdiff_t>(end));
        capture.insert(capture.begin() + static_cast<std::ptrdiff_t>(end), repeat.begin(),
                       repeat.end());
        ++log.dups;
        break;
      }
      case FaultKind::clock_jump: {
        // Integer part: the receiver's sample counter slips, so everything
        // from `offset` on arrives `length` samples late (zeros fill the
        // gap). Fractional part: a sampling-phase step over the whole
        // remainder, via the channel's fractional-delay interpolator.
        capture.insert(capture.begin() + static_cast<std::ptrdiff_t>(offset), ev.length,
                       dsp::cf{0.0F, 0.0F});
        if (ev.magnitude > 0.0) {
          const dsp::cspan tail{capture.data() + offset, capture.size() - offset};
          const dsp::cvec delayed = channel::apply_fractional_delay(tail, ev.magnitude);
          capture.resize(offset);
          capture.insert(capture.end(), delayed.begin(), delayed.end());
        }
        ++log.clock_jumps;
        break;
      }
      case FaultKind::cfo_step: {
        const auto step = static_cast<float>(ev.magnitude);
        dsp::cf osc{1.0F, 0.0F};
        const dsp::cf rot{std::cos(step), std::sin(step)};
        for (std::size_t i = offset; i < capture.size(); ++i) {
          capture[i] *= osc;
          osc *= rot;
          if ((i - offset) % 4096 == 4095) {
            const float mag = std::abs(osc);
            if (mag > 0.0F) osc /= mag;
          }
        }
        ++log.cfo_steps;
        break;
      }
      case FaultKind::corrupt: {
        const std::size_t end = std::min(offset + ev.length, capture.size());
        const float word = ev.magnitude < 0.5
                               ? std::numeric_limits<float>::quiet_NaN()
                               : std::numeric_limits<float>::infinity();
        for (std::size_t i = offset; i < end; ++i) capture[i] = {word, word};
        ++log.corruptions;
        break;
      }
    }
  }
  return log;
}

}  // namespace bhss::fault
