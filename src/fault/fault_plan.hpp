#pragma once

/// @file fault_plan.hpp
/// Deterministic, seed-driven fault planning for link experiments.
///
/// The paper's evaluation feeds the receiver well-formed, steady-state
/// captures; real front-ends and real adversaries do not. A reactive
/// jammer can concentrate energy on the acquisition window (the
/// convolution attack on FH links), clocks glitch, AGC steps, samples are
/// dropped or duplicated at USB/DMA boundaries, and a saturated ADC can
/// emit garbage. `FaultPlan` describes such transients for one packet
/// capture; the plan for packet `k` is a pure function of
/// (FaultConfig::seed, k) via `core::SharedRandom::split_seed`, so a
/// sharded Monte-Carlo run injects exactly the same faults as a
/// sequential one — PR 2's bit-identical determinism contract extends to
/// faulted runs unchanged.

#include <cstdint>
#include <vector>

namespace bhss::fault {

/// One class of transient. Declaration order is the planning order: a
/// packet's events are drawn kind by kind in this sequence, which pins the
/// random-stream layout (tests hold golden plans per seed).
enum class FaultKind : std::uint8_t {
  jammer_burst,  ///< additive wide-band noise burst (power step over the floor)
  gain_step,     ///< multiplicative deep fade / AGC step over a span
  sample_drop,   ///< contiguous samples removed (DMA underrun)
  sample_dup,    ///< contiguous samples repeated (DMA overrun)
  clock_jump,    ///< receiver clock glitch: integer + fractional delay step
  cfo_step,      ///< oscillator retune: extra CFO ramp from a sample onward
  corrupt,       ///< NaN/Inf samples (saturated or faulted ADC words)
};

/// Human-readable kind name for logs and bench output.
[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// One planned transient inside a packet capture.
struct FaultEvent {
  FaultKind kind = FaultKind::jammer_burst;
  std::size_t offset = 0;   ///< sample offset into the original capture
  std::size_t length = 0;   ///< span / count / delay, kind-specific
  double magnitude = 0.0;   ///< kind-specific (dB, linear gain, rad/sample,
                            ///< fractional delay, or NaN-vs-Inf selector)
};

/// Per-kind fault probabilities and intensities. Each probability is the
/// chance that one packet capture receives one event of that kind; all
/// default to 0 so a default-constructed config is fault-free and existing
/// experiments are untouched.
struct FaultConfig {
  std::uint64_t seed = 0xFA017ULL;  ///< fault-private randomness root

  double p_burst = 0.0;             ///< jammer power burst
  double burst_power_db = 30.0;     ///< burst power over the unit noise floor
  double burst_len_frac = 0.08;     ///< burst span as a fraction of the capture

  double p_fade = 0.0;              ///< deep fade / gain step
  double fade_depth_db = 25.0;      ///< attenuation inside the fade
  double fade_len_frac = 0.2;       ///< fade span as a fraction of the capture

  double p_drop = 0.0;              ///< sample drop
  std::size_t drop_max = 48;        ///< max dropped samples per event

  double p_dup = 0.0;               ///< sample duplication
  std::size_t dup_max = 48;         ///< max duplicated samples per event

  double p_clock_jump = 0.0;        ///< clock glitch (integer + fractional)
  std::size_t jump_max = 256;       ///< max integer delay step [samples]
  std::size_t jump_offset_max = 512; ///< jump lands in the first
                                     ///< min(capture/4, this) samples —
                                     ///< the acquisition region

  double p_cfo_step = 0.0;          ///< oscillator step
  double cfo_step_max = 4e-4;       ///< |extra CFO| bound [rad/sample]

  double p_corrupt = 0.0;           ///< NaN/Inf corruption
  std::size_t corrupt_max = 12;     ///< max corrupted samples per event

  /// True when any fault kind has a non-zero probability.
  [[nodiscard]] bool any() const noexcept;

  /// Campaign-sweep helper: set every per-kind probability to `p`.
  void set_uniform_rate(double p) noexcept;
};

/// The fault sequence of one packet capture, in application order.
struct FaultPlan {
  std::uint64_t packet_index = 0;
  std::vector<FaultEvent> events;
};

/// Draw the plan for packet `packet_index` of a capture of `capture_len`
/// samples. Pure function of (config, packet_index, capture_len): the
/// per-packet random stream is `split_seed(config.seed, kind-stream,
/// packet_index)`, so shard boundaries and thread counts cannot change it.
[[nodiscard]] FaultPlan plan_faults(const FaultConfig& config, std::uint64_t packet_index,
                                    std::size_t capture_len);

}  // namespace bhss::fault
