#pragma once

/// @file fault_injector.hpp
/// Applies a `FaultPlan` to one packet capture. The injector sits between
/// the channel (`channel::transmit`) and the receiver in
/// `core::run_link_shard`: the channel still produces a well-formed
/// capture, the injector then degrades it the way a real front-end or a
/// transient-seeking adversary would. Application is deterministic — the
/// burst noise stream is split off (FaultConfig::seed, packet_index) just
/// like the plan itself — so faulted runs keep the bit-identical
/// determinism contract of the parallel Monte-Carlo engine.

#include "dsp/types.hpp"
#include "fault/fault_plan.hpp"
#include "obs/link_obs.hpp"

namespace bhss::fault {

/// What `FaultInjector::apply` actually did to one capture.
struct FaultLog {
  std::size_t bursts = 0;
  std::size_t fades = 0;
  std::size_t drops = 0;
  std::size_t dups = 0;
  std::size_t clock_jumps = 0;
  std::size_t cfo_steps = 0;
  std::size_t corruptions = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return bursts + fades + drops + dups + clock_jumps + cfo_steps + corruptions;
  }
};

/// Stateless fault applicator; one instance serves a whole shard.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// True when the configured fault matrix can ever produce an event.
  [[nodiscard]] bool enabled() const noexcept { return config_.any(); }

  /// Draw the plan for one packet capture (see `plan_faults`).
  [[nodiscard]] FaultPlan plan_for_packet(std::uint64_t packet_index,
                                          std::size_t capture_len) const {
    return plan_faults(config_, packet_index, capture_len);
  }

  /// Apply `plan` to `capture` in event order. Length-changing events
  /// (drops, duplications, clock jumps) resize the buffer; offsets are
  /// clamped to the buffer's current size, so any plan is safe to apply
  /// to any capture. `obs` (optional) records one fault_applied trace
  /// event + a fault_events count per event and the fault_inject timing
  /// scope; the capture mutation is identical with or without it.
  FaultLog apply(const FaultPlan& plan, dsp::cvec& capture,
                 const obs::LinkObs& o = {}) const;

 private:
  FaultConfig config_;
};

}  // namespace bhss::fault
