#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "core/shared_random.hpp"

namespace bhss::fault {
namespace {

/// Stream id for the per-packet planning RNG, split off FaultConfig::seed.
/// Fixed forever: changing it silently re-rolls every recorded campaign.
constexpr std::uint64_t kPlanStream = 0xFA;

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::jammer_burst:
      return "jammer_burst";
    case FaultKind::gain_step:
      return "gain_step";
    case FaultKind::sample_drop:
      return "sample_drop";
    case FaultKind::sample_dup:
      return "sample_dup";
    case FaultKind::clock_jump:
      return "clock_jump";
    case FaultKind::cfo_step:
      return "cfo_step";
    case FaultKind::corrupt:
      return "corrupt";
  }
  return "unknown";
}

bool FaultConfig::any() const noexcept {
  return p_burst > 0.0 || p_fade > 0.0 || p_drop > 0.0 || p_dup > 0.0 ||
         p_clock_jump > 0.0 || p_cfo_step > 0.0 || p_corrupt > 0.0;
}

void FaultConfig::set_uniform_rate(double p) noexcept {
  p_burst = p;
  p_fade = p;
  p_drop = p;
  p_dup = p;
  p_clock_jump = p;
  p_cfo_step = p;
  p_corrupt = p;
}

FaultPlan plan_faults(const FaultConfig& config, std::uint64_t packet_index,
                      std::size_t capture_len) {
  FaultPlan plan;
  plan.packet_index = packet_index;
  if (!config.any() || capture_len == 0) return plan;

  core::SharedRandom rng(
      core::SharedRandom::split_seed(config.seed, kPlanStream, packet_index));
  const auto span_of = [capture_len](double frac) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(capture_len) * frac));
  };

  // One Bernoulli draw per kind, in FaultKind declaration order. Every
  // triggered kind consumes a fixed number of extra draws, so the plan is
  // a pure function of (config, packet_index, capture_len).
  if (rng.uniform() < config.p_burst) {
    plan.events.push_back({FaultKind::jammer_burst, rng.uniform_index(capture_len),
                           span_of(config.burst_len_frac), config.burst_power_db});
  }
  if (rng.uniform() < config.p_fade) {
    const double gain = std::pow(10.0, -config.fade_depth_db / 20.0);
    plan.events.push_back({FaultKind::gain_step, rng.uniform_index(capture_len),
                           span_of(config.fade_len_frac), gain});
  }
  if (rng.uniform() < config.p_drop) {
    plan.events.push_back({FaultKind::sample_drop, rng.uniform_index(capture_len),
                           1 + rng.uniform_index(std::max<std::size_t>(config.drop_max, 1)),
                           0.0});
  }
  if (rng.uniform() < config.p_dup) {
    plan.events.push_back({FaultKind::sample_dup, rng.uniform_index(capture_len),
                           1 + rng.uniform_index(std::max<std::size_t>(config.dup_max, 1)),
                           0.0});
  }
  if (rng.uniform() < config.p_clock_jump) {
    // Clock glitches are planned at the head of the capture — the re-lock
    // transient of a front-end (and the adversary that targets
    // re-acquisition) hits while the link is still acquiring, which is
    // exactly the window the receiver's bounded re-acquisition must
    // cover. The offset cap keeps the glitch before/inside the preamble
    // even for long captures, where a capture-fraction draw would land in
    // the payload and degrade symbols instead of timing.
    const std::size_t jump_window =
        std::min<std::size_t>(capture_len / 4, config.jump_offset_max);
    plan.events.push_back({FaultKind::clock_jump,
                           rng.uniform_index(std::max<std::size_t>(jump_window, 1)),
                           1 + rng.uniform_index(std::max<std::size_t>(config.jump_max, 1)),
                           rng.uniform()});
  }
  if (rng.uniform() < config.p_cfo_step) {
    plan.events.push_back({FaultKind::cfo_step, rng.uniform_index(capture_len), 0,
                           (2.0 * rng.uniform() - 1.0) * config.cfo_step_max});
  }
  if (rng.uniform() < config.p_corrupt) {
    // magnitude selects the corruption word: 0 -> NaN, 1 -> Inf.
    plan.events.push_back({FaultKind::corrupt, rng.uniform_index(capture_len),
                           1 + rng.uniform_index(std::max<std::size_t>(config.corrupt_max, 1)),
                           rng.uniform() < 0.5 ? 0.0 : 1.0});
  }
  return plan;
}

}  // namespace bhss::fault
