#pragma once

/// @file autocorr.hpp
/// Autocorrelation utilities. The theoretical SNR expressions of the paper
/// (eqs. (6)-(8) and the appendix) are written in terms of the jammer
/// autocorrelation rho_j(k); these helpers provide both empirical and
/// closed-form versions.

#include "dsp/types.hpp"

namespace bhss::dsp {

/// Biased empirical autocorrelation of a complex sequence:
///   rho(k) = (1/N) sum_n x(n) conj(x(n-k)),  k = 0..max_lag.
/// Returns max_lag+1 real values (the real part; for the wide-sense
/// stationary noise processes used here the imaginary part vanishes).
[[nodiscard]] fvec autocorrelation(cspan x, std::size_t max_lag);

/// Closed-form autocorrelation of white noise of total power `power`,
/// band-limited to a flat band of normalised width `bandwidth` (fraction
/// of the sampling rate, in (0, 1]):
///   rho(k) = power * sinc(bandwidth * k).
[[nodiscard]] fvec bandlimited_noise_autocorr(double power, double bandwidth,
                                              std::size_t max_lag);

}  // namespace bhss::dsp
