#include "dsp/real_fft.hpp"

namespace bhss::dsp {

RealFft::RealFft(std::size_t n) : n_(n), half_(n / 2), full_(n), work_(n / 2) {
  BHSS_REQUIRE(n >= 4 && (n & (n - 1)) == 0, "RealFft: size must be a power of two >= 4");
}

void RealFft::forward(fspan x, cspan_mut out) {
  BHSS_REQUIRE(x.size() == n_, "RealFft::forward: input length must equal the transform size");
  BHSS_REQUIRE(out.size() == n_ / 2 + 1,
               "RealFft::forward: output must hold size()/2 + 1 bins");
  const std::size_t h = n_ / 2;

  // Pack: z[m] = x[2m] + j x[2m+1], one complex FFT of half the size.
  for (std::size_t m = 0; m < h; ++m) work_[m] = cf{x[2 * m], x[2 * m + 1]};
  half_.forward(cspan_mut{work_});

  // Recombine. With Z = FFT(z), E[k] = FFT(even), O[k] = FFT(odd):
  //   E[k] =      (Z[k] + conj(Z[h-k])) / 2
  //   O[k] = -j * (Z[k] - conj(Z[h-k])) / 2
  //   X[k] = E[k] + w_N^k * O[k]
  // where w_N^k is exactly the size-N plan's twiddle table.
  const cspan tw = full_.twiddles();
  const cf z0 = work_[0];
  out[0] = cf{z0.real() + z0.imag(), 0.0F};  // E[0] + O[0]
  out[h] = cf{z0.real() - z0.imag(), 0.0F};  // E[0] - O[0]  (Nyquist)
  for (std::size_t k = 1; k < h; ++k) {
    const cf zk = work_[k];
    const cf zc = std::conj(work_[h - k]);
    const cf e{0.5F * (zk.real() + zc.real()), 0.5F * (zk.imag() + zc.imag())};
    // -j * (zk - zc) / 2: real = (imag diff)/2, imag = -(real diff)/2.
    const cf o{0.5F * (zk.imag() - zc.imag()), -0.5F * (zk.real() - zc.real())};
    out[k] = e + tw[k] * o;
  }
}

}  // namespace bhss::dsp
