#pragma once

/// @file real_fft.hpp
/// Real-input FFT specialization. An N-point transform of real samples is
/// computed as one N/2-point complex FFT (packing even samples into the
/// real lane and odd samples into the imaginary lane) plus an O(N)
/// Hermitian recombination — roughly halving the cost of PSD estimation
/// for real-valued inputs. Both the N/2 complex plan and the
/// recombination twiddles (the size-N plan's twiddle table) come from the
/// process-wide FFT plan cache, so constructing a `RealFft` for a known
/// size allocates nothing beyond its scratch buffer.

#include "core/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/types.hpp"

namespace bhss::dsp {

/// Forward FFT of N real samples, exploiting Hermitian symmetry.
/// Produces the non-redundant half-spectrum X[0..N/2]; the remaining bins
/// follow from X[N-k] == conj(X[k]).
class RealFft {
 public:
  /// @param n transform size; must be a power of two >= 4.
  explicit RealFft(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Transform `x` (size() real samples) into the half-spectrum `out`
  /// (size()/2 + 1 bins). Non-const: uses the internal packing scratch.
  BHSS_HOT void forward(fspan x, cspan_mut out);

 private:
  std::size_t n_;
  Fft half_;  ///< N/2-point complex FFT of the packed even/odd samples
  Fft full_;  ///< size-N plan, held for its twiddle table (recombination)
  cvec work_;
};

}  // namespace bhss::dsp
