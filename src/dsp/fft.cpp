#include "dsp/fft.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "core/contracts.hpp"
#include "dsp/simd/simd.hpp"

namespace bhss::dsp {

/// Immutable per-size tables. Built once per size, shared by every Fft of
/// that size (across threads: the tables are read-only after publication).
struct FftPlan {
  std::vector<std::size_t> bitrev;
  cvec twiddles;  ///< exp(-j 2 pi k / n), k in [0, n/2)
  /// Per-stage contiguous twiddle runs: stage_twiddles[s][k] ==
  /// twiddles[k * step] for stage len = 2^(s+1), step = n/len. Same values
  /// (bit-for-bit copies), laid out so the butterfly kernel streams them
  /// with unit stride instead of the strided twiddles[k*step] walk.
  std::vector<cvec> stage_twiddles;
};

namespace {

std::shared_ptr<const FftPlan> build_plan(std::size_t n) {
  auto plan = std::make_shared<FftPlan>();

  // Bit-reversal permutation table.
  plan->bitrev.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    plan->bitrev[i] = r;
  }

  // Twiddle factors for the forward transform.
  plan->twiddles.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    plan->twiddles[k] = cf(static_cast<float>(std::cos(angle)), static_cast<float>(std::sin(angle)));
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n / len;
    cvec stage(half);
    for (std::size_t k = 0; k < half; ++k) stage[k] = plan->twiddles[k * step];
    plan->stage_twiddles.push_back(std::move(stage));
  }
  return plan;
}

/// Process-wide plan cache. Guarded by a mutex: lookups happen once per
/// Fft construction (per hop at worst), never per sample.
std::shared_ptr<const FftPlan> plan_for(std::size_t n) {
  static std::mutex mutex;
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  const std::scoped_lock lock(mutex);
  auto& slot = cache[n];
  if (!slot) slot = build_plan(n);
  return slot;
}

}  // namespace

bool Fft::valid_size(std::size_t n) noexcept {
  return n >= 2 && (n & (n - 1)) == 0;
}

Fft::Fft(std::size_t n) : n_(n) {
  BHSS_REQUIRE(valid_size(n), "Fft: size must be a power of two >= 2");
  plan_ = plan_for(n);
}

void Fft::transform(cspan_mut x, bool inverse) const {
  BHSS_REQUIRE(x.size() == n_, "Fft: buffer length must equal the transform size");
  const std::vector<std::size_t>& bitrev = plan_->bitrev;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1, ++stage) {
    const std::size_t half = len / 2;
    const cf* tw = plan_->stage_twiddles[stage].data();
    for (std::size_t start = 0; start < n_; start += len) {
      simd::fft_butterflies(x.data() + start, x.data() + start + half, tw, half, inverse);
    }
  }
  if (inverse) {
    const float inv_n = 1.0F / static_cast<float>(n_);
    simd::scale_inplace(x.data(), inv_n, n_);
  }
}

cspan Fft::twiddles() const noexcept { return cspan{plan_->twiddles}; }

void Fft::forward(cspan_mut x) const { transform(x, false); }

void Fft::inverse(cspan_mut x) const { transform(x, true); }

cvec Fft::forward_copy(cspan x) const {
  BHSS_REQUIRE(x.size() <= n_, "Fft::forward_copy: input longer than the transform size");
  cvec out(x.begin(), x.end());
  out.resize(n_, cf{0.0F, 0.0F});
  forward(cspan_mut{out});
  return out;
}

void Fft::forward_into(cspan x, cspan_mut out) const {
  BHSS_REQUIRE(x.size() <= n_, "Fft::forward_into: input longer than the transform size");
  BHSS_REQUIRE(out.size() == n_, "Fft::forward_into: output length must equal the transform size");
  std::size_t i = 0;
  for (; i < x.size(); ++i) out[i] = x[i];
  for (; i < n_; ++i) out[i] = cf{0.0F, 0.0F};
  forward(out);
}

fvec fft_shift(fspan x) {
  fvec out(x.size());
  const std::size_t half = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[(i + half) % x.size()];
  return out;
}

}  // namespace bhss::dsp
