#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "core/contracts.hpp"

namespace bhss::dsp {

bool Fft::valid_size(std::size_t n) noexcept {
  return n >= 2 && (n & (n - 1)) == 0;
}

Fft::Fft(std::size_t n) : n_(n) {
  BHSS_REQUIRE(valid_size(n), "Fft: size must be a power of two >= 2");

  // Bit-reversal permutation table.
  bitrev_.resize(n_);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n_) ++bits;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    bitrev_[i] = r;
  }

  // Twiddle factors for the forward transform.
  twiddles_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n_);
    twiddles_[k] = cf(static_cast<float>(std::cos(angle)), static_cast<float>(std::sin(angle)));
  }
}

void Fft::transform(cspan_mut x, bool inverse) const {
  BHSS_REQUIRE(x.size() == n_, "Fft: buffer length must equal the transform size");
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        cf w = twiddles_[k * step];
        if (inverse) w = std::conj(w);
        const cf u = x[start + k];
        const cf t = w * x[start + k + half];
        x[start + k] = u + t;
        x[start + k + half] = u - t;
      }
    }
  }
  if (inverse) {
    const float inv_n = 1.0F / static_cast<float>(n_);
    for (cf& v : x) v *= inv_n;
  }
}

void Fft::forward(cspan_mut x) const { transform(x, false); }

void Fft::inverse(cspan_mut x) const { transform(x, true); }

cvec Fft::forward_copy(cspan x) const {
  BHSS_REQUIRE(x.size() <= n_, "Fft::forward_copy: input longer than the transform size");
  cvec out(x.begin(), x.end());
  out.resize(n_, cf{0.0F, 0.0F});
  forward(cspan_mut{out});
  return out;
}

fvec fft_shift(fspan x) {
  fvec out(x.size());
  const std::size_t half = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[(i + half) % x.size()];
  return out;
}

}  // namespace bhss::dsp
