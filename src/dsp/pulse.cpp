#include "dsp/pulse.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::dsp {

fvec half_sine_pulse(std::size_t samples_per_chip) {
  BHSS_REQUIRE(samples_per_chip != 0, "half_sine_pulse: sps must be > 0");
  fvec g(samples_per_chip);
  double e = 0.0;
  for (std::size_t i = 0; i < samples_per_chip; ++i) {
    // Sample at the midpoint of each interval so even sps=1 or 2 carry energy.
    const double t = (static_cast<double>(i) + 0.5) / static_cast<double>(samples_per_chip);
    g[i] = static_cast<float>(std::sin(std::numbers::pi * t));
    e += static_cast<double>(g[i]) * static_cast<double>(g[i]);
  }
  const auto norm = static_cast<float>(1.0 / std::sqrt(e));
  for (float& v : g) v *= norm;
  return g;
}

fvec half_sine_matched(std::size_t samples_per_chip) {
  // Unit-energy pulse correlated with itself gives 1 at the optimum lag, so
  // the matched filter is simply the (symmetric) pulse again.
  return half_sine_pulse(samples_per_chip);
}

}  // namespace bhss::dsp
