// NEON implementations of the simd.hpp kernels (aarch64; NEON is baseline
// there, so this TU needs no extra target flags). Same bit-identity rules
// as avx2.cpp: no FMA (vfmaq would round once where the scalar reference
// rounds twice), interleaved complex layout (two cf per float32x4_t),
// reduction index sequential per output. Tails reuse the shared scalar
// bodies.

#if defined(BHSS_SIMD_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "dsp/simd/scalar_kernels.hpp"
#include "dsp/simd/simd.hpp"

namespace bhss::dsp::simd::neon {

namespace {

inline const float* fp(const cf* p) { return reinterpret_cast<const float*>(p); }
inline float* fp(cf* p) { return reinterpret_cast<float*>(p); }

/// Complex product of two (w, z) pairs: (wr*zr - wi*zi, wr*zi + wi*zr).
inline float32x4_t cmul2(float32x4_t w, float32x4_t z) {
  const float32x4_t wr = vtrn1q_f32(w, w);  // [wr0 wr0 wr1 wr1]
  const float32x4_t wi = vtrn2q_f32(w, w);  // [wi0 wi0 wi1 wi1]
  const float32x4_t zs = vrev64q_f32(z);    // [zi0 zr0 zi1 zr1]
  // addsub: even lanes subtract, odd lanes add.
  const float32x4_t prod_i = vmulq_f32(wi, zs);
  const float32x4_t neg_even = vsetq_lane_f32(-vgetq_lane_f32(prod_i, 0),
                                              vsetq_lane_f32(-vgetq_lane_f32(prod_i, 2),
                                                             prod_i, 2),
                                              0);
  return vaddq_f32(vmulq_f32(wr, z), neg_even);
}

/// Broadcast complex t = (tr, ti) times two packed cf.
inline float32x4_t cmul_bcast2(float32x4_t tr, float32x4_t ti_negeven, float32x4_t z) {
  // ti_negeven holds [-ti ti -ti ti] so a plain multiply-add yields the
  // addsub pattern: even lanes tr*zr - ti*zi, odd lanes tr*zi + ti*zr.
  const float32x4_t zs = vrev64q_f32(z);
  return vaddq_f32(vmulq_f32(tr, z), vmulq_f32(ti_negeven, zs));
}

inline float32x4_t bcast_negeven(float v) {
  const float32x4_t init = vdupq_n_f32(v);
  return vsetq_lane_f32(-v, vsetq_lane_f32(-v, init, 0), 2);
}

}  // namespace

void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                      std::size_t n_out) {
  std::size_t i = 0;
  for (; i + 4 <= n_out; i += 4) {
    float32x4_t acc0 = vdupq_n_f32(0.0F);
    float32x4_t acc1 = vdupq_n_f32(0.0F);
    const float* base = fp(x + i + n_taps - 1);
    for (std::size_t k = 0; k < n_taps; ++k) {
      const float32x4_t tr = vdupq_n_f32(taps[k].real());
      const float32x4_t tin = bcast_negeven(taps[k].imag());
      const float* p = base - 2 * k;
      acc0 = vaddq_f32(acc0, cmul_bcast2(tr, tin, vld1q_f32(p)));
      acc1 = vaddq_f32(acc1, cmul_bcast2(tr, tin, vld1q_f32(p + 4)));
    }
    vst1q_f32(fp(out + i), acc0);
    vst1q_f32(fp(out + i + 2), acc1);
  }
  detail::fir_filter_block_scalar(taps, n_taps, x + i, out + i, n_out - i);
}

void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                       std::size_t n_out, std::size_t stride) {
  detail::fir_decimate_real_scalar(taps, n_taps, x, out, n_out, stride);
}

void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out, std::size_t n_lags) {
  std::size_t l = 0;
  for (; l + 4 <= n_lags; l += 4) {
    float32x4_t acc0 = vdupq_n_f32(0.0F);
    float32x4_t acc1 = vdupq_n_f32(0.0F);
    const float* base = fp(x + l);
    for (std::size_t k = 0; k < n_ref; ++k) {
      const float32x4_t cr = vdupq_n_f32(ref[k].real());
      const float32x4_t cin = bcast_negeven(-ref[k].imag());
      const float* p = base + 2 * k;
      acc0 = vaddq_f32(acc0, cmul_bcast2(cr, cin, vld1q_f32(p)));
      acc1 = vaddq_f32(acc1, cmul_bcast2(cr, cin, vld1q_f32(p + 4)));
    }
    vst1q_f32(fp(out + l), acc0);
    vst1q_f32(fp(out + l + 2), acc1);
  }
  detail::correlate_lags_scalar(x + l, ref, n_ref, out + l, n_lags - l);
}

void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se, const float* so,
                          const float* cols, cf* out) {
  float32x4_t re[4] = {vdupq_n_f32(0.0F), vdupq_n_f32(0.0F), vdupq_n_f32(0.0F),
                       vdupq_n_f32(0.0F)};
  float32x4_t im[4] = {vdupq_n_f32(0.0F), vdupq_n_f32(0.0F), vdupq_n_f32(0.0F),
                       vdupq_n_f32(0.0F)};
  for (std::size_t m = 0; m < n_pairs; ++m) {
    const float32x4_t pr = vdupq_n_f32(pairs[m].real());
    const float32x4_t pi = vdupq_n_f32(pairs[m].imag());
    const float32x4_t vse = vdupq_n_f32(se[m]);
    const float32x4_t vnso = vdupq_n_f32(-so[m]);
    const float* even = cols + (2 * m) * 16;
    const float* odd = cols + (2 * m + 1) * 16;
    for (std::size_t q = 0; q < 4; ++q) {
      const float32x4_t rr = vmulq_f32(vse, vld1q_f32(even + 4 * q));
      const float32x4_t ri = vmulq_f32(vnso, vld1q_f32(odd + 4 * q));
      re[q] = vaddq_f32(re[q], vsubq_f32(vmulq_f32(pr, rr), vmulq_f32(pi, ri)));
      im[q] = vaddq_f32(im[q], vaddq_f32(vmulq_f32(pr, ri), vmulq_f32(pi, rr)));
    }
  }
  float res[16];
  float ims[16];
  for (std::size_t q = 0; q < 4; ++q) {
    vst1q_f32(res + 4 * q, re[q]);
    vst1q_f32(ims + 4 * q, im[q]);
  }
  for (std::size_t s = 0; s < 16; ++s) out[s] = cf{res[s], ims[s]};
}

void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  if (half < 2) {
    detail::fft_butterflies_scalar(a, b, tw, half, inverse);
    return;
  }
  // conj(w): flip the sign bit of the imaginary lanes.
  const uint32x4_t conj_mask =
      inverse ? vreinterpretq_u32_u64(vdupq_n_u64(0x8000000000000000ULL)) : vdupq_n_u32(0);
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const float32x4_t w = vreinterpretq_f32_u32(
        veorq_u32(vreinterpretq_u32_f32(vld1q_f32(fp(tw + k))), conj_mask));
    const float32x4_t vb = vld1q_f32(fp(b + k));
    const float32x4_t va = vld1q_f32(fp(a + k));
    const float32x4_t t = cmul2(w, vb);
    vst1q_f32(fp(a + k), vaddq_f32(va, t));
    vst1q_f32(fp(b + k), vsubq_f32(va, t));
  }
  detail::fft_butterflies_scalar(a + k, b + k, tw + k, half - k, inverse);
}

void cmul_inplace(cf* a, const cf* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f32(fp(a + i), cmul2(vld1q_f32(fp(a + i)), vld1q_f32(fp(b + i))));
  }
  detail::cmul_inplace_scalar(a + i, b + i, n - i);
}

void scale_inplace(cf* x, float s, std::size_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f32(fp(x + i), vmulq_f32(vld1q_f32(fp(x + i)), vs));
  }
  detail::scale_inplace_scalar(x + i, s, n - i);
}

void window_apply(const cf* x, const float* w, cf* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t wv = vld1q_f32(w + i);
    const float32x4_t wlo = vzip1q_f32(wv, wv);  // [w0 w0 w1 w1]
    const float32x4_t whi = vzip2q_f32(wv, wv);  // [w2 w2 w3 w3]
    vst1q_f32(fp(out + i), vmulq_f32(vld1q_f32(fp(x + i)), wlo));
    vst1q_f32(fp(out + i + 2), vmulq_f32(vld1q_f32(fp(x + i + 2)), whi));
  }
  detail::window_apply_scalar(x + i, w + i, out + i, n - i);
}

void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n) {
  float abv[4] = {a, b, a, b};
  const float32x4_t ab = vld1q_f32(abv);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float32x4_t pv = vld1q_f32(pulse + k);
    const float32x4_t plo = vzip1q_f32(pv, pv);
    const float32x4_t phi = vzip2q_f32(pv, pv);
    vst1q_f32(fp(out + k), vmulq_f32(ab, plo));
    vst1q_f32(fp(out + k + 2), vmulq_f32(ab, phi));
  }
  detail::scale_pulse_scalar(a, b, pulse + k, out + k, n - k);
}

}  // namespace bhss::dsp::simd::neon

#endif  // BHSS_SIMD_NEON && __aarch64__
