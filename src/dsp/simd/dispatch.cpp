// Runtime ISA dispatch for the simd.hpp kernels.
//
// x86-64: the AVX2 TU is compiled (with -mavx2) only when the toolchain
// supports it and BHSS_SIMD is ON; whether it is *entered* is decided once
// at startup from __builtin_cpu_supports("avx2"). aarch64: NEON is part of
// the baseline ISA, so the choice is purely compile-time. Everything else
// falls back to the scalar reference.

#include "dsp/simd/scalar_kernels.hpp"
#include "dsp/simd/simd.hpp"

namespace bhss::dsp::simd {

#if defined(BHSS_SIMD_AVX2)

namespace avx2 {
void fir_filter_block(const cf*, std::size_t, const cf*, cf*, std::size_t);
void fir_decimate_real(const float*, std::size_t, const cf*, cf*, std::size_t, std::size_t);
void correlate_lags(const cf*, const cf*, std::size_t, cf*, std::size_t);
void despread_correlate16(const cf*, std::size_t, const float*, const float*, const float*, cf*);
void fft_butterflies(cf*, cf*, const cf*, std::size_t, bool);
void cmul_inplace(cf*, const cf*, std::size_t);
void scale_inplace(cf*, float, std::size_t);
void window_apply(const cf*, const float*, cf*, std::size_t);
void scale_pulse(float, float, const float*, cf*, std::size_t);
}  // namespace avx2

namespace {
const bool kUseAvx2 = __builtin_cpu_supports("avx2") != 0;
}  // namespace

const char* active_isa() noexcept { return kUseAvx2 ? "avx2" : "scalar"; }
bool vectorized() noexcept { return kUseAvx2; }

void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                      std::size_t n_out) {
  if (kUseAvx2) {
    avx2::fir_filter_block(taps, n_taps, x, out, n_out);
  } else {
    detail::fir_filter_block_scalar(taps, n_taps, x, out, n_out);
  }
}

void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                       std::size_t n_out, std::size_t stride) {
  if (kUseAvx2) {
    avx2::fir_decimate_real(taps, n_taps, x, out, n_out, stride);
  } else {
    detail::fir_decimate_real_scalar(taps, n_taps, x, out, n_out, stride);
  }
}

void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out, std::size_t n_lags) {
  if (kUseAvx2) {
    avx2::correlate_lags(x, ref, n_ref, out, n_lags);
  } else {
    detail::correlate_lags_scalar(x, ref, n_ref, out, n_lags);
  }
}

void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se, const float* so,
                          const float* cols, cf* out) {
  if (kUseAvx2) {
    avx2::despread_correlate16(pairs, n_pairs, se, so, cols, out);
  } else {
    detail::despread_correlate16_scalar(pairs, n_pairs, se, so, cols, out);
  }
}

void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  if (kUseAvx2) {
    avx2::fft_butterflies(a, b, tw, half, inverse);
  } else {
    detail::fft_butterflies_scalar(a, b, tw, half, inverse);
  }
}

void cmul_inplace(cf* a, const cf* b, std::size_t n) {
  if (kUseAvx2) {
    avx2::cmul_inplace(a, b, n);
  } else {
    detail::cmul_inplace_scalar(a, b, n);
  }
}

void scale_inplace(cf* x, float s, std::size_t n) {
  if (kUseAvx2) {
    avx2::scale_inplace(x, s, n);
  } else {
    detail::scale_inplace_scalar(x, s, n);
  }
}

void window_apply(const cf* x, const float* w, cf* out, std::size_t n) {
  if (kUseAvx2) {
    avx2::window_apply(x, w, out, n);
  } else {
    detail::window_apply_scalar(x, w, out, n);
  }
}

void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n) {
  if (kUseAvx2) {
    avx2::scale_pulse(a, b, pulse, out, n);
  } else {
    detail::scale_pulse_scalar(a, b, pulse, out, n);
  }
}

#elif defined(BHSS_SIMD_NEON)

namespace neon {
void fir_filter_block(const cf*, std::size_t, const cf*, cf*, std::size_t);
void fir_decimate_real(const float*, std::size_t, const cf*, cf*, std::size_t, std::size_t);
void correlate_lags(const cf*, const cf*, std::size_t, cf*, std::size_t);
void despread_correlate16(const cf*, std::size_t, const float*, const float*, const float*, cf*);
void fft_butterflies(cf*, cf*, const cf*, std::size_t, bool);
void cmul_inplace(cf*, const cf*, std::size_t);
void scale_inplace(cf*, float, std::size_t);
void window_apply(const cf*, const float*, cf*, std::size_t);
void scale_pulse(float, float, const float*, cf*, std::size_t);
}  // namespace neon

const char* active_isa() noexcept { return "neon"; }
bool vectorized() noexcept { return true; }

void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                      std::size_t n_out) {
  neon::fir_filter_block(taps, n_taps, x, out, n_out);
}

void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                       std::size_t n_out, std::size_t stride) {
  neon::fir_decimate_real(taps, n_taps, x, out, n_out, stride);
}

void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out, std::size_t n_lags) {
  neon::correlate_lags(x, ref, n_ref, out, n_lags);
}

void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se, const float* so,
                          const float* cols, cf* out) {
  neon::despread_correlate16(pairs, n_pairs, se, so, cols, out);
}

void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  neon::fft_butterflies(a, b, tw, half, inverse);
}

void cmul_inplace(cf* a, const cf* b, std::size_t n) { neon::cmul_inplace(a, b, n); }

void scale_inplace(cf* x, float s, std::size_t n) { neon::scale_inplace(x, s, n); }

void window_apply(const cf* x, const float* w, cf* out, std::size_t n) {
  neon::window_apply(x, w, out, n);
}

void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n) {
  neon::scale_pulse(a, b, pulse, out, n);
}

#else  // scalar-only build

const char* active_isa() noexcept { return "scalar"; }
bool vectorized() noexcept { return false; }

void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                      std::size_t n_out) {
  detail::fir_filter_block_scalar(taps, n_taps, x, out, n_out);
}

void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                       std::size_t n_out, std::size_t stride) {
  detail::fir_decimate_real_scalar(taps, n_taps, x, out, n_out, stride);
}

void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out, std::size_t n_lags) {
  detail::correlate_lags_scalar(x, ref, n_ref, out, n_lags);
}

void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se, const float* so,
                          const float* cols, cf* out) {
  detail::despread_correlate16_scalar(pairs, n_pairs, se, so, cols, out);
}

void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  detail::fft_butterflies_scalar(a, b, tw, half, inverse);
}

void cmul_inplace(cf* a, const cf* b, std::size_t n) { detail::cmul_inplace_scalar(a, b, n); }

void scale_inplace(cf* x, float s, std::size_t n) { detail::scale_inplace_scalar(x, s, n); }

void window_apply(const cf* x, const float* w, cf* out, std::size_t n) {
  detail::window_apply_scalar(x, w, out, n);
}

void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n) {
  detail::scale_pulse_scalar(a, b, pulse, out, n);
}

#endif

}  // namespace bhss::dsp::simd
