#include "dsp/simd/scalar_kernels.hpp"
#include "dsp/simd/simd.hpp"

namespace bhss::dsp::simd::scalar {

void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                      std::size_t n_out) {
  detail::fir_filter_block_scalar(taps, n_taps, x, out, n_out);
}

void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                       std::size_t n_out, std::size_t stride) {
  detail::fir_decimate_real_scalar(taps, n_taps, x, out, n_out, stride);
}

void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out, std::size_t n_lags) {
  detail::correlate_lags_scalar(x, ref, n_ref, out, n_lags);
}

void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se, const float* so,
                          const float* cols, cf* out) {
  detail::despread_correlate16_scalar(pairs, n_pairs, se, so, cols, out);
}

void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  detail::fft_butterflies_scalar(a, b, tw, half, inverse);
}

void cmul_inplace(cf* a, const cf* b, std::size_t n) { detail::cmul_inplace_scalar(a, b, n); }

void scale_inplace(cf* x, float s, std::size_t n) { detail::scale_inplace_scalar(x, s, n); }

void window_apply(const cf* x, const float* w, cf* out, std::size_t n) {
  detail::window_apply_scalar(x, w, out, n);
}

void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n) {
  detail::scale_pulse_scalar(a, b, pulse, out, n);
}

}  // namespace bhss::dsp::simd::scalar
