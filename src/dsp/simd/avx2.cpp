// AVX2 implementations of the simd.hpp kernels. Compiled with -mavx2 (and
// nothing more: no -mfma — a fused multiply-add rounds once where the
// scalar reference rounds twice and would break bit-identity).
//
// Layout convention: complex samples stay interleaved in memory
// ([re0 im0 re1 im1 ...]); one __m256 holds four cf values. The complex
// product uses _mm256_addsub_ps, which computes exactly the scalar
// (ar*br - ai*bi, ar*bi + ai*br) form — the same products, the same
// single add/sub per component, hence the same bits as
// std::complex<float> multiplication of finite values.
//
// Every kernel vectorizes only across its documented independence axis
// (outputs / lags / symbols / butterflies) and keeps the reduction index
// sequential; tails and short inputs fall through to the shared scalar
// bodies in scalar_kernels.hpp.

#if defined(__AVX2__)

#include <immintrin.h>

#include "dsp/simd/scalar_kernels.hpp"
#include "dsp/simd/simd.hpp"

namespace bhss::dsp::simd::avx2 {

namespace {

inline const float* fp(const cf* p) { return reinterpret_cast<const float*>(p); }
inline float* fp(cf* p) { return reinterpret_cast<float*>(p); }

/// Complex product of four (w, z) pairs: (wr*zr - wi*zi, wr*zi + wi*zr).
inline __m256 cmul4(__m256 w, __m256 z) {
  const __m256 wr = _mm256_moveldup_ps(w);            // [wr0 wr0 wr1 wr1 ...]
  const __m256 wi = _mm256_movehdup_ps(w);            // [wi0 wi0 wi1 wi1 ...]
  const __m256 zs = _mm256_permute_ps(z, 0xB1);       // [zi0 zr0 zi1 zr1 ...]
  return _mm256_addsub_ps(_mm256_mul_ps(wr, z), _mm256_mul_ps(wi, zs));
}

/// Broadcast-times-vector complex product: t * z for scalar t = (tr, ti).
inline __m256 cmul_bcast4(__m256 tr, __m256 ti, __m256 z) {
  const __m256 zs = _mm256_permute_ps(z, 0xB1);
  return _mm256_addsub_ps(_mm256_mul_ps(tr, z), _mm256_mul_ps(ti, zs));
}

/// Duplicate four packed floats pairwise into a __m256: [w0 w0 w1 w1 w2 w2 w3 w3].
inline __m256 dup_pairs(__m128 w) {
  return _mm256_set_m128(_mm_unpackhi_ps(w, w), _mm_unpacklo_ps(w, w));
}

}  // namespace

void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                      std::size_t n_out) {
  std::size_t i = 0;
  for (; i + 8 <= n_out; i += 8) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    // Outputs i..i+7 share the tap walk; for tap k their inputs are the
    // contiguous run x[i + n_taps-1 - k ...], so both loads are unaligned
    // vector loads, no shuffles.
    const float* base = fp(x + i + n_taps - 1);
    for (std::size_t k = 0; k < n_taps; ++k) {
      const __m256 tr = _mm256_set1_ps(taps[k].real());
      const __m256 ti = _mm256_set1_ps(taps[k].imag());
      const float* p = base - 2 * k;
      acc0 = _mm256_add_ps(acc0, cmul_bcast4(tr, ti, _mm256_loadu_ps(p)));
      acc1 = _mm256_add_ps(acc1, cmul_bcast4(tr, ti, _mm256_loadu_ps(p + 8)));
    }
    _mm256_storeu_ps(fp(out + i), acc0);
    _mm256_storeu_ps(fp(out + i + 4), acc1);
  }
  detail::fir_filter_block_scalar(taps, n_taps, x + i, out + i, n_out - i);
}

void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                       std::size_t n_out, std::size_t stride) {
  std::size_t m = 0;
  const __m128i idx = _mm_set_epi32(static_cast<int>(3 * stride), static_cast<int>(2 * stride),
                                    static_cast<int>(stride), 0);
  for (; m + 4 <= n_out; m += 4) {
    __m256 acc = _mm256_setzero_ps();
    const long long* base =
        reinterpret_cast<const long long*>(x + m * stride + n_taps - 1);
    for (std::size_t k = 0; k < n_taps; ++k) {
      // One cf (64 bits) per output lane, stride cf apart: a 4-way i64 gather.
      const __m256i packed =
          _mm256_i32gather_epi64(base - static_cast<std::ptrdiff_t>(k), idx, 8);
      const __m256 vx = _mm256_castsi256_ps(packed);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(taps[k]), vx));
    }
    _mm256_storeu_ps(fp(out + m), acc);
  }
  detail::fir_decimate_real_scalar(taps, n_taps, x + m * stride, out + m, n_out - m, stride);
}

void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out, std::size_t n_lags) {
  std::size_t l = 0;
  for (; l + 8 <= n_lags; l += 8) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    const float* base = fp(x + l);
    for (std::size_t k = 0; k < n_ref; ++k) {
      // conj(ref[k]) broadcast: negating the float imag flips exactly the
      // sign bit, matching std::conj.
      const __m256 cr = _mm256_set1_ps(ref[k].real());
      const __m256 ci = _mm256_set1_ps(-ref[k].imag());
      const float* p = base + 2 * k;
      acc0 = _mm256_add_ps(acc0, cmul_bcast4(cr, ci, _mm256_loadu_ps(p)));
      acc1 = _mm256_add_ps(acc1, cmul_bcast4(cr, ci, _mm256_loadu_ps(p + 8)));
    }
    _mm256_storeu_ps(fp(out + l), acc0);
    _mm256_storeu_ps(fp(out + l + 4), acc1);
  }
  detail::correlate_lags_scalar(x + l, ref, n_ref, out + l, n_lags - l);
}

void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se, const float* so,
                          const float* cols, cf* out) {
  // Sixteen symbol lanes, split re/im (structure of arrays): 2+2 __m256
  // accumulators. The chip-pair index m is the sequential reduction axis.
  __m256 re0 = _mm256_setzero_ps();
  __m256 re1 = _mm256_setzero_ps();
  __m256 im0 = _mm256_setzero_ps();
  __m256 im1 = _mm256_setzero_ps();
  for (std::size_t m = 0; m < n_pairs; ++m) {
    const __m256 pr = _mm256_set1_ps(pairs[m].real());
    const __m256 pi = _mm256_set1_ps(pairs[m].imag());
    const __m256 vse = _mm256_set1_ps(se[m]);
    const __m256 vnso = _mm256_set1_ps(-so[m]);
    const float* even = cols + (2 * m) * 16;
    const float* odd = cols + (2 * m + 1) * 16;
    const __m256 rr0 = _mm256_mul_ps(vse, _mm256_loadu_ps(even));
    const __m256 rr1 = _mm256_mul_ps(vse, _mm256_loadu_ps(even + 8));
    const __m256 ri0 = _mm256_mul_ps(vnso, _mm256_loadu_ps(odd));
    const __m256 ri1 = _mm256_mul_ps(vnso, _mm256_loadu_ps(odd + 8));
    // p * ref: re += pr*rr - pi*ri; im += pr*ri + pi*rr (scalar order).
    re0 = _mm256_add_ps(re0, _mm256_sub_ps(_mm256_mul_ps(pr, rr0), _mm256_mul_ps(pi, ri0)));
    re1 = _mm256_add_ps(re1, _mm256_sub_ps(_mm256_mul_ps(pr, rr1), _mm256_mul_ps(pi, ri1)));
    im0 = _mm256_add_ps(im0, _mm256_add_ps(_mm256_mul_ps(pr, ri0), _mm256_mul_ps(pi, rr0)));
    im1 = _mm256_add_ps(im1, _mm256_add_ps(_mm256_mul_ps(pr, ri1), _mm256_mul_ps(pi, rr1)));
  }
  alignas(32) float re[16];
  alignas(32) float im[16];
  _mm256_store_ps(re, re0);
  _mm256_store_ps(re + 8, re1);
  _mm256_store_ps(im, im0);
  _mm256_store_ps(im + 8, im1);
  for (std::size_t s = 0; s < 16; ++s) out[s] = cf{re[s], im[s]};
}

void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  if (half < 4) {
    detail::fft_butterflies_scalar(a, b, tw, half, inverse);
    return;
  }
  // conj(w) == flip the sign bit of the imaginary component.
  const __m256 conj_mask = inverse ? _mm256_castsi256_ps(_mm256_set_epi32(
                                         static_cast<int>(0x80000000U), 0,
                                         static_cast<int>(0x80000000U), 0,
                                         static_cast<int>(0x80000000U), 0,
                                         static_cast<int>(0x80000000U), 0))
                                   : _mm256_setzero_ps();
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256 w = _mm256_xor_ps(_mm256_loadu_ps(fp(tw + k)), conj_mask);
    const __m256 vb = _mm256_loadu_ps(fp(b + k));
    const __m256 va = _mm256_loadu_ps(fp(a + k));
    const __m256 t = cmul4(w, vb);
    _mm256_storeu_ps(fp(a + k), _mm256_add_ps(va, t));
    _mm256_storeu_ps(fp(b + k), _mm256_sub_ps(va, t));
  }
  detail::fft_butterflies_scalar(a + k, b + k, tw + k, half - k, inverse);
}

void cmul_inplace(cf* a, const cf* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 va = _mm256_loadu_ps(fp(a + i));
    const __m256 vb = _mm256_loadu_ps(fp(b + i));
    _mm256_storeu_ps(fp(a + i), cmul4(va, vb));
  }
  detail::cmul_inplace_scalar(a + i, b + i, n - i);
}

void scale_inplace(cf* x, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_ps(fp(x + i), _mm256_mul_ps(_mm256_loadu_ps(fp(x + i)), vs));
  }
  detail::scale_inplace_scalar(x + i, s, n - i);
}

void window_apply(const cf* x, const float* w, cf* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 wd = dup_pairs(_mm_loadu_ps(w + i));
    _mm256_storeu_ps(fp(out + i), _mm256_mul_ps(_mm256_loadu_ps(fp(x + i)), wd));
  }
  detail::window_apply_scalar(x + i, w + i, out + i, n - i);
}

void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n) {
  // out[k] = (a*p, b*p): broadcast (a, b) into alternating lanes and
  // multiply by the pairwise-duplicated pulse.
  const __m256 ab = _mm256_setr_ps(a, b, a, b, a, b, a, b);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256 pd = dup_pairs(_mm_loadu_ps(pulse + k));
    _mm256_storeu_ps(fp(out + k), _mm256_mul_ps(ab, pd));
  }
  detail::scale_pulse_scalar(a, b, pulse + k, out + k, n - k);
}

}  // namespace bhss::dsp::simd::avx2

#endif  // __AVX2__
