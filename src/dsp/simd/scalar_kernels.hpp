#pragma once

/// @file scalar_kernels.hpp
/// Internal: the scalar kernel bodies, shared by the scalar reference TU
/// and by the vector TUs (which reuse them for tails and short inputs).
/// Each body is the bit-exact contract the vector implementations must
/// match — see simd.hpp for the accumulation-order rules.

#include <complex>
#include <cstddef>

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::dsp::simd::detail {

inline void fir_filter_block_scalar(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                                    std::size_t n_out) {
  BHSS_REQUIRE(taps != nullptr && x != nullptr && out != nullptr,
               "fir_filter_block: null buffer");
  for (std::size_t i = 0; i < n_out; ++i) {
    const cf* base = x + i + n_taps - 1;
    cf acc{0.0F, 0.0F};
    for (std::size_t k = 0; k < n_taps; ++k) {
      acc += taps[k] * *(base - static_cast<std::ptrdiff_t>(k));
    }
    out[i] = acc;
  }
}

inline void fir_decimate_real_scalar(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                                     std::size_t n_out, std::size_t stride) {
  BHSS_REQUIRE(taps != nullptr && x != nullptr && out != nullptr,
               "fir_decimate_real: null buffer");
  for (std::size_t m = 0; m < n_out; ++m) {
    const cf* base = x + m * stride + n_taps - 1;
    cf acc{0.0F, 0.0F};
    for (std::size_t k = 0; k < n_taps; ++k) {
      const cf v = *(base - static_cast<std::ptrdiff_t>(k));
      acc += cf{taps[k] * v.real(), taps[k] * v.imag()};
    }
    out[m] = acc;
  }
}

inline void correlate_lags_scalar(const cf* x, const cf* ref, std::size_t n_ref, cf* out,
                                  std::size_t n_lags) {
  BHSS_REQUIRE(x != nullptr && ref != nullptr && out != nullptr, "correlate_lags: null buffer");
  for (std::size_t l = 0; l < n_lags; ++l) {
    cf acc{0.0F, 0.0F};
    for (std::size_t k = 0; k < n_ref; ++k) acc += x[l + k] * std::conj(ref[k]);
    out[l] = acc;
  }
}

inline void despread_correlate16_scalar(const cf* pairs, std::size_t n_pairs, const float* se,
                                        const float* so, const float* cols, cf* out) {
  BHSS_REQUIRE(pairs != nullptr && se != nullptr && so != nullptr && cols != nullptr &&
                   out != nullptr,
               "despread_correlate16: null buffer");
  constexpr std::size_t kSymbols = 16;
  for (std::size_t s = 0; s < kSymbols; ++s) out[s] = cf{0.0F, 0.0F};
  for (std::size_t m = 0; m < n_pairs; ++m) {
    const cf p = pairs[m];
    const float sem = se[m];
    const float nso = -so[m];
    const float* even = cols + (2 * m) * kSymbols;
    const float* odd = cols + (2 * m + 1) * kSymbols;
    for (std::size_t s = 0; s < kSymbols; ++s) {
      const cf ref{sem * even[s], nso * odd[s]};
      out[s] += p * ref;
    }
  }
}

inline void fft_butterflies_scalar(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse) {
  BHSS_REQUIRE(a != nullptr && b != nullptr && tw != nullptr, "fft_butterflies: null buffer");
  for (std::size_t k = 0; k < half; ++k) {
    cf w = tw[k];
    if (inverse) w = std::conj(w);
    const cf u = a[k];
    const cf t = w * b[k];
    a[k] = u + t;
    b[k] = u - t;
  }
}

inline void cmul_inplace_scalar(cf* a, const cf* b, std::size_t n) {
  BHSS_REQUIRE(a != nullptr && b != nullptr, "cmul_inplace: null buffer");
  for (std::size_t i = 0; i < n; ++i) a[i] *= b[i];
}

inline void scale_inplace_scalar(cf* x, float s, std::size_t n) {
  BHSS_REQUIRE(x != nullptr, "scale_inplace: null buffer");
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

inline void window_apply_scalar(const cf* x, const float* w, cf* out, std::size_t n) {
  BHSS_REQUIRE(x != nullptr && w != nullptr && out != nullptr, "window_apply: null buffer");
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * w[i];
}

inline void scale_pulse_scalar(float a, float b, const float* pulse, cf* out, std::size_t n) {
  BHSS_REQUIRE(pulse != nullptr && out != nullptr, "scale_pulse: null buffer");
  for (std::size_t k = 0; k < n; ++k) out[k] = cf{a * pulse[k], b * pulse[k]};
}

}  // namespace bhss::dsp::simd::detail
