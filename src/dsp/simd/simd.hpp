#pragma once

/// @file simd.hpp
/// Explicitly vectorized DSP kernels with a scalar reference fallback.
///
/// Every kernel here is **bit-identical** to its scalar reference — not
/// "numerically close", the same IEEE-754 bits. That property is what
/// lets the vector layer slide under the receiver chain without touching
/// the golden decision traces, the shard-merge byte-identity contract
/// (`merge_point_results`), or the 1-ulp seed-equivalence pins: the
/// vectorization axis of each kernel is chosen so the per-output
/// accumulation order is exactly the scalar order.
///
///  * `fir_filter_block`      — vectorized across *outputs*; the tap
///    index k walks sequentially, so each output accumulates in the same
///    order as the streaming `FirFilter::process(cf)` path.
///  * `fir_decimate_real`     — matched-filter output at the sampling
///    instants only (the demodulator discards everything between them);
///    vectorized across outputs via gathers, k sequential per output.
///  * `correlate_lags`        — vectorized across *lags*; each lag's
///    accumulator lives in its own lane and k walks sequentially,
///    matching `sync::correlate_at` exactly.
///  * `despread_correlate16`  — vectorized across the 16 candidate
///    symbols over a structure-of-arrays chip table; the chip-pair index
///    m walks sequentially, so each symbol's correlation accumulates in
///    the scalar order.
///  * `fft_butterflies`       — vectorized across the butterfly index k
///    within one (stage, block); each butterfly is elementwise.
///  * `cmul_inplace`, `scale_inplace`, `window_apply`, `scale_pulse` —
///    elementwise, trivially order-preserving.
///
/// No FMA is used anywhere (a fused multiply-add rounds once where the
/// scalar code rounds twice, which would break bit-identity between this
/// translation unit and the scalar ones). The complex multiply is the
/// naive four-multiply form — the same fast path GCC emits for finite
/// `std::complex<float>` products — so callers must keep NaN/Inf out
/// (the receiver already scrubs non-finite samples at its boundary and
/// every kernel input is guarded by BHSS_REQUIRE upstream).
///
/// Dispatch: the AVX2 translation unit is compiled only on x86-64 when
/// the compiler supports `-mavx2` and `BHSS_SIMD=ON`, and is entered only
/// when the CPU reports AVX2 at runtime; NEON is compile-time on aarch64.
/// `simd::scalar::*` is always built and is the reference the equivalence
/// suite (`test_dsp_simd`) compares against on every platform.

#include <cstddef>

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::dsp::simd {

/// Name of the instruction set the dispatched kernels actually use at
/// runtime: "avx2", "neon", or "scalar".
[[nodiscard]] const char* active_isa() noexcept;

/// True when active_isa() is a vector ISA.
[[nodiscard]] bool vectorized() noexcept;

// ------------------------------------------------------------- kernels
//
// All pointers must be valid over the documented ranges; in-place aliasing
// is only allowed where a parameter is documented as in/out.

/// Block FIR: out[i] = sum_{k=0}^{n_taps-1} taps[k] * x[i + n_taps-1 - k]
/// for i in [0, n_out). `x` must hold n_out + n_taps - 1 samples: the
/// n_taps-1 history samples first, then the fresh input. Accumulation is
/// k-ascending (newest sample first), matching FirFilter's streaming path.
BHSS_HOT void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                               std::size_t n_out);

/// Decimating real-tap FIR (matched-filter sampling instants only):
/// out[m] = sum_{k=0}^{n_taps-1} taps[k] * x[m*stride + n_taps-1 - k]
/// for m in [0, n_out), accumulated as re += t*xr / im += t*xi.
/// `x` must hold (n_out-1)*stride + n_taps samples.
BHSS_HOT void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                                std::size_t n_out, std::size_t stride);

/// Sliding cross-correlation: out[l] = sum_k x[l + k] * conj(ref[k]) for
/// l in [0, n_lags). `x` must hold n_lags - 1 + n_ref samples.
BHSS_HOT void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out,
                             std::size_t n_lags);

/// 16-ary despreading correlations over a structure-of-arrays chip table:
/// out[s] = sum_{m=0}^{n_pairs-1} pairs[m] * cf{se[m] * cols[2m][s],
///                                              (-so[m]) * cols[2m+1][s]}
/// where cols[c][s] = chip c of symbol s, stored column-major as
/// cols[c * 16 + s] (see ChipTable::columns()). `out` holds 16 values.
BHSS_HOT void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se,
                                   const float* so, const float* cols, cf* out);

/// One FFT stage's butterflies for one block: for k in [0, half)
///   w = inverse ? conj(tw[k]) : tw[k];
///   t = w * b[k];  a[k] = a[k] + t;  b[k] = a[k]_old - t;
/// `a` and `b` are the two halves of the block (b = a + half in the
/// caller's layout, but any disjoint arrays are accepted).
BHSS_HOT void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse);

/// Pointwise complex multiply in place: a[i] *= b[i].
BHSS_HOT void cmul_inplace(cf* a, const cf* b, std::size_t n);

/// Scale in place: x[i] *= s (componentwise real scale).
BHSS_HOT void scale_inplace(cf* x, float s, std::size_t n);

/// Windowing: out[i] = x[i] * w[i] (complex times real). `out` may alias `x`.
BHSS_HOT void window_apply(const cf* x, const float* w, cf* out, std::size_t n);

/// Pulse shaping: out[k] = cf{a * pulse[k], b * pulse[k]}.
BHSS_HOT void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n);

/// Reference implementations — always compiled, on every platform. The
/// dispatched kernels above must produce bit-identical results; the
/// equivalence suite asserts exactly that (ulp distance zero).
namespace scalar {

BHSS_HOT void fir_filter_block(const cf* taps, std::size_t n_taps, const cf* x, cf* out,
                               std::size_t n_out);
BHSS_HOT void fir_decimate_real(const float* taps, std::size_t n_taps, const cf* x, cf* out,
                                std::size_t n_out, std::size_t stride);
BHSS_HOT void correlate_lags(const cf* x, const cf* ref, std::size_t n_ref, cf* out,
                             std::size_t n_lags);
BHSS_HOT void despread_correlate16(const cf* pairs, std::size_t n_pairs, const float* se,
                                   const float* so, const float* cols, cf* out);
BHSS_HOT void fft_butterflies(cf* a, cf* b, const cf* tw, std::size_t half, bool inverse);
BHSS_HOT void cmul_inplace(cf* a, const cf* b, std::size_t n);
BHSS_HOT void scale_inplace(cf* x, float s, std::size_t n);
BHSS_HOT void window_apply(const cf* x, const float* w, cf* out, std::size_t n);
BHSS_HOT void scale_pulse(float a, float b, const float* pulse, cf* out, std::size_t n);

}  // namespace scalar

}  // namespace bhss::dsp::simd
