#include "dsp/psd.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/real_fft.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/utils.hpp"

namespace bhss::dsp {
namespace {

/// Per-thread window cache: the receiver estimates a PSD per hop with the
/// same few (window, size) combinations, and recomputing the window costs
/// as much as the FFT it feeds. Thread-local so the parallel Monte-Carlo
/// workers never contend.
const fvec& cached_window(Window window, std::size_t size) {
  thread_local std::map<std::pair<int, std::size_t>, fvec> cache;
  fvec& slot = cache[{static_cast<int>(window), size}];
  if (slot.size() != size) slot = make_window(window, size);
  return slot;
}

}  // namespace

fvec welch_psd(cspan x, std::size_t fft_size, double overlap, Window window) {
  BHSS_REQUIRE(Fft::valid_size(fft_size), "welch_psd: fft_size must be a power of two >= 2");
  BHSS_REQUIRE(overlap >= 0.0 && overlap <= 0.95, "welch_psd: overlap must be in [0, 0.95]");
  BHSS_REQUIRE(!x.empty(), "welch_psd: empty input");

  const fvec& w = cached_window(window, fft_size);
  const double w_power = window_power(w);
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(static_cast<double>(fft_size) * (1.0 - overlap))));

  const Fft fft(fft_size);
  fvec psd(fft_size, 0.0F);
  // Segment scratch, reused across calls on this thread (the transform is
  // in place; every element is overwritten before the FFT reads it).
  thread_local cvec seg;
  seg.resize(fft_size);
  std::size_t n_segments = 0;

  auto accumulate = [&](cspan chunk) {
    const std::size_t full = std::min<std::size_t>(chunk.size(), fft_size);
    simd::window_apply(chunk.data(), w.data(), seg.data(), full);
    for (std::size_t i = full; i < fft_size; ++i) seg[i] = cf{0.0F, 0.0F};
    fft.forward(cspan_mut{seg});
    for (std::size_t i = 0; i < fft_size; ++i) {
      psd[i] += static_cast<float>(std::norm(seg[i]));
    }
    ++n_segments;
  };

  if (x.size() < fft_size) {
    accumulate(x);  // single zero-padded segment
  } else {
    for (std::size_t pos = 0; pos + fft_size <= x.size(); pos += hop) {
      accumulate(x.subspan(pos, fft_size));
    }
  }

  // Normalise: |X_w(k)|^2 / (N * sum w^2) summed over bins equals the mean
  // power of the windowed signal (Parseval), averaged over segments.
  const auto norm = static_cast<float>(
      1.0 / (static_cast<double>(n_segments) * static_cast<double>(fft_size) * w_power));
  for (float& p : psd) p *= norm;
  BHSS_ENSURE(all_finite(fspan{psd}), "welch_psd: produced non-finite PSD bins");
  return psd;
}

fvec welch_psd_real(fspan x, std::size_t fft_size, double overlap, Window window) {
  BHSS_REQUIRE(fft_size >= 4 && (fft_size & (fft_size - 1)) == 0,
               "welch_psd_real: fft_size must be a power of two >= 4");
  BHSS_REQUIRE(overlap >= 0.0 && overlap <= 0.95, "welch_psd_real: overlap must be in [0, 0.95]");
  BHSS_REQUIRE(!x.empty(), "welch_psd_real: empty input");

  const fvec& w = cached_window(window, fft_size);
  const double w_power = window_power(w);
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(static_cast<double>(fft_size) * (1.0 - overlap))));
  const std::size_t half = fft_size / 2;

  RealFft rfft(fft_size);
  fvec acc(half + 1, 0.0F);
  thread_local fvec rseg;
  thread_local cvec spec;
  rseg.resize(fft_size);
  spec.resize(half + 1);
  std::size_t n_segments = 0;

  auto accumulate = [&](fspan chunk) {
    const std::size_t full = std::min<std::size_t>(chunk.size(), fft_size);
    for (std::size_t i = 0; i < full; ++i) rseg[i] = chunk[i] * w[i];
    for (std::size_t i = full; i < fft_size; ++i) rseg[i] = 0.0F;
    rfft.forward(fspan{rseg}, cspan_mut{spec});
    for (std::size_t k = 0; k <= half; ++k) acc[k] += static_cast<float>(std::norm(spec[k]));
    ++n_segments;
  };

  if (x.size() < fft_size) {
    accumulate(x);
  } else {
    for (std::size_t pos = 0; pos + fft_size <= x.size(); pos += hop) {
      accumulate(x.subspan(pos, fft_size));
    }
  }

  const auto norm = static_cast<float>(
      1.0 / (static_cast<double>(n_segments) * static_cast<double>(fft_size) * w_power));
  // Mirror the non-redundant half-spectrum into the natural-order layout:
  // X[n-k] == conj(X[k]) for real input, so the PSD is symmetric.
  fvec psd(fft_size, 0.0F);
  for (std::size_t k = 0; k <= half; ++k) psd[k] = acc[k] * norm;
  for (std::size_t k = 1; k < half; ++k) psd[fft_size - k] = psd[k];
  BHSS_ENSURE(all_finite(fspan{psd}), "welch_psd_real: produced non-finite PSD bins");
  return psd;
}

fvec bartlett_psd(cspan x, std::size_t fft_size) {
  return welch_psd(x, fft_size, 0.0, Window::rectangular);
}

fvec periodogram(cspan x, std::size_t fft_size) {
  const std::size_t n = std::min<std::size_t>(x.size(), fft_size);
  return welch_psd(x.first(n), fft_size, 0.0, Window::rectangular);
}

double psd_total_power(fspan psd) noexcept {
  double acc = 0.0;
  for (float p : psd) acc += static_cast<double>(p);
  return acc;
}

double occupied_bandwidth(fspan psd, double fraction) {
  const std::size_t n = psd.size();
  BHSS_REQUIRE(n > 0, "occupied_bandwidth: empty psd");
  BHSS_REQUIRE(fraction > 0.0 && fraction <= 1.0, "occupied_bandwidth: fraction must be in (0, 1]");
  const double total = psd_total_power(psd);
  if (total <= 0.0) return 1.0;

  // Grow a symmetric band around DC (bin 0) until it holds `fraction` of
  // the power. Natural FFT order: positive freqs are bins 1..n/2, negative
  // freqs are bins n-1 downward.
  double acc = static_cast<double>(psd[0]);
  std::size_t half_width = 0;  // bins on each side of DC
  const std::size_t max_half = n / 2;
  while (acc < fraction * total && half_width < max_half) {
    ++half_width;
    acc += static_cast<double>(psd[half_width]);
    if (half_width < n - half_width) acc += static_cast<double>(psd[n - half_width]);
  }
  const double bins_used = 1.0 + 2.0 * static_cast<double>(half_width);
  return std::min(1.0, bins_used / static_cast<double>(n));
}

}  // namespace bhss::dsp
