#pragma once

/// @file fir.hpp
/// FIR filtering and filter design. This is the heart of the BHSS
/// receiver's pre-despreading interference suppression:
///  * windowed-sinc low-pass design (used against wide-band jammers,
///    eq. (4) of the paper),
///  * frequency-sampling "whitening" excision design (used against
///    narrow-band jammers, eq. (3) of the paper),
///  * a stateful direct-form filter for streaming use and an
///    overlap-save FFT convolver for fast block processing.

#include <memory>

#include "core/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace bhss::dsp {

/// Streaming direct-form FIR filter with complex taps.
/// y[n] = sum_k taps[k] * x[n-k], with zero initial state.
///
/// The delay line is stored twice, back to back ("doubled history"), so
/// the accumulation over the last N samples is a single linear walk —
/// no per-tap wrap branch, and the compiler can vectorise the dot
/// product. Each write costs two stores; each of the N reads costs
/// nothing extra.
class FirFilter {
 public:
  /// Construct from complex taps; must be non-empty.
  explicit FirFilter(cvec taps);

  /// Construct from real taps (most designed filters are linear-phase real).
  explicit FirFilter(fspan real_taps);

  /// Clear the delay line.
  void reset() noexcept;

  /// Filter a single sample.
  [[nodiscard]] BHSS_HOT cf process(cf in) noexcept;

  /// Filter a block; output has the same length as input.
  [[nodiscard]] cvec process(cspan in);

  [[nodiscard]] const cvec& taps() const noexcept { return taps_; }
  [[nodiscard]] std::size_t order() const noexcept { return taps_.size() - 1; }

 private:
  cvec taps_;
  cvec history_;      ///< doubled delay line: slot i and i + N hold the same sample
  std::size_t head_;  ///< slot (in [0, N)) of the most recent sample
  cvec ext_;          ///< block-path scratch: history prefix + input, contiguous
};

/// Immutable, shareable frequency-domain convolution plan: the tap
/// spectrum plus the FFT geometry derived from the tap count. Building
/// one costs a forward FFT of the taps; `FftConvolver`s constructed from
/// the same plan share it by pointer, which is what makes the per-hop
/// filter-design cache effective — a cache hit re-uses the taps spectrum
/// instead of re-transforming the taps every packet.
struct ConvolverPlan {
  std::size_t num_taps;
  std::size_t fft_size;
  std::size_t block_size;
  Fft fft;
  cvec taps_spectrum;

  /// Build a plan for a tap set (non-empty, finite).
  [[nodiscard]] static std::shared_ptr<const ConvolverPlan> make(cspan taps);
};

/// Overlap-save block convolver. Produces exactly the same output as a
/// freshly reset FirFilter (causal, zero initial state, output length ==
/// input length) but in O(N log N) — essential for the high filter orders
/// the paper uses (up to 3181 taps).
///
/// A reusable FFT workspace lives in the convolver, so `filter` performs
/// exactly one allocation (the output buffer) regardless of how many
/// overlap-save blocks the input spans. One convolver therefore serves
/// one thread at a time; give each worker its own instance.
class FftConvolver {
 public:
  explicit FftConvolver(cspan taps);

  /// Construct from a shared plan (e.g. from the filter-design cache);
  /// skips the tap-spectrum FFT entirely.
  explicit FftConvolver(std::shared_ptr<const ConvolverPlan> plan);

  /// Causal filtering of a whole buffer.
  [[nodiscard]] cvec filter(cspan x);

  /// Causal filtering into a caller-provided buffer (resized to x.size());
  /// allocation-free once `out` has capacity.
  BHSS_HOT void filter(cspan x, cvec& out);

  [[nodiscard]] std::size_t num_taps() const noexcept { return plan_->num_taps; }

 private:
  std::shared_ptr<const ConvolverPlan> plan_;
  cvec work_;  ///< overlap-save block scratch, reused across calls
};

/// Windowed-sinc linear-phase low-pass design.
/// @param num_taps   filter length (odd recommended for symmetric delay)
/// @param cutoff     normalised cutoff in cycles/sample, 0 < cutoff < 0.5
/// @param window     window applied to the ideal impulse response
/// @returns real taps with unity DC gain.
[[nodiscard]] fvec design_lowpass(std::size_t num_taps, double cutoff,
                                  Window window = Window::hamming);

/// Kaiser estimate of the number of taps needed for a given transition
/// width (normalised, cycles/sample) and stop-band attenuation in dB.
/// Result is forced odd and clamped to [3, max_taps].
[[nodiscard]] std::size_t lowpass_num_taps(double transition_width, double atten_db,
                                           std::size_t max_taps = 3181);

/// Frequency-sampling excision ("whitening") filter from eq. (3):
///   H(k) = 1 / sqrt(P(k)) * exp(-j pi (K-1) k / K)
/// where P is the estimated PSD in natural FFT order. The filter is
/// normalised so its median magnitude response is unity — attenuation is
/// then concentrated where the jammer sits and ~1 elsewhere. We use an
/// integer group delay of K/2 samples (eq. (3)'s (K-1)/2 is fractional
/// for even K); the magnitude response is unchanged and the receiver can
/// compensate the delay exactly.
/// @param psd            PSD estimate, natural FFT order; size must be a
///                       power of two (it sets the number of taps K).
/// @param floor_rel      bins below floor_rel * max(P) are clamped to
///                       avoid huge gains in empty bins.
/// @param passband_frac  two-sided width (fraction of the sampling rate)
///                       outside which the response is forced to zero.
///                       Default 1.0 whitens the whole band (the paper's
///                       chip-rate-sampled receiver); an oversampled
///                       receiver passes its signal bandwidth here so the
///                       whitening gain is normalised in-band and
///                       out-of-band noise is rejected as well.
/// @returns K complex taps with group delay K/2.
[[nodiscard]] cvec design_excision_whitening(fspan psd, double floor_rel = 1e-6,
                                             double passband_frac = 1.0);

/// Complex frequency response of a tap set evaluated at `nfft` points
/// (natural FFT order). For tests and plotting.
[[nodiscard]] cvec frequency_response(cspan taps, std::size_t nfft);

/// |H(f)|^2 of a tap set at `nfft` points, natural FFT order.
[[nodiscard]] fvec power_response(cspan taps, std::size_t nfft);

/// Widen real taps into complex ones.
[[nodiscard]] cvec to_complex(fspan real_taps);

}  // namespace bhss::dsp
