#pragma once

/// @file pulse.hpp
/// Chip pulse shapes. The paper's implementation modulates chips with a
/// half-sine pulse g(t) (as in IEEE 802.15.4 O-QPSK) and hops bandwidth by
/// scaling the pulse duration: g(t) -> g(alpha t) halves/doubles the
/// occupied bandwidth (eq. (1)).

#include "dsp/types.hpp"

namespace bhss::dsp {

/// Half-sine pulse sampled at `samples_per_chip` points:
///   g[i] = sin(pi * i / sps), i = 0..sps-1.
/// Scaling sps by 1/alpha is exactly the g(alpha t) bandwidth hop of the
/// paper. The pulse is normalised to unit energy per chip so that hopping
/// does not change transmit power.
[[nodiscard]] fvec half_sine_pulse(std::size_t samples_per_chip);

/// Matched filter taps for the half-sine pulse (time-reversed pulse; the
/// half-sine is symmetric so this equals the pulse itself), normalised so
/// that the matched-filter output at the optimum instant has unit gain.
[[nodiscard]] fvec half_sine_matched(std::size_t samples_per_chip);

}  // namespace bhss::dsp
