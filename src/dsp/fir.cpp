#include "dsp/fir.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/contracts.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/utils.hpp"

namespace bhss::dsp {

// ---------------------------------------------------------------- FirFilter

FirFilter::FirFilter(cvec taps) : taps_(std::move(taps)), head_(0) {
  BHSS_REQUIRE(!taps_.empty(), "FirFilter: taps must be non-empty");
  BHSS_REQUIRE(all_finite(cspan{taps_}), "FirFilter: taps must be finite");
  history_.assign(2 * taps_.size(), cf{0.0F, 0.0F});
}

FirFilter::FirFilter(fspan real_taps) : FirFilter(to_complex(real_taps)) {}

void FirFilter::reset() noexcept {
  std::fill(history_.begin(), history_.end(), cf{0.0F, 0.0F});
  head_ = 0;
}

cf FirFilter::process(cf in) noexcept {
  const std::size_t n = taps_.size();
  history_[head_] = in;
  history_[head_ + n] = in;
  // Sample x[t-k] lives at slot head_ + n - k of the doubled history:
  // a linear, branch-free walk over [head_ + 1, head_ + n].
  const cf* hist = history_.data() + head_ + n;
  const cf* taps = taps_.data();
  cf acc{0.0F, 0.0F};
  for (std::size_t k = 0; k < n; ++k) {
    acc += taps[k] * *(hist - static_cast<std::ptrdiff_t>(k));
  }
  head_ = (head_ + 1 == n) ? 0 : head_ + 1;
  return acc;
}

cvec FirFilter::process(cspan in) {
  cvec out(in.size());
  if (in.empty()) return out;
  // Block path: same arithmetic and accumulation order as the per-sample
  // overload, but laid out for the vectorized block kernel. At entry the
  // previous n-1 samples sit contiguously, oldest first, at
  // history_[head_+1 .. head_+n-1]; copying them in front of the input
  // gives the kernel one flat buffer with no wrap logic.
  const std::size_t n = taps_.size();
  ext_.resize(n - 1 + in.size());
  std::copy_n(history_.data() + head_ + 1, n - 1, ext_.begin());
  std::copy(in.begin(), in.end(), ext_.begin() + static_cast<std::ptrdiff_t>(n - 1));
  simd::fir_filter_block(taps_.data(), n, ext_.data(), out.data(), in.size());
  // Rebuild the delay line: the last n samples of ext_ are the new
  // history in ascending time order. With head_ = 0 the next per-sample
  // call reads x[t-k] from slot n-k, so slot i must hold tail[i] (and its
  // double at i+n keeps the doubled-history invariant for later heads).
  const cf* tail = ext_.data() + ext_.size() - n;
  for (std::size_t i = 0; i < n; ++i) {
    history_[i] = tail[i];
    history_[i + n] = tail[i];
  }
  head_ = 0;
  return out;
}

// ------------------------------------------------------------- FftConvolver

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::shared_ptr<const ConvolverPlan> ConvolverPlan::make(cspan taps) {
  BHSS_REQUIRE(!taps.empty(), "ConvolverPlan: taps must be non-empty");
  BHSS_REQUIRE(all_finite(taps), "ConvolverPlan: taps must be finite");
  const std::size_t fft_size = next_pow2(std::max<std::size_t>(4 * taps.size(), 1024));
  auto plan = std::make_shared<ConvolverPlan>(ConvolverPlan{
      .num_taps = taps.size(),
      .fft_size = fft_size,
      .block_size = fft_size - taps.size() + 1,
      .fft = Fft(fft_size),
      .taps_spectrum = {},
  });
  plan->taps_spectrum = plan->fft.forward_copy(taps);
  return plan;
}

FftConvolver::FftConvolver(cspan taps) : FftConvolver(ConvolverPlan::make(taps)) {}

FftConvolver::FftConvolver(std::shared_ptr<const ConvolverPlan> plan)
    : plan_(std::move(plan)), work_(plan_->fft_size) {
  BHSS_REQUIRE(plan_ != nullptr, "FftConvolver: plan must be non-null");
}

cvec FftConvolver::filter(cspan x) {
  cvec out;
  filter(x, out);
  return out;
}

void FftConvolver::filter(cspan x, cvec& out) {
  // BHSS_ANALYZE_SUPPRESS(h1-hot-path-purity): resize to the documented output length; allocation-free once the caller's buffer has capacity (see header contract)
  out.resize(x.size());
  cvec& block = work_;
  const std::size_t fft_size = plan_->fft_size;
  const std::size_t block_size = plan_->block_size;
  // Overlap-save: each iteration consumes block_size fresh samples and
  // reuses the previous num_taps-1 samples (zeros before the start).
  const std::size_t overlap = plan_->num_taps - 1;
  for (std::size_t pos = 0; pos < x.size(); pos += block_size) {
    for (std::size_t i = 0; i < fft_size; ++i) {
      // Sample index feeding this FFT bin; negative indices are zero.
      const auto global = static_cast<std::ptrdiff_t>(pos + i) - static_cast<std::ptrdiff_t>(overlap);
      block[i] = (global >= 0 && global < static_cast<std::ptrdiff_t>(x.size()))
                     ? x[static_cast<std::size_t>(global)]
                     : cf{0.0F, 0.0F};
    }
    plan_->fft.forward(cspan_mut{block});
    simd::cmul_inplace(block.data(), plan_->taps_spectrum.data(), fft_size);
    plan_->fft.inverse(cspan_mut{block});
    const std::size_t n_valid = std::min(block_size, x.size() - pos);
    for (std::size_t i = 0; i < n_valid; ++i) out[pos + i] = block[overlap + i];
  }
}

// ------------------------------------------------------------ filter design

fvec design_lowpass(std::size_t num_taps, double cutoff, Window window) {
  BHSS_REQUIRE(num_taps > 0, "design_lowpass: num_taps must be > 0");
  BHSS_REQUIRE(cutoff > 0.0 && cutoff < 0.5, "design_lowpass: cutoff must be in (0, 0.5)");
  const fvec w = make_window(window, num_taps);
  fvec taps(num_taps);
  const double mid = (static_cast<double>(num_taps) - 1.0) / 2.0;
  double dc_gain = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    taps[i] = static_cast<float>(2.0 * cutoff * sinc(2.0 * cutoff * t) * static_cast<double>(w[i]));
    dc_gain += static_cast<double>(taps[i]);
  }
  // Normalise to unity DC gain so the passband is undistorted.
  if (dc_gain != 0.0) {
    for (float& t : taps) t = static_cast<float>(static_cast<double>(t) / dc_gain);
  }
  BHSS_ENSURE(all_finite(fspan{taps}), "design_lowpass: produced non-finite taps");
  return taps;
}

std::size_t lowpass_num_taps(double transition_width, double atten_db, std::size_t max_taps) {
  BHSS_REQUIRE(transition_width > 0.0 && transition_width < 0.5,
               "lowpass_num_taps: transition width must be in (0, 0.5)");
  // Kaiser's empirical formula: N ~= (A - 7.95) / (2.285 * 2*pi*df).
  const double a = std::max(atten_db, 9.0);
  const double n = (a - 7.95) / (2.285 * 2.0 * std::numbers::pi * transition_width);
  auto taps = static_cast<std::size_t>(std::ceil(n)) + 1;
  if (taps % 2 == 0) ++taps;
  return std::clamp<std::size_t>(taps, 3, max_taps | 1);
}

cvec design_excision_whitening(fspan psd, double floor_rel, double passband_frac) {
  const std::size_t k_taps = psd.size();
  BHSS_REQUIRE(Fft::valid_size(k_taps),
               "design_excision_whitening: psd size must be a power of two");
  BHSS_REQUIRE(passband_frac > 0.0 && passband_frac <= 1.0,
               "design_excision_whitening: passband_frac must be in (0, 1]");
  BHSS_REQUIRE(all_finite(psd), "design_excision_whitening: psd must be finite");
  const float max_p = *std::max_element(psd.begin(), psd.end());
  BHSS_REQUIRE(max_p > 0.0F, "design_excision_whitening: psd is all zero");
  const double floor = static_cast<double>(max_p) * floor_rel;

  // Frequency of bin k in cycles/sample, wrapped into [-0.5, 0.5).
  auto bin_freq = [k_taps](std::size_t k) {
    const double f = static_cast<double>(k) / static_cast<double>(k_taps);
    return (f < 0.5) ? f : f - 1.0;
  };

  // Desired response, eq. (3): magnitude 1/sqrt(P(k)), linear phase,
  // restricted to the signal passband.
  cvec h_spec(k_taps);
  std::vector<double> mags(k_taps);
  std::vector<double> inband;
  inband.reserve(k_taps);
  for (std::size_t k = 0; k < k_taps; ++k) {
    if (std::abs(bin_freq(k)) <= passband_frac / 2.0) {
      mags[k] = 1.0 / std::sqrt(std::max(static_cast<double>(psd[k]), floor));
      inband.push_back(mags[k]);
    } else {
      mags[k] = 0.0;
    }
  }
  // Normalise so the median in-band magnitude (the "quiet" part of the
  // band) is 1.
  std::nth_element(inband.begin(), inband.begin() + static_cast<std::ptrdiff_t>(inband.size() / 2),
                   inband.end());
  const double median = std::max(inband[inband.size() / 2], 1e-30);
  // Linear phase with an integer group delay of K/2 samples. Eq. (3) uses
  // (K-1)/2, which for even K is a half-sample delay; we shift by one half
  // sample more so the receiver can compensate the delay exactly. The
  // magnitude response is identical. exp(-j 2 pi k (K/2) / K) = (-1)^k.
  for (std::size_t k = 0; k < k_taps; ++k) {
    const double mag = mags[k] / median;
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    h_spec[k] = cf(static_cast<float>(mag * sign), 0.0F);
  }

  // Taps are the inverse DFT of the sampled response.
  Fft fft(k_taps);
  fft.inverse(cspan_mut{h_spec});
  BHSS_ENSURE(all_finite(cspan{h_spec}), "design_excision_whitening: produced non-finite taps");
  return h_spec;
}

cvec frequency_response(cspan taps, std::size_t nfft) {
  Fft fft(nfft);
  return fft.forward_copy(taps);
}

fvec power_response(cspan taps, std::size_t nfft) {
  const cvec h = frequency_response(taps, nfft);
  fvec out(nfft);
  for (std::size_t i = 0; i < nfft; ++i) out[i] = std::norm(h[i]);
  return out;
}

cvec to_complex(fspan real_taps) {
  cvec out(real_taps.size());
  for (std::size_t i = 0; i < real_taps.size(); ++i) out[i] = cf{real_taps[i], 0.0F};
  return out;
}

}  // namespace bhss::dsp
