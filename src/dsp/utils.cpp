#include "dsp/utils.hpp"

#include <cmath>
#include <numbers>

namespace bhss::dsp {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) noexcept {
  if (linear <= 0.0) return -300.0;
  return 10.0 * std::log10(linear);
}

double sinc(double x) noexcept {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

double mean_power(cspan x) noexcept {
  if (x.empty()) return 0.0;
  return energy(x) / static_cast<double>(x.size());
}

double energy(cspan x) noexcept {
  double acc = 0.0;
  for (const cf& s : x) acc += static_cast<double>(std::norm(s));
  return acc;
}

void scale_to_power(cspan_mut x, double target_power) noexcept {
  const double current = mean_power(x);
  if (current <= 0.0) return;
  const auto gain = static_cast<float>(std::sqrt(target_power / current));
  for (cf& s : x) s *= gain;
}

bool all_finite(cspan x) noexcept {
  for (const cf& s : x) {
    if (!std::isfinite(s.real()) || !std::isfinite(s.imag())) return false;
  }
  return true;
}

bool all_finite(fspan x) noexcept {
  for (float v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace bhss::dsp
