#include "dsp/utils.hpp"

#include <cmath>
#include <numbers>

namespace bhss::dsp {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) noexcept {
  if (linear <= 0.0) return -300.0;
  return 10.0 * std::log10(linear);
}

double sinc(double x) noexcept {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

double mean_power(cspan x) noexcept {
  if (x.empty()) return 0.0;
  return energy(x) / static_cast<double>(x.size());
}

double energy(cspan x) noexcept {
  double acc = 0.0;
  for (const cf& s : x) acc += static_cast<double>(std::norm(s));
  return acc;
}

void scale_to_power(cspan_mut x, double target_power) noexcept {
  const double current = mean_power(x);
  if (current <= 0.0) return;
  const auto gain = static_cast<float>(std::sqrt(target_power / current));
  for (cf& s : x) s *= gain;
}

}  // namespace bhss::dsp
