#pragma once

/// @file psd.hpp
/// Power spectral density estimation. The BHSS receiver's control logic
/// estimates the jammer's spectral occupancy with these estimators before
/// choosing a suppression filter (paper §4.2 cites Bartlett [18] and
/// Welch [19]).

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace bhss::dsp {

/// Welch PSD estimate.
/// Returns `fft_size` bins in natural FFT order, normalised so that the
/// SUM over all bins equals the mean signal power. Segments shorter than
/// `fft_size` at the tail are dropped; if the signal is shorter than one
/// segment it is zero-padded into a single segment.
/// @param x            input samples
/// @param fft_size     power of two, segment and transform length
/// @param overlap      fractional overlap between segments, in [0, 0.95]
/// @param window       per-segment window
[[nodiscard]] fvec welch_psd(cspan x, std::size_t fft_size, double overlap = 0.5,
                             Window window = Window::hann);

/// Welch PSD estimate of a *real* signal, using the Hermitian real-input
/// FFT specialization (`RealFft`): one N/2 complex transform per segment
/// instead of N. Same normalisation and bin layout as `welch_psd` — the
/// full `fft_size` bins are returned in natural FFT order, with the
/// negative-frequency half mirrored from the non-redundant half-spectrum.
/// @param fft_size power of two >= 4.
[[nodiscard]] fvec welch_psd_real(fspan x, std::size_t fft_size, double overlap = 0.5,
                                  Window window = Window::hann);

/// Bartlett's method: Welch with rectangular window and no overlap.
[[nodiscard]] fvec bartlett_psd(cspan x, std::size_t fft_size);

/// Single (rectangular-window, zero-overlap, one-segment) periodogram of
/// the first `fft_size` samples. The noisiest estimator; kept for the
/// estimator ablation study.
[[nodiscard]] fvec periodogram(cspan x, std::size_t fft_size);

/// Total power contained in the PSD (sum over bins).
[[nodiscard]] double psd_total_power(fspan psd) noexcept;

/// Estimate the occupied bandwidth, as a fraction of the sampling rate, of
/// a PSD in natural FFT order: the smallest symmetric band around DC that
/// contains `fraction` of the total power. Returns a value in (0, 1].
[[nodiscard]] double occupied_bandwidth(fspan psd, double fraction = 0.99);

}  // namespace bhss::dsp
