#pragma once

/// @file window.hpp
/// Classic FIR/spectral analysis window functions.

#include "dsp/types.hpp"

namespace bhss::dsp {

/// Supported window shapes.
enum class Window {
  rectangular,
  hamming,
  hann,
  blackman,
  blackman_harris,
  kaiser,
};

/// Build a window of length `n`. `kaiser_beta` is only used for
/// Window::kaiser. Lengths 0 and 1 return trivial windows.
[[nodiscard]] fvec make_window(Window type, std::size_t n, double kaiser_beta = 8.6);

/// Sum of squared window coefficients (used for PSD normalisation).
[[nodiscard]] double window_power(fspan w) noexcept;

}  // namespace bhss::dsp
