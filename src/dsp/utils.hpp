#pragma once

/// @file utils.hpp
/// Small numeric helpers: dB conversions, power measurement, sinc.

#include "dsp/types.hpp"

namespace bhss::dsp {

/// Convert a power ratio expressed in dB to linear scale.
[[nodiscard]] double db_to_linear(double db) noexcept;

/// Convert a linear power ratio to dB. Clamps at -300 dB for zero input.
[[nodiscard]] double linear_to_db(double linear) noexcept;

/// Normalised sinc: sin(pi x) / (pi x), with sinc(0) == 1.
[[nodiscard]] double sinc(double x) noexcept;

/// Mean power (mean of |x|^2) of a complex sample buffer; 0 for empty input.
[[nodiscard]] double mean_power(cspan x) noexcept;

/// Total energy (sum of |x|^2) of a complex sample buffer.
[[nodiscard]] double energy(cspan x) noexcept;

/// Scale `x` in place so its mean power becomes `target_power`.
/// A silent (all-zero) buffer is left untouched.
void scale_to_power(cspan_mut x, double target_power) noexcept;

/// True iff every sample in `x` is finite on both rails. Used by the
/// contract guards at the receiver/channel boundaries: one NaN entering
/// the filter-selection path silently corrupts whole BER curves.
[[nodiscard]] bool all_finite(cspan x) noexcept;

/// True iff every value in `x` is finite.
[[nodiscard]] bool all_finite(fspan x) noexcept;

}  // namespace bhss::dsp
