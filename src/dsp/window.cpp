#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

namespace bhss::dsp {
namespace {

/// Zeroth-order modified Bessel function of the first kind (series form),
/// needed by the Kaiser window. Converges quickly for the beta range used
/// in filter design.
double bessel_i0(double x) {
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-16 * sum) break;
  }
  return sum;
}

}  // namespace

fvec make_window(Window type, std::size_t n, double kaiser_beta) {
  fvec w(n, 1.0F);
  if (n <= 1) return w;
  const double m = static_cast<double>(n - 1);
  constexpr double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / m;  // 0..1 across the window
    double v = 1.0;
    switch (type) {
      case Window::rectangular:
        v = 1.0;
        break;
      case Window::hamming:
        v = 0.54 - 0.46 * std::cos(two_pi * x);
        break;
      case Window::hann:
        v = 0.5 - 0.5 * std::cos(two_pi * x);
        break;
      case Window::blackman:
        v = 0.42 - 0.5 * std::cos(two_pi * x) + 0.08 * std::cos(2.0 * two_pi * x);
        break;
      case Window::blackman_harris:
        v = 0.35875 - 0.48829 * std::cos(two_pi * x) +
            0.14128 * std::cos(2.0 * two_pi * x) -
            0.01168 * std::cos(3.0 * two_pi * x);
        break;
      case Window::kaiser: {
        const double r = 2.0 * x - 1.0;  // -1..1
        v = bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - r * r))) /
            bessel_i0(kaiser_beta);
        break;
      }
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

double window_power(fspan w) noexcept {
  double acc = 0.0;
  for (float v : w) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

}  // namespace bhss::dsp
