#pragma once

/// @file types.hpp
/// Fundamental sample types shared by every BHSS library.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace bhss::dsp {

/// Complex baseband sample (I/Q pair), single precision as on SDR hardware.
using cf = std::complex<float>;

/// Owning buffer of complex samples.
using cvec = std::vector<cf>;

/// Owning buffer of real samples (filter taps, PSD bins, pulse shapes).
using fvec = std::vector<float>;

/// Non-owning view of complex samples.
using cspan = std::span<const cf>;

/// Non-owning mutable view of complex samples.
using cspan_mut = std::span<cf>;

/// Non-owning view of real samples.
using fspan = std::span<const float>;

}  // namespace bhss::dsp
