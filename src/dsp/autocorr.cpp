#include "dsp/autocorr.hpp"

#include <stdexcept>

#include "core/contracts.hpp"
#include "dsp/utils.hpp"

namespace bhss::dsp {

fvec autocorrelation(cspan x, std::size_t max_lag) {
  BHSS_REQUIRE(!x.empty(), "autocorrelation: empty input");
  fvec rho(max_lag + 1, 0.0F);
  const double n = static_cast<double>(x.size());
  for (std::size_t k = 0; k <= max_lag && k < x.size(); ++k) {
    double acc = 0.0;
    for (std::size_t i = k; i < x.size(); ++i) {
      acc += static_cast<double>((x[i] * std::conj(x[i - k])).real());
    }
    rho[k] = static_cast<float>(acc / n);
  }
  return rho;
}

fvec bandlimited_noise_autocorr(double power, double bandwidth, std::size_t max_lag) {
  BHSS_REQUIRE(bandwidth > 0.0 && bandwidth <= 1.0,
               "bandlimited_noise_autocorr: bandwidth must be in (0, 1]");
  fvec rho(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    rho[k] = static_cast<float>(power * sinc(bandwidth * static_cast<double>(k)));
  }
  return rho;
}

}  // namespace bhss::dsp
