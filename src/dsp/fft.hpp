#pragma once

/// @file fft.hpp
/// Iterative radix-2 FFT with a precomputed plan. Used by the receiver's
/// jammer spectral estimator and by the excision-filter design (eq. (3)
/// in the paper requires an inverse DFT of the desired response).
///
/// Plans (bit-reversal table + twiddle factors) are immutable and shared
/// through a process-wide cache, so constructing an `Fft` for a size that
/// has been used before is a cheap shared-pointer copy. The receiver
/// builds an `FftConvolver` (and hence an `Fft`) per hop; without the
/// cache that rebuilt the tables at every hop of every packet.

#include <memory>

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::dsp {

struct FftPlan;  // bitrev + twiddles, defined in fft.cpp

/// Radix-2 decimation-in-time FFT plan for a fixed power-of-two size.
/// Forward transform is unnormalised; inverse divides by N so that
/// inverse(forward(x)) == x. Copying an Fft only copies a plan handle.
class Fft {
 public:
  /// @param n transform size; must be a power of two >= 2.
  explicit Fft(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform of `x` (x.size() must equal size()).
  BHSS_HOT void forward(cspan_mut x) const;

  /// In-place inverse transform of `x` (normalised by 1/N).
  BHSS_HOT void inverse(cspan_mut x) const;

  /// Out-of-place convenience: returns FFT of `x`.
  [[nodiscard]] cvec forward_copy(cspan x) const;

  /// Zero-pad `x` into `out` (whose size must equal size()) and transform
  /// in place — `forward_copy` without the per-call allocation.
  BHSS_HOT void forward_into(cspan x, cspan_mut out) const;

  /// True if `n` is a power of two >= 2.
  [[nodiscard]] static bool valid_size(std::size_t n) noexcept;

  /// The plan's forward twiddle table: exp(-j 2 pi k / n) for k in
  /// [0, n/2). Exposed for the real-input specialization (`RealFft`),
  /// whose post-recombination twiddles are exactly this table.
  [[nodiscard]] cspan twiddles() const noexcept;

 private:
  void transform(cspan_mut x, bool inverse) const;

  std::size_t n_;
  std::shared_ptr<const FftPlan> plan_;  ///< shared via the process-wide cache
};

/// Rotate a PSD / spectrum from natural FFT order (DC first) to a
/// DC-centred order suitable for display and band-edge reasoning.
[[nodiscard]] fvec fft_shift(fspan x);

}  // namespace bhss::dsp
