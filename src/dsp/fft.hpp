#pragma once

/// @file fft.hpp
/// Iterative radix-2 FFT with a precomputed plan. Used by the receiver's
/// jammer spectral estimator and by the excision-filter design (eq. (3)
/// in the paper requires an inverse DFT of the desired response).

#include "dsp/types.hpp"

namespace bhss::dsp {

/// Radix-2 decimation-in-time FFT plan for a fixed power-of-two size.
/// Forward transform is unnormalised; inverse divides by N so that
/// inverse(forward(x)) == x.
class Fft {
 public:
  /// @param n transform size; must be a power of two >= 2.
  explicit Fft(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform of `x` (x.size() must equal size()).
  void forward(cspan_mut x) const;

  /// In-place inverse transform of `x` (normalised by 1/N).
  void inverse(cspan_mut x) const;

  /// Out-of-place convenience: returns FFT of `x`.
  [[nodiscard]] cvec forward_copy(cspan x) const;

  /// True if `n` is a power of two >= 2.
  [[nodiscard]] static bool valid_size(std::size_t n) noexcept;

 private:
  void transform(cspan_mut x, bool inverse) const;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  cvec twiddles_;  ///< exp(-j 2 pi k / n), k in [0, n/2)
};

/// Rotate a PSD / spectrum from natural FFT order (DC first) to a
/// DC-centred order suitable for display and band-edge reasoning.
[[nodiscard]] fvec fft_shift(fspan x);

}  // namespace bhss::dsp
