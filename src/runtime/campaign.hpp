#pragma once

/// @file campaign.hpp
/// Resilient campaign orchestration for long Monte-Carlo sweeps.
///
/// A paper-scale figure regeneration is hours of simulation across many
/// (SNR, jammer-bandwidth, hop-pattern) data points. CampaignRunner turns
/// such a sweep into a deterministic DAG of (data-point, shard) work
/// units, each keyed by `(point id, params hash, seed, shard)`:
///
///  - Completed units are journaled to a CRC-protected, fsync'd
///    CheckpointJournal; a crashed or killed campaign resumes by replaying
///    the journal and re-running only the missing units. Because every
///    shard is a pure function of its seed tuple (PR 2's determinism
///    contract), the resumed merge is bit-identical to an uninterrupted
///    run at any thread count.
///  - A per-shard watchdog bounds how long one shard may run. A shard
///    that overruns is retried with exponential backoff (a deterministic
///    retry: same seeds, same result) up to `max_attempts`, then
///    quarantined — the campaign finishes with `shard_timeout` accounted
///    in the merged failure taxonomy instead of hanging forever or
///    silently dropping the loss.
///  - SIGINT/SIGTERM request a graceful drain: in-flight shards finish
///    and are journaled, un-started shards are skipped, and the campaign
///    throws CampaignInterrupted so the caller can exit with a distinct
///    "resumable" status instead of losing the session's work.
///
/// CampaignRunner executes shards on the same fixed-shard ThreadPool and
/// derives seeds/packet ranges through ParallelLinkRunner, so a campaign
/// data point and `ParallelLinkRunner::run` produce identical LinkStats
/// for identical (SimConfig, n_shards).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/link_simulator.hpp"
#include "runtime/checkpoint_journal.hpp"
#include "runtime/distributed/shard_partition.hpp"
#include "runtime/parallel_link_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace bhss::runtime {

/// Campaign knobs. As with RunnerOptions, `n_shards` is part of the
/// experiment identity; everything else only changes wall time or failure
/// handling. `partition` selects this process's slice of the shard set in
/// a distributed fleet (shard_partition.hpp) — it is NOT part of the
/// experiment identity either: the params hash covers `n_shards` only, so
/// worker journals merge cleanly back into the single-process keyspace.
struct CampaignOptions {
  std::size_t n_threads = 0;     ///< total concurrency; 0 = hardware threads
  std::size_t n_shards = 16;     ///< fixed shard count (>= 1)
  double shard_timeout_s = 0.0;  ///< watchdog budget per shard attempt; 0 = off
  std::size_t max_attempts = 3;  ///< attempts per shard before quarantine
  double backoff_base_s = 0.05;  ///< retry backoff: base * 2^(attempt-1)
  distributed::ShardPartition partition{};  ///< this process's shard slice
};

/// Thrown when a drain was requested (SIGINT/SIGTERM or programmatic):
/// everything finished so far is journaled; rerun with --resume to
/// continue. Carries no data — the journal is the state.
class CampaignInterrupted : public std::runtime_error {
 public:
  CampaignInterrupted() : std::runtime_error("campaign interrupted — resumable") {}
};

/// Checkpointed, watchdog-supervised drop-in for ParallelLinkRunner.
/// One runner owns one pool; reuse it across data points.
class CampaignRunner {
 public:
  /// `journal` may be null (no checkpointing: behaves like
  /// ParallelLinkRunner plus watchdog/drain). The journal must outlive
  /// the runner.
  explicit CampaignRunner(CampaignOptions options = {}, CheckpointJournal* journal = nullptr);

  /// Simulate one data point under the campaign contract. `point_id`
  /// must be whitespace-free and unique within the campaign; shards
  /// already present in the journal under the same params hash are loaded
  /// instead of re-run. Throws CampaignInterrupted on a drain request.
  ///
  /// With a distributing `partition`, only owned shards are simulated and
  /// journaled; the others contribute default elements to the returned
  /// merge, which is therefore PARTIAL — a worker's return value is shard
  /// bookkeeping, not the data point. The canonical stats come from the
  /// supervisor's final pass over the merged journal.
  [[nodiscard]] core::LinkStats run_point(const std::string& point_id,
                                          const core::SimConfig& cfg);

  /// Paper §6.3 bisection with every PER probe checkpointed as its own
  /// work unit (`<point_id>/p<n>`). The probe sequence is deterministic
  /// because every probe's PER is, so a resumed bisection walks the same
  /// SNR path and reuses the journaled probes.
  ///
  /// Refuses to run under a distributing partition: each probe's PER
  /// would be computed from a partial shard slice, so different workers
  /// would walk *different* bisection paths and journal same-point-id
  /// records for different SNR configs — unmergeable by construction.
  /// The supervisor's final pass computes bisections in-process instead.
  [[nodiscard]] double min_snr_for_per(const std::string& point_id,
                                       const core::SimConfig& cfg, double target_per = 0.5,
                                       double lo_db = -10.0, double hi_db = 45.0,
                                       double tol_db = 0.5);

  /// Fingerprint of every SimConfig field that can change the merged
  /// statistics, plus `n_shards`. Journal records carry it so a resumed
  /// run never reuses work computed under different parameters.
  [[nodiscard]] static std::uint64_t params_hash(const core::SimConfig& cfg,
                                                 std::size_t n_shards) noexcept;

  // -- graceful shutdown ------------------------------------------------
  /// Route SIGINT/SIGTERM to a drain request (process-wide; call once
  /// from main when checkpointing is active).
  static void install_signal_handlers() noexcept;
  /// Programmatic drain request — what the signal handler calls, exposed
  /// for tests and embedders.
  static void request_interrupt() noexcept;
  static void clear_interrupt() noexcept;  ///< reset between tests
  [[nodiscard]] static bool interrupt_requested() noexcept;

  /// Timed-out shard threads are parked in a process-wide registry rather
  /// than detached; this blocks until every parked thread has finished.
  /// For tests and orderly embedders that tear down state a runaway shard
  /// may still be reading. Production exit paths should NOT call it — a
  /// genuinely hung shard is exactly what must not block exit.
  static void join_abandoned_threads();

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t shards() const noexcept { return options_.n_shards; }
  [[nodiscard]] CheckpointJournal* journal() const noexcept { return journal_; }

  /// Test-only fault hook, run inside every shard attempt before the
  /// simulation: (shard index, attempt index). A hook that sleeps past
  /// the watchdog budget simulates a hung shard.
  std::function<void(std::size_t, std::size_t)> shard_hook;

  /// Invoked (outside the journal lock) each time a shard's result has
  /// been durably journaled, with the shard index. The chaos harness's
  /// `--chaos-kill-after-shards=K` counts journaled shards here and
  /// SIGKILLs the worker at a scripted point — after the fsync, so the
  /// journal the respawn resumes from provably contains the work.
  std::function<void(std::size_t)> shard_journaled_hook;

  /// Telemetry consumer. When set, every run_point collects per-shard
  /// telemetry (metrics + traces) and invokes the sink after the merge —
  /// including for points satisfied entirely from the journal, whose
  /// bundles are rebuilt from `O` records. A journaled shard *without* an
  /// `O` record (it ran before telemetry was requested) is re-run — a
  /// deterministic replay, so its stats are unchanged. Quarantined shards
  /// contribute a default bundle at their index, mirroring their
  /// default-constructed LinkStats. Arguments: (point id, config, merged
  /// stats, per-shard bundles in ascending shard order).
  std::function<void(const std::string&, const core::SimConfig&, const core::LinkStats&,
                     const std::vector<obs::ShardTelemetry>&)>
      telemetry_sink;

 private:
  void execute_pooled(const JournalKey& key, const core::SimConfig& cfg,
                      const std::vector<std::size_t>& pending,
                      std::vector<core::LinkStats>& slots,
                      std::vector<obs::ShardTelemetry>* telemetry);
  void execute_watchdogged(const JournalKey& key, const core::SimConfig& cfg,
                           std::vector<std::size_t> pending,
                           std::vector<core::LinkStats>& slots,
                           std::vector<obs::ShardTelemetry>* telemetry,
                           std::size_t& retried_shards, std::size_t& quarantined_shards);

  CampaignOptions options_;
  ThreadPool pool_;
  CheckpointJournal* journal_;
};

}  // namespace bhss::runtime
