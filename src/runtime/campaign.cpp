#include "runtime/campaign.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/contracts.hpp"

namespace bhss::runtime {
namespace {

// ------------------------------------------------------------ drain request

/// Drain flag, set from signal handlers (SIGINT/SIGTERM) and from
/// ordinary threads (request_interrupt — the supervisor's drain path and
/// tests). A lock-free atomic is async-signal-safe AND thread-safe;
/// plain sig_atomic_t would be a data race for the cross-thread case.
/// The campaign polls it at shard boundaries, so in-flight shards drain
/// instead of dying mid-write.
std::atomic<int> g_interrupt{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "drain flag must stay usable from a signal handler");

void handle_drain_signal(int /*signum*/) {
  g_interrupt.store(1, std::memory_order_relaxed);
}

// ------------------------------------------------------ abandoned threads

/// A shard that overruns its watchdog budget cannot be joined on the
/// campaign's critical path (it may be genuinely hung), but a plain
/// detach makes process teardown race whatever shared state the runaway
/// thread still touches. Park such threads here instead: the campaign
/// moves on immediately, and join_abandoned_threads() lets tests wait
/// them out. The vector is deliberately immortal — running its
/// destructor at exit with a still-hung thread inside would
/// std::terminate — so it lives in a union whose destructor does
/// nothing (the no-destruct idiom; keeps the project's no-raw-new rule).
std::mutex g_abandoned_mu;

std::vector<std::thread>& abandoned_threads() {
  union Holder {
    std::vector<std::thread> v;
    Holder() : v() {}
    ~Holder() {}  // never destroy v
  };
  static Holder holder;
  return holder.v;
}

void park_abandoned(std::thread th) {
  const std::lock_guard<std::mutex> lock(g_abandoned_mu);
  abandoned_threads().push_back(std::move(th));
}

// ------------------------------------------------------------- params hash

/// FNV-1a-64 over a canonical little-endian serialization of the config.
/// Floats are hashed as IEEE-754 bit patterns: two configs hash equal iff
/// the simulation would compute the same statistics.
class Fnv1a {
 public:
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void f32(float v) noexcept { u64(std::bit_cast<std::uint32_t>(v)); }
  template <typename E>
  void enm(E v) noexcept {
    u64(static_cast<std::uint64_t>(v));
  }
  void vec(const std::vector<double>& v) noexcept {
    u64(v.size());
    for (const double x : v) f64(x);
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  void byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= 0x100000001B3ULL;
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

}  // namespace

void CampaignRunner::install_signal_handlers() noexcept {
  std::signal(SIGINT, &handle_drain_signal);
  std::signal(SIGTERM, &handle_drain_signal);
}

void CampaignRunner::request_interrupt() noexcept {
  g_interrupt.store(1, std::memory_order_relaxed);
}
void CampaignRunner::clear_interrupt() noexcept {
  g_interrupt.store(0, std::memory_order_relaxed);
}
bool CampaignRunner::interrupt_requested() noexcept {
  return g_interrupt.load(std::memory_order_relaxed) != 0;
}

void CampaignRunner::join_abandoned_threads() {
  for (;;) {
    std::vector<std::thread> batch;
    {
      const std::lock_guard<std::mutex> lock(g_abandoned_mu);
      batch.swap(abandoned_threads());
    }
    if (batch.empty()) return;
    for (std::thread& th : batch) th.join();
  }
}

// Every field of SimConfig (and of everything it embeds) that influences
// the simulated statistics goes into the fingerprint, in declaration
// order. When SimConfig grows a field, add it here — a missed field means
// resume can silently reuse work computed under different parameters.
std::uint64_t CampaignRunner::params_hash(const core::SimConfig& cfg,
                                          std::size_t n_shards) noexcept {
  Fnv1a h;

  const core::SystemConfig& sys = cfg.system;
  h.u64(sys.seed);
  const core::BandwidthSet& bands = sys.pattern.bands();
  h.f64(bands.sample_rate_hz());
  h.u64(bands.size());
  for (std::size_t i = 0; i < bands.size(); ++i) h.u64(bands.sps(i));
  h.vec(sys.pattern.probabilities());
  h.u64(sys.symbols_per_hop);
  h.u64(sys.hopping ? 1 : 0);
  h.u64(sys.fixed_bw_index);
  h.enm(sys.sync);
  h.enm(sys.filter_policy);
  const core::ControlLogicConfig& logic = sys.logic;
  h.u64(logic.psd_fft);
  h.f64(logic.welch_overlap);
  h.enm(logic.psd_method);
  h.u64(logic.max_lpf_taps);
  h.f64(logic.lpf_atten_db);
  h.f64(logic.lpf_cutoff_factor);
  h.f64(logic.oob_level_ratio);
  h.f64(logic.peak_over_median_db);
  h.f64(logic.excision_match_guard);
  h.f64(logic.excision_floor_rel);
  h.enm(logic.excision_style);
  h.f32(sys.sync_threshold);
  h.u64(sys.reacquisition.max_attempts);
  h.f64(sys.reacquisition.lag_widen);
  h.f32(sys.reacquisition.threshold_decay);
  h.f32(sys.reacquisition.min_threshold);
  h.f32(sys.reacquisition.min_margin);
  h.u64(sys.carrier_tracking ? 1 : 0);
  h.f32(sys.costas_bandwidth);

  const core::JammerSpec& jam = cfg.jammer;
  h.enm(jam.kind);
  h.f64(jam.bandwidth_frac);
  h.vec(jam.hop_probs);
  h.u64(jam.dwell_samples);
  h.u64(jam.reaction_delay);
  h.vec(jam.tone_freqs);
  h.f64(jam.sweep_lo);
  h.f64(jam.sweep_hi);
  h.u64(jam.sweep_samples);
  h.u64(jam.duty_period);
  h.f64(jam.duty_fraction);
  h.u64(jam.sweep_steps);
  h.f64(jam.sweep_bw_frac);
  h.u64(jam.estimation_hops);
  h.u64(jam.estimation_samples);
  h.u64(jam.seed);

  h.f64(cfg.snr_db);
  h.f64(cfg.jnr_db);
  h.u64(cfg.payload_len);
  h.u64(cfg.n_packets);
  h.u64(cfg.channel_seed);
  h.u64(cfg.impairments ? 1 : 0);
  h.u64(cfg.max_delay);
  h.f32(cfg.max_cfo);

  const fault::FaultConfig& f = cfg.faults;
  h.u64(f.seed);
  h.f64(f.p_burst);
  h.f64(f.burst_power_db);
  h.f64(f.burst_len_frac);
  h.f64(f.p_fade);
  h.f64(f.fade_depth_db);
  h.f64(f.fade_len_frac);
  h.f64(f.p_drop);
  h.u64(f.drop_max);
  h.f64(f.p_dup);
  h.u64(f.dup_max);
  h.f64(f.p_clock_jump);
  h.u64(f.jump_max);
  h.u64(f.jump_offset_max);
  h.f64(f.p_cfo_step);
  h.f64(f.cfo_step_max);
  h.f64(f.p_corrupt);
  h.u64(f.corrupt_max);

  const adapt::AdaptConfig& a = cfg.adapt;
  h.u64(a.enabled ? 1 : 0);
  h.u64(a.detector.window_packets);
  h.f64(a.detector.bad_fraction);
  h.u64(a.detector.min_bad);
  h.u64(a.detector.trip_windows);
  h.u64(a.detector.clear_windows);
  h.f64(a.adapter.deweight);
  h.u64(a.adapter.deweight_cap);
  h.f64(a.adapter.min_occupancy);
  h.f64(a.adapter.recover_step);
  h.f64(a.adapter.snap_tolerance);
  h.u64(a.fallback_windows);
  h.u64(a.recovery_windows);
  h.u64(a.min_symbols_per_hop);
  h.u64(a.degraded_dwell_shift);

  h.u64(n_shards);
  return h.digest();
}

CampaignRunner::CampaignRunner(CampaignOptions options, CheckpointJournal* journal)
    : options_(options), pool_(options.n_threads), journal_(journal) {
  BHSS_REQUIRE(options_.n_shards >= 1, "CampaignRunner: n_shards must be >= 1");
  BHSS_REQUIRE(options_.max_attempts >= 1, "CampaignRunner: max_attempts must be >= 1");
  options_.partition.validate();
}

core::LinkStats CampaignRunner::run_point(const std::string& point_id,
                                          const core::SimConfig& cfg) {
  BHSS_REQUIRE(point_id.find_first_of(" \t\n") == std::string::npos,
               "CampaignRunner: point id must be whitespace-free");
  const std::size_t n_shards = options_.n_shards;
  const JournalKey key{point_id, params_hash(cfg, n_shards)};

  const bool want_obs = static_cast<bool>(telemetry_sink);
  std::vector<core::LinkStats> slots(n_shards);
  std::vector<obs::ShardTelemetry> telemetry;
  if (want_obs) telemetry.resize(n_shards);

  std::size_t quarantined = 0;
  std::vector<std::size_t> pending;
  for (std::size_t shard = 0; shard < n_shards; ++shard) {
    // Fleet mode: shards owned by other workers are neither simulated nor
    // looked up — they stay default in `slots`, making this worker's
    // merge partial (see run_point's contract note in the header).
    if (!options_.partition.owns(shard)) continue;
    if (journal_ != nullptr) {
      if (const core::LinkStats* done = journal_->find_shard(key, shard)) {
        if (want_obs) {
          const std::string* blob = journal_->find_shard_obs(key, shard);
          if (blob == nullptr || !obs::deserialize_telemetry(*blob, telemetry[shard])) {
            // Journaled before telemetry was requested (or blob is
            // unreadable): re-run the shard. The replay is deterministic,
            // so the stats it re-journals are bit-identical.
            pending.push_back(shard);
            continue;
          }
        }
        slots[shard] = *done;
        continue;
      }
      if (journal_->shard_quarantined(key, shard)) {
        ++quarantined;  // lost in a previous run; stays accounted, not re-hung
        continue;
      }
    }
    pending.push_back(shard);
  }

  std::size_t retried = 0;
  if (!pending.empty()) {
    if (interrupt_requested()) {
      if (journal_ != nullptr) journal_->flush();
      throw CampaignInterrupted();
    }
    std::vector<obs::ShardTelemetry>* tele = want_obs ? &telemetry : nullptr;
    if (options_.shard_timeout_s > 0.0) {
      execute_watchdogged(key, cfg, std::move(pending), slots, tele, retried, quarantined);
    } else {
      execute_pooled(key, cfg, pending, slots, tele);
    }
  }

  core::LinkStats merged =
      merge_point_results(slots, want_obs ? &telemetry : nullptr, cfg.payload_len, nullptr);
  merged.shard_timeout += quarantined;
  merged.shard_retried += retried;
  if (want_obs) telemetry_sink(point_id, cfg, merged, telemetry);
  return merged;
}

void CampaignRunner::execute_pooled(const JournalKey& key, const core::SimConfig& cfg,
                                    const std::vector<std::size_t>& pending,
                                    std::vector<core::LinkStats>& slots,
                                    std::vector<obs::ShardTelemetry>* telemetry) {
  std::vector<std::uint8_t> skipped(pending.size(), 0);
  pool_.parallel_for_shards(pending.size(), [&](std::size_t i) {
    if (interrupt_requested()) {  // drain: in-flight shards finish, new ones don't start
      skipped[i] = 1;
      return;
    }
    const std::size_t shard = pending[i];
    if (shard_hook) shard_hook(shard, 0);
    const auto range =
        ParallelLinkRunner::shard_range(cfg.n_packets, options_.n_shards, shard);
    const obs::LinkObs o =
        telemetry != nullptr ? (*telemetry)[shard].obs() : obs::LinkObs{};
    if (range.count != 0) {
      slots[shard] =
          core::run_link_shard(cfg, range.first, range.count,
                               ParallelLinkRunner::shard_seeds(cfg, shard), o);
    }
    if (journal_ != nullptr) {
      if (telemetry != nullptr) {
        const std::string blob = obs::serialize_telemetry((*telemetry)[shard]);
        journal_->record_shard(key, shard, slots[shard], &blob);
      } else {
        journal_->record_shard(key, shard, slots[shard]);
      }
      if (shard_journaled_hook) shard_journaled_hook(shard);
    }
  });
  for (const std::uint8_t s : skipped) {
    if (s != 0) {
      if (journal_ != nullptr) journal_->flush();
      throw CampaignInterrupted();
    }
  }
}

void CampaignRunner::execute_watchdogged(const JournalKey& key, const core::SimConfig& cfg,
                                         std::vector<std::size_t> pending,
                                         std::vector<core::LinkStats>& slots,
                                         std::vector<obs::ShardTelemetry>* telemetry,
                                         std::size_t& retried_shards,
                                         std::size_t& quarantined_shards) {
  using clock = std::chrono::steady_clock;
  const auto budget = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(options_.shard_timeout_s));
  const std::size_t width = pool_.size();

  std::vector<std::uint8_t> timed_out_before(options_.n_shards, 0);

  for (std::size_t attempt = 0; attempt < options_.max_attempts && !pending.empty();
       ++attempt) {
    if (attempt > 0) {
      const double backoff =
          options_.backoff_base_s * static_cast<double>(std::size_t{1} << (attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }

    std::vector<std::size_t> timed_out;
    for (std::size_t start = 0; start < pending.size(); start += width) {
      if (interrupt_requested()) {
        if (journal_ != nullptr) journal_->flush();
        throw CampaignInterrupted();
      }
      const std::size_t end = std::min(start + width, pending.size());

      // One watchdogged thread per shard in this chunk. A shard that
      // overruns its budget is abandoned (parked in the registry) — its
      // thread keeps running to completion in the background, but its
      // result is discarded so a genuinely hung shard cannot stall the
      // campaign.
      // The attempt's result travels by value through the future — a
      // timed-out attempt's telemetry dies with its abandoned thread
      // instead of racing a retry writing into a shared slot.
      struct ShardOutcome {
        core::LinkStats stats;
        obs::ShardTelemetry telemetry;
      };
      struct Flight {
        std::size_t shard = 0;
        std::thread thread;
        std::future<ShardOutcome> result;
      };
      std::vector<Flight> flights;
      flights.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t shard = pending[i];
        std::packaged_task<ShardOutcome()> task(
            [cfg, shard, attempt, hook = shard_hook, n_shards = options_.n_shards,
             want_obs = telemetry != nullptr]() {
              if (hook) hook(shard, attempt);
              const auto range = ParallelLinkRunner::shard_range(cfg.n_packets, n_shards, shard);
              ShardOutcome out;
              if (range.count != 0) {
                const obs::LinkObs o = want_obs ? out.telemetry.obs() : obs::LinkObs{};
                out.stats = core::run_link_shard(cfg, range.first, range.count,
                                                 ParallelLinkRunner::shard_seeds(cfg, shard), o);
              }
              return out;
            });
        Flight flight;
        flight.shard = shard;
        flight.result = task.get_future();
        flight.thread = std::thread(std::move(task));
        flights.push_back(std::move(flight));
      }

      const auto deadline = clock::now() + budget;
      for (Flight& flight : flights) {
        if (flight.result.wait_until(deadline) == std::future_status::ready) {
          flight.thread.join();
          ShardOutcome out = flight.result.get();
          slots[flight.shard] = out.stats;
          if (telemetry != nullptr) (*telemetry)[flight.shard] = std::move(out.telemetry);
          if (journal_ != nullptr) {
            if (telemetry != nullptr) {
              const std::string blob = obs::serialize_telemetry((*telemetry)[flight.shard]);
              journal_->record_shard(key, flight.shard, slots[flight.shard], &blob);
            } else {
              journal_->record_shard(key, flight.shard, slots[flight.shard]);
            }
            if (shard_journaled_hook) shard_journaled_hook(flight.shard);
          }
          if (timed_out_before[flight.shard] != 0) ++retried_shards;
        } else {
          park_abandoned(std::move(flight.thread));
          timed_out_before[flight.shard] = 1;
          timed_out.push_back(flight.shard);
        }
      }
    }
    pending = std::move(timed_out);
  }

  // Out of attempts: quarantine what is left. The merge proceeds without
  // these shards' packets; the loss is visible as `shard_timeout`.
  for (const std::size_t shard : pending) {
    slots[shard] = core::LinkStats{};
    if (journal_ != nullptr) journal_->record_quarantine(key, shard, options_.max_attempts);
    ++quarantined_shards;
  }
}

double CampaignRunner::min_snr_for_per(const std::string& point_id,
                                       const core::SimConfig& cfg, double target_per,
                                       double lo_db, double hi_db, double tol_db) {
  BHSS_REQUIRE(!options_.partition.distributed(),
               "CampaignRunner: min_snr_for_per cannot run on a worker slice — "
               "partial-shard PER would steer each worker down a different bisection "
               "path; compute bisections in the supervisor's final pass");
  std::size_t probe = 0;
  return core::min_snr_for_per(
      cfg,
      [this, &point_id, &probe](const core::SimConfig& c) {
        char id[288];
        std::snprintf(id, sizeof(id), "%s/p%zu", point_id.c_str(), probe++);
        return run_point(id, c).per();
      },
      target_per, lo_db, hi_db, tol_db);
}

}  // namespace bhss::runtime
