#include "runtime/parallel_link_runner.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "core/shared_random.hpp"

namespace bhss::runtime {
namespace {

/// Stream ids for the per-shard seed split. Fixed forever: changing them
/// silently re-rolls every recorded experiment.
constexpr std::uint64_t kChannelStream = 0x11;
constexpr std::uint64_t kImpairmentStream = 0x22;
constexpr std::uint64_t kJammerStream = 0x33;

}  // namespace

ParallelLinkRunner::ParallelLinkRunner(RunnerOptions options)
    : options_(options), pool_(options.n_threads) {
  BHSS_REQUIRE(options_.n_shards >= 1, "ParallelLinkRunner: n_shards must be >= 1");
}

core::ShardSeeds ParallelLinkRunner::shard_seeds(const core::SimConfig& cfg,
                                                 std::size_t shard) noexcept {
  using core::SharedRandom;
  return core::ShardSeeds{
      SharedRandom::split_seed(cfg.channel_seed, kChannelStream, shard),
      SharedRandom::split_seed(cfg.channel_seed, kImpairmentStream, shard),
      SharedRandom::split_seed(cfg.jammer.seed, kJammerStream, shard),
  };
}

ParallelLinkRunner::ShardRange ParallelLinkRunner::shard_range(std::size_t n_packets,
                                                               std::size_t n_shards,
                                                               std::size_t shard) noexcept {
  const std::size_t base = n_packets / n_shards;
  const std::size_t extra = n_packets % n_shards;
  return {shard * base + std::min(shard, extra), base + (shard < extra ? 1 : 0)};
}

core::LinkStats ParallelLinkRunner::run(const core::SimConfig& cfg) {
  return run(cfg, nullptr);
}

core::LinkStats ParallelLinkRunner::run(const core::SimConfig& cfg,
                                        std::vector<obs::ShardTelemetry>* telemetry) {
  const std::size_t n_shards = options_.n_shards;
  std::vector<core::LinkStats> parts(n_shards);
  if (telemetry != nullptr) {
    telemetry->clear();
    telemetry->resize(n_shards);
  }
  pool_.parallel_for_shards(n_shards, [&](std::size_t shard) {
    const ShardRange range = shard_range(cfg.n_packets, n_shards, shard);
    if (range.count == 0) return;
    const obs::LinkObs o =
        telemetry != nullptr ? (*telemetry)[shard].obs() : obs::LinkObs{};
    parts[shard] =
        core::run_link_shard(cfg, range.first, range.count, shard_seeds(cfg, shard), o);
  });
  return merge_point_results(parts, telemetry, cfg.payload_len, nullptr);
}

double ParallelLinkRunner::min_snr_for_per(const core::SimConfig& cfg, double target_per,
                                           double lo_db, double hi_db, double tol_db) {
  return core::min_snr_for_per(
      cfg, [this](const core::SimConfig& c) { return run(c).per(); }, target_per, lo_db,
      hi_db, tol_db);
}

double ParallelLinkRunner::power_advantage_db(const core::SimConfig& a,
                                              const core::SimConfig& b, double target_per) {
  return min_snr_for_per(b, target_per) - min_snr_for_per(a, target_per);
}

core::LinkStats merge_point_results(const std::vector<core::LinkStats>& stats,
                                    const std::vector<obs::ShardTelemetry>* telemetry,
                                    std::size_t payload_len,
                                    obs::ShardTelemetry* merged_telemetry) {
  BHSS_REQUIRE(telemetry == nullptr || telemetry->size() == stats.size(),
               "merge_point_results: stats and telemetry must cover the same shards");
  core::LinkStats merged = core::merge_link_stats(stats, payload_len);
  if (telemetry != nullptr && merged_telemetry != nullptr) {
    *merged_telemetry = obs::merge_telemetry(*telemetry, stats.size());
  }
  return merged;
}

}  // namespace bhss::runtime
