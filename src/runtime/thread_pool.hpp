#pragma once

/// @file thread_pool.hpp
/// Fixed-shard fork-join pool for the Monte-Carlo runtime. Deliberately
/// work-stealing-free: work is expressed as a fixed number of independent
/// shards, every shard writes only its own result slot, and the caller
/// merges slots in shard order — so the *outcome* of a parallel run is a
/// pure function of (inputs, n_shards), never of thread count or
/// scheduling. Threads only decide how fast the answer arrives.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bhss::runtime {

/// Persistent fork-join worker pool.
///
/// `parallel_for_shards(n, fn)` runs fn(0) ... fn(n-1) exactly once each,
/// distributed over the workers plus the calling thread, and returns when
/// all shards finished. Shards are claimed from a shared atomic counter
/// (no stealing, no per-shard queues). When shards throw, the exception
/// from the LOWEST shard index is rethrown on the caller after the join —
/// a deterministic choice, unlike first-to-throw, which would race with
/// the scheduler and surface a different error on every run.
///
/// Not reentrant: a shard must not call back into the same pool.
class ThreadPool {
 public:
  /// @param n_threads total concurrency including the calling thread;
  ///                  0 means hardware_threads(). With n_threads == 1 the
  ///                  pool spawns no workers and runs shards inline.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

  /// Run fn(shard) for every shard in [0, n_shards); blocks until done.
  void parallel_for_shards(std::size_t n_shards, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_shards(const std::function<void(std::size_t)>& fn, std::size_t n_shards);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;  ///< wakes workers on a new generation
  std::condition_variable done_cv_;   ///< wakes the caller when workers drain
  std::uint64_t generation_ = 0;      ///< bumps once per parallel_for_shards
  bool stop_ = false;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_shards_ = 0;
  std::size_t workers_running_ = 0;
  std::exception_ptr error_;        ///< from the lowest-index failing shard
  std::size_t error_shard_ = 0;     ///< shard index error_ came from

  std::atomic<std::size_t> next_shard_{0};
};

}  // namespace bhss::runtime
