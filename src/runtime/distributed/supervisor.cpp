#include "runtime/distributed/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/contracts.hpp"
#include "runtime/campaign.hpp"

namespace bhss::runtime::distributed {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

/// Bookkeeping for one fleet slot across incarnations.
struct WorkerSlot {
  enum class State { idle, running, done, drained_final, failed };

  State state = State::idle;
  pid_t pid = -1;
  std::size_t restarts = 0;
  bool term_sent = false;             ///< SIGTERM already escalating
  Clock::time_point term_at{};
  Clock::time_point progress_at{};    ///< last observed journal growth
  Clock::time_point backoff_until{};  ///< earliest respawn time
  off_t journal_size = -1;
};

off_t file_size(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// fork/exec one worker with stdout+stderr appended to `log_path`.
/// Returns -1 when the fork itself failed (resource exhaustion).
pid_t spawn(const std::vector<std::string>& argv, const std::string& log_path) {
  BHSS_REQUIRE(!argv.empty(), "CampaignSupervisor: worker command is empty");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid != 0) return pid;

  // Child. Only async-signal-safe calls from here to exec.
  const int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    if (log_fd > STDERR_FILENO) ::close(log_fd);
  }
  ::execvp(cargv[0], cargv.data());
  ::_exit(127);  // exec failed; counted as a crash by the parent
}

}  // namespace

CampaignSupervisor::CampaignSupervisor(SupervisorOptions options, WorkerCommand command)
    : options_(std::move(options)), command_(std::move(command)) {
  BHSS_REQUIRE(options_.n_workers >= 1, "CampaignSupervisor: n_workers must be >= 1");
  BHSS_REQUIRE(!options_.journal_base.empty(),
               "CampaignSupervisor: journal_base is required");
  BHSS_REQUIRE(static_cast<bool>(command_), "CampaignSupervisor: command builder required");
}

std::string CampaignSupervisor::worker_journal_path(const std::string& base,
                                                    std::size_t worker) {
  return base + ".w" + std::to_string(worker);
}

FleetResult CampaignSupervisor::run() {
  FleetResult result;
  std::vector<WorkerSlot> slots(options_.n_workers);
  for (std::size_t i = 0; i < options_.n_workers; ++i) {
    result.worker_journals.push_back(worker_journal_path(options_.journal_base, i));
  }

  bool drain_broadcast = false;
  const auto launch = [&](std::size_t i) {
    WorkerSlot& slot = slots[i];
    const std::string& journal = result.worker_journals[i];
    const std::vector<std::string> argv = command_(i, file_exists(journal));
    const pid_t pid = spawn(argv, journal + ".log");
    if (pid < 0) throw std::runtime_error("CampaignSupervisor: fork failed");
    slot.pid = pid;
    slot.state = WorkerSlot::State::running;
    slot.term_sent = false;
    slot.progress_at = Clock::now();
    slot.journal_size = file_size(journal);
  };

  const auto respawn_or_fail = [&](std::size_t i, const char* why) {
    WorkerSlot& slot = slots[i];
    if (slot.restarts >= options_.max_restarts) {
      // Budget exhausted: quarantine this worker's shard range from fleet
      // execution. The final publish pass recomputes it in-process.
      slot.state = WorkerSlot::State::failed;
      result.failed_workers.push_back(i);
      std::fprintf(stderr,
                   "supervisor: worker %zu gave out after %zu restarts (%s); "
                   "quarantining its shard range for the final pass\n",
                   i, slot.restarts, why);
      return;
    }
    ++slot.restarts;
    ++result.fleet.worker_restarts;
    const double backoff =
        options_.backoff_base_s * static_cast<double>(1ULL << (slot.restarts - 1));
    slot.backoff_until = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                            std::chrono::duration<double>(backoff));
    slot.state = WorkerSlot::State::idle;
    slot.pid = -1;
  };

  const auto reap = [&](std::size_t i, int status) {
    WorkerSlot& slot = slots[i];
    slot.pid = -1;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      slot.state = WorkerSlot::State::done;
      return;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 75) {
      // Graceful drain: clean journal tail, resumable. Expected under a
      // requested drain; under a stray external SIGTERM the worker is
      // simply respawned to resume its slice.
      ++result.fleet.worker_drains;
      if (drain_broadcast) {
        slot.state = WorkerSlot::State::drained_final;
      } else {
        respawn_or_fail(i, "drained by external signal");
      }
      return;
    }
    ++result.fleet.worker_crashes;
    respawn_or_fail(i, WIFSIGNALED(status) ? "killed by signal" : "nonzero exit");
  };

  for (std::size_t i = 0; i < options_.n_workers; ++i) launch(i);

  const auto poll = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.poll_interval_s));
  for (;;) {
    // 1. Drain request: broadcast SIGTERM once, then keep reaping.
    if (!drain_broadcast && CampaignRunner::interrupt_requested()) {
      drain_broadcast = true;
      for (WorkerSlot& slot : slots) {
        if (slot.state == WorkerSlot::State::running && slot.pid > 0) {
          ::kill(slot.pid, SIGTERM);
          slot.term_sent = true;
          slot.term_at = Clock::now();
        } else if (slot.state == WorkerSlot::State::idle) {
          slot.state = WorkerSlot::State::drained_final;  // never respawned
        }
      }
    }

    // 2. Reap exits, detect hangs, respawn due workers.
    bool any_pending = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      WorkerSlot& slot = slots[i];
      if (slot.state == WorkerSlot::State::running) {
        int status = 0;
        const pid_t got = ::waitpid(slot.pid, &status, WNOHANG);
        if (got == slot.pid) {
          reap(i, status);
        } else if (options_.hang_timeout_s > 0.0 || slot.term_sent) {
          const off_t size = file_size(result.worker_journals[i]);
          if (size != slot.journal_size) {
            slot.journal_size = size;
            slot.progress_at = Clock::now();
          }
          if (slot.term_sent) {
            if (seconds_since(slot.term_at) > options_.term_grace_s) {
              ::kill(slot.pid, SIGKILL);  // escalation; reaped next poll
              slot.term_sent = false;     // don't re-escalate
            }
          } else if (options_.hang_timeout_s > 0.0 &&
                     seconds_since(slot.progress_at) > options_.hang_timeout_s) {
            // Journal stopped growing: hung (or starved). TERM first so a
            // merely slow worker drains with a clean tail.
            ::kill(slot.pid, SIGTERM);
            slot.term_sent = true;
            slot.term_at = Clock::now();
          }
        }
      } else if (slot.state == WorkerSlot::State::idle) {
        if (drain_broadcast) {
          slot.state = WorkerSlot::State::drained_final;
        } else if (Clock::now() >= slot.backoff_until) {
          launch(i);
        }
      }
      any_pending = any_pending || slot.state == WorkerSlot::State::running ||
                    slot.state == WorkerSlot::State::idle;
    }
    if (!any_pending) break;
    std::this_thread::sleep_for(poll);
  }

  result.drained = drain_broadcast;
  result.completed = !drain_broadcast && result.failed_workers.empty();
  for (const WorkerSlot& slot : slots) {
    result.completed = result.completed && slot.state == WorkerSlot::State::done;
  }
  return result;
}

}  // namespace bhss::runtime::distributed
