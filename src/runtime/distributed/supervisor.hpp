#pragma once

/// @file supervisor.hpp
/// Process-level supervision of a distributed campaign worker fleet.
///
/// `CampaignSupervisor` fork/execs one worker process per fleet slot and
/// babysits them until the campaign's shard set is covered:
///
///  - **Spawn**: worker i's argv comes from a caller-supplied command
///    builder (the bench binary re-execs itself with `--worker-id=i`;
///    tests substitute /bin/sh scripts). stdout/stderr are appended to
///    `<worker journal>.log` so a crashed worker's last words survive it.
///  - **Liveness**: a worker proves progress by growing its journal —
///    every journaled shard is an fsync'd append, and an otherwise idle
///    worker writes `H` heartbeat records. A journal that stops growing
///    for `hang_timeout_s` marks the worker hung: SIGTERM first (a
///    healthy-but-slow worker drains with a clean tail and exit 75), then
///    SIGKILL after `term_grace_s`.
///  - **Restart**: a crashed or hung worker is respawned with `--resume`
///    after exponential backoff; the journal it left behind — torn tail
///    and all — is exactly a kill-and-resume checkpoint, so the respawn
///    recomputes only what was not yet durable. Each respawn consumes the
///    worker's `max_restarts` budget.
///  - **Quarantine**: a worker that exhausts its budget is given up on —
///    its owned shard *range* is quarantined from fleet execution and the
///    worker id is reported in `FleetResult::failed_workers`. The shards
///    themselves are not lost: the supervisor's final publish pass is a
///    normal resumed campaign, which recomputes any shard missing from
///    the merged journal in-process (deterministically, so the published
///    bytes cannot tell the difference).
///  - **Drain**: on SIGINT/SIGTERM (via CampaignRunner's interrupt flag,
///    whose handlers must be installed) the supervisor SIGTERMs the
///    fleet, waits for the workers' own graceful drains (exit 75), and
///    returns with `drained` set so the caller can exit 75 itself.
///
/// Exit-code taxonomy (`FleetResult::fleet` maps it into the LinkStats
/// worker_* counters): 0 = worker finished its slice; 75 = graceful
/// drain, resumable; anything else, or death by signal, is a crash.
/// These counters are *process-level* accounting and are deliberately
/// kept out of the published per-point statistics — a supervised
/// campaign's JSONL/metrics/trace bytes must stay identical to a
/// single-process run no matter how much chaos the fleet absorbed.

#include <functional>
#include <string>
#include <vector>

#include "core/link_simulator.hpp"

namespace bhss::runtime::distributed {

/// Fleet knobs. `journal_base` is the supervisor's own checkpoint path;
/// worker i journals to `<journal_base>.w<i>`.
struct SupervisorOptions {
  std::size_t n_workers = 2;      ///< fleet size (>= 1)
  std::string journal_base;       ///< campaign checkpoint path (required)
  double hang_timeout_s = 0.0;    ///< journal-growth stall budget; 0 = off
  double term_grace_s = 2.0;      ///< SIGTERM -> SIGKILL escalation delay
  std::size_t max_restarts = 3;   ///< respawn budget per worker
  double backoff_base_s = 0.05;   ///< respawn backoff: base * 2^(restart-1)
  double poll_interval_s = 0.05;  ///< supervision loop period
};

/// Builds worker `worker`'s argv. `resume` is true when the worker's
/// journal already exists (any incarnation after the first, or a re-run
/// over a previous fleet's journals) — the worker must then be launched
/// with `--resume`, and one-shot flags like chaos injection must be
/// omitted.
using WorkerCommand =
    std::function<std::vector<std::string>(std::size_t worker, bool resume)>;

/// What the fleet did.
struct FleetResult {
  bool completed = false;  ///< every worker finished its slice (exit 0)
  bool drained = false;    ///< drain requested; fleet exited resumable
  std::vector<std::size_t> failed_workers;  ///< restart budget exhausted
  /// Exit-code taxonomy mapped into the LinkStats failure-taxonomy
  /// fields: worker_restarts (respawns), worker_crashes (signal/nonzero
  /// exit), worker_drains (exit 75). All other fields stay zero.
  core::LinkStats fleet;

  /// Worker journal paths, in worker order — the merge input list.
  std::vector<std::string> worker_journals;
};

/// Supervise one fleet to completion (or drain, or budget exhaustion).
class CampaignSupervisor {
 public:
  CampaignSupervisor(SupervisorOptions options, WorkerCommand command);

  /// Run the fleet. Blocks until every worker is done, drained or given
  /// up on. Never throws on worker failure — that is what the taxonomy
  /// is for; throws std::runtime_error only on supervisor-side
  /// impossibilities (fork failure, empty command).
  [[nodiscard]] FleetResult run();

  /// `<journal_base>.w<worker>` — the partition's journal naming scheme,
  /// shared with the bench worker mode and the chaos harness.
  [[nodiscard]] static std::string worker_journal_path(const std::string& base,
                                                      std::size_t worker);

 private:
  SupervisorOptions options_;
  WorkerCommand command_;
};

}  // namespace bhss::runtime::distributed
