#pragma once

/// @file shard_partition.hpp
/// Deterministic shard → worker assignment for distributed campaigns.
///
/// A fleet of worker processes splits one campaign by *shard*, not by
/// data point: every worker walks the identical point sequence (the
/// sweep loop is deterministic) but simulates only the shards it owns.
/// Ownership is a pure function of (shard, n_workers) — a mod partition:
///
///   owner(shard) = shard % n_workers
///
/// so any worker, restarted any number of times, always recomputes the
/// same slice, and the union over workers 0..n_workers-1 covers every
/// shard exactly once. The partition deliberately does NOT depend on the
/// point id or params hash: per-shard cost is roughly uniform (packets
/// split evenly across shards), and a shard-index stripe keeps each
/// worker's slice interleaved so a quarantined worker range maps to a
/// predictable comb of shard indices rather than a contiguous block of
/// one point.
///
/// The merged result stays a pure function of (SimConfig, n_shards):
/// workers journal per-shard LinkStats under the same keys a
/// single-process run would, `journal-merge` folds the worker journals
/// back into one canonical journal, and the final publish pass replays it
/// exactly like a resumed single-process campaign.

#include <cstddef>

#include "core/contracts.hpp"

namespace bhss::runtime::distributed {

/// One worker's identity inside a fleet. Default-constructed = "not
/// distributed": the single process owns every shard.
struct ShardPartition {
  std::size_t worker_id = 0;  ///< in [0, n_workers)
  std::size_t n_workers = 1;  ///< fleet size (>= 1)

  /// True when this process owns `shard` under the mod partition.
  [[nodiscard]] constexpr bool owns(std::size_t shard) const noexcept {
    return n_workers <= 1 || shard % n_workers == worker_id;
  }

  /// True when this identity actually splits work (fleet of >= 2).
  [[nodiscard]] constexpr bool distributed() const noexcept { return n_workers > 1; }

  /// Number of shards this worker owns out of `n_shards` total.
  [[nodiscard]] constexpr std::size_t owned_count(std::size_t n_shards) const noexcept {
    if (n_workers <= 1) return n_shards;
    return n_shards / n_workers + (shard_of_rank(n_shards) ? 1U : 0U);
  }

  /// Validate the identity (worker_id must index into the fleet).
  void validate() const {
    BHSS_REQUIRE(n_workers >= 1, "ShardPartition: n_workers must be >= 1");
    BHSS_REQUIRE(worker_id < n_workers, "ShardPartition: worker_id must be < n_workers");
  }

 private:
  [[nodiscard]] constexpr bool shard_of_rank(std::size_t n_shards) const noexcept {
    return worker_id < n_shards % n_workers;
  }
};

}  // namespace bhss::runtime::distributed
