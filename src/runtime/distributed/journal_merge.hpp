#pragma once

/// @file journal_merge.hpp
/// Fold N worker checkpoint journals into one canonical journal.
///
/// A distributed campaign leaves one journal per worker process
/// (`<base>.w<i>`), each holding the S/O/Q records of the shards that
/// worker owns under the mod partition (shard_partition.hpp). The merge
/// folds them back into a single journal the supervisor resumes from,
/// under the same contract `merge_point_results` enforces for in-process
/// shard merging:
///
///  - Canonical record order: ascending (point id, params hash, shard),
///    with a shard's `O` line immediately before its `S` line — the byte
///    layout is a pure function of the record *set*, independent of
///    worker completion order or input file order.
///  - Disjointness: worker journals own disjoint shard slices by
///    construction, so the same (point, hash, shard) key appearing in two
///    different worker inputs is a partition violation and rejects the
///    merge — even when the payloads agree. Within one input (a worker
///    that crashed between its O and S lines and replayed), an exact
///    duplicate is benign and deduplicated; a duplicate with a differing
///    payload means non-deterministic recomputation and rejects.
///  - Config coherence: all inputs must carry identical headers (format,
///    schema, figure, build sha), and one point id must map to one params
///    hash across the whole fleet — workers that ran different configs
///    cannot be silently folded.
///  - Torn tails: each input's valid CRC prefix is used and the torn
///    remainder counted, exactly like a single-journal resume.
///  - Heartbeats (`H`) are worker-local liveness and are dropped.
///
/// `base` (optional) is the supervisor's own journal from a previous
/// supervised run: its records are folded in too, but a worker record
/// that *equals* a base record is fine (workers deterministically
/// recompute shards they cannot see in the base journal) — only a
/// payload conflict rejects.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bhss::runtime::distributed {

/// A merge input violated the fold contract (overlap, conflict, header
/// mismatch, unreadable journal). The merged output is not written.
class JournalMergeError : public std::runtime_error {
 public:
  explicit JournalMergeError(const std::string& what)
      : std::runtime_error("journal-merge: " + what) {}
};

/// What one merge did — for the tools binary's report and the
/// supervisor's fleet accounting.
struct MergeReport {
  std::size_t inputs = 0;             ///< journals read (including `base`)
  std::size_t shard_records = 0;      ///< S records in the output
  std::size_t obs_records = 0;        ///< O records in the output
  std::size_t quarantine_records = 0; ///< Q records in the output
  std::size_t point_records = 0;      ///< P records in the output
  std::size_t heartbeats_dropped = 0; ///< H records dropped (worker-local)
  std::size_t duplicates_folded = 0;  ///< benign exact duplicates removed
  std::size_t torn_tails = 0;         ///< inputs whose tail was torn
};

/// Merge `inputs` (worker journals, any order) plus optional `base` (the
/// supervisor's previous journal, "" = none) into a fresh journal at
/// `out_path`. The output is written to `<out_path>.tmp` and atomically
/// renamed, so a crash mid-merge never leaves a half-merged journal at
/// the published path. Throws JournalMergeError on any contract
/// violation; the output path is untouched in that case.
MergeReport merge_journals(const std::vector<std::string>& inputs,
                           const std::string& out_path, const std::string& base = "");

}  // namespace bhss::runtime::distributed
