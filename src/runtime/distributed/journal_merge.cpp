#include "runtime/distributed/journal_merge.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>

#include "runtime/journal_format.hpp"

namespace bhss::runtime::distributed {
namespace {

// Canonical sort key. Kind ranks put a shard's telemetry blob (O)
// immediately before its stats (S) — the order record_shard writes them —
// and published points (P) after every shard of their data point.
enum KindRank : int { kObs = 0, kStats = 1, kQuarantine = 2, kPoint = 3 };

struct RecordKey {
  std::string point;
  std::uint64_t hash = 0;
  std::size_t shard = 0;
  int rank = kStats;

  bool operator<(const RecordKey& other) const {
    return std::tie(point, hash, shard, rank) <
           std::tie(other.point, other.hash, other.shard, other.rank);
  }
};

struct Record {
  std::string body;    ///< full unsealed record body (what gets resealed)
  std::size_t source = 0;  ///< index into the input list (for diagnostics)
  bool from_base = false;
};

struct ParsedInput {
  journal::Header header;
  std::vector<std::pair<RecordKey, Record>> records;
  std::size_t heartbeats = 0;
  bool torn = false;
};

// Split one record body into its canonical key. Returns false for
// heartbeats (dropped) ; throws for bodies that unsealed cleanly but make
// no sense as any known record kind (a valid CRC guarantees the bytes are
// what was written, so this is a foreign or future-format file, not rot).
bool classify(const std::string& body, const std::string& path, RecordKey& key) {
  char point[192] = {0};
  std::uint64_t hash = 0;
  std::size_t shard = 0;
  if (std::sscanf(body.c_str(), "S %191s %" SCNx64 " %zu", point, &hash, &shard) == 3) {
    key = {point, hash, shard, kStats};
    return true;
  }
  if (std::sscanf(body.c_str(), "O %191s %" SCNx64 " %zu", point, &hash, &shard) == 3) {
    key = {point, hash, shard, kObs};
    return true;
  }
  if (std::sscanf(body.c_str(), "Q %191s %" SCNx64 " %zu", point, &hash, &shard) == 3) {
    key = {point, hash, shard, kQuarantine};
    return true;
  }
  if (std::sscanf(body.c_str(), "P %191s %" SCNx64, point, &hash) == 2) {
    key = {point, hash, 0, kPoint};
    return true;
  }
  if (body.size() >= 2 && body[0] == 'H' && body[1] == ' ') return false;
  throw JournalMergeError("unknown record kind in " + path + ": '" +
                          body.substr(0, 32) + "...'");
}

// Read one journal: verify the header, collect the valid CRC prefix and
// note whether the tail was torn. Mirrors CheckpointJournal::load_existing
// but never mutates the input file.
ParsedInput read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalMergeError("cannot read " + path);

  ParsedInput parsed;
  std::string line;
  bool saw_header = false;
  bool clean_end = true;
  while (std::getline(in, line)) {
    const bool had_newline = !in.eof();
    std::string body;
    if (!journal::unseal_line(line, body) || !had_newline) {
      // A final line without its newline is a torn append even when the
      // CRC happens to validate (the write was cut mid-line).
      clean_end = journal::unseal_line(line, body) && had_newline;
      break;
    }
    if (!saw_header) {
      if (!journal::parse_header(body, parsed.header)) {
        throw JournalMergeError(path + " has no valid journal header");
      }
      saw_header = true;
      continue;
    }
    RecordKey key;
    if (!classify(body, path, key)) {
      ++parsed.heartbeats;
      continue;
    }
    parsed.records.emplace_back(key, Record{body, 0, false});
  }
  if (!saw_header) throw JournalMergeError(path + " has no valid journal header");
  parsed.torn = !clean_end || in.peek() != std::ifstream::traits_type::eof();
  return parsed;
}

void require_same_header(const journal::Header& ref, const journal::Header& got,
                         const std::string& ref_path, const std::string& path) {
  if (got.format_version != ref.format_version) {
    throw JournalMergeError("format version mismatch: " + path + " is v" +
                            std::to_string(got.format_version) + ", " + ref_path +
                            " is v" + std::to_string(ref.format_version));
  }
  if (got.schema_version != ref.schema_version) {
    throw JournalMergeError("schema version mismatch: " + path + " has schema=" +
                            std::to_string(got.schema_version) + ", " + ref_path +
                            " has schema=" + std::to_string(ref.schema_version));
  }
  if (got.figure_id != ref.figure_id) {
    throw JournalMergeError("figure mismatch: " + path + " belongs to '" + got.figure_id +
                            "', " + ref_path + " to '" + ref.figure_id + "'");
  }
  if (got.build_sha != ref.build_sha) {
    throw JournalMergeError("build mismatch: " + path + " was written by git=" +
                            got.build_sha + ", " + ref_path + " by git=" + got.build_sha +
                            " vs " + ref.build_sha +
                            " — cross-binary determinism is not guaranteed");
  }
}

}  // namespace

MergeReport merge_journals(const std::vector<std::string>& inputs,
                           const std::string& out_path, const std::string& base) {
  if (inputs.empty() && base.empty()) {
    throw JournalMergeError("no input journals");
  }

  MergeReport report;
  std::map<RecordKey, Record> merged;          // canonical order by construction
  std::map<std::string, std::uint64_t> point_hash;  // point id -> params hash

  std::string ref_path;
  journal::Header ref_header;

  const auto fold_one = [&](const std::string& path, std::size_t source, bool from_base) {
    ParsedInput parsed = read_journal(path);
    ++report.inputs;
    if (parsed.torn) ++report.torn_tails;
    report.heartbeats_dropped += parsed.heartbeats;
    if (ref_path.empty()) {
      ref_path = path;
      ref_header = parsed.header;
    } else {
      require_same_header(ref_header, parsed.header, ref_path, path);
    }
    for (auto& [key, record] : parsed.records) {
      record.source = source;
      record.from_base = from_base;

      // One point id must map to one params hash fleet-wide: two hashes
      // mean two workers simulated different configs under the same name.
      const auto hash_it = point_hash.find(key.point);
      if (hash_it == point_hash.end()) {
        point_hash.emplace(key.point, key.hash);
      } else if (hash_it->second != key.hash) {
        char want[24];
        char got[24];
        std::snprintf(want, sizeof(want), "%016" PRIx64, hash_it->second);
        std::snprintf(got, sizeof(got), "%016" PRIx64, key.hash);
        throw JournalMergeError("params-hash conflict for point '" + key.point + "': " +
                                want + " vs " + got + " (in " + path +
                                ") — the fleet did not run one configuration");
      }

      const auto [it, inserted] = merged.emplace(key, record);
      if (inserted) continue;
      if (it->second.body != record.body) {
        throw JournalMergeError(
            "conflicting records for point '" + key.point + "' shard " +
            std::to_string(key.shard) + " (" + path +
            " disagrees with an earlier input) — shards must replay to identical bytes");
      }
      // Identical bytes. Within one journal (or against the supervisor's
      // base journal) that is a benign deterministic replay; across two
      // *worker* journals it means two workers claimed the same shard —
      // the partition was violated even though the results agree.
      const bool same_worker_file = !it->second.from_base && !record.from_base &&
                                    it->second.source == record.source;
      const bool involves_base = it->second.from_base || record.from_base;
      if (same_worker_file || involves_base) {
        ++report.duplicates_folded;
        it->second.from_base = it->second.from_base && record.from_base;
        continue;
      }
      throw JournalMergeError("overlapping shard ownership: point '" + key.point +
                              "' shard " + std::to_string(key.shard) +
                              " appears in two worker journals (" + path +
                              " and an earlier input) — the shard partition must be "
                              "disjoint");
    }
  };

  if (!base.empty()) fold_one(base, static_cast<std::size_t>(-1), true);
  for (std::size_t i = 0; i < inputs.size(); ++i) fold_one(inputs[i], i, false);

  // Stage + atomic publish, mirroring CheckpointJournal::open's fresh-file
  // path: a crash mid-merge never leaves a half-merged journal visible.
  const std::string tmp = out_path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) throw JournalMergeError("cannot create " + tmp);
  const std::string header = journal::seal_line(journal::format_header(
      ref_header.schema_version, ref_header.figure_id, ref_header.build_sha));
  bool ok = std::fprintf(out, "%s\n", header.c_str()) > 0;
  for (const auto& [key, record] : merged) {
    ok = ok && std::fprintf(out, "%s\n", journal::seal_line(record.body).c_str()) > 0;
    switch (key.rank) {
      case kStats: ++report.shard_records; break;
      case kObs: ++report.obs_records; break;
      case kQuarantine: ++report.quarantine_records; break;
      case kPoint: ++report.point_records; break;
      default: break;
    }
  }
  ok = ok && std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!ok) {
    std::remove(tmp.c_str());
    throw JournalMergeError("write failed on " + tmp);
  }
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw JournalMergeError("cannot publish " + tmp + " to " + out_path);
  }
  return report;
}

}  // namespace bhss::runtime::distributed
