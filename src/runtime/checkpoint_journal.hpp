#pragma once

/// @file checkpoint_journal.hpp
/// Crash-safe progress journal for long Monte-Carlo campaigns.
///
/// Reproducing a paper figure at full scale (10k packets per data point,
/// dozens of (SNR, jammer-bandwidth, hop-pattern) sweeps) runs for hours;
/// a crash, OOM-kill or Ctrl-C must not lose the finished work. The
/// journal records every completed (data-point, shard) work unit of a
/// campaign as one CRC-protected line in an append-only file:
///
///   bhss-journal v1 schema=<n> figure=<id> git=<sha> crc=XXXX
///   S <point> <params-hash> <shard> <LinkStats fields...> crc=XXXX
///   O <point> <params-hash> <shard> <telemetry blob...> crc=XXXX
///   Q <point> <params-hash> <shard> <attempts> crc=XXXX
///   P <point> <params-hash> <payload...> crc=XXXX
///   H <worker-id> <sequence> crc=XXXX
///
/// `S` journals the bit-exact statistics of one finished simulation shard
/// (doubles stored as IEEE-754 bit patterns, so replay merges to the same
/// bits), `O` the shard's serialized telemetry when the campaign records
/// it (written immediately before its `S` line, so a journaled shard with
/// no blob can only mean telemetry was off), `Q` quarantines a shard the
/// watchdog gave up on, `P` stores the published JSONL record of a
/// completed data point verbatim, and `H` is a worker heartbeat — a
/// liveness breadcrumb for the process-level supervisor that carries no
/// campaign state (skipped on replay, dropped by journal-merge). Binaries
/// predating a record kind treat such a line as a torn tail; the bench
/// schema_version is bumped alongside format additions so mixed-schema
/// resumes are rejected up front.
///
/// Durability contract:
///  - The file is *created* by writing the header to `<path>.tmp`,
///    fsync'ing, and atomically renaming onto `<path>` — a crash during
///    creation never leaves a half-written journal at the published path.
///  - Every appended record is flushed and fsync'd before the append call
///    returns: once a work unit is reported done, it survives SIGKILL.
///  - A torn tail (the crash landed mid-write) is detected by the per-line
///    CRC-16 on load; the valid prefix is kept and the file is truncated
///    back to it before appending resumes.
///
/// Keys are `(point id, params hash)`: a record whose params hash does not
/// match the current configuration is ignored on lookup, so editing a
/// sweep's parameters safely invalidates stale work instead of reusing it.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/link_simulator.hpp"

namespace bhss::runtime {

/// A journal append could not be made durable (ENOSPC, short write, fsync
/// failure). The record is NOT on disk — or is a torn half-line the next
/// resume's CRC scan will truncate — so the caller must not account the
/// work unit as checkpointed. The journal refuses further appends after
/// the first write failure: interleaving records after a hole would leave
/// a journal whose valid prefix lies about campaign progress.
class JournalWriteError : public std::runtime_error {
 public:
  explicit JournalWriteError(const std::string& what);
};

/// Identity of one data point inside a campaign. `point_id` must be
/// whitespace-free (it is a token in the journal's line format);
/// `params_hash` fingerprints every simulation parameter that can change
/// the result (see CampaignRunner::params_hash).
struct JournalKey {
  std::string point_id;
  std::uint64_t params_hash = 0;
};

/// Append-only, CRC-protected campaign checkpoint file. All appends are
/// thread-safe (worker shards report completion concurrently) and fsync'd.
class CheckpointJournal {
 public:
  /// Journal line-format version. Bump when the record layout changes;
  /// a resumed journal with a different version is rejected.
  static constexpr int kFormatVersion = 1;

  CheckpointJournal() = default;
  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Open `path` for a campaign identified by `figure_id`.
  /// With `resume` set, an existing journal is loaded (records replayed
  /// into the lookup maps, torn tail truncated) — the header's figure id
  /// must match. Without `resume`, any existing file at `path` is
  /// replaced. `schema_version`/`build_sha` are stamped into the header of
  /// a fresh journal so merged journals from different binaries are
  /// detectable. Throws std::runtime_error on I/O failure or header
  /// mismatch.
  void open(const std::string& path, const std::string& figure_id, int schema_version,
            const std::string& build_sha, bool resume);

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Number of valid records loaded by a resume open.
  [[nodiscard]] std::size_t replayed_records() const noexcept { return replayed_; }
  /// True when the resume load found (and truncated) a torn tail.
  [[nodiscard]] bool tail_truncated() const noexcept { return tail_truncated_; }

  // -- lookups (journal state loaded at open + records appended since) --

  /// Stats of a completed shard, or nullptr when the unit is not journaled
  /// (or was journaled under a different params hash).
  [[nodiscard]] const core::LinkStats* find_shard(const JournalKey& key,
                                                  std::size_t shard) const;

  /// Serialized telemetry of a completed shard (`O` record), or nullptr
  /// when the shard ran without telemetry (or is not journaled).
  [[nodiscard]] const std::string* find_shard_obs(const JournalKey& key,
                                                  std::size_t shard) const;

  /// True when the shard was quarantined by the watchdog in a previous
  /// run: resume accounts it as `shard_timeout` instead of re-hanging.
  [[nodiscard]] bool shard_quarantined(const JournalKey& key, std::size_t shard) const;

  /// Published payload of a completed data point, or nullptr.
  [[nodiscard]] const std::string* find_point(const JournalKey& key) const;

  // -- appends (thread-safe, fsync'd before return) --

  /// `obs_blob` (optional) is the shard's serialized telemetry
  /// (obs::serialize_telemetry); when present its `O` line is written
  /// *before* the `S` line under one lock, so a crash between the two
  /// leaves a shard that will simply be re-run on resume.
  void record_shard(const JournalKey& key, std::size_t shard, const core::LinkStats& stats,
                    const std::string* obs_blob = nullptr);
  void record_quarantine(const JournalKey& key, std::size_t shard, std::size_t attempts);
  /// `payload` must be newline-free; it is stored verbatim (the campaign
  /// stores the final stamped JSONL record so resume republishes the
  /// exact bytes).
  void record_point(const JournalKey& key, const std::string& payload);

  /// Append a worker liveness heartbeat (`H` record). The supervisor
  /// watches the journal grow to distinguish a slow shard from a hung
  /// worker; heartbeats carry no campaign state and are skipped on replay.
  void record_heartbeat(std::size_t worker_id, std::size_t sequence);

  /// Test hook: fail appends as if the disk filled after `bytes` more
  /// bytes reach the file. The partial line that fits is really written
  /// (producing a genuine torn tail for resume tests); the append that
  /// exceeds the budget throws JournalWriteError.
  void simulate_disk_full_after(std::size_t bytes);

  /// Flush + fsync any buffered bytes (appends already fsync; this is for
  /// the graceful-shutdown drain path to be explicit).
  void flush();

  /// Close the journal file (lookup maps stay usable).
  void close();

 private:
  void append_line(const std::string& body);
  void load_existing(const std::string& figure_id, int schema_version);

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t replayed_ = 0;
  bool tail_truncated_ = false;
  bool write_failed_ = false;

  static constexpr std::size_t kNoWriteBudget = static_cast<std::size_t>(-1);
  std::size_t write_budget_ = kNoWriteBudget;  ///< disk-full simulation hook

  // Keyed by "<point> <hash-hex> <shard>" / "<point> <hash-hex>".
  std::unordered_map<std::string, core::LinkStats> shards_;
  std::unordered_map<std::string, std::string> shard_obs_;
  std::unordered_map<std::string, std::size_t> quarantined_;
  std::unordered_map<std::string, std::string> points_;
};

}  // namespace bhss::runtime
