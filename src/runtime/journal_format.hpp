#pragma once

/// @file journal_format.hpp
/// The checkpoint journal's line format, factored out of CheckpointJournal
/// so every consumer of journal bytes — the journal itself, the
/// `journal-merge` fold (src/runtime/distributed) and the tools/ binary —
/// reads and writes exactly the same sealed lines. One line is
///
///   <body> crc=XXXX
///
/// with the CRC-16/CCITT over the body bytes. The header body is
///
///   bhss-journal v<fmt> schema=<n> figure=<id> git=<sha>
///
/// and record bodies start with a one-letter kind (S/O/Q/P/H — see
/// checkpoint_journal.hpp). LinkStats travel as space-separated tokens
/// with doubles as IEEE-754 bit patterns, so replaying a journal merges
/// to the same bits as the uninterrupted run.

#include <cstdint>
#include <string>

#include "core/link_simulator.hpp"

namespace bhss::runtime::journal {

/// Journal line-format version. Bump when the sealed-line layout changes;
/// a resumed or merged journal with a different version is rejected.
inline constexpr int kFormatVersion = 1;

/// CRC-16/CCITT over the body bytes (what the " crc=XXXX" tail seals).
[[nodiscard]] std::uint16_t line_crc(const std::string& body);

/// "<body> crc=XXXX" with the CRC over the body bytes.
[[nodiscard]] std::string seal_line(const std::string& body);

/// Strip and verify the trailing " crc=XXXX"; returns false on any
/// mismatch (torn write, bit rot, manual edit).
[[nodiscard]] bool unseal_line(const std::string& line, std::string& body);

/// Parsed journal header line.
struct Header {
  int format_version = 0;
  int schema_version = 0;
  std::string figure_id;
  std::string build_sha;
};

/// Render the header body (unsealed) for a fresh journal.
[[nodiscard]] std::string format_header(int schema_version, const std::string& figure_id,
                                        const std::string& build_sha);

/// Parse an unsealed header body; returns false when it is not a journal
/// header at all (wrong magic / missing fields).
[[nodiscard]] bool parse_header(const std::string& body, Header& out);

/// LinkStats fields in journal order. Doubles travel as IEEE-754 bit
/// patterns: the replayed merge must reproduce the uninterrupted run's
/// statistics bit for bit, and "%.17g" round-trips are one parser bug
/// away from silently breaking that.
[[nodiscard]] std::string format_stats(const core::LinkStats& s);

/// Inverse of format_stats; returns false on any token mismatch.
[[nodiscard]] bool parse_stats(const char* text, core::LinkStats& s);

}  // namespace bhss::runtime::journal
