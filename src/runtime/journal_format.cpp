#include "runtime/journal_format.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <span>

#include "core/contracts.hpp"
#include "phy/crc16.hpp"

namespace bhss::runtime::journal {

std::uint16_t line_crc(const std::string& body) {
  return phy::crc16_ccitt(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size()));
}

std::string seal_line(const std::string& body) {
  char tail[16];
  std::snprintf(tail, sizeof(tail), " crc=%04X", line_crc(body));
  return body + tail;
}

bool unseal_line(const std::string& line, std::string& body) {
  static constexpr std::size_t kTail = 9;  // " crc=XXXX"
  if (line.size() < kTail) return false;
  const std::size_t split = line.size() - kTail;
  if (line.compare(split, 5, " crc=") != 0) return false;
  unsigned crc = 0;
  if (std::sscanf(line.c_str() + split + 5, "%4x", &crc) != 1) return false;
  body = line.substr(0, split);
  return line_crc(body) == static_cast<std::uint16_t>(crc);
}

std::string format_header(int schema_version, const std::string& figure_id,
                          const std::string& build_sha) {
  char header[256];
  std::snprintf(header, sizeof(header), "bhss-journal v%d schema=%d figure=%s git=%s",
                kFormatVersion, schema_version, figure_id.c_str(),
                build_sha.empty() ? "unknown" : build_sha.c_str());
  return header;
}

bool parse_header(const std::string& body, Header& out) {
  char figure[128] = {0};
  char git[128] = {0};
  int version = 0;
  int schema = 0;
  if (std::sscanf(body.c_str(), "bhss-journal v%d schema=%d figure=%127s git=%127s",
                  &version, &schema, figure, git) != 4) {
    return false;
  }
  out.format_version = version;
  out.schema_version = schema;
  out.figure_id = figure;
  out.build_sha = git;
  return true;
}

std::string format_stats(const core::LinkStats& s) {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "%zu %zu %zu %zu %zu %016" PRIx64 " %016" PRIx64
                " %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu",
                s.packets, s.detected, s.ok, s.symbol_errors, s.total_symbols,
                std::bit_cast<std::uint64_t>(s.airtime_s),
                std::bit_cast<std::uint64_t>(s.throughput_bps), s.sync_lost, s.reacquired,
                s.filter_fallback, s.corrupt_input_rejected, s.faults_injected,
                s.shard_timeout, s.shard_retried, s.worker_restarts, s.worker_crashes,
                s.worker_drains, s.adapt_transitions, s.adapt_jam_episodes,
                s.adapt_fallbacks, s.adapt_recoveries, s.adapt_windows_jammed,
                s.adapt_packets_adapted);
  return buf;
}

bool parse_stats(const char* text, core::LinkStats& s) {
  BHSS_REQUIRE(text != nullptr, "journal::parse_stats: null text");
  std::uint64_t airtime_bits = 0;
  std::uint64_t throughput_bits = 0;
  const int n = std::sscanf(
      text,
      "%zu %zu %zu %zu %zu %" SCNx64 " %" SCNx64 " %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu "
      "%zu %zu %zu %zu %zu %zu",
      &s.packets, &s.detected, &s.ok, &s.symbol_errors, &s.total_symbols, &airtime_bits,
      &throughput_bits, &s.sync_lost, &s.reacquired, &s.filter_fallback,
      &s.corrupt_input_rejected, &s.faults_injected, &s.shard_timeout, &s.shard_retried,
      &s.worker_restarts, &s.worker_crashes, &s.worker_drains, &s.adapt_transitions,
      &s.adapt_jam_episodes, &s.adapt_fallbacks, &s.adapt_recoveries,
      &s.adapt_windows_jammed, &s.adapt_packets_adapted);
  if (n != 23) return false;
  s.airtime_s = std::bit_cast<double>(airtime_bits);
  s.throughput_bps = std::bit_cast<double>(throughput_bits);
  return true;
}

}  // namespace bhss::runtime::journal
