#include "runtime/checkpoint_journal.hpp"

#include <unistd.h>

#include <bit>
#include <cinttypes>
#include <fstream>
#include <span>
#include <stdexcept>

#include "core/contracts.hpp"
#include "phy/crc16.hpp"

namespace bhss::runtime {
namespace {

std::uint16_t line_crc(const std::string& body) {
  return phy::crc16_ccitt(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size()));
}

/// "<body> crc=XXXX" with the CRC over the body bytes.
std::string seal_line(const std::string& body) {
  char tail[16];
  std::snprintf(tail, sizeof(tail), " crc=%04X", line_crc(body));
  return body + tail;
}

/// Strip and verify the trailing " crc=XXXX"; returns false on any
/// mismatch (torn write, bit rot, manual edit).
bool unseal_line(const std::string& line, std::string& body) {
  static constexpr std::size_t kTail = 9;  // " crc=XXXX"
  if (line.size() < kTail) return false;
  const std::size_t split = line.size() - kTail;
  if (line.compare(split, 5, " crc=") != 0) return false;
  unsigned crc = 0;
  if (std::sscanf(line.c_str() + split + 5, "%4x", &crc) != 1) return false;
  body = line.substr(0, split);
  return line_crc(body) == static_cast<std::uint16_t>(crc);
}

std::string shard_key(const JournalKey& key, std::size_t shard) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %016" PRIx64 " %zu", key.params_hash, shard);
  return key.point_id + buf;
}

std::string point_key(const JournalKey& key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %016" PRIx64, key.params_hash);
  return key.point_id + buf;
}

/// LinkStats fields in journal order. Doubles travel as IEEE-754 bit
/// patterns: the replayed merge must reproduce the uninterrupted run's
/// statistics bit for bit, and "%.17g" round-trips are one parser bug away
/// from silently breaking that.
std::string format_stats(const core::LinkStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%zu %zu %zu %zu %zu %016" PRIx64 " %016" PRIx64
                " %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu",
                s.packets, s.detected, s.ok, s.symbol_errors, s.total_symbols,
                std::bit_cast<std::uint64_t>(s.airtime_s),
                std::bit_cast<std::uint64_t>(s.throughput_bps), s.sync_lost, s.reacquired,
                s.filter_fallback, s.corrupt_input_rejected, s.faults_injected,
                s.shard_timeout, s.shard_retried, s.adapt_transitions, s.adapt_jam_episodes,
                s.adapt_fallbacks, s.adapt_recoveries, s.adapt_windows_jammed,
                s.adapt_packets_adapted);
  return buf;
}

bool parse_stats(const char* text, core::LinkStats& s) {
  std::uint64_t airtime_bits = 0;
  std::uint64_t throughput_bits = 0;
  const int n = std::sscanf(
      text,
      "%zu %zu %zu %zu %zu %" SCNx64 " %" SCNx64 " %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu %zu "
      "%zu %zu",
      &s.packets, &s.detected, &s.ok, &s.symbol_errors, &s.total_symbols, &airtime_bits,
      &throughput_bits, &s.sync_lost, &s.reacquired, &s.filter_fallback,
      &s.corrupt_input_rejected, &s.faults_injected, &s.shard_timeout, &s.shard_retried,
      &s.adapt_transitions, &s.adapt_jam_episodes, &s.adapt_fallbacks, &s.adapt_recoveries,
      &s.adapt_windows_jammed, &s.adapt_packets_adapted);
  if (n != 20) return false;
  s.airtime_s = std::bit_cast<double>(airtime_bits);
  s.throughput_bps = std::bit_cast<double>(throughput_bits);
  return true;
}

void fsync_file(std::FILE* file) {
  std::fflush(file);
  ::fsync(::fileno(file));
}

}  // namespace

CheckpointJournal::~CheckpointJournal() { close(); }

void CheckpointJournal::open(const std::string& path, const std::string& figure_id,
                             int schema_version, const std::string& build_sha, bool resume) {
  BHSS_REQUIRE(!is_open(), "CheckpointJournal: already open");
  BHSS_REQUIRE(!path.empty(), "CheckpointJournal: empty path");
  BHSS_REQUIRE(figure_id.find_first_of(" \t\n") == std::string::npos,
               "CheckpointJournal: figure id must be whitespace-free");
  path_ = path;

  std::ifstream probe(path, std::ios::binary);
  const bool exists = probe.good();
  probe.close();

  if (resume && exists) {
    load_existing(figure_id, schema_version);
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
      throw std::runtime_error("CheckpointJournal: cannot reopen " + path + " for append");
    }
    return;
  }

  // Fresh journal: stage the header in <path>.tmp and publish it with an
  // atomic rename, so a crash during creation cannot leave a truncated
  // header at the published path.
  const std::string tmp = path + ".tmp";
  std::FILE* staged = std::fopen(tmp.c_str(), "wb");
  if (staged == nullptr) {
    throw std::runtime_error("CheckpointJournal: cannot create " + tmp);
  }
  char header[256];
  std::snprintf(header, sizeof(header), "bhss-journal v%d schema=%d figure=%s git=%s",
                kFormatVersion, schema_version, figure_id.c_str(),
                build_sha.empty() ? "unknown" : build_sha.c_str());
  const std::string line = seal_line(header);
  std::fprintf(staged, "%s\n", line.c_str());
  fsync_file(staged);
  std::fclose(staged);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("CheckpointJournal: cannot publish " + tmp + " to " + path);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("CheckpointJournal: cannot reopen " + path + " for append");
  }
}

void CheckpointJournal::load_existing(const std::string& figure_id, int schema_version) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw std::runtime_error("CheckpointJournal: cannot read " + path_);

  std::string line;
  std::size_t valid_end = 0;  // byte offset just past the last valid record
  bool saw_header = false;
  while (std::getline(in, line)) {
    // getline strips the '\n'; a final line at EOF without one is a torn
    // append and never validates (the CRC tail would be incomplete).
    const bool had_newline = !in.eof();
    std::string body;
    if (!unseal_line(line, body)) break;

    if (!saw_header) {
      char figure[128] = {0};
      char git[128] = {0};
      int version = 0;
      int schema = 0;
      if (std::sscanf(body.c_str(), "bhss-journal v%d schema=%d figure=%127s git=%127s",
                      &version, &schema, figure, git) != 4) {
        throw std::runtime_error("CheckpointJournal: " + path_ + " has no valid header");
      }
      if (version != kFormatVersion) {
        throw std::runtime_error("CheckpointJournal: " + path_ +
                                 " uses journal format v" + std::to_string(version) +
                                 ", this build writes v" + std::to_string(kFormatVersion));
      }
      if (schema != schema_version) {
        throw std::runtime_error(
            "CheckpointJournal: " + path_ + " was written with schema_version " +
            std::to_string(schema) + ", this build emits " + std::to_string(schema_version) +
            " — resumed records would mix schemas; start a fresh checkpoint");
      }
      if (figure_id != figure) {
        throw std::runtime_error("CheckpointJournal: " + path_ + " belongs to campaign '" +
                                 figure + "', not '" + figure_id + "'");
      }
      saw_header = true;
    } else {
      char point[192] = {0};
      std::uint64_t hash = 0;
      std::size_t shard = 0;
      int consumed = 0;
      if (std::sscanf(body.c_str(), "S %191s %" SCNx64 " %zu %n", point, &hash, &shard,
                      &consumed) == 3) {
        core::LinkStats stats;
        if (!parse_stats(body.c_str() + consumed, stats)) break;
        shards_[shard_key({point, hash}, shard)] = stats;
      } else if (std::sscanf(body.c_str(), "O %191s %" SCNx64 " %zu %n", point, &hash,
                             &shard, &consumed) == 3) {
        shard_obs_[shard_key({point, hash}, shard)] =
            body.substr(static_cast<std::size_t>(consumed));
      } else if (std::size_t attempts = 0;
                 std::sscanf(body.c_str(), "Q %191s %" SCNx64 " %zu %zu", point, &hash,
                             &shard, &attempts) == 4) {
        quarantined_[shard_key({point, hash}, shard)] = attempts;
      } else if (std::sscanf(body.c_str(), "P %191s %" SCNx64 " %n", point, &hash,
                             &consumed) == 2) {
        points_[point_key({point, hash})] = body.substr(static_cast<std::size_t>(consumed));
      } else {
        break;  // unknown record kind: treat like a torn tail, drop the rest
      }
      ++replayed_;
    }
    valid_end += line.size() + (had_newline ? 1 : 0);
    if (!had_newline) break;
  }

  if (!saw_header) {
    throw std::runtime_error("CheckpointJournal: " + path_ + " has no valid header");
  }

  // Drop a torn tail so the next append starts on a clean line boundary.
  in.close();
  std::uintmax_t size = 0;
  {
    std::ifstream measure(path_, std::ios::binary | std::ios::ate);
    size = static_cast<std::uintmax_t>(measure.tellg());
  }
  if (size > valid_end) {
    tail_truncated_ = true;
    if (::truncate(path_.c_str(), static_cast<off_t>(valid_end)) != 0) {
      throw std::runtime_error("CheckpointJournal: cannot truncate torn tail of " + path_);
    }
  }
}

const core::LinkStats* CheckpointJournal::find_shard(const JournalKey& key,
                                                     std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(shard_key(key, shard));
  return it == shards_.end() ? nullptr : &it->second;
}

const std::string* CheckpointJournal::find_shard_obs(const JournalKey& key,
                                                     std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shard_obs_.find(shard_key(key, shard));
  return it == shard_obs_.end() ? nullptr : &it->second;
}

bool CheckpointJournal::shard_quarantined(const JournalKey& key, std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.count(shard_key(key, shard)) != 0;
}

const std::string* CheckpointJournal::find_point(const JournalKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point_key(key));
  return it == points_.end() ? nullptr : &it->second;
}

void CheckpointJournal::append_line(const std::string& body) {
  const std::string line = seal_line(body);
  BHSS_DEBUG_ASSERT(line.find('\n') == std::string::npos,
                    "CheckpointJournal: records must be single-line");
  if (file_ == nullptr) return;
  std::fprintf(file_, "%s\n", line.c_str());
  fsync_file(file_);
}

void CheckpointJournal::record_shard(const JournalKey& key, std::size_t shard,
                                     const core::LinkStats& stats,
                                     const std::string* obs_blob) {
  const std::lock_guard<std::mutex> lock(mutex_);
  char prefix[280];
  if (obs_blob != nullptr) {
    // Telemetry first: a crash between the two lines leaves an O without
    // its S, which resume treats as "shard not journaled" and re-runs.
    BHSS_REQUIRE(obs_blob->find('\n') == std::string::npos,
                 "CheckpointJournal: telemetry blob must be newline-free");
    std::snprintf(prefix, sizeof(prefix), "O %s %016" PRIx64 " %zu ", key.point_id.c_str(),
                  key.params_hash, shard);
    append_line(prefix + *obs_blob);
    shard_obs_[shard_key(key, shard)] = *obs_blob;
  }
  std::snprintf(prefix, sizeof(prefix), "S %s %016" PRIx64 " %zu ", key.point_id.c_str(),
                key.params_hash, shard);
  append_line(prefix + format_stats(stats));
  shards_[shard_key(key, shard)] = stats;
}

void CheckpointJournal::record_quarantine(const JournalKey& key, std::size_t shard,
                                          std::size_t attempts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  char body[320];
  std::snprintf(body, sizeof(body), "Q %s %016" PRIx64 " %zu %zu", key.point_id.c_str(),
                key.params_hash, shard, attempts);
  append_line(body);
  quarantined_[shard_key(key, shard)] = attempts;
}

void CheckpointJournal::record_point(const JournalKey& key, const std::string& payload) {
  BHSS_REQUIRE(payload.find('\n') == std::string::npos,
               "CheckpointJournal: point payload must be newline-free");
  const std::lock_guard<std::mutex> lock(mutex_);
  char prefix[280];
  std::snprintf(prefix, sizeof(prefix), "P %s %016" PRIx64 " ", key.point_id.c_str(),
                key.params_hash);
  append_line(prefix + payload);
  points_[point_key(key)] = payload;
}

void CheckpointJournal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) fsync_file(file_);
}

void CheckpointJournal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    fsync_file(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace bhss::runtime
