#include "runtime/checkpoint_journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/contracts.hpp"
#include "runtime/journal_format.hpp"

namespace bhss::runtime {
namespace {

std::string shard_key(const JournalKey& key, std::size_t shard) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %016" PRIx64 " %zu", key.params_hash, shard);
  return key.point_id + buf;
}

std::string point_key(const JournalKey& key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %016" PRIx64, key.params_hash);
  return key.point_id + buf;
}

}  // namespace

JournalWriteError::JournalWriteError(const std::string& what)
    : std::runtime_error("CheckpointJournal write failed: " + what +
                         " — the append is NOT durable; treat the tail as torn") {}

CheckpointJournal::~CheckpointJournal() { close(); }

void CheckpointJournal::open(const std::string& path, const std::string& figure_id,
                             int schema_version, const std::string& build_sha, bool resume) {
  BHSS_REQUIRE(!is_open(), "CheckpointJournal: already open");
  BHSS_REQUIRE(!path.empty(), "CheckpointJournal: empty path");
  BHSS_REQUIRE(figure_id.find_first_of(" \t\n") == std::string::npos,
               "CheckpointJournal: figure id must be whitespace-free");
  path_ = path;

  std::ifstream probe(path, std::ios::binary);
  const bool exists = probe.good();
  probe.close();

  if (resume && exists) {
    load_existing(figure_id, schema_version);
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
      throw std::runtime_error("CheckpointJournal: cannot reopen " + path + " for append");
    }
    return;
  }

  // Fresh journal: stage the header in <path>.tmp and publish it with an
  // atomic rename, so a crash during creation cannot leave a truncated
  // header at the published path.
  const std::string tmp = path + ".tmp";
  std::FILE* staged = std::fopen(tmp.c_str(), "wb");
  if (staged == nullptr) {
    throw std::runtime_error("CheckpointJournal: cannot create " + tmp);
  }
  const std::string line =
      journal::seal_line(journal::format_header(schema_version, figure_id, build_sha));
  std::fprintf(staged, "%s\n", line.c_str());
  std::fflush(staged);
  ::fsync(::fileno(staged));
  std::fclose(staged);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("CheckpointJournal: cannot publish " + tmp + " to " + path);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("CheckpointJournal: cannot reopen " + path + " for append");
  }
}

void CheckpointJournal::load_existing(const std::string& figure_id, int schema_version) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw std::runtime_error("CheckpointJournal: cannot read " + path_);

  std::string line;
  std::size_t valid_end = 0;  // byte offset just past the last valid record
  bool saw_header = false;
  while (std::getline(in, line)) {
    // getline strips the '\n'; a final line at EOF without one is a torn
    // append and never validates (the CRC tail would be incomplete).
    const bool had_newline = !in.eof();
    std::string body;
    if (!journal::unseal_line(line, body)) break;

    if (!saw_header) {
      journal::Header header;
      if (!journal::parse_header(body, header)) {
        throw std::runtime_error("CheckpointJournal: " + path_ + " has no valid header");
      }
      if (header.format_version != journal::kFormatVersion) {
        throw std::runtime_error("CheckpointJournal: " + path_ + " uses journal format v" +
                                 std::to_string(header.format_version) +
                                 ", this build writes v" +
                                 std::to_string(journal::kFormatVersion));
      }
      if (header.schema_version != schema_version) {
        throw std::runtime_error(
            "CheckpointJournal: " + path_ + " was written with schema_version " +
            std::to_string(header.schema_version) + ", this build emits " +
            std::to_string(schema_version) +
            " — resumed records would mix schemas; start a fresh checkpoint");
      }
      if (figure_id != header.figure_id) {
        throw std::runtime_error("CheckpointJournal: " + path_ + " belongs to campaign '" +
                                 header.figure_id + "', not '" + figure_id + "'");
      }
      saw_header = true;
    } else {
      char point[192] = {0};
      std::uint64_t hash = 0;
      std::size_t shard = 0;
      int consumed = 0;
      if (std::sscanf(body.c_str(), "S %191s %" SCNx64 " %zu %n", point, &hash, &shard,
                      &consumed) == 3) {
        core::LinkStats stats;
        if (!journal::parse_stats(body.c_str() + consumed, stats)) break;
        shards_[shard_key({point, hash}, shard)] = stats;
      } else if (std::sscanf(body.c_str(), "O %191s %" SCNx64 " %zu %n", point, &hash,
                             &shard, &consumed) == 3) {
        shard_obs_[shard_key({point, hash}, shard)] =
            body.substr(static_cast<std::size_t>(consumed));
      } else if (std::size_t attempts = 0;
                 std::sscanf(body.c_str(), "Q %191s %" SCNx64 " %zu %zu", point, &hash,
                             &shard, &attempts) == 4) {
        quarantined_[shard_key({point, hash}, shard)] = attempts;
      } else if (std::sscanf(body.c_str(), "P %191s %" SCNx64 " %n", point, &hash,
                             &consumed) == 2) {
        points_[point_key({point, hash})] = body.substr(static_cast<std::size_t>(consumed));
      } else if (body.size() >= 2 && body[0] == 'H' && body[1] == ' ') {
        // Worker heartbeat: liveness breadcrumbs for the process-level
        // supervisor. Carries no campaign state — skipped on replay (and
        // dropped entirely by journal-merge), but it is a *valid* record:
        // the scan continues past it instead of truncating.
      } else {
        break;  // unknown record kind: treat like a torn tail, drop the rest
      }
      ++replayed_;
    }
    valid_end += line.size() + (had_newline ? 1 : 0);
    if (!had_newline) break;
  }

  if (!saw_header) {
    throw std::runtime_error("CheckpointJournal: " + path_ + " has no valid header");
  }

  // Drop a torn tail so the next append starts on a clean line boundary.
  in.close();
  std::uintmax_t size = 0;
  {
    std::ifstream measure(path_, std::ios::binary | std::ios::ate);
    size = static_cast<std::uintmax_t>(measure.tellg());
  }
  if (size > valid_end) {
    tail_truncated_ = true;
    if (::truncate(path_.c_str(), static_cast<off_t>(valid_end)) != 0) {
      throw std::runtime_error("CheckpointJournal: cannot truncate torn tail of " + path_);
    }
  }
}

const core::LinkStats* CheckpointJournal::find_shard(const JournalKey& key,
                                                     std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(shard_key(key, shard));
  return it == shards_.end() ? nullptr : &it->second;
}

const std::string* CheckpointJournal::find_shard_obs(const JournalKey& key,
                                                     std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shard_obs_.find(shard_key(key, shard));
  return it == shard_obs_.end() ? nullptr : &it->second;
}

bool CheckpointJournal::shard_quarantined(const JournalKey& key, std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.count(shard_key(key, shard)) != 0;
}

const std::string* CheckpointJournal::find_point(const JournalKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point_key(key));
  return it == points_.end() ? nullptr : &it->second;
}

void CheckpointJournal::simulate_disk_full_after(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  write_budget_ = bytes;
}

void CheckpointJournal::append_line(const std::string& body) {
  const std::string line = journal::seal_line(body) + "\n";
  BHSS_DEBUG_ASSERT(line.find('\n') == line.size() - 1,
                    "CheckpointJournal: records must be single-line");
  if (file_ == nullptr) return;
  if (write_failed_) {
    throw JournalWriteError("a previous append already failed on " + path_);
  }

  // The durability contract is append → flush → fsync, all checked. Any
  // failure is a typed hard error, never a silent partial append: the
  // caller must not report the work unit as journaled, and whatever
  // half-line landed on disk is exactly the torn tail the CRC scan
  // truncates on the next resume.
  std::size_t writable = line.size();
  bool simulated_full = false;
  if (write_budget_ != kNoWriteBudget) {
    writable = std::min(writable, write_budget_);
    write_budget_ -= writable;
    simulated_full = writable < line.size();
  }
  const std::size_t written =
      writable == 0 ? 0 : std::fwrite(line.data(), 1, writable, file_);
  if (std::fflush(file_) != 0 || written < line.size()) {
    write_failed_ = true;
    ::fsync(::fileno(file_));  // persist the torn prefix; the CRC scan drops it
    const int err = simulated_full ? ENOSPC : errno;
    throw JournalWriteError("short write on " + path_ + " (" + std::to_string(written) +
                            "/" + std::to_string(line.size()) + " bytes, " +
                            std::strerror(err) + ")");
  }
  if (::fsync(::fileno(file_)) != 0) {
    write_failed_ = true;
    throw JournalWriteError("fsync on " + path_ + " (" + std::strerror(errno) + ")");
  }
}

void CheckpointJournal::record_shard(const JournalKey& key, std::size_t shard,
                                     const core::LinkStats& stats,
                                     const std::string* obs_blob) {
  const std::lock_guard<std::mutex> lock(mutex_);
  char prefix[280];
  if (obs_blob != nullptr) {
    // Telemetry first: a crash between the two lines leaves an O without
    // its S, which resume treats as "shard not journaled" and re-runs.
    BHSS_REQUIRE(obs_blob->find('\n') == std::string::npos,
                 "CheckpointJournal: telemetry blob must be newline-free");
    std::snprintf(prefix, sizeof(prefix), "O %s %016" PRIx64 " %zu ", key.point_id.c_str(),
                  key.params_hash, shard);
    append_line(prefix + *obs_blob);
    shard_obs_[shard_key(key, shard)] = *obs_blob;
  }
  std::snprintf(prefix, sizeof(prefix), "S %s %016" PRIx64 " %zu ", key.point_id.c_str(),
                key.params_hash, shard);
  append_line(prefix + journal::format_stats(stats));
  shards_[shard_key(key, shard)] = stats;
}

void CheckpointJournal::record_quarantine(const JournalKey& key, std::size_t shard,
                                          std::size_t attempts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  char body[320];
  std::snprintf(body, sizeof(body), "Q %s %016" PRIx64 " %zu %zu", key.point_id.c_str(),
                key.params_hash, shard, attempts);
  append_line(body);
  quarantined_[shard_key(key, shard)] = attempts;
}

void CheckpointJournal::record_point(const JournalKey& key, const std::string& payload) {
  BHSS_REQUIRE(payload.find('\n') == std::string::npos,
               "CheckpointJournal: point payload must be newline-free");
  const std::lock_guard<std::mutex> lock(mutex_);
  char prefix[280];
  std::snprintf(prefix, sizeof(prefix), "P %s %016" PRIx64 " ", key.point_id.c_str(),
                key.params_hash);
  append_line(prefix + payload);
  points_[point_key(key)] = payload;
}

void CheckpointJournal::record_heartbeat(std::size_t worker_id, std::size_t sequence) {
  const std::lock_guard<std::mutex> lock(mutex_);
  char body[96];
  std::snprintf(body, sizeof(body), "H %zu %zu", worker_id, sequence);
  append_line(body);
}

void CheckpointJournal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
  }
}

void CheckpointJournal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace bhss::runtime
