#pragma once

/// @file parallel_link_runner.hpp
/// Parallel deterministic Monte-Carlo engine for link experiments.
///
/// The paper evaluates 10 000 packets per data point (§6); the sequential
/// `core::run_link` loop made that cost minutes per figure. The runner
/// splits `SimConfig::n_packets` into a *fixed* number of shards, gives
/// every shard a deterministically derived seed tuple (channel,
/// impairments, jammer) via `core::SharedRandom::split_seed`, simulates
/// shards on a `ThreadPool`, and merges the per-shard `LinkStats` in
/// shard order.
///
/// Determinism contract: the merged result is a pure function of
/// (SimConfig, n_shards). Thread count — 1, 8 or anything else — only
/// changes wall time, never a single bit of the statistics. The contract
/// is *fixed shards*, not fixed threads: comparing runs with different
/// `n_shards` compares different (equally valid) random-stream draws.

#include <cstdint>

#include "core/contracts.hpp"
#include "core/link_simulator.hpp"
#include "runtime/thread_pool.hpp"

namespace bhss::runtime {

/// Runner knobs. `n_shards` is part of the experiment's identity (see the
/// determinism contract above); `n_threads` is not.
struct RunnerOptions {
  std::size_t n_threads = 0;  ///< total concurrency; 0 = hardware threads
  std::size_t n_shards = 16;  ///< fixed shard count (>= 1)
};

/// Thread-pool-backed drop-in for `core::run_link` and the §6.3
/// measurement procedures. One runner owns one pool; reuse it across data
/// points so the workers persist.
class ParallelLinkRunner {
 public:
  explicit ParallelLinkRunner(RunnerOptions options = {});

  /// Parallel equivalent of `core::run_link(cfg)` under the determinism
  /// contract. Shards `cfg.n_packets` as evenly as possible (the first
  /// `n_packets % n_shards` shards get one extra packet); empty shards
  /// are skipped.
  [[nodiscard]] core::LinkStats run(const core::SimConfig& cfg);

  /// Same run, additionally collecting per-shard telemetry. `telemetry`
  /// (may be null → identical to `run(cfg)`) is resized to `n_shards`
  /// bundles; shard i writes only into element i, so the collection is
  /// lock-free by construction and, per the merge-order contract in
  /// link_simulator.hpp, `obs::merge_telemetry` over the result is a pure
  /// function of (SimConfig, n_shards). Telemetry never perturbs the
  /// simulation: the returned stats are bit-identical to `run(cfg)`.
  [[nodiscard]] core::LinkStats run(const core::SimConfig& cfg,
                                    std::vector<obs::ShardTelemetry>* telemetry);

  /// Paper §6.3 bisection, with every PER probe sharded across the pool.
  [[nodiscard]] double min_snr_for_per(const core::SimConfig& cfg, double target_per = 0.5,
                                       double lo_db = -10.0, double hi_db = 45.0,
                                       double tol_db = 0.5);

  /// min-SNR(b) - min-SNR(a) in dB, both measured through the runner.
  [[nodiscard]] double power_advantage_db(const core::SimConfig& a, const core::SimConfig& b,
                                          double target_per = 0.5);

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t shards() const noexcept { return options_.n_shards; }

  /// The seed tuple shard `shard` runs with — exposed for the determinism
  /// tests (golden values) and for reproducing a single shard in
  /// isolation.
  [[nodiscard]] BHSS_HOT static core::ShardSeeds shard_seeds(const core::SimConfig& cfg,
                                                             std::size_t shard) noexcept;

  /// Global packet range [first, first + count) of shard `shard` when
  /// `n_packets` packets are split over `n_shards` shards (the first
  /// `n_packets % n_shards` shards carry one extra packet). This IS the
  /// determinism contract's work partition: CampaignRunner journals and
  /// resumes against exactly this plan, so a resumed campaign transmits
  /// the same frames as an uninterrupted one.
  struct ShardRange {
    std::size_t first = 0;
    std::size_t count = 0;
  };
  [[nodiscard]] BHSS_HOT static ShardRange shard_range(std::size_t n_packets, std::size_t n_shards,
                                                       std::size_t shard) noexcept;

 private:
  RunnerOptions options_;
  ThreadPool pool_;
};

/// Merge one data point's per-shard results under the shared merge-order
/// contract (link_simulator.hpp): both vectors are left folds in ascending
/// shard order, and a quarantined shard contributes a default element at
/// its index in *both*. BHSS_REQUIREs that `telemetry` (when given) has
/// exactly `stats.size()` elements — the single enforcement point keeping
/// the stats merge and the telemetry merge from silently diverging.
/// `merged_telemetry` (optional) receives the merged bundle when
/// `telemetry` is non-null.
[[nodiscard]] core::LinkStats merge_point_results(
    const std::vector<core::LinkStats>& stats,
    const std::vector<obs::ShardTelemetry>* telemetry, std::size_t payload_len,
    obs::ShardTelemetry* merged_telemetry = nullptr);

}  // namespace bhss::runtime
