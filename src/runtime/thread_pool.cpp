#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "core/contracts.hpp"

namespace bhss::runtime {

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = hardware_threads();
  workers_.reserve(n_threads - 1);
  for (std::size_t i = 0; i + 1 < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_shards(const std::function<void(std::size_t)>& fn, std::size_t n_shards) {
  for (;;) {
    const std::size_t shard = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= n_shards) break;
    try {
      fn(shard);
    } catch (...) {
      // Lowest shard index wins, not first-to-throw: which shard reaches
      // its throw first depends on scheduling, and a caller debugging a
      // failed run must see the same exception on every repeat.
      const std::scoped_lock lock(mutex_);
      if (!error_ || shard < error_shard_) {
        error_ = std::current_exception();
        error_shard_ = shard;
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    const std::function<void(std::size_t)>* fn = job_fn_;
    const std::size_t n_shards = job_shards_;
    lock.unlock();
    run_shards(*fn, n_shards);
    lock.lock();
    if (--workers_running_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_shards(std::size_t n_shards,
                                     const std::function<void(std::size_t)>& fn) {
  if (n_shards == 0) return;
  BHSS_REQUIRE(static_cast<bool>(fn), "ThreadPool: shard function must be callable");

  if (workers_.empty()) {
    // Single-threaded pool: no handoff, run inline (still via the shared
    // claim counter so behaviour matches the parallel path exactly).
    next_shard_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    run_shards(fn, n_shards);
    if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
    return;
  }

  {
    const std::scoped_lock lock(mutex_);
    job_fn_ = &fn;
    job_shards_ = n_shards;
    next_shard_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    workers_running_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();

  run_shards(fn, n_shards);  // the calling thread is one of the lanes

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

}  // namespace bhss::runtime
