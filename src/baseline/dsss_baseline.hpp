#pragma once

/// @file dsss_baseline.hpp
/// The conventional fixed-bandwidth DSSS baseline of §6.4: "we use for the
/// latter the same code base as BHSS but disable bandwidth hopping". These
/// helpers build the SystemConfigs the paper compares against.

#include "core/system_config.hpp"

namespace bhss::baseline {

/// Fixed-bandwidth DSSS receiver/transmitter config at the given level of
/// `bands` (default: the widest bandwidth, which is what Fig. 14 uses:
/// "the maximum bandwidth of BHSS, i.e., 10 MHz for the signal and the
/// jammer"). Filtering still runs unless disabled — the paper's §6.3
/// fixed-offset experiments keep the filters, §6.4's reference receiver
/// faces a matched jammer where they cannot help.
[[nodiscard]] core::SystemConfig dsss_config(const core::BandwidthSet& bands,
                                             std::size_t level = 0,
                                             std::uint64_t seed = 0xD555ULL);

/// Same, with the pre-despreading filters turned off (the pure eq. (7)
/// spread-spectrum receiver).
[[nodiscard]] core::SystemConfig dsss_config_unfiltered(const core::BandwidthSet& bands,
                                                        std::size_t level = 0,
                                                        std::uint64_t seed = 0xD555ULL);

}  // namespace bhss::baseline
