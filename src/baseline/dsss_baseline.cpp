#include "baseline/dsss_baseline.hpp"

namespace bhss::baseline {

core::SystemConfig dsss_config(const core::BandwidthSet& bands, std::size_t level,
                               std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.seed = seed;
  cfg.pattern = core::HopPattern::fixed(bands, level);
  cfg.hopping = false;
  cfg.fixed_bw_index = level;
  return cfg;
}

core::SystemConfig dsss_config_unfiltered(const core::BandwidthSet& bands, std::size_t level,
                                          std::uint64_t seed) {
  core::SystemConfig cfg = dsss_config(bands, level, seed);
  cfg.filter_policy = core::FilterPolicy::off;
  return cfg;
}

}  // namespace bhss::baseline
