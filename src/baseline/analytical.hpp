#pragma once

/// @file analytical.hpp
/// Closed-form DSSS and FHSS baseline curves for the theory figures.
/// Under equal spectral occupancy the two have identical jamming
/// resistance (§5.3: "FHSS achieves the same jamming resistance as DSSS
/// by using narrower sub-channels in the frequency band"), so both map to
/// the unfiltered correlator SNR of eq. (7) with a matched jammer.

#include <cstddef>

namespace bhss::baseline {

/// BER of a conventional DSSS link whose jammer matches the signal
/// bandwidth (no filtering possible), eq. (7) + eq. (16).
/// @param processing_gain  L, linear
/// @param jammer_power     rho_j(0) per chip (0 = no jammer)
/// @param ebno_linear      Eb/N0, linear
[[nodiscard]] double dsss_ber(double processing_gain, double jammer_power, double ebno_linear);

/// FHSS with the same spectral occupancy: identical to DSSS (see above).
[[nodiscard]] double fhss_ber(double processing_gain, double jammer_power, double ebno_linear);

/// Normalised throughput of the matched-jammer DSSS/FHSS baseline.
[[nodiscard]] double dsss_throughput(double processing_gain, double jammer_power,
                                     double ebno_linear, std::size_t packet_bits);

}  // namespace bhss::baseline
