#pragma once

/// @file fhss.hpp
/// Frequency hopping spread spectrum baseline. FHSS spreads by hopping the
/// carrier of a narrow-band signal over sub-channels of a wider band; the
/// receiver band-pass selects the current channel. The paper (§5.3) notes
/// that within the same spectral occupancy FHSS achieves the same jamming
/// resistance as DSSS — this sample-domain implementation lets the tests
/// and examples verify that equivalence on real waveforms.

#include <cstdint>
#include <span>
#include <vector>

#include "core/shared_random.hpp"
#include "dsp/fir.hpp"
#include "dsp/types.hpp"

namespace bhss::baseline {

/// FHSS link parameters, shared by transmitter and receiver.
struct FhssConfig {
  std::uint64_t seed = 0xF5511ULL;  ///< shared hop-sequence seed
  double sample_rate_hz = 20e6;
  std::size_t n_channels = 8;       ///< sub-channels across the band
  std::size_t sps = 16;             ///< samples/chip; channel bw = Rs/sps.
                                    ///< Must be >= n_channels so channels
                                    ///< do not overlap.
  std::size_t symbols_per_hop = 4;  ///< dwell per carrier hop

  /// Centre frequency of channel `k`, normalised to cycles/sample.
  [[nodiscard]] double channel_freq(std::size_t k) const {
    const double spacing = 1.0 / static_cast<double>(n_channels);
    return (static_cast<double>(k) - (static_cast<double>(n_channels) - 1.0) / 2.0) * spacing;
  }
};

/// One transmitted FHSS frame.
struct FhssTransmission {
  dsp::cvec samples;
  std::vector<std::size_t> hop_channels;  ///< channel per dwell
  std::vector<std::uint8_t> symbols;
};

/// FHSS frame transmitter (same frame format, spreading and chip
/// modulation as the BHSS stack — only the hop dimension differs).
class FhssTransmitter {
 public:
  explicit FhssTransmitter(FhssConfig config);

  [[nodiscard]] FhssTransmission transmit(std::span<const std::uint8_t> payload,
                                          std::uint64_t frame_counter) const;

  [[nodiscard]] const FhssConfig& config() const noexcept { return config_; }

 private:
  FhssConfig config_;
};

/// FHSS frame receiver with oracle frame timing (the baseline is used for
/// controlled comparisons; acquisition research belongs to the BHSS path).
class FhssReceiver {
 public:
  explicit FhssReceiver(FhssConfig config);

  /// Decode a frame that starts at `frame_start` in `rx`.
  /// @returns decoded payload bytes, or empty when the CRC fails.
  [[nodiscard]] std::vector<std::uint8_t> receive(dsp::cspan rx, std::uint64_t frame_counter,
                                                  std::size_t payload_len,
                                                  std::size_t frame_start) const;

 private:
  FhssConfig config_;
  dsp::cvec channel_filter_;  ///< low-pass selecting one channel at baseband
};

}  // namespace bhss::baseline
