#include "baseline/analytical.hpp"

#include "core/theory.hpp"

namespace bhss::baseline {

double dsss_ber(double processing_gain, double jammer_power, double ebno_linear) {
  const double noise_var = processing_gain / (2.0 * ebno_linear);
  const double snr =
      core::theory::output_snr_unfiltered(processing_gain, jammer_power, noise_var);
  return core::theory::ber_from_snr(snr);
}

double fhss_ber(double processing_gain, double jammer_power, double ebno_linear) {
  return dsss_ber(processing_gain, jammer_power, ebno_linear);
}

double dsss_throughput(double processing_gain, double jammer_power, double ebno_linear,
                       std::size_t packet_bits) {
  return core::theory::normalized_throughput(
      dsss_ber(processing_gain, jammer_power, ebno_linear), packet_bits);
}

}  // namespace bhss::baseline
