#include "baseline/fhss.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/contracts.hpp"
#include "phy/frame.hpp"
#include "phy/modulator.hpp"
#include "phy/spreader.hpp"

namespace bhss::baseline {
namespace {

/// Multiply x[a..b) by exp(j 2 pi f (n - a0)) with n the absolute index.
void mix(dsp::cspan_mut x, std::size_t begin, std::size_t end, double freq,
         std::size_t phase_origin, bool down) {
  const double sign = down ? -1.0 : 1.0;
  for (std::size_t n = begin; n < end && n < x.size(); ++n) {
    const double ang = sign * 2.0 * std::numbers::pi * freq *
                       static_cast<double>(n - phase_origin);
    x[n] *= dsp::cf{static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
  }
}

}  // namespace

FhssTransmitter::FhssTransmitter(FhssConfig config) : config_(config) {
  BHSS_REQUIRE(config_.sps >= config_.n_channels,
               "FhssTransmitter: sps must be >= n_channels (channel overlap)");
}

FhssTransmission FhssTransmitter::transmit(std::span<const std::uint8_t> payload,
                                           std::uint64_t frame_counter) const {
  core::SharedRandom rng = core::SharedRandom::for_frame(config_.seed, frame_counter);
  const std::uint32_t scrambler_seed = rng.derive_scrambler_seed();

  FhssTransmission tx;
  tx.symbols = phy::build_frame_symbols(payload);

  // Spread and modulate the whole frame at the fixed chip rate.
  phy::Spreader spreader(scrambler_seed);
  const std::vector<float> chips = spreader.spread(tx.symbols);
  const phy::QpskModulator mod(config_.sps);
  tx.samples = mod.modulate(chips);

  // Hop the carrier per dwell.
  const std::size_t samples_per_hop =
      config_.symbols_per_hop * phy::kChipsPerSymbol * config_.sps;
  for (std::size_t start = 0; start < tx.samples.size(); start += samples_per_hop) {
    const std::size_t channel = rng.uniform_index(config_.n_channels);
    tx.hop_channels.push_back(channel);
    mix(dsp::cspan_mut{tx.samples}, start, start + samples_per_hop,
        config_.channel_freq(channel), start, /*down=*/false);
  }
  return tx;
}

FhssReceiver::FhssReceiver(FhssConfig config) : config_(config) {
  const double cutoff = 0.6 / static_cast<double>(config_.sps);
  const std::size_t n_taps = dsp::lowpass_num_taps(0.25 * cutoff, 60.0, 513);
  channel_filter_ = dsp::to_complex(dsp::design_lowpass(n_taps, cutoff, dsp::Window::blackman));
}

std::vector<std::uint8_t> FhssReceiver::receive(dsp::cspan rx, std::uint64_t frame_counter,
                                                std::size_t payload_len,
                                                std::size_t frame_start) const {
  core::SharedRandom rng = core::SharedRandom::for_frame(config_.seed, frame_counter);
  const std::uint32_t scrambler_seed = rng.derive_scrambler_seed();

  const std::size_t total_symbols = phy::FrameSpec::total_symbols(payload_len);
  const std::size_t chips_per_hop = config_.symbols_per_hop * phy::kChipsPerSymbol;
  const std::size_t samples_per_hop = chips_per_hop * config_.sps;
  const std::size_t total_samples = total_symbols * phy::kChipsPerSymbol * config_.sps;

  dsp::FftConvolver convolver{dsp::cspan{channel_filter_}};
  const std::size_t group_delay = (channel_filter_.size() - 1) / 2;

  phy::Despreader despreader(scrambler_seed);
  const phy::QpskDemodulator demod(config_.sps);

  std::vector<std::uint8_t> symbols;
  symbols.reserve(total_symbols);

  std::size_t symbol = 0;
  for (std::size_t hop_start = 0; hop_start < total_samples && symbol < total_symbols;
       hop_start += samples_per_hop) {
    const std::size_t channel = rng.uniform_index(config_.n_channels);
    const std::size_t n_syms = std::min(config_.symbols_per_hop, total_symbols - symbol);
    const std::size_t n_chips = n_syms * phy::kChipsPerSymbol;
    const std::size_t needed = n_chips * config_.sps;

    // Slice with margins, mix the hop down to baseband, channel-select.
    const std::size_t a0 = frame_start + hop_start;
    const std::size_t k_taps = channel_filter_.size();
    const std::size_t lead = std::min(a0, k_taps);
    const std::size_t begin = a0 - lead;
    const std::size_t end = std::min(rx.size(), a0 + needed + k_taps);
    if (begin >= end) break;

    dsp::cvec slice(rx.begin() + static_cast<std::ptrdiff_t>(begin),
                    rx.begin() + static_cast<std::ptrdiff_t>(end));
    // Phase origin must match the transmitter's (hop start in TX time).
    mix(dsp::cspan_mut{slice}, lead, slice.size(), config_.channel_freq(channel), lead,
        /*down=*/true);
    const dsp::cvec filtered = convolver.filter(slice);

    dsp::cvec clean(needed, dsp::cf{0.0F, 0.0F});
    for (std::size_t i = 0; i < needed; ++i) {
      const std::size_t idx = lead + group_delay + i;
      if (idx < filtered.size()) clean[i] = filtered[idx];
    }

    const std::vector<float> soft = demod.demodulate(clean, n_chips);
    for (std::size_t s = 0; s < n_syms; ++s) {
      const auto chunk =
          std::span<const float>{soft}.subspan(s * phy::kChipsPerSymbol, phy::kChipsPerSymbol);
      symbols.push_back(despreader.despread_symbol(chunk).symbol);
    }
    symbol += n_syms;
  }

  if (auto payload = phy::parse_frame_symbols(symbols);
      payload.has_value() && payload->size() == payload_len) {
    return *payload;
  }
  return {};
}

}  // namespace bhss::baseline
