#include "jammer/estimating_jammer.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace bhss::jammer {

EstimatingJammer::EstimatingJammer(std::vector<double> available_bws, std::size_t estimation_hops,
                                   std::uint64_t seed)
    : available_bws_(std::move(available_bws)), estimation_hops_(estimation_hops) {
  BHSS_REQUIRE(!available_bws_.empty(), "EstimatingJammer: need at least one bandwidth");
  BHSS_REQUIRE(estimation_hops_ >= 1, "EstimatingJammer: need at least one observation");
  sources_.reserve(available_bws_.size());
  for (std::size_t i = 0; i < available_bws_.size(); ++i) {
    sources_.emplace_back(available_bws_[i], seed * 0xD1B54A32D192ED03ULL + i + 1);
  }
  counts_.assign(available_bws_.size(), 0);
  // Until the histogram matures, spend the budget on the widest band —
  // the same prior the plain reactive jammer starts from.
  target_ = static_cast<std::size_t>(
      std::distance(available_bws_.begin(),
                    std::max_element(available_bws_.begin(), available_bws_.end())));
}

std::size_t EstimatingJammer::closest_bw_index(double bw) const noexcept {
  std::size_t best = 0;
  double best_dist = std::abs(std::log(available_bws_[0]) - std::log(bw));
  for (std::size_t i = 1; i < available_bws_.size(); ++i) {
    const double d = std::abs(std::log(available_bws_[i]) - std::log(bw));
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

dsp::cvec EstimatingJammer::generate(std::span<const ObservedHop> hops, std::size_t n) {
  // Output strictly before updating: this transmission is jammed with the
  // estimate learned from *previous* transmissions only.
  dsp::cvec out = sources_[target_].generate(n);

  for (const ObservedHop& hop : hops) {
    ++counts_[closest_bw_index(hop.bandwidth_frac)];
  }
  observed_ += hops.size();

  if (observed_ >= estimation_hops_) {
    // Mode of the histogram; ties break to the lowest index so the
    // estimate is a pure function of the observation multiset.
    target_ = static_cast<std::size_t>(
        std::distance(counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
  }
  // Exponential forgetting: once the window holds twice the maturity
  // horizon, halve everything. Keeps the estimator tracking a victim
  // that re-weights its distribution instead of averaging over eras.
  if (observed_ > 2 * estimation_hops_) {
    for (std::uint64_t& c : counts_) c >>= 1U;
    observed_ = 0;
    for (const std::uint64_t c : counts_) observed_ += c;
  }
  return out;
}

}  // namespace bhss::jammer
