#pragma once

/// @file band_sweep_jammer.hpp
/// Stepped band-sweeping noise jammer: a non-stationary adversary that
/// parks a narrow shaped-noise band at a sequence of centre frequencies
/// marching across the channel and wrapping around. Unlike the CW chirp
/// (SweptJammer in tone_jammer.hpp) this sweeps *noise of finite
/// bandwidth*, so each dwell looks exactly like a partial-band jammer to
/// the receiver's PSD estimator — the excision filter can win each dwell,
/// but the jammed region keeps moving, which exercises the suspicion
/// decay in the adaptation loop (stale evidence must fade or the adapted
/// distribution chases where the jammer *was*).

#include <cstdint>

#include "jammer/noise_jammer.hpp"

namespace bhss::jammer {

/// Frequency-stepped band-limited Gaussian jammer with unit power.
class BandSweepJammer {
 public:
  /// @param f_lo, f_hi        sweep endpoints (centre frequency), each in
  ///                          (-0.5, 0.5) cycles/sample
  /// @param n_steps           dwell positions per sweep (>= 1); centres
  ///                          are spaced evenly from f_lo to f_hi
  /// @param dwell_samples     samples spent at each centre (>= 1)
  /// @param bandwidth_frac    occupied bandwidth per dwell, in (0, 1]
  /// @param seed              noise generator seed
  BandSweepJammer(double f_lo, double f_hi, std::size_t n_steps, std::size_t dwell_samples,
                  double bandwidth_frac, std::uint64_t seed);

  /// Generate `n` samples. Sweep position and mixer phase are continuous
  /// across calls: a dwell can straddle a call boundary and the centre
  /// frequency keeps marching on schedule. (The shaped noise is
  /// normalised per call like every jammer here; link-level determinism
  /// comes from the simulator replaying the identical per-packet call
  /// sequence, not from sample-level call-splitting invariance.)
  [[nodiscard]] dsp::cvec generate(std::size_t n);

  [[nodiscard]] std::size_t n_steps() const noexcept { return n_steps_; }
  [[nodiscard]] std::size_t dwell_samples() const noexcept { return dwell_samples_; }

 private:
  [[nodiscard]] double centre_freq(std::size_t step) const noexcept;

  double f_lo_;
  double f_hi_;
  std::size_t n_steps_;
  std::size_t dwell_samples_;
  NoiseJammer source_;   ///< baseband shaped noise, mixed up per dwell
  std::size_t pos_ = 0;  ///< samples generated so far (mod sweep period)
  double phase_ = 0.0;   ///< mixer phase [rad], continuous across steps
};

}  // namespace bhss::jammer
