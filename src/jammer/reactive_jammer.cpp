#include "jammer/reactive_jammer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::jammer {

ReactiveJammer::ReactiveJammer(std::vector<double> available_bws, std::size_t reaction_delay,
                               std::uint64_t seed, std::size_t estimation_samples)
    : available_bws_(std::move(available_bws)),
      reaction_delay_(reaction_delay),
      estimation_samples_(estimation_samples) {
  BHSS_REQUIRE(!available_bws_.empty(), "ReactiveJammer: need at least one bandwidth");
  sources_.reserve(available_bws_.size());
  for (std::size_t i = 0; i < available_bws_.size(); ++i) {
    sources_.emplace_back(available_bws_[i], seed * 0xD1B54A32D192ED03ULL + i + 1);
  }
  current_bw_index_ = static_cast<std::size_t>(
      std::distance(available_bws_.begin(),
                    std::max_element(available_bws_.begin(), available_bws_.end())));
}

std::size_t ReactiveJammer::closest_bw_index(double bw) const noexcept {
  std::size_t best = 0;
  double best_dist = std::abs(std::log(available_bws_[0]) - std::log(bw));
  for (std::size_t i = 1; i < available_bws_.size(); ++i) {
    const double d = std::abs(std::log(available_bws_[i]) - std::log(bw));
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

dsp::cvec ReactiveJammer::generate(std::span<const ObservedHop> hops, std::size_t n) {
  for (std::size_t i = 1; i < hops.size(); ++i) {
    BHSS_REQUIRE(hops[i].start >= hops[i - 1].start,
                 "ReactiveJammer: observed hops must be sorted ascending by start");
  }

  // The last matched bandwidth persists until the first delayed
  // observation of this transmission kicks in.
  const std::size_t idle = current_bw_index_;

  // Build the jammer's own switching timeline: each *estimable* hop takes
  // effect estimation_samples + reaction_delay samples after it started.
  // A hop that dwells for fewer than estimation_samples ends before the
  // estimate completes, so the jammer never reacts to it at all — the
  // degenerate dwell-shorter-than-latency case resolves deterministically
  // to "unseen" instead of an instant reaction.
  struct Segment {
    std::size_t start;
    std::size_t bw_index;
  };
  std::vector<Segment> timeline;
  timeline.push_back({0, idle});
  std::size_t last_estimated = idle;
  bool any_estimated = false;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const std::size_t hop_end = (i + 1 < hops.size()) ? hops[i + 1].start : n;
    const std::size_t dwell = hop_end > hops[i].start ? hop_end - hops[i].start : 0;
    if (dwell < estimation_samples_) continue;
    const std::size_t bw_index = closest_bw_index(hops[i].bandwidth_frac);
    timeline.push_back({hops[i].start + estimation_samples_ + reaction_delay_, bw_index});
    last_estimated = bw_index;
    any_estimated = true;
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Segment& a, const Segment& b) { return a.start < b.start; });

  dsp::cvec out;
  out.reserve(n);
  for (std::size_t i = 0; i < timeline.size() && out.size() < n; ++i) {
    const std::size_t seg_start = std::max(timeline[i].start, out.size());
    const std::size_t seg_end =
        (i + 1 < timeline.size()) ? std::min<std::size_t>(timeline[i + 1].start, n) : n;
    if (seg_end <= seg_start) continue;
    const dsp::cvec seg = sources_[timeline[i].bw_index].generate(seg_end - seg_start);
    out.insert(out.end(), seg.begin(), seg.end());
  }
  if (out.size() < n) {
    const dsp::cvec tail = sources_[idle].generate(n - out.size());
    out.insert(out.end(), tail.begin(), tail.end());
  }
  // The jammer eventually reacts to the last thing it *finished
  // estimating*, even when that reaction lands after this transmission
  // ended (it then carries the stale bandwidth into the next one). Hops
  // it never estimated leave no residue.
  if (any_estimated) current_bw_index_ = last_estimated;
  return out;
}

}  // namespace bhss::jammer
