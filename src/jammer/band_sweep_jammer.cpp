#include "jammer/band_sweep_jammer.hpp"

#include <cmath>
#include <numbers>

#include "core/contracts.hpp"

namespace bhss::jammer {

BandSweepJammer::BandSweepJammer(double f_lo, double f_hi, std::size_t n_steps,
                                 std::size_t dwell_samples, double bandwidth_frac,
                                 std::uint64_t seed)
    : f_lo_(f_lo),
      f_hi_(f_hi),
      n_steps_(n_steps),
      dwell_samples_(dwell_samples),
      source_(bandwidth_frac, seed) {
  BHSS_REQUIRE(f_lo_ > -0.5 && f_lo_ < 0.5 && f_hi_ > -0.5 && f_hi_ < 0.5,
               "BandSweepJammer: sweep endpoints must lie in (-0.5, 0.5) cycles/sample");
  BHSS_REQUIRE(n_steps_ >= 1, "BandSweepJammer: need at least one dwell position");
  BHSS_REQUIRE(dwell_samples_ >= 1, "BandSweepJammer: dwell must be >= 1 sample");
}

double BandSweepJammer::centre_freq(std::size_t step) const noexcept {
  if (n_steps_ == 1) return 0.5 * (f_lo_ + f_hi_);
  const double t = static_cast<double>(step) / static_cast<double>(n_steps_ - 1);
  return f_lo_ + t * (f_hi_ - f_lo_);
}

dsp::cvec BandSweepJammer::generate(std::size_t n) {
  // Baseband shaped noise first (RNG advances by exactly n), then mix
  // each sample up to the centre frequency of the dwell it falls in.
  // Mixing preserves power, so the output stays unit power.
  dsp::cvec out = source_.generate(n);
  constexpr double two_pi = 2.0 * std::numbers::pi;
  const std::size_t sweep_period = n_steps_ * dwell_samples_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t step = pos_ / dwell_samples_;
    const double f = centre_freq(step);
    out[i] *= dsp::cf{static_cast<float>(std::cos(phase_)), static_cast<float>(std::sin(phase_))};
    phase_ += two_pi * f;
    if (phase_ > two_pi) phase_ -= two_pi;
    if (phase_ < -two_pi) phase_ += two_pi;
    pos_ = (pos_ + 1) % sweep_period;
  }
  return out;
}

}  // namespace bhss::jammer
