#pragma once

/// @file hopping_jammer.hpp
/// A jammer that randomly hops its own bandwidth (§6.4.3): the paper shows
/// that against an adaptive BHSS transmitter, fixed-bandwidth jamming is a
/// losing strategy, so the rational jammer hops too — using the same
/// linear / exponential / parabolic distributions as the transmitter.

#include <cstdint>
#include <random>
#include <vector>

#include "jammer/noise_jammer.hpp"

namespace bhss::jammer {

/// Bandwidth-hopping Gaussian noise jammer with unit output power.
class HoppingJammer {
 public:
  /// @param bandwidth_fracs  candidate bandwidths (fractions of Rs)
  /// @param probabilities    draw probabilities (same size, sum ~ 1)
  /// @param dwell_samples    samples between bandwidth decisions
  /// @param seed             rng seed (independent of the transmitter's!)
  HoppingJammer(std::vector<double> bandwidth_fracs, std::vector<double> probabilities,
                std::size_t dwell_samples, std::uint64_t seed);

  /// Generate `n` samples, re-drawing the bandwidth every dwell.
  [[nodiscard]] dsp::cvec generate(std::size_t n);

  /// Bandwidths chosen during the last generate() call, one per dwell.
  [[nodiscard]] const std::vector<double>& last_hop_bandwidths() const noexcept {
    return last_hops_;
  }

 private:
  std::vector<double> bandwidth_fracs_;
  std::size_t dwell_samples_;
  std::vector<NoiseJammer> sources_;  ///< one shaped source per bandwidth
  // The jammer is the adversary: its RNG is a separate domain from the
  // protocol's SharedRandom by design, seeded explicitly per instance so
  // runs stay replayable without consuming the communicator's stream.
  // BHSS_ANALYZE_SUPPRESS(d2-rng-discipline): adversary-domain RNG, explicitly seeded per instance
  std::mt19937_64 rng_;
  std::discrete_distribution<std::size_t> pick_;
  std::vector<double> last_hops_;
};

}  // namespace bhss::jammer
