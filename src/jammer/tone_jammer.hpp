#pragma once

/// @file tone_jammer.hpp
/// Continuous-wave and swept-carrier jammers. The excision-filter
/// literature the paper builds on ([3]-[7]) was developed against exactly
/// these interferers: a CW tone concentrates the whole power budget into
/// one spectral line ("narrow-band jammers will exhibit peaks at the
/// frequencies occupied by the jammer", §4.2), and a swept carrier drags
/// that line across the band faster than a per-hop estimate can follow.

#include <cstdint>
#include <vector>

#include "dsp/types.hpp"

namespace bhss::jammer {

/// Multi-tone CW jammer: a sum of unit-total-power complex exponentials.
class ToneJammer {
 public:
  /// @param freqs  tone frequencies in cycles/sample, each in (-0.5, 0.5)
  /// @param seed   randomises the initial phases
  explicit ToneJammer(std::vector<double> freqs, std::uint64_t seed = 1);

  /// Single-tone convenience.
  explicit ToneJammer(double freq, std::uint64_t seed = 1)
      : ToneJammer(std::vector<double>{freq}, seed) {}

  /// Generate `n` samples with unit total power; phase is continuous
  /// across calls.
  [[nodiscard]] dsp::cvec generate(std::size_t n);

  [[nodiscard]] const std::vector<double>& frequencies() const noexcept { return freqs_; }

 private:
  std::vector<double> freqs_;
  std::vector<double> phases_;  ///< current phase per tone [rad]
};

/// Swept-carrier (chirp) jammer: a unit-power tone sweeping linearly
/// between two band edges and wrapping around, period `sweep_samples`.
class SweptJammer {
 public:
  /// @param f_lo, f_hi      sweep band edges, cycles/sample
  /// @param sweep_samples   samples per full sweep
  /// @param seed            randomises the initial sweep position
  SweptJammer(double f_lo, double f_hi, std::size_t sweep_samples, std::uint64_t seed = 1);

  /// Generate `n` samples; sweep state is continuous across calls.
  [[nodiscard]] dsp::cvec generate(std::size_t n);

  [[nodiscard]] double sweep_rate() const noexcept { return rate_; }

 private:
  double f_lo_;
  double f_hi_;
  double rate_;      ///< frequency increment per sample
  double freq_;      ///< current instantaneous frequency
  double phase_;     ///< current phase [rad]
};

}  // namespace bhss::jammer
