#pragma once

/// @file reactive_jammer.hpp
/// Reactive matched-bandwidth jammer (attacker model of §2, realised per
/// [12]): the jammer senses the transmitter's instantaneous bandwidth and
/// switches its own jamming bandwidth to match — but only after a reaction
/// time tau (propagation + sensing + decision). BHSS defeats it by hopping
/// faster than tau; this model lets us reproduce that arms race.

#include <cstdint>
#include <vector>

#include "jammer/noise_jammer.hpp"

namespace bhss::jammer {

/// One bandwidth interval the jammer observes over the air.
struct ObservedHop {
  std::size_t start = 0;         ///< sample index where the hop begins
  double bandwidth_frac = 1.0;   ///< transmitter bandwidth during the hop
};

/// Reactive jammer: matches the observed bandwidth, `reaction_delay`
/// samples late. The jammer is persistent: between transmissions it keeps
/// jamming at the last bandwidth it reacted to (initially the widest
/// available), so a non-hopping victim stays matched from the second
/// frame on while a hopping victim is always chased one reaction behind.
///
/// Sensing is not free: the jammer must *observe* a hop for
/// `estimation_samples` before its bandwidth estimate exists at all, and
/// only then does the `reaction_delay` (decision + retune) clock start.
/// A hop whose dwell is shorter than the estimation latency is never
/// estimated — the jammer deterministically ignores it (no timeline
/// entry, no carry-over) rather than reacting to a measurement it could
/// not have made. `estimation_samples == 0` reproduces the historical
/// ideal-sensing behaviour exactly.
class ReactiveJammer {
 public:
  /// @param available_bws       bandwidths the jammer can produce
  ///                            (fractions of Rs); the observed value
  ///                            snaps to the closest
  /// @param reaction_delay      tau in samples (decision + retune)
  /// @param seed                rng seed
  /// @param estimation_samples  samples of a hop the jammer must see
  ///                            before its bandwidth estimate is usable;
  ///                            0 = ideal instantaneous sensing
  ReactiveJammer(std::vector<double> available_bws, std::size_t reaction_delay,
                 std::uint64_t seed, std::size_t estimation_samples = 0);

  /// Generate `n` samples of unit-power jamming that tracks `hops`
  /// (sorted ascending by start — BHSS_REQUIREd) with the configured
  /// estimation + reaction latency.
  [[nodiscard]] dsp::cvec generate(std::span<const ObservedHop> hops, std::size_t n);

  [[nodiscard]] std::size_t reaction_delay() const noexcept { return reaction_delay_; }
  [[nodiscard]] std::size_t estimation_samples() const noexcept { return estimation_samples_; }

 private:
  [[nodiscard]] std::size_t closest_bw_index(double bw) const noexcept;

  std::vector<double> available_bws_;
  std::size_t reaction_delay_;
  std::size_t estimation_samples_;
  std::vector<NoiseJammer> sources_;
  std::size_t current_bw_index_;  ///< idle bandwidth carried across calls
};

}  // namespace bhss::jammer
