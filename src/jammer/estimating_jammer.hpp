#pragma once

/// @file estimating_jammer.hpp
/// Distribution-estimating reactive jammer: the strongest adversary in
/// this zoo. Instead of chasing individual hops one reaction behind
/// (ReactiveJammer), it *learns the victim's hop distribution* from the
/// bandwidths it observes over the air, then concentrates its whole
/// power budget on the most probable bandwidth. Against a static hop
/// pattern this converges and stays converged — exactly the adversary
/// the closed-loop adaptation layer exists to beat: once the victim
/// re-weights away from the targeted bandwidth, the jammer's histogram
/// goes stale and must re-learn, and the exponential forgetting below
/// bounds how long the stale estimate persists.

#include <cstdint>
#include <span>
#include <vector>

#include "jammer/reactive_jammer.hpp"

namespace bhss::jammer {

/// Histogram-learning jammer that targets the victim's modal bandwidth.
class EstimatingJammer {
 public:
  /// @param available_bws    bandwidths the jammer can produce (fractions
  ///                         of Rs); observations snap to the closest
  /// @param estimation_hops  observed hops required before the first
  ///                         estimate exists; also sets the forgetting
  ///                         horizon (counts halve at 2x this)
  /// @param seed             rng seed
  EstimatingJammer(std::vector<double> available_bws, std::size_t estimation_hops,
                   std::uint64_t seed);

  /// Generate `n` samples aimed at the current estimate, then fold this
  /// transmission's observed hops into the histogram. Output strictly
  /// precedes the update — the estimate always lags by at least one
  /// whole transmission (the jammer cannot use hops it is still seeing).
  [[nodiscard]] dsp::cvec generate(std::span<const ObservedHop> hops, std::size_t n);

  /// Current target bandwidth index (widest until the first estimate).
  [[nodiscard]] std::size_t target_index() const noexcept { return target_; }

  /// Observed-hop counts per bandwidth index (post-forgetting).
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const noexcept { return counts_; }

 private:
  [[nodiscard]] std::size_t closest_bw_index(double bw) const noexcept;

  std::vector<double> available_bws_;
  std::size_t estimation_hops_;
  std::vector<NoiseJammer> sources_;
  std::vector<std::uint64_t> counts_;  ///< observed hops per bandwidth index
  std::uint64_t observed_ = 0;         ///< total observations (post-forgetting)
  std::size_t target_;                 ///< bandwidth index currently jammed
};

}  // namespace bhss::jammer
