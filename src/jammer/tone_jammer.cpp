#include "jammer/tone_jammer.hpp"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::jammer {

ToneJammer::ToneJammer(std::vector<double> freqs, std::uint64_t seed)
    : freqs_(std::move(freqs)) {
  BHSS_REQUIRE(!freqs_.empty(), "ToneJammer: need at least one tone");
  for (double f : freqs_) {
    BHSS_REQUIRE(f > -0.5 && f < 0.5, "ToneJammer: frequency must be in (-0.5, 0.5)");
  }
  // BHSS_ANALYZE_SUPPRESS(d2-rng-discipline): adversary-domain phase randomization, explicitly seeded per instance
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  phases_.resize(freqs_.size());
  for (double& p : phases_) p = uniform(rng) * 2.0 * std::numbers::pi;
}

dsp::cvec ToneJammer::generate(std::size_t n) {
  dsp::cvec out(n, dsp::cf{0.0F, 0.0F});
  const double amp = 1.0 / std::sqrt(static_cast<double>(freqs_.size()));
  for (std::size_t t = 0; t < freqs_.size(); ++t) {
    double phase = phases_[t];
    const double step = 2.0 * std::numbers::pi * freqs_[t];
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += dsp::cf{static_cast<float>(amp * std::cos(phase)),
                        static_cast<float>(amp * std::sin(phase))};
      phase += step;
      if (phase > std::numbers::pi) phase -= 2.0 * std::numbers::pi;
      if (phase < -std::numbers::pi) phase += 2.0 * std::numbers::pi;
    }
    phases_[t] = phase;
  }
  return out;
}

SweptJammer::SweptJammer(double f_lo, double f_hi, std::size_t sweep_samples,
                         std::uint64_t seed)
    : f_lo_(f_lo), f_hi_(f_hi) {
  BHSS_REQUIRE(f_lo < f_hi && f_lo > -0.5 && f_hi < 0.5,
               "SweptJammer: need -0.5 < f_lo < f_hi < 0.5");
  BHSS_REQUIRE(sweep_samples != 0, "SweptJammer: sweep must be > 0");
  rate_ = (f_hi - f_lo) / static_cast<double>(sweep_samples);
  // BHSS_ANALYZE_SUPPRESS(d2-rng-discipline): adversary-domain RNG, explicitly seeded per instance (see ToneJammer)
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  freq_ = f_lo + uniform(rng) * (f_hi - f_lo);
  phase_ = uniform(rng) * 2.0 * std::numbers::pi;
}

dsp::cvec SweptJammer::generate(std::size_t n) {
  dsp::cvec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = dsp::cf{static_cast<float>(std::cos(phase_)),
                     static_cast<float>(std::sin(phase_))};
    phase_ += 2.0 * std::numbers::pi * freq_;
    if (phase_ > std::numbers::pi) phase_ -= 2.0 * std::numbers::pi;
    freq_ += rate_;
    if (freq_ > f_hi_) freq_ = f_lo_;  // wrap the sweep
  }
  return out;
}

}  // namespace bhss::jammer
