#pragma once

/// @file duty_cycle_jammer.hpp
/// Duty-cycled (pulsed) noise jammer: a non-stationary adversary that
/// concentrates its power budget into periodic bursts. The attacker model
/// of §2 fixes the *average* power, so a jammer on for a fraction `duty`
/// of each period may burn 1/duty times the power while transmitting —
/// bursts hit hard, gaps look clean. This is the canonical stressor for
/// windowed jam detection: a detector without debounce flaps once per
/// period, one with debounce must still trip within a bounded number of
/// windows.

#include <cstdint>

#include "jammer/noise_jammer.hpp"

namespace bhss::jammer {

/// Pulsed band-limited Gaussian jammer with unit *average* power.
class DutyCycleJammer {
 public:
  /// @param bandwidth_frac  occupied bandwidth fraction, in (0, 1]
  /// @param period_samples  samples per on/off period (>= 1)
  /// @param duty            on-fraction of each period, in (0, 1]
  /// @param seed            noise generator seed
  DutyCycleJammer(double bandwidth_frac, std::size_t period_samples, double duty,
                  std::uint64_t seed);

  /// Generate `n` samples. The burst phase is continuous across calls, so
  /// an on/off period can straddle a call boundary and the gap lands at
  /// exactly the same sample positions as in one long call. (The shaped
  /// noise itself is normalised per call like every jammer here: the link
  /// simulator draws one call per packet and replays the identical call
  /// sequence on resume, which is what its determinism rests on.)
  [[nodiscard]] dsp::cvec generate(std::size_t n);

  [[nodiscard]] std::size_t period_samples() const noexcept { return period_samples_; }
  [[nodiscard]] double duty() const noexcept { return duty_; }

 private:
  std::size_t period_samples_;
  std::size_t on_samples_;  ///< burst length: round(period * duty), >= 1
  double duty_;             ///< realised on-fraction after quantisation
  double burst_gain_;       ///< 1/sqrt(duty): average power stays unit
  NoiseJammer source_;
  std::size_t pos_ = 0;  ///< position within the current period
};

}  // namespace bhss::jammer
