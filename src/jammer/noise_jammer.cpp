#include "jammer/noise_jammer.hpp"

#include <stdexcept>

#include "core/contracts.hpp"
#include "dsp/utils.hpp"

namespace bhss::jammer {

NoiseJammer::NoiseJammer(double bandwidth_frac, std::uint64_t seed, std::size_t num_taps)
    : bandwidth_frac_(bandwidth_frac), noise_(seed) {
  BHSS_REQUIRE(bandwidth_frac > 0.0 && bandwidth_frac <= 1.0,
               "NoiseJammer: bandwidth_frac must be in (0, 1]");
  if (bandwidth_frac < 1.0) {
    // Low-pass at half the two-sided bandwidth; complex baseband noise then
    // occupies [-bw/2, +bw/2].
    const dsp::fvec taps =
        dsp::design_lowpass(num_taps | 1, bandwidth_frac / 2.0, dsp::Window::blackman);
    shaper_.emplace(dsp::cspan{dsp::to_complex(taps)});
  }
}

dsp::cvec NoiseJammer::generate(std::size_t n) {
  if (!shaper_.has_value()) return noise_.generate(n, 1.0);

  // Generate with lead-in so the filter transient does not leave a quiet
  // gap at the start of the jamming burst.
  const std::size_t lead = shaper_->num_taps();
  dsp::cvec raw = noise_.generate(n + lead, 1.0);
  dsp::cvec shaped = shaper_->filter(raw);
  dsp::cvec out(shaped.begin() + static_cast<std::ptrdiff_t>(lead), shaped.end());
  dsp::scale_to_power(out, 1.0);
  return out;
}

}  // namespace bhss::jammer
