#pragma once

/// @file noise_jammer.hpp
/// Band-limited Gaussian noise jammer — exactly how the paper's jammer is
/// built (§6.2: "a random Gaussian source from GnuRadio and applying a low
/// pass filter on the signal"). The attacker model (§2) allows arbitrary
/// waveforms under a power budget; AWGN of chosen bandwidth is the
/// jammer's best generic strategy.

#include <cstdint>
#include <optional>

#include "channel/awgn.hpp"
#include "dsp/fir.hpp"
#include "dsp/types.hpp"

namespace bhss::jammer {

/// Fixed-bandwidth Gaussian noise jammer with unit output power.
class NoiseJammer {
 public:
  /// @param bandwidth_frac  occupied (two-sided) bandwidth as a fraction
  ///                        of the sampling rate, in (0, 1]. 1 = full-band
  ///                        white noise (no shaping filter).
  /// @param seed            noise generator seed
  /// @param num_taps        shaping filter length (odd); higher = steeper
  ///                        band edges. The default keeps the transition
  ///                        skirts narrow relative to even the narrowest
  ///                        paper bandwidth (0.156 MHz at 20 MS/s), as a
  ///                        jammer spending its power budget efficiently
  ///                        would.
  NoiseJammer(double bandwidth_frac, std::uint64_t seed, std::size_t num_taps = 2049);

  /// Generate `n` samples of unit-power jamming noise.
  [[nodiscard]] dsp::cvec generate(std::size_t n);

  [[nodiscard]] double bandwidth_frac() const noexcept { return bandwidth_frac_; }

 private:
  double bandwidth_frac_;
  channel::AwgnSource noise_;
  std::optional<dsp::FftConvolver> shaper_;  ///< absent for full-band noise
};

}  // namespace bhss::jammer
