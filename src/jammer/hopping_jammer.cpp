#include "jammer/hopping_jammer.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::jammer {

HoppingJammer::HoppingJammer(std::vector<double> bandwidth_fracs,
                             std::vector<double> probabilities, std::size_t dwell_samples,
                             std::uint64_t seed)
    : bandwidth_fracs_(std::move(bandwidth_fracs)),
      dwell_samples_(dwell_samples),
      rng_(seed),
      pick_(probabilities.begin(), probabilities.end()) {
  BHSS_REQUIRE(!bandwidth_fracs_.empty() && bandwidth_fracs_.size() == probabilities.size(),
               "HoppingJammer: bandwidths/probabilities size mismatch");
  BHSS_REQUIRE(dwell_samples_ != 0, "HoppingJammer: dwell must be > 0");
  sources_.reserve(bandwidth_fracs_.size());
  for (std::size_t i = 0; i < bandwidth_fracs_.size(); ++i) {
    sources_.emplace_back(bandwidth_fracs_[i], seed * 0x9E3779B97F4A7C15ULL + i + 1);
  }
}

dsp::cvec HoppingJammer::generate(std::size_t n) {
  dsp::cvec out;
  out.reserve(n);
  last_hops_.clear();
  while (out.size() < n) {
    const std::size_t idx = pick_(rng_);
    last_hops_.push_back(bandwidth_fracs_[idx]);
    const std::size_t chunk = std::min(dwell_samples_, n - out.size());
    const dsp::cvec seg = sources_[idx].generate(chunk);
    out.insert(out.end(), seg.begin(), seg.end());
  }
  return out;
}

}  // namespace bhss::jammer
