#include "jammer/duty_cycle_jammer.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace bhss::jammer {

namespace {

std::size_t quantised_on_samples(std::size_t period_samples, double duty) {
  BHSS_REQUIRE(period_samples >= 1, "DutyCycleJammer: period must be >= 1 sample");
  BHSS_REQUIRE(duty > 0.0 && duty <= 1.0, "DutyCycleJammer: duty must lie in (0, 1]");
  const auto rounded =
      static_cast<std::size_t>(std::llround(static_cast<double>(period_samples) * duty));
  return std::clamp<std::size_t>(rounded, 1, period_samples);
}

}  // namespace

DutyCycleJammer::DutyCycleJammer(double bandwidth_frac, std::size_t period_samples, double duty,
                                 std::uint64_t seed)
    : period_samples_(period_samples),
      on_samples_(quantised_on_samples(period_samples, duty)),
      // Gain from the *realised* duty so quantised burst edges still
      // leave the average power exactly unit.
      duty_(static_cast<double>(on_samples_) / static_cast<double>(period_samples_)),
      burst_gain_(1.0 / std::sqrt(duty_)),
      source_(bandwidth_frac, seed) {}

dsp::cvec DutyCycleJammer::generate(std::size_t n) {
  // Draw the full noise stream first, then gate it: the RNG advance and
  // the per-call power normalisation depend only on `n`, never on where
  // the burst phase happens to sit.
  dsp::cvec out = source_.generate(n);
  const float gain = static_cast<float>(burst_gain_);
  for (std::size_t i = 0; i < n; ++i) {
    if (pos_ < on_samples_) {
      out[i] *= gain;
    } else {
      out[i] = dsp::cf{0.0F, 0.0F};
    }
    pos_ = (pos_ + 1) % period_samples_;
  }
  return out;
}

}  // namespace bhss::jammer
