#pragma once

/// @file awgn.hpp
/// Complex additive white Gaussian noise source. The paper's §6.2 setup
/// (coax cables + attenuators, free-running oscillators) is explicitly
/// modelled as an AWGN channel; this source provides both the thermal
/// noise floor and the raw material for the noise jammer.

#include <cstdint>
#include <random>

#include "dsp/types.hpp"

namespace bhss::channel {

/// Seeded complex white Gaussian noise generator.
class AwgnSource {
 public:
  explicit AwgnSource(std::uint64_t seed) : rng_(seed) {}

  /// Generate `n` samples of circularly-symmetric complex Gaussian noise
  /// with total power `power` (variance power/2 per rail).
  [[nodiscard]] dsp::cvec generate(std::size_t n, double power);

  /// Add noise of power `power` to `x` in place.
  void add_to(dsp::cspan_mut x, double power);

  /// One noise sample of total power `power`.
  [[nodiscard]] dsp::cf sample(double power);

 private:
  std::mt19937_64 rng_;
  std::normal_distribution<float> normal_{0.0F, 1.0F};
};

}  // namespace bhss::channel
