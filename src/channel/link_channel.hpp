#pragma once

/// @file link_channel.hpp
/// The full "cables + T-connector + attenuators" channel of Fig. 12:
/// combines the transmitter waveform, a jammer waveform and thermal noise
/// into the receiver's input stream with calibrated power levels.
///
/// Power convention: the noise floor has unit power. `snr_db` sets the
/// received signal power relative to noise, `jnr_db` the received jammer
/// power relative to noise. The signal-to-jamming ratio is then
/// SJR = snr_db - jnr_db, and sweeping snr_db at fixed jnr_db reproduces
/// the paper's "vary the transmit gain against a fixed jammer" procedure.

#include <cstdint>
#include <optional>

#include "channel/awgn.hpp"
#include "dsp/types.hpp"

namespace bhss::channel {

/// Channel configuration for one packet transmission.
struct LinkConfig {
  double snr_db = 20.0;            ///< received signal power / noise power
  std::optional<double> jnr_db;    ///< received jammer power / noise power; nullopt = no jammer
  std::size_t tx_delay = 0;        ///< signal arrival delay [samples]
  float phase = 0.0F;              ///< carrier phase offset [rad]
  float cfo = 0.0F;                ///< carrier frequency offset [rad/sample]
  std::size_t tail_pad = 0;        ///< extra noise-only samples after the signal
};

/// One-shot channel: y = g_s * delay(rot(tx)) + g_j * jam + awgn(1.0).
/// The transmitter waveform is normalised to unit mean power over its own
/// duration before applying the SNR gain; the jammer waveform likewise.
/// @param tx   transmitter baseband waveform
/// @param jam  jammer baseband waveform; must cover tx_delay + tx.size()
///             samples if present (excess is clipped, shortfall zero-padded)
/// @param cfg  power levels and impairments
/// @param noise seeded noise source (advanced by the call)
[[nodiscard]] dsp::cvec transmit(dsp::cspan tx, dsp::cspan jam, const LinkConfig& cfg,
                                 AwgnSource& noise);

}  // namespace bhss::channel
