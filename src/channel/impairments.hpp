#pragma once

/// @file impairments.hpp
/// Front-end impairments of real SDRs: the paper's radios run on
/// free-running internal oscillators (§6.2), so the receiver sees a
/// carrier frequency offset, a random carrier phase, and an unknown
/// arrival delay. These helpers inject exactly those.

#include "dsp/types.hpp"

namespace bhss::channel {

/// Rotate `x` in place by a constant carrier phase [rad].
void apply_phase(dsp::cspan_mut x, float phase) noexcept;

/// Apply a carrier frequency offset [rad/sample] with initial phase 0:
/// x[n] *= exp(j * cfo * n).
void apply_cfo(dsp::cspan_mut x, float cfo) noexcept;

/// Return a copy of `x` delayed by `delay` whole samples (zero-padded
/// front) and extended to `total_len` samples (zero-padded back; clipped
/// if total_len < delay + x.size()).
[[nodiscard]] dsp::cvec apply_delay(dsp::cspan x, std::size_t delay, std::size_t total_len);

/// Fractional-sample delay via linear interpolation, 0 <= frac < 1.
/// Models sampling-clock offset between transmitter and receiver.
[[nodiscard]] dsp::cvec apply_fractional_delay(dsp::cspan x, double frac);

}  // namespace bhss::channel
