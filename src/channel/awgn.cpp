#include "channel/awgn.hpp"

#include <cmath>

namespace bhss::channel {

dsp::cf AwgnSource::sample(double power) {
  const auto sigma = static_cast<float>(std::sqrt(power / 2.0));
  return dsp::cf{sigma * normal_(rng_), sigma * normal_(rng_)};
}

dsp::cvec AwgnSource::generate(std::size_t n, double power) {
  dsp::cvec out(n);
  const auto sigma = static_cast<float>(std::sqrt(power / 2.0));
  for (dsp::cf& s : out) s = dsp::cf{sigma * normal_(rng_), sigma * normal_(rng_)};
  return out;
}

void AwgnSource::add_to(dsp::cspan_mut x, double power) {
  const auto sigma = static_cast<float>(std::sqrt(power / 2.0));
  for (dsp::cf& s : x) s += dsp::cf{sigma * normal_(rng_), sigma * normal_(rng_)};
}

}  // namespace bhss::channel
