#include "channel/impairments.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace bhss::channel {

void apply_phase(dsp::cspan_mut x, float phase) noexcept {
  const dsp::cf rot{std::cos(phase), std::sin(phase)};
  for (dsp::cf& s : x) s *= rot;
}

void apply_cfo(dsp::cspan_mut x, float cfo) noexcept {
  // Incremental rotation with periodic re-normalisation to bound drift.
  dsp::cf osc{1.0F, 0.0F};
  const dsp::cf step{std::cos(cfo), std::sin(cfo)};
  std::size_t count = 0;
  for (dsp::cf& s : x) {
    s *= osc;
    osc *= step;
    if (++count % 4096 == 0) {
      const float mag = std::abs(osc);
      if (mag > 0.0F) osc /= mag;
    }
  }
}

dsp::cvec apply_delay(dsp::cspan x, std::size_t delay, std::size_t total_len) {
  dsp::cvec out(total_len, dsp::cf{0.0F, 0.0F});
  for (std::size_t i = 0; i < x.size() && delay + i < total_len; ++i) out[delay + i] = x[i];
  return out;
}

dsp::cvec apply_fractional_delay(dsp::cspan x, double frac) {
  BHSS_REQUIRE(frac >= 0.0 && frac < 1.0, "apply_fractional_delay: frac must be in [0, 1)");
  const auto f = static_cast<float>(frac);
  dsp::cvec out(x.size() + 1, dsp::cf{0.0F, 0.0F});
  // y[n] = (1-f) x[n] + f x[n-1]: a one-tap linear interpolator.
  for (std::size_t n = 0; n < x.size(); ++n) {
    out[n] += (1.0F - f) * x[n];
    out[n + 1] += f * x[n];
  }
  return out;
}

}  // namespace bhss::channel
