#include "channel/link_channel.hpp"

#include <cmath>

#include "channel/impairments.hpp"
#include "core/contracts.hpp"
#include "dsp/utils.hpp"

namespace bhss::channel {

dsp::cvec transmit(dsp::cspan tx, dsp::cspan jam, const LinkConfig& cfg, AwgnSource& noise) {
  // The channel is the junction where every waveform source (modulator,
  // jammer, impairment models) meets; a non-finite sample here would be
  // amplified into a fully corrupted capture downstream.
  BHSS_REQUIRE(dsp::all_finite(tx), "transmit: tx waveform contains non-finite samples");
  BHSS_REQUIRE(dsp::all_finite(jam), "transmit: jammer waveform contains non-finite samples");
  BHSS_REQUIRE(std::isfinite(cfg.snr_db), "transmit: snr_db must be finite");
  BHSS_REQUIRE(!cfg.jnr_db.has_value() || std::isfinite(*cfg.jnr_db),
               "transmit: jnr_db must be finite");
  BHSS_REQUIRE(std::isfinite(cfg.cfo) && std::isfinite(cfg.phase),
               "transmit: cfo/phase impairments must be finite");
  const std::size_t total_len = cfg.tx_delay + tx.size() + cfg.tail_pad;

  // Signal path: normalise, impair, delay, scale to the requested SNR.
  dsp::cvec sig(tx.begin(), tx.end());
  dsp::scale_to_power(sig, 1.0);
  if (cfg.phase != 0.0F) apply_phase(sig, cfg.phase);
  if (cfg.cfo != 0.0F) apply_cfo(sig, cfg.cfo);
  dsp::cvec out = apply_delay(sig, cfg.tx_delay, total_len);
  const auto sig_gain = static_cast<float>(std::sqrt(dsp::db_to_linear(cfg.snr_db)));
  for (dsp::cf& s : out) s *= sig_gain;

  // Jammer path: normalise over its own duration, scale to the JNR.
  if (cfg.jnr_db.has_value() && !jam.empty()) {
    dsp::cvec j(jam.begin(), jam.end());
    dsp::scale_to_power(j, 1.0);
    const auto jam_gain = static_cast<float>(std::sqrt(dsp::db_to_linear(*cfg.jnr_db)));
    const std::size_t n = std::min(total_len, j.size());
    for (std::size_t i = 0; i < n; ++i) out[i] += jam_gain * j[i];
  }

  // Thermal noise floor at unit power.
  noise.add_to(out, 1.0);
  BHSS_ENSURE(dsp::all_finite(dsp::cspan{out}), "transmit: channel emitted non-finite samples");
  return out;
}

}  // namespace bhss::channel
