#pragma once

/// @file preamble_sync.hpp
/// Data-aided frame acquisition. As in the paper (§6.1: "The preamble and
/// SFD serve for frame, frequency, time, and phase synchronization at the
/// receiver"), the receiver correlates the incoming stream against the
/// known modulated preamble waveform to estimate frame timing, carrier
/// phase, and residual carrier frequency offset.

#include <optional>

#include "dsp/types.hpp"
#include "obs/trace.hpp"

namespace bhss::sync {

/// Estimates produced from the preamble.
struct SyncEstimate {
  std::size_t frame_start = 0;  ///< sample index of the first preamble sample
  float phase = 0.0F;           ///< carrier phase offset [rad]
  float cfo = 0.0F;             ///< carrier frequency offset [rad/sample]
  float quality = 0.0F;         ///< normalised correlation peak, [0, 1]
  float margin = 0.0F;          ///< peak over the correlation noise floor
                                ///< (mean normalised magnitude across the
                                ///< searched lags); CFAR-style statistic a
                                ///< lowered re-acquisition threshold can
                                ///< validate against
};

/// Preamble-based synchroniser.
class PreambleSync {
 public:
  /// @param reference  the clean modulated preamble waveform, as the
  ///                   transmitter emits it (receiver can regenerate it
  ///                   from the shared random source).
  /// @param threshold  minimum normalised correlation to accept a frame.
  explicit PreambleSync(dsp::cvec reference, float threshold = 0.25F);

  /// Search `x` over lags [0, max_lag] for the preamble. Returns nullopt
  /// when no lag reaches the acceptance threshold (frame lost).
  /// @param threshold  optional per-call acceptance threshold override;
  ///                   the receiver's bounded re-acquisition lowers it on
  ///                   retries without rebuilding the synchroniser.
  /// @param trace      optional sink for the preamble_acquire timing scope
  [[nodiscard]] std::optional<SyncEstimate> acquire(
      dsp::cspan x, std::size_t max_lag, std::optional<float> threshold = std::nullopt,
      obs::TraceSink* trace = nullptr) const;

  /// Refine a coarse estimate by regressing block-wise data-aided phase
  /// measurements over the whole preamble. The coarse two-half CFO
  /// estimate leaves a residual that, extrapolated over a long frame,
  /// exceeds the pull-in range of decision-directed tracking; the
  /// regression shrinks both the phase intercept and the CFO error by
  /// roughly the block count. Residual block phases are measured against
  /// the coarse estimate, so no phase unwrapping is needed as long as the
  /// coarse error stays below pi per block.
  [[nodiscard]] SyncEstimate refine(dsp::cspan x, const SyncEstimate& coarse,
                                    std::size_t n_blocks = 8,
                                    obs::TraceSink* trace = nullptr) const;

  /// Remove the estimated phase and CFO from `x` in place:
  /// x[n] *= exp(-j (phase + cfo * (n - frame_start))).
  static void derotate(dsp::cspan_mut x, const SyncEstimate& est) noexcept;

  [[nodiscard]] const dsp::cvec& reference() const noexcept { return ref_; }

 private:
  dsp::cvec ref_;
  float threshold_;
};

}  // namespace bhss::sync
