#include "sync/correlate.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/utils.hpp"

namespace bhss::sync {

dsp::cf correlate_at(dsp::cspan x, dsp::cspan ref, std::size_t lag) {
  BHSS_REQUIRE(lag + ref.size() <= x.size(), "correlate_at: reference does not fit at this lag");
  dsp::cf acc{0.0F, 0.0F};
  for (std::size_t k = 0; k < ref.size(); ++k) acc += x[lag + k] * std::conj(ref[k]);
  return acc;
}

CorrelationPeak correlate_search(dsp::cspan x, dsp::cspan ref, std::size_t max_lag) {
  BHSS_REQUIRE(!ref.empty() && x.size() >= ref.size(),
               "correlate_search: reference longer than signal");
  const std::size_t last_lag = std::min(max_lag, x.size() - ref.size());
  const double ref_energy = dsp::energy(ref);

  // Running window energy for normalisation.
  double win_energy = dsp::energy(x.first(ref.size()));

  CorrelationPeak best;
  double norm_sum = 0.0;
  // Correlations are computed a chunk of lags at a time through the
  // vectorized kernel (stack scratch, no allocation); the normalisation
  // and peak selection walk stays sequential because the window energy is
  // a running recurrence.
  constexpr std::size_t kChunk = 32;
  dsp::cf corr[kChunk];
  for (std::size_t lag0 = 0; lag0 <= last_lag; lag0 += kChunk) {
    const std::size_t n_lags = std::min(kChunk, last_lag - lag0 + 1);
    dsp::simd::correlate_lags(x.data() + lag0, ref.data(), ref.size(), corr, n_lags);
    for (std::size_t j = 0; j < n_lags; ++j) {
      const std::size_t lag = lag0 + j;
      const dsp::cf c = corr[j];
      const double denom = std::sqrt(std::max(ref_energy * win_energy, 1e-30));
      const float norm = static_cast<float>(static_cast<double>(std::abs(c)) / denom);
      norm_sum += static_cast<double>(norm);
      if (norm > best.normalized) {
        best.normalized = norm;
        best.value = c;
        best.offset = lag;
      }
      if (lag + ref.size() < x.size()) {
        win_energy += static_cast<double>(std::norm(x[lag + ref.size()])) -
                      static_cast<double>(std::norm(x[lag]));
        win_energy = std::max(win_energy, 0.0);
      }
    }
  }
  best.mean_normalized =
      static_cast<float>(norm_sum / static_cast<double>(last_lag + 1));
  return best;
}

}  // namespace bhss::sync
