#include "sync/preamble_sync.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/contracts.hpp"
#include "sync/correlate.hpp"

namespace bhss::sync {

PreambleSync::PreambleSync(dsp::cvec reference, float threshold)
    : ref_(std::move(reference)), threshold_(threshold) {
  BHSS_REQUIRE(ref_.size() >= 8, "PreambleSync: reference too short");
}

std::optional<SyncEstimate> PreambleSync::acquire(dsp::cspan x, std::size_t max_lag,
                                                  std::optional<float> threshold,
                                                  obs::TraceSink* trace) const {
  BHSS_TRACE_SCOPE(trace, obs::TraceScopeId::preamble_acquire);
  if (x.size() < ref_.size()) return std::nullopt;
  const CorrelationPeak peak = correlate_search(x, ref_, max_lag);
  if (peak.normalized < threshold.value_or(threshold_)) return std::nullopt;

  SyncEstimate est;
  est.frame_start = peak.offset;
  est.quality = peak.normalized;
  est.margin = peak.mean_normalized > 0.0F ? peak.normalized / peak.mean_normalized : 0.0F;

  // CFO from the phase drift between the two preamble halves: each half
  // correlation picks up the average phase over its span; the difference
  // divided by the half-length gives rad/sample.
  const std::size_t half = ref_.size() / 2;
  const dsp::cf c1 = correlate_at(x, dsp::cspan{ref_}.first(half), peak.offset);
  const dsp::cf c2 = correlate_at(x, dsp::cspan{ref_}.subspan(half), peak.offset + half);
  if (std::abs(c1) > 0.0F && std::abs(c2) > 0.0F) {
    const float dphi = std::arg(c2 * std::conj(c1));
    est.cfo = dphi / static_cast<float>(half);
  }

  // Phase at frame start: the full correlation accumulates the average
  // phase (phase + cfo * mid-span); back out the CFO contribution.
  const float mid = static_cast<float>(ref_.size() - 1) / 2.0F;
  est.phase = std::arg(peak.value) - est.cfo * mid;
  return est;
}

SyncEstimate PreambleSync::refine(dsp::cspan x, const SyncEstimate& coarse,
                                  std::size_t n_blocks, obs::TraceSink* trace) const {
  BHSS_TRACE_SCOPE(trace, obs::TraceScopeId::preamble_acquire);
  if (n_blocks < 2) return coarse;
  const std::size_t block = ref_.size() / n_blocks;
  if (block < 8 || coarse.frame_start + ref_.size() > x.size()) return coarse;

  // Weighted least squares of residual phase vs block centre.
  double sw = 0.0;
  double swn = 0.0;
  double swnn = 0.0;
  double swp = 0.0;
  double swnp = 0.0;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::size_t begin = b * block;
    dsp::cf acc{0.0F, 0.0F};
    for (std::size_t i = begin; i < begin + block; ++i) {
      acc += x[coarse.frame_start + i] * std::conj(ref_[i]);
    }
    const float mag = std::abs(acc);
    if (mag <= 0.0F) continue;
    const double centre = static_cast<double>(begin) + static_cast<double>(block - 1) / 2.0;
    // Residual phase relative to the coarse model (small, no wrapping).
    const double predicted =
        static_cast<double>(coarse.phase) + static_cast<double>(coarse.cfo) * centre;
    const double residual =
        std::arg(acc * std::polar(1.0F, static_cast<float>(-predicted)));
    const double w = mag;  // stronger blocks (less jammed) weigh more
    sw += w;
    swn += w * centre;
    swnn += w * centre * centre;
    swp += w * residual;
    swnp += w * centre * residual;
  }
  const double det = sw * swnn - swn * swn;
  if (sw <= 0.0 || std::abs(det) < 1e-9) return coarse;
  const double slope = (sw * swnp - swn * swp) / det;
  const double intercept = (swnn * swp - swn * swnp) / det;

  SyncEstimate refined = coarse;
  refined.phase = coarse.phase + static_cast<float>(intercept);
  refined.cfo = coarse.cfo + static_cast<float>(slope);
  return refined;
}

void PreambleSync::derotate(dsp::cspan_mut x, const SyncEstimate& est) noexcept {
  for (std::size_t n = 0; n < x.size(); ++n) {
    const float dn = static_cast<float>(n) - static_cast<float>(est.frame_start);
    const float ang = -(est.phase + est.cfo * dn);
    x[n] *= dsp::cf{std::cos(ang), std::sin(ang)};
  }
}

}  // namespace bhss::sync
