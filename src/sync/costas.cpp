#include "sync/costas.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/contracts.hpp"

namespace bhss::sync {
namespace {

float wrap_phase(float phi) noexcept {
  constexpr float two_pi = 2.0F * std::numbers::pi_v<float>;
  while (phi > std::numbers::pi_v<float>) phi -= two_pi;
  while (phi < -std::numbers::pi_v<float>) phi += two_pi;
  return phi;
}

}  // namespace

CostasLoop::CostasLoop(float loop_bandwidth, float damping, float max_freq)
    : max_freq_(max_freq) {
  // A loop bandwidth outside (0, 1) rad/sample or a non-positive damping
  // factor yields gains that either never pull in or oscillate — both
  // look like "jamming wins" in BER sweeps while actually being a
  // receiver misconfiguration.
  BHSS_REQUIRE(loop_bandwidth > 0.0F && loop_bandwidth < 1.0F,
               "CostasLoop: loop_bandwidth must be in (0, 1) rad/sample");
  BHSS_REQUIRE(damping > 0.0F, "CostasLoop: damping must be > 0");
  BHSS_REQUIRE(max_freq > 0.0F && max_freq <= std::numbers::pi_v<float>,
               "CostasLoop: max_freq must be in (0, pi] rad/sample");
  // Standard 2nd-order loop gain mapping (Rice, "Digital Communications").
  const float denom = 1.0F + 2.0F * damping * loop_bandwidth + loop_bandwidth * loop_bandwidth;
  alpha_ = (4.0F * damping * loop_bandwidth) / denom;
  beta_ = (4.0F * loop_bandwidth * loop_bandwidth) / denom;
  BHSS_ENSURE(alpha_ > 0.0F && beta_ > 0.0F, "CostasLoop: derived loop gains must be positive");
}

dsp::cf CostasLoop::process(dsp::cf in) noexcept {
  const dsp::cf nco{std::cos(-phase_), std::sin(-phase_)};
  const dsp::cf out = in * nco;

  // Decision-directed QPSK phase error, normalised by signal power to make
  // the loop gain amplitude-independent, then weighted by the instantaneous
  // amplitude relative to the running RMS: samples near the half-sine pulse
  // nulls carry no phase information, only noise, and must not drive the
  // loop at full gain.
  const float i = out.real();
  const float q = out.imag();
  const float power = i * i + q * q;
  avg_power_ += 0.01F * (power - avg_power_);
  float error = 0.0F;
  if (power > 1e-12F && avg_power_ > 1e-12F) {
    error = ((i >= 0.0F ? q : -q) - (q >= 0.0F ? i : -i)) / std::sqrt(power);
    const float weight = std::min(1.0F, power / avg_power_);
    error *= weight;
  }

  freq_ = std::clamp(freq_ + beta_ * error, -max_freq_, max_freq_);
  phase_ = wrap_phase(phase_ + freq_ + alpha_ * error);
  return out;
}

void CostasLoop::process(dsp::cspan_mut x) noexcept {
  for (dsp::cf& s : x) s = process(s);
}

void CostasLoop::reset() noexcept {
  phase_ = 0.0F;
  freq_ = 0.0F;
  avg_power_ = 0.0F;
}

}  // namespace bhss::sync
