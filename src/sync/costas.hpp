#pragma once

/// @file costas.hpp
/// Second-order Costas loop for QPSK, as used by the paper's receiver
/// ([22]) to track residual carrier phase and frequency after the
/// interference-suppression filter. The loop error is the classic
/// decision-directed QPSK detector e = sgn(I)*Q - sgn(Q)*I.

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::sync {

/// Streaming QPSK Costas loop.
class CostasLoop {
 public:
  /// @param loop_bandwidth  normalised loop bandwidth (rad/sample),
  ///                        typical 0.005..0.05.
  /// @param damping         loop damping factor, typical 0.707.
  /// @param max_freq        clamp for the frequency integrator [rad/sample].
  explicit CostasLoop(float loop_bandwidth, float damping = 0.7071F,
                      float max_freq = 0.5F);

  /// Rotate one sample by the current NCO phase and update the loop.
  [[nodiscard]] BHSS_HOT dsp::cf process(dsp::cf in) noexcept;

  /// Process a block in place.
  BHSS_HOT void process(dsp::cspan_mut x) noexcept;

  [[nodiscard]] float phase() const noexcept { return phase_; }
  [[nodiscard]] float frequency() const noexcept { return freq_; }

  void reset() noexcept;

 private:
  float alpha_;  ///< proportional gain
  float beta_;   ///< integral gain
  float max_freq_;
  float phase_ = 0.0F;
  float freq_ = 0.0F;
  float avg_power_ = 0.0F;  ///< running mean input power (error weighting)
};

}  // namespace bhss::sync
