#pragma once

/// @file gardner.hpp
/// Gardner timing-error recovery ([23] in the paper): a non-data-aided
/// symbol synchroniser that works at two or more samples per symbol.
/// Implemented as a second-order loop driving a cubic (Farrow)
/// interpolator over the input stream.

#include "core/contracts.hpp"
#include "dsp/types.hpp"

namespace bhss::sync {

/// Streaming Gardner timing recovery.
class GardnerTimingRecovery {
 public:
  /// @param samples_per_symbol  nominal oversampling (>= 2)
  /// @param loop_bandwidth      normalised loop bandwidth, typ. 0.01
  /// @param damping             loop damping, typ. 0.707
  explicit GardnerTimingRecovery(double samples_per_symbol, float loop_bandwidth = 0.01F,
                                 float damping = 0.7071F);

  /// Consume a block of input samples; append recovered symbol-spaced
  /// samples to `out`. State persists across calls.
  BHSS_HOT void process(dsp::cspan in, dsp::cvec& out);

  /// Current fractional timing estimate in samples (for tests).
  [[nodiscard]] double timing_offset() const noexcept { return mu_; }

  /// Current estimate of samples per symbol (nominal + loop correction).
  [[nodiscard]] double period() const noexcept { return period_; }

  void reset() noexcept;

 private:
  [[nodiscard]] BHSS_HOT dsp::cf interpolate(double index) const noexcept;

  double nominal_period_;
  float alpha_;
  float beta_;

  dsp::cvec buffer_;       ///< sliding history of input samples
  double next_sample_ = 0; ///< fractional index of next symbol sample
  double mu_ = 0.0;
  double period_;
  dsp::cf last_symbol_{0.0F, 0.0F};
  dsp::cf last_midpoint_{0.0F, 0.0F};
};

}  // namespace bhss::sync
