#pragma once

/// @file correlate.hpp
/// Sliding cross-correlation primitives used by frame synchronization.

#include "dsp/types.hpp"

namespace bhss::sync {

/// Result of a sliding correlation search.
struct CorrelationPeak {
  std::size_t offset = 0;       ///< lag with the largest normalised magnitude
  dsp::cf value{0.0F, 0.0F};    ///< complex correlation at the peak
  float normalized = 0.0F;      ///< |value| / (||ref|| * ||window||), in [0, 1]
  float mean_normalized = 0.0F; ///< mean normalised magnitude over all lags —
                                ///< the correlation noise floor. A genuine
                                ///< preamble stands far above it; the largest
                                ///< of K noise lags only reaches ~sqrt(2 ln K)
                                ///< times the underlying Rayleigh scale.
};

/// Complex cross-correlation of `x` against `ref` at a single lag:
///   c(lag) = sum_k x[lag + k] * conj(ref[k]).
/// Requires lag + ref.size() <= x.size().
[[nodiscard]] dsp::cf correlate_at(dsp::cspan x, dsp::cspan ref, std::size_t lag);

/// Search lags [0, max_lag] for the strongest normalised correlation of
/// `ref` inside `x`. `max_lag` is clamped so the reference always fits.
[[nodiscard]] CorrelationPeak correlate_search(dsp::cspan x, dsp::cspan ref,
                                               std::size_t max_lag);

}  // namespace bhss::sync
