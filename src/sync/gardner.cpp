#include "sync/gardner.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace bhss::sync {

GardnerTimingRecovery::GardnerTimingRecovery(double samples_per_symbol, float loop_bandwidth,
                                             float damping)
    : nominal_period_(samples_per_symbol), period_(samples_per_symbol) {
  BHSS_REQUIRE(samples_per_symbol >= 2.0, "GardnerTimingRecovery: need >= 2 samples/symbol");
  BHSS_REQUIRE(std::isfinite(samples_per_symbol),
               "GardnerTimingRecovery: samples_per_symbol must be finite");
  BHSS_REQUIRE(loop_bandwidth > 0.0F && loop_bandwidth < 1.0F,
               "GardnerTimingRecovery: loop_bandwidth must be in (0, 1)");
  BHSS_REQUIRE(damping > 0.0F, "GardnerTimingRecovery: damping must be > 0");
  const float bw = loop_bandwidth;
  const float denom = 1.0F + 2.0F * damping * bw + bw * bw;
  alpha_ = (4.0F * damping * bw) / denom;
  beta_ = (4.0F * bw * bw) / denom;
  BHSS_ENSURE(alpha_ > 0.0F && beta_ > 0.0F,
              "GardnerTimingRecovery: derived loop gains must be positive");
  next_sample_ = samples_per_symbol;  // leave room for the mid-point lookback
}

dsp::cf GardnerTimingRecovery::interpolate(double index) const noexcept {
  // Cubic Lagrange interpolation over the 4 samples surrounding `index`.
  const auto i1 = static_cast<std::size_t>(index);  // floor; index >= 1 guaranteed
  const double mu = index - static_cast<double>(i1);
  const std::size_t i0 = i1 - 1;
  const dsp::cf x0 = buffer_[i0];
  const dsp::cf x1 = buffer_[i0 + 1];
  const dsp::cf x2 = buffer_[i0 + 2];
  const dsp::cf x3 = buffer_[i0 + 3];
  const auto m = static_cast<float>(mu);
  // Farrow-form cubic coefficients.
  const dsp::cf c0 = x1;
  const dsp::cf c1 = 0.5F * (x2 - x0);
  const dsp::cf c2 = x0 - 2.5F * x1 + 2.0F * x2 - 0.5F * x3;
  const dsp::cf c3 = 0.5F * (x3 - x0) + 1.5F * (x1 - x2);
  return ((c3 * m + c2) * m + c1) * m + c0;
}

void GardnerTimingRecovery::process(dsp::cspan in, dsp::cvec& out) {
  // BHSS_ANALYZE_SUPPRESS(h1-hot-path-purity): sliding history append is amortized O(1); steady-state capacity is reached after the first few blocks and reused
  buffer_.insert(buffer_.end(), in.begin(), in.end());

  // We can emit a symbol when its interpolation neighbourhood (index+2) and
  // its mid-point lookback are inside the buffer.
  while (next_sample_ + 2.0 < static_cast<double>(buffer_.size()) &&
         next_sample_ >= period_ / 2.0 + 1.0) {
    const dsp::cf symbol = interpolate(next_sample_);
    const dsp::cf midpoint = interpolate(next_sample_ - period_ / 2.0);

    // Gardner TED, sign chosen so that positive error means "sampling
    // early -> advance": e = Re{ (y_{k-1} - y_k) * conj(y_mid) }.
    const dsp::cf diff = last_symbol_ - symbol;
    float error = (diff * std::conj(midpoint)).real();
    const float scale = std::norm(symbol) + std::norm(last_symbol_);
    if (scale > 1e-12F) error /= scale;
    error = std::clamp(error, -1.0F, 1.0F);

    period_ = std::clamp(period_ + static_cast<double>(beta_) * static_cast<double>(error),
                         nominal_period_ * 0.9, nominal_period_ * 1.1);
    mu_ = static_cast<double>(alpha_) * static_cast<double>(error);
    next_sample_ += period_ + mu_;

    last_midpoint_ = midpoint;
    last_symbol_ = symbol;
    // BHSS_ANALYZE_SUPPRESS(h1-hot-path-purity): appends into the caller's reused symbol buffer; allocation-free once capacity is warm
    out.push_back(symbol);
  }

  // Trim consumed history, keeping enough lookback for the next mid-point.
  const double keep_from = next_sample_ - period_ - 4.0;
  if (keep_from > 1024.0) {
    const auto drop = static_cast<std::size_t>(keep_from);
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
    next_sample_ -= static_cast<double>(drop);
  }
}

void GardnerTimingRecovery::reset() noexcept {
  buffer_.clear();
  next_sample_ = nominal_period_;
  mu_ = 0.0;
  period_ = nominal_period_;
  last_symbol_ = dsp::cf{0.0F, 0.0F};
  last_midpoint_ = dsp::cf{0.0F, 0.0F};
}

}  // namespace bhss::sync
