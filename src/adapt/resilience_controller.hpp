#pragma once

/// @file resilience_controller.hpp
/// The closed-loop link-layer resilience controller: consumes per-packet
/// outcomes and per-hop filter-decision evidence (src/obs telemetry
/// terms), runs the sliding-window jam detector, and drives the explicit
/// degradation state machine
///
///   NOMINAL -> DEGRADED -> FALLBACK -> RECOVERING -> NOMINAL
///
/// over the hop plan (distribution + dwell) the PHY draws its schedule
/// from:
///  * NOMINAL     — the configured pattern, untouched. plan epoch 0.
///  * DEGRADED    — detector tripped (debounced): re-weight away from
///    suspected bandwidth indices (occupancy floor guaranteed) and
///    shorten the dwell so the hop rate outruns the adversary.
///  * FALLBACK    — jamming persisted for `fallback_windows` more
///    windows: bounded worst-case posture — the widest-spreading
///    (uniform) pattern at the minimum dwell. The fallback plan is a
///    fixed point; no further adaptation happens until the detector
///    clears, so a poisoned detector cannot walk the link anywhere.
///  * RECOVERING  — detector cleared (debounced): blend the distribution
///    geometrically back toward the base and restore the dwell; snaps
///    exactly onto the base plan and returns to NOMINAL, so a recovered
///    link is bit-identical to one that was never jammed.
///
/// One controller per simulation shard, fed strictly in packet order:
/// the controller is a pure fold over its shard's packet stream, which
/// is what makes adaptive runs bit-identical at any thread count and
/// across kill-and-resume (the same contract every other subsystem
/// obeys; see DESIGN.md §12).

#include <cstdint>
#include <vector>

#include "adapt/hop_adapter.hpp"
#include "adapt/jam_detector.hpp"
#include "obs/link_obs.hpp"

namespace bhss::adapt {

/// Degradation state of the adaptive link layer.
enum class LinkAdaptState : std::uint8_t { nominal = 0, degraded, fallback, recovering };

/// Name of a state ("nominal" / "degraded" / "fallback" / "recovering").
[[nodiscard]] const char* to_string(LinkAdaptState s) noexcept;

/// Controller knobs, embedded in core::SimConfig as `cfg.adapt`.
struct AdaptConfig {
  bool enabled = false;          ///< off = static link, controller never built
  JamDetectorConfig detector{};
  HopAdapterConfig adapter{};
  std::size_t fallback_windows = 3;  ///< jammed windows in DEGRADED before FALLBACK
  std::size_t recovery_windows = 2;  ///< clean windows in FALLBACK before RECOVERING
  std::size_t min_symbols_per_hop = 1;  ///< dwell floor for DEGRADED/FALLBACK
  std::size_t degraded_dwell_shift = 1; ///< dwell halvings applied in DEGRADED
};

/// The hop plan the PHY should draw schedules from. `epoch` increments
/// whenever probs/dwell change, so callers can rebuild their HopPattern
/// only when needed; epoch 0 always means "exactly the base plan".
struct HopPlan {
  std::vector<double> probs;
  std::size_t symbols_per_hop = 0;
  std::uint32_t epoch = 0;
};

/// Adaptation counters folded into the merged LinkStats taxonomy.
struct AdaptCounters {
  std::size_t transitions = 0;      ///< state-machine edges taken
  std::size_t jam_episodes = 0;     ///< entries into DEGRADED
  std::size_t fallbacks = 0;        ///< entries into FALLBACK
  std::size_t recoveries = 0;       ///< completed RECOVERING -> NOMINAL returns
  std::size_t windows_jammed = 0;   ///< detector windows that tripped
  std::size_t packets_adapted = 0;  ///< packets sent under a non-base plan
};

/// Per-shard closed-loop controller.
class ResilienceController {
 public:
  ResilienceController(const AdaptConfig& config, std::vector<double> base_probs,
                       std::size_t base_symbols_per_hop);

  /// What the controller needs to know about one finished packet.
  struct PacketOutcome {
    bool delivered = false;
    bool sync_lost = false;
    std::uint64_t packet = 0;  ///< global packet index (trace stamping only)
  };

  /// Per-hop hot path: forward one hop's filter-decision outcome to the
  /// detector's suspicion counters.
  BHSS_HOT void note_hop(std::size_t bw_index, bool filtered) noexcept;

  /// Register a finished packet; runs the window evaluation and state
  /// machine when the packet closes a detection window. `o` is optional
  /// telemetry — adaptation is bit-identical with or without it.
  void on_packet(const PacketOutcome& outcome, const obs::LinkObs& o = {});

  [[nodiscard]] const HopPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] LinkAdaptState state() const noexcept { return state_; }
  [[nodiscard]] const AdaptCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const JamDetector& detector() const noexcept { return detector_; }

 private:
  void enter(LinkAdaptState next, std::size_t window_ordinal, const obs::LinkObs& o);
  void publish_plan(const std::vector<double>& probs, std::size_t symbols_per_hop);

  AdaptConfig config_;
  JamDetector detector_;
  HopAdapter adapter_;
  LinkAdaptState state_ = LinkAdaptState::nominal;
  HopPlan plan_;
  std::size_t base_symbols_per_hop_;
  std::size_t degraded_symbols_per_hop_;
  std::size_t degraded_jammed_windows_ = 0;  ///< jammed windows since DEGRADED entry
  std::size_t fallback_clean_windows_ = 0;   ///< clean-window streak in FALLBACK
  std::uint32_t epoch_source_ = 0;           ///< monotonic; never reused (epoch 0 = base)
  AdaptCounters counters_;
};

}  // namespace bhss::adapt
