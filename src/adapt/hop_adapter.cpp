#include "adapt/hop_adapter.hpp"

#include <cmath>

namespace bhss::adapt {

HopAdapter::HopAdapter(const HopAdapterConfig& config, std::vector<double> base_probs)
    : config_(config), base_(std::move(base_probs)) {
  BHSS_REQUIRE(!base_.empty(), "HopAdapter: need at least one bandwidth level");
  BHSS_REQUIRE(config_.deweight > 0.0 && config_.deweight < 1.0,
               "HopAdapter: deweight must lie in (0, 1)");
  BHSS_REQUIRE(config_.recover_step > 0.0 && config_.recover_step <= 1.0,
               "HopAdapter: recover_step must lie in (0, 1]");
  BHSS_REQUIRE(config_.min_occupancy >= 0.0, "HopAdapter: occupancy floor must be >= 0");
  BHSS_REQUIRE(config_.min_occupancy * static_cast<double>(base_.size()) < 1.0,
               "HopAdapter: occupancy floors must leave probability to distribute");

  double sum = 0.0;
  for (const double p : base_) {
    BHSS_REQUIRE(p >= 0.0 && std::isfinite(p), "HopAdapter: base probabilities must be finite and >= 0");
    sum += p;
  }
  BHSS_REQUIRE(sum > 0.0, "HopAdapter: base probabilities must not all be zero");
  for (double& p : base_) p /= sum;
  probs_ = base_;
  weights_.assign(base_.size(), 0.0);
}

void HopAdapter::reweight(std::span<const std::uint32_t> suspicion) {
  BHSS_REQUIRE(suspicion.size() == base_.size(),
               "HopAdapter: suspicion vector must cover every bandwidth index");
  double sum = 0.0;
  for (std::size_t i = 0; i < base_.size(); ++i) {
    const std::uint32_t hits =
        std::min<std::uint32_t>(suspicion[i], static_cast<std::uint32_t>(config_.deweight_cap));
    double w = base_[i];
    for (std::uint32_t k = 0; k < hits; ++k) w *= config_.deweight;
    weights_[i] = w;
    sum += w;
  }
  // All-suspect degenerate case: every band equally poisoned, spread wide.
  if (sum <= 0.0) {
    fall_back_uniform();
    return;
  }
  const double span = 1.0 - config_.min_occupancy * static_cast<double>(base_.size());
  for (std::size_t i = 0; i < base_.size(); ++i) {
    probs_[i] = config_.min_occupancy + span * weights_[i] / sum;
  }
  at_base_ = false;
}

void HopAdapter::fall_back_uniform() noexcept {
  const double uniform = 1.0 / static_cast<double>(probs_.size());
  for (double& p : probs_) p = uniform;
  at_base_ = false;
}

bool HopAdapter::recover_toward_base() noexcept {
  if (at_base_) return true;
  double max_gap = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    probs_[i] += config_.recover_step * (base_[i] - probs_[i]);
    const double gap = std::abs(probs_[i] - base_[i]);
    if (gap > max_gap) max_gap = gap;
  }
  if (max_gap <= config_.snap_tolerance) {
    probs_ = base_;
    at_base_ = true;
  }
  return at_base_;
}

void HopAdapter::reset() noexcept {
  probs_ = base_;
  at_base_ = true;
}

}  // namespace bhss::adapt
