#pragma once

/// @file jam_detector.hpp
/// Deterministic sliding-window jam detector with hysteresis (the
/// ExpressLRS anti_jamming.h lineage, SNIPPET 3): packets register
/// good/bad into a fixed-length window, a closed window whose bad
/// fraction crosses the threshold — with a minimum bad count so short
/// windows cannot trip on a single loss — counts as a jammed window, and
/// debounce on both edges (`trip_windows` consecutive jammed windows
/// raise the jam flag, `clear_windows` consecutive clean ones lower it)
/// keeps the adaptation loop above from flapping on channel noise.
///
/// Per-bandwidth suspicion rides along: every hop the receiver's control
/// logic had to filter (eq. (10) chose lowpass/excision, or the
/// degenerate-PSD fallback fired) is evidence that the jammer currently
/// occupies that bandwidth index. The controller reads the suspicion
/// array at window boundaries and decays it so stale evidence fades.
///
/// All state is fixed-size integer storage allocated at construction:
/// the per-packet and per-hop paths are BHSS_HOT and must stay
/// allocation/lock/IO-free over the whole call graph (enforced by
/// scripts/bhss_analyze.py, check h1-hot-path-purity).

#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace bhss::adapt {

/// Detector knobs. Thresholds mirror the ExpressLRS shape: a fraction
/// gate plus an absolute floor, then consecutive-window debounce.
struct JamDetectorConfig {
  std::size_t window_packets = 8;  ///< packets per detection window (>= 1)
  double bad_fraction = 0.5;       ///< window trips when bad/total > this
  std::size_t min_bad = 2;         ///< ... and at least this many bad packets
  std::size_t trip_windows = 2;    ///< consecutive jammed windows to raise
  std::size_t clear_windows = 2;   ///< consecutive clean windows to lower
};

/// Debounced detector output. `suspect` bridges the first jammed window
/// and the debounced trip so callers can observe the latency explicitly.
enum class JamState : std::uint8_t { clear = 0, suspect, jammed };

/// Name of a jam state ("clear" / "suspect" / "jammed").
[[nodiscard]] const char* to_string(JamState s) noexcept;

/// What closed when a packet completed a window. `closed == false` means
/// the packet landed mid-window and every other field is unspecified.
struct WindowVerdict {
  bool closed = false;
  bool jammed = false;        ///< this window crossed the trip thresholds
  std::size_t bad = 0;        ///< bad packets in the closed window
  double bad_fraction = 0.0;  ///< bad / window_packets
  std::size_t ordinal = 0;    ///< windows closed so far (1-based)
  std::size_t streak = 0;     ///< consecutive jammed windows including this
};

/// Windowed good/bad packet detector + per-bandwidth suspicion counters.
/// One instance per simulation shard, fed strictly in packet order —
/// the detector is a pure fold over its inputs, so a sharded run
/// reproduces bit-identically at any thread count.
class JamDetector {
 public:
  JamDetector(const JamDetectorConfig& config, std::size_t n_bands);

  /// Per-packet hot path: register one packet outcome. Returns the
  /// window verdict when this packet closed a window.
  BHSS_HOT WindowVerdict note_packet(bool delivered, bool sync_lost) noexcept;

  /// Per-hop hot path: register one hop's filter-decision outcome as
  /// (non-)evidence against its bandwidth index. The caller decides
  /// what counts as evidence — the link feeds `filtered && packet
  /// lost`, since a filter decision on a delivered packet means the
  /// excision won and that bandwidth should not be punished.
  BHSS_HOT void note_hop(std::size_t bw_index, bool filtered) noexcept;

  /// Debounced detector state.
  [[nodiscard]] JamState state() const noexcept { return state_; }

  /// Filtered-hop evidence per bandwidth index since the last decay.
  [[nodiscard]] const std::vector<std::uint32_t>& suspicion() const noexcept {
    return suspicion_;
  }

  /// Exponential forgetting (integer halving) of the suspicion counters;
  /// the controller calls this at every window boundary so the detector
  /// tracks a moving jammer instead of its history.
  void decay_suspicion() noexcept;

  [[nodiscard]] std::size_t windows_closed() const noexcept { return windows_closed_; }
  [[nodiscard]] std::size_t windows_jammed() const noexcept { return windows_jammed_; }
  [[nodiscard]] const JamDetectorConfig& config() const noexcept { return config_; }

 private:
  JamDetectorConfig config_;
  JamState state_ = JamState::clear;
  std::size_t in_window_ = 0;        ///< packets registered in the open window
  std::size_t bad_in_window_ = 0;
  std::size_t consecutive_bad_ = 0;  ///< jammed-window streak
  std::size_t consecutive_good_ = 0; ///< clean-window streak
  std::size_t windows_closed_ = 0;
  std::size_t windows_jammed_ = 0;
  std::vector<std::uint32_t> suspicion_;  ///< filtered hops per bandwidth index
};

}  // namespace bhss::adapt
