#include "adapt/jam_detector.hpp"

namespace bhss::adapt {

const char* to_string(JamState s) noexcept {
  switch (s) {
    case JamState::clear: return "clear";
    case JamState::suspect: return "suspect";
    case JamState::jammed: return "jammed";
  }
  return "unknown";
}

JamDetector::JamDetector(const JamDetectorConfig& config, std::size_t n_bands)
    : config_(config), suspicion_(n_bands, 0) {
  BHSS_REQUIRE(config_.window_packets >= 1, "JamDetector: window must hold >= 1 packet");
  BHSS_REQUIRE(config_.bad_fraction >= 0.0 && config_.bad_fraction <= 1.0,
               "JamDetector: bad_fraction must lie in [0, 1]");
  BHSS_REQUIRE(config_.trip_windows >= 1, "JamDetector: trip debounce must be >= 1 window");
  BHSS_REQUIRE(config_.clear_windows >= 1, "JamDetector: clear debounce must be >= 1 window");
  BHSS_REQUIRE(n_bands >= 1, "JamDetector: need at least one bandwidth index");
}

WindowVerdict JamDetector::note_packet(bool delivered, bool sync_lost) noexcept {
  ++in_window_;
  if (!delivered || sync_lost) ++bad_in_window_;
  if (in_window_ < config_.window_packets) return {};

  WindowVerdict v;
  v.closed = true;
  v.bad = bad_in_window_;
  v.bad_fraction =
      static_cast<double>(bad_in_window_) / static_cast<double>(config_.window_packets);
  v.jammed = v.bad_fraction > config_.bad_fraction && bad_in_window_ >= config_.min_bad;
  in_window_ = 0;
  bad_in_window_ = 0;

  ++windows_closed_;
  v.ordinal = windows_closed_;
  if (v.jammed) {
    ++windows_jammed_;
    ++consecutive_bad_;
    consecutive_good_ = 0;
    if (consecutive_bad_ >= config_.trip_windows) {
      state_ = JamState::jammed;
    } else if (state_ == JamState::clear) {
      state_ = JamState::suspect;
    }
  } else {
    ++consecutive_good_;
    consecutive_bad_ = 0;
    if (state_ == JamState::suspect) {
      state_ = JamState::clear;  // one clean window retires an unconfirmed trip
    } else if (state_ == JamState::jammed && consecutive_good_ >= config_.clear_windows) {
      state_ = JamState::clear;
    }
  }
  v.streak = consecutive_bad_;
  return v;
}

void JamDetector::note_hop(std::size_t bw_index, bool filtered) noexcept {
  if (!filtered || bw_index >= suspicion_.size()) return;
  ++suspicion_[bw_index];
}

void JamDetector::decay_suspicion() noexcept {
  for (std::uint32_t& s : suspicion_) s >>= 1U;
}

}  // namespace bhss::adapt
