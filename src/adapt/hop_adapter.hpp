#pragma once

/// @file hop_adapter.hpp
/// Online re-weighting of the hop-pattern distribution. Given the base
/// (configured) draw probabilities and the detector's per-bandwidth
/// suspicion counts, the adapter down-weights suspected bandwidth
/// indices multiplicatively while guaranteeing an ExpressLRS-style
/// occupancy floor — every bandwidth keeps at least `min_occupancy`
/// probability, so no level starves and the jammer can never force the
/// link into a predictable residual set. Recovery walks the adapted
/// distribution back toward the base geometrically and snaps exactly
/// onto it, so a recovered link is bit-identical to one never jammed.
///
/// The adapter owns fixed-size buffers sized at construction; reweight
/// and recovery are pure element-wise folds (same operation sequence on
/// every platform), which keeps the whole adaptation loop inside the
/// repo's determinism contract.

#include <cstdint>
#include <span>
#include <vector>

#include "core/contracts.hpp"

namespace bhss::adapt {

struct HopAdapterConfig {
  double deweight = 0.25;      ///< multiplier per suspicion hit, in (0, 1)
  std::size_t deweight_cap = 4;  ///< max suspicion hits that count per band
  double min_occupancy = 0.02;   ///< occupancy floor per band (n * floor < 1)
  double recover_step = 0.5;     ///< per-step blend back toward base, in (0, 1]
  double snap_tolerance = 1e-9;  ///< max |p - base| before snapping exactly
};

/// Stateful distribution re-weighter over a fixed bandwidth set.
class HopAdapter {
 public:
  HopAdapter(const HopAdapterConfig& config, std::vector<double> base_probs);

  /// Re-weight away from suspected bands: p_i = floor + span * w_i / sum w
  /// with w_i = base_i * deweight^min(suspicion_i, cap). The result sums
  /// to 1 and honours the occupancy floor exactly.
  void reweight(std::span<const std::uint32_t> suspicion);

  /// Replace the distribution with the widest-spreading (maximum-entropy)
  /// uniform pattern — the bounded FALLBACK target.
  void fall_back_uniform() noexcept;

  /// One recovery step toward the base distribution. Returns true once
  /// the distribution has snapped exactly back onto the base.
  bool recover_toward_base() noexcept;

  /// Reset to the base distribution exactly.
  void reset() noexcept;

  [[nodiscard]] const std::vector<double>& probs() const noexcept { return probs_; }
  [[nodiscard]] const std::vector<double>& base() const noexcept { return base_; }
  [[nodiscard]] bool at_base() const noexcept { return at_base_; }

 private:
  HopAdapterConfig config_;
  std::vector<double> base_;   ///< normalised configured distribution
  std::vector<double> probs_;  ///< current adapted distribution
  std::vector<double> weights_;  ///< reweight scratch (no per-call allocation)
  bool at_base_ = true;
};

}  // namespace bhss::adapt
